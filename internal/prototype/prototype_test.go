package prototype

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hwmodel"
)

func newModel(t *testing.T) *hwmodel.Model {
	t.Helper()
	m, err := hwmodel.New()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFig7Comparison(t *testing.T) {
	// §V-C headline: STS ≈ 3.257 s, S-ECDSA ≈ 2.677 s on the S32K144
	// pair — an increase of 21.67 %. The modelled totals must land in
	// the same second-scale range with a 15–30 % increase.
	m := newModel(t)
	cmp, err := Compare(m, "S32K144")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.STS.Total < 2*time.Second || cmp.STS.Total > 5*time.Second {
		t.Errorf("STS total %v outside the Fig. 7 range (paper: 3.257 s)", cmp.STS.Total)
	}
	if cmp.SECDSA.Total < 1500*time.Millisecond || cmp.SECDSA.Total > 4*time.Second {
		t.Errorf("S-ECDSA total %v outside the Fig. 7 range (paper: 2.677 s)", cmp.SECDSA.Total)
	}
	if cmp.IncreasePct < 15 || cmp.IncreasePct > 30 {
		t.Errorf("STS increase %.2f %%, paper reports 21.67 %%", cmp.IncreasePct)
	}
}

func TestWireTimeNegligible(t *testing.T) {
	// "The CAN-FD transfer time over the physical link was negligible
	// (< 1 ms)" per message; in total three orders of magnitude below
	// processing.
	m := newModel(t)
	tl, err := Run(core.NewSTS(core.OptNone), m, "S32K144")
	if err != nil {
		t.Fatal(err)
	}
	if tl.Wire >= 10*time.Millisecond {
		t.Errorf("wire total %v, want ≪ processing", tl.Wire)
	}
	if tl.Wire.Nanoseconds()*100 > tl.Processing.Nanoseconds() {
		t.Errorf("wire share %.2f %% of processing, want < 1 %%",
			float64(tl.Wire)/float64(tl.Processing)*100)
	}
	for _, seg := range tl.Segments {
		if seg.Kind == KindWire && seg.Duration >= 3*time.Millisecond {
			t.Errorf("wire segment %s = %v, want low single-digit ms", seg.Label, seg.Duration)
		}
	}
}

func TestTimelineStructure(t *testing.T) {
	m := newModel(t)
	tl, err := Run(core.NewSTS(core.OptNone), m, "S32K144")
	if err != nil {
		t.Fatal(err)
	}
	// Four transcript steps → four wire segments, interleaved with
	// processing segments.
	wires := 0
	procs := 0
	var sum time.Duration
	for _, seg := range tl.Segments {
		sum += seg.Duration
		switch seg.Kind {
		case KindWire:
			wires++
			if seg.Device != "bus" {
				t.Errorf("wire segment attributed to %s", seg.Device)
			}
		case KindProcessing:
			procs++
			if seg.Device != "EVCC" && seg.Device != "BMS" {
				t.Errorf("processing segment attributed to %s", seg.Device)
			}
			if seg.Label == "" {
				t.Error("unlabelled processing segment")
			}
		}
	}
	if wires != 4 {
		t.Errorf("%d wire segments, want 4", wires)
	}
	if procs < 6 {
		t.Errorf("%d processing segments, want ≥ 6", procs)
	}
	if sum != tl.Total {
		t.Errorf("segment sum %v != total %v", sum, tl.Total)
	}
	if tl.BusStats.Frames < 4 {
		t.Errorf("bus carried %d frames", tl.BusStats.Frames)
	}
}

func TestRunUnknownProtocolOrDevice(t *testing.T) {
	m := newModel(t)
	if _, err := Run(core.NewSCIANC(), m, "S32K144"); err == nil {
		t.Error("protocol without a Fig. 7 schedule accepted")
	}
	if _, err := Run(core.NewSTS(core.OptNone), m, "ESP32"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestPrototypeOnFasterHardware(t *testing.T) {
	// Sanity: the same session on the Raspberry Pi 4 model must be
	// orders of magnitude faster, with wire time unchanged.
	m := newModel(t)
	slow, err := Run(core.NewSTS(core.OptNone), m, "S32K144")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(core.NewSTS(core.OptNone), m, "RaspberryPi4")
	if err != nil {
		t.Fatal(err)
	}
	if fast.Processing*50 > slow.Processing {
		t.Errorf("RPi4 processing %v not ≪ S32K144 %v", fast.Processing, slow.Processing)
	}
	// Wire time is hardware independent (same bus, same bytes) — the
	// two runs use different random payload content, but identical
	// sizes, so wire time is identical.
	if fast.Wire != slow.Wire {
		t.Errorf("wire time differs across devices: %v vs %v", fast.Wire, slow.Wire)
	}
}
