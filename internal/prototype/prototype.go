// Package prototype reproduces the paper's §V-C evaluation: a secure
// session establishment between a battery management system (BMS)
// controller and an electric vehicle charging controller (EVCC), both
// modelled as S32K144 microcontrollers, communicating over CAN-FD with
// ISO-TP fragmentation (the test suite of Figures 5–7).
//
// The output is the Fig. 7 timeline: alternating processing segments
// (priced by the hardware model) and wire segments (priced by the
// CAN-FD bit-accounting of the transport substrate), for both the STS
// and the S-ECDSA protocol.
package prototype

import (
	"fmt"
	"time"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/hwmodel"
	"repro/internal/transport"
)

// SegmentKind distinguishes processing from wire time.
type SegmentKind string

const (
	// KindProcessing — cryptographic/device work.
	KindProcessing SegmentKind = "proc"
	// KindWire — CAN-FD transfer.
	KindWire SegmentKind = "wire"
)

// Segment is one interval of the Fig. 7 timeline.
type Segment struct {
	Device   string // "EVCC" (initiator) or "BMS" (responder); "bus" for wire
	Label    string
	Kind     SegmentKind
	Duration time.Duration
}

// Timeline is a full prototype session run.
type Timeline struct {
	Protocol   string
	Segments   []Segment
	Processing time.Duration
	Wire       time.Duration
	Total      time.Duration
	BusStats   canbus.Stats
}

// stepPhases maps each transcript step to the trace phases whose
// processing precedes its transmission, per protocol family. This is
// the schedule of Fig. 7: e.g. the STS responder computes its XG,
// premaster and signature before message B1 leaves.
func stepPhases(protocol string) (map[string][]core.Phase, map[string][]core.Phase, error) {
	switch protocol {
	case "STS":
		return map[string][]core.Phase{ // initiator (A / EVCC)
				"A1": {core.PhaseOp1},
				"A2": {core.PhaseOp2PubKey, core.PhaseOp2Premaster, core.PhaseOp4, core.PhaseOp3},
			}, map[string][]core.Phase{ // responder (B / BMS)
				"B1": {core.PhaseOp1, core.PhaseOp2Premaster, core.PhaseOp3},
				"B2": {core.PhaseOp2PubKey, core.PhaseOp4},
			}, nil
	case "S-ECDSA":
		return map[string][]core.Phase{
				"A1": {core.PhaseOp1},
				"A2": {core.PhaseOp2, core.PhaseOp4, core.PhaseOp3},
			}, map[string][]core.Phase{
				"B1": {core.PhaseOp1, core.PhaseOp3},
				"B2": {core.PhaseOp2, core.PhaseOp4},
			}, nil
	}
	return nil, nil, fmt.Errorf("prototype: no Fig. 7 schedule for %q", protocol)
}

// phaseLabel names the processing segments like Fig. 7 does.
var phaseLabel = map[string]map[core.Phase]string{
	"STS": {
		core.PhaseOp1:          "XG gen.",
		core.PhaseOp2Premaster: "Derive key",
		core.PhaseOp2PubKey:    "Calc. PubK",
		core.PhaseOp3:          "Create & enc. sign.",
		core.PhaseOp4:          "Verify resp.",
	},
	"S-ECDSA": {
		core.PhaseOp1: "Nonce gen.",
		core.PhaseOp2: "Calc. keys",
		core.PhaseOp3: "Sign. gen.",
		core.PhaseOp4: "Verify",
	},
}

// Run executes one prototype session: the protocol's real cryptography
// over a simulated CAN-FD bus, with processing priced on the named
// device.
func Run(p core.Protocol, model *hwmodel.Model, deviceName string) (*Timeline, error) {
	dev, err := model.Device(deviceName)
	if err != nil {
		return nil, err
	}
	initPhases, respPhases, err := stepPhases(p.Name())
	if err != nil {
		return nil, err
	}

	// Fresh provisioned parties (stage 1–2 of Fig. 1 handled by the
	// gateway/CA) on the paper's secp256r1.
	net, err := core.NewNetwork(ec.P256(), nil)
	if err != nil {
		return nil, err
	}
	evcc, bms, err := net.Pair("evcc-controller", "bms-controller")
	if err != nil {
		return nil, err
	}

	// Run the protocol to obtain transcript and trace.
	res, err := p.Run(evcc, bms)
	if err != nil {
		return nil, fmt.Errorf("prototype: session: %w", err)
	}
	raw := model.RawPhaseMS(res.Trace, dev)

	// CAN-FD bus with the prototype rates of §V-C.
	bus := canbus.NewBus(canbus.PrototypeRates)
	epEVCC := transport.NewEndpoint(bus.Attach("evcc"), 0x101)
	epBMS := transport.NewEndpoint(bus.Attach("bms"), 0x102)

	tl := &Timeline{Protocol: p.Name()}
	labels := phaseLabel[p.Name()]

	addProc := func(device string, role core.PartyRole, phases []core.Phase) {
		for _, ph := range phases {
			ms := raw[role][ph]
			if ms <= 0 {
				continue
			}
			d := time.Duration(ms * float64(time.Millisecond))
			tl.Segments = append(tl.Segments, Segment{
				Device: device, Label: labels[ph], Kind: KindProcessing, Duration: d,
			})
			tl.Processing += d
		}
	}

	for i, msg := range res.Transcript {
		var (
			sender   *transport.Endpoint
			receiver *transport.Endpoint
			device   string
		)
		if msg.From == core.RoleA {
			sender, receiver, device = epEVCC, epBMS, "EVCC"
			addProc(device, core.RoleA, initPhases[msg.Label])
		} else {
			sender, receiver, device = epBMS, epEVCC, "BMS"
			addProc(device, core.RoleB, respPhases[msg.Label])
		}

		// Transmit the real message bytes over the simulated bus.
		payload := make([]byte, 0, msg.Len())
		for _, f := range msg.Field {
			payload = append(payload, f.Bytes...)
		}
		wt, err := sender.Send(transport.Message{
			CommCode:  1,
			SessionID: 1,
			OpCode:    byte(i + 1),
			Payload:   payload,
		})
		if err != nil {
			return nil, fmt.Errorf("prototype: send %s: %w", msg.Label, err)
		}
		if _, err := receiver.Poll(); err != nil {
			return nil, fmt.Errorf("prototype: receive %s: %w", msg.Label, err)
		}
		tl.Segments = append(tl.Segments, Segment{
			Device: "bus", Label: msg.Label + " transfer", Kind: KindWire, Duration: wt,
		})
		tl.Wire += wt
	}

	tl.Total = tl.Processing + tl.Wire
	tl.BusStats = bus.Stats()
	return tl, nil
}

// Comparison runs the Fig. 7 experiment: STS vs S-ECDSA on the BMS ↔
// EVCC pair.
type Comparison struct {
	STS    *Timeline
	SECDSA *Timeline
	// IncreasePct is the relative STS cost over S-ECDSA (the paper
	// reports 21.67 %).
	IncreasePct float64
}

// Compare produces the full Fig. 7 comparison on the given device.
func Compare(model *hwmodel.Model, deviceName string) (*Comparison, error) {
	sts, err := Run(core.NewSTS(core.OptNone), model, deviceName)
	if err != nil {
		return nil, err
	}
	secdsa, err := Run(core.NewSECDSA(false), model, deviceName)
	if err != nil {
		return nil, err
	}
	inc := (sts.Total.Seconds() - secdsa.Total.Seconds()) / secdsa.Total.Seconds() * 100
	return &Comparison{STS: sts, SECDSA: secdsa, IncreasePct: inc}, nil
}
