package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/canbus"
	"repro/internal/cantp"
)

// reliablePair builds two reliable endpoints on one (optionally
// impaired) bus.
func reliablePair(t *testing.T, imp *canbus.Impairment, cfg Config) (*Endpoint, *Endpoint, *World, *canbus.Bus) {
	t.Helper()
	w := NewWorld(nil)
	bus := canbus.NewBus(canbus.PrototypeRates)
	bus.SetClock(w.Clock)
	if imp != nil {
		bus.Impair(*imp)
	}
	acfg, bcfg := cfg, cfg
	acfg.AcceptID, bcfg.AcceptID = 0x102, 0x101
	a := NewReliableEndpoint(w, bus.Attach("a"), 0x101, acfg)
	b := NewReliableEndpoint(w, bus.Attach("b"), 0x102, bcfg)
	return a, b, w, bus
}

func testPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 7)
	}
	return p
}

func TestReliableLosslessRoundTrip(t *testing.T) {
	a, b, w, _ := reliablePair(t, nil, DefaultConfig())
	for _, n := range []int{3, 100, 245, 800} {
		m := Message{CommCode: 1, SessionID: 9, OpCode: 2, Payload: testPayload(n)}
		if _, err := a.Send(m); err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		w.Run()
		got, err := b.Poll()
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("size %d corrupted", n)
		}
	}
	if st := a.Stats(); st.Retransmits != 0 || st.AbortedSends != 0 {
		t.Errorf("lossless path paid reliability costs: %+v", st)
	}
}

func TestReliableSurvivesFrameLoss(t *testing.T) {
	// Drop 15% of frames: FirstFrames, FlowControls and
	// ConsecutiveFrames die regularly, forcing N_Bs retransmissions
	// and whole-message resends. Deliver must still converge.
	imp := &canbus.Impairment{Seed: 11, Drop: 0.15}
	a, b, w, _ := reliablePair(t, imp, DefaultConfig())
	link := &Link{World: w, MaxResend: 10}

	var recovered bool
	for i := 0; i < 8; i++ {
		m := Message{CommCode: 1, SessionID: 1, OpCode: byte(i), Payload: testPayload(300)}
		got, err := link.Deliver(a, b, m)
		if err != nil {
			t.Fatalf("message %d failed under 15%% loss: %v", i, err)
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("message %d corrupted", i)
		}
	}
	st := a.Stats()
	recovered = st.Retransmits > 0 || st.MessageResends > 0
	if !recovered {
		t.Errorf("no recovery activity under 15%% loss: %+v", st)
	}
}

func TestReliableChecksumRejectsCorruption(t *testing.T) {
	// Corrupt every frame: the CRC-32 trailer (or ISO-TP PCI checks)
	// must reject everything; nothing may surface corrupted. The
	// payload fills its frame exactly (54 + 4 header + 4 CRC = 62, the
	// FD SingleFrame maximum), so every flipped bit hits a meaningful
	// byte rather than DLC padding.
	imp := &canbus.Impairment{Seed: 13, Corrupt: 1}
	a, b, w, _ := reliablePair(t, imp, DefaultConfig())
	m := Message{CommCode: 2, SessionID: 2, OpCode: 2, Payload: testPayload(54)}
	if _, err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	w.Run()
	if _, ok := b.TryPoll(); ok {
		t.Fatal("corrupted message surfaced")
	}
	st := b.Stats()
	if st.IntegrityDrops+st.ProtocolDrops == 0 {
		t.Errorf("corruption not counted anywhere: %+v", st)
	}
}

func TestReliableDeliverRecoversFromCorruption(t *testing.T) {
	imp := &canbus.Impairment{Seed: 17, Corrupt: 0.25}
	a, b, w, _ := reliablePair(t, imp, DefaultConfig())
	link := &Link{World: w, MaxResend: 10}
	m := Message{CommCode: 3, SessionID: 3, OpCode: 3, Payload: testPayload(200)}
	got, err := link.Deliver(a, b, m)
	if err != nil {
		t.Fatalf("delivery failed under 25%% corruption: %v", err)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("payload corrupted end-to-end")
	}
}

func TestReliableDuplicateSuppression(t *testing.T) {
	imp := &canbus.Impairment{Seed: 19, Duplicate: 1}
	a, b, w, _ := reliablePair(t, imp, DefaultConfig())
	m := Message{CommCode: 1, SessionID: 4, OpCode: 5, Payload: testPayload(10)}
	if _, err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	w.Run()
	if _, ok := b.TryPoll(); !ok {
		t.Fatal("message lost")
	}
	if _, ok := b.TryPoll(); ok {
		t.Fatal("duplicated single-frame message surfaced twice")
	}
	if b.Stats().DuplicateMessages == 0 {
		t.Error("duplicate not counted")
	}
}

func TestReliableOverflowIsTerminal(t *testing.T) {
	cfg := DefaultConfig()
	a, b, w, _ := reliablePair(t, nil, cfg)
	// Shrink b's capacity below the message size.
	small := cfg
	small.Receiver = cantp.ReceiverConfig{MaxMessage: 100}
	b.cfg = small
	b.Flush() // rebuild the receiver with the small capacity
	link := &Link{World: w, MaxResend: 3}
	_, err := link.Deliver(a, b, Message{Payload: testPayload(400)})
	if !errors.Is(err, cantp.ErrFlowOverflow) {
		t.Fatalf("got %v, want ErrFlowOverflow", err)
	}
	if a.Stats().MessageResends != 0 {
		t.Error("overflow was retried")
	}
}

func TestReliableWaitChain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Receiver.InitialWaits = 2
	a, b, w, _ := reliablePair(t, nil, cfg)
	m := Message{CommCode: 1, SessionID: 5, OpCode: 6, Payload: testPayload(300)}
	if _, err := a.Send(m); err != nil {
		t.Fatalf("send through Wait chain: %v", err)
	}
	w.Run()
	got, ok := b.TryPoll()
	if !ok || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("message lost behind Wait chain")
	}
	if a.Stats().WaitsHonoured != 2 {
		t.Errorf("sender honoured %d waits, want 2", a.Stats().WaitsHonoured)
	}
	// The Wait chain advanced simulated time by its intervals.
	if w.Clock.Now() < 200*time.Millisecond {
		t.Errorf("clock %v did not reflect the Wait chain", w.Clock.Now())
	}
}

func TestReliableAcrossImpairedGatewayChain(t *testing.T) {
	// Three segments, two gateways, loss on every segment: Deliver
	// still gets messages across, and the clock accumulates gateway
	// store latency.
	w := NewWorld(nil)
	busA := canbus.NewBus(canbus.PrototypeRates)
	busB := canbus.NewBus(canbus.PrototypeRates)
	busC := canbus.NewBus(canbus.PrototypeRates)
	for i, bus := range []*canbus.Bus{busA, busB, busC} {
		bus.SetClock(w.Clock)
		bus.Impair(canbus.Impairment{Seed: uint64(100 + i), Drop: 0.1})
	}
	gw1 := canbus.NewGateway("gw1", w.Clock)
	gw2 := canbus.NewGateway("gw2", w.Clock)
	fwd := canbus.IDRange(0x100, 0x1FF)
	rev := canbus.IDRange(0x200, 0x2FF)
	lat := 50 * time.Microsecond
	if err := gw1.Route(busA, busB, fwd, lat); err != nil {
		t.Fatal(err)
	}
	if err := gw1.Route(busB, busA, rev, lat); err != nil {
		t.Fatal(err)
	}
	if err := gw2.Route(busB, busC, fwd, lat); err != nil {
		t.Fatal(err)
	}
	if err := gw2.Route(busC, busB, rev, lat); err != nil {
		t.Fatal(err)
	}
	w.AddGateway(gw1)
	w.AddGateway(gw2)

	acfg, ccfg := DefaultConfig(), DefaultConfig()
	acfg.AcceptID, ccfg.AcceptID = 0x210, 0x110
	a := NewReliableEndpoint(w, busA.Attach("initiator"), 0x110, acfg)
	c := NewReliableEndpoint(w, busC.Attach("responder"), 0x210, ccfg)
	link := &Link{World: w, MaxResend: 6}

	for i := 0; i < 4; i++ {
		out := Message{CommCode: 1, SessionID: 7, OpCode: byte(i), Payload: testPayload(150 + 40*i)}
		got, err := link.Deliver(a, c, out)
		if err != nil {
			t.Fatalf("A→C message %d: %v", i, err)
		}
		if !bytes.Equal(got.Payload, out.Payload) {
			t.Fatalf("A→C message %d corrupted", i)
		}
		back := Message{CommCode: 1, SessionID: 7, OpCode: 0x80 | byte(i), Payload: testPayload(90 + 30*i)}
		got, err = link.Deliver(c, a, back)
		if err != nil {
			t.Fatalf("C→A message %d: %v", i, err)
		}
		if !bytes.Equal(got.Payload, back.Payload) {
			t.Fatalf("C→A message %d corrupted", i)
		}
	}
	if gw1.Stats().Forwarded == 0 || gw2.Stats().Forwarded == 0 {
		t.Error("gateways forwarded nothing")
	}
	if gw1.Stats().StoreTime == 0 {
		t.Error("no store-and-forward latency accounted")
	}
}

func TestReliableDeterministicReplay(t *testing.T) {
	run := func() (Stats, Stats, canbus.Stats) {
		imp := &canbus.Impairment{Seed: 23, Drop: 0.15, Corrupt: 0.05}
		a, b, w, bus := reliablePair(t, imp, DefaultConfig())
		link := &Link{World: w, MaxResend: 6}
		for i := 0; i < 5; i++ {
			if _, err := link.Deliver(a, b, Message{OpCode: byte(i), Payload: testPayload(200)}); err != nil {
				t.Fatalf("message %d: %v", i, err)
			}
		}
		return a.Stats(), b.Stats(), bus.Stats()
	}
	a1, b1, s1 := run()
	a2, b2, s2 := run()
	if a1 != a2 || b1 != b2 || s1 != s2 {
		t.Fatalf("same seed diverged:\nA %+v vs %+v\nB %+v vs %+v\nbus %+v vs %+v", a1, a2, b1, b2, s1, s2)
	}
}
