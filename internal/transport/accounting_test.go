package transport

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/canbus"
)

func TestAccountingAttributesCostsToOpcodes(t *testing.T) {
	cfg := DefaultConfig()
	acc := NewAccounting()
	cfg.Accounting = acc
	a, b, w, _ := reliablePair(t, nil, cfg)
	link := &Link{World: w, MaxResend: 3}

	// Two opcodes: a multi-frame step and a single-frame step.
	big := Message{CommCode: 1, SessionID: 1, OpCode: 0x01, Payload: testPayload(300)}
	small := Message{CommCode: 1, SessionID: 1, OpCode: 0x04, Payload: testPayload(5)}
	if _, err := link.Deliver(a, b, big); err != nil {
		t.Fatal(err)
	}
	if _, err := link.Deliver(b, a, small); err != nil {
		t.Fatal(err)
	}

	steps := acc.Snapshot()
	bc, ok := steps[0x01]
	if !ok || bc.Messages != 1 || bc.PayloadBytes != 300 {
		t.Fatalf("opcode 0x01 row wrong: %+v", bc)
	}
	// 300 B + header + CRC crosses several CAN-FD frames.
	if bc.Frames < 5 || bc.WireTime == 0 {
		t.Errorf("opcode 0x01 frame accounting implausible: %+v", bc)
	}
	sc, ok := steps[0x04]
	if !ok || sc.Messages != 1 || sc.Frames != 1 {
		t.Fatalf("opcode 0x04 row wrong: %+v", sc)
	}
	if bc.Retransmits != 0 || bc.Resends != 0 || sc.Retransmits != 0 || sc.Resends != 0 {
		t.Errorf("lossless run charged recovery: %+v %+v", bc, sc)
	}
	if bc.QueueTime != 0 || sc.QueueTime != 0 {
		t.Errorf("uncongested single-segment run charged queueing delay: %+v %+v", bc, sc)
	}
}

func TestAccountingCountsRecoveryPerStep(t *testing.T) {
	imp := &canbus.Impairment{Seed: 31, Drop: 0.2}
	cfg := DefaultConfig()
	acc := NewAccounting()
	cfg.Accounting = acc
	a, b, w, _ := reliablePair(t, imp, cfg)
	link := &Link{World: w, MaxResend: 10}

	for i := 0; i < 6; i++ {
		m := Message{CommCode: 1, SessionID: 2, OpCode: 0x01 + byte(i%2), Payload: testPayload(250)}
		if _, err := link.Deliver(a, b, m); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
	total := 0
	for op, c := range acc.Snapshot() {
		if op != 0x01 && op != 0x02 {
			t.Errorf("unexpected opcode %#x in accounting", op)
		}
		total += c.Retransmits + c.Resends
	}
	if total == 0 {
		t.Error("20% loss produced no per-step recovery accounting")
	}
	// Per-step rows must agree with the endpoint aggregate.
	agg := 0
	for _, c := range acc.Snapshot() {
		agg += c.Retransmits
	}
	if agg != a.Stats().Retransmits {
		t.Errorf("per-step retransmits %d != endpoint aggregate %d", agg, a.Stats().Retransmits)
	}
}

// TestReliableAcrossRateLimitedGateway drives a whole message through
// a congested gateway port: the egress queue gates frames on the
// simulated clock, the world's timer loop advances to the release
// times, and the message still completes.
func TestReliableAcrossRateLimitedGateway(t *testing.T) {
	w := NewWorld(nil)
	busA := canbus.NewBus(canbus.PrototypeRates)
	busB := canbus.NewBus(canbus.PrototypeRates)
	busA.SetClock(w.Clock)
	busB.SetClock(w.Clock)
	gw := canbus.NewGateway("gw", w.Clock)
	if err := gw.Route(busA, busB, canbus.IDRange(0x100, 0x1FF), 0); err != nil {
		t.Fatal(err)
	}
	if err := gw.Route(busB, busA, canbus.IDRange(0x200, 0x2FF), 0); err != nil {
		t.Fatal(err)
	}
	// 2000 frames/s toward B: a 500 µs serialization gap per frame,
	// roughly 10× the frame wire time — a visibly congested port.
	if err := gw.SetEgress(busB, canbus.EgressPolicy{Rate: 2000}); err != nil {
		t.Fatal(err)
	}
	w.AddGateway(gw)

	acc := NewAccounting()
	acfg, bcfg := DefaultConfig(), DefaultConfig()
	acfg.Accounting = acc
	acfg.AcceptID, bcfg.AcceptID = 0x200, 0x100
	a := NewReliableEndpoint(w, busA.Attach("a"), 0x100, acfg)
	b := NewReliableEndpoint(w, busB.Attach("b"), 0x200, bcfg)
	link := &Link{World: w, MaxResend: 4}

	m := Message{CommCode: 1, SessionID: 3, OpCode: 7, Payload: testPayload(400)}
	start := w.Clock.Now()
	got, err := link.Deliver(a, b, m)
	if err != nil {
		t.Fatalf("delivery across congested gateway: %v", err)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("payload corrupted")
	}
	// 400 B ≈ 8 frames; at 500 µs per release the congestion alone
	// costs ≥ 3 ms of simulated time. The upper bound pins Deliver's
	// step-and-poll behaviour: a merely-congested message completes
	// when its last frame is released, never by burning the full 2 s
	// response timeout.
	elapsed := w.Clock.Now() - start
	if elapsed < 3*time.Millisecond {
		t.Errorf("congested delivery took %v of simulated time — rate limit not applied", elapsed)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("congested delivery took %v — Deliver waited for the response timeout instead of the egress release", elapsed)
	}
	if a.Stats().AbortedSends != 0 {
		t.Errorf("congestion aborted the send: %+v", a.Stats())
	}
	// The per-step accounting must attribute the congestion: the
	// message's opcode pays queueing delay on top of its wire time —
	// the tail of the transfer waited for egress releases after the
	// sender's last frame.
	c := acc.Snapshot()[7]
	if c.QueueTime <= 0 {
		t.Errorf("congested delivery charged no queueing delay: %+v", c)
	}
	if c.QueueTime >= elapsed {
		t.Errorf("queueing delay %v exceeds the whole delivery %v", c.QueueTime, elapsed)
	}
}
