package transport

import (
	"bytes"
	"testing"
)

// FuzzMessageTrailer targets the reliable mode's CRC-32 message
// trailer and the application-layer codec under it. Properties:
// nothing panics on arbitrary bytes; append→verify round-trips any
// payload; a verifying input is exactly reproduced by re-appending
// its own checksum; and a decodable message re-encodes byte-exactly.
func FuzzMessageTrailer(f *testing.F) {
	// A well-formed message with a valid trailer.
	f.Add(appendChecksum(Message{CommCode: 1, SessionID: 7, OpCode: 2, Payload: []byte("hello")}.Encode()))
	// Truncated trailer, empty input, trailer-only input.
	f.Add([]byte{0x01, 0x02})
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	// Valid header, corrupted checksum.
	bad := appendChecksum(Message{CommCode: 9, SessionID: 1, OpCode: 4, Payload: []byte("x")}.Encode())
	bad[len(bad)-1] ^= 0xFF
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Round trip: any bytes survive append→verify unchanged.
		sealed := appendChecksum(data)
		body, ok := verifyChecksum(sealed)
		if !ok || !bytes.Equal(body, data) {
			t.Fatalf("checksum round trip failed for %d bytes", len(data))
		}

		// Arbitrary bytes through the verifier: no panic, and success
		// implies self-consistency.
		if stripped, ok := verifyChecksum(data); ok {
			if !bytes.Equal(appendChecksum(stripped), data) {
				t.Fatal("verified input not reproduced by its own checksum")
			}
			if msg, err := DecodeMessage(stripped); err == nil {
				if !bytes.Equal(msg.Encode(), stripped) {
					t.Fatal("decoded message did not re-encode byte-exactly")
				}
			}
		}

		// The raw codec path (lockstep mode has no trailer).
		if msg, err := DecodeMessage(data); err == nil {
			if !bytes.Equal(msg.Encode(), data) {
				t.Fatal("raw decode/encode round trip diverged")
			}
		}
	})
}
