package transport

import (
	"errors"
	"sync"
	"time"

	"repro/internal/canbus"
	"repro/internal/cantp"
)

// World is the single-threaded pump for one simulated network
// topology: the shared clock, every gateway bridging its segments and
// every reliable endpoint attached to them. Reliable endpoints block
// inside Send waiting for FlowControls; the world is how that wait
// makes progress — gateways forward queued frames, peers service
// their queues and answer, and simulated time only moves through
// AdvanceTo, stopping at each intermediate protocol timer.
//
// A world (and everything attached to it) must be driven from one
// goroutine at a time; distinct worlds are fully independent. This is
// the determinism contract of the chaos experiments: one goroutine,
// one seed, one reproducible fault and recovery trace.
type World struct {
	Clock *canbus.Clock

	// mu serializes whole conversations (see Acquire) — the pump
	// itself stays lock-free and single-threaded by contract.
	mu sync.Mutex

	gateways  []*canbus.Gateway
	agents    []Agent
	endpoints []*Endpoint
}

// Agent is a pump participant beyond gateways and endpoints — a
// scenario adversary, a background traffic source, any actor that
// reacts to frames or to the simulated clock. The world pumps agents
// every Run cycle (after gateways, before endpoints — a fixed order,
// part of the determinism contract) and treats NextDeadline like a
// protocol timer, so an agent can schedule future actions on the
// simulated clock and Step will stop there. Pump returns how much
// work the agent did (frames drained or injected, state flips); it
// must return 0 when idle or Run never reaches quiescence, and every
// decision it takes must be a function of observed frame content, the
// simulated clock and the agent's own seeded state — never of host
// scheduling — or it breaks the schedule-invariance guarantee of
// every measurement sharing its world.
type Agent interface {
	Pump() int
	NextDeadline() time.Duration
}

// Acquire takes the world's conversation lock. Higher-level drivers
// that may be called from multiple goroutines (fleet.NetCarrier under
// EstablishAll with parallelism > 1) hold it for a whole exchange, so
// concurrent handshakes over one fabric serialize instead of racing
// the unsynchronized endpoints. Scheduling still permutes the order
// in which whole attempts run; reproducibility at parallelism > 1
// additionally needs canbus's content-keyed impairment (fault
// decisions independent of cross-conversation interleaving) and
// per-attempt handshake randomness (fleet.Manager.SetHandshakeRand),
// under which every aggregate counter and the simulated clock are
// permutation-invariant.
func (w *World) Acquire() { w.mu.Lock() }

// Release drops the conversation lock.
func (w *World) Release() { w.mu.Unlock() }

// NewWorld creates a world around a clock (a nil clock gets created).
func NewWorld(clock *canbus.Clock) *World {
	if clock == nil {
		clock = canbus.NewClock()
	}
	return &World{Clock: clock}
}

// AddGateway registers a gateway with the pump loop.
func (w *World) AddGateway(g *canbus.Gateway) { w.gateways = append(w.gateways, g) }

// AddAgent registers an agent with the pump loop. Registration order
// is pump order; callers that register several agents must do so in a
// deterministic order (scenario builds them from the config slice).
func (w *World) AddAgent(a Agent) { w.agents = append(w.agents, a) }

func (w *World) addEndpoint(e *Endpoint) { w.endpoints = append(w.endpoints, e) }

// Run pumps gateways and endpoints until the topology is quiescent —
// no queued frame anywhere that a pump would move. Returns the number
// of frames moved.
func (w *World) Run() int {
	total := 0
	for {
		n := 0
		for _, g := range w.gateways {
			n += g.Pump()
		}
		for _, a := range w.agents {
			n += a.Pump()
		}
		for _, e := range w.endpoints {
			n += e.Service()
		}
		if n == 0 {
			return total
		}
		total += n
	}
}

// nextTimer returns the earliest pending timer after now — endpoint
// protocol deadlines and gateway egress release times — or 0 when
// none is armed.
func (w *World) nextTimer(now time.Duration) time.Duration {
	var min time.Duration
	for _, e := range w.endpoints {
		if dl := e.nextDeadline(); dl > now && (min == 0 || dl < min) {
			min = dl
		}
	}
	for _, g := range w.gateways {
		if dl := g.NextDeadline(); dl > now && (min == 0 || dl < min) {
			min = dl
		}
	}
	for _, a := range w.agents {
		if dl := a.NextDeadline(); dl > now && (min == 0 || dl < min) {
			min = dl
		}
	}
	return min
}

// Step moves simulated time forward to the earliest pending endpoint
// timer (or to t when no timer comes first), fires the due timers and
// pumps the topology to quiescence. One step, so callers waiting on a
// protocol event can re-examine their state between timers instead of
// burning simulated time past the event.
func (w *World) Step(t time.Duration) {
	now := w.Clock.Now()
	if now >= t {
		return
	}
	step := t
	if nt := w.nextTimer(now); nt > 0 && nt < step {
		step = nt
	}
	w.Clock.AdvanceTo(step)
	for _, e := range w.endpoints {
		e.expire()
	}
	w.Run()
}

// AdvanceTo moves simulated time forward to t, stopping at every
// intermediate endpoint timer so owed FlowControls fire and N_Cr
// expiries abandon stale transfers in order.
func (w *World) AdvanceTo(t time.Duration) {
	for w.Clock.Now() < t {
		w.Step(t)
	}
}

// Link is the retrying message channel between two endpoints of a
// world: ISO-TP recovers frame-level loss inside Endpoint.Send, and
// Deliver adds whole-message retransmission on top for the losses
// ISO-TP cannot see (a lost ConsecutiveFrame abandons the transfer at
// the receiver with nothing to tell the sender when BlockSize is 0).
type Link struct {
	World *World

	// ResponseTimeout bounds the wait for the message to complete at
	// the destination before a resend (default 2 s simulated).
	ResponseTimeout time.Duration
	// MaxResend caps whole-message retransmissions (default 2).
	MaxResend int
}

// ErrDeliveryFailed is returned when a message could not be completed
// at the destination within the resend budget.
var ErrDeliveryFailed = errors.New("transport: delivery failed after resend budget")

func (l *Link) responseTimeout() time.Duration {
	if l.ResponseTimeout > 0 {
		return l.ResponseTimeout
	}
	return 2 * time.Second
}

func (l *Link) maxResend() int {
	if l.MaxResend > 0 {
		return l.MaxResend
	}
	return 2
}

// Deliver sends m from src until it completes at dst, resending the
// whole message (after letting dst's N_Cr lapse clean any partial
// state) up to MaxResend times. It returns the message as received.
// Both endpoints must belong to the link's world.
func (l *Link) Deliver(src, dst *Endpoint, m Message) (Message, error) {
	var lastErr error
	for attempt := 0; attempt <= l.maxResend(); attempt++ {
		if attempt > 0 {
			src.stats.MessageResends++
			src.accountResend(m.OpCode)
		}
		if _, err := src.Send(m); err != nil {
			lastErr = err
			// An Overflow verdict is a capacity statement, not noise;
			// resending the same message cannot succeed.
			if errors.Is(err, cantp.ErrFlowOverflow) {
				return Message{}, err
			}
			continue
		}
		// Everything from here to completion is transit, not
		// transmission: the sender is done, and any simulated time that
		// passes is the fabric releasing gated frames. Charge it to the
		// message's step as queueing delay when the delivery completes.
		sent := l.World.Clock.Now()
		l.World.Run()
		if got, ok := dst.TryPoll(); ok {
			src.accountQueueDelay(m.OpCode, l.World.Clock.Now()-sent)
			return got, nil
		}
		// Nothing completed yet: the tail of the transfer is either
		// gated behind a congested gateway's egress queue or died on
		// the wire. Advance toward the response deadline one timer at
		// a time, polling after each step, so a merely-delayed message
		// surfaces the moment its last frame is released rather than
		// after the full timeout; only a genuinely lost tail burns the
		// whole budget (letting the destination's N_Cr lapse clean any
		// partial state) and forces a resend.
		deadline := l.World.Clock.Now() + l.responseTimeout()
		for l.World.Clock.Now() < deadline {
			l.World.Step(deadline)
			if got, ok := dst.TryPoll(); ok {
				src.accountQueueDelay(m.OpCode, l.World.Clock.Now()-sent)
				return got, nil
			}
		}
		lastErr = ErrDeliveryFailed
	}
	if lastErr == nil {
		lastErr = ErrDeliveryFailed
	}
	return Message{}, lastErr
}
