package transport

import (
	"sync"
	"time"
)

// StepCost aggregates the wire cost attributed to one application
// opcode. For STS handshake traffic the opcode is the Table II step
// code (core.StepLabel names it), so a populated Accounting answers
// the question the paper's overhead table cannot: which protocol step
// pays for recovery when the bus degrades.
type StepCost struct {
	// Messages counts completed sends of this opcode.
	Messages int
	// Frames counts frames the sending endpoint put on the wire while
	// the send was in flight — data frames, FirstFrame retransmissions
	// and any receiver-side FlowControls it answered meanwhile.
	Frames int
	// Retransmits counts ISO-TP FirstFrame retransmissions (N_Bs
	// expiry) attributed to this opcode.
	Retransmits int
	// WaitsHonoured counts FlowControl(Wait) frames honoured.
	WaitsHonoured int
	// Resends counts whole-message retransmissions by Link.Deliver.
	Resends int
	// Aborted counts transfers abandoned after exhausting budgets.
	Aborted int
	// PayloadBytes sums application payload bytes of completed sends.
	PayloadBytes int
	// WireTime is the cumulative bus occupancy of the counted frames.
	WireTime time.Duration
	// QueueTime is the cumulative simulated time completed deliveries
	// of this opcode spent in the fabric after their last frame left
	// the sender — gateway store-and-forward releases, egress gating
	// behind a congested port and terminal servicing at the receiver.
	// It is the per-step price of congestion, where WireTime is the
	// per-step price of bandwidth.
	QueueTime time.Duration
}

// Accounting attributes per-send costs to opcodes across every
// endpoint configured with it (Config.Accounting). One instance is
// typically shared by all endpoints of a measurement scenario, so the
// snapshot is the fleet-wide per-step cost table. Safe for concurrent
// use; within one single-goroutine World the lock is uncontended.
type Accounting struct {
	mu    sync.Mutex
	steps map[byte]*StepCost
}

// NewAccounting returns an empty per-step cost table.
func NewAccounting() *Accounting {
	return &Accounting{steps: make(map[byte]*StepCost)}
}

// record applies an update to the opcode's cost row.
func (a *Accounting) record(op byte, update func(*StepCost)) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.steps[op]
	if !ok {
		c = &StepCost{}
		a.steps[op] = c
	}
	update(c)
}

// Snapshot returns a copy of the per-opcode cost table.
func (a *Accounting) Snapshot() map[byte]StepCost {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[byte]StepCost, len(a.steps))
	for op, c := range a.steps {
		out[op] = *c
	}
	return out
}
