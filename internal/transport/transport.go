// Package transport implements the application-layer session framing
// of the paper's Figure 6 on top of the ISO-TP and CAN-FD substrates:
//
//	Application: | Comm. Code | Sess. Comm ID | OP Code | App. Data |
//	Transport:   ISO 15765-2 segmentation (internal/cantp)
//	Data link:   CAN-FD frames (internal/canbus)
//
// Endpoints exchange Messages; the endpoint accounts the simulated
// wire time of every frame so the prototype harness (Fig. 7) can
// report the CAN-FD transfer share of the session separately from the
// cryptographic processing time.
//
// An Endpoint runs in one of two modes. The default lockstep mode is
// the original collision-free prototype: Send transmits every frame
// back-to-back and trusts the bus to deliver. Reliable mode (see
// NewReliableEndpoint and World) engages the timer- and
// retransmission-aware ISO-TP state machines of internal/cantp — N_Bs
// and N_Cr supervision on the simulated clock, FlowControl
// Wait/Overflow handling, bounded FirstFrame retransmission with
// backoff — plus a CRC-32 message trailer that rejects payloads
// corrupted below the CAN CRC's notice. Link layers whole-message
// retransmission on top, which is what the handshake retry policies
// of internal/fleet build on.
package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/canbus"
	"repro/internal/cantp"
)

// HeaderSize is the application-layer header length.
const HeaderSize = 4

// ChecksumSize is the length of the optional CRC-32 message trailer.
const ChecksumSize = 4

// Message is one application-layer session message.
type Message struct {
	CommCode  byte   // protocol family discriminator
	SessionID uint16 // session communication ID
	OpCode    byte   // protocol step within the session
	Payload   []byte
}

// Encode serializes the message with its 4-byte header.
func (m Message) Encode() []byte {
	out := make([]byte, HeaderSize+len(m.Payload))
	out[0] = m.CommCode
	binary.BigEndian.PutUint16(out[1:3], m.SessionID)
	out[3] = m.OpCode
	copy(out[HeaderSize:], m.Payload)
	return out
}

// DecodeMessage parses an application-layer message.
func DecodeMessage(data []byte) (Message, error) {
	if len(data) < HeaderSize {
		return Message{}, fmt.Errorf("transport: message truncated (%d bytes)", len(data))
	}
	return Message{
		CommCode:  data[0],
		SessionID: binary.BigEndian.Uint16(data[1:3]),
		OpCode:    data[3],
		Payload:   append([]byte(nil), data[HeaderSize:]...),
	}, nil
}

// Stats accumulates per-endpoint traffic counters.
type Stats struct {
	MessagesSent     int
	MessagesReceived int
	FramesSent       int
	PayloadBytesSent int
	WireTime         time.Duration // bus time consumed by this endpoint's frames

	// Reliability counters (zero in lockstep mode).
	Retransmits       int // ISO-TP FirstFrame retransmissions (N_Bs expiry)
	WaitsHonoured     int // FlowControl(Wait) frames honoured while sending
	MessageResends    int // whole-message resends by Link.Deliver
	AbortedSends      int // transfers abandoned after exhausting budgets
	IntegrityDrops    int // reassembled messages failing the CRC-32 trailer
	ProtocolDrops     int // frames dropped for PCI/sequence violations
	DuplicateMessages int // consecutive identical messages suppressed
	FilteredFrames    int // frames rejected by the acceptance filter
}

// Config parameterizes a reliable endpoint.
type Config struct {
	// Sender configures N_Bs supervision, retransmission budget,
	// backoff and the Wait budget. Zero takes cantp defaults.
	Sender cantp.SenderConfig
	// Receiver configures N_Cr supervision, BlockSize/STmin
	// advertisement and capacity. Zero takes cantp defaults.
	Receiver cantp.ReceiverConfig
	// Checksum appends a CRC-32 trailer to every message and rejects
	// reassembled messages whose trailer does not verify — the
	// "CRC-collision" corruption class the bit-level CAN CRC model
	// cannot catch. Both ends of a link must agree.
	Checksum bool
	// AcceptID is the hardware acceptance filter: only frames with
	// this CAN identifier reach the protocol state machines (every
	// other broadcast on the segment is dropped and counted). 0
	// accepts everything — correct only for a two-node point-to-point
	// segment; on a shared segment an unfiltered endpoint would
	// answer its neighbours' FirstFrames with spoofed FlowControls.
	AcceptID uint32
	// Accounting, when non-nil, attributes every send's wire cost to
	// the message's OpCode — for handshake traffic, the Table II step.
	// Share one instance across a scenario's endpoints for a
	// fleet-wide per-step cost table.
	Accounting *Accounting
}

// DefaultConfig is the reliable profile used by the chaos harness.
func DefaultConfig() Config {
	return Config{
		Sender:   cantp.DefaultSenderConfig(),
		Receiver: cantp.ReceiverConfig{},
		Checksum: true,
	}
}

// Endpoint is one session participant attached to a CAN bus node.
type Endpoint struct {
	node     *canbus.Node
	txID     uint32
	reliable bool
	cfg      Config
	world    *World
	clock    *canbus.Clock

	rx      *cantp.Receiver
	rxBase  cantp.ReceiverStats // counters of receivers retired by Flush
	sender  *cantp.Sender       // non-nil only inside a reliable Send
	sendErr error               // terminal FC verdict discovered during Service
	inbox   []Message
	lastMsg []byte // last delivered message bytes, for duplicate suppression
	lastErr error  // deferred service error (lockstep mode only)
	stats   Stats
}

// NewEndpoint wraps a bus node in lockstep (original prototype) mode.
// txID is the CAN identifier used for all frames this endpoint
// transmits.
func NewEndpoint(node *canbus.Node, txID uint32) *Endpoint {
	return &Endpoint{
		node: node,
		txID: txID,
		rx:   cantp.NewReceiver(cantp.ReceiverConfig{}),
	}
}

// NewReliableEndpoint wraps a bus node in reliable mode and registers
// it with the world, whose clock drives every protocol timer.
func NewReliableEndpoint(w *World, node *canbus.Node, txID uint32, cfg Config) *Endpoint {
	e := &Endpoint{
		node:     node,
		txID:     txID,
		reliable: true,
		cfg:      cfg,
		world:    w,
		clock:    w.Clock,
		rx:       cantp.NewReceiver(cfg.Receiver),
	}
	w.addEndpoint(e)
	return e
}

// Stats returns a snapshot of the endpoint counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// ReceiverStats returns the ISO-TP reassembly counters, cumulative
// across Flushes.
func (e *Endpoint) ReceiverStats() cantp.ReceiverStats {
	return addReceiverStats(e.rxBase, e.rx.Stats())
}

func addReceiverStats(a, b cantp.ReceiverStats) cantp.ReceiverStats {
	a.Completed += b.Completed
	a.Abandoned += b.Abandoned
	a.Duplicates += b.Duplicates
	a.Restarts += b.Restarts
	a.Overflows += b.Overflows
	a.Waits += b.Waits
	return a
}

// Flush discards buffered messages, partial reassembly state and any
// deferred error — the clean-slate a fresh handshake attempt starts
// from. Statistics survive.
func (e *Endpoint) Flush() {
	for {
		if _, ok := e.node.Receive(); !ok {
			break
		}
	}
	e.rxBase = addReceiverStats(e.rxBase, e.rx.Stats())
	e.rx = cantp.NewReceiver(e.receiverConfig())
	e.inbox = nil
	e.lastMsg = nil
	e.lastErr = nil
	e.sender = nil
	e.sendErr = nil
}

func (e *Endpoint) receiverConfig() cantp.ReceiverConfig {
	if e.reliable {
		return e.cfg.Receiver
	}
	return cantp.ReceiverConfig{}
}

// now returns the simulated time (zero without a clock).
func (e *Endpoint) now() time.Duration { return e.clock.Now() }

// Send transmits a message. In lockstep mode every frame goes out
// back-to-back, trusting the bus (the original prototype behaviour).
// In reliable mode the cantp.Sender state machine runs with its
// timers on the world clock: it waits for FlowControls, honours Wait,
// paces to STmin, retransmits the FirstFrame with backoff on N_Bs
// expiry and aborts on Overflow or budget exhaustion. The returned
// duration is the wire time of every frame actually transmitted,
// retransmissions included.
func (e *Endpoint) Send(m Message) (time.Duration, error) {
	if e.cfg.Accounting == nil {
		return e.send(m)
	}
	f0, w0 := e.stats.FramesSent, e.stats.WireTime
	r0, wh0, ab0 := e.stats.Retransmits, e.stats.WaitsHonoured, e.stats.AbortedSends
	wt, err := e.send(m)
	e.cfg.Accounting.record(m.OpCode, func(c *StepCost) {
		c.Frames += e.stats.FramesSent - f0
		c.WireTime += e.stats.WireTime - w0
		c.Retransmits += e.stats.Retransmits - r0
		c.WaitsHonoured += e.stats.WaitsHonoured - wh0
		c.Aborted += e.stats.AbortedSends - ab0
		if err == nil {
			c.Messages++
			c.PayloadBytes += len(m.Payload)
		}
	})
	return wt, err
}

// accountResend attributes one whole-message resend (Link.Deliver) to
// the message's opcode.
func (e *Endpoint) accountResend(op byte) {
	if e.cfg.Accounting == nil {
		return
	}
	e.cfg.Accounting.record(op, func(c *StepCost) { c.Resends++ })
}

// accountQueueDelay attributes the post-send transit delay of a
// completed delivery (Link.Deliver) — store-and-forward and egress
// releases between the sender's last frame and the message surfacing
// at the destination — to the message's opcode.
func (e *Endpoint) accountQueueDelay(op byte, d time.Duration) {
	if e.cfg.Accounting == nil || d <= 0 {
		return
	}
	e.cfg.Accounting.record(op, func(c *StepCost) { c.QueueTime += d })
}

// send is the unaccounted transmit path behind Send.
func (e *Endpoint) send(m Message) (time.Duration, error) {
	payload := m.Encode()
	if e.cfg.Checksum {
		payload = appendChecksum(payload)
	}
	if !e.reliable {
		return e.sendLockstep(m, payload)
	}

	s, err := cantp.NewSender(e.cfg.Sender, payload, e.now())
	if err != nil {
		return 0, fmt.Errorf("transport: send: %w", err)
	}
	e.sender, e.sendErr = s, nil
	defer func() {
		st := s.Stats()
		e.stats.Retransmits += st.Retransmits
		e.stats.WaitsHonoured += st.WaitsHonoured
		e.sender = nil
	}()

	var total time.Duration
	for !s.Done() {
		now := e.now()
		if f := s.Next(now); f != nil {
			wt, err := e.transmit(f)
			if err != nil {
				return total, fmt.Errorf("transport: send frame: %w", err)
			}
			total += wt
			continue
		}
		if err := e.takeSendErr(); err != nil {
			e.stats.AbortedSends++
			return total, fmt.Errorf("transport: send: %w", err)
		}
		// Waiting on a FlowControl or the STmin gate: let the rest of
		// the world make progress (gateways forward, peers answer, our
		// own Service feeds FCs to the sender)...
		moved := e.world.Run()
		if err := e.takeSendErr(); err != nil {
			e.stats.AbortedSends++
			return total, fmt.Errorf("transport: send: %w", err)
		}
		if moved > 0 {
			// Something happened (possibly our FC): re-evaluate the
			// sender before touching the clock.
			continue
		}
		now = e.now()
		if at := s.ReadyAt(); at > now {
			// ...then jump the clock over the pacing gap...
			e.world.AdvanceTo(at)
			continue
		}
		if s.Deadline() > 0 {
			// ...or toward the N_Bs deadline one timer at a time,
			// stopping the moment the awaited FlowControl lands (a
			// Wait chain re-arms the deadline; a Continue clears it,
			// and simulated time must not inflate past that point).
			for s.Deadline() > 0 && e.now() < s.Deadline() {
				e.world.Step(s.Deadline())
				if err := e.takeSendErr(); err != nil {
					e.stats.AbortedSends++
					return total, fmt.Errorf("transport: send: %w", err)
				}
			}
			if err := s.OnTimeout(e.now()); err != nil {
				e.stats.AbortedSends++
				return total, fmt.Errorf("transport: send: %w", err)
			}
			continue
		}
		if s.Done() {
			break
		}
		return total, errors.New("transport: sender stalled")
	}
	e.stats.MessagesSent++
	e.stats.PayloadBytesSent += len(m.Payload)
	return total, nil
}

// takeSendErr consumes a terminal verdict (Overflow, Wait budget)
// delivered to the sender by Service mid-transfer.
func (e *Endpoint) takeSendErr() error {
	err := e.sendErr
	e.sendErr = nil
	return err
}

// sendLockstep is the original collision-free transmit path.
func (e *Endpoint) sendLockstep(m Message, payload []byte) (time.Duration, error) {
	frames, err := cantp.Segment(payload)
	if err != nil {
		return 0, fmt.Errorf("transport: send: %w", err)
	}
	var total time.Duration
	for _, fp := range frames {
		wt, err := e.transmit(fp)
		if err != nil {
			return total, fmt.Errorf("transport: send frame: %w", err)
		}
		total += wt
	}
	e.stats.MessagesSent++
	e.stats.PayloadBytesSent += len(m.Payload)
	return total, nil
}

// transmit puts one ISO-TP frame payload on the wire, charging the
// frame to the endpoint's counters (so FlowControls and the frames of
// an eventually-aborted transfer are accounted too).
func (e *Endpoint) transmit(payload []byte) (time.Duration, error) {
	wt, err := e.node.Send(canbus.Frame{ID: e.txID, BRS: true, Data: payload})
	if err != nil {
		return 0, err
	}
	e.stats.FramesSent++
	e.stats.WireTime += wt
	return wt, nil
}

// Service drains the receive queue into the protocol state machines:
// frames failing the acceptance filter are dropped, FlowControls feed
// the active sender, data frames feed the receiver (answering with
// FCs as the receiver dictates), completed messages land in the inbox
// after checksum verification. It also services the receiver's
// timers. Returns the number of frames processed, as the world pump's
// progress measure.
//
// In lockstep mode the drain stops at the first completed message or
// protocol error, preserving the original Poll semantics: events
// surface one per Poll, in queue order.
func (e *Endpoint) Service() int {
	processed := 0
	for {
		if !e.reliable && (len(e.inbox) > 0 || e.lastErr != nil) {
			break
		}
		frame, ok := e.node.Receive()
		if !ok {
			break
		}
		processed++
		if e.cfg.AcceptID != 0 && frame.ID != e.cfg.AcceptID {
			e.stats.FilteredFrames++
			continue
		}
		now := e.now()
		if len(frame.Data) > 0 && frame.Data[0]>>4 == 0x3 {
			e.serviceFlowControl(frame.Data, now)
			continue
		}
		msg, fc, err := e.rx.Push(frame.Data, now)
		if err != nil {
			if e.reliable {
				e.stats.ProtocolDrops++
			} else {
				e.lastErr = fmt.Errorf("transport: reassembly: %w", err)
			}
			continue
		}
		if fc != nil {
			if _, err := e.transmit(fc); err != nil && !e.reliable {
				e.lastErr = fmt.Errorf("transport: flow control: %w", err)
			}
		}
		if msg != nil {
			e.deliver(msg)
		}
	}
	e.expire()
	return processed
}

// serviceFlowControl routes an FC frame to the active sender, or
// validates and discards it when no transfer is in flight.
func (e *Endpoint) serviceFlowControl(data []byte, now time.Duration) {
	if e.sender != nil {
		if err := e.sender.OnFlowControl(data, now); err != nil {
			// Terminal verdicts surface to the Send loop; malformed
			// FCs are counted and dropped.
			if errors.Is(err, cantp.ErrFlowOverflow) || errors.Is(err, cantp.ErrWaitBudget) {
				e.sendErr = err
			} else {
				e.stats.ProtocolDrops++
			}
		}
		return
	}
	if _, _, _, err := cantp.ParseFlowControl(data); err != nil {
		if e.reliable {
			e.stats.ProtocolDrops++
		} else {
			e.lastErr = fmt.Errorf("transport: %w", err)
		}
	}
}

// expire services the receiver's simulated-time obligations: owed
// Wait-chain FlowControls are transmitted, and N_Cr expiry abandons
// the partial transfer (counted by the receiver).
func (e *Endpoint) expire() {
	for {
		fc, err := e.rx.Expire(e.now())
		if fc != nil {
			e.transmit(fc)
			continue
		}
		_ = err // abandonment is counted in ReceiverStats
		return
	}
}

// nextDeadline exposes the receiver's earliest timer to the world.
func (e *Endpoint) nextDeadline() time.Duration { return e.rx.Deadline() }

// deliver verifies, decodes and enqueues a reassembled message.
func (e *Endpoint) deliver(raw []byte) {
	if e.cfg.Checksum {
		stripped, ok := verifyChecksum(raw)
		if !ok {
			e.stats.IntegrityDrops++
			return
		}
		raw = stripped
	}
	if e.reliable && e.lastMsg != nil && bytes.Equal(raw, e.lastMsg) {
		// A duplicated SingleFrame (or a whole-message resend that
		// crossed its own reply) delivers the same bytes twice;
		// surfacing both would desynchronize strict request/response
		// protocols.
		e.stats.DuplicateMessages++
		return
	}
	msg, err := DecodeMessage(raw)
	if err != nil {
		if e.reliable {
			e.stats.ProtocolDrops++
		} else {
			e.lastErr = err
		}
		return
	}
	e.lastMsg = append([]byte(nil), raw...)
	e.inbox = append(e.inbox, msg)
	e.stats.MessagesReceived++
}

// ErrNoMessage is returned by Poll when no complete message is pending.
var ErrNoMessage = errors.New("transport: no complete message available")

// Poll services the endpoint and returns the oldest complete message,
// or ErrNoMessage. In lockstep mode protocol violations surface here
// as errors (the original behaviour); in reliable mode they are
// counted and survived.
func (e *Endpoint) Poll() (Message, error) {
	e.Service()
	if e.lastErr != nil {
		err := e.lastErr
		e.lastErr = nil
		return Message{}, err
	}
	if len(e.inbox) == 0 {
		return Message{}, ErrNoMessage
	}
	msg := e.inbox[0]
	e.inbox = e.inbox[1:]
	return msg, nil
}

// TryPoll is Poll without the error surface: it reports whether a
// message was available.
func (e *Endpoint) TryPoll() (Message, bool) {
	e.Service()
	if len(e.inbox) == 0 {
		return Message{}, false
	}
	msg := e.inbox[0]
	e.inbox = e.inbox[1:]
	return msg, true
}

// appendChecksum suffixes data with its CRC-32 (IEEE).
func appendChecksum(data []byte) []byte {
	out := make([]byte, len(data)+ChecksumSize)
	copy(out, data)
	binary.BigEndian.PutUint32(out[len(data):], crc32.ChecksumIEEE(data))
	return out
}

// verifyChecksum strips and checks the CRC-32 trailer.
func verifyChecksum(data []byte) ([]byte, bool) {
	if len(data) < ChecksumSize {
		return nil, false
	}
	body := data[:len(data)-ChecksumSize]
	want := binary.BigEndian.Uint32(data[len(body):])
	return body, crc32.ChecksumIEEE(body) == want
}

// WireCost returns the total simulated wire time and frame count for
// sending a payload of n application bytes (header included) without
// transmitting anything — the static accounting used by the overhead
// tables.
func WireCost(n int, rates canbus.BitRates) (time.Duration, int, error) {
	frames, fc, err := cantp.FrameCount(n + HeaderSize)
	if err != nil {
		return 0, 0, err
	}
	// Data frames are full 64-byte frames except possibly the last;
	// for the static estimate assume full frames (upper bound).
	var total time.Duration
	for i := 0; i < frames; i++ {
		f := canbus.Frame{BRS: true, Data: make([]byte, canbus.MaxDataLen)}
		wt, err := f.WireTime(rates)
		if err != nil {
			return 0, 0, err
		}
		total += wt
	}
	if fc {
		f := canbus.Frame{BRS: true, Data: make([]byte, 3)}
		wt, err := f.WireTime(rates)
		if err != nil {
			return 0, 0, err
		}
		total += wt
		frames++
	}
	return total, frames, nil
}
