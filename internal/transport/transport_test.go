package transport

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/canbus"
)

func newPair(t *testing.T) (*Endpoint, *Endpoint, *canbus.Bus) {
	t.Helper()
	bus := canbus.NewBus(canbus.PrototypeRates)
	a := NewEndpoint(bus.Attach("bms"), 0x101)
	b := NewEndpoint(bus.Attach("evcc"), 0x102)
	return a, b, bus
}

func TestMessageEncodeDecode(t *testing.T) {
	m := Message{CommCode: 0x7, SessionID: 0xBEEF, OpCode: 3, Payload: []byte("hello")}
	enc := m.Encode()
	if len(enc) != HeaderSize+5 {
		t.Fatalf("encoded length %d", len(enc))
	}
	dec, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.CommCode != m.CommCode || dec.SessionID != m.SessionID ||
		dec.OpCode != m.OpCode || !bytes.Equal(dec.Payload, m.Payload) {
		t.Errorf("round trip mismatch: %+v", dec)
	}
	if _, err := DecodeMessage([]byte{1, 2}); err == nil {
		t.Error("truncated message accepted")
	}
	// Empty payload is legal.
	short, err := DecodeMessage(Message{OpCode: 1}.Encode())
	if err != nil || len(short.Payload) != 0 {
		t.Errorf("empty payload round trip: %+v, %v", short, err)
	}
}

func TestSmallMessageExchange(t *testing.T) {
	a, b, _ := newPair(t)
	sent := Message{CommCode: 1, SessionID: 42, OpCode: 7, Payload: []byte("ack")}
	wt, err := a.Send(sent)
	if err != nil {
		t.Fatal(err)
	}
	if wt <= 0 {
		t.Error("non-positive wire time")
	}
	got, err := b.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got.OpCode != 7 || !bytes.Equal(got.Payload, sent.Payload) {
		t.Errorf("received %+v", got)
	}
	// Nothing further pending.
	if _, err := b.Poll(); !errors.Is(err, ErrNoMessage) {
		t.Errorf("got %v, want ErrNoMessage", err)
	}
}

func TestLargeMessageFragmentsAndFlowControl(t *testing.T) {
	a, b, bus := newPair(t)
	// A certificate+signature-sized payload (Table II step B1 of STS:
	// ID 16 + Cert 101 + XG 64 + Resp 64 = 245 bytes).
	payload := make([]byte, 245)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := a.Send(Message{CommCode: 2, SessionID: 1, OpCode: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("fragmented payload corrupted")
	}
	// The receiver must have emitted a FlowControl frame.
	bStats := b.Stats()
	if bStats.FramesSent != 1 {
		t.Errorf("receiver sent %d frames, want 1 (flow control)", bStats.FramesSent)
	}
	// Sender: 245+4 = 249 bytes → FF(62) + 3×CF(63) = 62+189 = 251 ≥ 249 → 4 frames.
	aStats := a.Stats()
	if aStats.FramesSent != 4 {
		t.Errorf("sender used %d frames, want 4", aStats.FramesSent)
	}
	// The sender's Poll must swallow the flow-control frame silently.
	if _, err := a.Poll(); !errors.Is(err, ErrNoMessage) {
		t.Errorf("sender Poll: %v, want ErrNoMessage", err)
	}
	if bus.Stats().Frames != 5 {
		t.Errorf("bus carried %d frames, want 5", bus.Stats().Frames)
	}
}

func TestBidirectionalSession(t *testing.T) {
	a, b, _ := newPair(t)
	// Ping-pong like a KD protocol run: A1, B1, A2, B2.
	steps := []struct {
		from, to *Endpoint
		op       byte
		size     int
	}{
		{a, b, 1, 80},  // A1: ID + XG
		{b, a, 2, 245}, // B1: ID + Cert + XG + Resp
		{a, b, 3, 165}, // A2: Cert + Resp
		{b, a, 4, 1},   // B2: ACK
	}
	for i, s := range steps {
		payload := make([]byte, s.size)
		if _, err := s.from.Send(Message{SessionID: 9, OpCode: s.op, Payload: payload}); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got, err := s.to.Poll()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got.OpCode != s.op || len(got.Payload) != s.size {
			t.Fatalf("step %d: got op %d size %d", i, got.OpCode, len(got.Payload))
		}
	}
	if a.Stats().MessagesSent != 2 || a.Stats().MessagesReceived != 2 {
		t.Errorf("a stats: %+v", a.Stats())
	}
	if b.Stats().MessagesSent != 2 || b.Stats().MessagesReceived != 2 {
		t.Errorf("b stats: %+v", b.Stats())
	}
}

func TestWireTimeNegligible(t *testing.T) {
	// The paper: "The CAN-FD transfer time over the physical link was
	// negligible (< 1 ms)". Each individual frame stays well under
	// 1 ms, and even the largest fragmented protocol message (245 B,
	// five frames) stays in the low single-digit milliseconds — three
	// orders of magnitude below the multi-second processing times of
	// Fig. 7.
	frame := canbus.Frame{ID: 1, BRS: true, Data: make([]byte, canbus.MaxDataLen)}
	perFrame, err := frame.WireTime(canbus.PrototypeRates)
	if err != nil {
		t.Fatal(err)
	}
	if perFrame.Milliseconds() >= 1 {
		t.Errorf("single frame wire time %v, want < 1ms", perFrame)
	}

	a, b, _ := newPair(t)
	payload := make([]byte, 245)
	wt, err := a.Send(Message{OpCode: 1, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Poll(); err != nil {
		t.Fatal(err)
	}
	totalWire := a.Stats().WireTime + b.Stats().WireTime
	if totalWire.Milliseconds() >= 3 {
		t.Errorf("245-byte message wire time %v, want < 3ms", totalWire)
	}
	if wt <= 0 {
		t.Error("wire time not accounted")
	}
}

func TestSendTooLarge(t *testing.T) {
	a, _, _ := newPair(t)
	if _, err := a.Send(Message{Payload: make([]byte, 5000)}); err == nil {
		t.Error("oversize message accepted")
	}
}

func TestWireCost(t *testing.T) {
	wt, frames, err := WireCost(245, canbus.PrototypeRates)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 5 { // 4 data + 1 flow control
		t.Errorf("frames = %d, want 5", frames)
	}
	if wt <= 0 || wt.Milliseconds() >= 2 {
		t.Errorf("wire cost %v implausible", wt)
	}
	// Small message: single frame, no FC.
	_, frames, err = WireCost(10, canbus.PrototypeRates)
	if err != nil || frames != 1 {
		t.Errorf("small message frames = %d, %v", frames, err)
	}
	if _, _, err := WireCost(10000, canbus.PrototypeRates); err == nil {
		t.Error("oversize accepted")
	}
}
