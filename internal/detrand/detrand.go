// Package detrand is the shared deterministic-randomness kernel of
// the simulation: the splitmix64 finalizer the content-keyed bus
// impairment hashes with, and seeded byte streams for per-party
// protocol ephemerals in reproducible experiments. Everything that
// participates in the cross-package determinism story — content-keyed
// faults in canbus, derived randomness streams in the scenario engine
// and the chaos tests — uses this one implementation, so the pieces
// cannot drift apart bit-wise. Not cryptographic: the experiments
// measure cost, not security margins.
package detrand

import "io"

// Golden is the splitmix64 increment (2^64/φ, odd).
const Golden = 0x9E3779B97F4A7C15

// Mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// permutation used both as a hash-absorption step and as the output
// function of the Reader stream.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DeriveSeed hashes a byte label and integer salts into one stream
// seed; deterministic in its arguments.
func DeriveSeed(seed uint64, label []byte, salts ...uint64) uint64 {
	h := seed ^ Golden
	for _, b := range label {
		h = Mix64(h ^ uint64(b))
	}
	for _, s := range salts {
		h = Mix64(h ^ s)
	}
	return h
}

// Reader streams splitmix64 output as bytes.
type Reader struct{ state uint64 }

// NewReader returns a deterministic byte stream for the seed.
func NewReader(seed uint64) io.Reader { return &Reader{state: seed} }

// Read fills p from the splitmix64 stream. It never fails and always
// fills the whole slice, so err is always nil and n == len(p).
func (r *Reader) Read(p []byte) (int, error) {
	for i := range p {
		if i%8 == 0 {
			r.state += Golden
		}
		p[i] = byte(Mix64(r.state) >> (8 * (i % 8)))
	}
	return len(p), nil
}
