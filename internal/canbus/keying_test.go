package canbus

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// faultSig names one fault decision independently of when it happened:
// the content key inputs plus the decision kind. Timestamps are
// excluded on purpose — interleaving shifts when a fault lands, never
// whether it lands.
type faultSig struct {
	bus  uint64
	id   uint32
	ext  bool
	occ  uint64
	kind FaultKind
}

// collectFaults transmits the given frame sequence on a freshly armed
// bus and returns the sorted fault signatures.
func collectFaults(t *testing.T, cfg Impairment, frames []Frame) []faultSig {
	t.Helper()
	bus := NewBus(PrototypeRates)
	bus.Impair(cfg)
	var got []faultSig
	bus.SetFaultTrace(func(ev FaultEvent) {
		got = append(got, faultSig{ev.BusID, ev.FrameID, ev.Extended, ev.Occurrence, ev.Kind})
	})
	src := bus.Attach("src")
	bus.Attach("sink")
	for _, f := range frames {
		if _, err := src.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(got, func(i, j int) bool {
		a, b := got[i], got[j]
		if a.id != b.id {
			return a.id < b.id
		}
		if a.ext != b.ext {
			return b.ext
		}
		if a.occ != b.occ {
			return a.occ < b.occ
		}
		return a.kind < b.kind
	})
	return got
}

// conversationStreams builds several independent frame streams, one
// CAN identifier each, with payloads that differ within and across
// streams — the shape of concurrent ISO-TP conversations sharing a
// segment.
func conversationStreams(streams, perStream int) [][]Frame {
	out := make([][]Frame, streams)
	for s := range out {
		for i := 0; i < perStream; i++ {
			data := []byte{byte(s), byte(i), byte(i >> 8), 0xA5}
			out[s] = append(out[s], Frame{ID: 0x100 + uint32(s), BRS: true, Data: data})
		}
	}
	return out
}

// interleave merges the streams into one transmit order chosen by rng,
// preserving each stream's internal order (the physical guarantee of a
// CAN segment: one transmitter per identifier).
func interleave(rng *rand.Rand, streams [][]Frame) []Frame {
	idx := make([]int, len(streams))
	var out []Frame
	for {
		live := 0
		for s := range streams {
			if idx[s] < len(streams[s]) {
				live++
			}
		}
		if live == 0 {
			return out
		}
		pick := rng.Intn(live)
		for s := range streams {
			if idx[s] >= len(streams[s]) {
				continue
			}
			if pick == 0 {
				out = append(out, streams[s][idx[s]])
				idx[s]++
				break
			}
			pick--
		}
	}
}

// TestImpairmentInterleaveInvariant is the content-keying property:
// with one seed, every interleaving of independent conversations
// produces the identical fault set. Under transmit-order keying this
// fails on the first shuffle.
func TestImpairmentInterleaveInvariant(t *testing.T) {
	cfg := Impairment{Seed: 1234, BusID: 3, Drop: 0.08, Corrupt: 0.05, Duplicate: 0.04, DelayRate: 0.03, Delay: 1}
	streams := conversationStreams(6, 40)

	baseline := collectFaults(t, cfg, interleave(rand.New(rand.NewSource(0)), streams))
	if len(baseline) == 0 {
		t.Fatal("no faults fired — the property run proves nothing")
	}
	for trial := int64(1); trial <= 20; trial++ {
		shuffled := collectFaults(t, cfg, interleave(rand.New(rand.NewSource(trial)), streams))
		if fmt.Sprint(baseline) != fmt.Sprint(shuffled) {
			t.Fatalf("interleaving %d changed the fault set:\nbase %v\ngot  %v", trial, baseline, shuffled)
		}
	}
}

// TestImpairmentOccurrenceIndependence: a retransmitted frame with
// byte-identical content must draw a fresh decision per occurrence —
// a dropped FirstFrame is not dropped forever.
func TestImpairmentOccurrenceIndependence(t *testing.T) {
	bus := NewBus(PrototypeRates)
	bus.Impair(Impairment{Seed: 9, Drop: 0.5})
	src := bus.Attach("src")
	sink := bus.Attach("sink")
	sink.SetRxLimit(0)
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := src.Send(Frame{ID: 0x42, BRS: true, Data: []byte{0xDE, 0xAD, 0xBE, 0xEF}}); err != nil {
			t.Fatal(err)
		}
	}
	dropped := bus.Stats().Dropped
	if dropped == 0 || dropped == n {
		t.Fatalf("identical retransmissions share one fate (%d/%d dropped) — occurrence counter not in the key", dropped, n)
	}
	if dropped < n/4 || dropped > 3*n/4 {
		t.Errorf("drop count %d implausible for rate 0.5 over %d identical frames", dropped, n)
	}
}

// TestImpairmentExtendedIDIsItsOwnConversation: a 29-bit extended
// identifier is a different identifier than the equal-valued 11-bit
// one, so the two streams must keep independent occurrence counters —
// their interleaving must not leak into each other's fault decisions.
func TestImpairmentExtendedIDIsItsOwnConversation(t *testing.T) {
	cfg := Impairment{Seed: 99, Drop: 0.15, Corrupt: 0.1}
	var std, ext []Frame
	for i := 0; i < 40; i++ {
		std = append(std, Frame{ID: 0x123, BRS: true, Data: []byte{0, byte(i)}})
		ext = append(ext, Frame{ID: 0x123, Extended: true, BRS: true, Data: []byte{1, byte(i)}})
	}
	streams := [][]Frame{std, ext}
	baseline := collectFaults(t, cfg, interleave(rand.New(rand.NewSource(0)), streams))
	if len(baseline) == 0 {
		t.Fatal("no faults fired")
	}
	for trial := int64(1); trial <= 10; trial++ {
		shuffled := collectFaults(t, cfg, interleave(rand.New(rand.NewSource(trial)), streams))
		if fmt.Sprint(baseline) != fmt.Sprint(shuffled) {
			t.Fatalf("interleaving std/ext conversations with one numeric ID changed the fault set (trial %d)", trial)
		}
	}
}

// TestImpairmentBusIDSaltsTheKey: one profile and one seed on two
// segments must still yield independent fault streams when BusID
// differs.
func TestImpairmentBusIDSaltsTheKey(t *testing.T) {
	frames := interleave(rand.New(rand.NewSource(0)), conversationStreams(4, 50))
	cfg := Impairment{Seed: 77, Drop: 0.1, Corrupt: 0.1}
	cfg.BusID = 0
	a := collectFaults(t, cfg, frames)
	cfg.BusID = 1
	b := collectFaults(t, cfg, frames)
	if fmt.Sprint(a) == fmt.Sprint(b) {
		t.Error("distinct BusIDs produced identical fault streams")
	}
}

func TestFaultKindStrings(t *testing.T) {
	for kind, want := range map[FaultKind]string{
		FaultDrop: "drop", FaultCorrupt: "corrupt", FaultDuplicate: "duplicate",
		FaultDelay: "delay", FaultKind(99): "unknown",
	} {
		if kind.String() != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", kind, kind, want)
		}
	}
}

func TestClearImpairmentStopsFaults(t *testing.T) {
	bus := NewBus(PrototypeRates)
	bus.Impair(Impairment{Seed: 1, Drop: 1})
	src := bus.Attach("src")
	dst := bus.Attach("dst")
	if _, err := src.Send(Frame{ID: 1, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if dst.Pending() != 0 {
		t.Fatal("full drop delivered a frame")
	}
	bus.ClearImpairment()
	if _, err := src.Send(Frame{ID: 1, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	if dst.Pending() != 1 {
		t.Error("cleared impairment still dropping")
	}
	if bus.Rates() != PrototypeRates {
		t.Error("rates accessor wrong")
	}
}

// TestImpairmentRearmResets: re-arming the same profile resets the
// occurrence counters, so a re-run reproduces the original faults.
func TestImpairmentRearmResets(t *testing.T) {
	cfg := Impairment{Seed: 5, Drop: 0.2, Corrupt: 0.1}
	frames := interleave(rand.New(rand.NewSource(3)), conversationStreams(3, 30))

	bus := NewBus(PrototypeRates)
	var first, second []faultSig
	sink := func(dst *[]faultSig) func(FaultEvent) {
		return func(ev FaultEvent) {
			*dst = append(*dst, faultSig{ev.BusID, ev.FrameID, ev.Extended, ev.Occurrence, ev.Kind})
		}
	}
	src := bus.Attach("src")
	bus.Attach("sink")

	bus.Impair(cfg)
	bus.SetFaultTrace(sink(&first))
	for _, f := range frames {
		if _, err := src.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	bus.Impair(cfg) // re-arm
	bus.SetFaultTrace(sink(&second))
	for _, f := range frames {
		if _, err := src.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("re-armed run diverged:\nfirst  %v\nsecond %v", first, second)
	}
	if len(first) == 0 {
		t.Fatal("no faults fired")
	}
}
