// Package canbus models a CAN-FD network segment: frame format, dual
// bit-rate wire timing and an in-memory bus with transmission
// statistics.
//
// The prototype evaluation of the paper (§V-C, Figures 5–7) runs the
// key-derivation session between a BMS and an EVCC controller over
// CAN-FD with a 0.5 Mbit/s nominal (arbitration) phase and a 2 Mbit/s
// data phase. This package reproduces the data-link layer of Figure 6
// — SOF / identifier / control / data / CRC / ACK / EOF fields — with
// bit-level accounting so the experiment harness can report wire time
// separately from processing time (the paper measures the CAN-FD
// transfer share at < 1 ms).
package canbus

import (
	"errors"
	"fmt"
	"time"
)

// MaxDataLen is the CAN-FD payload limit.
const MaxDataLen = 64

// validDataLens are the payload sizes expressible by a CAN-FD DLC.
var validDataLens = [...]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64}

// PadToDLC returns the smallest valid CAN-FD payload length ≥ n. CAN-FD
// cannot express arbitrary lengths above 8 bytes, so frames are padded;
// the ISO-TP layer accounts for this when segmenting.
func PadToDLC(n int) (int, error) {
	if n < 0 || n > MaxDataLen {
		return 0, fmt.Errorf("canbus: payload length %d out of range", n)
	}
	for _, l := range validDataLens {
		if l >= n {
			return l, nil
		}
	}
	return 0, fmt.Errorf("canbus: payload length %d not mappable", n)
}

// DLCForLen returns the 4-bit DLC code for a valid CAN-FD payload
// length.
func DLCForLen(n int) (byte, error) {
	for code, l := range validDataLens {
		if l == n {
			return byte(code), nil
		}
	}
	return 0, fmt.Errorf("canbus: %d is not a valid CAN-FD payload length", n)
}

// LenForDLC inverts DLCForLen.
func LenForDLC(dlc byte) (int, error) {
	if int(dlc) >= len(validDataLens) {
		return 0, fmt.Errorf("canbus: invalid DLC %d", dlc)
	}
	return validDataLens[dlc], nil
}

// Frame is a CAN-FD data frame. Only the fields relevant to timing and
// multiplexing are modelled.
type Frame struct {
	ID       uint32 // 11-bit standard or 29-bit extended identifier
	Extended bool   // 29-bit identifier format
	BRS      bool   // bit-rate switch: data phase at the fast rate
	Data     []byte // payload; length must be a valid DLC length
}

// Validate checks identifier range and payload length.
func (f *Frame) Validate() error {
	if f.Extended {
		if f.ID >= 1<<29 {
			return fmt.Errorf("canbus: extended ID %#x out of range", f.ID)
		}
	} else if f.ID >= 1<<11 {
		return fmt.Errorf("canbus: standard ID %#x out of range", f.ID)
	}
	if _, err := DLCForLen(len(f.Data)); err != nil {
		return err
	}
	return nil
}

// Bit accounting (ISO 11898-1:2015). The constants below follow the
// CAN-FD frame structure of Figure 6; dynamic stuff bits are estimated
// at the average rate of one per five payload bits, and the fixed stuff
// bits of the FD CRC field are included in the CRC size.
const (
	bitsSOF        = 1
	bitsBaseID     = 11
	bitsExtID      = 18 + 2 // extended identifier + SRR/IDE framing
	bitsArbCtrl    = 5      // RRS, IDE, FDF, res, BRS
	bitsESI        = 1
	bitsDLC        = 4
	bitsCRC17      = 17 + 5 + 6 // CRC17 + fixed stuff bits + stuff count
	bitsCRC21      = 21 + 6 + 6 // CRC21 (payload > 16 B) + fixed stuff + count
	bitsCRCDelim   = 1
	bitsACK        = 2 // slot + delimiter
	bitsEOF        = 7
	bitsInterFrame = 3
)

// WireBits returns the number of bits clocked at the nominal
// (arbitration) rate and at the data rate for this frame. Without BRS
// every bit runs at the nominal rate.
func (f *Frame) WireBits() (nominalBits, dataBits int) {
	arb := bitsSOF + bitsBaseID + bitsArbCtrl
	if f.Extended {
		arb += bitsExtID
	}
	tail := bitsCRCDelim + bitsACK + bitsEOF + bitsInterFrame

	crc := bitsCRC17
	if len(f.Data) > 16 {
		crc = bitsCRC21
	}
	payloadBits := 8 * len(f.Data)
	// Average dynamic stuffing: one stuff bit per five bits in the
	// stuffed region (ID through data).
	stuff := (arb + bitsESI + bitsDLC + payloadBits) / 5

	body := bitsESI + bitsDLC + payloadBits + crc + stuff

	if f.BRS {
		return arb + tail, body
	}
	return arb + tail + body, 0
}

// BitRates configures the two CAN-FD bit rates in bits per second.
type BitRates struct {
	Nominal float64 // arbitration-phase rate
	Data    float64 // data-phase rate (with BRS)
}

// PrototypeRates are the rates of the paper's test suite: 0.5 Mbit/s
// nominal, 2 Mbit/s data phase.
var PrototypeRates = BitRates{Nominal: 500e3, Data: 2e6}

// WireTime returns the time this frame occupies the bus at the given
// rates.
func (f *Frame) WireTime(r BitRates) (time.Duration, error) {
	if r.Nominal <= 0 || (f.BRS && r.Data <= 0) {
		return 0, errors.New("canbus: non-positive bit rate")
	}
	nom, dat := f.WireBits()
	seconds := float64(nom)/r.Nominal + float64(dat)/r.Data
	return time.Duration(seconds * float64(time.Second)), nil
}
