package canbus

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Gateway bridges CAN segments the way an automotive central gateway
// does: it owns one port (a regular bus node) per attached segment and
// forwards frames between them under per-direction identifier filters,
// charging a store-and-forward latency per forwarded frame to the
// simulated clock.
//
// Forwarding is pull-based: Pump drains every port's receive queue and
// re-transmits matching frames on the destination segments. The
// single-threaded experiment drivers pump gateways between protocol
// steps (see transport.World), which keeps multi-hop delivery order —
// and therefore seeded impairment decisions — deterministic.
//
// Loops are prevented by construction twice over: a frame forwarded
// onto a segment is transmitted from the gateway's own port there, so
// that port never hears its own forward; and routes are directional
// with explicit filters, so a bridged frame only continues along
// routes whose filter admits its identifier.
type Gateway struct {
	name  string
	clock *Clock

	mu     sync.Mutex
	ports  []*gatewayPort
	routes []gatewayRoute
	stats  GatewayStats
}

// GatewayStats counts forwarding activity.
type GatewayStats struct {
	Forwarded     int           // frames re-transmitted onto another segment
	Filtered      int           // frames drained but admitted by no route
	StoreTime     time.Duration // cumulative store-and-forward latency
	EgressDropped int           // frames lost to a full egress queue
}

// EgressPolicy models a congested gateway port: a transmit rate limit
// and a bounded egress queue. The zero policy is the uncongested
// default — frames are re-transmitted within the pump that drained
// them, exactly the pre-egress behaviour.
type EgressPolicy struct {
	// Rate caps frames per simulated second leaving this port; 0 means
	// unlimited. A rate-limited port holds admitted frames in its
	// egress queue and releases them on the simulated clock, one every
	// 1/Rate seconds.
	Rate float64
	// Queue bounds the egress backlog of a rate-limited port; a frame
	// admitted by a route while the queue is full is dropped and
	// counted in EgressDropped. 0 means unbounded. Without a rate
	// limit the bound is inert — an unlimited-rate port transmits
	// within the pump that drained it and never builds a backlog.
	Queue int
}

// limited reports whether the policy gates transmission at all. Only
// a rate limit gates: a queue bound alone never engages, because an
// unlimited-rate port has no backlog to bound.
func (p EgressPolicy) limited() bool { return p.Rate > 0 }

// gap returns the per-frame serialization interval of the rate limit.
func (p EgressPolicy) gap() time.Duration {
	if p.Rate <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / p.Rate)
}

type gatewayPort struct {
	bus  *Bus
	node *Node

	// Egress state: FIFO queue (same-ID frame order is preserved by
	// construction, even under starvation), the policy, and the
	// earliest simulated time the next queued frame may leave.
	policy   EgressPolicy
	egress   []Frame
	nextTxAt time.Duration
}

type gatewayRoute struct {
	from, to *gatewayPort
	filter   func(Frame) bool
	latency  time.Duration
}

// NewGateway creates a gateway. The clock (may be nil) is charged the
// store-and-forward latency of every forwarded frame.
func NewGateway(name string, clock *Clock) *Gateway {
	return &Gateway{name: name, clock: clock}
}

// Name returns the gateway's name.
func (g *Gateway) Name() string { return g.name }

// Stats returns a snapshot of the forwarding counters.
func (g *Gateway) Stats() GatewayStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// port returns (attaching on demand) the gateway's node on a bus.
func (g *Gateway) port(bus *Bus) *gatewayPort {
	for _, p := range g.ports {
		if p.bus == bus {
			return p
		}
	}
	p := &gatewayPort{bus: bus, node: bus.Attach(fmt.Sprintf("%s:port%d", g.name, len(g.ports)))}
	g.ports = append(g.ports, p)
	return p
}

// SetEgress installs an egress policy on the gateway's port for a
// bus (attaching the port on demand), modelling a congested central
// gateway whose outbound link to that segment backs up. The zero
// policy restores immediate forwarding.
func (g *Gateway) SetEgress(bus *Bus, p EgressPolicy) error {
	if bus == nil {
		return errors.New("canbus: egress policy needs a bus")
	}
	if p.Rate < 0 || p.Queue < 0 {
		return errors.New("canbus: negative egress policy")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.port(bus).policy = p
	return nil
}

// EgressBacklog returns the number of frames queued on the port for a
// bus (0 when the port does not exist or is uncongested).
func (g *Gateway) EgressBacklog(bus *Bus) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range g.ports {
		if p.bus == bus {
			return len(p.egress)
		}
	}
	return 0
}

// Route adds a one-way forwarding rule: frames heard on from whose
// identifier passes filter (nil admits everything) are re-transmitted
// on to, after latency of store-and-forward delay. Call twice with
// swapped buses — typically with different filters — for a
// bidirectional bridge.
func (g *Gateway) Route(from, to *Bus, filter func(Frame) bool, latency time.Duration) error {
	if from == nil || to == nil {
		return errors.New("canbus: gateway route needs two buses")
	}
	if from == to {
		return errors.New("canbus: gateway route cannot loop a bus onto itself")
	}
	if latency < 0 {
		return errors.New("canbus: negative gateway latency")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.routes = append(g.routes, gatewayRoute{
		from:    g.port(from),
		to:      g.port(to),
		filter:  filter,
		latency: latency,
	})
	return nil
}

// Pump drains every port, forwards (or egress-queues) matching frames
// and releases rate-gated egress frames that are due on the simulated
// clock. It returns the number of frames moved — drained from a port
// or released from an egress queue. Callers loop until it returns 0 to
// reach quiescence; a frame forwarded onto a segment watched by
// another gateway is picked up by that gateway's next Pump, so chained
// segments need a pump loop over all gateways (see transport.World).
// Frames still gated behind a rate limit do not count as movement;
// their release time is exposed through NextDeadline so the world's
// timer loop can advance to it.
func (g *Gateway) Pump() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	moved := 0
	for _, p := range g.ports {
		for {
			f, ok := p.node.Receive()
			if !ok {
				break
			}
			moved++
			matched := false
			for _, r := range g.routes {
				if r.from != p {
					continue
				}
				if r.filter != nil && !r.filter(f) {
					continue
				}
				matched = true
				g.stats.StoreTime += r.latency
				g.clock.Advance(r.latency)
				g.emit(r.to, f)
			}
			if !matched {
				g.stats.Filtered++
			}
		}
	}
	for _, p := range g.ports {
		moved += g.drainEgress(p)
	}
	return moved
}

// emit puts a routed frame onto the destination port: straight to the
// wire on an uncongested port, or into the egress queue (dropping on
// overflow) when a policy gates the port.
func (g *Gateway) emit(p *gatewayPort, f Frame) {
	if !p.policy.limited() {
		if _, err := p.node.Send(f); err == nil {
			g.stats.Forwarded++
		}
		return
	}
	if p.policy.Queue > 0 && len(p.egress) >= p.policy.Queue {
		g.stats.EgressDropped++
		return
	}
	p.egress = append(p.egress, f)
}

// drainEgress releases queued frames that are due at the current
// simulated time, charging the rate limit's serialization gap between
// releases. Returns the number of frames released.
func (g *Gateway) drainEgress(p *gatewayPort) int {
	sent := 0
	now := g.clock.Now()
	for len(p.egress) > 0 && p.nextTxAt <= now {
		f := p.egress[0]
		p.egress = p.egress[1:]
		if _, err := p.node.Send(f); err == nil {
			g.stats.Forwarded++
		}
		sent++
		next := p.nextTxAt
		if now > next {
			next = now
		}
		p.nextTxAt = next + p.policy.gap()
		if p.policy.gap() == 0 {
			p.nextTxAt = 0
		}
		now = g.clock.Now()
	}
	return sent
}

// NextDeadline returns the earliest simulated time a rate-gated egress
// frame becomes releasable, or 0 when no port holds a gated frame. The
// world's timer loop (transport.World.Step) treats it like a protocol
// timer: time advances to it, then the pump releases the frame.
func (g *Gateway) NextDeadline() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	var min time.Duration
	for _, p := range g.ports {
		if len(p.egress) == 0 {
			continue
		}
		if min == 0 || p.nextTxAt < min {
			min = p.nextTxAt
		}
	}
	return min
}

// IDRange returns a frame filter admitting identifiers in [lo, hi].
func IDRange(lo, hi uint32) func(Frame) bool {
	return func(f Frame) bool { return f.ID >= lo && f.ID <= hi }
}

// IDSet returns a frame filter admitting exactly the listed
// identifiers.
func IDSet(ids ...uint32) func(Frame) bool {
	set := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(f Frame) bool { return set[f.ID] }
}
