package canbus

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Gateway bridges CAN segments the way an automotive central gateway
// does: it owns one port (a regular bus node) per attached segment and
// forwards frames between them under per-direction identifier filters,
// charging a store-and-forward latency per forwarded frame.
//
// Forwarding is pull-based: Pump drains every port's receive queue and
// re-transmits matching frames on the destination segments. The
// single-threaded experiment drivers pump gateways between protocol
// steps (see transport.World), which keeps multi-hop delivery order —
// and therefore seeded impairment decisions — deterministic.
//
// Delayed transmission — store-and-forward latency and egress rate
// limiting alike — is modelled as a per-port fair-queuing scheduler
// rather than a shared FIFO: every conversation flow (CAN identifier)
// owns a private queue and a virtual clock, each admitted frame gets a
// release tag computed from its own flow's state only, and the port
// releases whichever due frame carries the globally minimal tag. Two
// properties follow. Same-identifier order is preserved (tags are
// monotone within a flow), and the release schedule is a pure function
// of frame content and admission times on the simulated clock — one
// conversation's backlog never shifts another conversation's release
// times, so concurrent experiment drivers that permute the order of
// whole conversations reproduce bit-identical schedules. The shared
// FIFO this replaces coupled flows through a single next-transmit time
// and through arrival order, which made any scenario combining egress
// congestion with parallelism > 1 schedule-dependent.
//
// Loops are prevented by construction twice over: a frame forwarded
// onto a segment is transmitted from the gateway's own port there, so
// that port never hears its own forward; and routes are directional
// with explicit filters, so a bridged frame only continues along
// routes whose filter admits its identifier.
type Gateway struct {
	name  string
	clock *Clock

	mu     sync.Mutex
	ports  []*gatewayPort
	routes []gatewayRoute
	stats  GatewayStats
}

// GatewayStats counts forwarding activity.
type GatewayStats struct {
	Forwarded     int           // frames re-transmitted onto another segment
	Filtered      int           // frames drained but admitted by no route
	ForwardFailed int           // re-transmissions no receiver accepted (invalid for the destination segment, or every RX queue full)
	EgressQueued  int           // frames that entered a port's release schedule instead of leaving within the pump that drained them
	StoreTime     time.Duration // cumulative store-and-forward latency charged to forwarded frames
	EgressDropped int           // frames lost to a full per-flow egress queue
	PartitionDrop int           // frames lost at a severed port (heard on it or routed toward it while the link was down)
}

// EgressPolicy models a congested gateway port: a transmit rate limit
// and a bounded egress queue. The zero policy is the uncongested
// default — frames are re-transmitted within the pump that drained
// them (after any route latency), exactly the pre-egress behaviour.
type EgressPolicy struct {
	// Rate caps frames per simulated second leaving this port; 0 means
	// unlimited. By default the cap is enforced per conversation flow
	// (CAN identifier) by the fair-queuing scheduler: a rate-limited
	// flow's frames release on the simulated clock, one every 1/Rate
	// seconds of that flow's own virtual time — independent of other
	// flows' backlogs, which is what keeps concurrent scenarios
	// schedule-invariant. With Shared set the same Rate instead caps
	// the port's aggregate throughput.
	Rate float64
	// Queue bounds the egress backlog of each conversation flow on a
	// rate-limited port; a frame admitted by a route while its flow's
	// queue is full is dropped and counted in EgressDropped. 0 means
	// unbounded. Without a rate limit the bound is inert — an
	// unlimited-rate flow never builds a rate backlog to bound.
	Queue int
	// Shared selects the shared-capacity start-time-fair-queuing
	// variant: virtual time advances at the port rate, not per flow,
	// so Rate caps the port's aggregate throughput and k backlogged
	// flows divide it fairly (each gets ~Rate/k) instead of each
	// owning a private Rate (which let k flows emit k×Rate through
	// one physical port). The trade is physical honesty for schedule
	// invariance: shared capacity couples flows by design, so the
	// release schedule depends on which conversations are backlogged
	// when — drivers that permute whole-conversation admission order
	// (EstablishAll parallelism > 1) are rejected by scenario
	// validation in this mode. Without a Rate the flag is inert.
	Shared bool
}

// limited reports whether the policy gates transmission at all. Only
// a rate limit gates: a queue bound alone never engages, because an
// unlimited-rate port has no backlog to bound.
func (p EgressPolicy) limited() bool { return p.Rate > 0 }

// gap returns the per-frame serialization interval of the rate limit.
func (p EgressPolicy) gap() time.Duration {
	if p.Rate <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / p.Rate)
}

// flowKey identifies one conversation flow through a port. CAN frames
// of one identifier belong to one conversation (the physical bus
// guarantees their relative order), so the identifier is the
// fair-queuing flow key.
type flowKey struct {
	id  uint32
	ext bool
}

// gatedFrame is one scheduled release: the frame and its tag on the
// simulated clock.
type gatedFrame struct {
	frame Frame
	due   time.Duration
}

// egressFlow is one conversation's private release queue and virtual
// clock. vnext is the earliest tag the flow's next admitted frame may
// carry: admission sets due = max(eligible, vnext), then advances
// vnext to due (plus the rate gap on a per-flow-limited port), so tags
// are monotone within the flow and computed from the flow's own
// history only. On a shared-capacity port vnext carries eligibility
// alone (no per-flow pacing) and fin is the flow's virtual finish tag
// in the port's start-time fair queuing: serving a frame sets
// S = max(port.vtime, fin), fin = S+1 — unit cost per frame, since
// CAN frames are near-constant size.
type egressFlow struct {
	key   flowKey
	queue []gatedFrame
	vnext time.Duration
	fin   uint64
}

type gatewayPort struct {
	bus  *Bus
	node *Node

	// down marks a severed link (SetLinkUp(bus, false)): frames heard
	// on the port are discarded instead of routed, frames routed toward
	// it are discarded instead of scheduled, and frames already sitting
	// in its release schedule are held — they flood out on heal, the
	// store-and-forward burst a real gateway produces when a link comes
	// back.
	down bool

	policy EgressPolicy
	flows  []*egressFlow // admission order; release order is by tag

	// Shared-capacity scheduler state (policy.Shared): nextTx is the
	// earliest simulated time the port may transmit again (advances by
	// the rate gap per released frame, regardless of flow), vtime the
	// port's virtual time — the start tag of the most recently served
	// frame, which is what a newly backlogged flow's first tag is
	// clamped to so it neither starves nor is starved.
	nextTx time.Duration
	vtime  uint64
}

// shared reports whether the port runs the shared-capacity scheduler.
func (p *gatewayPort) shared() bool { return p.policy.limited() && p.policy.Shared }

// flow returns (creating on demand) the port's scheduler state for a
// frame's conversation.
func (p *gatewayPort) flow(f Frame) *egressFlow {
	k := flowKey{id: f.ID, ext: f.Extended}
	for _, fl := range p.flows {
		if fl.key == k {
			return fl
		}
	}
	fl := &egressFlow{key: k}
	p.flows = append(p.flows, fl)
	return fl
}

// backlog returns the frame's flow state only if it holds queued
// frames (nil otherwise, without allocating flow state).
func (p *gatewayPort) backlog(f Frame) *egressFlow {
	k := flowKey{id: f.ID, ext: f.Extended}
	for _, fl := range p.flows {
		if fl.key == k && len(fl.queue) > 0 {
			return fl
		}
	}
	return nil
}

type gatewayRoute struct {
	from, to *gatewayPort
	filter   func(Frame) bool
	latency  time.Duration
}

// NewGateway creates a gateway. The clock (may be nil) schedules
// store-and-forward and egress releases; without one there is no
// timekeeping to gate on and every forward is immediate.
func NewGateway(name string, clock *Clock) *Gateway {
	return &Gateway{name: name, clock: clock}
}

// Name returns the gateway's name.
func (g *Gateway) Name() string { return g.name }

// Stats returns a snapshot of the forwarding counters.
func (g *Gateway) Stats() GatewayStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// port returns (attaching on demand) the gateway's node on a bus.
func (g *Gateway) port(bus *Bus) *gatewayPort {
	for _, p := range g.ports {
		if p.bus == bus {
			return p
		}
	}
	p := &gatewayPort{bus: bus, node: bus.Attach(fmt.Sprintf("%s:port%d", g.name, len(g.ports)))}
	g.ports = append(g.ports, p)
	return p
}

// SetEgress installs an egress policy on the gateway's port for a
// bus (attaching the port on demand), modelling a congested central
// gateway whose outbound link to that segment backs up. The zero
// policy restores immediate forwarding; frames already scheduled keep
// their release tags.
func (g *Gateway) SetEgress(bus *Bus, p EgressPolicy) error {
	if bus == nil {
		return errors.New("canbus: egress policy needs a bus")
	}
	if p.Rate < 0 || p.Queue < 0 {
		return errors.New("canbus: negative egress policy")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.port(bus).policy = p
	return nil
}

// SetLinkUp marks the gateway's port on a bus up (the default) or
// down, modelling a severed harness connector or a failed transceiver.
// While the link is down the port neither routes frames it hears nor
// accepts frames routed toward it — both are discarded and counted in
// PartitionDrop — but frames already in the port's release schedule
// are held and flood out after heal. The flip itself is free of
// scheduling nondeterminism: partition adversaries drive it from the
// simulated clock, so a severed window is a pure function of the
// scenario definition. It is an error to name a bus the gateway has no
// port on.
func (g *Gateway) SetLinkUp(bus *Bus, up bool) error {
	if bus == nil {
		return errors.New("canbus: SetLinkUp needs a bus")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range g.ports {
		if p.bus == bus {
			p.down = !up
			return nil
		}
	}
	return fmt.Errorf("canbus: gateway %s has no port on that bus", g.name)
}

// EgressBacklog returns the number of frames scheduled for later
// release on the port for a bus — rate-gated and store-latency-gated
// alike (0 when the port does not exist or holds nothing).
func (g *Gateway) EgressBacklog(bus *Bus) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range g.ports {
		if p.bus == bus {
			n := 0
			for _, fl := range p.flows {
				n += len(fl.queue)
			}
			return n
		}
	}
	return 0
}

// Route adds a one-way forwarding rule: frames heard on from whose
// identifier passes filter (nil admits everything) are re-transmitted
// on to, after latency of store-and-forward delay. Call twice with
// swapped buses — typically with different filters — for a
// bidirectional bridge.
func (g *Gateway) Route(from, to *Bus, filter func(Frame) bool, latency time.Duration) error {
	if from == nil || to == nil {
		return errors.New("canbus: gateway route needs two buses")
	}
	if from == to {
		return errors.New("canbus: gateway route cannot loop a bus onto itself")
	}
	if latency < 0 {
		return errors.New("canbus: negative gateway latency")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.routes = append(g.routes, gatewayRoute{
		from:    g.port(from),
		to:      g.port(to),
		filter:  filter,
		latency: latency,
	})
	return nil
}

// Pump drains every port, forwards (or schedules) matching frames and
// releases scheduled frames that are due on the simulated clock. It
// returns the number of frames moved — drained from a port or
// released from a schedule. Callers loop until it returns 0 to reach
// quiescence; a frame forwarded onto a segment watched by another
// gateway is picked up by that gateway's next Pump, so chained
// segments need a pump loop over all gateways (see transport.World).
// Frames still gated behind a store latency or rate limit do not
// count as movement; their release time is exposed through
// NextDeadline so the world's timer loop can advance to it.
func (g *Gateway) Pump() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	moved := 0
	for _, p := range g.ports {
		for {
			f, ok := p.node.Receive()
			if !ok {
				break
			}
			moved++
			if p.down {
				// A severed link hears nothing: the frame reached the
				// transceiver but the gateway never saw it.
				g.stats.PartitionDrop++
				continue
			}
			matched := false
			for _, r := range g.routes {
				if r.from != p {
					continue
				}
				if r.filter != nil && !r.filter(f) {
					continue
				}
				matched = true
				g.stats.StoreTime += r.latency
				g.emit(r.to, f, r.latency)
			}
			if !matched {
				g.stats.Filtered++
			}
		}
	}
	for _, p := range g.ports {
		moved += g.drainEgress(p)
	}
	return moved
}

// emit puts a routed frame onto the destination port. Store-and-
// forward latency is charged per frame as a scheduled release — never
// as a shared-clock advance, so unrelated frames drained in the same
// pump do not inflate each other's timestamps. A frame with nothing to
// wait for (zero latency, unlimited rate, no flow backlog to stay
// behind) goes straight to the wire within this pump, exactly the
// pre-scheduler behaviour; everything else is tagged by its flow's
// virtual clock and queued for drainEgress.
func (g *Gateway) emit(p *gatewayPort, f Frame, latency time.Duration) {
	if p.down {
		// The outbound link is severed: the frame is lost in transit,
		// exactly as if the harness were cut mid-hop.
		g.stats.PartitionDrop++
		return
	}
	if g.clock == nil {
		// No timekeeping: nothing to gate on, forward immediately.
		g.forward(p, f)
		return
	}
	if !p.policy.limited() && latency == 0 && p.backlog(f) == nil {
		g.forward(p, f)
		return
	}
	fl := p.flow(f)
	if p.policy.limited() && p.policy.Queue > 0 && len(fl.queue) >= p.policy.Queue {
		g.stats.EgressDropped++
		return
	}
	due := g.clock.Now() + latency
	if fl.vnext > due {
		due = fl.vnext
	}
	fl.vnext = due
	if p.policy.limited() && !p.policy.Shared {
		// Per-flow pacing: the flow's own virtual clock spaces its
		// frames one rate gap apart. A shared-capacity port paces at
		// release time instead (nextTx), so due stays pure eligibility.
		fl.vnext = due + p.policy.gap()
	}
	fl.queue = append(fl.queue, gatedFrame{frame: f, due: due})
	g.stats.EgressQueued++
}

// drainEgress releases every scheduled frame that is due at the
// current simulated time. On a per-flow port, smallest release tag
// first (ties broken by flow identifier, so release order never
// depends on admission interleaving); on a shared-capacity port the
// port transmits at most once per rate gap (nextTx) and picks among
// eligible flows by start-time fair queuing — smallest virtual finish
// tag, identifier as the tie-break. Returns the number of frames
// released. Releasing a frame occupies the destination wire and may
// advance the clock, which can make further frames due within the
// same drain.
func (g *Gateway) drainEgress(p *gatewayPort) int {
	if g.clock == nil || p.down {
		// A severed port holds its schedule: releases resume on heal.
		return 0
	}
	sent := 0
	for {
		now := g.clock.Now()
		if p.shared() && p.nextTx > now {
			return sent
		}
		var best *egressFlow
		for _, fl := range p.flows {
			if len(fl.queue) == 0 || fl.queue[0].due > now {
				continue
			}
			if best == nil || p.serveBefore(fl, best) {
				best = fl
			}
		}
		if best == nil {
			return sent
		}
		f := best.queue[0].frame
		best.queue = best.queue[1:]
		if p.shared() {
			s := p.vtime
			if best.fin > s {
				s = best.fin
			}
			best.fin = s + 1
			p.vtime = s
			if p.nextTx < now {
				p.nextTx = now
			}
			p.nextTx += p.policy.gap()
		}
		g.forward(p, f)
		sent++
	}
}

// serveBefore orders two release-eligible flows. Per-flow mode: the
// earlier head release tag wins. Shared-capacity mode: the smaller
// start tag max(port virtual time, flow finish tag) wins — with the
// port term common to both flows, that is the smaller finish tag,
// which alternates backlogged flows and clamps a newly active flow to
// the port's present rather than its past. The identifier is the
// deterministic tie-break either way.
func (p *gatewayPort) serveBefore(a, b *egressFlow) bool {
	if p.shared() {
		af, bf := a.fin, b.fin
		if af < p.vtime {
			af = p.vtime
		}
		if bf < p.vtime {
			bf = p.vtime
		}
		if af != bf {
			return af < bf
		}
	} else if a.queue[0].due != b.queue[0].due {
		return a.queue[0].due < b.queue[0].due
	}
	if a.key.id != b.key.id {
		return a.key.id < b.key.id
	}
	return !a.key.ext && b.key.ext
}

// forward re-transmits a frame on the destination segment and counts
// the outcome: Forwarded when the wire took it (including frames the
// impairment layer then destroys — that loss belongs to the bus's
// Dropped counter), ForwardFailed when no receiver accepted it (the
// frame is invalid for the destination segment, or every receiver's
// RX queue overflowed). Before ForwardFailed existed such frames
// vanished with no counter moving at all.
func (g *Gateway) forward(p *gatewayPort, f Frame) {
	res, err := p.node.send(f)
	if err != nil || res.refused() {
		g.stats.ForwardFailed++
		return
	}
	g.stats.Forwarded++
}

// NextDeadline returns the earliest simulated time a scheduled frame
// becomes releasable, or 0 when no port holds a gated frame. The
// world's timer loop (transport.World.Step) treats it like a protocol
// timer: time advances to it, then the pump releases the frame.
func (g *Gateway) NextDeadline() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	var min time.Duration
	for _, p := range g.ports {
		if p.down {
			// Nothing releases from a severed port, so its schedule
			// arms no timer; the heal (an adversary deadline) is what
			// the world will step to.
			continue
		}
		for _, fl := range p.flows {
			if len(fl.queue) == 0 {
				continue
			}
			due := fl.queue[0].due
			if p.shared() && p.nextTx > due {
				// The shared port cannot transmit before its next rate
				// slot, whatever the frame's own eligibility.
				due = p.nextTx
			}
			if min == 0 || due < min {
				min = due
			}
		}
	}
	return min
}

// IDRange returns a frame filter admitting identifiers in [lo, hi].
func IDRange(lo, hi uint32) func(Frame) bool {
	return func(f Frame) bool { return f.ID >= lo && f.ID <= hi }
}

// IDSet returns a frame filter admitting exactly the listed
// identifiers.
func IDSet(ids ...uint32) func(Frame) bool {
	set := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(f Frame) bool { return set[f.ID] }
}
