package canbus

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Gateway bridges CAN segments the way an automotive central gateway
// does: it owns one port (a regular bus node) per attached segment and
// forwards frames between them under per-direction identifier filters,
// charging a store-and-forward latency per forwarded frame to the
// simulated clock.
//
// Forwarding is pull-based: Pump drains every port's receive queue and
// re-transmits matching frames on the destination segments. The
// single-threaded experiment drivers pump gateways between protocol
// steps (see transport.World), which keeps multi-hop delivery order —
// and therefore seeded impairment decisions — deterministic.
//
// Loops are prevented by construction twice over: a frame forwarded
// onto a segment is transmitted from the gateway's own port there, so
// that port never hears its own forward; and routes are directional
// with explicit filters, so a bridged frame only continues along
// routes whose filter admits its identifier.
type Gateway struct {
	name  string
	clock *Clock

	mu     sync.Mutex
	ports  []*gatewayPort
	routes []gatewayRoute
	stats  GatewayStats
}

// GatewayStats counts forwarding activity.
type GatewayStats struct {
	Forwarded int           // frames re-transmitted onto another segment
	Filtered  int           // frames drained but admitted by no route
	StoreTime time.Duration // cumulative store-and-forward latency
}

type gatewayPort struct {
	bus  *Bus
	node *Node
}

type gatewayRoute struct {
	from, to *gatewayPort
	filter   func(Frame) bool
	latency  time.Duration
}

// NewGateway creates a gateway. The clock (may be nil) is charged the
// store-and-forward latency of every forwarded frame.
func NewGateway(name string, clock *Clock) *Gateway {
	return &Gateway{name: name, clock: clock}
}

// Name returns the gateway's name.
func (g *Gateway) Name() string { return g.name }

// Stats returns a snapshot of the forwarding counters.
func (g *Gateway) Stats() GatewayStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// port returns (attaching on demand) the gateway's node on a bus.
func (g *Gateway) port(bus *Bus) *gatewayPort {
	for _, p := range g.ports {
		if p.bus == bus {
			return p
		}
	}
	p := &gatewayPort{bus: bus, node: bus.Attach(fmt.Sprintf("%s:port%d", g.name, len(g.ports)))}
	g.ports = append(g.ports, p)
	return p
}

// Route adds a one-way forwarding rule: frames heard on from whose
// identifier passes filter (nil admits everything) are re-transmitted
// on to, after latency of store-and-forward delay. Call twice with
// swapped buses — typically with different filters — for a
// bidirectional bridge.
func (g *Gateway) Route(from, to *Bus, filter func(Frame) bool, latency time.Duration) error {
	if from == nil || to == nil {
		return errors.New("canbus: gateway route needs two buses")
	}
	if from == to {
		return errors.New("canbus: gateway route cannot loop a bus onto itself")
	}
	if latency < 0 {
		return errors.New("canbus: negative gateway latency")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.routes = append(g.routes, gatewayRoute{
		from:    g.port(from),
		to:      g.port(to),
		filter:  filter,
		latency: latency,
	})
	return nil
}

// Pump drains every port and forwards matching frames, returning the
// number of frames drained (forwarded or filtered). Callers loop until
// it returns 0 to reach quiescence; a frame forwarded onto a segment
// watched by another gateway is picked up by that gateway's next Pump,
// so chained segments need a pump loop over all gateways (see
// transport.World).
func (g *Gateway) Pump() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	drained := 0
	for _, p := range g.ports {
		for {
			f, ok := p.node.Receive()
			if !ok {
				break
			}
			drained++
			matched := false
			for _, r := range g.routes {
				if r.from != p {
					continue
				}
				if r.filter != nil && !r.filter(f) {
					continue
				}
				matched = true
				g.stats.StoreTime += r.latency
				g.clock.Advance(r.latency)
				if _, err := r.to.node.Send(f); err == nil {
					g.stats.Forwarded++
				}
			}
			if !matched {
				g.stats.Filtered++
			}
		}
	}
	return drained
}

// IDRange returns a frame filter admitting identifiers in [lo, hi].
func IDRange(lo, hi uint32) func(Frame) bool {
	return func(f Frame) bool { return f.ID >= lo && f.ID <= hi }
}

// IDSet returns a frame filter admitting exactly the listed
// identifiers.
func IDSet(ids ...uint32) func(Frame) bool {
	set := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(f Frame) bool { return set[f.ID] }
}
