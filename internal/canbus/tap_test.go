package canbus

import (
	"testing"
	"time"
)

// TestTapHearsEverythingCountsNothing: the promiscuous monitor sees
// every delivered frame but leaves the bus counters — Broadcast,
// candidates (via arbitration), RxOverflow — exactly as they'd be on
// an untapped bus. That invisibility is the determinism obligation
// scenario recorders rely on.
func TestTapHearsEverythingCountsNothing(t *testing.T) {
	run := func(withTap bool) (Stats, int) {
		clock := NewClock()
		bus := NewBus(PrototypeRates)
		bus.SetClock(clock)
		tx := bus.Attach("tx")
		rx := bus.Attach("rx")
		rx.SetRxLimit(2)
		var tap *Node
		if withTap {
			tap = bus.Tap("tap")
		}
		for i := 0; i < 5; i++ {
			if _, err := tx.Send(Frame{ID: 0x100, Data: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
			clock.Advance(time.Millisecond)
		}
		heard := 0
		if tap != nil {
			heard = tap.Pending()
		}
		return bus.Stats(), heard
	}

	bare, _ := run(false)
	tapped, heard := run(true)
	if bare != tapped {
		t.Errorf("tap perturbed bus counters:\nwithout %+v\nwith    %+v", bare, tapped)
	}
	if heard != 5 {
		t.Errorf("tap heard %d frames, want 5", heard)
	}
	// The receiver overflowed at limit 2 in both runs — the overflow
	// belongs to the real receiver, never to the tap's unbounded queue.
	if tapped.RxOverflow != 3 {
		t.Errorf("RxOverflow = %d, want 3", tapped.RxOverflow)
	}
}

// TestTapObservesPostImpairment: a frame the wire drops is invisible
// to the tap too — it records what receivers actually saw.
func TestTapObservesPostImpairment(t *testing.T) {
	clock := NewClock()
	bus := NewBus(PrototypeRates)
	bus.SetClock(clock)
	bus.Impair(Impairment{Seed: 1, Drop: 1}) // drop everything
	tx := bus.Attach("tx")
	bus.Attach("rx")
	tap := bus.Tap("tap")
	if _, err := tx.Send(Frame{ID: 0x100, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if tap.Pending() != 0 {
		t.Error("tap heard a frame the wire dropped")
	}
}

// TestTapInjects: the tap's Send is the adversary's injection port —
// frames it sends are delivered and counted like any node's.
func TestTapInjects(t *testing.T) {
	clock := NewClock()
	bus := NewBus(PrototypeRates)
	bus.SetClock(clock)
	rx := bus.Attach("rx")
	tap := bus.Tap("tap")
	if _, err := tap.Send(Frame{ID: 0x123, Data: []byte{0xAA}}); err != nil {
		t.Fatal(err)
	}
	f, ok := rx.Receive()
	if !ok || f.ID != 0x123 {
		t.Fatalf("injected frame not delivered: %v %v", f, ok)
	}
	if bus.Stats().Broadcast != 1 {
		t.Errorf("injected frame not counted as a delivery: %+v", bus.Stats())
	}
}

// TestSetLinkUpPartitionsAndHeals: a down port drops frames it hears
// and frames routed toward it into PartitionDrop, stops contributing
// deadlines, and resumes forwarding cleanly after the heal.
func TestSetLinkUpPartitionsAndHeals(t *testing.T) {
	clock := NewClock()
	busA, busB, _, gw1, gw2 := threeSegments(t, clock, time.Millisecond)
	txA := busA.Attach("txA")
	rxB := busB.Attach("rxB")

	send := func(id uint32) {
		t.Helper()
		if _, err := txA.Send(Frame{ID: id, Data: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy baseline: a frame crosses gw1 onto bus B.
	send(0x100)
	driveAll(clock, gw1, gw2)
	if rxB.Pending() != 1 {
		t.Fatalf("baseline frame did not cross: %d pending", rxB.Pending())
	}
	rxB.Receive()

	// Sever gw1's port on bus A: frames heard there die.
	if err := gw1.SetLinkUp(busA, false); err != nil {
		t.Fatal(err)
	}
	send(0x101)
	driveAll(clock, gw1, gw2)
	if rxB.Pending() != 0 {
		t.Error("frame crossed a severed link")
	}
	if gw1.Stats().PartitionDrop == 0 {
		t.Error("severed port recorded no partition drops")
	}
	if d := gw1.NextDeadline(); d != 0 {
		t.Errorf("severed gateway still advertises a deadline %v", d)
	}

	// Heal and confirm traffic resumes.
	if err := gw1.SetLinkUp(busA, true); err != nil {
		t.Fatal(err)
	}
	send(0x102)
	driveAll(clock, gw1, gw2)
	if rxB.Pending() != 1 {
		t.Errorf("healed link did not resume forwarding: %d pending", rxB.Pending())
	}

	// SetLinkUp on a bus the gateway is not ported to is an error.
	stranger := NewBus(PrototypeRates)
	if err := gw1.SetLinkUp(stranger, false); err == nil {
		t.Error("SetLinkUp accepted a foreign bus")
	}
	if err := gw1.SetLinkUp(nil, false); err == nil {
		t.Error("SetLinkUp accepted a nil bus")
	}
}

// TestSetLinkUpDropsRoutedFrames: a frame arriving on a healthy port
// but routed toward a severed one dies at the severed port's emit
// side, also counted in PartitionDrop.
func TestSetLinkUpDropsRoutedFrames(t *testing.T) {
	clock := NewClock()
	busA, busB, _, gw1, _ := threeSegments(t, clock, time.Millisecond)
	txB := busB.Attach("txB")
	rxA := busA.Attach("rxA")

	if err := gw1.SetLinkUp(busA, false); err != nil {
		t.Fatal(err)
	}
	// Responder traffic B→A must route through gw1's (severed) A port.
	if _, err := txB.Send(Frame{ID: 0x200, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	driveAll(clock, gw1)
	if rxA.Pending() != 0 {
		t.Error("frame emitted from a severed port")
	}
	if gw1.Stats().PartitionDrop == 0 {
		t.Error("emit-side partition drop not counted")
	}
}
