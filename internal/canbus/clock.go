package canbus

import (
	"sync"
	"time"
)

// Clock is the simulated network time shared by buses, gateways and
// the transport layer. The experiments do not sleep: wire occupancy,
// gateway store-and-forward latency and protocol timeouts all advance
// this logical clock, which keeps impaired-network runs exactly
// reproducible under a fixed seed regardless of host scheduling.
//
// A nil *Clock is a valid "no timekeeping" clock: every method is a
// cheap no-op returning zero, so the lossless fast path pays nothing.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (ignored when non-positive) and
// returns the new time.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
	}
	return c.now
}

// AdvanceTo moves the clock forward to t; a t in the past is a no-op
// (simulated time never runs backwards). It returns the current time.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}
