package canbus

import (
	"testing"
	"time"
)

// threeSegments builds the canonical chain A —GW1— B —GW2— C with
// initiator IDs (0x100–0x1FF) flowing A→C and responder IDs
// (0x200–0x2FF) flowing C→A.
func threeSegments(t *testing.T, clock *Clock, latency time.Duration) (busA, busB, busC *Bus, gw1, gw2 *Gateway) {
	t.Helper()
	busA = NewBus(PrototypeRates)
	busB = NewBus(PrototypeRates)
	busC = NewBus(PrototypeRates)
	for _, b := range []*Bus{busA, busB, busC} {
		b.SetClock(clock)
	}
	gw1 = NewGateway("gw1", clock)
	gw2 = NewGateway("gw2", clock)
	fwd := IDRange(0x100, 0x1FF)
	rev := IDRange(0x200, 0x2FF)
	for _, r := range []struct {
		gw       *Gateway
		from, to *Bus
		f        func(Frame) bool
	}{
		{gw1, busA, busB, fwd},
		{gw1, busB, busA, rev},
		{gw2, busB, busC, fwd},
		{gw2, busC, busB, rev},
	} {
		if err := r.gw.Route(r.from, r.to, r.f, latency); err != nil {
			t.Fatal(err)
		}
	}
	return
}

func pumpAll(gws ...*Gateway) {
	for {
		n := 0
		for _, g := range gws {
			n += g.Pump()
		}
		if n == 0 {
			return
		}
	}
}

func TestGatewayForwardsAcrossThreeSegments(t *testing.T) {
	clock := NewClock()
	busA, _, busC, gw1, gw2 := threeSegments(t, clock, 100*time.Microsecond)
	src := busA.Attach("ecu-a")
	dst := busC.Attach("ecu-c")

	if _, err := src.Send(Frame{ID: 0x110, BRS: true, Data: []byte{0xDE, 0xAD}}); err != nil {
		t.Fatal(err)
	}
	pumpAll(gw1, gw2)

	f, ok := dst.Receive()
	if !ok {
		t.Fatal("frame did not cross two gateways")
	}
	if f.ID != 0x110 || f.Data[0] != 0xDE {
		t.Errorf("forwarded frame mangled: %+v", f)
	}
	// Two hops of store-and-forward latency plus three wire times.
	if clock.Now() < 200*time.Microsecond {
		t.Errorf("clock %v did not accumulate 2×100µs store latency", clock.Now())
	}
	if gw1.Stats().Forwarded != 1 || gw2.Stats().Forwarded != 1 {
		t.Errorf("forward counts gw1=%+v gw2=%+v", gw1.Stats(), gw2.Stats())
	}

	// Reverse direction: responder ID from C reaches A.
	if _, err := dst.Send(Frame{ID: 0x210, BRS: true, Data: []byte{0x01}}); err != nil {
		t.Fatal(err)
	}
	pumpAll(gw1, gw2)
	if f, ok := src.Receive(); !ok || f.ID != 0x210 {
		t.Fatal("reverse frame did not reach segment A")
	}
}

func TestGatewayFiltersBlockUnroutedIDs(t *testing.T) {
	clock := NewClock()
	busA, busB, busC, gw1, gw2 := threeSegments(t, clock, 0)
	src := busA.Attach("ecu-a")
	mid := busB.Attach("ecu-b")
	dst := busC.Attach("ecu-c")

	// 0x050 matches no route: it must stay on segment A.
	if _, err := src.Send(Frame{ID: 0x050, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	pumpAll(gw1, gw2)
	if dst.Pending() != 0 || mid.Pending() != 0 {
		t.Error("unrouted ID leaked across the gateway")
	}
	if gw1.Stats().Filtered != 1 {
		t.Errorf("gw1 filtered %d, want 1", gw1.Stats().Filtered)
	}

	// A responder ID sent on A goes nowhere: the A→B route only
	// admits initiator IDs (per-direction filtering).
	if _, err := src.Send(Frame{ID: 0x210, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	pumpAll(gw1, gw2)
	if dst.Pending() != 0 {
		t.Error("per-direction filter ignored")
	}
}

func TestGatewayNoLoops(t *testing.T) {
	// Two gateways bridging the same pair of buses in both directions:
	// without the own-port suppression and directional filters this
	// would forward forever.
	clock := NewClock()
	busA := NewBus(PrototypeRates)
	busB := NewBus(PrototypeRates)
	gw1 := NewGateway("gw1", clock)
	gw2 := NewGateway("gw2", clock)
	if err := gw1.Route(busA, busB, IDRange(0x100, 0x1FF), 0); err != nil {
		t.Fatal(err)
	}
	if err := gw2.Route(busA, busB, IDRange(0x100, 0x1FF), 0); err != nil {
		t.Fatal(err)
	}
	src := busA.Attach("a")
	dst := busB.Attach("b")
	if _, err := src.Send(Frame{ID: 0x100, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { pumpAll(gw1, gw2); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("gateway pump did not quiesce (forwarding loop)")
	}
	// Both gateways forward the original frame once: two copies at dst.
	if dst.Pending() != 2 {
		t.Errorf("dst holds %d frames, want 2", dst.Pending())
	}
}

func TestGatewayRouteValidation(t *testing.T) {
	g := NewGateway("g", nil)
	bus := NewBus(PrototypeRates)
	if err := g.Route(bus, bus, nil, 0); err == nil {
		t.Error("self-loop route accepted")
	}
	if err := g.Route(nil, bus, nil, 0); err == nil {
		t.Error("nil bus accepted")
	}
	if err := g.Route(bus, NewBus(PrototypeRates), nil, -time.Second); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestIDFilters(t *testing.T) {
	r := IDRange(0x100, 0x10F)
	if !r(Frame{ID: 0x100}) || !r(Frame{ID: 0x10F}) || r(Frame{ID: 0x110}) || r(Frame{ID: 0xFF}) {
		t.Error("IDRange bounds wrong")
	}
	s := IDSet(1, 5, 9)
	if !s(Frame{ID: 5}) || s(Frame{ID: 2}) {
		t.Error("IDSet membership wrong")
	}
}
