package canbus

import (
	"testing"
	"time"
)

// threeSegments builds the canonical chain A —GW1— B —GW2— C with
// initiator IDs (0x100–0x1FF) flowing A→C and responder IDs
// (0x200–0x2FF) flowing C→A.
func threeSegments(t *testing.T, clock *Clock, latency time.Duration) (busA, busB, busC *Bus, gw1, gw2 *Gateway) {
	t.Helper()
	busA = NewBus(PrototypeRates)
	busB = NewBus(PrototypeRates)
	busC = NewBus(PrototypeRates)
	for _, b := range []*Bus{busA, busB, busC} {
		b.SetClock(clock)
	}
	gw1 = NewGateway("gw1", clock)
	gw2 = NewGateway("gw2", clock)
	fwd := IDRange(0x100, 0x1FF)
	rev := IDRange(0x200, 0x2FF)
	for _, r := range []struct {
		gw       *Gateway
		from, to *Bus
		f        func(Frame) bool
	}{
		{gw1, busA, busB, fwd},
		{gw1, busB, busA, rev},
		{gw2, busB, busC, fwd},
		{gw2, busC, busB, rev},
	} {
		if err := r.gw.Route(r.from, r.to, r.f, latency); err != nil {
			t.Fatal(err)
		}
	}
	return
}

func pumpAll(gws ...*Gateway) {
	for {
		n := 0
		for _, g := range gws {
			n += g.Pump()
		}
		if n == 0 {
			return
		}
	}
}

// driveAll pumps the gateways to quiescence, advancing the clock to
// each scheduled release (store latency, egress gating) in between —
// the canbus-level equivalent of transport.World's timer loop.
func driveAll(clock *Clock, gws ...*Gateway) {
	for {
		pumpAll(gws...)
		var dl time.Duration
		for _, g := range gws {
			if d := g.NextDeadline(); d > 0 && (dl == 0 || d < dl) {
				dl = d
			}
		}
		if dl == 0 {
			return
		}
		clock.AdvanceTo(dl)
	}
}

func TestGatewayForwardsAcrossThreeSegments(t *testing.T) {
	clock := NewClock()
	busA, _, busC, gw1, gw2 := threeSegments(t, clock, 100*time.Microsecond)
	src := busA.Attach("ecu-a")
	dst := busC.Attach("ecu-c")

	if _, err := src.Send(Frame{ID: 0x110, BRS: true, Data: []byte{0xDE, 0xAD}}); err != nil {
		t.Fatal(err)
	}
	driveAll(clock, gw1, gw2)

	f, ok := dst.Receive()
	if !ok {
		t.Fatal("frame did not cross two gateways")
	}
	if f.ID != 0x110 || f.Data[0] != 0xDE {
		t.Errorf("forwarded frame mangled: %+v", f)
	}
	// Two hops of store-and-forward latency plus three wire times.
	if clock.Now() < 200*time.Microsecond {
		t.Errorf("clock %v did not accumulate 2×100µs store latency", clock.Now())
	}
	if gw1.Stats().Forwarded != 1 || gw2.Stats().Forwarded != 1 {
		t.Errorf("forward counts gw1=%+v gw2=%+v", gw1.Stats(), gw2.Stats())
	}
	if gw1.Stats().StoreTime != 100*time.Microsecond {
		t.Errorf("gw1 store time %v, want 100µs", gw1.Stats().StoreTime)
	}

	// Reverse direction: responder ID from C reaches A.
	if _, err := dst.Send(Frame{ID: 0x210, BRS: true, Data: []byte{0x01}}); err != nil {
		t.Fatal(err)
	}
	driveAll(clock, gw1, gw2)
	if f, ok := src.Receive(); !ok || f.ID != 0x210 {
		t.Fatal("reverse frame did not reach segment A")
	}
}

// TestGatewayPumpChargesPerFrameRelease is the regression test for the
// batch-pump latency bug: Pump used to advance the shared clock by the
// route latency once per routed frame, so unrelated frames drained in
// the same pump inflated each other's timestamps (two frames in one
// pump cost 2L of global time). Store-and-forward latency must instead
// be a per-frame scheduled release: both frames become due one latency
// after the pump that drained them, not one after the other.
func TestGatewayPumpChargesPerFrameRelease(t *testing.T) {
	const latency = time.Millisecond
	clock := NewClock()
	busA := NewBus(PrototypeRates)
	busB := NewBus(PrototypeRates)
	busA.SetClock(clock)
	busB.SetClock(clock)
	gw := NewGateway("gw", clock)
	if err := gw.Route(busA, busB, nil, latency); err != nil {
		t.Fatal(err)
	}
	src := busA.Attach("src")
	dst := busB.Attach("dst")

	// Two unrelated conversations, both already waiting when the pump
	// runs.
	for _, id := range []uint32{0x110, 0x120} {
		if _, err := src.Send(Frame{ID: id, BRS: true, Data: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	drained := clock.Now()
	if moved := gw.Pump(); moved != 2 {
		t.Fatalf("pump moved %d frames, want 2 drained", moved)
	}
	// Neither frame is forwarded yet — both are scheduled, due one
	// latency after the drain, and the shared clock has not moved.
	if dst.Pending() != 0 {
		t.Fatalf("latency-gated frames delivered immediately")
	}
	if clock.Now() != drained {
		t.Fatalf("pump advanced the shared clock %v → %v", drained, clock.Now())
	}
	if dl := gw.NextDeadline(); dl != drained+latency {
		t.Fatalf("release scheduled at %v, want %v", dl, drained+latency)
	}
	driveAll(clock, gw)
	if dst.Pending() != 2 {
		t.Fatalf("delivered %d of 2 frames", dst.Pending())
	}
	// The old behaviour reached drained + 2L before the second frame
	// was even stamped; per-frame scheduling finishes both releases
	// (plus their wire times) well inside a single extra latency.
	if end := clock.Now(); end >= drained+2*latency {
		t.Errorf("batch pump still inflates timestamps: end %v, drained %v, latency %v", end, drained, latency)
	}
	if st := gw.Stats(); st.StoreTime != 2*latency || st.Forwarded != 2 || st.EgressQueued != 2 {
		t.Errorf("stats wrong after scheduled releases: %+v", st)
	}
}

// TestGatewayForwardFailedOnOverflow: a forward that every receiver
// refuses (destination RX queue full) must move the ForwardFailed
// counter instead of vanishing silently — and must not count as
// Forwarded.
func TestGatewayForwardFailedOnOverflow(t *testing.T) {
	clock := NewClock()
	busA := NewBus(PrototypeRates)
	busB := NewBus(PrototypeRates)
	busA.SetClock(clock)
	busB.SetClock(clock)
	gw := NewGateway("gw", clock)
	if err := gw.Route(busA, busB, nil, 0); err != nil {
		t.Fatal(err)
	}
	src := busA.Attach("src")
	dst := busB.Attach("dst")
	dst.SetRxLimit(1)

	for i := 0; i < 3; i++ {
		if _, err := src.Send(Frame{ID: 0x100, BRS: true, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	driveAll(clock, gw)
	st := gw.Stats()
	if st.Forwarded != 1 || st.ForwardFailed != 2 {
		t.Fatalf("forwarded %d / failed %d, want 1 / 2: %+v", st.Forwarded, st.ForwardFailed, st)
	}
	if dst.Overflow() != 2 {
		t.Errorf("destination counted %d overflows, want 2", dst.Overflow())
	}
	if st.EgressDropped != 0 {
		t.Errorf("RX refusal leaked into EgressDropped: %+v", st)
	}
}

// TestGatewayForwardFailedOnInvalidDestination: a frame that cannot be
// re-transmitted on the destination segment (here: a bus with no
// configured bit rates) is a counted forward failure, not a silent
// one.
func TestGatewayForwardFailedOnInvalidDestination(t *testing.T) {
	clock := NewClock()
	busA := NewBus(PrototypeRates)
	busBad := NewBus(BitRates{}) // WireTime fails on the zero rates
	busA.SetClock(clock)
	gw := NewGateway("gw", clock)
	if err := gw.Route(busA, busBad, nil, 0); err != nil {
		t.Fatal(err)
	}
	src := busA.Attach("src")
	busBad.Attach("dst")
	if _, err := src.Send(Frame{ID: 0x100, BRS: true, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	driveAll(clock, gw)
	if st := gw.Stats(); st.ForwardFailed != 1 || st.Forwarded != 0 {
		t.Errorf("invalid destination not counted: %+v", st)
	}
}

// TestNextDeadlineMultipleGatedFlows pins the scheduler's deadline
// aggregation with several simultaneously gated ports and flows: the
// earliest release tag across every port and flow wins, and the
// deadline is 0 exactly when nothing is gated.
func TestNextDeadlineMultipleGatedFlows(t *testing.T) {
	clock := NewClock()
	busS := NewBus(PrototypeRates)
	busFast := NewBus(PrototypeRates)
	busSlow := NewBus(PrototypeRates)
	for _, b := range []*Bus{busS, busFast, busSlow} {
		b.SetClock(clock)
	}
	gw := NewGateway("gw", clock)
	// Rate-gated port (1 kHz ⇒ 1 ms gap) fed by two flows, and a
	// latency-gated uncongested port (5 ms store delay) fed by one.
	if err := gw.Route(busS, busFast, IDRange(0x100, 0x1FF), 0); err != nil {
		t.Fatal(err)
	}
	if err := gw.Route(busS, busSlow, IDRange(0x200, 0x2FF), 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := gw.SetEgress(busFast, EgressPolicy{Rate: 1000}); err != nil {
		t.Fatal(err)
	}
	src := busS.Attach("src")
	busFast.Attach("sinkF")
	busSlow.Attach("sinkS")

	if gw.NextDeadline() != 0 {
		t.Fatalf("idle gateway advertises deadline %v", gw.NextDeadline())
	}
	// Two frames each on two rate-gated flows, one on the latency flow.
	for _, id := range []uint32{0x110, 0x110, 0x120, 0x120, 0x210} {
		if _, err := src.Send(Frame{ID: id, BRS: true, Data: []byte{0}}); err != nil {
			t.Fatal(err)
		}
	}
	drained := clock.Now()
	gw.Pump()
	// Heads of both rate-gated flows released at admission time (their
	// virtual clocks were idle); each flow's second frame is due one
	// gap later, the latency flow 5 ms out. Earliest deadline: the
	// 1 ms rate gap.
	if got, want := gw.NextDeadline(), drained+time.Millisecond; got != want {
		t.Fatalf("NextDeadline %v, want earliest gated flow at %v", got, want)
	}
	if gw.EgressBacklog(busFast) != 2 || gw.EgressBacklog(busSlow) != 1 {
		t.Fatalf("backlogs fast=%d slow=%d, want 2/1",
			gw.EgressBacklog(busFast), gw.EgressBacklog(busSlow))
	}
	// Releasing the rate-gated flows leaves the latency port as the
	// only gated one: its 5 ms tag must surface as the minimum.
	clock.AdvanceTo(drained + time.Millisecond)
	gw.Pump()
	if got, want := gw.NextDeadline(), drained+5*time.Millisecond; got != want {
		t.Fatalf("NextDeadline %v after rate drain, want latency release at %v", got, want)
	}
	driveAll(clock, gw)
	if gw.NextDeadline() != 0 {
		t.Fatalf("drained gateway still advertises deadline %v", gw.NextDeadline())
	}
	if st := gw.Stats(); st.Forwarded != 5 {
		t.Errorf("forwarded %d of 5", st.Forwarded)
	}
}

func TestGatewayFiltersBlockUnroutedIDs(t *testing.T) {
	clock := NewClock()
	busA, busB, busC, gw1, gw2 := threeSegments(t, clock, 0)
	src := busA.Attach("ecu-a")
	mid := busB.Attach("ecu-b")
	dst := busC.Attach("ecu-c")

	// 0x050 matches no route: it must stay on segment A.
	if _, err := src.Send(Frame{ID: 0x050, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	pumpAll(gw1, gw2)
	if dst.Pending() != 0 || mid.Pending() != 0 {
		t.Error("unrouted ID leaked across the gateway")
	}
	if gw1.Stats().Filtered != 1 {
		t.Errorf("gw1 filtered %d, want 1", gw1.Stats().Filtered)
	}

	// A responder ID sent on A goes nowhere: the A→B route only
	// admits initiator IDs (per-direction filtering).
	if _, err := src.Send(Frame{ID: 0x210, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	pumpAll(gw1, gw2)
	if dst.Pending() != 0 {
		t.Error("per-direction filter ignored")
	}
}

func TestGatewayNoLoops(t *testing.T) {
	// Two gateways bridging the same pair of buses in both directions:
	// without the own-port suppression and directional filters this
	// would forward forever.
	clock := NewClock()
	busA := NewBus(PrototypeRates)
	busB := NewBus(PrototypeRates)
	gw1 := NewGateway("gw1", clock)
	gw2 := NewGateway("gw2", clock)
	if err := gw1.Route(busA, busB, IDRange(0x100, 0x1FF), 0); err != nil {
		t.Fatal(err)
	}
	if err := gw2.Route(busA, busB, IDRange(0x100, 0x1FF), 0); err != nil {
		t.Fatal(err)
	}
	src := busA.Attach("a")
	dst := busB.Attach("b")
	if _, err := src.Send(Frame{ID: 0x100, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { pumpAll(gw1, gw2); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("gateway pump did not quiesce (forwarding loop)")
	}
	// Both gateways forward the original frame once: two copies at dst.
	if dst.Pending() != 2 {
		t.Errorf("dst holds %d frames, want 2", dst.Pending())
	}
}

func TestGatewayRouteValidation(t *testing.T) {
	g := NewGateway("g", nil)
	bus := NewBus(PrototypeRates)
	if err := g.Route(bus, bus, nil, 0); err == nil {
		t.Error("self-loop route accepted")
	}
	if err := g.Route(nil, bus, nil, 0); err == nil {
		t.Error("nil bus accepted")
	}
	if err := g.Route(bus, NewBus(PrototypeRates), nil, -time.Second); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestIDFilters(t *testing.T) {
	r := IDRange(0x100, 0x10F)
	if !r(Frame{ID: 0x100}) || !r(Frame{ID: 0x10F}) || r(Frame{ID: 0x110}) || r(Frame{ID: 0xFF}) {
		t.Error("IDRange bounds wrong")
	}
	s := IDSet(1, 5, 9)
	if !s(Frame{ID: 5}) || s(Frame{ID: 2}) {
		t.Error("IDSet membership wrong")
	}
}
