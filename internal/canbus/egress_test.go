package canbus

import (
	"testing"
	"time"
)

// egressPair builds A —GW— B with the gateway's B-side port under the
// given egress policy and every initiator ID admitted A→B.
func egressPair(t *testing.T, clock *Clock, p EgressPolicy) (srcBus, dstBus *Bus, gw *Gateway, src, dst *Node) {
	t.Helper()
	srcBus = NewBus(PrototypeRates)
	dstBus = NewBus(PrototypeRates)
	srcBus.SetClock(clock)
	dstBus.SetClock(clock)
	gw = NewGateway("gw", clock)
	if err := gw.Route(srcBus, dstBus, IDRange(0x100, 0x1FF), 0); err != nil {
		t.Fatal(err)
	}
	if err := gw.SetEgress(dstBus, p); err != nil {
		t.Fatal(err)
	}
	src = srcBus.Attach("src")
	dst = dstBus.Attach("dst")
	return
}

func TestEgressRateLimitBacksUp(t *testing.T) {
	clock := NewClock()
	// 100 frames/s: one frame every 10 ms — far slower than the wire.
	_, dstBus, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 100})

	for i := 0; i < 5; i++ {
		if _, err := src.Send(Frame{ID: 0x100, BRS: true, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	gw.Pump()
	// The first frame leaves immediately; four remain gated.
	if dst.Pending() != 1 {
		t.Fatalf("dst holds %d frames after first pump, want 1", dst.Pending())
	}
	if got := gw.EgressBacklog(dstBus); got != 4 {
		t.Fatalf("egress backlog %d, want 4", got)
	}
	dl := gw.NextDeadline()
	if dl <= clock.Now() {
		t.Fatalf("deadline %v not in the future (now %v)", dl, clock.Now())
	}
	// Pumping without advancing time releases nothing.
	if moved := gw.Pump(); moved != 0 {
		t.Fatalf("pump moved %d frames with the gate closed", moved)
	}
	// Advancing to each deadline releases exactly one more frame.
	for want := 2; want <= 5; want++ {
		clock.AdvanceTo(gw.NextDeadline())
		gw.Pump()
		if dst.Pending() != want {
			t.Fatalf("dst holds %d frames, want %d", dst.Pending(), want)
		}
	}
	if gw.Stats().Forwarded != 5 {
		t.Errorf("forwarded %d, want 5", gw.Stats().Forwarded)
	}
	if gw.EgressBacklog(dstBus) != 0 {
		t.Errorf("backlog %d after full drain", gw.EgressBacklog(dstBus))
	}
}

func TestEgressOverflowDeterministic(t *testing.T) {
	run := func() (delivered, dropped int) {
		clock := NewClock()
		_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 1, Queue: 3})
		for i := 0; i < 10; i++ {
			if _, err := src.Send(Frame{ID: 0x100, BRS: true, Data: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		gw.Pump()
		// Queue overflow is egress loss, not forward failure — the two
		// counters must stay distinct.
		if ff := gw.Stats().ForwardFailed; ff != 0 {
			t.Fatalf("egress queue drops counted as forward failures: %d", ff)
		}
		return dst.Pending(), gw.Stats().EgressDropped
	}
	d1, o1 := run()
	d2, o2 := run()
	if d1 != d2 || o1 != o2 {
		t.Fatalf("overflow accounting not deterministic: (%d,%d) vs (%d,%d)", d1, o1, d2, o2)
	}
	// Three frames fill the queue, seven drop at the full queue, and
	// the release phase lets exactly one out at t=0.
	if d1 != 1 || o1 != 7 {
		t.Fatalf("delivered %d dropped %d, want 1 and 7", d1, o1)
	}
}

// TestEgressStarvedPortKeepsPerIDOrder: a rate-starved port must
// deliver frames of one CAN identifier in their transmit order — the
// FIFO egress queue may delay but never reorder a conversation.
func TestEgressStarvedPortKeepsPerIDOrder(t *testing.T) {
	clock := NewClock()
	_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 50})
	// Interleave two conversations through the starved port.
	for i := 0; i < 8; i++ {
		id := uint32(0x110)
		if i%2 == 1 {
			id = 0x120
		}
		if _, err := src.Send(Frame{ID: id, BRS: true, Data: []byte{byte(i / 2)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Drain completely, stepping time to each release.
	for {
		gw.Pump()
		dl := gw.NextDeadline()
		if dl == 0 {
			break
		}
		clock.AdvanceTo(dl)
	}
	last := map[uint32]int{0x110: -1, 0x120: -1}
	seen := 0
	for {
		f, ok := dst.Receive()
		if !ok {
			break
		}
		seen++
		if got, prev := int(f.Data[0]), last[f.ID]; got != prev+1 {
			t.Fatalf("ID %#x delivered seq %d after %d — reordered", f.ID, got, prev)
		} else {
			last[f.ID] = got
		}
	}
	if seen != 8 {
		t.Fatalf("delivered %d of 8 frames", seen)
	}
}

// TestEgressFairQueuingDecouplesFlows: one conversation's backlog must
// not delay another conversation. Under the old shared FIFO, a frame
// of flow B arriving behind five queued frames of flow A waited five
// serialization gaps; the per-flow virtual clocks release B's frame at
// its own tag.
func TestEgressFairQueuingDecouplesFlows(t *testing.T) {
	clock := NewClock()
	// 100 frames/s: a 10 ms gap, so flow A's backlog spans ~40 ms.
	_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 100})
	for i := 0; i < 5; i++ {
		if _, err := src.Send(Frame{ID: 0x110, BRS: true, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.Send(Frame{ID: 0x120, BRS: true, Data: []byte{0xBB}}); err != nil {
		t.Fatal(err)
	}
	admitted := clock.Now()
	gw.Pump()
	// Both flows' head frames release at admission: the gate starts a
	// fresh virtual clock per flow, so B is not behind A's backlog.
	got := map[uint32]int{}
	for {
		f, ok := dst.Receive()
		if !ok {
			break
		}
		got[f.ID]++
	}
	if got[0x120] != 1 {
		t.Fatalf("flow B's frame stuck behind flow A's backlog: delivered %v at %v (admitted %v)", got, clock.Now(), admitted)
	}
	if got[0x110] != 1 {
		t.Fatalf("flow A's head not released at admission: %v", got)
	}
}

// TestEgressReleaseScheduleInvariantToAdmissionOrder: interleaving
// frames of independent conversations differently (preserving per-ID
// order, the physical CAN guarantee) must not change the release
// schedule — the property that makes congested scenarios reproducible
// at parallelism > 1.
func TestEgressReleaseScheduleInvariantToAdmissionOrder(t *testing.T) {
	type release struct {
		at time.Duration
		id uint32
		b  byte
	}
	run := func(order []uint32) []release {
		clock := NewClock()
		_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 200})
		seq := map[uint32]byte{}
		for _, id := range order {
			if _, err := src.Send(Frame{ID: id, BRS: true, Data: []byte{seq[id]}}); err != nil {
				t.Fatal(err)
			}
			seq[id]++
		}
		var out []release
		for {
			gw.Pump()
			for {
				f, ok := dst.Receive()
				if !ok {
					break
				}
				out = append(out, release{at: clock.Now(), id: f.ID, b: f.Data[0]})
			}
			dl := gw.NextDeadline()
			if dl == 0 {
				break
			}
			clock.AdvanceTo(dl)
		}
		return out
	}
	// Same three conversations, three per-ID-order-preserving
	// interleavings. (Admission times differ by wire-time ordering, so
	// compare the schedules relative to their own first release.)
	rel := func(rs []release) []release {
		if len(rs) == 0 {
			return rs
		}
		base := rs[0].at
		out := make([]release, len(rs))
		for i, r := range rs {
			out[i] = release{at: r.at - base, id: r.id, b: r.b}
		}
		return out
	}
	a := rel(run([]uint32{0x110, 0x110, 0x120, 0x120, 0x130, 0x130}))
	for _, order := range [][]uint32{
		{0x110, 0x120, 0x130, 0x110, 0x120, 0x130},
		{0x130, 0x120, 0x110, 0x130, 0x120, 0x110},
	} {
		b := rel(run(order))
		if len(a) != len(b) {
			t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("release %d differs across admission orders: %+v vs %+v\nfull: %+v\nvs    %+v", i, a[i], b[i], a, b)
			}
		}
	}
}

// TestEgressQueueWithoutRateIsInert: a queue bound without a rate
// limit never engages — an unlimited-rate port transmits within the
// pump that drained it, so there is no backlog to bound and nothing
// may be dropped.
func TestEgressQueueWithoutRateIsInert(t *testing.T) {
	clock := NewClock()
	_, dstBus, gw, src, dst := egressPair(t, clock, EgressPolicy{Queue: 2})
	for i := 0; i < 10; i++ {
		if _, err := src.Send(Frame{ID: 0x100, BRS: true, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	gw.Pump()
	if dst.Pending() != 10 {
		t.Fatalf("queue-only policy delivered %d of 10 frames", dst.Pending())
	}
	if s := gw.Stats(); s.EgressDropped != 0 {
		t.Fatalf("queue-only policy dropped %d frames on an unlimited-rate port", s.EgressDropped)
	}
	if gw.EgressBacklog(dstBus) != 0 || gw.NextDeadline() != 0 {
		t.Error("queue-only policy left egress state behind")
	}
}

// TestEgressZeroPolicyIsTransparent: the zero policy must behave
// exactly like the pre-egress gateway.
func TestEgressZeroPolicyIsTransparent(t *testing.T) {
	clock := NewClock()
	_, dstBus, gw, src, dst := egressPair(t, clock, EgressPolicy{})
	for i := 0; i < 4; i++ {
		if _, err := src.Send(Frame{ID: 0x100, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	gw.Pump()
	if dst.Pending() != 4 || gw.EgressBacklog(dstBus) != 0 || gw.NextDeadline() != 0 {
		t.Fatalf("zero policy gated traffic: pending %d backlog %d deadline %v",
			dst.Pending(), gw.EgressBacklog(dstBus), gw.NextDeadline())
	}
}

func TestEgressPolicyValidation(t *testing.T) {
	gw := NewGateway("gw", nil)
	bus := NewBus(PrototypeRates)
	if err := gw.SetEgress(nil, EgressPolicy{}); err == nil {
		t.Error("nil bus accepted")
	}
	if err := gw.SetEgress(bus, EgressPolicy{Rate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if err := gw.SetEgress(bus, EgressPolicy{Queue: -1}); err == nil {
		t.Error("negative queue accepted")
	}
}
