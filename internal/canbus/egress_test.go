package canbus

import (
	"testing"
	"time"
)

// egressPair builds A —GW— B with the gateway's B-side port under the
// given egress policy and every initiator ID admitted A→B.
func egressPair(t *testing.T, clock *Clock, p EgressPolicy) (srcBus, dstBus *Bus, gw *Gateway, src, dst *Node) {
	t.Helper()
	srcBus = NewBus(PrototypeRates)
	dstBus = NewBus(PrototypeRates)
	srcBus.SetClock(clock)
	dstBus.SetClock(clock)
	gw = NewGateway("gw", clock)
	if err := gw.Route(srcBus, dstBus, IDRange(0x100, 0x1FF), 0); err != nil {
		t.Fatal(err)
	}
	if err := gw.SetEgress(dstBus, p); err != nil {
		t.Fatal(err)
	}
	src = srcBus.Attach("src")
	dst = dstBus.Attach("dst")
	return
}

func TestEgressRateLimitBacksUp(t *testing.T) {
	clock := NewClock()
	// 100 frames/s: one frame every 10 ms — far slower than the wire.
	_, dstBus, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 100})

	for i := 0; i < 5; i++ {
		if _, err := src.Send(Frame{ID: 0x100, BRS: true, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	gw.Pump()
	// The first frame leaves immediately; four remain gated.
	if dst.Pending() != 1 {
		t.Fatalf("dst holds %d frames after first pump, want 1", dst.Pending())
	}
	if got := gw.EgressBacklog(dstBus); got != 4 {
		t.Fatalf("egress backlog %d, want 4", got)
	}
	dl := gw.NextDeadline()
	if dl <= clock.Now() {
		t.Fatalf("deadline %v not in the future (now %v)", dl, clock.Now())
	}
	// Pumping without advancing time releases nothing.
	if moved := gw.Pump(); moved != 0 {
		t.Fatalf("pump moved %d frames with the gate closed", moved)
	}
	// Advancing to each deadline releases exactly one more frame.
	for want := 2; want <= 5; want++ {
		clock.AdvanceTo(gw.NextDeadline())
		gw.Pump()
		if dst.Pending() != want {
			t.Fatalf("dst holds %d frames, want %d", dst.Pending(), want)
		}
	}
	if gw.Stats().Forwarded != 5 {
		t.Errorf("forwarded %d, want 5", gw.Stats().Forwarded)
	}
	if gw.EgressBacklog(dstBus) != 0 {
		t.Errorf("backlog %d after full drain", gw.EgressBacklog(dstBus))
	}
}

func TestEgressOverflowDeterministic(t *testing.T) {
	run := func() (delivered, dropped int) {
		clock := NewClock()
		_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 1, Queue: 3})
		for i := 0; i < 10; i++ {
			if _, err := src.Send(Frame{ID: 0x100, BRS: true, Data: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		gw.Pump()
		// Queue overflow is egress loss, not forward failure — the two
		// counters must stay distinct.
		if ff := gw.Stats().ForwardFailed; ff != 0 {
			t.Fatalf("egress queue drops counted as forward failures: %d", ff)
		}
		return dst.Pending(), gw.Stats().EgressDropped
	}
	d1, o1 := run()
	d2, o2 := run()
	if d1 != d2 || o1 != o2 {
		t.Fatalf("overflow accounting not deterministic: (%d,%d) vs (%d,%d)", d1, o1, d2, o2)
	}
	// Three frames fill the queue, seven drop at the full queue, and
	// the release phase lets exactly one out at t=0.
	if d1 != 1 || o1 != 7 {
		t.Fatalf("delivered %d dropped %d, want 1 and 7", d1, o1)
	}
}

// TestEgressStarvedPortKeepsPerIDOrder: a rate-starved port must
// deliver frames of one CAN identifier in their transmit order — the
// FIFO egress queue may delay but never reorder a conversation.
func TestEgressStarvedPortKeepsPerIDOrder(t *testing.T) {
	clock := NewClock()
	_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 50})
	// Interleave two conversations through the starved port.
	for i := 0; i < 8; i++ {
		id := uint32(0x110)
		if i%2 == 1 {
			id = 0x120
		}
		if _, err := src.Send(Frame{ID: id, BRS: true, Data: []byte{byte(i / 2)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Drain completely, stepping time to each release.
	for {
		gw.Pump()
		dl := gw.NextDeadline()
		if dl == 0 {
			break
		}
		clock.AdvanceTo(dl)
	}
	last := map[uint32]int{0x110: -1, 0x120: -1}
	seen := 0
	for {
		f, ok := dst.Receive()
		if !ok {
			break
		}
		seen++
		if got, prev := int(f.Data[0]), last[f.ID]; got != prev+1 {
			t.Fatalf("ID %#x delivered seq %d after %d — reordered", f.ID, got, prev)
		} else {
			last[f.ID] = got
		}
	}
	if seen != 8 {
		t.Fatalf("delivered %d of 8 frames", seen)
	}
}

// TestEgressFairQueuingDecouplesFlows: one conversation's backlog must
// not delay another conversation. Under the old shared FIFO, a frame
// of flow B arriving behind five queued frames of flow A waited five
// serialization gaps; the per-flow virtual clocks release B's frame at
// its own tag.
func TestEgressFairQueuingDecouplesFlows(t *testing.T) {
	clock := NewClock()
	// 100 frames/s: a 10 ms gap, so flow A's backlog spans ~40 ms.
	_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 100})
	for i := 0; i < 5; i++ {
		if _, err := src.Send(Frame{ID: 0x110, BRS: true, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.Send(Frame{ID: 0x120, BRS: true, Data: []byte{0xBB}}); err != nil {
		t.Fatal(err)
	}
	admitted := clock.Now()
	gw.Pump()
	// Both flows' head frames release at admission: the gate starts a
	// fresh virtual clock per flow, so B is not behind A's backlog.
	got := map[uint32]int{}
	for {
		f, ok := dst.Receive()
		if !ok {
			break
		}
		got[f.ID]++
	}
	if got[0x120] != 1 {
		t.Fatalf("flow B's frame stuck behind flow A's backlog: delivered %v at %v (admitted %v)", got, clock.Now(), admitted)
	}
	if got[0x110] != 1 {
		t.Fatalf("flow A's head not released at admission: %v", got)
	}
}

// TestEgressReleaseScheduleInvariantToAdmissionOrder: interleaving
// frames of independent conversations differently (preserving per-ID
// order, the physical CAN guarantee) must not change the release
// schedule — the property that makes congested scenarios reproducible
// at parallelism > 1.
func TestEgressReleaseScheduleInvariantToAdmissionOrder(t *testing.T) {
	type release struct {
		at time.Duration
		id uint32
		b  byte
	}
	run := func(order []uint32) []release {
		clock := NewClock()
		_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 200})
		seq := map[uint32]byte{}
		for _, id := range order {
			if _, err := src.Send(Frame{ID: id, BRS: true, Data: []byte{seq[id]}}); err != nil {
				t.Fatal(err)
			}
			seq[id]++
		}
		var out []release
		for {
			gw.Pump()
			for {
				f, ok := dst.Receive()
				if !ok {
					break
				}
				out = append(out, release{at: clock.Now(), id: f.ID, b: f.Data[0]})
			}
			dl := gw.NextDeadline()
			if dl == 0 {
				break
			}
			clock.AdvanceTo(dl)
		}
		return out
	}
	// Same three conversations, three per-ID-order-preserving
	// interleavings. (Admission times differ by wire-time ordering, so
	// compare the schedules relative to their own first release.)
	rel := func(rs []release) []release {
		if len(rs) == 0 {
			return rs
		}
		base := rs[0].at
		out := make([]release, len(rs))
		for i, r := range rs {
			out[i] = release{at: r.at - base, id: r.id, b: r.b}
		}
		return out
	}
	a := rel(run([]uint32{0x110, 0x110, 0x120, 0x120, 0x130, 0x130}))
	for _, order := range [][]uint32{
		{0x110, 0x120, 0x130, 0x110, 0x120, 0x130},
		{0x130, 0x120, 0x110, 0x130, 0x120, 0x110},
	} {
		b := rel(run(order))
		if len(a) != len(b) {
			t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("release %d differs across admission orders: %+v vs %+v\nfull: %+v\nvs    %+v", i, a[i], b[i], a, b)
			}
		}
	}
}

// TestEgressQueueWithoutRateIsInert: a queue bound without a rate
// limit never engages — an unlimited-rate port transmits within the
// pump that drained it, so there is no backlog to bound and nothing
// may be dropped.
func TestEgressQueueWithoutRateIsInert(t *testing.T) {
	clock := NewClock()
	_, dstBus, gw, src, dst := egressPair(t, clock, EgressPolicy{Queue: 2})
	for i := 0; i < 10; i++ {
		if _, err := src.Send(Frame{ID: 0x100, BRS: true, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	gw.Pump()
	if dst.Pending() != 10 {
		t.Fatalf("queue-only policy delivered %d of 10 frames", dst.Pending())
	}
	if s := gw.Stats(); s.EgressDropped != 0 {
		t.Fatalf("queue-only policy dropped %d frames on an unlimited-rate port", s.EgressDropped)
	}
	if gw.EgressBacklog(dstBus) != 0 || gw.NextDeadline() != 0 {
		t.Error("queue-only policy left egress state behind")
	}
}

// TestEgressZeroPolicyIsTransparent: the zero policy must behave
// exactly like the pre-egress gateway.
func TestEgressZeroPolicyIsTransparent(t *testing.T) {
	clock := NewClock()
	_, dstBus, gw, src, dst := egressPair(t, clock, EgressPolicy{})
	for i := 0; i < 4; i++ {
		if _, err := src.Send(Frame{ID: 0x100, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	gw.Pump()
	if dst.Pending() != 4 || gw.EgressBacklog(dstBus) != 0 || gw.NextDeadline() != 0 {
		t.Fatalf("zero policy gated traffic: pending %d backlog %d deadline %v",
			dst.Pending(), gw.EgressBacklog(dstBus), gw.NextDeadline())
	}
}

// drainReleases pumps the gateway to quiescence, stepping the clock to
// each release deadline, and returns every delivered frame with its
// release time.
func drainReleases(t *testing.T, clock *Clock, gw *Gateway, dst *Node) []timedFrame {
	t.Helper()
	var out []timedFrame
	for {
		gw.Pump()
		for {
			f, ok := dst.Receive()
			if !ok {
				break
			}
			out = append(out, timedFrame{at: clock.Now(), f: f})
		}
		dl := gw.NextDeadline()
		if dl == 0 {
			return out
		}
		clock.AdvanceTo(dl)
	}
}

type timedFrame struct {
	at time.Duration
	f  Frame
}

// TestEgressSharedCapacityConservation: the property the shared
// variant exists for — k backlogged flows through one shared-capacity
// port emit at most Rate aggregate, where the per-flow scheduler lets
// them emit k×Rate. Conservation is checked at every prefix of the
// release schedule, not just at the end.
func TestEgressSharedCapacityConservation(t *testing.T) {
	const rate, flows, perFlow = 100.0, 4, 5
	gap := time.Duration(float64(time.Second) / rate)

	run := func(shared bool) []timedFrame {
		clock := NewClock()
		_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: rate, Shared: shared})
		for i := 0; i < perFlow; i++ {
			for fl := 0; fl < flows; fl++ {
				if _, err := src.Send(Frame{ID: 0x110 + uint32(fl), BRS: true, Data: []byte{byte(i)}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		return drainReleases(t, clock, gw, dst)
	}

	sh := run(true)
	if len(sh) != flows*perFlow {
		t.Fatalf("shared port delivered %d of %d frames", len(sh), flows*perFlow)
	}
	// No prefix of the schedule beats the port rate: the i-th release
	// happens no earlier than i rate gaps after the first.
	for i, r := range sh {
		if min := sh[0].at + time.Duration(i)*gap; r.at < min {
			t.Fatalf("release %d at %v beats the shared port rate (min %v)", i, r.at, min)
		}
	}
	// The per-flow scheduler on the same workload genuinely emits
	// k×Rate — the hole the shared variant closes.
	pf := run(false)
	pfEnd, shEnd := pf[len(pf)-1].at, sh[len(sh)-1].at
	if pfEnd*2 > shEnd {
		t.Fatalf("per-flow drain %v not well below shared drain %v — shared capacity not conserved", pfEnd, shEnd)
	}
	if want := time.Duration(flows*perFlow-1) * gap; shEnd < want {
		t.Fatalf("shared drain took %v, want ≥ %v (one aggregate rate gap per frame)", shEnd, want)
	}
}

// TestEgressSharedFairness: continuously backlogged flows divide the
// shared capacity evenly — after any prefix of the release schedule,
// no flow is more than one frame ahead of another — and frames within
// a flow keep their order.
func TestEgressSharedFairness(t *testing.T) {
	const flows, perFlow = 3, 6
	clock := NewClock()
	_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 200, Shared: true})
	for i := 0; i < perFlow; i++ {
		for fl := 0; fl < flows; fl++ {
			if _, err := src.Send(Frame{ID: 0x110 + uint32(fl), BRS: true, Data: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	rel := drainReleases(t, clock, gw, dst)
	if len(rel) != flows*perFlow {
		t.Fatalf("delivered %d of %d frames", len(rel), flows*perFlow)
	}
	served := map[uint32]int{}
	seq := map[uint32]int{0x110: -1, 0x111: -1, 0x112: -1}
	for i, r := range rel {
		if got, prev := int(r.f.Data[0]), seq[r.f.ID]; got != prev+1 {
			t.Fatalf("flow %#x reordered: seq %d after %d", r.f.ID, got, prev)
		} else {
			seq[r.f.ID] = got
		}
		served[r.f.ID]++
		// While every flow is still backlogged (first flows*perFlow
		// releases minus the tail where flows run dry together), the
		// per-flow service counts stay within one of each other.
		if i < flows*perFlow-flows {
			min, max := perFlow+1, -1
			for _, n := range served {
				if n < min {
					min = n
				}
				if n > max {
					max = n
				}
			}
			if len(served) == flows && max-min > 1 {
				t.Fatalf("after %d releases service counts diverged: %v", i+1, served)
			}
		}
	}
}

// TestEgressSharedLateJoinerNotStarved: a flow that becomes backlogged
// while another has been hogging the port is served at the port's
// virtual present — promptly, but with no claim on the capacity it
// never queued for.
func TestEgressSharedLateJoinerNotStarved(t *testing.T) {
	clock := NewClock()
	gap := 5 * time.Millisecond // 200 frames/s
	_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 200, Shared: true})
	for i := 0; i < 10; i++ {
		if _, err := src.Send(Frame{ID: 0x110, BRS: true, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Serve flow A alone for five slots.
	var early []timedFrame
	for len(early) < 5 {
		gw.Pump()
		for {
			f, ok := dst.Receive()
			if !ok {
				break
			}
			early = append(early, timedFrame{at: clock.Now(), f: f})
		}
		if len(early) < 5 {
			clock.AdvanceTo(gw.NextDeadline())
		}
	}
	joined := clock.Now()
	if _, err := src.Send(Frame{ID: 0x120, BRS: true, Data: []byte{0xBB}}); err != nil {
		t.Fatal(err)
	}
	rest := drainReleases(t, clock, gw, dst)
	var bAt time.Duration
	for _, r := range rest {
		if r.f.ID == 0x120 {
			bAt = r.at
		}
	}
	if bAt == 0 {
		t.Fatal("late joiner never served")
	}
	// Fair queuing admits B at the port's virtual present: it must be
	// served within two rate slots of joining, not after A's whole
	// backlog (five more slots).
	if bAt > joined+2*gap+time.Millisecond {
		t.Fatalf("late joiner served at %v, joined at %v — starved behind the backlog", bAt, joined)
	}
	if len(early)+len(rest) != 11 {
		t.Fatalf("delivered %d of 11 frames", len(early)+len(rest))
	}
}

// TestEgressSharedQueueBoundAndDeterminism: the per-flow queue bound
// keeps its meaning on a shared-capacity port, and the whole
// admission/overflow/release accounting is reproducible.
func TestEgressSharedQueueBoundAndDeterminism(t *testing.T) {
	run := func() (delivered, dropped int) {
		clock := NewClock()
		_, _, gw, src, dst := egressPair(t, clock, EgressPolicy{Rate: 1, Queue: 3, Shared: true})
		for i := 0; i < 10; i++ {
			if _, err := src.Send(Frame{ID: 0x100, BRS: true, Data: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		gw.Pump()
		return dst.Pending(), gw.Stats().EgressDropped
	}
	d1, o1 := run()
	d2, o2 := run()
	if d1 != d2 || o1 != o2 {
		t.Fatalf("shared overflow accounting not deterministic: (%d,%d) vs (%d,%d)", d1, o1, d2, o2)
	}
	if d1 != 1 || o1 != 7 {
		t.Fatalf("delivered %d dropped %d, want 1 and 7", d1, o1)
	}
}

// TestEgressSharedWithoutRateIsInert: Shared only selects how a rate
// limit is enforced; without one there is nothing to share.
func TestEgressSharedWithoutRateIsInert(t *testing.T) {
	clock := NewClock()
	_, dstBus, gw, src, dst := egressPair(t, clock, EgressPolicy{Shared: true, Queue: 2})
	for i := 0; i < 6; i++ {
		if _, err := src.Send(Frame{ID: 0x100, BRS: true, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	gw.Pump()
	if dst.Pending() != 6 || gw.EgressBacklog(dstBus) != 0 || gw.NextDeadline() != 0 || gw.Stats().EgressDropped != 0 {
		t.Fatalf("shared flag without a rate gated traffic: pending %d", dst.Pending())
	}
}

func TestEgressPolicyValidation(t *testing.T) {
	gw := NewGateway("gw", nil)
	bus := NewBus(PrototypeRates)
	if err := gw.SetEgress(nil, EgressPolicy{}); err == nil {
		t.Error("nil bus accepted")
	}
	if err := gw.SetEgress(bus, EgressPolicy{Rate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if err := gw.SetEgress(bus, EgressPolicy{Queue: -1}); err == nil {
		t.Error("negative queue accepted")
	}
}
