package canbus

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPadToDLC(t *testing.T) {
	cases := map[int]int{
		0: 0, 1: 1, 7: 7, 8: 8, 9: 12, 12: 12, 13: 16,
		17: 20, 25: 32, 33: 48, 49: 64, 64: 64,
	}
	for in, want := range cases {
		got, err := PadToDLC(in)
		if err != nil {
			t.Fatalf("PadToDLC(%d): %v", in, err)
		}
		if got != want {
			t.Errorf("PadToDLC(%d) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []int{-1, 65, 1000} {
		if _, err := PadToDLC(bad); err == nil {
			t.Errorf("PadToDLC(%d) accepted", bad)
		}
	}
}

func TestDLCRoundTrip(t *testing.T) {
	for _, l := range validDataLens {
		code, err := DLCForLen(l)
		if err != nil {
			t.Fatal(err)
		}
		back, err := LenForDLC(code)
		if err != nil {
			t.Fatal(err)
		}
		if back != l {
			t.Errorf("DLC round trip %d -> %d -> %d", l, code, back)
		}
	}
	if _, err := DLCForLen(9); err == nil {
		t.Error("9 is not a valid CAN-FD length")
	}
	if _, err := LenForDLC(16); err == nil {
		t.Error("DLC 16 accepted")
	}
}

func TestFrameValidate(t *testing.T) {
	good := Frame{ID: 0x123, Data: make([]byte, 8)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid frame rejected: %v", err)
	}
	cases := []Frame{
		{ID: 1 << 11, Data: nil},                  // standard ID overflow
		{ID: 1 << 29, Extended: true, Data: nil},  // extended ID overflow
		{ID: 1, Data: make([]byte, 9)},            // invalid DLC length
		{ID: 1, Data: make([]byte, MaxDataLen+1)}, // too long
	}
	for i, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: invalid frame accepted", i)
		}
	}
	ext := Frame{ID: 0x1FFFFFFF, Extended: true, Data: make([]byte, 64)}
	if err := ext.Validate(); err != nil {
		t.Errorf("max extended frame rejected: %v", err)
	}
}

func TestWireBitsMonotonic(t *testing.T) {
	prevTotal := 0
	for _, l := range validDataLens {
		f := Frame{ID: 1, BRS: true, Data: make([]byte, l)}
		nom, dat := f.WireBits()
		if nom <= 0 || dat <= 0 {
			t.Fatalf("len %d: non-positive bit counts %d/%d", l, nom, dat)
		}
		if nom+dat <= prevTotal {
			t.Errorf("len %d: total bits %d not increasing", l, nom+dat)
		}
		prevTotal = nom + dat
	}
}

func TestWireBitsBRS(t *testing.T) {
	// Without BRS all bits run at the nominal rate.
	f := Frame{ID: 1, Data: make([]byte, 16)}
	nom, dat := f.WireBits()
	if dat != 0 {
		t.Error("non-BRS frame reported data-phase bits")
	}
	fBRS := Frame{ID: 1, BRS: true, Data: make([]byte, 16)}
	nom2, dat2 := fBRS.WireBits()
	if nom2+dat2 != nom {
		t.Error("BRS must repartition, not change, the bit count")
	}
	if dat2 == 0 {
		t.Error("BRS frame has no data-phase bits")
	}
	// Extended IDs add arbitration bits.
	fExt := Frame{ID: 1, Extended: true, BRS: true, Data: make([]byte, 16)}
	nomE, _ := fExt.WireBits()
	if nomE <= nom2 {
		t.Error("extended ID did not add arbitration bits")
	}
}

func TestWireTimePrototypeRates(t *testing.T) {
	// A full 64-byte BRS frame at 0.5/2 Mbit/s is on the order of a
	// few hundred microseconds — consistent with the paper's < 1 ms
	// total transfer observation.
	f := Frame{ID: 0x55, BRS: true, Data: make([]byte, 64)}
	wt, err := f.WireTime(PrototypeRates)
	if err != nil {
		t.Fatal(err)
	}
	if wt < 100*time.Microsecond || wt > 1*time.Millisecond {
		t.Errorf("64-byte frame wire time %v outside [100µs, 1ms]", wt)
	}
	// BRS must beat nominal-only for the same frame.
	fSlow := Frame{ID: 0x55, Data: make([]byte, 64)}
	wtSlow, err := fSlow.WireTime(PrototypeRates)
	if err != nil {
		t.Fatal(err)
	}
	if wtSlow <= wt {
		t.Error("bit-rate switch did not reduce wire time")
	}
	if _, err := f.WireTime(BitRates{}); err == nil {
		t.Error("zero rates accepted")
	}
}

func TestBusDelivery(t *testing.T) {
	bus := NewBus(PrototypeRates)
	a := bus.Attach("a")
	b := bus.Attach("b")
	c := bus.Attach("c")

	// 9 bytes is not a valid CAN-FD DLC length; it pads to 12.
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	wt, err := a.Send(Frame{ID: 0x10, BRS: true, Data: payload})
	if err != nil {
		t.Fatal(err)
	}
	if wt <= 0 {
		t.Error("zero wire time")
	}
	// Broadcast: b and c receive, a does not.
	if a.Pending() != 0 {
		t.Error("sender received its own frame")
	}
	for _, n := range []*Node{b, c} {
		f, ok := n.Receive()
		if !ok {
			t.Fatalf("%s: no frame", n.Name())
		}
		// Payload padded to DLC length 12.
		if len(f.Data) != 12 {
			t.Errorf("%s: payload length %d, want 12 (padded)", n.Name(), len(f.Data))
		}
		for i, v := range payload {
			if f.Data[i] != v {
				t.Errorf("%s: payload byte %d corrupted", n.Name(), i)
			}
		}
	}

	stats := bus.Stats()
	if stats.Frames != 1 || stats.Bytes != 9 || stats.PadBytes != 3 || stats.Broadcast != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.WireTime != wt {
		t.Error("bus wire time does not match send result")
	}
}

func TestBusReceiveOrdering(t *testing.T) {
	bus := NewBus(PrototypeRates)
	a := bus.Attach("a")
	b := bus.Attach("b")
	for i := 0; i < 5; i++ {
		if _, err := a.Send(Frame{ID: 0x20, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		f, ok := b.Receive()
		if !ok || f.Data[0] != byte(i) {
			t.Fatalf("frame %d out of order", i)
		}
	}
	if _, ok := b.Receive(); ok {
		t.Error("phantom frame")
	}
}

func TestDetachedNode(t *testing.T) {
	n := &Node{}
	if _, err := n.Send(Frame{ID: 1}); err == nil {
		t.Error("detached node send accepted")
	}
}

func TestSendRejectsInvalidFrames(t *testing.T) {
	bus := NewBus(PrototypeRates)
	a := bus.Attach("a")
	if _, err := a.Send(Frame{ID: 1 << 12, Data: nil}); err == nil {
		t.Error("invalid ID accepted")
	}
	if _, err := a.Send(Frame{ID: 1, Data: make([]byte, 100)}); err == nil {
		t.Error("oversize payload accepted")
	}
}

// TestQuickWireTimePositive: every legal frame has positive wire time
// and BRS never makes it slower.
func TestQuickWireTimePositive(t *testing.T) {
	f := func(idSeed uint32, lenSeed uint8) bool {
		l := int(lenSeed) % (MaxDataLen + 1)
		padded, err := PadToDLC(l)
		if err != nil {
			return false
		}
		fr := Frame{ID: idSeed % (1 << 11), Data: make([]byte, padded)}
		slow, err1 := fr.WireTime(PrototypeRates)
		fr.BRS = true
		fast, err2 := fr.WireTime(PrototypeRates)
		return err1 == nil && err2 == nil && fast > 0 && fast <= slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
