package canbus

import (
	"testing"
	"time"
)

func sendN(t *testing.T, n *Node, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		if _, err := n.Send(Frame{ID: 0x10, BRS: true, Data: []byte{byte(i), byte(i >> 8)}}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestImpairmentDeterministic(t *testing.T) {
	run := func() Stats {
		bus := NewBus(PrototypeRates)
		bus.Impair(Impairment{Seed: 7, Drop: 0.2, Corrupt: 0.1, Duplicate: 0.1, DelayRate: 0.1, Delay: time.Millisecond})
		a := bus.Attach("a")
		bus.Attach("b")
		sendN(t, a, 500)
		return bus.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed diverged:\n%+v\n%+v", s1, s2)
	}
	if s1.Dropped == 0 || s1.Corrupted == 0 || s1.Duplicated == 0 || s1.Delayed == 0 {
		t.Fatalf("expected every impairment class to fire over 500 frames: %+v", s1)
	}
	// Rough rate sanity: 20% drop over 500 frames lands well inside
	// [50, 150] for any reasonable PRNG.
	if s1.Dropped < 50 || s1.Dropped > 150 {
		t.Errorf("drop count %d implausible for rate 0.2 over 500 frames", s1.Dropped)
	}

	// A different seed must give a different fault pattern.
	bus := NewBus(PrototypeRates)
	bus.Impair(Impairment{Seed: 8, Drop: 0.2, Corrupt: 0.1, Duplicate: 0.1, DelayRate: 0.1, Delay: time.Millisecond})
	a := bus.Attach("a")
	bus.Attach("b")
	sendN(t, a, 500)
	if bus.Stats() == s1 {
		t.Error("different seeds produced identical fault statistics")
	}
}

func TestImpairmentDropAndDuplicateDelivery(t *testing.T) {
	bus := NewBus(PrototypeRates)
	bus.Impair(Impairment{Seed: 1, Drop: 1})
	a := bus.Attach("a")
	b := bus.Attach("b")
	sendN(t, a, 10)
	if b.Pending() != 0 {
		t.Errorf("drop rate 1 delivered %d frames", b.Pending())
	}
	if s := bus.Stats(); s.Dropped != 10 || s.Frames != 10 {
		t.Errorf("stats %+v, want 10 dropped of 10", s)
	}

	bus2 := NewBus(PrototypeRates)
	bus2.Impair(Impairment{Seed: 1, Duplicate: 1})
	a2 := bus2.Attach("a")
	b2 := bus2.Attach("b")
	sendN(t, a2, 5)
	if b2.Pending() != 10 {
		t.Errorf("duplicate rate 1 delivered %d frames, want 10", b2.Pending())
	}
}

func TestImpairmentCorruptionFlipsOneBit(t *testing.T) {
	bus := NewBus(PrototypeRates)
	bus.Impair(Impairment{Seed: 3, Corrupt: 1})
	a := bus.Attach("a")
	b := bus.Attach("b")
	orig := []byte{0xAA, 0x55, 0x00, 0xFF}
	if _, err := a.Send(Frame{ID: 1, Data: orig}); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Receive()
	if !ok {
		t.Fatal("corrupted frame not delivered")
	}
	diffBits := 0
	for i := range got.Data {
		d := got.Data[i] ^ orig[i]
		for ; d != 0; d &= d - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1", diffBits)
	}
}

func TestImpairmentDelayAdvancesClock(t *testing.T) {
	clock := NewClock()
	bus := NewBus(PrototypeRates)
	bus.SetClock(clock)
	bus.Impair(Impairment{Seed: 5, DelayRate: 1, Delay: 2 * time.Millisecond})
	a := bus.Attach("a")
	bus.Attach("b")
	wt, err := a.Send(Frame{ID: 1, Data: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	want := wt + 2*time.Millisecond
	if clock.Now() != want {
		t.Errorf("clock at %v, want wire+delay = %v", clock.Now(), want)
	}
	if s := bus.Stats(); s.Delayed != 1 || s.DelayTime != 2*time.Millisecond {
		t.Errorf("delay stats %+v", s)
	}
}

func TestRxQueueOverflow(t *testing.T) {
	bus := NewBus(PrototypeRates)
	bus.SetRxLimit(4)
	a := bus.Attach("a")
	b := bus.Attach("b")
	sendN(t, a, 10)
	if b.Pending() != 4 {
		t.Errorf("queue holds %d frames, want 4", b.Pending())
	}
	if b.Overflow() != 6 {
		t.Errorf("node overflow %d, want 6", b.Overflow())
	}
	if s := bus.Stats(); s.RxOverflow != 6 {
		t.Errorf("bus RxOverflow %d, want 6", s.RxOverflow)
	}
	// The oldest frames were kept (overflow drops the newcomer).
	f, _ := b.Receive()
	if f.Data[0] != 0 {
		t.Errorf("first queued frame payload %d, want 0", f.Data[0])
	}
	// Draining frees mailboxes for later traffic.
	for b.Pending() > 0 {
		b.Receive()
	}
	sendN(t, a, 1)
	if b.Pending() != 1 {
		t.Error("queue did not accept traffic after draining")
	}
	// A per-node override lifts the bound.
	b.SetRxLimit(0)
	sendN(t, a, 20)
	if b.Pending() != 21 {
		t.Errorf("unbounded node holds %d, want 21", b.Pending())
	}
}

func TestClock(t *testing.T) {
	var nilClock *Clock
	if nilClock.Now() != 0 || nilClock.Advance(time.Second) != 0 || nilClock.AdvanceTo(time.Second) != 0 {
		t.Error("nil clock must be inert")
	}
	c := NewClock()
	c.Advance(3 * time.Millisecond)
	c.Advance(-time.Millisecond) // ignored
	if c.Now() != 3*time.Millisecond {
		t.Errorf("clock at %v", c.Now())
	}
	c.AdvanceTo(2 * time.Millisecond) // past: no-op
	if c.Now() != 3*time.Millisecond {
		t.Error("clock ran backwards")
	}
	c.AdvanceTo(5 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Errorf("clock at %v, want 5ms", c.Now())
	}
}
