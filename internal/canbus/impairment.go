package canbus

import "time"

// Impairment configures deterministic frame-level fault injection on a
// bus. Rates are independent per-frame probabilities in [0, 1]; all
// decisions come from a private splitmix64 stream seeded by Seed, so a
// run with the same seed and the same transmit order reproduces the
// exact same faults (the chaos experiments serialize their transmit
// order for this reason).
//
// The fault model follows what a real CAN-FD segment can do to a
// frame:
//
//   - Drop: the frame is destroyed on the wire (EMI burst, dominant
//     glitch). It still occupies the bus for its wire time but reaches
//     no receiver.
//   - Corrupt: one payload bit flips and the receiving controllers'
//     CRC check is assumed defeated (the CRC-collision case the upper
//     layers must survive). The corrupted payload is delivered, which
//     exercises ISO-TP PCI validation and the transport checksum.
//   - Duplicate: the frame is delivered twice, as happens when a
//     transmitter misses its ACK slot and re-arbitrates although every
//     receiver already accepted the frame.
//   - Delay: the frame is held for Delay of extra latency (charged to
//     the simulated clock) before delivery — a saturated controller or
//     a busy segment.
type Impairment struct {
	Seed uint64

	Drop      float64 // probability a frame is lost on the wire
	Corrupt   float64 // probability a delivered frame has a bit flipped
	Duplicate float64 // probability a frame is delivered twice
	DelayRate float64 // probability a frame is delayed by Delay

	Delay time.Duration // extra latency charged per delayed frame
}

// impairRoll is one per-frame fault decision.
type impairRoll struct {
	drop       bool
	corrupt    bool
	corruptPos uint64 // bit index selector within the payload
	duplicate  bool
	delay      bool
}

// impairState is the seeded decision stream. It always draws the same
// number of variates per frame, so a frame's fate depends only on its
// position in the transmit order, never on the configured rates of
// earlier frames.
type impairState struct {
	cfg   Impairment
	state uint64
}

func newImpairState(cfg Impairment) *impairState {
	return &impairState{cfg: cfg, state: cfg.Seed ^ 0x9E3779B97F4A7C15}
}

// next is splitmix64: tiny, seedable and plenty for fault injection.
func (s *impairState) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// uniform returns the next variate in [0, 1).
func (s *impairState) uniform() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// roll draws the complete fault decision for one frame.
func (s *impairState) roll() impairRoll {
	var r impairRoll
	r.drop = s.uniform() < s.cfg.Drop
	r.corrupt = s.uniform() < s.cfg.Corrupt
	r.corruptPos = s.next()
	r.duplicate = s.uniform() < s.cfg.Duplicate
	r.delay = s.uniform() < s.cfg.DelayRate
	return r
}

// corruptFrame flips one payload bit chosen by the roll. Zero-length
// payloads cannot be corrupted.
func corruptFrame(data []byte, roll impairRoll) {
	if len(data) == 0 {
		return
	}
	bit := roll.corruptPos % uint64(8*len(data))
	data[bit/8] ^= 1 << (bit % 8)
}
