package canbus

import (
	"time"

	"repro/internal/detrand"
)

// Impairment configures deterministic frame-level fault injection on a
// bus. Rates are independent per-frame probabilities in [0, 1].
//
// Fault decisions are content-keyed: each transmitted frame's fate is
// a pure function of (Seed, BusID, CAN identifier, payload bytes, and
// an occurrence counter scoped to this bus and identifier), mixed
// through splitmix64. Nothing depends on the global transmit order, so
// interleaving independent conversations — frames with distinct CAN
// identifiers — in any order yields the exact same fault set. That is
// what lets concurrent fleet bring-ups (EstablishAll with
// parallelism > 1) reproduce bit-for-bit under a fixed seed: each
// conversation owns its identifiers, so its fault stream is immune to
// how the scheduler interleaves the others.
//
// The per-(bus, identifier) occurrence counter serves two purposes:
// a retransmitted frame with identical content gets a fresh,
// independent decision (a dropped FirstFrame is not dropped forever),
// and two content-identical frames in one stream do not share a fate.
// Frames sharing one identifier keep their relative order on a real
// bus (one transmitter per ID, CAN arbitration per ID), so counting
// occurrences per (bus, ID) stays deterministic under concurrency.
//
// The fault model follows what a real CAN-FD segment can do to a
// frame:
//
//   - Drop: the frame is destroyed on the wire (EMI burst, dominant
//     glitch). It still occupies the bus for its wire time but reaches
//     no receiver.
//   - Corrupt: one payload bit flips and the receiving controllers'
//     CRC check is assumed defeated (the CRC-collision case the upper
//     layers must survive). The corrupted payload is delivered, which
//     exercises ISO-TP PCI validation and the transport checksum.
//   - Duplicate: the frame is delivered twice, as happens when a
//     transmitter misses its ACK slot and re-arbitrates although every
//     receiver already accepted the frame.
//   - Delay: the frame is held for Delay of extra latency (charged to
//     the simulated clock) before delivery — a saturated controller or
//     a busy segment.
type Impairment struct {
	Seed uint64

	// BusID salts the content key per segment, so one profile with one
	// seed applied to every segment of a topology still yields
	// independent per-bus fault streams. Callers that instead derive a
	// distinct Seed per bus may leave it zero.
	BusID uint64

	Drop      float64 // probability a frame is lost on the wire
	Corrupt   float64 // probability a delivered frame has a bit flipped
	Duplicate float64 // probability a frame is delivered twice
	DelayRate float64 // probability a frame is delayed by Delay

	Delay time.Duration // extra latency charged per delayed frame
}

// FaultKind classifies one injected fault.
type FaultKind uint8

// Fault kinds, in the order Send evaluates them.
const (
	FaultDrop FaultKind = iota
	FaultCorrupt
	FaultDuplicate
	FaultDelay
)

// String renders the fault kind for traces and log lines.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	case FaultDuplicate:
		return "duplicate"
	case FaultDelay:
		return "delay"
	}
	return "unknown"
}

// FaultEvent describes one injected fault, emitted through the trace
// hook installed with Bus.SetFaultTrace. Time is the simulated clock
// after the frame's wire occupancy; Occurrence is the frame's index
// among frames with the same identifier (FrameID plus Extended — a
// 29-bit identifier is distinct from the equal-valued 11-bit one) on
// this bus since the impairment was (re-)armed. Together with BusID
// and the identifier it names the fault decision uniquely, which is
// what the golden-trace regression tests diff.
type FaultEvent struct {
	Time       time.Duration
	BusID      uint64
	FrameID    uint32
	Extended   bool
	Occurrence uint64
	Kind       FaultKind
}

// impairRoll is one per-frame fault decision.
type impairRoll struct {
	occ        uint64 // occurrence index the decision was keyed with
	drop       bool
	corrupt    bool
	corruptPos uint64 // bit index selector within the payload
	duplicate  bool
	delay      bool
}

// impairState holds the content-keyed decision state: the profile and
// the per-identifier occurrence counters. Re-arming (Bus.Impair)
// resets the counters, so a topology can be re-run reproducibly.
type impairState struct {
	cfg Impairment
	occ map[uint64]uint64 // keyed by wireID: bare ID plus extended bit
}

func newImpairState(cfg Impairment) *impairState {
	return &impairState{cfg: cfg, occ: make(map[uint64]uint64)}
}

// wireID is the occurrence-counter and hash key for an identifier: a
// 29-bit extended identifier is a different identifier than the
// equal-valued 11-bit one, so the extended bit is part of the key —
// otherwise two such conversations would share a counter and their
// interleaving would leak into each other's fault decisions.
func wireID(f *Frame) uint64 {
	id := uint64(f.ID)
	if f.Extended {
		id |= 1 << 32
	}
	return id
}

// frameKey hashes the frame's content into the 64-bit seed of its
// private decision stream. Every input that identifies the frame —
// bus, identifier (with the extended bit), payload bytes, length and
// occurrence index — is absorbed through the splitmix64 finalizer.
func (s *impairState) frameKey(f *Frame, occ uint64) uint64 {
	h := s.cfg.Seed ^ detrand.Golden
	h = detrand.Mix64(h ^ s.cfg.BusID)
	h = detrand.Mix64(h ^ wireID(f))
	h = detrand.Mix64(h ^ occ)
	var chunk uint64
	var nb uint
	for _, b := range f.Data {
		chunk |= uint64(b) << nb
		nb += 8
		if nb == 64 {
			h = detrand.Mix64(h ^ chunk)
			chunk, nb = 0, 0
		}
	}
	if nb > 0 {
		h = detrand.Mix64(h ^ chunk)
	}
	return detrand.Mix64(h ^ uint64(len(f.Data)))
}

// decisionStream draws the fixed set of per-frame variates from a
// splitmix64 sequence seeded by the frame key.
type decisionStream struct{ state uint64 }

func (s *decisionStream) next() uint64 {
	s.state += detrand.Golden
	return detrand.Mix64(s.state)
}

// uniform returns the next variate in [0, 1).
func (s *decisionStream) uniform() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// roll draws the complete fault decision for one frame, advancing the
// frame's (bus, identifier) occurrence counter. The stream always
// draws the same number of variates, so a decision depends only on the
// frame key, never on the configured rates.
func (s *impairState) roll(f *Frame) impairRoll {
	key := wireID(f)
	occ := s.occ[key]
	s.occ[key] = occ + 1
	g := decisionStream{state: s.frameKey(f, occ)}
	var r impairRoll
	r.occ = occ
	r.drop = g.uniform() < s.cfg.Drop
	r.corrupt = g.uniform() < s.cfg.Corrupt
	r.corruptPos = g.next()
	r.duplicate = g.uniform() < s.cfg.Duplicate
	r.delay = g.uniform() < s.cfg.DelayRate
	return r
}

// corruptFrame flips one payload bit chosen by the roll. Zero-length
// payloads cannot be corrupted.
func corruptFrame(data []byte, roll impairRoll) {
	if len(data) == 0 {
		return
	}
	bit := roll.corruptPos % uint64(8*len(data))
	data[bit/8] ^= 1 << (bit % 8)
}
