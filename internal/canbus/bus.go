package canbus

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Bus is an in-memory CAN-FD segment. Nodes attach with Attach and
// receive every frame transmitted by any other node (broadcast
// semantics, as on a physical bus). Transmission is serialized —
// the defining property of CAN — and each transmit returns the wire
// time the frame occupied, which the experiment harness adds to its
// simulated clock.
//
// The bus model is collision-free (CAN arbitration is non-destructive
// and the session protocols are strict request/response exchanges) but
// no longer loss-free: an installed Impairment deterministically
// drops, corrupts, duplicates or delays frames, which is what the
// timer- and retransmission-aware ISO-TP layer is tested against.
// Multi-segment topologies are built by bridging buses with Gateways.
type Bus struct {
	rates BitRates

	mu      sync.Mutex
	nodes   []*Node
	stats   Stats
	impair  *impairState
	clock   *Clock
	rxLimit int
	trace   func(FaultEvent)
}

// DefaultRxLimit bounds a node's receive queue unless overridden with
// Bus.SetRxLimit or Node.SetRxLimit. Real controllers expose a handful
// of RX mailboxes plus a driver ring; 1024 frames is a generous ring
// that still catches runaway senders.
const DefaultRxLimit = 1024

// Stats accumulates bus-level counters for the experiment reports.
type Stats struct {
	Frames    int           // frames transmitted
	Bytes     int           // payload bytes transmitted (unpadded)
	PadBytes  int           // padding added by DLC quantization
	WireTime  time.Duration // cumulative bus-busy time
	Broadcast int           // total frame deliveries (frames × receivers)

	// Impairment and queue-pressure counters.
	Dropped    int           // frames destroyed on the wire
	Corrupted  int           // frames delivered with a flipped bit
	Duplicated int           // frames delivered twice
	Delayed    int           // frames held for extra latency
	DelayTime  time.Duration // cumulative injected latency
	RxOverflow int           // deliveries lost to full receive queues
}

// Node is a bus endpoint with a bounded receive queue.
type Node struct {
	bus     *Bus
	name    string
	monitor bool

	mu       sync.Mutex
	rx       []Frame
	rxLimit  int
	overflow int
}

// NewBus creates a bus with the given bit rates.
func NewBus(rates BitRates) *Bus {
	return &Bus{rates: rates, rxLimit: DefaultRxLimit}
}

// SetClock attaches a simulated clock; every transmitted frame's wire
// time (and any injected delay) advances it. A nil clock detaches.
func (b *Bus) SetClock(c *Clock) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clock = c
}

// Impair installs deterministic fault injection on the bus. Installing
// a zero-rate Impairment (or calling with all rates zero) still resets
// the per-identifier occurrence counters the content keys include, so
// a topology can be re-armed for a reproducibility re-run.
// ClearImpairment removes injection entirely.
func (b *Bus) Impair(cfg Impairment) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.impair = newImpairState(cfg)
}

// ClearImpairment removes fault injection.
func (b *Bus) ClearImpairment() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.impair = nil
}

// SetFaultTrace installs a hook invoked for every injected fault, in
// injection order (drop, corrupt, duplicate, delay — a frame can
// suffer several). The hook runs under the bus lock on the sending
// goroutine; it must not call back into the bus. A nil hook detaches.
// Golden-trace tests and the scenario engine's trace recorder use it
// to commit the exact fault sequence of a seeded run.
func (b *Bus) SetFaultTrace(fn func(FaultEvent)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trace = fn
}

// emitFault reports one injected fault to the trace hook, if any.
// Callers hold b.mu.
func (b *Bus) emitFault(f *Frame, roll impairRoll, kind FaultKind) {
	if b.trace == nil {
		return
	}
	b.trace(FaultEvent{
		Time:       b.clock.Now(),
		BusID:      b.impair.cfg.BusID,
		FrameID:    f.ID,
		Extended:   f.Extended,
		Occurrence: roll.occ,
		Kind:       kind,
	})
}

// SetRxLimit sets the receive-queue bound applied to nodes attached
// from now on (≤ 0 restores DefaultRxLimit).
func (b *Bus) SetRxLimit(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 {
		n = DefaultRxLimit
	}
	b.rxLimit = n
}

// Attach adds a named node to the bus.
func (b *Bus) Attach(name string) *Node {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := &Node{bus: b, name: name, rxLimit: b.rxLimit}
	b.nodes = append(b.nodes, n)
	return n
}

// Tap attaches a promiscuous monitor node: it hears every delivered
// frame on the bus (post-impairment, exactly the bytes real receivers
// see — a dropped frame is invisible to the tap too, it died on the
// wire) with an unbounded receive queue, and it is excluded from
// every delivery counter — candidates, Broadcast, RxOverflow — so
// installing a tap never perturbs the measurements of the traffic it
// observes. That exclusion is a determinism obligation: scenario
// adversaries record through taps, and a benign run with and without
// a tap must produce byte-identical results. The returned node can
// still Send, which is the adversary's injection port.
func (b *Bus) Tap(name string) *Node {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := &Node{bus: b, name: name, monitor: true}
	b.nodes = append(b.nodes, n)
	return n
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Rates returns the configured bit rates.
func (b *Bus) Rates() BitRates { return b.rates }

// ErrNotAttached is returned when sending from a detached node.
var ErrNotAttached = errors.New("canbus: node not attached to a bus")

// Send validates the frame, pads its payload to a legal CAN-FD DLC
// length, applies any installed impairment, delivers it to every other
// node and returns the wire time. A dropped frame still returns its
// wire time — it occupied the bus — with a nil error; loss is visible
// only to the protocol layers above, exactly as on a real segment.
func (n *Node) Send(f Frame) (time.Duration, error) {
	res, err := n.send(f)
	return res.wire, err
}

// sendResult reports where a transmitted frame ended up, for callers
// (the gateway) that must account losses instead of shrugging them
// off.
type sendResult struct {
	wire       time.Duration
	candidates int  // receivers the frame was offered to
	accepted   int  // receivers that queued at least one copy
	dropped    bool // destroyed on the wire by impairment
}

// refused reports a delivery failure that is the receivers' doing
// rather than the wire's: at least one receiver existed, the wire
// delivered, and every receive queue was full.
func (r sendResult) refused() bool { return !r.dropped && r.candidates > 0 && r.accepted == 0 }

// send is the counted transmit path behind Send.
func (n *Node) send(f Frame) (sendResult, error) {
	if n.bus == nil {
		return sendResult{}, ErrNotAttached
	}
	rawLen := len(f.Data)
	padded, err := PadToDLC(rawLen)
	if err != nil {
		return sendResult{}, err
	}
	if padded != rawLen {
		data := make([]byte, padded)
		copy(data, f.Data)
		f.Data = data
	}
	if err := f.Validate(); err != nil {
		return sendResult{}, err
	}
	wt, err := f.WireTime(n.bus.rates)
	if err != nil {
		return sendResult{}, err
	}

	b := n.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Frames++
	b.stats.Bytes += rawLen
	b.stats.PadBytes += padded - rawLen
	b.stats.WireTime += wt
	b.clock.Advance(wt)
	res := sendResult{wire: wt}
	for _, peer := range b.nodes {
		if peer != n && !peer.monitor {
			res.candidates++
		}
	}

	copies := 1
	var delivered []byte
	if b.impair != nil {
		roll := b.impair.roll(&f)
		if roll.drop {
			b.stats.Dropped++
			b.emitFault(&f, roll, FaultDrop)
			res.dropped = true
			return res, nil
		}
		if roll.corrupt {
			delivered = append([]byte(nil), f.Data...)
			corruptFrame(delivered, roll)
			b.stats.Corrupted++
			b.emitFault(&f, roll, FaultCorrupt)
		}
		if roll.duplicate {
			b.stats.Duplicated++
			b.emitFault(&f, roll, FaultDuplicate)
			copies = 2
		}
		if roll.delay {
			b.stats.Delayed++
			b.stats.DelayTime += b.impair.cfg.Delay
			b.clock.Advance(b.impair.cfg.Delay)
			b.emitFault(&f, roll, FaultDelay)
		}
	}
	if delivered == nil {
		delivered = f.Data
	}

	for c := 0; c < copies; c++ {
		for _, peer := range b.nodes {
			if peer == n {
				continue
			}
			out := Frame{
				ID:       f.ID,
				Extended: f.Extended,
				BRS:      f.BRS,
				Data:     append([]byte(nil), delivered...),
			}
			if peer.monitor {
				// Monitor taps observe without participating: their
				// unbounded queues take every copy, and no delivery
				// counter moves — a tapped bus measures identically to
				// an untapped one.
				peer.enqueue(out)
				continue
			}
			if peer.enqueue(out) {
				b.stats.Broadcast++
				res.accepted++
			} else {
				b.stats.RxOverflow++
			}
		}
	}
	return res, nil
}

// enqueue appends a frame to the receive queue, dropping it (and
// counting the overflow) when the queue is full — the behaviour of a
// controller whose RX mailboxes are all occupied.
func (n *Node) enqueue(f Frame) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rxLimit > 0 && len(n.rx) >= n.rxLimit {
		n.overflow++
		return false
	}
	n.rx = append(n.rx, f)
	return true
}

// Receive pops the oldest pending frame, if any.
func (n *Node) Receive() (Frame, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.rx) == 0 {
		return Frame{}, false
	}
	f := n.rx[0]
	n.rx = n.rx[1:]
	return f, true
}

// Pending returns the number of queued frames.
func (n *Node) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.rx)
}

// SetRxLimit overrides this node's receive-queue bound (≤ 0 means
// unbounded — useful for measurement taps that must never lose).
func (n *Node) SetRxLimit(limit int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rxLimit = limit
}

// Overflow returns how many deliveries this node lost to a full queue.
func (n *Node) Overflow() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.overflow
}

// Name returns the node's attach name.
func (n *Node) Name() string { return n.name }

// String renders the node for diagnostics and fault traces.
func (n *Node) String() string { return fmt.Sprintf("canbus.Node(%s)", n.name) }
