package canbus

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Bus is an in-memory CAN-FD segment. Nodes attach with Attach and
// receive every frame transmitted by any other node (broadcast
// semantics, as on a physical bus). Transmission is serialized —
// the defining property of CAN — and each transmit returns the wire
// time the frame occupied, which the experiment harness adds to its
// simulated clock.
//
// The bus model is deliberately collision-free: CAN arbitration is
// non-destructive and the session protocols are strict request/
// response exchanges, so priority inversion never occurs in the
// reproduced experiments.
type Bus struct {
	rates BitRates

	mu    sync.Mutex
	nodes []*Node
	stats Stats
}

// Stats accumulates bus-level counters for the experiment reports.
type Stats struct {
	Frames    int           // frames transmitted
	Bytes     int           // payload bytes transmitted (unpadded)
	PadBytes  int           // padding added by DLC quantization
	WireTime  time.Duration // cumulative bus-busy time
	Broadcast int           // total frame deliveries (frames × receivers)
}

// Node is a bus endpoint with a receive queue.
type Node struct {
	bus  *Bus
	name string

	mu sync.Mutex
	rx []Frame
}

// NewBus creates a bus with the given bit rates.
func NewBus(rates BitRates) *Bus {
	return &Bus{rates: rates}
}

// Attach adds a named node to the bus.
func (b *Bus) Attach(name string) *Node {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := &Node{bus: b, name: name}
	b.nodes = append(b.nodes, n)
	return n
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Rates returns the configured bit rates.
func (b *Bus) Rates() BitRates { return b.rates }

// ErrNotAttached is returned when sending from a detached node.
var ErrNotAttached = errors.New("canbus: node not attached to a bus")

// Send validates the frame, pads its payload to a legal CAN-FD DLC
// length, delivers it to every other node and returns the wire time.
func (n *Node) Send(f Frame) (time.Duration, error) {
	if n.bus == nil {
		return 0, ErrNotAttached
	}
	rawLen := len(f.Data)
	padded, err := PadToDLC(rawLen)
	if err != nil {
		return 0, err
	}
	if padded != rawLen {
		data := make([]byte, padded)
		copy(data, f.Data)
		f.Data = data
	}
	if err := f.Validate(); err != nil {
		return 0, err
	}
	wt, err := f.WireTime(n.bus.rates)
	if err != nil {
		return 0, err
	}

	b := n.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Frames++
	b.stats.Bytes += rawLen
	b.stats.PadBytes += padded - rawLen
	b.stats.WireTime += wt
	for _, peer := range b.nodes {
		if peer == n {
			continue
		}
		peer.mu.Lock()
		peer.rx = append(peer.rx, Frame{
			ID:       f.ID,
			Extended: f.Extended,
			BRS:      f.BRS,
			Data:     append([]byte(nil), f.Data...),
		})
		peer.mu.Unlock()
		b.stats.Broadcast++
	}
	return wt, nil
}

// Receive pops the oldest pending frame, if any.
func (n *Node) Receive() (Frame, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.rx) == 0 {
		return Frame{}, false
	}
	f := n.rx[0]
	n.rx = n.rx[1:]
	return f, true
}

// Pending returns the number of queued frames.
func (n *Node) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.rx)
}

// Name returns the node's attach name.
func (n *Node) Name() string { return n.name }

func (n *Node) String() string { return fmt.Sprintf("canbus.Node(%s)", n.name) }
