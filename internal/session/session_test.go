package session

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func testKeyBlock() []byte {
	kb := make([]byte, 48)
	for i := range kb {
		kb[i] = byte(i + 1)
	}
	return kb
}

func newPair(t *testing.T, policy Policy) (*Channel, *Channel) {
	t.Helper()
	a, b, err := NewPair(testKeyBlock(), policy)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestEmptyRecord(t *testing.T) {
	// Zero-length payloads (keep-alives) must round-trip: an empty
	// record still carries its authenticated header.
	a, b := newPair(t, DefaultPolicy)
	rec, err := a.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != Overhead {
		t.Fatalf("empty record size %d, want %d", len(rec), Overhead)
	}
	got, err := b.Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty record decoded to %d bytes", len(got))
	}
	// And it still consumes a sequence number (no replay).
	if _, err := b.Open(rec); !errors.Is(err, ErrReplay) {
		t.Error("empty record replayable")
	}
}

func TestRoundTrip(t *testing.T) {
	a, b := newPair(t, DefaultPolicy)
	for i := 0; i < 8; i++ {
		msg := []byte{byte(i), 0xAA, 0xBB}
		rec, err := a.Seal(msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec) != len(msg)+Overhead {
			t.Fatalf("record size %d", len(rec))
		}
		got, err := b.Open(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatal("round trip failed")
		}
	}
	// And the reverse direction, interleaved.
	for i := 0; i < 4; i++ {
		rec, err := b.Seal([]byte("resp"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Open(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplayRejected(t *testing.T) {
	a, b := newPair(t, DefaultPolicy)
	rec, err := a.Seal([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(rec); err != nil {
		t.Fatal(err)
	}
	// Exact replay.
	if _, err := b.Open(rec); !errors.Is(err, ErrReplay) {
		t.Errorf("replay accepted: %v", err)
	}
	// A later record after the replay attempt still works.
	rec2, _ := a.Seal([]byte("two"))
	if _, err := b.Open(rec2); err != nil {
		t.Fatal(err)
	}
	// Replaying the older record again still fails.
	if _, err := b.Open(rec); !errors.Is(err, ErrReplay) {
		t.Error("old record accepted after progress")
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	a, b := newPair(t, DefaultPolicy)
	r1, _ := a.Seal([]byte("1"))
	r2, _ := a.Seal([]byte("2"))
	if _, err := b.Open(r2); !errors.Is(err, ErrReplay) {
		t.Errorf("gap accepted: %v", err)
	}
	// In-order delivery still works after the rejected attempt.
	if _, err := b.Open(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(r2); err != nil {
		t.Fatal(err)
	}
}

func TestTamperingRejected(t *testing.T) {
	a, b := newPair(t, DefaultPolicy)
	rec, _ := a.Seal([]byte("sensitive"))
	for _, idx := range []int{0, 7, 8, recordHeader, len(rec) - 1} {
		mod := append([]byte(nil), rec...)
		mod[idx] ^= 0x01
		if _, err := b.Open(mod); err == nil {
			t.Errorf("tampering at byte %d accepted", idx)
		}
	}
	if _, err := b.Open(rec[:Overhead-1]); !errors.Is(err, ErrMalformed) {
		t.Error("short record accepted")
	}
	// A record sent in the wrong direction (reflection attack).
	if _, err := a.Open(rec); err == nil {
		t.Error("reflected record accepted by its own sender")
	}
}

func TestRekeyPolicyRecords(t *testing.T) {
	a, b := newPair(t, Policy{MaxRecords: 3})
	for i := 0; i < 3; i++ {
		rec, err := a.Seal([]byte("x"))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if _, err := b.Open(rec); err != nil {
			t.Fatal(err)
		}
	}
	if !a.NeedsRekey() {
		t.Error("sender does not report rekey need")
	}
	if _, err := a.Seal([]byte("x")); !errors.Is(err, ErrRekeyRequired) {
		t.Errorf("policy not enforced on send: %v", err)
	}
	if _, err := b.Open([]byte("anything")); !errors.Is(err, ErrRekeyRequired) {
		t.Errorf("policy not enforced on receive: %v", err)
	}
}

func TestRekeyPolicyAge(t *testing.T) {
	a, _ := newPair(t, Policy{MaxAge: time.Hour})
	now := time.Unix(1700000000, 0)
	a.SetClock(func() time.Time { return now })
	if _, err := a.Seal([]byte("x")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Hour)
	if _, err := a.Seal([]byte("x")); !errors.Is(err, ErrRekeyRequired) {
		t.Errorf("aged key still usable: %v", err)
	}
}

func TestUnlimitedPolicy(t *testing.T) {
	a, b := newPair(t, Policy{})
	for i := 0; i < 100; i++ {
		rec, err := a.Seal([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Open(rec); err != nil {
			t.Fatal(err)
		}
	}
	if a.NeedsRekey() {
		t.Error("unlimited policy reported expiry")
	}
	if a.RecordsSent() != 100 {
		t.Errorf("RecordsSent = %d", a.RecordsSent())
	}
}

func TestNewPairValidation(t *testing.T) {
	if _, _, err := NewPair(make([]byte, 10), DefaultPolicy); err == nil {
		t.Error("short key block accepted")
	}
}

func TestKeystreamUniqueness(t *testing.T) {
	// Identical plaintexts in consecutive records must produce
	// different ciphertexts (per-record keystream).
	a, _ := newPair(t, DefaultPolicy)
	r1, _ := a.Seal([]byte("same message"))
	r2, _ := a.Seal([]byte("same message"))
	if bytes.Equal(r1[recordHeader:len(r1)-tagSize], r2[recordHeader:len(r2)-tagSize]) {
		t.Error("keystream reused across records")
	}
	// And across directions for the same sequence number.
	x, y := newPair(t, DefaultPolicy)
	rx, _ := x.Seal([]byte("same message"))
	ry, _ := y.Seal([]byte("same message"))
	if bytes.Equal(rx[recordHeader:len(rx)-tagSize], ry[recordHeader:len(ry)-tagSize]) {
		t.Error("keystream reused across directions")
	}
}

func TestCrossSessionIsolation(t *testing.T) {
	// Records of one session must not open in another (fresh key
	// block, as produced by a new STS run).
	a1, _ := newPair(t, DefaultPolicy)
	other := testKeyBlock()
	other[0] ^= 0xFF  // different encryption key
	other[20] ^= 0xFF // different MAC key (bytes 16..47 are the MAC half)
	_, b2, err := NewPair(other, DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := a1.Seal([]byte("session 1 data"))
	if _, err := b2.Open(rec); !errors.Is(err, ErrAuth) {
		t.Errorf("cross-session record accepted: %v", err)
	}
}

func TestReorderWindow(t *testing.T) {
	a, b := newPair(t, Policy{ReorderWindow: 4})
	// Seal five records, deliver out of order: 0, 2, 1, 4, 3.
	recs := make([][]byte, 5)
	for i := range recs {
		r, err := a.Seal([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = r
	}
	for _, i := range []int{0, 2, 1, 4, 3} {
		got, err := b.Open(recs[i])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("record %d corrupted", i)
		}
	}
	// Every replay must now fail.
	for i, r := range recs {
		if _, err := b.Open(r); !errors.Is(err, ErrReplay) {
			t.Errorf("replay of record %d accepted: %v", i, err)
		}
	}
}

func TestReorderWindowExpiry(t *testing.T) {
	a, b := newPair(t, Policy{ReorderWindow: 2})
	recs := make([][]byte, 6)
	for i := range recs {
		recs[i], _ = a.Seal([]byte{byte(i)})
	}
	// Accept 0, then jump to 5: records 3 and earlier fall out of the
	// window [4, 5].
	if _, err := b.Open(recs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(recs[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(recs[4]); err != nil {
		t.Fatalf("in-window record rejected: %v", err)
	}
	for _, i := range []int{1, 2, 3} {
		if _, err := b.Open(recs[i]); !errors.Is(err, ErrReplay) {
			t.Errorf("below-window record %d accepted: %v", i, err)
		}
	}
}

func TestReorderWindowLargeJump(t *testing.T) {
	// A jump ≥ 64 must clear the whole mask without shifting UB.
	a, b := newPair(t, Policy{ReorderWindow: 64})
	var last []byte
	for i := 0; i < 70; i++ {
		r, err := a.Seal([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || i == 69 {
			if _, err := b.Open(r); err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
		}
		last = r
	}
	if _, err := b.Open(last); !errors.Is(err, ErrReplay) {
		t.Errorf("replay after large jump accepted: %v", err)
	}
}

// TestQuickRoundTrip property-tests the record layer over random
// payloads.
func TestQuickRoundTrip(t *testing.T) {
	a, b, err := NewPair(testKeyBlock(), Policy{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		rec, err := a.Seal(msg)
		if err != nil {
			return false
		}
		got, err := b.Open(rec)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}
