// Package session implements the secure communication session that
// follows key derivation — the "Encrypted Session" stage of the
// paper's Figure 1 — as a record layer over an established session
// key:
//
//   - authenticated encryption of application records (AES-128-CTR +
//     HMAC-SHA-256 encrypt-then-MAC, the §V-A primitive stack);
//   - per-direction sequence numbers with strict replay rejection;
//   - a rekey policy that bounds how long one session key may live,
//     operationalizing the paper's core motivation: "implementation-
//     wise, either due to the limitations in the system's architecture,
//     constrained nature of the devices, or neglect from the
//     developers, [static keys] can lead to longer than the intended
//     use of the same session key" (§I).
//
// A Channel deliberately does not renew keys itself: when the policy
// trips it refuses further traffic with ErrRekeyRequired, forcing the
// caller back through a fresh KD run (a new STS handshake). That keeps
// the separation the paper draws between the communication session
// (this package) and the key-derivation protocol (internal/core).
package session

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/kdf"
)

// Direction labels the two record flows of a session.
type Direction byte

const (
	// DirAtoB — initiator to responder.
	DirAtoB Direction = 0x01
	// DirBtoA — responder to initiator.
	DirBtoA Direction = 0x02
)

func (d Direction) other() Direction {
	if d == DirAtoB {
		return DirBtoA
	}
	return DirAtoB
}

// Policy bounds the lifetime of one session key.
type Policy struct {
	// MaxRecords is the maximum number of records either direction may
	// protect under one key (0 = unlimited).
	MaxRecords uint64
	// MaxAge is the maximum wall-clock key lifetime (0 = unlimited).
	MaxAge time.Duration
	// ReorderWindow selects the anti-replay strategy. 0 demands strict
	// in-order delivery (appropriate on CAN, a reliable ordered bus).
	// A positive value accepts records up to that many sequence
	// numbers behind the highest seen, each at most once — the
	// DTLS-style sliding window for lossy IoT links (§III's wireless
	// sensor setting). Maximum 64.
	ReorderWindow uint
}

// DefaultPolicy allows 2^20 records and a 24-hour key lifetime —
// conservative bounds for an in-vehicle communication session.
var DefaultPolicy = Policy{MaxRecords: 1 << 20, MaxAge: 24 * time.Hour}

// Errors of the record layer.
var (
	// ErrRekeyRequired is returned once the policy expires; establish a
	// new session (fresh KD run) to continue.
	ErrRekeyRequired = errors.New("session: key lifetime exhausted, rekey required")
	// ErrReplay is returned for records at or below the received
	// high-water mark.
	ErrReplay = errors.New("session: record replayed or reordered")
	// ErrAuth is returned when record authentication fails.
	ErrAuth = errors.New("session: record authentication failed")
	// ErrMalformed is returned for records too short to parse.
	ErrMalformed = errors.New("session: malformed record")
)

// recordHeader is seq(8) ‖ direction(1).
const recordHeader = 9

// tagSize is the truncated HMAC-SHA-256 record tag.
const tagSize = 16

// Overhead is the record expansion in bytes.
const Overhead = recordHeader + tagSize

// Channel is one endpoint's view of an established communication
// session.
type Channel struct {
	dir     Direction // the direction this endpoint sends in
	encKey  []byte
	macKey  []byte
	policy  Policy
	started time.Time
	now     func() time.Time

	sendSeq uint64
	recvSeq uint64 // high-water mark of accepted records (strict mode)

	// Sliding-window state (ReorderWindow > 0): highest accepted
	// sequence number and a bitmask of the window behind it.
	winHigh   uint64
	winMask   uint64
	winPrimed bool
}

// NewPair derives both endpoints of a session from a KD key block
// (enc ‖ mac, as produced by the protocols in internal/core). The
// policy applies to both directions.
func NewPair(keyBlock []byte, policy Policy) (*Channel, *Channel, error) {
	if len(keyBlock) != kdf.SessionKeySize+kdf.MACKeySize {
		return nil, nil, fmt.Errorf("session: key block size %d, want %d",
			len(keyBlock), kdf.SessionKeySize+kdf.MACKeySize)
	}
	mk := func(dir Direction) *Channel {
		return &Channel{
			dir:     dir,
			encKey:  append([]byte(nil), keyBlock[:kdf.SessionKeySize]...),
			macKey:  append([]byte(nil), keyBlock[kdf.SessionKeySize:]...),
			policy:  policy,
			started: time.Now(),
			now:     time.Now,
		}
	}
	return mk(DirAtoB), mk(DirBtoA), nil
}

// SetClock injects a time source for tests.
func (c *Channel) SetClock(now func() time.Time) {
	c.now = now
	c.started = now()
}

// RecordsSent returns the number of records protected so far.
func (c *Channel) RecordsSent() uint64 { return c.sendSeq }

// expired checks the policy.
func (c *Channel) expired() bool {
	if c.policy.MaxRecords > 0 && (c.sendSeq >= c.policy.MaxRecords || c.recvSeq >= c.policy.MaxRecords) {
		return true
	}
	if c.policy.MaxAge > 0 && c.now().Sub(c.started) > c.policy.MaxAge {
		return true
	}
	return false
}

// NeedsRekey reports whether the policy has expired.
func (c *Channel) NeedsRekey() bool { return c.expired() }

// Seal protects one application record:
//
//	seq(8) ‖ dir(1) ‖ CTR(encKey, nonce=f(seq,dir), plaintext) ‖ tag(16)
//
// The sequence number is bound into both the keystream nonce and the
// tag, so records cannot be reordered, truncated or replayed.
func (c *Channel) Seal(plaintext []byte) ([]byte, error) {
	if c.expired() {
		return nil, ErrRekeyRequired
	}
	seq := c.sendSeq
	out := make([]byte, recordHeader+len(plaintext)+tagSize)
	binary.BigEndian.PutUint64(out[:8], seq)
	out[8] = byte(c.dir)

	stream := c.keystream(seq, c.dir, len(plaintext))
	for i, p := range plaintext {
		out[recordHeader+i] = p ^ stream[i]
	}
	tag := c.tag(out[:recordHeader+len(plaintext)])
	copy(out[recordHeader+len(plaintext):], tag)

	c.sendSeq++
	return out, nil
}

// Open verifies and decrypts a record produced by the peer channel.
// Records must arrive strictly in order; anything at or below the
// high-water mark is rejected as a replay.
func (c *Channel) Open(record []byte) ([]byte, error) {
	if c.expired() {
		return nil, ErrRekeyRequired
	}
	if len(record) < Overhead {
		return nil, ErrMalformed
	}
	seq := binary.BigEndian.Uint64(record[:8])
	dir := Direction(record[8])
	if dir != c.dir.other() {
		return nil, fmt.Errorf("%w: direction %#x", ErrMalformed, byte(dir))
	}

	body := record[:len(record)-tagSize]
	tag := record[len(record)-tagSize:]
	if !hmac.Equal(c.tag(body), tag) {
		return nil, ErrAuth
	}
	// Authenticate BEFORE the replay check so an attacker cannot probe
	// the window with forged headers; but reject replays before
	// decrypting.
	if err := c.checkReplay(seq); err != nil {
		return nil, err
	}

	ct := record[recordHeader : len(record)-tagSize]
	stream := c.keystream(seq, dir, len(ct))
	pt := make([]byte, len(ct))
	for i, b := range ct {
		pt[i] = b ^ stream[i]
	}
	c.acceptSeq(seq)
	return pt, nil
}

// checkReplay applies the configured anti-replay strategy to an
// authenticated sequence number.
func (c *Channel) checkReplay(seq uint64) error {
	if c.policy.ReorderWindow == 0 {
		// Strict in-order delivery (CAN is a reliable ordered bus);
		// gaps indicate loss or reordering upstream.
		if seq < c.recvSeq {
			return ErrReplay
		}
		if seq > c.recvSeq {
			return fmt.Errorf("%w: got seq %d, want %d", ErrReplay, seq, c.recvSeq)
		}
		return nil
	}
	w := c.policy.ReorderWindow
	if w > 64 {
		w = 64
	}
	if !c.winPrimed {
		return nil // first record always accepted
	}
	switch {
	case seq > c.winHigh:
		return nil // advances the window
	case c.winHigh-seq >= uint64(w):
		return fmt.Errorf("%w: seq %d below window [%d, %d]", ErrReplay, seq, c.winHigh-uint64(w)+1, c.winHigh)
	default:
		if c.winMask&(1<<(c.winHigh-seq)) != 0 {
			return ErrReplay
		}
		return nil
	}
}

// acceptSeq records an accepted sequence number.
func (c *Channel) acceptSeq(seq uint64) {
	if c.policy.ReorderWindow == 0 {
		c.recvSeq = seq + 1
		return
	}
	if !c.winPrimed {
		c.winPrimed = true
		c.winHigh = seq
		c.winMask = 1
		c.recvSeq = seq + 1
		return
	}
	if seq > c.winHigh {
		shift := seq - c.winHigh
		if shift >= 64 {
			c.winMask = 0
		} else {
			c.winMask <<= shift
		}
		c.winMask |= 1
		c.winHigh = seq
	} else {
		c.winMask |= 1 << (c.winHigh - seq)
	}
	if c.winHigh >= c.recvSeq {
		c.recvSeq = c.winHigh + 1
	}
}

// keystream derives the CTR keystream for (seq, dir) — unique per
// record because seq never repeats within a key's lifetime. Empty
// records (keep-alives) need no keystream.
func (c *Channel) keystream(seq uint64, dir Direction, n int) []byte {
	if n == 0 {
		return nil
	}
	var iv [12]byte
	binary.BigEndian.PutUint64(iv[:8], seq)
	iv[8] = byte(dir)
	out, err := kdf.HKDF(c.encKey, iv[:], []byte("session-record-stream"), n)
	if err != nil {
		// n is bounded by record sizes ≪ the HKDF limit; unreachable.
		panic(err)
	}
	return out
}

// tag computes the truncated record MAC.
func (c *Channel) tag(body []byte) []byte {
	m := hmac.New(sha256.New, c.macKey)
	m.Write([]byte("session-record"))
	m.Write(body)
	return m.Sum(nil)[:tagSize]
}
