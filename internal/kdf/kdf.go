// Package kdf implements the key-derivation functions used by the
// session-establishment protocols: HKDF (RFC 5869) and the NIST
// SP 800-108 counter-mode KDF, both over HMAC-SHA-256.
//
// The paper derives session keys as KS = KDF(KPM, salt) (equation (4));
// HKDF extract-then-expand is the concrete instantiation used by the
// STS engine, with the premaster x-coordinate as input keying material
// and the concatenated ephemeral points as salt.
package kdf

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// hmacSHA256 computes HMAC-SHA-256 over the concatenation of parts.
func hmacSHA256(key []byte, parts ...[]byte) []byte {
	m := hmac.New(sha256.New, key)
	for _, p := range parts {
		m.Write(p)
	}
	return m.Sum(nil)
}

// Extract implements HKDF-Extract: PRK = HMAC(salt, IKM). A nil or
// empty salt is replaced by a zero-filled hash-length string per
// RFC 5869 §2.2.
func Extract(salt, ikm []byte) []byte {
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	return hmacSHA256(salt, ikm)
}

// maxExpand is the RFC 5869 output bound: 255 · HashLen.
const maxExpand = 255 * sha256.Size

// Expand implements HKDF-Expand, producing length bytes of output
// keying material from a pseudorandom key and context info.
func Expand(prk, info []byte, length int) ([]byte, error) {
	if length <= 0 {
		return nil, errors.New("kdf: non-positive output length")
	}
	if length > maxExpand {
		return nil, errors.New("kdf: output length exceeds 255*HashLen")
	}
	var (
		out = make([]byte, 0, length)
		t   []byte
		ctr byte
	)
	for len(out) < length {
		ctr++
		t = hmacSHA256(prk, t, info, []byte{ctr})
		out = append(out, t...)
	}
	return out[:length], nil
}

// HKDF runs extract-then-expand in one call.
func HKDF(ikm, salt, info []byte, length int) ([]byte, error) {
	return Expand(Extract(salt, ikm), info, length)
}

// CounterKDF implements the NIST SP 800-108 counter-mode KDF:
// K(i) = HMAC(key, [i]₃₂ ‖ label ‖ 0x00 ‖ context ‖ [L]₃₂). It is
// provided as the alternative KDF family used by several of the
// compared protocols (bear-ssl style) and by the CMAC-keyed schemes.
func CounterKDF(key, label, context []byte, length int) ([]byte, error) {
	if length <= 0 {
		return nil, errors.New("kdf: non-positive output length")
	}
	var (
		out     = make([]byte, 0, length)
		lBits   = uint32(length * 8)
		lBuf    [4]byte
		ctrBuf  [4]byte
		counter uint32
	)
	binary.BigEndian.PutUint32(lBuf[:], lBits)
	for len(out) < length {
		counter++
		binary.BigEndian.PutUint32(ctrBuf[:], counter)
		block := hmacSHA256(key, ctrBuf[:], label, []byte{0x00}, context, lBuf[:])
		out = append(out, block...)
	}
	return out[:length], nil
}

// SessionKeySize is the AES-128 session-key size used throughout the
// paper's evaluation (128-bit AES/CMAC level, §V-A).
const SessionKeySize = 16

// MACKeySize is the 256-bit HMAC key size of §V-A.
const MACKeySize = 32

// SessionKeys derives the encryption and MAC keys for one
// communication session from a premaster secret: the concrete
// KS = KDF(KPM, salt) of equation (4), split into an AES-128 key and a
// 256-bit MAC key.
func SessionKeys(premaster, salt []byte) (encKey, macKey []byte, err error) {
	okm, err := HKDF(premaster, salt, []byte("ecqv-sts session keys"), SessionKeySize+MACKeySize)
	if err != nil {
		return nil, nil, err
	}
	return okm[:SessionKeySize], okm[SessionKeySize:], nil
}
