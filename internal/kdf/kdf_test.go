package kdf

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TestHKDFRFC5869Case1 checks RFC 5869 Appendix A test case 1
// (SHA-256, basic).
func TestHKDFRFC5869Case1(t *testing.T) {
	ikm := fromHex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt := fromHex(t, "000102030405060708090a0b0c")
	info := fromHex(t, "f0f1f2f3f4f5f6f7f8f9")

	prk := Extract(salt, ikm)
	wantPRK := fromHex(t, "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	if !bytes.Equal(prk, wantPRK) {
		t.Errorf("PRK = %x, want %x", prk, wantPRK)
	}

	okm, err := Expand(prk, info, 42)
	if err != nil {
		t.Fatal(err)
	}
	wantOKM := fromHex(t, "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("OKM = %x, want %x", okm, wantOKM)
	}
}

// TestHKDFRFC5869Case2 checks test case 2 (longer inputs/outputs).
func TestHKDFRFC5869Case2(t *testing.T) {
	ikm := fromHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f404142434445464748494a4b4c4d4e4f")
	salt := fromHex(t, "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9fa0a1a2a3a4a5a6a7a8a9aaabacadaeaf")
	info := fromHex(t, "b0b1b2b3b4b5b6b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9dadbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")

	okm, err := HKDF(ikm, salt, info, 82)
	if err != nil {
		t.Fatal(err)
	}
	want := fromHex(t, "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71cc30c58179ec3e87c14c01d5c1f3434f1d87")
	if !bytes.Equal(okm, want) {
		t.Errorf("OKM = %x, want %x", okm, want)
	}
}

// TestHKDFRFC5869Case3 checks test case 3 (zero-length salt and info).
func TestHKDFRFC5869Case3(t *testing.T) {
	ikm := fromHex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	okm, err := HKDF(ikm, nil, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := fromHex(t, "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	if !bytes.Equal(okm, want) {
		t.Errorf("OKM = %x, want %x", okm, want)
	}
}

func TestExpandBounds(t *testing.T) {
	prk := Extract(nil, []byte("ikm"))
	if _, err := Expand(prk, nil, 0); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := Expand(prk, nil, -1); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := Expand(prk, nil, maxExpand+1); err == nil {
		t.Error("over-long output accepted")
	}
	okm, err := Expand(prk, nil, maxExpand)
	if err != nil || len(okm) != maxExpand {
		t.Errorf("max-length expand failed: %v", err)
	}
}

func TestCounterKDF(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	out1, err := CounterKDF(key, []byte("label"), []byte("ctx"), 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(out1) != 48 {
		t.Fatalf("length %d", len(out1))
	}
	// Deterministic.
	out2, _ := CounterKDF(key, []byte("label"), []byte("ctx"), 48)
	if !bytes.Equal(out1, out2) {
		t.Error("CounterKDF not deterministic")
	}
	// Label and context separation.
	out3, _ := CounterKDF(key, []byte("label2"), []byte("ctx"), 48)
	if bytes.Equal(out1, out3) {
		t.Error("different labels produced identical output")
	}
	out4, _ := CounterKDF(key, []byte("label"), []byte("ctx2"), 48)
	if bytes.Equal(out1, out4) {
		t.Error("different contexts produced identical output")
	}
	// Length separation: SP 800-108 binds the total output length [L]
	// into every block, so a 16-byte request is NOT a prefix of a
	// 48-byte request.
	short, _ := CounterKDF(key, []byte("label"), []byte("ctx"), 16)
	if bytes.Equal(short, out1[:16]) {
		t.Error("output length not bound into the KDF stream")
	}
	if _, err := CounterKDF(key, nil, nil, 0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestSessionKeys(t *testing.T) {
	enc, mac, err := SessionKeys([]byte("premaster"), []byte("saltA|saltB"))
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != SessionKeySize {
		t.Errorf("enc key length %d, want %d", len(enc), SessionKeySize)
	}
	if len(mac) != MACKeySize {
		t.Errorf("mac key length %d, want %d", len(mac), MACKeySize)
	}
	if bytes.Equal(enc, mac[:SessionKeySize]) {
		t.Error("enc and mac keys overlap")
	}

	// Different salt (ephemeral points) must give different keys even
	// with the same premaster — the DKD property exercised in the
	// protocol tests.
	enc2, _, err := SessionKeys([]byte("premaster"), []byte("other salt"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(enc, enc2) {
		t.Error("different salts produced the same session key")
	}
}

// TestQuickHKDFDistinct property-tests that distinct IKMs yield
// distinct outputs (collision would indicate state-sharing bugs).
func TestQuickHKDFDistinct(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		o1, err1 := HKDF(a, []byte("s"), []byte("i"), 32)
		o2, err2 := HKDF(b, []byte("s"), []byte("i"), 32)
		return err1 == nil && err2 == nil && !bytes.Equal(o1, o2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}
