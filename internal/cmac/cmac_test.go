package cmac

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex: %v", err)
	}
	return b
}

// rfc4493Key is the AES-128 key of the RFC 4493 test vectors.
const rfc4493Key = "2b7e151628aed2a6abf7158809cf4f3c"

// TestRFC4493Vectors checks all four RFC 4493 §4 examples.
func TestRFC4493Vectors(t *testing.T) {
	key := fromHex(t, rfc4493Key)
	msgFull := fromHex(t, "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710")

	cases := []struct {
		name string
		msg  []byte
		want string
	}{
		{"len=0", nil, "bb1d6929e95937287fa37d129b756746"},
		{"len=16", msgFull[:16], "070a16b46b4d4144f79bdd9dd04a287c"},
		{"len=40", msgFull[:40], "dfa66747de9ae63030ca32611497c827"},
		{"len=64", msgFull, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Sum(key, tc.msg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, fromHex(t, tc.want)) {
				t.Errorf("tag = %x, want %s", got, tc.want)
			}
		})
	}
}

// TestSubkeys checks the K1/K2 derivation from RFC 4493 §4.
func TestSubkeys(t *testing.T) {
	m, err := New(fromHex(t, rfc4493Key))
	if err != nil {
		t.Fatal(err)
	}
	c := m.(*cmac)
	if got := c.k1[:]; !bytes.Equal(got, fromHex(t, "fbeed618357133667c85e08f7236a8de")) {
		t.Errorf("K1 = %x", got)
	}
	if got := c.k2[:]; !bytes.Equal(got, fromHex(t, "f7ddac306ae266ccf90bc11ee46d513b")) {
		t.Errorf("K2 = %x", got)
	}
}

func TestIncrementalWrites(t *testing.T) {
	key := fromHex(t, rfc4493Key)
	msg := fromHex(t, "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51")

	want, err := Sum(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Same tag regardless of write partitioning.
	for _, split := range []int{1, 7, 15, 16, 17, 31} {
		m, _ := New(key)
		m.Write(msg[:split])
		m.Write(msg[split:])
		if got := m.Sum(nil); !bytes.Equal(got, want) {
			t.Errorf("split %d: tag %x, want %x", split, got, want)
		}
	}
	// Byte-at-a-time.
	m, _ := New(key)
	for _, b := range msg {
		m.Write([]byte{b})
	}
	if got := m.Sum(nil); !bytes.Equal(got, want) {
		t.Errorf("byte-wise: tag %x, want %x", got, want)
	}
}

func TestReset(t *testing.T) {
	key := fromHex(t, rfc4493Key)
	m, _ := New(key)
	m.Write([]byte("some data"))
	m.Reset()
	got := m.Sum(nil)
	want, _ := Sum(key, nil)
	if !bytes.Equal(got, want) {
		t.Error("Reset did not restore the empty-message state")
	}
}

func TestVerify(t *testing.T) {
	key := fromHex(t, rfc4493Key)
	msg := []byte("authenticated message")
	tag, err := Sum(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Verify(key, msg, tag)
	if err != nil || !ok {
		t.Fatalf("valid tag rejected: %v", err)
	}
	bad := append([]byte{}, tag...)
	bad[0] ^= 1
	if ok, _ := Verify(key, msg, bad); ok {
		t.Error("corrupted tag accepted")
	}
	if ok, _ := Verify(key, append(msg, 'x'), tag); ok {
		t.Error("modified message accepted")
	}
	if ok, _ := Verify(key, msg, tag[:8]); ok {
		t.Error("truncated tag accepted")
	}
}

func TestKeySizes(t *testing.T) {
	for _, size := range []int{16, 24, 32} {
		if _, err := New(make([]byte, size)); err != nil {
			t.Errorf("AES-%d key rejected: %v", size*8, err)
		}
	}
	if _, err := New(make([]byte, 15)); err == nil {
		t.Error("15-byte key accepted")
	}
}

func TestHashInterface(t *testing.T) {
	m, _ := New(make([]byte, 16))
	if m.Size() != Size {
		t.Errorf("Size() = %d", m.Size())
	}
	if m.BlockSize() != Size {
		t.Errorf("BlockSize() = %d", m.BlockSize())
	}
	// Sum must append, not replace.
	prefix := []byte{0xAA, 0xBB}
	out := m.Sum(prefix)
	if !bytes.Equal(out[:2], prefix) {
		t.Error("Sum did not append to its argument")
	}
	if len(out) != 2+Size {
		t.Errorf("Sum output length %d", len(out))
	}
}

// TestQuickDistinctMessages: distinct messages produce distinct tags
// (a collision at 128 bits in random short inputs would indicate a
// state bug, e.g. ignoring part of the input).
func TestQuickDistinctMessages(t *testing.T) {
	key := make([]byte, 16)
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		ta, err1 := Sum(key, a)
		tb, err2 := Sum(key, b)
		return err1 == nil && err2 == nil && !bytes.Equal(ta, tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 128}); err != nil {
		t.Error(err)
	}
}

// TestDbl checks the GF(2^128) doubling carry/reduction paths.
func TestDbl(t *testing.T) {
	var src, dst [Size]byte
	// No carry: 1 doubles to 2.
	src[Size-1] = 1
	dbl(&dst, &src)
	var want [Size]byte
	want[Size-1] = 2
	if dst != want {
		t.Errorf("dbl(1) = %x", dst)
	}
	// Carry: MSB set → shift and XOR Rb.
	src = [Size]byte{}
	src[0] = 0x80
	dbl(&dst, &src)
	want = [Size]byte{}
	want[Size-1] = rb
	if dst != want {
		t.Errorf("dbl(0x80...) = %x, want ...%02x", dst, rb)
	}
}
