// Package cmac implements AES-CMAC (RFC 4493 / NIST SP 800-38B), the
// 128-bit message-authentication primitive used by the symmetric
// (SCIANC, PORAMB) key-derivation protocols in the paper's comparison
// (§V-A: "128-bits for the AES and CMAC").
package cmac

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"fmt"
	"hash"
)

// Size is the CMAC tag length in bytes (one AES block).
const Size = aes.BlockSize

const rb = 0x87 // the GF(2^128) reduction constant of SP 800-38B

// cmac implements hash.Hash over an AES block cipher.
type cmac struct {
	block    cipher.Block
	k1, k2   [Size]byte
	x        [Size]byte // running CBC state
	buf      [Size]byte // pending partial block
	bufLen   int
	finished bool
}

// New returns a CMAC instance keyed with an AES key of 16, 24 or 32
// bytes. The returned value implements hash.Hash with BlockSize 16 and
// Size 16.
func New(key []byte) (hash.Hash, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cmac: %w", err)
	}
	m := &cmac{block: block}
	m.deriveSubkeys()
	return m, nil
}

// Sum computes the CMAC tag of msg in one shot.
func Sum(key, msg []byte) ([]byte, error) {
	m, err := New(key)
	if err != nil {
		return nil, err
	}
	m.Write(msg)
	return m.Sum(nil), nil
}

// Verify recomputes the tag over msg and compares in constant time.
func Verify(key, msg, tag []byte) (bool, error) {
	want, err := Sum(key, msg)
	if err != nil {
		return false, err
	}
	if len(tag) != Size {
		return false, nil
	}
	return subtle.ConstantTimeCompare(want, tag) == 1, nil
}

// deriveSubkeys computes K1 = dbl(E_K(0)), K2 = dbl(K1).
func (m *cmac) deriveSubkeys() {
	var l [Size]byte
	m.block.Encrypt(l[:], l[:])
	dbl(&m.k1, &l)
	dbl(&m.k2, &m.k1)
}

// dbl doubles a 128-bit value in GF(2^128): left shift, conditionally
// XOR Rb into the low byte.
func dbl(dst, src *[Size]byte) {
	var carry byte
	for i := Size - 1; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
	if carry != 0 {
		dst[Size-1] ^= rb
	}
}

func (m *cmac) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		// Keep at least one byte buffered so the final block is
		// available for subkey treatment in Sum.
		if m.bufLen == Size {
			m.processBlock(m.buf[:])
			m.bufLen = 0
		}
		take := Size - m.bufLen
		if take > len(p) {
			take = len(p)
		}
		copy(m.buf[m.bufLen:], p[:take])
		m.bufLen += take
		p = p[take:]
	}
	return n, nil
}

func (m *cmac) processBlock(b []byte) {
	for i := 0; i < Size; i++ {
		m.x[i] ^= b[i]
	}
	m.block.Encrypt(m.x[:], m.x[:])
}

// Sum appends the tag to b. The CMAC state is not consumed; further
// Writes after Sum are not supported and will produce undefined tags
// (matching the one-shot usage in the protocol stack).
func (m *cmac) Sum(b []byte) []byte {
	var last [Size]byte
	if m.bufLen == Size {
		// Complete final block: XOR with K1.
		for i := 0; i < Size; i++ {
			last[i] = m.buf[i] ^ m.k1[i]
		}
	} else {
		// Incomplete (or empty) final block: pad 10*…, XOR with K2.
		copy(last[:], m.buf[:m.bufLen])
		last[m.bufLen] = 0x80
		for i := 0; i < Size; i++ {
			last[i] ^= m.k2[i]
		}
	}
	var tag [Size]byte
	copy(tag[:], m.x[:])
	for i := 0; i < Size; i++ {
		tag[i] ^= last[i]
	}
	m.block.Encrypt(tag[:], tag[:])
	return append(b, tag[:]...)
}

func (m *cmac) Reset() {
	m.x = [Size]byte{}
	m.buf = [Size]byte{}
	m.bufLen = 0
}

func (m *cmac) Size() int      { return Size }
func (m *cmac) BlockSize() int { return Size }
