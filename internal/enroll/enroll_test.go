package enroll

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ec"
	"repro/internal/ecdsa"
	"repro/internal/ecqv"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func newGateway(t *testing.T, seed int64) *Gateway {
	t.Helper()
	ca, err := ecqv.NewCA(ec.P256(), ecqv.NewID("gateway-ca"), newDetRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return &Gateway{CA: ca, Clock: func() time.Time { return time.Unix(1700000000, 0) }}
}

func TestEnrollmentRoundTrip(t *testing.T) {
	gw := newGateway(t, 1)
	dev := &Device{
		Curve: ec.P256(),
		ID:    ecqv.NewID("ecu-17"),
		CAPub: gw.CA.PublicKey(),
		Rand:  newDetRand(2),
	}
	req, err := dev.Start()
	if err != nil {
		t.Fatal(err)
	}
	resp := gw.Handle(req)
	cert, priv, err := dev.Finish(resp)
	if err != nil {
		t.Fatal(err)
	}
	if cert.SubjectID != dev.ID {
		t.Error("certificate subject wrong")
	}

	// The enrolled credentials must actually work: sign with the
	// reconstructed key, verify under the extracted public key.
	key, err := ecdsa.NewPrivateKey(ec.P256(), priv)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := key.Sign([]byte("proof of possession"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ecqv.ExtractPublicKey(cert, gw.CA.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if !(&ecdsa.PublicKey{Curve: ec.P256(), Q: q}).Verify([]byte("proof of possession"), sig) {
		t.Fatal("enrolled credentials do not verify")
	}
}

func TestTamperedResponseRejected(t *testing.T) {
	gw := newGateway(t, 3)
	dev := &Device{Curve: ec.P256(), ID: ecqv.NewID("ecu"), CAPub: gw.CA.PublicKey(), Rand: newDetRand(4)}
	req, _ := dev.Start()
	resp := gw.Handle(req)

	// Flip certificate and r bytes: the reconstruction check must
	// catch every one.
	for _, idx := range []int{10, 40, len(resp) - 5} {
		devF := &Device{Curve: ec.P256(), ID: ecqv.NewID("ecu"), CAPub: gw.CA.PublicKey(), Rand: newDetRand(4)}
		reqF, _ := devF.Start()
		respF := gw.Handle(reqF)
		respF[idx] ^= 0x01
		if _, _, err := devF.Finish(respF); err == nil {
			t.Errorf("tampered response byte %d accepted", idx)
		}
	}
	// Untampered still works.
	if _, _, err := dev.Finish(resp); err != nil {
		t.Fatalf("clean response rejected: %v", err)
	}
}

func TestWrongCAKeyRejected(t *testing.T) {
	gw := newGateway(t, 5)
	rogue, _ := ecqv.NewCA(ec.P256(), ecqv.NewID("rogue"), newDetRand(6))
	dev := &Device{Curve: ec.P256(), ID: ecqv.NewID("ecu"), CAPub: rogue.PublicKey(), Rand: newDetRand(7)}
	req, _ := dev.Start()
	if _, _, err := dev.Finish(gw.Handle(req)); err == nil {
		t.Fatal("response from a different CA accepted")
	}
}

func TestAuthorizationPolicy(t *testing.T) {
	gw := newGateway(t, 8)
	gw.Authorize = func(id ecqv.ID) bool { return id.String() != "blocked" }

	ok := &Device{Curve: ec.P256(), ID: ecqv.NewID("allowed"), CAPub: gw.CA.PublicKey(), Rand: newDetRand(9)}
	req, _ := ok.Start()
	if _, _, err := ok.Finish(gw.Handle(req)); err != nil {
		t.Fatalf("allowed subject rejected: %v", err)
	}

	bad := &Device{Curve: ec.P256(), ID: ecqv.NewID("blocked"), CAPub: gw.CA.PublicKey(), Rand: newDetRand(10)}
	req2, _ := bad.Start()
	if _, _, err := bad.Finish(gw.Handle(req2)); err == nil {
		t.Fatal("blocked subject enrolled")
	}
}

func TestGatewayRejectsGarbage(t *testing.T) {
	gw := newGateway(t, 11)
	for _, data := range [][]byte{nil, {0x41}, {0x99, 1, 2, 3}, make([]byte, 200)} {
		resp := gw.Handle(data)
		if len(resp) == 0 || resp[0] != OpError {
			t.Errorf("garbage %x did not produce an error reply", data)
		}
	}
	// Off-curve request point.
	good := &Device{Curve: ec.P256(), ID: ecqv.NewID("x"), CAPub: gw.CA.PublicKey(), Rand: newDetRand(12)}
	req, _ := good.Start()
	req[20] ^= 0x01 // corrupt R
	resp := gw.Handle(req)
	if resp[0] != OpError {
		t.Error("corrupted request point accepted")
	}
}

func TestDeviceStateMachine(t *testing.T) {
	gw := newGateway(t, 13)
	dev := &Device{Curve: ec.P256(), ID: ecqv.NewID("ecu"), CAPub: gw.CA.PublicKey(), Rand: newDetRand(14)}
	// Finish before Start.
	if _, _, err := dev.Finish([]byte{OpResponse}); err == nil {
		t.Error("Finish before Start accepted")
	}
	req, _ := dev.Start()
	resp := gw.Handle(req)
	if _, _, err := dev.Finish(resp); err != nil {
		t.Fatal(err)
	}
	// Secret is single-use.
	if _, _, err := dev.Finish(resp); err == nil {
		t.Error("request secret reused")
	}
}

func TestSubjectMismatchRejected(t *testing.T) {
	gw := newGateway(t, 15)
	// Device A starts; response for device B (different subject) must
	// be rejected even if validly issued.
	devA := &Device{Curve: ec.P256(), ID: ecqv.NewID("ecu-a"), CAPub: gw.CA.PublicKey(), Rand: newDetRand(16)}
	devB := &Device{Curve: ec.P256(), ID: ecqv.NewID("ecu-b"), CAPub: gw.CA.PublicKey(), Rand: newDetRand(17)}
	reqA, _ := devA.Start()
	reqB, _ := devB.Start()
	_ = reqA
	respB := gw.Handle(reqB)
	if _, _, err := devA.Finish(respB); err == nil {
		t.Fatal("response for another subject accepted")
	}
}
