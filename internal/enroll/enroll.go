// Package enroll implements the certificate-derivation stage of the
// paper's Figure 1 as a wire protocol: a device sends its ECQV request
// to the central-authority gateway (in the prototype, a Raspberry Pi 4
// reachable over CAN-FD) and receives the certificate plus the
// private-key reconstruction value.
//
// The SEC 4 consistency check (Q = d·G after reconstruction) is the
// integrity anchor: a corrupted or substituted response reconstructs a
// key that fails the check, so enrollment needs no additional
// signature as long as the CA public key was provisioned out of band.
package enroll

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"time"

	"repro/internal/ec"
	"repro/internal/ecqv"
)

// Message op codes on the enrollment channel.
const (
	// OpRequest is a device → gateway certificate request.
	OpRequest byte = 0x41
	// OpResponse is a gateway → device issuance response.
	OpResponse byte = 0x42
	// OpError is a gateway → device rejection.
	OpError byte = 0x4F
)

// wire sizes (P-256): request = ID(16) ‖ R(65 uncompressed);
// response = Cert ‖ r(32).

// Request is the device-side enrollment request.
type Request struct {
	SubjectID ecqv.ID
	R         ec.Point
}

// EncodeRequest serializes a request: op ‖ ID ‖ R (uncompressed).
func EncodeRequest(curve *ec.Curve, req Request) []byte {
	out := []byte{OpRequest}
	out = append(out, req.SubjectID[:]...)
	out = append(out, curve.EncodeUncompressed(req.R)...)
	return out
}

// ErrWire wraps malformed enrollment messages.
var ErrWire = errors.New("enroll: malformed message")

// DecodeRequest parses and validates a request.
func DecodeRequest(curve *ec.Curve, data []byte) (Request, error) {
	want := 1 + ecqv.IDSize + curve.UncompressedPointSize()
	if len(data) != want || data[0] != OpRequest {
		return Request{}, fmt.Errorf("%w: request length %d", ErrWire, len(data))
	}
	var req Request
	copy(req.SubjectID[:], data[1:1+ecqv.IDSize])
	p, err := curve.DecodePoint(data[1+ecqv.IDSize:])
	if err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrWire, err)
	}
	req.R = p
	return req, nil
}

// EncodeResponse serializes an issuance response:
// op ‖ certLen(2) ‖ cert ‖ r.
func EncodeResponse(curve *ec.Curve, cert *ecqv.Certificate, r *big.Int) []byte {
	certBytes := cert.Encode()
	out := []byte{OpResponse}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(certBytes)))
	out = append(out, lenBuf[:]...)
	out = append(out, certBytes...)
	out = append(out, curve.ScalarToBytes(r)...)
	return out
}

// DecodeResponse parses an issuance response.
func DecodeResponse(curve *ec.Curve, data []byte) (*ecqv.Certificate, *big.Int, error) {
	if len(data) < 3 {
		return nil, nil, fmt.Errorf("%w: short response", ErrWire)
	}
	if data[0] == OpError {
		return nil, nil, fmt.Errorf("enroll: gateway rejected request: %s", string(data[1:]))
	}
	if data[0] != OpResponse {
		return nil, nil, fmt.Errorf("%w: op %#x", ErrWire, data[0])
	}
	certLen := int(binary.BigEndian.Uint16(data[1:3]))
	if len(data) != 3+certLen+curve.ByteLen() {
		return nil, nil, fmt.Errorf("%w: response length %d", ErrWire, len(data))
	}
	cert, err := ecqv.Decode(data[3 : 3+certLen])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	r, err := curve.ScalarFromBytes(data[3+certLen:])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	return cert, r, nil
}

// EncodeError serializes a rejection.
func EncodeError(reason string) []byte {
	return append([]byte{OpError}, []byte(reason)...)
}

// Gateway is the CA side of the enrollment protocol.
type Gateway struct {
	CA       *ecqv.CA
	Validity time.Duration
	Usage    ecqv.KeyUsage
	// Clock supplies issuance time; nil selects time.Now.
	Clock func() time.Time
	// Authorize decides whether a subject may enroll; nil allows all.
	Authorize func(id ecqv.ID) bool
}

// Handle processes one enrollment message and returns the reply.
func (g *Gateway) Handle(data []byte) []byte {
	req, err := DecodeRequest(g.CA.Curve, data)
	if err != nil {
		return EncodeError("malformed request")
	}
	if g.Authorize != nil && !g.Authorize(req.SubjectID) {
		return EncodeError("subject not authorized")
	}
	now := time.Now()
	if g.Clock != nil {
		now = g.Clock()
	}
	validity := g.Validity
	if validity == 0 {
		validity = 24 * time.Hour
	}
	usage := g.Usage
	if usage == 0 {
		usage = ecqv.UsageKeyAgreement | ecqv.UsageSignature
	}
	resp, err := g.CA.Issue(ecqv.Request{SubjectID: req.SubjectID, R: req.R}, ecqv.IssueParams{
		ValidFrom: now,
		ValidTo:   now.Add(validity),
		KeyUsage:  usage,
	})
	if err != nil {
		return EncodeError("issuance failed")
	}
	return EncodeResponse(g.CA.Curve, resp.Cert, resp.R)
}

// Device is the enrolling side.
type Device struct {
	Curve *ec.Curve
	ID    ecqv.ID
	CAPub ec.Point
	Rand  io.Reader

	secret *ecqv.RequestSecret
}

// Start produces the enrollment request bytes.
func (d *Device) Start() ([]byte, error) {
	req, sec, err := ecqv.NewRequest(d.Curve, d.ID, d.Rand)
	if err != nil {
		return nil, err
	}
	d.secret = sec
	return EncodeRequest(d.Curve, Request{SubjectID: d.ID, R: req.R}), nil
}

// Finish consumes the gateway response, reconstructs and verifies the
// key pair, and returns the usable credentials.
func (d *Device) Finish(data []byte) (*ecqv.Certificate, *big.Int, error) {
	if d.secret == nil {
		return nil, nil, errors.New("enroll: Finish before Start")
	}
	cert, r, err := DecodeResponse(d.Curve, data)
	if err != nil {
		return nil, nil, err
	}
	if cert.SubjectID != d.ID {
		return nil, nil, errors.New("enroll: response subject mismatch")
	}
	priv, _, err := ecqv.ReconstructPrivateKey(d.secret, &ecqv.Response{Cert: cert, R: r}, d.CAPub)
	if err != nil {
		return nil, nil, fmt.Errorf("enroll: reconstruction check: %w", err)
	}
	d.secret = nil // single use
	return cert, priv, nil
}
