// Package conc provides the bounded-parallelism fan-out primitive
// shared by the batch and fleet paths (certificate issuance, device
// provisioning, session establishment).
package conc

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) through a pool of at most
// parallelism workers (GOMAXPROCS when ≤ 0) and returns once all
// calls complete. fn reports failures itself, typically into an
// index-aligned error slice, so one bad element never aborts the
// rest of the batch.
func ForEach(n, parallelism int, fn func(int)) {
	if n <= 0 {
		return
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
