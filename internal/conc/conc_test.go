package conc

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, parallelism := range []int{-1, 0, 1, 3, 100} {
		const n = 50
		var hits [n]atomic.Int32
		ForEach(n, parallelism, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallelism=%d: index %d hit %d times", parallelism, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachBoundsWorkers(t *testing.T) {
	var live, peak atomic.Int32
	ForEach(64, 4, func(int) {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		live.Add(-1)
	})
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent calls, want ≤ 4", p)
	}
}
