// Package integration runs full-stack tests: the STS handshake state
// machines exchanging real bytes over the complete automotive network
// substrate (CAN-FD frames → ISO-TP fragmentation → Fig. 6 session
// transport), followed by protected application records over the same
// link — the complete system of the paper's Figure 5 test suite, in
// software.
package integration

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/ecqv"
	"repro/internal/enroll"
	"repro/internal/session"
	"repro/internal/transport"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// node bundles one ECU: its credentials and its network endpoint.
type node struct {
	party *core.Party
	ep    *transport.Endpoint
}

// sendSTS ships handshake bytes as one transport message.
func (n *node) sendSTS(t *testing.T, payload []byte) {
	t.Helper()
	if _, err := n.ep.Send(transport.Message{
		CommCode: 0x10, SessionID: 0x0001, OpCode: payload[0], Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
}

// recvSTS polls one handshake message off the bus.
func (n *node) recvSTS(t *testing.T) []byte {
	t.Helper()
	msg, err := n.ep.Poll()
	if err != nil {
		t.Fatal(err)
	}
	return msg.Payload
}

func timeNow() time.Time { return time.Unix(1700000000, 0) }

const timeHour = time.Hour

func setup(t *testing.T, seed int64) (*node, *node, *canbus.Bus) {
	t.Helper()
	net, err := core.NewNetwork(ec.P256(), newDetRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, err := net.Pair("evcc", "bms")
	if err != nil {
		t.Fatal(err)
	}
	bus := canbus.NewBus(canbus.PrototypeRates)
	return &node{party: pa, ep: transport.NewEndpoint(bus.Attach("evcc"), 0x101)},
		&node{party: pb, ep: transport.NewEndpoint(bus.Attach("bms"), 0x102)},
		bus
}

// runLiveHandshake drives a complete STS handshake over the bus and
// returns both key blocks.
func runLiveHandshake(t *testing.T, a, b *node, opt core.STSOptimization) ([]byte, []byte) {
	t.Helper()
	init, err := core.NewInitiator(a.party, opt)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := core.NewResponder(b.party, opt)
	if err != nil {
		t.Fatal(err)
	}

	// A1 over the wire.
	a1, err := init.Start()
	if err != nil {
		t.Fatal(err)
	}
	a.sendSTS(t, a1)

	// B processes A1, answers B1.
	b1, _, err := resp.Handle(b.recvSTS(t))
	if err != nil {
		t.Fatal(err)
	}
	b.sendSTS(t, b1)

	// A processes B1, answers A2.
	a2, _, err := init.Handle(a.recvSTS(t))
	if err != nil {
		t.Fatal(err)
	}
	a.sendSTS(t, a2)

	// B processes A2, ACKs, done.
	b2, doneB, err := resp.Handle(b.recvSTS(t))
	if err != nil {
		t.Fatal(err)
	}
	if !doneB {
		t.Fatal("responder not done after A2")
	}
	b.sendSTS(t, b2)

	// A consumes the ACK.
	if _, doneA, err := init.Handle(a.recvSTS(t)); err != nil || !doneA {
		t.Fatalf("initiator completion: done=%v err=%v", doneA, err)
	}

	keyA, err := init.SessionKey()
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := resp.SessionKey()
	if err != nil {
		t.Fatal(err)
	}
	return keyA, keyB
}

func TestLiveHandshakeOverCANFD(t *testing.T) {
	for _, opt := range []core.STSOptimization{core.OptNone, core.OptI, core.OptII} {
		t.Run(opt.String(), func(t *testing.T) {
			a, b, bus := setup(t, 31)
			keyA, keyB := runLiveHandshake(t, a, b, opt)
			if !bytes.Equal(keyA, keyB) {
				t.Fatal("live handshake keys disagree")
			}
			stats := bus.Stats()
			// 4 handshake messages; the big ones fragment. At least
			// 4 data frames + flow control traffic; all byte counts
			// positive.
			if stats.Frames < 8 {
				t.Errorf("only %d frames on the bus", stats.Frames)
			}
			if stats.WireTime <= 0 || stats.WireTime > 10*time.Millisecond {
				t.Errorf("implausible wire time %v", stats.WireTime)
			}
		})
	}
}

func TestLiveSessionRecordsOverCANFD(t *testing.T) {
	// Handshake, then protected telemetry records over the same bus.
	a, b, _ := setup(t, 32)
	keyA, keyB := runLiveHandshake(t, a, b, core.OptNone)

	chA, _, err := session.NewPair(keyA, session.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	_, chB, err := session.NewPair(keyB, session.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		telemetry := []byte{0xCA, byte(i), 0xFE}
		rec, err := chA.Seal(telemetry)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.ep.Send(transport.Message{
			CommCode: 0x20, SessionID: 0x0001, OpCode: 0x01, Payload: rec,
		}); err != nil {
			t.Fatal(err)
		}
		msg, err := b.ep.Poll()
		if err != nil {
			t.Fatal(err)
		}
		got, err := chB.Open(msg.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, telemetry) {
			t.Fatalf("record %d corrupted", i)
		}
	}

	// Replay at the bus level: re-send the last record; the session
	// layer must reject it even though the transport happily delivers.
	last, _ := chA.Seal([]byte("final"))
	for i := 0; i < 2; i++ {
		if _, err := a.ep.Send(transport.Message{
			CommCode: 0x20, SessionID: 0x0001, OpCode: 0x01, Payload: last,
		}); err != nil {
			t.Fatal(err)
		}
	}
	msg1, err := b.ep.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chB.Open(msg1.Payload); err != nil {
		t.Fatal(err)
	}
	msg2, err := b.ep.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chB.Open(msg2.Payload); err == nil {
		t.Fatal("bus-level replay accepted by the session layer")
	}
}

func TestLiveHandshakeTamperedOnWire(t *testing.T) {
	// A man-in-the-middle flips a certificate byte inside B1 while it
	// crosses the bus; the initiator must abort.
	a, b, _ := setup(t, 33)
	init, _ := core.NewInitiator(a.party, core.OptNone)
	resp, _ := core.NewResponder(b.party, core.OptNone)

	a1, _ := init.Start()
	a.sendSTS(t, a1)
	b1, _, err := resp.Handle(b.recvSTS(t))
	if err != nil {
		t.Fatal(err)
	}
	// MitM: flip a certificate byte before it reaches A.
	b1[30] ^= 0x01
	b.sendSTS(t, b1)
	if _, _, err := init.Handle(a.recvSTS(t)); err == nil {
		t.Fatal("tampered B1 accepted over the wire")
	}
}

func TestEnrollmentOverCANFD(t *testing.T) {
	// The complete Figure 1 pipeline over the bus: a factory-fresh
	// device enrolls with the CA gateway over CAN-FD (stages 1–2),
	// then immediately establishes an STS session with an already-
	// provisioned peer (stage 3).
	rng := newDetRand(35)
	ca, err := ecqv.NewCA(ec.P256(), ecqv.NewID("gateway-ca"), rng)
	if err != nil {
		t.Fatal(err)
	}
	gw := &enroll.Gateway{CA: ca}

	bus := canbus.NewBus(canbus.PrototypeRates)
	epDev := transport.NewEndpoint(bus.Attach("new-ecu"), 0x201)
	epGw := transport.NewEndpoint(bus.Attach("gateway"), 0x202)

	dev := &enroll.Device{
		Curve: ec.P256(),
		ID:    ecqv.NewID("new-ecu"),
		CAPub: ca.PublicKey(),
		Rand:  rng,
	}
	reqBytes, err := dev.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := epDev.Send(transport.Message{CommCode: 0x30, OpCode: reqBytes[0], Payload: reqBytes}); err != nil {
		t.Fatal(err)
	}
	reqMsg, err := epGw.Poll()
	if err != nil {
		t.Fatal(err)
	}
	respBytes := gw.Handle(reqMsg.Payload)
	if _, err := epGw.Send(transport.Message{CommCode: 0x30, OpCode: respBytes[0], Payload: respBytes}); err != nil {
		t.Fatal(err)
	}
	respMsg, err := epDev.Poll()
	if err != nil {
		t.Fatal(err)
	}
	cert, priv, err := dev.Finish(respMsg.Payload)
	if err != nil {
		t.Fatal(err)
	}

	// Stage 3: the freshly enrolled device runs STS with a peer that
	// enrolled directly against the CA.
	peerReq, peerSec, err := ecqv.NewRequest(ec.P256(), ecqv.NewID("old-ecu"), rng)
	if err != nil {
		t.Fatal(err)
	}
	peerResp, err := ca.Issue(peerReq, ecqv.IssueParams{
		ValidFrom: timeNow(), ValidTo: timeNow().Add(24 * timeHour),
		KeyUsage: ecqv.UsageKeyAgreement | ecqv.UsageSignature,
	})
	if err != nil {
		t.Fatal(err)
	}
	peerPriv, _, err := ecqv.ReconstructPrivateKey(peerSec, peerResp, ca.PublicKey())
	if err != nil {
		t.Fatal(err)
	}

	newParty := &core.Party{
		ID: dev.ID, Curve: ec.P256(), Cert: cert, Priv: priv,
		CAPub: ca.PublicKey(), Rand: rng,
	}
	oldParty := &core.Party{
		ID: ecqv.NewID("old-ecu"), Curve: ec.P256(), Cert: peerResp.Cert,
		Priv: peerPriv, CAPub: ca.PublicKey(), Rand: rng,
	}
	res, err := core.NewSTS(core.OptNone).Run(newParty, oldParty)
	if err != nil {
		t.Fatalf("enrolled device failed STS: %v", err)
	}
	if _, err := res.SessionKey(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveBusByteAccounting(t *testing.T) {
	// The handshake's application bytes on the bus must equal the
	// Table II total plus framing: 491 protocol bytes + 4 step codes +
	// 4×4 transport headers.
	a, b, bus := setup(t, 34)
	runLiveHandshake(t, a, b, core.OptNone)
	want := 491 + 4 + 4*transport.HeaderSize
	// Bus payload bytes include ISO-TP PCI bytes and flow-control
	// frames; the protocol share is want. Check bounds: the bus must
	// carry at least want and no more than want + framing slack.
	stats := bus.Stats()
	if stats.Bytes < want {
		t.Errorf("bus carried %d payload bytes, protocol needs %d", stats.Bytes, want)
	}
	if stats.Bytes > want+100 {
		t.Errorf("bus carried %d payload bytes, excessive framing over %d", stats.Bytes, want)
	}
}
