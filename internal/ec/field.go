package ec

import (
	"errors"
	"math/big"
)

// Field helpers: small wrappers over math/big that keep all modular
// reduction in one place. Every function returns a fresh big.Int and
// never aliases its arguments.

// modAdd returns (a + b) mod p.
func modAdd(a, b, p *big.Int) *big.Int {
	r := new(big.Int).Add(a, b)
	return r.Mod(r, p)
}

// modSub returns (a − b) mod p.
func modSub(a, b, p *big.Int) *big.Int {
	r := new(big.Int).Sub(a, b)
	return r.Mod(r, p)
}

// modMul returns (a · b) mod p.
func modMul(a, b, p *big.Int) *big.Int {
	r := new(big.Int).Mul(a, b)
	return r.Mod(r, p)
}

// modSqr returns a² mod p.
func modSqr(a, p *big.Int) *big.Int {
	r := new(big.Int).Mul(a, a)
	return r.Mod(r, p)
}

// modNeg returns (−a) mod p.
func modNeg(a, p *big.Int) *big.Int {
	r := new(big.Int).Mod(a, p)
	if r.Sign() == 0 {
		return r
	}
	return r.Sub(p, r)
}

// modInv returns a⁻¹ mod p. It returns an error when a ≡ 0 (mod p),
// which has no inverse.
func modInv(a, p *big.Int) (*big.Int, error) {
	if new(big.Int).Mod(a, p).Sign() == 0 {
		return nil, errors.New("ec: no modular inverse of zero")
	}
	r := new(big.Int).ModInverse(a, p)
	if r == nil {
		return nil, errors.New("ec: modular inverse does not exist")
	}
	return r, nil
}

// ErrNotSquare is returned by modSqrt when the argument is a quadratic
// non-residue, i.e. the point-decompression x has no matching y.
var ErrNotSquare = errors.New("ec: value is not a quadratic residue")

// modSqrt returns a square root of a modulo p, for primes p ≡ 3 (mod 4)
// (true for all bundled curves): r = a^((p+1)/4) mod p. It verifies the
// result and returns ErrNotSquare when a has no square root.
func modSqrt(a, p *big.Int) (*big.Int, error) {
	if p.Bit(0) != 1 || p.Bit(1) != 1 {
		// Fall back to the general Tonelli–Shanks in math/big.
		r := new(big.Int).ModSqrt(a, p)
		if r == nil {
			return nil, ErrNotSquare
		}
		return r, nil
	}
	exp := new(big.Int).Add(p, big.NewInt(1))
	exp.Rsh(exp, 2)
	r := new(big.Int).Exp(a, exp, p)
	if modSqr(r, p).Cmp(new(big.Int).Mod(a, p)) != 0 {
		return nil, ErrNotSquare
	}
	return r, nil
}
