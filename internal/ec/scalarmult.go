package ec

import "math/big"

// Scalar multiplication. Three strategies are provided:
//
//   - ScalarMult: 5-bit wNAF with an on-the-fly odd-multiples table,
//     used for arbitrary points (ECDH premaster, ECQV reconstruction).
//   - ScalarBaseMult: same recoding against a cached table of odd
//     multiples of G.
//   - CombinedMult: Shamir's trick / Strauss interleaving for
//     u1·G + u2·Q, the hot path of ECDSA verification.
//
// All strategies are variable time; see the package comment.

const wnafWindow = 5 // window width; table holds 2^(w-2) odd multiples

// wnaf returns the width-w non-adjacent form of k, least significant
// digit first. Digits are odd integers in (−2^(w−1), 2^(w−1)) or zero.
func wnaf(k *big.Int, w uint) []int8 {
	if k.Sign() == 0 {
		return nil
	}
	var digits []int8
	d := new(big.Int).Set(k)
	mod := int64(1) << w        // 2^w
	half := int64(1) << (w - 1) // 2^(w−1)
	for d.Sign() > 0 {
		if d.Bit(0) == 1 {
			r := new(big.Int).And(d, big.NewInt(mod-1)).Int64()
			if r >= half {
				r -= mod
			}
			digits = append(digits, int8(r))
			d.Sub(d, big.NewInt(r))
		} else {
			digits = append(digits, 0)
		}
		d.Rsh(d, 1)
	}
	return digits
}

// oddMultiples returns [P, 3P, 5P, ..., (2^(w−1)−1)P] in Jacobian form.
func (c *Curve) oddMultiples(p Point, w uint) []*jacobianPoint {
	count := 1 << (w - 2)
	table := make([]*jacobianPoint, count)
	table[0] = c.toJacobian(p)
	twoP := c.jacDouble(table[0])
	for i := 1; i < count; i++ {
		table[i] = c.jacAdd(table[i-1], twoP)
	}
	return table
}

// scalarMultWNAF evaluates k·P given a precomputed odd-multiples table.
func (c *Curve) scalarMultWNAF(table []*jacobianPoint, k *big.Int) *jacobianPoint {
	digits := wnaf(k, wnafWindow)
	acc := c.jacInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		d := digits[i]
		switch {
		case d > 0:
			acc = c.jacAdd(acc, table[(d-1)/2])
		case d < 0:
			acc = c.jacAdd(acc, c.jacNeg(table[(-d-1)/2]))
		}
	}
	return acc
}

// ScalarMult returns k·P. The scalar is reduced modulo the group order;
// k ≡ 0 or P = ∞ yields the point at infinity.
func (c *Curve) ScalarMult(p Point, k *big.Int) Point {
	if p.IsInfinity() {
		return Point{}
	}
	kr := new(big.Int).Mod(k, c.N)
	if kr.Sign() == 0 {
		return Point{}
	}
	table := c.oddMultiples(p, wnafWindow)
	return c.fromJacobian(c.scalarMultWNAF(table, kr))
}

// ScalarMultNaive is the schoolbook double-and-add ladder, retained as
// a correctness oracle and as the baseline of the scalar-multiplication
// ablation bench.
func (c *Curve) ScalarMultNaive(p Point, k *big.Int) Point {
	if p.IsInfinity() {
		return Point{}
	}
	kr := new(big.Int).Mod(k, c.N)
	if kr.Sign() == 0 {
		return Point{}
	}
	acc := c.jacInfinity()
	add := c.toJacobian(p)
	for i := kr.BitLen() - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		if kr.Bit(i) == 1 {
			acc = c.jacAdd(acc, add)
		}
	}
	return c.fromJacobian(acc)
}

// batchToAffine converts Jacobian points to affine with a single field
// inversion (Montgomery's trick): invert the product of all Z values,
// then peel off individual inverses by multiplication.
func (c *Curve) batchToAffine(points []*jacobianPoint) []Point {
	n := len(points)
	out := make([]Point, n)
	// prefix[i] = z_0 · z_1 · … · z_{i-1}
	prefix := make([]*big.Int, n+1)
	prefix[0] = big.NewInt(1)
	for i, p := range points {
		if p.isInfinity() {
			prefix[i+1] = prefix[i]
			continue
		}
		prefix[i+1] = modMul(prefix[i], p.z, c.P)
	}
	inv, err := modInv(prefix[n], c.P)
	if err != nil {
		// Only possible if every point was infinity.
		return out
	}
	for i := n - 1; i >= 0; i-- {
		p := points[i]
		if p.isInfinity() {
			continue
		}
		zinv := modMul(prefix[i], inv, c.P) // z_i⁻¹
		inv = modMul(inv, p.z, c.P)
		zinv2 := modSqr(zinv, c.P)
		out[i] = Point{
			X: modMul(p.x, zinv2, c.P),
			Y: modMul(p.y, modMul(zinv2, zinv, c.P), c.P),
		}
	}
	return out
}

// baseMultiples returns the cached odd-multiples table for G in affine
// form, enabling the cheaper mixed addition in the wNAF loop.
func (c *Curve) baseMultiples() []Point {
	c.baseOnce.Do(func() {
		c.baseTable = c.batchToAffine(c.oddMultiples(c.Generator(), wnafWindow))
	})
	return c.baseTable
}

// scalarMultWNAFAffine is scalarMultWNAF against an affine table,
// using mixed (Jacobian + affine) additions.
func (c *Curve) scalarMultWNAFAffine(table []Point, k *big.Int) *jacobianPoint {
	digits := wnaf(k, wnafWindow)
	acc := c.jacInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		d := digits[i]
		switch {
		case d > 0:
			acc = c.jacAddAffine(acc, table[(d-1)/2])
		case d < 0:
			acc = c.jacAddAffine(acc, c.Neg(table[(-d-1)/2]))
		}
	}
	return acc
}

// ScalarBaseMult returns k·G using the cached affine base-point table.
func (c *Curve) ScalarBaseMult(k *big.Int) Point {
	kr := new(big.Int).Mod(k, c.N)
	if kr.Sign() == 0 {
		return Point{}
	}
	return c.fromJacobian(c.scalarMultWNAFAffine(c.baseMultiples(), kr))
}

// CombinedMult returns u1·G + u2·Q via Strauss–Shamir interleaving:
// one shared doubling chain with per-scalar wNAF digit additions. This
// nearly halves the doublings of two independent multiplications and is
// the standard ECDSA-verify optimisation.
func (c *Curve) CombinedMult(q Point, u1, u2 *big.Int) Point {
	u1r := new(big.Int).Mod(u1, c.N)
	u2r := new(big.Int).Mod(u2, c.N)
	if q.IsInfinity() || u2r.Sign() == 0 {
		return c.ScalarBaseMult(u1r)
	}
	if u1r.Sign() == 0 {
		return c.ScalarMult(q, u2r)
	}

	gTable := c.baseMultiples() // affine: mixed additions
	qTable := c.oddMultiples(q, wnafWindow)
	d1 := wnaf(u1r, wnafWindow)
	d2 := wnaf(u2r, wnafWindow)

	n := len(d1)
	if len(d2) > n {
		n = len(d2)
	}
	acc := c.jacInfinity()
	for i := n - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		if i < len(d1) {
			if d := d1[i]; d > 0 {
				acc = c.jacAddAffine(acc, gTable[(d-1)/2])
			} else if d < 0 {
				acc = c.jacAddAffine(acc, c.Neg(gTable[(-d-1)/2]))
			}
		}
		if i < len(d2) {
			if d := d2[i]; d > 0 {
				acc = c.jacAdd(acc, qTable[(d-1)/2])
			} else if d < 0 {
				acc = c.jacAdd(acc, c.jacNeg(qTable[(-d-1)/2]))
			}
		}
	}
	return c.fromJacobian(acc)
}
