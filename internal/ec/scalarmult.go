package ec

import "math/big"

// Scalar multiplication. Three strategies are provided:
//
//   - ScalarMult: 5-bit wNAF with an on-the-fly odd-multiples table,
//     used for arbitrary points (ECDH premaster, ECQV reconstruction).
//   - ScalarBaseMult: fixed-base comb over a cached per-curve table
//     (no doublings at all on the default backend).
//   - CombinedMult: u1·G + u2·Q, the hot path of ECDSA verification.
//
// Each strategy has two implementations: the default fixed-limb
// Montgomery backend (backend_fp.go, O(1) allocations per call) and
// the original math/big path below, retained as a differential oracle
// and selectable with -tags ec_purebig. All strategies are variable
// time; see the package comment.

const wnafWindow = 5 // window width; table holds 2^(w-2) odd multiples

// wnaf returns the width-w non-adjacent form of k, least significant
// digit first. Digits are odd integers in (−2^(w−1), 2^(w−1)) or zero.
// One scratch big.Int serves every digit; the only remaining per-call
// allocations are the scratch, the working copy of k and the digit
// slice. (The fp backend uses the fully allocation-free wnafFixed.)
func wnaf(k *big.Int, w uint) []int8 {
	if k.Sign() == 0 {
		return nil
	}
	digits := make([]int8, 0, k.BitLen()+1)
	d := new(big.Int).Set(k)
	scratch := new(big.Int)
	mod := int64(1) << w        // 2^w
	half := int64(1) << (w - 1) // 2^(w−1)
	for d.Sign() > 0 {
		if d.Bit(0) == 1 {
			r := scratch.And(d, scratch.SetInt64(mod-1)).Int64()
			if r >= half {
				r -= mod
			}
			digits = append(digits, int8(r))
			d.Sub(d, scratch.SetInt64(r))
		} else {
			digits = append(digits, 0)
		}
		d.Rsh(d, 1)
	}
	return digits
}

// oddMultiples returns [P, 3P, 5P, ..., (2^(w−1)−1)P] in Jacobian form.
func (c *Curve) oddMultiples(p Point, w uint) []*jacobianPoint {
	count := 1 << (w - 2)
	table := make([]*jacobianPoint, count)
	table[0] = c.toJacobian(p)
	twoP := c.jacDouble(table[0])
	for i := 1; i < count; i++ {
		table[i] = c.jacAdd(table[i-1], twoP)
	}
	return table
}

// scalarMultWNAF evaluates k·P given a precomputed odd-multiples table.
func (c *Curve) scalarMultWNAF(table []*jacobianPoint, k *big.Int) *jacobianPoint {
	digits := wnaf(k, wnafWindow)
	acc := c.jacInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		d := digits[i]
		switch {
		case d > 0:
			acc = c.jacAdd(acc, table[(d-1)/2])
		case d < 0:
			acc = c.jacAdd(acc, c.jacNeg(table[(-d-1)/2]))
		}
	}
	return acc
}

// reduceScalar returns k mod n, or nil when the result is zero.
func (c *Curve) reduceScalar(k *big.Int) *big.Int {
	kr := new(big.Int).Mod(k, c.N)
	if kr.Sign() == 0 {
		return nil
	}
	return kr
}

// ScalarMult returns k·P. The scalar is reduced modulo the group order;
// k ≡ 0 or P = ∞ yields the point at infinity.
func (c *Curve) ScalarMult(p Point, k *big.Int) Point {
	if !c.useFP() {
		return c.scalarMultBig(p, k)
	}
	if p.IsInfinity() {
		return Point{}
	}
	kr := c.reduceScalar(k)
	if kr == nil {
		return Point{}
	}
	return c.scalarMultFP(p, kr)
}

// scalarMultBig is the math/big wNAF path, exposed internally as the
// differential oracle for the fp backend.
func (c *Curve) scalarMultBig(p Point, k *big.Int) Point {
	if p.IsInfinity() {
		return Point{}
	}
	kr := c.reduceScalar(k)
	if kr == nil {
		return Point{}
	}
	table := c.oddMultiples(p, wnafWindow)
	return c.fromJacobian(c.scalarMultWNAF(table, kr))
}

// ScalarMultNaive is the schoolbook double-and-add ladder, retained as
// a correctness oracle and as the baseline of the scalar-multiplication
// ablation bench. It runs on the same field backend as ScalarMult so
// the ablation isolates the recoding algorithm, not the field layer.
func (c *Curve) ScalarMultNaive(p Point, k *big.Int) Point {
	if p.IsInfinity() {
		return Point{}
	}
	kr := c.reduceScalar(k)
	if kr == nil {
		return Point{}
	}
	if c.useFP() {
		return c.scalarMultNaiveFP(p, kr)
	}
	acc := c.jacInfinity()
	add := c.toJacobian(p)
	for i := kr.BitLen() - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		if kr.Bit(i) == 1 {
			acc = c.jacAdd(acc, add)
		}
	}
	return c.fromJacobian(acc)
}

// batchToAffine converts Jacobian points to affine with a single field
// inversion (Montgomery's trick): invert the product of all Z values,
// then peel off individual inverses by multiplication.
func (c *Curve) batchToAffine(points []*jacobianPoint) []Point {
	n := len(points)
	out := make([]Point, n)
	// prefix[i] = z_0 · z_1 · … · z_{i-1}
	prefix := make([]*big.Int, n+1)
	prefix[0] = big.NewInt(1)
	for i, p := range points {
		if p.isInfinity() {
			prefix[i+1] = prefix[i]
			continue
		}
		prefix[i+1] = modMul(prefix[i], p.z, c.P)
	}
	inv, err := modInv(prefix[n], c.P)
	if err != nil {
		// Only possible if every point was infinity.
		return out
	}
	for i := n - 1; i >= 0; i-- {
		p := points[i]
		if p.isInfinity() {
			continue
		}
		zinv := modMul(prefix[i], inv, c.P) // z_i⁻¹
		inv = modMul(inv, p.z, c.P)
		zinv2 := modSqr(zinv, c.P)
		out[i] = Point{
			X: modMul(p.x, zinv2, c.P),
			Y: modMul(p.y, modMul(zinv2, zinv, c.P), c.P),
		}
	}
	return out
}

// baseMultiples returns the cached odd-multiples table for G in affine
// form, enabling the cheaper mixed addition in the big-path wNAF loop.
func (c *Curve) baseMultiples() []Point {
	c.baseOnce.Do(func() {
		c.baseTable = c.batchToAffine(c.oddMultiples(c.Generator(), wnafWindow))
	})
	return c.baseTable
}

// scalarMultWNAFAffine is scalarMultWNAF against an affine table,
// using mixed (Jacobian + affine) additions.
func (c *Curve) scalarMultWNAFAffine(table []Point, k *big.Int) *jacobianPoint {
	digits := wnaf(k, wnafWindow)
	acc := c.jacInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		d := digits[i]
		switch {
		case d > 0:
			acc = c.jacAddAffine(acc, table[(d-1)/2])
		case d < 0:
			acc = c.jacAddAffine(acc, c.Neg(table[(-d-1)/2]))
		}
	}
	return acc
}

// ScalarBaseMult returns k·G. On the default backend this walks the
// fixed-base comb table (mixed additions only); the oracle path uses
// the cached affine odd-multiples table.
func (c *Curve) ScalarBaseMult(k *big.Int) Point {
	if !c.useFP() {
		return c.scalarBaseMultBig(k)
	}
	kr := c.reduceScalar(k)
	if kr == nil {
		return Point{}
	}
	return c.scalarBaseMultFP(kr)
}

// scalarBaseMultBig is the math/big base-point path (differential
// oracle).
func (c *Curve) scalarBaseMultBig(k *big.Int) Point {
	kr := c.reduceScalar(k)
	if kr == nil {
		return Point{}
	}
	return c.fromJacobian(c.scalarMultWNAFAffine(c.baseMultiples(), kr))
}

// CombinedMult returns u1·G + u2·Q — the ECDSA verification hot path.
// The default backend runs the u2 chain in fixed-limb wNAF and folds
// the base term in through the comb table; the oracle path uses
// Strauss–Shamir interleaving.
func (c *Curve) CombinedMult(q Point, u1, u2 *big.Int) Point {
	u1r := new(big.Int).Mod(u1, c.N)
	u2r := new(big.Int).Mod(u2, c.N)
	if q.IsInfinity() || u2r.Sign() == 0 {
		return c.ScalarBaseMult(u1r)
	}
	if u1r.Sign() == 0 {
		return c.ScalarMult(q, u2r)
	}
	if c.useFP() {
		return c.combinedMultFP(q, u1r, u2r)
	}
	return c.combinedMultBigReduced(q, u1r, u2r)
}

// combinedMultBig is the math/big Strauss–Shamir path (differential
// oracle).
func (c *Curve) combinedMultBig(q Point, u1, u2 *big.Int) Point {
	u1r := new(big.Int).Mod(u1, c.N)
	u2r := new(big.Int).Mod(u2, c.N)
	if q.IsInfinity() || u2r.Sign() == 0 {
		return c.scalarBaseMultBig(u1r)
	}
	if u1r.Sign() == 0 {
		return c.scalarMultBig(q, u2r)
	}
	return c.combinedMultBigReduced(q, u1r, u2r)
}

// straussInterleave is the shared doubling chain of Strauss–Shamir
// interleaving over reduced nonzero scalars: base-table mixed
// additions for u1's digits, with qAdd folding in each nonzero digit
// of u2's Q term. Both CombinedMult oracle paths (fresh Jacobian
// table and cached affine MultTable) share this loop.
func (c *Curve) straussInterleave(u1r, u2r *big.Int, qAdd func(*jacobianPoint, int8) *jacobianPoint) *jacobianPoint {
	gTable := c.baseMultiples() // affine: mixed additions
	d1 := wnaf(u1r, wnafWindow)
	d2 := wnaf(u2r, wnafWindow)

	n := len(d1)
	if len(d2) > n {
		n = len(d2)
	}
	acc := c.jacInfinity()
	for i := n - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		if i < len(d1) {
			if d := d1[i]; d > 0 {
				acc = c.jacAddAffine(acc, gTable[(d-1)/2])
			} else if d < 0 {
				acc = c.jacAddAffine(acc, c.Neg(gTable[(-d-1)/2]))
			}
		}
		if i < len(d2) {
			if d := d2[i]; d != 0 {
				acc = qAdd(acc, d)
			}
		}
	}
	return acc
}

// combinedMultBigReduced interleaves against an on-the-fly Jacobian
// odd-multiples table of Q, nearly halving the doublings of two
// independent multiplications.
func (c *Curve) combinedMultBigReduced(q Point, u1r, u2r *big.Int) Point {
	qAdd := c.qTableAdd(c.oddMultiples(q, wnafWindow))
	return c.fromJacobian(c.straussInterleave(u1r, u2r, qAdd))
}
