package ec

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestCombinedMultDeferredMatchesEager: normalizing a deferred
// CombinedMult must be bit-identical to the eager call, on whichever
// backend the build selected (the purebig CI leg reruns this file
// against the oracle), including every degenerate dispatch arm.
func TestCombinedMultDeferredMatchesEager(t *testing.T) {
	for _, c := range []*Curve{P256(), P224(), P192()} {
		r := rand.New(rand.NewSource(17))
		d := new(big.Int).Rand(r, c.N)
		q := c.ScalarBaseMult(d)

		cases := []struct {
			name   string
			q      Point
			u1, u2 *big.Int
		}{
			{"generic", q, new(big.Int).Rand(r, c.N), new(big.Int).Rand(r, c.N)},
			{"u1-zero", q, big.NewInt(0), new(big.Int).Rand(r, c.N)},
			{"u2-zero", q, new(big.Int).Rand(r, c.N), big.NewInt(0)},
			{"both-zero", q, big.NewInt(0), big.NewInt(0)},
			{"q-infinity", Point{}, new(big.Int).Rand(r, c.N), new(big.Int).Rand(r, c.N)},
			{"u1-equals-n", q, new(big.Int).Set(c.N), new(big.Int).Rand(r, c.N)},
			{"unreduced", q, new(big.Int).Lsh(big.NewInt(7), 300), new(big.Int).Lsh(big.NewInt(11), 290)},
		}
		for _, tc := range cases {
			want := c.CombinedMult(tc.q, tc.u1, tc.u2)
			def := c.CombinedMultDeferred(tc.q, tc.u1, tc.u2)
			if got := def.Normalize(); !got.Equal(want) {
				t.Fatalf("%s/%s: deferred Normalize = %v, eager = %v", c.Name, tc.name, got, want)
			}
			if def.IsInfinity() != want.IsInfinity() {
				t.Fatalf("%s/%s: deferred IsInfinity = %v, eager point infinity = %v",
					c.Name, tc.name, def.IsInfinity(), want.IsInfinity())
			}
		}
	}
}

// TestMultTableCombinedMultDeferred drives the table-backed deferred
// path against both the eager table path and the table-less curve
// path.
func TestMultTableCombinedMultDeferred(t *testing.T) {
	for _, c := range []*Curve{P256(), P224(), P192()} {
		r := rand.New(rand.NewSource(19))
		d := new(big.Int).Rand(r, c.N)
		q := c.ScalarBaseMult(d)
		tab := c.NewMultTable(q)
		infTab := c.NewMultTable(Point{})

		for i := 0; i < 8; i++ {
			u1 := new(big.Int).Rand(r, c.N)
			u2 := new(big.Int).Rand(r, c.N)
			switch i {
			case 5:
				u1.SetInt64(0)
			case 6:
				u2.SetInt64(0)
			case 7:
				u1.SetInt64(0)
				u2.SetInt64(0)
			}
			want := tab.CombinedMult(u1, u2)
			if got := c.CombinedMult(q, u1, u2); !got.Equal(want) {
				t.Fatalf("%s: table eager disagrees with curve eager", c.Name)
			}
			def := tab.CombinedMultDeferred(u1, u2)
			if got := def.Normalize(); !got.Equal(want) {
				t.Fatalf("%s: table deferred = %v, eager = %v", c.Name, got, want)
			}
			wantInf := infTab.CombinedMult(u1, u2)
			defInf := infTab.CombinedMultDeferred(u1, u2)
			if got := defInf.Normalize(); !got.Equal(wantInf) {
				t.Fatalf("%s: infinity-table deferred = %v, eager = %v", c.Name, got, wantInf)
			}
		}
	}
}

// TestBatchNormalize exercises the shared-inversion conversion over
// batches mixing finite results, infinities, zero-value entries and —
// in the mixed subtest — all three curves at once.
func TestBatchNormalize(t *testing.T) {
	t.Run("single-curve", func(t *testing.T) {
		c := P256()
		r := rand.New(rand.NewSource(23))
		n := 33
		defs := make([]DeferredPoint, n)
		want := make([]Point, n)
		for i := range defs {
			d := new(big.Int).Rand(r, c.N)
			q := c.ScalarBaseMult(d)
			u1 := new(big.Int).Rand(r, c.N)
			u2 := new(big.Int).Rand(r, c.N)
			switch i % 7 {
			case 3:
				u1.SetInt64(0)
			case 5:
				// Force an infinity result: u1·G + u2·Q with Q = −(u1/u2)·G
				// is fiddly; just use the zero-value DeferredPoint.
				defs[i] = DeferredPoint{}
				want[i] = Point{}
				continue
			}
			defs[i] = c.CombinedMultDeferred(q, u1, u2)
			want[i] = c.CombinedMult(q, u1, u2)
		}
		got := BatchNormalize(defs)
		if len(got) != n {
			t.Fatalf("BatchNormalize returned %d points, want %d", len(got), n)
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("BatchNormalize[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})

	t.Run("empty", func(t *testing.T) {
		if got := BatchNormalize(nil); len(got) != 0 {
			t.Fatalf("BatchNormalize(nil) = %v", got)
		}
	})

	t.Run("all-infinity", func(t *testing.T) {
		c := P256()
		defs := []DeferredPoint{
			{},
			c.CombinedMultDeferred(Point{}, big.NewInt(0), big.NewInt(0)),
		}
		for i, p := range BatchNormalize(defs) {
			if !p.IsInfinity() {
				t.Fatalf("entry %d: want infinity, got %v", i, p)
			}
		}
	})

	t.Run("mixed-curves", func(t *testing.T) {
		curves := []*Curve{P256(), P224(), P192()}
		r := rand.New(rand.NewSource(29))
		var defs []DeferredPoint
		var want []Point
		for i := 0; i < 12; i++ {
			c := curves[i%3]
			d := new(big.Int).Rand(r, c.N)
			q := c.ScalarBaseMult(d)
			u1 := new(big.Int).Rand(r, c.N)
			u2 := new(big.Int).Rand(r, c.N)
			defs = append(defs, c.CombinedMultDeferred(q, u1, u2))
			want = append(want, c.CombinedMult(q, u1, u2))
		}
		got := BatchNormalize(defs)
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("mixed-curve BatchNormalize[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})
}

// BenchmarkMultTableBuild measures the cost the SharedTableCache
// amortizes away fleet-wide: one odd-multiples precomputation plus one
// shared-inversion affine conversion.
func BenchmarkMultTableBuild(b *testing.B) {
	c := P256()
	q := c.ScalarBaseMult(big.NewInt(0x5eed))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.NewMultTable(q)
	}
}

// BenchmarkBatchNormalize pits the shared-inversion conversion against
// per-point Normalize at an EstablishAll-wave batch size.
func BenchmarkBatchNormalize(b *testing.B) {
	c := P256()
	r := rand.New(rand.NewSource(31))
	const n = 16
	defs := make([]DeferredPoint, n)
	for i := range defs {
		d := new(big.Int).Rand(r, c.N)
		q := c.ScalarBaseMult(d)
		defs[i] = c.CombinedMultDeferred(q, new(big.Int).Rand(r, c.N), new(big.Int).Rand(r, c.N))
	}
	b.Run("batch-16", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = BatchNormalize(defs)
		}
	})
	b.Run("sequential-16", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range defs {
				_ = defs[j].Normalize()
			}
		}
	})
}
