package ec

import (
	"encoding/binary"
	"math/big"

	"repro/internal/ec/fp"
)

// Limb-based point arithmetic — the default backend of the EC hot
// path. Points are held as Jacobian triples of Montgomery-form
// fp.Elements and every group operation works in place with
// caller-provided scratch, so the wNAF/comb loops of scalar
// multiplication perform O(1) heap allocations regardless of scalar
// size. Conversion to big.Int affine coordinates happens only at the
// public API boundary.
//
// The math/big implementation in jacobian.go is retained verbatim as a
// differential oracle and as a build-selectable fallback
// (-tags ec_purebig); see backend_select.go.

// fpJac is a Jacobian point (X : Y : Z) over fp elements, x = X/Z²,
// y = Y/Z³. Z = 0 encodes the point at infinity.
type fpJac struct {
	x, y, z fp.Element
}

// fpAffine is an affine point over fp elements, used for precomputed
// tables (mixed addition). Tables never contain the point at infinity:
// on cofactor-1 curves every finite multiple of a finite point is
// finite.
type fpAffine struct {
	x, y fp.Element
}

// fpScratch is the caller-provided temporary store for the in-place
// group operations. One scratch serves an entire scalar-multiplication
// loop; it carries no state between calls.
type fpScratch struct {
	t [12]fp.Element
}

func (c *Curve) fpSetInfinity(p *fpJac) {
	p.x = c.fpF.One()
	p.y = c.fpF.One()
	p.z = fp.Element{}
}

func (c *Curve) fpIsInfinity(p *fpJac) bool { return c.fpF.IsZero(&p.z) }

// fpFromAffinePoint loads a finite affine point into Jacobian form
// (Z = 1).
func (c *Curve) fpFromAffinePoint(out *fpJac, p Point) {
	c.fpF.FromBig(&out.x, p.X)
	c.fpF.FromBig(&out.y, p.Y)
	out.z = c.fpF.One()
}

// fpToPoint converts back to big.Int affine coordinates — the single
// inversion of a scalar-multiplication call.
func (c *Curve) fpToPoint(p *fpJac) Point {
	f := c.fpF
	if c.fpIsInfinity(p) {
		return Point{}
	}
	var zinv, zinv2, x, y fp.Element
	f.Inv(&zinv, &p.z)
	f.Sqr(&zinv2, &zinv)
	f.Mul(&x, &p.x, &zinv2)
	f.Mul(&y, &zinv2, &zinv)
	f.Mul(&y, &p.y, &y)
	return Point{X: f.ToBig(&x), Y: f.ToBig(&y)}
}

// fpDouble sets p = 2p in place (dbl-2007-bl, with the a = −3 shortcut
// used by all bundled curves).
func (c *Curve) fpDouble(p *fpJac, s *fpScratch) {
	f := c.fpF
	if f.IsZero(&p.z) || f.IsZero(&p.y) {
		c.fpSetInfinity(p)
		return
	}
	xx, yy, yyyy, zz := &s.t[0], &s.t[1], &s.t[2], &s.t[3]
	sS, m, tmp := &s.t[4], &s.t[5], &s.t[6]
	x3, y3, z3 := &s.t[7], &s.t[8], &s.t[9]

	f.Sqr(xx, &p.x)
	f.Sqr(yy, &p.y)
	f.Sqr(yyyy, yy)
	f.Sqr(zz, &p.z)

	// S = 2·((X+YY)² − XX − YYYY)
	f.Add(sS, &p.x, yy)
	f.Sqr(sS, sS)
	f.Sub(sS, sS, xx)
	f.Sub(sS, sS, yyyy)
	f.Dbl(sS, sS)

	// M = 3·XX + a·ZZ² ; for a = −3: M = 3·(X−ZZ)(X+ZZ)
	if c.aIsMinus3 {
		f.Sub(m, &p.x, zz)
		f.Add(tmp, &p.x, zz)
		f.Mul(m, m, tmp)
		f.Dbl(tmp, m)
		f.Add(m, tmp, m)
	} else {
		f.Dbl(m, xx)
		f.Add(m, m, xx)
		f.Sqr(tmp, zz)
		f.Mul(tmp, tmp, &c.fpA)
		f.Add(m, m, tmp)
	}

	// X' = M² − 2S
	f.Sqr(x3, m)
	f.Dbl(tmp, sS)
	f.Sub(x3, x3, tmp)

	// Y' = M·(S − X') − 8·YYYY
	f.Sub(tmp, sS, x3)
	f.Mul(y3, m, tmp)
	f.Dbl(yyyy, yyyy)
	f.Dbl(yyyy, yyyy)
	f.Dbl(yyyy, yyyy)
	f.Sub(y3, y3, yyyy)

	// Z' = (Y+Z)² − YY − ZZ
	f.Add(tmp, &p.y, &p.z)
	f.Sqr(z3, tmp)
	f.Sub(z3, z3, yy)
	f.Sub(z3, z3, zz)

	p.x, p.y, p.z = *x3, *y3, *z3
}

// fpAddJac sets p = p + q (or p − q when neg) in place, add-2007-bl.
// q must not alias p; the doubling and inverse cases fall back
// correctly.
func (c *Curve) fpAddJac(p *fpJac, q *fpJac, neg bool, s *fpScratch) {
	f := c.fpF
	if c.fpIsInfinity(q) {
		return
	}
	if c.fpIsInfinity(p) {
		*p = *q
		if neg {
			f.Neg(&p.y, &p.y)
		}
		return
	}
	z1z1, z2z2 := &s.t[0], &s.t[1]
	u1, u2, s1, s2 := &s.t[2], &s.t[3], &s.t[4], &s.t[5]
	h, i, j, r, v, tmp := &s.t[6], &s.t[7], &s.t[8], &s.t[9], &s.t[10], &s.t[11]

	f.Sqr(z1z1, &p.z)
	f.Sqr(z2z2, &q.z)
	f.Mul(u1, &p.x, z2z2)
	f.Mul(u2, &q.x, z1z1)
	f.Mul(s1, &q.z, z2z2)
	f.Mul(s1, &p.y, s1)
	f.Mul(s2, &p.z, z1z1)
	f.Mul(s2, &q.y, s2)
	if neg {
		f.Neg(s2, s2)
	}

	if f.Equal(u1, u2) {
		if !f.Equal(s1, s2) {
			c.fpSetInfinity(p) // p = −q' (group inverse)
			return
		}
		c.fpDouble(p, s) // p = q' as group elements
		return
	}

	f.Sub(h, u2, u1)
	f.Dbl(i, h)
	f.Sqr(i, i)
	f.Mul(j, h, i)
	f.Sub(r, s2, s1)
	f.Dbl(r, r)
	f.Mul(v, u1, i) // i free after this

	// X3 = r² − J − 2V
	f.Sqr(i, r)
	f.Sub(i, i, j)
	f.Dbl(tmp, v)
	f.Sub(i, i, tmp) // x3 in i

	// Y3 = r·(V − X3) − 2·S1·J
	f.Sub(tmp, v, i)
	f.Mul(tmp, r, tmp)
	f.Mul(s1, s1, j)
	f.Dbl(s1, s1)
	f.Sub(tmp, tmp, s1) // y3 in tmp

	// Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H
	f.Add(r, &p.z, &q.z)
	f.Sqr(r, r)
	f.Sub(r, r, z1z1)
	f.Sub(r, r, z2z2)
	f.Mul(r, r, h) // z3 in r

	p.x, p.y, p.z = *i, *tmp, *r
}

// fpAddAffine sets p = p + q (or p − q when neg) for an affine q —
// the mixed addition (madd-2007-bl) used against precomputed tables.
func (c *Curve) fpAddAffine(p *fpJac, q *fpAffine, neg bool, s *fpScratch) {
	f := c.fpF
	if c.fpIsInfinity(p) {
		p.x = q.x
		p.y = q.y
		if neg {
			f.Neg(&p.y, &p.y)
		}
		p.z = c.fpF.One()
		return
	}
	z1z1, u2, s2 := &s.t[0], &s.t[1], &s.t[2]
	h, hh, i, j, r, v, tmp := &s.t[3], &s.t[4], &s.t[5], &s.t[6], &s.t[7], &s.t[8], &s.t[9]

	f.Sqr(z1z1, &p.z)
	f.Mul(u2, &q.x, z1z1)
	f.Mul(s2, &p.z, z1z1)
	f.Mul(s2, &q.y, s2)
	if neg {
		f.Neg(s2, s2)
	}

	if f.Equal(&p.x, u2) {
		if !f.Equal(&p.y, s2) {
			c.fpSetInfinity(p)
			return
		}
		c.fpDouble(p, s)
		return
	}

	f.Sub(h, u2, &p.x)
	f.Sqr(hh, h)
	f.Dbl(i, hh)
	f.Dbl(i, i)
	f.Mul(j, h, i)
	f.Sub(r, s2, &p.y)
	f.Dbl(r, r)
	f.Mul(v, &p.x, i) // i free after this

	// X3 = r² − J − 2V
	f.Sqr(i, r)
	f.Sub(i, i, j)
	f.Dbl(tmp, v)
	f.Sub(i, i, tmp) // x3 in i

	// Y3 = r·(V − X3) − 2·Y1·J
	f.Sub(tmp, v, i)
	f.Mul(tmp, r, tmp)
	f.Mul(j, &p.y, j)
	f.Dbl(j, j)
	f.Sub(tmp, tmp, j) // y3 in tmp

	// Z3 = (Z1+H)² − Z1Z1 − HH
	f.Add(r, &p.z, h)
	f.Sqr(r, r)
	f.Sub(r, r, z1z1)
	f.Sub(r, r, hh) // z3 in r

	p.x, p.y, p.z = *i, *tmp, *r
}

// fpBatchToAffine converts Jacobian points to fpAffine through one
// shared inversion (fp.Field.BatchInv, Montgomery's trick). Used only
// for table builds; every input must be finite.
func (c *Curve) fpBatchToAffine(pts []fpJac, out []fpAffine) {
	f := c.fpF
	n := len(pts)
	if n == 0 {
		return
	}
	zinv := make([]fp.Element, n)
	for i := range pts {
		zinv[i] = pts[i].z
	}
	f.BatchInv(zinv, zinv)
	var zinv2 fp.Element
	for i := range pts {
		f.Sqr(&zinv2, &zinv[i])
		f.Mul(&out[i].x, &pts[i].x, &zinv2)
		f.Mul(&zinv2, &zinv2, &zinv[i])
		f.Mul(&out[i].y, &pts[i].y, &zinv2)
	}
}

// --- scalar recoding (allocation-free) ---

// scalarLimbs decomposes a reduced scalar (< 2^256) into five
// little-endian limbs without heap allocation; the fifth limb absorbs
// wNAF carries.
func scalarLimbs(k *big.Int, limbs *[5]uint64) {
	var kb [32]byte
	k.FillBytes(kb[:])
	limbs[0] = binary.BigEndian.Uint64(kb[24:32])
	limbs[1] = binary.BigEndian.Uint64(kb[16:24])
	limbs[2] = binary.BigEndian.Uint64(kb[8:16])
	limbs[3] = binary.BigEndian.Uint64(kb[0:8])
	limbs[4] = 0
}

func limbsZero(l *[5]uint64) bool {
	return l[0]|l[1]|l[2]|l[3]|l[4] == 0
}

func limbsAdd(l *[5]uint64, v uint64) {
	for i := 0; i < 5 && v != 0; i++ {
		s := l[i] + v
		if s < l[i] {
			v = 1
		} else {
			v = 0
		}
		l[i] = s
	}
}

func limbsShr1(l *[5]uint64) {
	l[0] = l[0]>>1 | l[1]<<63
	l[1] = l[1]>>1 | l[2]<<63
	l[2] = l[2]>>1 | l[3]<<63
	l[3] = l[3]>>1 | l[4]<<63
	l[4] >>= 1
}

// wnafFixed computes the width-w NAF of a reduced scalar into a
// caller-provided buffer (least significant digit first), performing
// no heap allocation. Digits are odd in (−2^(w−1), 2^(w−1)) or zero.
func wnafFixed(k *big.Int, w uint, buf []int8) []int8 {
	var limbs [5]uint64
	scalarLimbs(k, &limbs)
	mod := uint64(1) << w
	half := mod >> 1
	digits := buf[:0]
	for !limbsZero(&limbs) {
		var d int8
		if limbs[0]&1 == 1 {
			r := limbs[0] & (mod - 1)
			if r >= half {
				d = int8(int64(r) - int64(mod))
				limbsAdd(&limbs, mod-r)
			} else {
				d = int8(r)
				limbs[0] -= r
			}
		}
		digits = append(digits, d)
		limbsShr1(&limbs)
	}
	return digits
}

// --- fixed-base comb table ---

// combWindow is the fixed-base window width in bits: the scalar is cut
// into 4-bit nibbles and k·G is the sum of one precomputed table entry
// per nonzero nibble — no doublings at all in the evaluation loop.
const combWindow = 4

// combRow holds the 15 nonzero multiples i·(16^w)·G of one window.
type combRow [15]fpAffine

// combRows lazily builds the fixed-base comb: for every 4-bit window w
// of the scalar, the affine points i·16^w·G, i = 1..15. ~64 rows on
// P-256 (60 KiB), built once per curve with a single batched inversion.
func (c *Curve) combRows() []combRow {
	c.combOnce.Do(func() {
		windows := (c.N.BitLen() + combWindow - 1) / combWindow
		jacs := make([]fpJac, windows*15)
		var base, cur fpJac
		var s fpScratch
		c.fpFromAffinePoint(&base, c.Generator())
		for w := 0; w < windows; w++ {
			cur = base
			jacs[w*15] = cur
			for i := 1; i < 15; i++ {
				c.fpAddJac(&cur, &base, false, &s)
				jacs[w*15+i] = cur
			}
			for d := 0; d < combWindow; d++ {
				c.fpDouble(&base, &s)
			}
		}
		flat := make([]fpAffine, len(jacs))
		c.fpBatchToAffine(jacs, flat)
		rows := make([]combRow, windows)
		for w := 0; w < windows; w++ {
			copy(rows[w][:], flat[w*15:(w+1)*15])
		}
		c.comb = rows
	})
	return c.comb
}

// combAccumulate adds k·G into acc via the comb table (mixed
// additions only). k must be reduced mod N.
func (c *Curve) combAccumulate(acc *fpJac, k *big.Int, s *fpScratch) {
	rows := c.combRows()
	var limbs [5]uint64
	scalarLimbs(k, &limbs)
	for w := range rows {
		nib := (limbs[w/16] >> (4 * uint(w%16))) & 0xf
		if nib != 0 {
			c.fpAddAffine(acc, &rows[w][nib-1], false, s)
		}
	}
}

// --- scalar multiplication (fp backend) ---

// fpOddMultiples fills table with [P, 3P, 5P, ..., 15P] in Jacobian
// form for the wNAF loop. p must be finite.
func (c *Curve) fpOddMultiples(p Point, table *[8]fpJac, s *fpScratch) {
	c.fpFromAffinePoint(&table[0], p)
	twoP := table[0]
	c.fpDouble(&twoP, s)
	for i := 1; i < 8; i++ {
		table[i] = table[i-1]
		c.fpAddJac(&table[i], &twoP, false, s)
	}
}

// wnafAccumulate runs the shared double-and-add loop over a wNAF digit
// string, adding table entries (Jacobian form) into acc.
func (c *Curve) wnafAccumulate(acc *fpJac, table *[8]fpJac, digits []int8, s *fpScratch) {
	for i := len(digits) - 1; i >= 0; i-- {
		c.fpDouble(acc, s)
		d := digits[i]
		if d > 0 {
			c.fpAddJac(acc, &table[(d-1)/2], false, s)
		} else if d < 0 {
			c.fpAddJac(acc, &table[(-d-1)/2], true, s)
		}
	}
}

// scalarMultFPJac evaluates k·P into acc (Jacobian form, affine
// conversion deferred) for a finite P and reduced nonzero k.
func (c *Curve) scalarMultFPJac(acc *fpJac, p Point, kr *big.Int) {
	var s fpScratch
	var table [8]fpJac
	c.fpOddMultiples(p, &table, &s)
	var dbuf [264]int8
	digits := wnafFixed(kr, wnafWindow, dbuf[:])
	c.fpSetInfinity(acc)
	c.wnafAccumulate(acc, &table, digits, &s)
}

// scalarMultFP evaluates k·P for a finite P and reduced nonzero k with
// O(1) heap allocations (the output Point and a big.Int scratch or
// two at the boundary).
func (c *Curve) scalarMultFP(p Point, kr *big.Int) Point {
	var acc fpJac
	c.scalarMultFPJac(&acc, p, kr)
	return c.fpToPoint(&acc)
}

// scalarBaseMultFPJac evaluates k·G into acc (affine conversion
// deferred) through the comb table: ~windows mixed additions, zero
// doublings.
func (c *Curve) scalarBaseMultFPJac(acc *fpJac, kr *big.Int) {
	var s fpScratch
	c.fpSetInfinity(acc)
	c.combAccumulate(acc, kr, &s)
}

// scalarBaseMultFP evaluates k·G through the comb table.
func (c *Curve) scalarBaseMultFP(kr *big.Int) Point {
	var acc fpJac
	c.scalarBaseMultFPJac(&acc, kr)
	return c.fpToPoint(&acc)
}

// scalarMultNaiveFP is the schoolbook double-and-add ladder on limb
// elements — the ablation baseline, sharing ScalarMult's field backend
// so the comparison isolates the wNAF recoding.
func (c *Curve) scalarMultNaiveFP(p Point, kr *big.Int) Point {
	var s fpScratch
	var acc, add fpJac
	c.fpSetInfinity(&acc)
	c.fpFromAffinePoint(&add, p)
	for i := kr.BitLen() - 1; i >= 0; i-- {
		c.fpDouble(&acc, &s)
		if kr.Bit(i) == 1 {
			c.fpAddJac(&acc, &add, false, &s)
		}
	}
	return c.fpToPoint(&acc)
}

// combinedMultFPJac evaluates u1·G + u2·Q into acc (affine conversion
// deferred): the u2 part through the wNAF double-and-add chain, the
// base part folded in afterwards via the comb (which needs no
// doublings, so nothing is gained interleaving it). Both scalars
// reduced and nonzero, Q finite.
func (c *Curve) combinedMultFPJac(acc *fpJac, q Point, u1, u2 *big.Int) {
	var s fpScratch
	var table [8]fpJac
	c.fpOddMultiples(q, &table, &s)
	var dbuf [264]int8
	digits := wnafFixed(u2, wnafWindow, dbuf[:])
	c.fpSetInfinity(acc)
	c.wnafAccumulate(acc, &table, digits, &s)
	c.combAccumulate(acc, u1, &s)
}

// combinedMultFP evaluates u1·G + u2·Q with the affine conversion
// inline.
func (c *Curve) combinedMultFP(q Point, u1, u2 *big.Int) Point {
	var acc fpJac
	c.combinedMultFPJac(&acc, q, u1, u2)
	return c.fpToPoint(&acc)
}

// addFP is the group addition at the public API boundary.
func (c *Curve) addFP(p, q Point) Point {
	if p.IsInfinity() {
		return q.Clone()
	}
	if q.IsInfinity() {
		return p.Clone()
	}
	var s fpScratch
	var jp, jq fpJac
	c.fpFromAffinePoint(&jp, p)
	c.fpFromAffinePoint(&jq, q)
	c.fpAddJac(&jp, &jq, false, &s)
	return c.fpToPoint(&jp)
}

// doubleFP is the group doubling at the public API boundary.
func (c *Curve) doubleFP(p Point) Point {
	if p.IsInfinity() {
		return Point{}
	}
	var s fpScratch
	var jp fpJac
	c.fpFromAffinePoint(&jp, p)
	c.fpDouble(&jp, &s)
	return c.fpToPoint(&jp)
}
