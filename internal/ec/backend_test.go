package ec

import (
	"crypto/elliptic"
	"math/big"
	"math/rand"
	"sync"
	"testing"
)

// Differential tests of the fixed-limb Montgomery backend against the
// retained math/big oracle, and of both against crypto/elliptic. These
// are the parity proofs for the backend swap: every public entry point
// must agree bit-exactly on all three curves, including edge scalars
// and non-canonical inputs.

// edgeScalars returns boundary scalars for a curve of order n:
// 0 and n (→ infinity), 1, 2, small, n−1, n−2, (n−1)/2, a power of
// two, and values above n that must reduce.
func edgeScalars(c *Curve) []*big.Int {
	one := big.NewInt(1)
	return []*big.Int{
		big.NewInt(0),
		new(big.Int).Set(c.N),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(3),
		big.NewInt(31),
		new(big.Int).Sub(c.N, one),
		new(big.Int).Sub(c.N, big.NewInt(2)),
		new(big.Int).Rsh(new(big.Int).Sub(c.N, one), 1),
		new(big.Int).Lsh(one, uint(c.BitSize-1)),
		new(big.Int).Add(c.N, big.NewInt(5)),
		new(big.Int).Mul(c.N, big.NewInt(3)),
	}
}

func randScalars(c *Curve, r *rand.Rand, n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int).Rand(r, c.N)
	}
	return out
}

func requireFP(t *testing.T) {
	t.Helper()
	if useBigBackend {
		t.Skip("built with -tags ec_purebig: fp backend disabled")
	}
}

func TestFPBackendEnabled(t *testing.T) {
	requireFP(t)
	for _, c := range Curves() {
		if !c.useFP() {
			t.Fatalf("%s: fp backend not initialised", c.Name)
		}
	}
}

// TestScalarMultDifferential proves k·P parity between the fp backend
// and the math/big oracle for edge and random scalars on all curves.
func TestScalarMultDifferential(t *testing.T) {
	requireFP(t)
	r := rand.New(rand.NewSource(101))
	for _, c := range Curves() {
		g := c.Generator()
		// A second, non-generator base point.
		q := c.scalarMultBig(g, big.NewInt(0xbeef))
		for _, p := range []Point{g, q} {
			for _, k := range append(edgeScalars(c), randScalars(c, r, 25)...) {
				got := c.ScalarMult(p, k)
				want := c.scalarMultBig(p, k)
				if !got.Equal(want) {
					t.Fatalf("%s: ScalarMult(%v) backend mismatch:\n fp  = %v\n big = %v",
						c.Name, k, got, want)
				}
				if !got.IsInfinity() && !c.IsOnCurve(got) {
					t.Fatalf("%s: ScalarMult(%v) left the curve", c.Name, k)
				}
			}
		}
		// Infinity in, infinity out.
		if !c.ScalarMult(Point{}, big.NewInt(7)).IsInfinity() {
			t.Fatalf("%s: ScalarMult(∞) not infinity", c.Name)
		}
		// The fp naive ladder (ablation baseline) must agree too.
		for _, k := range append(edgeScalars(c), randScalars(c, r, 5)...) {
			if got, want := c.ScalarMultNaive(g, k), c.scalarMultBig(g, k); !got.Equal(want) {
				t.Fatalf("%s: ScalarMultNaive(%v) backend mismatch", c.Name, k)
			}
		}
	}
}

// TestScalarBaseMultDifferential proves comb-table parity with the
// oracle's cached-affine path.
func TestScalarBaseMultDifferential(t *testing.T) {
	requireFP(t)
	r := rand.New(rand.NewSource(102))
	for _, c := range Curves() {
		for _, k := range append(edgeScalars(c), randScalars(c, r, 40)...) {
			got := c.ScalarBaseMult(k)
			want := c.scalarBaseMultBig(k)
			if !got.Equal(want) {
				t.Fatalf("%s: ScalarBaseMult(%v) backend mismatch:\n fp  = %v\n big = %v",
					c.Name, k, got, want)
			}
		}
	}
}

// TestCombinedMultDifferential proves u1·G + u2·Q parity, including
// the degenerate zero-scalar corners.
func TestCombinedMultDifferential(t *testing.T) {
	requireFP(t)
	r := rand.New(rand.NewSource(103))
	for _, c := range Curves() {
		q := c.scalarMultBig(c.Generator(), big.NewInt(0x5e55))
		scalars := append(edgeScalars(c), randScalars(c, r, 10)...)
		for _, u1 := range scalars {
			for _, u2 := range scalars {
				got := c.CombinedMult(q, u1, u2)
				want := c.combinedMultBig(q, u1, u2)
				if !got.Equal(want) {
					t.Fatalf("%s: CombinedMult(%v, %v) backend mismatch:\n fp  = %v\n big = %v",
						c.Name, u1, u2, got, want)
				}
			}
		}
		// Q at infinity degenerates to the base term.
		if got, want := c.CombinedMult(Point{}, big.NewInt(9), big.NewInt(4)), c.scalarBaseMultBig(big.NewInt(9)); !got.Equal(want) {
			t.Fatalf("%s: CombinedMult(∞) mismatch", c.Name)
		}
	}
}

// TestAddDoubleDifferential proves the group law entry points agree,
// including the identity, inverse and doubling corners.
func TestAddDoubleDifferential(t *testing.T) {
	requireFP(t)
	r := rand.New(rand.NewSource(104))
	for _, c := range Curves() {
		g := c.Generator()
		pts := []Point{{}, g, c.scalarMultBig(g, big.NewInt(2)), c.scalarMultBig(g, new(big.Int).Rand(r, c.N))}
		pts = append(pts, c.Neg(g)) // p + (−p) = ∞
		for _, p := range pts {
			for _, q := range pts {
				got := c.Add(p, q)
				want := c.addBig(p, q)
				if !got.Equal(want) {
					t.Fatalf("%s: Add mismatch:\n fp  = %v\n big = %v", c.Name, got, want)
				}
			}
			if got, want := c.Double(p), c.doubleBig(p); !got.Equal(want) {
				t.Fatalf("%s: Double mismatch:\n fp  = %v\n big = %v", c.Name, got, want)
			}
		}
	}
}

// TestAgainstCryptoElliptic cross-checks ScalarMult, ScalarBaseMult
// and CombinedMult against the standard library on the curves it
// ships (P-256, P-224).
func TestAgainstCryptoElliptic(t *testing.T) {
	cases := []struct {
		c   *Curve
		std elliptic.Curve
	}{
		{P256(), elliptic.P256()},
		{P224(), elliptic.P224()},
	}
	r := rand.New(rand.NewSource(105))
	for _, tc := range cases {
		scalars := append([]*big.Int{
			big.NewInt(1),
			big.NewInt(2),
			new(big.Int).Sub(tc.c.N, big.NewInt(1)),
		}, randScalars(tc.c, r, 15)...)
		for _, k := range scalars {
			kb := make([]byte, tc.c.ByteLen())
			k.FillBytes(kb)

			// Base-point multiplication.
			wx, wy := tc.std.ScalarBaseMult(kb)
			got := tc.c.ScalarBaseMult(k)
			if got.X.Cmp(wx) != 0 || got.Y.Cmp(wy) != 0 {
				t.Fatalf("%s: ScalarBaseMult(%v) disagrees with crypto/elliptic", tc.c.Name, k)
			}

			// Arbitrary-point multiplication against k·G.
			px, py := wx, wy
			for _, k2 := range scalars[:5] {
				k2b := make([]byte, tc.c.ByteLen())
				k2.FillBytes(k2b)
				wx2, wy2 := tc.std.ScalarMult(px, py, k2b)
				got2 := tc.c.ScalarMult(Point{X: px, Y: py}, k2)
				if got2.X.Cmp(wx2) != 0 || got2.Y.Cmp(wy2) != 0 {
					t.Fatalf("%s: ScalarMult disagrees with crypto/elliptic", tc.c.Name)
				}

				// CombinedMult = u1·G + u2·Q via stdlib Add.
				bx, by := tc.std.ScalarBaseMult(k2b)
				sx, sy := tc.std.Add(bx, by, wx2, wy2)
				comb := tc.c.CombinedMult(Point{X: px, Y: py}, k2, k2)
				if comb.IsInfinity() {
					if sx.Sign() != 0 || sy.Sign() != 0 {
						t.Fatalf("%s: CombinedMult infinity mismatch", tc.c.Name)
					}
				} else if comb.X.Cmp(sx) != 0 || comb.Y.Cmp(sy) != 0 {
					t.Fatalf("%s: CombinedMult disagrees with crypto/elliptic", tc.c.Name)
				}
			}
		}
	}
}

// TestMultTableParity proves the cached-table paths return exactly
// what the direct entry points return.
func TestMultTableParity(t *testing.T) {
	r := rand.New(rand.NewSource(106))
	for _, c := range Curves() {
		q := c.ScalarBaseMult(big.NewInt(0xcafe))
		tab := c.NewMultTable(q)
		if !tab.Point().Equal(q) || tab.Curve() != c {
			t.Fatalf("%s: MultTable identity accessors wrong", c.Name)
		}
		for _, k := range append(edgeScalars(c), randScalars(c, r, 20)...) {
			if got, want := tab.ScalarMult(k), c.ScalarMult(q, k); !got.Equal(want) {
				t.Fatalf("%s: MultTable.ScalarMult(%v) mismatch", c.Name, k)
			}
		}
		scalars := append(edgeScalars(c), randScalars(c, r, 6)...)
		for _, u1 := range scalars {
			for _, u2 := range scalars {
				if got, want := tab.CombinedMult(u1, u2), c.CombinedMult(q, u1, u2); !got.Equal(want) {
					t.Fatalf("%s: MultTable.CombinedMult(%v, %v) mismatch", c.Name, u1, u2)
				}
			}
		}
	}
	// Infinity table degenerates cleanly.
	c := P256()
	tab := c.NewMultTable(Point{})
	if !tab.ScalarMult(big.NewInt(5)).IsInfinity() {
		t.Fatal("infinity MultTable.ScalarMult not infinity")
	}
	if got, want := tab.CombinedMult(big.NewInt(5), big.NewInt(7)), c.ScalarBaseMult(big.NewInt(5)); !got.Equal(want) {
		t.Fatal("infinity MultTable.CombinedMult did not degenerate to base term")
	}
}

// TestMultTableConcurrent exercises one shared table from many
// goroutines (the fleet steady state) under -race.
func TestMultTableConcurrent(t *testing.T) {
	c := P256()
	q := c.ScalarBaseMult(big.NewInt(777))
	tab := c.NewMultTable(q)
	want := c.ScalarMult(q, big.NewInt(1234))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if !tab.ScalarMult(big.NewInt(1234)).Equal(want) {
					t.Error("concurrent MultTable.ScalarMult mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// allocBudget is the hard ceiling on heap allocations per scalar
// multiplication on the fp backend — CI fails if the hot path regresses
// into per-digit allocation again. The handful that remain are the
// boundary big.Ints (scalar reduction, output point).
const allocBudget = 24

func TestScalarMultAllocBudget(t *testing.T) {
	requireFP(t)
	c := P256()
	k := new(big.Int).SetInt64(0x1db7_5bb1)
	k.Lsh(k, 200)
	k.Mod(k, c.N)
	q := c.ScalarBaseMult(big.NewInt(0xabc))
	tab := c.NewMultTable(q)

	cases := []struct {
		name string
		fn   func()
	}{
		{"ScalarMult", func() { c.ScalarMult(q, k) }},
		{"ScalarBaseMult", func() { c.ScalarBaseMult(k) }},
		{"CombinedMult", func() { c.CombinedMult(q, k, k) }},
		{"MultTable.ScalarMult", func() { tab.ScalarMult(k) }},
		{"MultTable.CombinedMult", func() { tab.CombinedMult(k, k) }},
	}
	for _, tc := range cases {
		tc.fn() // warm lazy tables outside the measurement
		if got := testing.AllocsPerRun(20, tc.fn); got > allocBudget {
			t.Errorf("%s: %.0f allocs/op, budget %d", tc.name, got, allocBudget)
		}
	}
}

func BenchmarkMultTableScalarMult(b *testing.B) {
	c := P256()
	q := c.ScalarBaseMult(big.NewInt(0xabc))
	tab := c.NewMultTable(q)
	k, _ := c.RandomScalar(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.ScalarMult(k)
	}
}

func BenchmarkMultTableCombinedMult(b *testing.B) {
	c := P256()
	q := c.ScalarBaseMult(big.NewInt(0xabc))
	tab := c.NewMultTable(q)
	u1, _ := c.RandomScalar(nil)
	u2, _ := c.RandomScalar(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.CombinedMult(u1, u2)
	}
}
