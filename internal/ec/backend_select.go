//go:build !ec_purebig

package ec

// useBigBackend selects the math/big point-arithmetic oracle instead
// of the fixed-limb Montgomery backend. Build with -tags ec_purebig to
// flip it: the two backends are differentially tested against each
// other, and `make bench-compare` benchmarks one against the other.
const useBigBackend = false
