package ec

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestWNAFReconstruction(t *testing.T) {
	// Σ dᵢ·2ⁱ must equal the original scalar, and nonzero digits must
	// be odd and within (−2^(w−1), 2^(w−1)).
	f := func(v uint64) bool {
		k := new(big.Int).SetUint64(v)
		digits := wnaf(k, wnafWindow)
		sum := new(big.Int)
		for i, d := range digits {
			term := new(big.Int).Lsh(big.NewInt(int64(d)), uint(i))
			sum.Add(sum, term)
			if d != 0 {
				if d%2 == 0 {
					return false
				}
				if d >= 1<<(wnafWindow-1) || d <= -(1<<(wnafWindow-1)) {
					return false
				}
			}
		}
		return sum.Cmp(k) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if wnaf(new(big.Int), wnafWindow) != nil {
		t.Error("wNAF of zero must be empty")
	}
}

func TestWNAFNonAdjacency(t *testing.T) {
	// In width-w NAF, every nonzero digit is followed by at least w−1
	// zero digits.
	k, _ := new(big.Int).SetString("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632550", 16)
	digits := wnaf(k, wnafWindow)
	for i := 0; i < len(digits); i++ {
		if digits[i] == 0 {
			continue
		}
		for j := i + 1; j < i+wnafWindow && j < len(digits); j++ {
			if digits[j] != 0 {
				t.Fatalf("digits %d and %d both nonzero (window %d)", i, j, wnafWindow)
			}
		}
	}
}

func TestScalarMultMatchesNaive(t *testing.T) {
	rng := newDetRand(3)
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			for i := 0; i < 8; i++ {
				k, err := c.RandomScalar(rng)
				if err != nil {
					t.Fatal(err)
				}
				p := randPoint(t, c, rng)
				fast := c.ScalarMult(p, k)
				slow := c.ScalarMultNaive(p, k)
				if !fast.Equal(slow) {
					t.Fatalf("wNAF and naive disagree for k=%v", k)
				}
			}
		})
	}
}

func TestScalarMultEdgeCases(t *testing.T) {
	c := P256()
	g := c.Generator()

	if !c.ScalarMult(g, new(big.Int)).IsInfinity() {
		t.Error("0·G != ∞")
	}
	if !c.ScalarMult(g, c.N).IsInfinity() {
		t.Error("n·G != ∞")
	}
	if !c.ScalarMult(Infinity(), big.NewInt(5)).IsInfinity() {
		t.Error("5·∞ != ∞")
	}
	if !c.ScalarMult(g, big.NewInt(1)).Equal(g) {
		t.Error("1·G != G")
	}
	// Scalars are reduced mod n: (n+2)·G = 2·G.
	np2 := new(big.Int).Add(c.N, big.NewInt(2))
	if !c.ScalarMult(g, np2).Equal(c.Double(g)) {
		t.Error("(n+2)·G != 2G")
	}
	if !c.ScalarBaseMult(new(big.Int)).IsInfinity() {
		t.Error("ScalarBaseMult(0) != ∞")
	}
}

func TestScalarMultDistributive(t *testing.T) {
	// (k1+k2)·G = k1·G + k2·G — the property that underpins both ECDH
	// and the ECQV key reconstruction.
	rng := newDetRand(4)
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			for i := 0; i < 6; i++ {
				k1, _ := c.RandomScalar(rng)
				k2, _ := c.RandomScalar(rng)
				sum := new(big.Int).Add(k1, k2)
				lhs := c.ScalarBaseMult(sum)
				rhs := c.Add(c.ScalarBaseMult(k1), c.ScalarBaseMult(k2))
				if !lhs.Equal(rhs) {
					t.Fatal("distributivity failed")
				}
			}
		})
	}
}

func TestDHConsistency(t *testing.T) {
	// a·(b·G) = b·(a·G): the static and ephemeral Diffie–Hellman core.
	rng := newDetRand(5)
	c := P256()
	for i := 0; i < 8; i++ {
		a, _ := c.RandomScalar(rng)
		b, _ := c.RandomScalar(rng)
		ga := c.ScalarBaseMult(a)
		gb := c.ScalarBaseMult(b)
		s1 := c.ScalarMult(gb, a)
		s2 := c.ScalarMult(ga, b)
		if !s1.Equal(s2) {
			t.Fatal("DH shared secrets disagree")
		}
	}
}

func TestCombinedMult(t *testing.T) {
	rng := newDetRand(6)
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			q := randPoint(t, c, rng)
			for i := 0; i < 6; i++ {
				u1, _ := c.RandomScalar(rng)
				u2, _ := c.RandomScalar(rng)
				got := c.CombinedMult(q, u1, u2)
				want := c.Add(c.ScalarBaseMult(u1), c.ScalarMult(q, u2))
				if !got.Equal(want) {
					t.Fatal("CombinedMult != u1·G + u2·Q")
				}
			}
			// Degenerate cases.
			u1, _ := c.RandomScalar(rng)
			if !c.CombinedMult(q, u1, new(big.Int)).Equal(c.ScalarBaseMult(u1)) {
				t.Error("u2=0 case wrong")
			}
			u2, _ := c.RandomScalar(rng)
			if !c.CombinedMult(q, new(big.Int), u2).Equal(c.ScalarMult(q, u2)) {
				t.Error("u1=0 case wrong")
			}
			if !c.CombinedMult(Infinity(), u1, u2).Equal(c.ScalarBaseMult(u1)) {
				t.Error("Q=∞ case wrong")
			}
		})
	}
}

func TestRandomScalarRange(t *testing.T) {
	rng := newDetRand(7)
	c := P256()
	for i := 0; i < 64; i++ {
		k, err := c.RandomScalar(rng)
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() <= 0 || k.Cmp(c.N) >= 0 {
			t.Fatalf("scalar %v out of range", k)
		}
	}
}

func TestGenerateKeyPair(t *testing.T) {
	rng := newDetRand(8)
	for _, c := range Curves() {
		d, q, err := c.GenerateKeyPair(rng)
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsOnCurve(q) {
			t.Errorf("%s: public key off curve", c.Name)
		}
		if !q.Equal(c.ScalarBaseMult(d)) {
			t.Errorf("%s: Q != d·G", c.Name)
		}
	}
}

func TestHashToInt(t *testing.T) {
	c := P256()
	// 32-byte all-ones digest reduces into [0, n).
	digest := make([]byte, 32)
	for i := range digest {
		digest[i] = 0xff
	}
	v := c.HashToInt(digest)
	if v.Sign() < 0 || v.Cmp(c.N) >= 0 {
		t.Error("HashToInt out of range")
	}
	// Longer-than-order digests are truncated from the left.
	long := append(digest, 0xAA, 0xBB)
	if c.HashToInt(long).Cmp(v) != 0 {
		t.Error("HashToInt did not truncate to order length")
	}
	// P-224: 32-byte digest must be right-shifted, not just truncated.
	v224 := P224().HashToInt(digest)
	if v224.Sign() < 0 || v224.Cmp(P224().N) >= 0 {
		t.Error("P-224 HashToInt out of range")
	}
}

func TestScalarBytesRoundTrip(t *testing.T) {
	rng := newDetRand(9)
	c := P256()
	for i := 0; i < 16; i++ {
		k, _ := c.RandomScalar(rng)
		b := c.ScalarToBytes(k)
		if len(b) != c.ByteLen() {
			t.Fatalf("scalar bytes length %d", len(b))
		}
		k2, err := c.ScalarFromBytes(b)
		if err != nil {
			t.Fatal(err)
		}
		if k.Cmp(k2) != 0 {
			t.Fatal("scalar round trip failed")
		}
	}
	if _, err := c.ScalarFromBytes(make([]byte, c.ByteLen())); err == nil {
		t.Error("zero scalar accepted")
	}
	nBytes := c.ScalarToBytes(new(big.Int).Sub(c.N, big.NewInt(1)))
	if _, err := c.ScalarFromBytes(nBytes); err != nil {
		t.Errorf("n-1 rejected: %v", err)
	}
	if _, err := c.ScalarFromBytes([]byte{1, 2, 3}); err == nil {
		t.Error("short scalar accepted")
	}
}
