package ec

import (
	"math/big"
	"testing"
)

func TestBatchToAffine(t *testing.T) {
	c := P256()
	rng := newDetRand(41)

	// Build Jacobian points with non-trivial Z by doubling.
	var jacs []*jacobianPoint
	var want []Point
	for i := 0; i < 9; i++ {
		p := randPoint(t, c, rng)
		j := c.jacDouble(c.toJacobian(p)) // Z ≠ 1
		jacs = append(jacs, j)
		want = append(want, c.Double(p))
	}
	got := c.batchToAffine(jacs)
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("batch conversion %d wrong", i)
		}
		if !c.IsOnCurve(got[i]) {
			t.Fatalf("batch conversion %d off curve", i)
		}
	}
}

func TestBatchToAffineWithInfinity(t *testing.T) {
	c := P256()
	rng := newDetRand(42)
	p := randPoint(t, c, rng)
	jacs := []*jacobianPoint{
		c.jacInfinity(),
		c.toJacobian(p),
		c.jacInfinity(),
	}
	got := c.batchToAffine(jacs)
	if !got[0].IsInfinity() || !got[2].IsInfinity() {
		t.Error("infinity entries not preserved")
	}
	if !got[1].Equal(p) {
		t.Error("finite entry corrupted by infinity neighbours")
	}
	// All-infinity batch.
	all := c.batchToAffine([]*jacobianPoint{c.jacInfinity(), c.jacInfinity()})
	for _, q := range all {
		if !q.IsInfinity() {
			t.Error("all-infinity batch produced a finite point")
		}
	}
	// Empty batch.
	if out := c.batchToAffine(nil); len(out) != 0 {
		t.Error("empty batch produced output")
	}
}

func TestMixedAddition(t *testing.T) {
	// jacAddAffine must agree with the general addition for every
	// combination, including the doubling and inverse corner cases.
	c := P256()
	rng := newDetRand(43)
	p := randPoint(t, c, rng)
	q := randPoint(t, c, rng)

	jp := c.jacDouble(c.toJacobian(p)) // non-trivial Z
	twoP := c.Double(p)

	// General case.
	got := c.fromJacobian(c.jacAddAffine(jp, q))
	want := c.Add(twoP, q)
	if !got.Equal(want) {
		t.Error("mixed addition disagrees with general addition")
	}
	// Doubling case: 2P + 2P.
	got = c.fromJacobian(c.jacAddAffine(jp, twoP))
	if !got.Equal(c.Double(twoP)) {
		t.Error("mixed addition doubling case wrong")
	}
	// Inverse case: 2P + (−2P) = ∞.
	if !c.fromJacobian(c.jacAddAffine(jp, c.Neg(twoP))).IsInfinity() {
		t.Error("mixed addition inverse case not infinity")
	}
	// Identity cases.
	if !c.fromJacobian(c.jacAddAffine(c.jacInfinity(), q)).Equal(q) {
		t.Error("∞ + Q wrong")
	}
	if !c.fromJacobian(c.jacAddAffine(jp, Point{})).Equal(twoP) {
		t.Error("P + ∞ wrong")
	}
}

func TestBaseTableConsistency(t *testing.T) {
	// The cached affine base table must hold exactly the odd multiples
	// G, 3G, 5G, ...
	for _, c := range Curves() {
		table := c.baseMultiples()
		if len(table) != 1<<(wnafWindow-2) {
			t.Fatalf("%s: table size %d", c.Name, len(table))
		}
		for i, p := range table {
			k := big.NewInt(int64(2*i + 1))
			if !p.Equal(c.ScalarMultNaive(c.Generator(), k)) {
				t.Errorf("%s: table[%d] != %d·G", c.Name, i, 2*i+1)
			}
		}
	}
}
