package ec

import (
	"errors"
	"fmt"
	"math/big"
)

// Point is an affine curve point. The point at infinity (the group
// identity) is represented by nil coordinates; use Infinity and
// IsInfinity rather than constructing it by hand.
type Point struct {
	X, Y *big.Int
}

// Infinity returns the group identity.
func Infinity() Point { return Point{} }

// IsInfinity reports whether p is the group identity.
func (p Point) IsInfinity() bool { return p.X == nil || p.Y == nil }

// Equal reports whether two affine points are the same point.
func (p Point) Equal(q Point) bool {
	if p.IsInfinity() || q.IsInfinity() {
		return p.IsInfinity() && q.IsInfinity()
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	if p.IsInfinity() {
		return Point{}
	}
	return Point{X: new(big.Int).Set(p.X), Y: new(big.Int).Set(p.Y)}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	if p.IsInfinity() {
		return "(∞)"
	}
	return fmt.Sprintf("(%x, %x)", p.X, p.Y)
}

// Neg returns −p on curve c.
func (c *Curve) Neg(p Point) Point {
	if p.IsInfinity() {
		return Point{}
	}
	return Point{X: new(big.Int).Set(p.X), Y: modNeg(p.Y, c.P)}
}

// Add returns p + q using the affine group law via Jacobian coordinates.
func (c *Curve) Add(p, q Point) Point {
	if c.useFP() {
		return c.addFP(p, q)
	}
	return c.addBig(p, q)
}

// addBig is the math/big group addition (differential oracle).
func (c *Curve) addBig(p, q Point) Point {
	jp := c.toJacobian(p)
	jq := c.toJacobian(q)
	return c.fromJacobian(c.jacAdd(jp, jq))
}

// Double returns 2p.
func (c *Curve) Double(p Point) Point {
	if c.useFP() {
		return c.doubleFP(p)
	}
	return c.doubleBig(p)
}

// doubleBig is the math/big doubling (differential oracle).
func (c *Curve) doubleBig(p Point) Point {
	return c.fromJacobian(c.jacDouble(c.toJacobian(p)))
}

// Sub returns p − q.
func (c *Curve) Sub(p, q Point) Point {
	return c.Add(p, c.Neg(q))
}

// Point encoding (SEC 1, §2.3.3/§2.3.4).

const (
	prefixInfinity     = 0x00
	prefixCompressed0  = 0x02
	prefixCompressed1  = 0x03
	prefixUncompressed = 0x04
)

// EncodeUncompressed serializes p as 0x04 ‖ X ‖ Y (1 + 2·ByteLen bytes).
// The point at infinity encodes as the single byte 0x00.
func (c *Curve) EncodeUncompressed(p Point) []byte {
	if p.IsInfinity() {
		return []byte{prefixInfinity}
	}
	out := make([]byte, 1+2*c.byteLen)
	out[0] = prefixUncompressed
	p.X.FillBytes(out[1 : 1+c.byteLen])
	p.Y.FillBytes(out[1+c.byteLen:])
	return out
}

// EncodeCompressed serializes p as (0x02|0x03) ‖ X (1 + ByteLen bytes),
// the format used for the paper's 101-byte minimal certificates.
func (c *Curve) EncodeCompressed(p Point) []byte {
	if p.IsInfinity() {
		return []byte{prefixInfinity}
	}
	out := make([]byte, 1+c.byteLen)
	out[0] = prefixCompressed0 | byte(p.Y.Bit(0))
	p.X.FillBytes(out[1:])
	return out
}

// ErrInvalidPoint is returned when decoding rejects a byte string.
var ErrInvalidPoint = errors.New("ec: invalid point encoding")

// DecodePoint parses either a compressed or uncompressed SEC 1 point
// and verifies curve membership.
func (c *Curve) DecodePoint(data []byte) (Point, error) {
	if len(data) == 0 {
		return Point{}, ErrInvalidPoint
	}
	switch data[0] {
	case prefixInfinity:
		if len(data) != 1 {
			return Point{}, ErrInvalidPoint
		}
		return Point{}, nil
	case prefixUncompressed:
		if len(data) != 1+2*c.byteLen {
			return Point{}, fmt.Errorf("%w: length %d for uncompressed %s point",
				ErrInvalidPoint, len(data), c.Name)
		}
		x := new(big.Int).SetBytes(data[1 : 1+c.byteLen])
		y := new(big.Int).SetBytes(data[1+c.byteLen:])
		p := Point{X: x, Y: y}
		if !c.IsOnCurve(p) {
			return Point{}, fmt.Errorf("%w: not on %s", ErrInvalidPoint, c.Name)
		}
		return p, nil
	case prefixCompressed0, prefixCompressed1:
		if len(data) != 1+c.byteLen {
			return Point{}, fmt.Errorf("%w: length %d for compressed %s point",
				ErrInvalidPoint, len(data), c.Name)
		}
		x := new(big.Int).SetBytes(data[1:])
		if x.Cmp(c.P) >= 0 {
			return Point{}, fmt.Errorf("%w: x out of range", ErrInvalidPoint)
		}
		y, err := c.liftX(x, uint(data[0]&1))
		if err != nil {
			return Point{}, err
		}
		return Point{X: x, Y: y}, nil
	}
	return Point{}, fmt.Errorf("%w: unknown prefix 0x%02x", ErrInvalidPoint, data[0])
}

// liftX recovers y from x and the parity bit yBit, per SEC 1 §2.3.4.
func (c *Curve) liftX(x *big.Int, yBit uint) (*big.Int, error) {
	// rhs = x³ + ax + b mod p
	rhs := modMul(modSqr(x, c.P), x, c.P)
	rhs = modAdd(rhs, modMul(c.A, x, c.P), c.P)
	rhs = modAdd(rhs, c.B, c.P)
	y, err := modSqrt(rhs, c.P)
	if err != nil {
		return nil, fmt.Errorf("%w: x has no curve point", ErrInvalidPoint)
	}
	if y.Bit(0) != yBit {
		y = modNeg(y, c.P)
	}
	return y, nil
}

// CompressedPointSize returns the byte length of a compressed point on c.
func (c *Curve) CompressedPointSize() int { return 1 + c.byteLen }

// UncompressedPointSize returns the byte length of an uncompressed point on c.
func (c *Curve) UncompressedPointSize() int { return 1 + 2*c.byteLen }
