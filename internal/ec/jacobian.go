package ec

import "math/big"

// jacobianPoint is a projective point (X : Y : Z) with affine
// coordinates x = X/Z², y = Y/Z³. Z = 0 encodes the point at infinity.
// Jacobian coordinates avoid a field inversion per group operation,
// deferring the single inversion to the final conversion back to
// affine form.
type jacobianPoint struct {
	x, y, z *big.Int
}

func (c *Curve) jacInfinity() *jacobianPoint {
	return &jacobianPoint{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
}

func (j *jacobianPoint) isInfinity() bool { return j.z.Sign() == 0 }

func (j *jacobianPoint) clone() *jacobianPoint {
	return &jacobianPoint{
		x: new(big.Int).Set(j.x),
		y: new(big.Int).Set(j.y),
		z: new(big.Int).Set(j.z),
	}
}

func (c *Curve) toJacobian(p Point) *jacobianPoint {
	if p.IsInfinity() {
		return c.jacInfinity()
	}
	return &jacobianPoint{
		x: new(big.Int).Set(p.X),
		y: new(big.Int).Set(p.Y),
		z: big.NewInt(1),
	}
}

func (c *Curve) fromJacobian(j *jacobianPoint) Point {
	if j.isInfinity() {
		return Point{}
	}
	zinv, err := modInv(j.z, c.P)
	if err != nil {
		return Point{}
	}
	zinv2 := modSqr(zinv, c.P)
	x := modMul(j.x, zinv2, c.P)
	y := modMul(j.y, modMul(zinv2, zinv, c.P), c.P)
	return Point{X: x, Y: y}
}

// jacNeg returns −j.
func (c *Curve) jacNeg(j *jacobianPoint) *jacobianPoint {
	if j.isInfinity() {
		return c.jacInfinity()
	}
	return &jacobianPoint{
		x: new(big.Int).Set(j.x),
		y: modNeg(j.y, c.P),
		z: new(big.Int).Set(j.z),
	}
}

// jacDouble returns 2j using the dbl-2007-bl formulas, with the
// a = −3 shortcut (M = 3(X−Z²)(X+Z²)) for the NIST curves.
func (c *Curve) jacDouble(j *jacobianPoint) *jacobianPoint {
	if j.isInfinity() || j.y.Sign() == 0 {
		return c.jacInfinity()
	}
	p := c.P

	xx := modSqr(j.x, p)
	yy := modSqr(j.y, p)
	yyyy := modSqr(yy, p)
	zz := modSqr(j.z, p)

	// S = 2·((X+YY)² − XX − YYYY)
	s := modSqr(modAdd(j.x, yy, p), p)
	s = modSub(s, xx, p)
	s = modSub(s, yyyy, p)
	s = modAdd(s, s, p)

	// M = 3·XX + a·ZZ² ; for a = −3: M = 3·(X−ZZ)(X+ZZ)
	var m *big.Int
	if c.aIsMinus3 {
		m = modMul(modSub(j.x, zz, p), modAdd(j.x, zz, p), p)
		m = modAdd(modAdd(m, m, p), m, p)
	} else {
		m = modAdd(modAdd(xx, xx, p), xx, p)
		m = modAdd(m, modMul(c.A, modSqr(zz, p), p), p)
	}

	// X' = M² − 2S
	x3 := modSqr(m, p)
	x3 = modSub(x3, modAdd(s, s, p), p)

	// Y' = M·(S − X') − 8·YYYY
	y3 := modMul(m, modSub(s, x3, p), p)
	e := modAdd(yyyy, yyyy, p) // 2
	e = modAdd(e, e, p)        // 4
	e = modAdd(e, e, p)        // 8
	y3 = modSub(y3, e, p)

	// Z' = (Y+Z)² − YY − ZZ = 2·Y·Z
	z3 := modSqr(modAdd(j.y, j.z, p), p)
	z3 = modSub(z3, yy, p)
	z3 = modSub(z3, zz, p)

	return &jacobianPoint{x: x3, y: y3, z: z3}
}

// jacAdd returns a + b using the add-2007-bl formulas.
func (c *Curve) jacAdd(a, b *jacobianPoint) *jacobianPoint {
	if a.isInfinity() {
		return b.clone()
	}
	if b.isInfinity() {
		return a.clone()
	}
	p := c.P

	z1z1 := modSqr(a.z, p)
	z2z2 := modSqr(b.z, p)
	u1 := modMul(a.x, z2z2, p)
	u2 := modMul(b.x, z1z1, p)
	s1 := modMul(a.y, modMul(b.z, z2z2, p), p)
	s2 := modMul(b.y, modMul(a.z, z1z1, p), p)

	if u1.Cmp(u2) == 0 {
		if s1.Cmp(s2) != 0 {
			return c.jacInfinity() // a = −b
		}
		return c.jacDouble(a)
	}

	h := modSub(u2, u1, p)
	i := modSqr(modAdd(h, h, p), p)
	jj := modMul(h, i, p)
	r := modSub(s2, s1, p)
	r = modAdd(r, r, p)
	v := modMul(u1, i, p)

	// X3 = r² − J − 2V
	x3 := modSqr(r, p)
	x3 = modSub(x3, jj, p)
	x3 = modSub(x3, modAdd(v, v, p), p)

	// Y3 = r·(V − X3) − 2·S1·J
	y3 := modMul(r, modSub(v, x3, p), p)
	s1j := modMul(s1, jj, p)
	y3 = modSub(y3, modAdd(s1j, s1j, p), p)

	// Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H
	z3 := modSqr(modAdd(a.z, b.z, p), p)
	z3 = modSub(z3, z1z1, p)
	z3 = modSub(z3, z2z2, p)
	z3 = modMul(z3, h, p)

	return &jacobianPoint{x: x3, y: y3, z: z3}
}

// jacAddAffine adds the affine point q (z = 1) to a, the "madd"
// optimisation used when accumulating precomputed table entries.
func (c *Curve) jacAddAffine(a *jacobianPoint, q Point) *jacobianPoint {
	if q.IsInfinity() {
		return a.clone()
	}
	if a.isInfinity() {
		return c.toJacobian(q)
	}
	p := c.P

	z1z1 := modSqr(a.z, p)
	u2 := modMul(q.X, z1z1, p)
	s2 := modMul(q.Y, modMul(a.z, z1z1, p), p)

	if a.x.Cmp(u2) == 0 {
		if a.y.Cmp(s2) != 0 {
			return c.jacInfinity()
		}
		return c.jacDouble(a)
	}

	h := modSub(u2, a.x, p)
	hh := modSqr(h, p)
	i := modAdd(hh, hh, p)
	i = modAdd(i, i, p)
	jj := modMul(h, i, p)
	r := modSub(s2, a.y, p)
	r = modAdd(r, r, p)
	v := modMul(a.x, i, p)

	x3 := modSqr(r, p)
	x3 = modSub(x3, jj, p)
	x3 = modSub(x3, modAdd(v, v, p), p)

	y3 := modMul(r, modSub(v, x3, p), p)
	yj := modMul(a.y, jj, p)
	y3 = modSub(y3, modAdd(yj, yj, p), p)

	z3 := modSqr(modAdd(a.z, h, p), p)
	z3 = modSub(z3, z1z1, p)
	z3 = modSub(z3, hh, p)

	return &jacobianPoint{x: x3, y: y3, z: z3}
}
