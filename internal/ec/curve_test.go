package ec

import (
	"crypto/elliptic"
	"math/big"
	"testing"
)

func TestCurveParameters(t *testing.T) {
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			if !c.P.ProbablyPrime(32) {
				t.Error("field modulus is not prime")
			}
			if !c.N.ProbablyPrime(32) {
				t.Error("group order is not prime")
			}
			if !c.IsOnCurve(c.Generator()) {
				t.Error("generator is not on the curve")
			}
			if got := c.ByteLen(); got != (c.BitSize+7)/8 {
				t.Errorf("ByteLen = %d, want %d", got, (c.BitSize+7)/8)
			}
			if !c.aIsMinus3 {
				t.Error("NIST prime curves must have a = -3")
			}
		})
	}
}

func TestCurveByName(t *testing.T) {
	cases := map[string]*Curve{
		"secp256r1": p256, "P-256": p256, "p256": p256,
		"secp224r1": p224, "P-224": p224,
		"secp192r1": p192, "P-192": p192,
	}
	for name, want := range cases {
		got, err := CurveByName(name)
		if err != nil {
			t.Fatalf("CurveByName(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("CurveByName(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := CurveByName("secp521r1"); err == nil {
		t.Error("expected error for unsupported curve")
	}
}

func TestGeneratorOrder(t *testing.T) {
	// n·G must be the point at infinity and (n−1)·G = −G.
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			if p := c.ScalarMult(c.Generator(), c.N); !p.IsInfinity() {
				t.Error("n·G is not the identity")
			}
			nm1 := new(big.Int).Sub(c.N, big.NewInt(1))
			p := c.ScalarBaseMult(nm1)
			if !p.Equal(c.Neg(c.Generator())) {
				t.Error("(n−1)·G != −G")
			}
		})
	}
}

func TestIsOnCurveRejects(t *testing.T) {
	c := P256()
	g := c.Generator()
	bad := Point{X: new(big.Int).Set(g.X), Y: new(big.Int).Add(g.Y, big.NewInt(1))}
	if c.IsOnCurve(bad) {
		t.Error("perturbed generator reported on curve")
	}
	if c.IsOnCurve(Infinity()) {
		t.Error("infinity must not satisfy IsOnCurve")
	}
	outOfRange := Point{X: new(big.Int).Add(c.P, big.NewInt(1)), Y: big.NewInt(1)}
	if c.IsOnCurve(outOfRange) {
		t.Error("x >= p accepted")
	}
	neg := Point{X: big.NewInt(-1), Y: big.NewInt(1)}
	if c.IsOnCurve(neg) {
		t.Error("negative coordinate accepted")
	}
}

// TestAgainstStdlib cross-checks scalar multiplication against
// crypto/elliptic for the curves the standard library ships.
func TestAgainstStdlib(t *testing.T) {
	pairs := []struct {
		ours *Curve
		std  elliptic.Curve
	}{
		{P256(), elliptic.P256()},
		{P224(), elliptic.P224()},
	}
	scalars := []*big.Int{
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(3),
		big.NewInt(112233445566778899),
	}
	for _, pair := range pairs {
		// Also test n−1 and a mid-size scalar per curve.
		extra := []*big.Int{
			new(big.Int).Sub(pair.ours.N, big.NewInt(1)),
			new(big.Int).Rsh(pair.ours.N, 1),
		}
		for _, k := range append(scalars, extra...) {
			wantX, wantY := pair.std.ScalarBaseMult(k.Bytes())
			got := pair.ours.ScalarBaseMult(k)
			if got.X.Cmp(wantX) != 0 || got.Y.Cmp(wantY) != 0 {
				t.Errorf("%s: ScalarBaseMult(%v) mismatch with stdlib", pair.ours.Name, k)
			}
			// Arbitrary-point path: multiply 7G by k both ways.
			sevenX, sevenY := pair.std.ScalarBaseMult(big.NewInt(7).Bytes())
			wantX2, wantY2 := pair.std.ScalarMult(sevenX, sevenY, k.Bytes())
			got2 := pair.ours.ScalarMult(Point{X: sevenX, Y: sevenY}, k)
			if got2.X.Cmp(wantX2) != 0 || got2.Y.Cmp(wantY2) != 0 {
				t.Errorf("%s: ScalarMult(7G, %v) mismatch with stdlib", pair.ours.Name, k)
			}
		}
	}
}

// TestP256KnownVectors checks published point-multiplication vectors
// for P-256 (k = 2, 3).
func TestP256KnownVectors(t *testing.T) {
	c := P256()
	vectors := []struct{ k, x, y string }{
		{
			"2",
			"7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978",
			"07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1",
		},
		{
			"3",
			"5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c",
			"8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032",
		},
	}
	for _, v := range vectors {
		k, _ := new(big.Int).SetString(v.k, 10)
		p := c.ScalarBaseMult(k)
		if p.X.Cmp(mustInt(v.x)) != 0 || p.Y.Cmp(mustInt(v.y)) != 0 {
			t.Errorf("k=%s: got %v", v.k, p)
		}
	}
}
