package ec

import "math/big"

// MultTable is a precomputed scalar-multiplication table for one fixed
// point Q — typically a peer's long-term or ECQV-reconstructed public
// key. Building it costs the odd-multiples precomputation plus one
// batched inversion; afterwards every ScalarMult/CombinedMult against
// Q uses cheap mixed (Jacobian + affine) additions and skips the
// per-call table build entirely. That is the win for fleets: repeated
// STS handshakes and rekeys against the same static peer stop paying
// the precomputation over and over.
//
// A MultTable is immutable after construction and safe for concurrent
// use.
type MultTable struct {
	c *Curve
	q Point

	fpTab  []fpAffine // default backend: affine odd multiples, Montgomery form
	bigTab []Point    // oracle backend: affine odd multiples
}

// NewMultTable precomputes the odd multiples [Q, 3Q, ..., 15Q] of q in
// affine form. An infinity q yields a table whose multiplications all
// return infinity (CombinedMult degenerates to the base term).
func (c *Curve) NewMultTable(q Point) *MultTable {
	t := &MultTable{c: c, q: q.Clone()}
	if q.IsInfinity() {
		return t
	}
	if c.useFP() {
		var s fpScratch
		var jacs [8]fpJac
		c.fpOddMultiples(q, &jacs, &s)
		t.fpTab = make([]fpAffine, len(jacs))
		c.fpBatchToAffine(jacs[:], t.fpTab)
	} else {
		t.bigTab = c.batchToAffine(c.oddMultiples(q, wnafWindow))
	}
	return t
}

// Point returns the table's base point Q.
func (t *MultTable) Point() Point { return t.q.Clone() }

// Curve returns the curve the table was built on.
func (t *MultTable) Curve() *Curve { return t.c }

// wnafAccumulateAffine adds k·Q into acc through the cached affine
// table (fp backend).
//
//detlint:allow hotpath takes the reduced scalar as big.Int at the recoding boundary; wnafFixed recodes it allocation-free
func (t *MultTable) wnafAccumulateAffine(acc *fpJac, kr *big.Int, s *fpScratch) {
	var dbuf [264]int8
	digits := wnafFixed(kr, wnafWindow, dbuf[:])
	for i := len(digits) - 1; i >= 0; i-- {
		t.c.fpDouble(acc, s)
		d := digits[i]
		if d > 0 {
			t.c.fpAddAffine(acc, &t.fpTab[(d-1)/2], false, s)
		} else if d < 0 {
			t.c.fpAddAffine(acc, &t.fpTab[(-d-1)/2], true, s)
		}
	}
}

// ScalarMult returns k·Q using the cached table.
//
//detlint:allow hotpath scalar reduction mod N at the public big.Int boundary before the limb-pure table walk
func (t *MultTable) ScalarMult(k *big.Int) Point {
	c := t.c
	if t.q.IsInfinity() {
		return Point{}
	}
	kr := c.reduceScalar(k)
	if kr == nil {
		return Point{}
	}
	if t.fpTab != nil {
		var s fpScratch
		var acc fpJac
		c.fpSetInfinity(&acc)
		t.wnafAccumulateAffine(&acc, kr, &s)
		return c.fpToPoint(&acc)
	}
	return c.fromJacobian(c.scalarMultWNAFAffine(t.bigTab, kr))
}

// CombinedMult returns u1·G + u2·Q using the cached table for the Q
// term — the steady-state ECDSA-verify path against a known signer.
//
//detlint:allow hotpath scalar reduction mod N at the public big.Int boundary: two O(1) allocs before the limb-pure loop
func (t *MultTable) CombinedMult(u1, u2 *big.Int) Point {
	c := t.c
	u1r := new(big.Int).Mod(u1, c.N)
	u2r := new(big.Int).Mod(u2, c.N)
	if t.q.IsInfinity() || u2r.Sign() == 0 {
		return c.ScalarBaseMult(u1r)
	}
	if u1r.Sign() == 0 {
		return t.ScalarMult(u2r)
	}
	if t.fpTab != nil {
		var s fpScratch
		var acc fpJac
		c.fpSetInfinity(&acc)
		t.wnafAccumulateAffine(&acc, u2r, &s)
		c.combAccumulate(&acc, u1r, &s)
		return c.fpToPoint(&acc)
	}
	// Oracle backend: Strauss–Shamir with the cached affine Q table.
	return c.fromJacobian(c.straussInterleave(u1r, u2r, func(acc *jacobianPoint, d int8) *jacobianPoint {
		if d > 0 {
			return c.jacAddAffine(acc, t.bigTab[(d-1)/2])
		}
		return c.jacAddAffine(acc, c.Neg(t.bigTab[(-d-1)/2]))
	}))
}
