package ec

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// deterministicRand adapts math/rand for reproducible scalar draws in
// tests; it implements io.Reader.
type deterministicRand struct{ r *rand.Rand }

func newDetRand(seed int64) *deterministicRand {
	return &deterministicRand{r: rand.New(rand.NewSource(seed))}
}

func (d *deterministicRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func randPoint(t *testing.T, c *Curve, rng *deterministicRand) Point {
	t.Helper()
	k, err := c.RandomScalar(rng)
	if err != nil {
		t.Fatalf("RandomScalar: %v", err)
	}
	return c.ScalarBaseMult(k)
}

func TestGroupLaws(t *testing.T) {
	rng := newDetRand(1)
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			p := randPoint(t, c, rng)
			q := randPoint(t, c, rng)
			r := randPoint(t, c, rng)

			// Commutativity.
			if !c.Add(p, q).Equal(c.Add(q, p)) {
				t.Error("P+Q != Q+P")
			}
			// Associativity.
			if !c.Add(c.Add(p, q), r).Equal(c.Add(p, c.Add(q, r))) {
				t.Error("(P+Q)+R != P+(Q+R)")
			}
			// Identity.
			if !c.Add(p, Infinity()).Equal(p) {
				t.Error("P+∞ != P")
			}
			if !c.Add(Infinity(), p).Equal(p) {
				t.Error("∞+P != P")
			}
			// Inverse.
			if !c.Add(p, c.Neg(p)).IsInfinity() {
				t.Error("P+(−P) != ∞")
			}
			// Doubling consistency.
			if !c.Double(p).Equal(c.Add(p, p)) {
				t.Error("2P != P+P")
			}
			// Subtraction.
			if !c.Sub(c.Add(p, q), q).Equal(p) {
				t.Error("(P+Q)−Q != P")
			}
			// Closure.
			if !c.IsOnCurve(c.Add(p, q)) {
				t.Error("P+Q left the curve")
			}
		})
	}
}

func TestDoubleInfinityAndTwoTorsion(t *testing.T) {
	c := P256()
	if !c.Double(Infinity()).IsInfinity() {
		t.Error("2·∞ != ∞")
	}
	// A point with y = 0 would be its own inverse; the NIST curves have
	// prime order so no such point exists, but the formula must still
	// return ∞ for the synthetic input.
	if !c.fromJacobian(c.jacDouble(&jacobianPoint{
		x: big.NewInt(5), y: new(big.Int), z: big.NewInt(1),
	})).IsInfinity() {
		t.Error("doubling a y=0 point must give ∞")
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	rng := newDetRand(2)
	for _, c := range Curves() {
		t.Run(c.Name, func(t *testing.T) {
			for i := 0; i < 16; i++ {
				p := randPoint(t, c, rng)

				enc := c.EncodeUncompressed(p)
				if len(enc) != c.UncompressedPointSize() {
					t.Fatalf("uncompressed length %d, want %d", len(enc), c.UncompressedPointSize())
				}
				dec, err := c.DecodePoint(enc)
				if err != nil {
					t.Fatalf("decode uncompressed: %v", err)
				}
				if !dec.Equal(p) {
					t.Fatal("uncompressed round trip failed")
				}

				comp := c.EncodeCompressed(p)
				if len(comp) != c.CompressedPointSize() {
					t.Fatalf("compressed length %d, want %d", len(comp), c.CompressedPointSize())
				}
				dec2, err := c.DecodePoint(comp)
				if err != nil {
					t.Fatalf("decode compressed: %v", err)
				}
				if !dec2.Equal(p) {
					t.Fatal("compressed round trip failed")
				}
			}
		})
	}
}

func TestEncodingInfinity(t *testing.T) {
	c := P256()
	enc := c.EncodeUncompressed(Infinity())
	if !bytes.Equal(enc, []byte{0x00}) {
		t.Errorf("infinity encoding = %x, want 00", enc)
	}
	p, err := c.DecodePoint(enc)
	if err != nil || !p.IsInfinity() {
		t.Errorf("infinity decode: %v, %v", p, err)
	}
	if !bytes.Equal(c.EncodeCompressed(Infinity()), []byte{0x00}) {
		t.Error("compressed infinity encoding wrong")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	c := P256()
	g := c.Generator()
	valid := c.EncodeUncompressed(g)

	cases := map[string][]byte{
		"empty":             {},
		"bad prefix":        {0x05, 1, 2, 3},
		"short":             valid[:10],
		"long":              append(append([]byte{}, valid...), 0x00),
		"infinity trailing": {0x00, 0x01},
	}
	for name, data := range cases {
		if _, err := c.DecodePoint(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}

	// Off-curve uncompressed point.
	offCurve := append([]byte{}, valid...)
	offCurve[len(offCurve)-1] ^= 0x01
	if _, err := c.DecodePoint(offCurve); err == nil {
		t.Error("off-curve point accepted")
	}

	// Compressed x with no square root. x = 5 on P-256: check whether
	// it lifts; find an x that does not by scanning a few candidates.
	found := false
	for x := int64(1); x < 64 && !found; x++ {
		cand := make([]byte, c.CompressedPointSize())
		cand[0] = 0x02
		big.NewInt(x).FillBytes(cand[1:])
		if _, err := c.DecodePoint(cand); err != nil {
			found = true
		}
	}
	if !found {
		t.Error("expected at least one non-residue x in [1,64)")
	}

	// Compressed x >= p must be rejected.
	tooBig := make([]byte, c.CompressedPointSize())
	tooBig[0] = 0x02
	new(big.Int).Set(c.P).FillBytes(tooBig[1:])
	if _, err := c.DecodePoint(tooBig); err == nil {
		t.Error("compressed x >= p accepted")
	}
}

func TestCompressionParity(t *testing.T) {
	// Both lifts of the same x must decode to distinct points that are
	// negatives of each other.
	c := P256()
	g := c.Generator()
	enc := c.EncodeCompressed(g)
	encFlip := append([]byte{}, enc...)
	encFlip[0] ^= 0x01

	p1, err := c.DecodePoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.DecodePoint(encFlip)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Equal(c.Neg(p1)) {
		t.Error("flipped parity did not decode to the negated point")
	}
}

// TestQuickEncodeDecode is a property test: every k·G round-trips
// through both encodings.
func TestQuickEncodeDecode(t *testing.T) {
	c := P256()
	f := func(seed int64) bool {
		k := new(big.Int).Mod(big.NewInt(seed), c.N)
		if k.Sign() <= 0 {
			k.SetInt64(1)
		}
		p := c.ScalarBaseMult(k)
		u, err1 := c.DecodePoint(c.EncodeUncompressed(p))
		cp, err2 := c.DecodePoint(c.EncodeCompressed(p))
		return err1 == nil && err2 == nil && u.Equal(p) && cp.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Error(err)
	}
}

func TestPointClone(t *testing.T) {
	c := P256()
	p := c.Generator()
	q := p.Clone()
	q.X.Add(q.X, big.NewInt(1))
	if p.X.Cmp(c.Gx) != 0 {
		t.Error("Clone aliased the original coordinates")
	}
	if !Infinity().Clone().IsInfinity() {
		t.Error("Clone of infinity must stay infinity")
	}
}
