//go:build ec_purebig

package ec

// useBigBackend: this build uses the math/big oracle for all point
// arithmetic (see backend_select.go for the default).
const useBigBackend = true
