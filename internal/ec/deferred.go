package ec

import (
	"math/big"

	"repro/internal/ec/fp"
)

// Deferred-normalization API. Every scalar multiplication ends with
// one field inversion to leave Jacobian coordinates; for a single call
// that is unavoidable, but a batch verifier checking an entire
// EstablishAll wave performs N independent CombinedMults and can share
// one inversion across all of them. The *Deferred variants stop right
// before the affine conversion and hand back an opaque DeferredPoint;
// BatchNormalize then converts any number of them with a single
// inversion per curve (Montgomery's trick via fp.Field.BatchInv on the
// default backend, batchToAffine on the purebig oracle).

// DeferredPoint is a scalar-multiplication result still in Jacobian
// coordinates, awaiting its affine conversion. The zero value (no
// curve) normalizes to the point at infinity. A DeferredPoint is
// produced by the *Deferred variants and consumed by Normalize or
// BatchNormalize; it is immutable and safe to copy.
type DeferredPoint struct {
	c  *Curve
	fp fpJac          // default backend result
	bg *jacobianPoint // purebig oracle result
}

// Curve returns the curve the deferred result lives on (nil for the
// zero value).
func (d *DeferredPoint) Curve() *Curve { return d.c }

// IsInfinity reports whether the deferred result is the point at
// infinity (no inversion needed to tell: Z = 0).
func (d *DeferredPoint) IsInfinity() bool {
	switch {
	case d.c == nil:
		return true
	case d.bg != nil:
		return d.bg.isInfinity()
	default:
		return d.c.fpIsInfinity(&d.fp)
	}
}

// Normalize converts the single deferred result to affine coordinates
// (one inversion). For batches, BatchNormalize amortizes the inversion
// instead.
func (d *DeferredPoint) Normalize() Point {
	switch {
	case d.c == nil:
		return Point{}
	case d.bg != nil:
		return d.c.fromJacobian(d.bg)
	default:
		return d.c.fpToPoint(&d.fp)
	}
}

// CombinedMultDeferred is CombinedMult with the affine conversion
// deferred: it returns u1·G + u2·Q as a DeferredPoint for a later
// BatchNormalize. The dispatch (degenerate scalars, infinity Q,
// backend selection) mirrors CombinedMult exactly, so normalizing the
// result is bit-identical to the eager call.
//
//detlint:allow hotpath scalar reduction mod N at the public big.Int boundary: two O(1) allocs before the limb-pure loop
func (c *Curve) CombinedMultDeferred(q Point, u1, u2 *big.Int) DeferredPoint {
	u1r := new(big.Int).Mod(u1, c.N)
	u2r := new(big.Int).Mod(u2, c.N)
	d := DeferredPoint{c: c}
	if c.useFP() {
		switch {
		case q.IsInfinity() || u2r.Sign() == 0:
			if u1r.Sign() == 0 {
				c.fpSetInfinity(&d.fp)
			} else {
				c.scalarBaseMultFPJac(&d.fp, u1r)
			}
		case u1r.Sign() == 0:
			c.scalarMultFPJac(&d.fp, q, u2r)
		default:
			c.combinedMultFPJac(&d.fp, q, u1r, u2r)
		}
		return d
	}
	switch {
	case q.IsInfinity() || u2r.Sign() == 0:
		if u1r.Sign() == 0 {
			d.bg = c.jacInfinity()
		} else {
			d.bg = c.scalarMultWNAFAffine(c.baseMultiples(), u1r)
		}
	case u1r.Sign() == 0:
		d.bg = c.scalarMultWNAF(c.oddMultiples(q, wnafWindow), u2r)
	default:
		d.bg = c.straussInterleave(u1r, u2r, c.qTableAdd(c.oddMultiples(q, wnafWindow)))
	}
	return d
}

// qTableAdd adapts a Jacobian odd-multiples table of Q into the digit
// callback straussInterleave expects (shared by the eager and deferred
// oracle paths).
func (c *Curve) qTableAdd(qTable []*jacobianPoint) func(*jacobianPoint, int8) *jacobianPoint {
	return func(acc *jacobianPoint, d int8) *jacobianPoint {
		if d > 0 {
			return c.jacAdd(acc, qTable[(d-1)/2])
		}
		return c.jacAdd(acc, c.jacNeg(qTable[(-d-1)/2]))
	}
}

// CombinedMultDeferred is MultTable.CombinedMult with the affine
// conversion deferred — the batch-verification hot path against a
// cached signer table.
//
//detlint:allow hotpath scalar reduction mod N at the public big.Int boundary: two O(1) allocs before the limb-pure loop
func (t *MultTable) CombinedMultDeferred(u1, u2 *big.Int) DeferredPoint {
	c := t.c
	u1r := new(big.Int).Mod(u1, c.N)
	u2r := new(big.Int).Mod(u2, c.N)
	d := DeferredPoint{c: c}
	if t.q.IsInfinity() || u2r.Sign() == 0 {
		// Degenerates to the base term; same dispatch as CombinedMult's
		// ScalarBaseMult call.
		if c.useFP() {
			if u1r.Sign() == 0 {
				c.fpSetInfinity(&d.fp)
			} else {
				c.scalarBaseMultFPJac(&d.fp, u1r)
			}
		} else {
			if u1r.Sign() == 0 {
				d.bg = c.jacInfinity()
			} else {
				d.bg = c.scalarMultWNAFAffine(c.baseMultiples(), u1r)
			}
		}
		return d
	}
	if t.fpTab != nil {
		var s fpScratch
		c.fpSetInfinity(&d.fp)
		t.wnafAccumulateAffine(&d.fp, u2r, &s)
		if u1r.Sign() != 0 {
			c.combAccumulate(&d.fp, u1r, &s)
		}
		return d
	}
	if u1r.Sign() == 0 {
		d.bg = c.scalarMultWNAFAffine(t.bigTab, u2r)
		return d
	}
	d.bg = c.straussInterleave(u1r, u2r, func(acc *jacobianPoint, dg int8) *jacobianPoint {
		if dg > 0 {
			return c.jacAddAffine(acc, t.bigTab[(dg-1)/2])
		}
		return c.jacAddAffine(acc, c.Neg(t.bigTab[(-dg-1)/2]))
	})
	return d
}

// BatchNormalize converts a batch of deferred results to affine
// coordinates with one field inversion per curve present in the batch
// (usually exactly one). Points at infinity and zero-value entries map
// to the infinity Point in place, mirroring the single-point
// conversion. The input is not modified.
func BatchNormalize(pts []DeferredPoint) []Point {
	out := make([]Point, len(pts))
	done := make([]bool, len(pts))
	for i := range pts {
		if done[i] {
			continue
		}
		c := pts[i].c
		if c == nil {
			done[i] = true
			continue // zero value → infinity Point
		}
		var idx []int
		for j := i; j < len(pts); j++ {
			if !done[j] && pts[j].c == c {
				idx = append(idx, j)
				done[j] = true
			}
		}
		if pts[i].bg != nil || !c.useFP() {
			jacs := make([]*jacobianPoint, len(idx))
			for k, j := range idx {
				jacs[k] = pts[j].bg
				if jacs[k] == nil {
					jacs[k] = c.jacInfinity()
				}
			}
			for k, p := range c.batchToAffine(jacs) {
				out[idx[k]] = p
			}
			continue
		}
		// fp leg: one BatchInv over the Z coordinates; infinity entries
		// (Z = 0) are skipped in place by BatchInv's zero convention.
		f := c.fpF
		zinv := make([]fp.Element, len(idx))
		for k, j := range idx {
			zinv[k] = pts[j].fp.z
		}
		f.BatchInv(zinv, zinv)
		var zinv2, x, y fp.Element
		for k, j := range idx {
			if f.IsZero(&zinv[k]) {
				continue // infinity → zero Point
			}
			f.Sqr(&zinv2, &zinv[k])
			f.Mul(&x, &pts[j].fp.x, &zinv2)
			f.Mul(&zinv2, &zinv2, &zinv[k])
			f.Mul(&y, &pts[j].fp.y, &zinv2)
			out[j] = Point{X: f.ToBig(&x), Y: f.ToBig(&y)}
		}
	}
	return out
}
