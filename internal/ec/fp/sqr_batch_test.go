package fp

import (
	"math/big"
	"math/rand"
	"testing"
)

// sqrEdgeValues is the boundary catalogue for the dedicated squaring:
// the generic edge set plus the Montgomery radix R = 2^256 (whose
// residue exercises the reduction's top rows), every limb boundary
// 2^64k, and values straddling them by one.
func sqrEdgeValues(p *big.Int) []*big.Int {
	one := big.NewInt(1)
	vals := edgeValues(p)
	vals = append(vals, new(big.Int).Lsh(one, 256)) // R
	for _, k := range []uint{32, 63, 64, 65, 127, 128, 129, 191, 192, 193, 255} {
		b := new(big.Int).Lsh(one, k)
		vals = append(vals,
			new(big.Int).Set(b),
			new(big.Int).Sub(b, one),
			new(big.Int).Add(b, one),
		)
	}
	return vals
}

// TestSqrMatchesMul is the differential gate for the dedicated
// squaring: on every bundled prime, Sqr(x) must equal Mul(x, x) (and
// both the big.Int oracle) over the edge catalogue and 10k random
// elements. This file compiles identically under -tags ec_purebig, so
// the purebig CI leg runs the same sweep.
func TestSqrMatchesMul(t *testing.T) {
	const randomCount = 10000
	for _, hex := range testPrimes {
		p := mustPrime(t, hex)
		f, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(7))
		vals := append(sqrEdgeValues(p), randValues(p, r, randomCount)...)
		want := new(big.Int)
		for _, v := range vals {
			var x, viaMul, viaSqr Element
			f.FromBig(&x, v)
			f.Mul(&viaMul, &x, &x)
			f.Sqr(&viaSqr, &x)
			if !f.Equal(&viaSqr, &viaMul) {
				t.Fatalf("p=%s: Sqr(%v) = %v, Mul(x,x) = %v",
					hex, v, f.ToBig(&viaSqr), f.ToBig(&viaMul))
			}
			vm := new(big.Int).Mod(v, p)
			want.Mul(vm, vm).Mod(want, p)
			if g := f.ToBig(&viaSqr); g.Cmp(want) != 0 {
				t.Fatalf("p=%s: Sqr(%v) = %v, oracle %v", hex, vm, g, want)
			}
			// In-place squaring must agree too.
			f.Sqr(&x, &x)
			if !f.Equal(&x, &viaSqr) {
				t.Fatalf("p=%s: in-place Sqr(%v) diverged", hex, vm)
			}
		}
	}
}

// TestSqrZeroAlloc pins the no-heap-allocation contract of the
// dedicated squaring (and, while here, of BatchInv beyond its single
// documented prefix-scratch slice).
func TestSqrZeroAlloc(t *testing.T) {
	p := mustPrime(t, testPrimes[0])
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var x Element
	f.FromBig(&x, big.NewInt(0xfeedface))
	if n := testing.AllocsPerRun(100, func() { f.Sqr(&x, &x) }); n != 0 {
		t.Fatalf("Sqr allocates %.1f times per op, want 0", n)
	}
}

func TestBatchInvEmpty(t *testing.T) {
	p := mustPrime(t, testPrimes[0])
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	f.BatchInv(nil, nil)
	f.BatchInv([]Element{}, []Element{})
}

func TestBatchInvLengthMismatch(t *testing.T) {
	p := mustPrime(t, testPrimes[0])
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BatchInv accepted mismatched slice lengths")
		}
	}()
	f.BatchInv(make([]Element, 2), make([]Element, 3))
}

func TestBatchInvSingle(t *testing.T) {
	p := mustPrime(t, testPrimes[0])
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var x, want Element
	f.FromBig(&x, big.NewInt(0xabcdef))
	f.Inv(&want, &x)
	got := make([]Element, 1)
	f.BatchInv(got, []Element{x})
	if !f.Equal(&got[0], &want) {
		t.Fatalf("BatchInv([x])[0] = %v, want Inv(x) = %v",
			f.ToBig(&got[0]), f.ToBig(&want))
	}
}

// TestBatchInvMatchesInv is the property test: on every bundled prime
// and a spread of batch sizes, BatchInv(xs)[i] == Inv(xs[i]) for all
// i, with zero elements skipped in place (0 ↦ 0) exactly as the
// batched affine conversion skips the point at infinity. Also checks
// full in-place aliasing and the all-zero batch.
func TestBatchInvMatchesInv(t *testing.T) {
	for _, hex := range testPrimes {
		p := mustPrime(t, hex)
		f, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(11))
		for _, n := range []int{1, 2, 3, 7, 64, 129} {
			xs := make([]Element, n)
			for i := range xs {
				f.FromBig(&xs[i], new(big.Int).Rand(r, p))
			}
			// Sprinkle zeros, including at the batch boundaries.
			if n >= 2 {
				f.SetZero(&xs[0])
				f.SetZero(&xs[n-1])
			}
			if n >= 7 {
				f.SetZero(&xs[n/2])
			}
			dst := make([]Element, n)
			f.BatchInv(dst, xs)
			for i := range xs {
				var want Element
				f.Inv(&want, &xs[i])
				if !f.Equal(&dst[i], &want) {
					t.Fatalf("p=%s n=%d: BatchInv[%d] = %v, Inv = %v",
						hex, n, i, f.ToBig(&dst[i]), f.ToBig(&want))
				}
			}
			// Full aliasing: invert in place and compare.
			inPlace := make([]Element, n)
			copy(inPlace, xs)
			f.BatchInv(inPlace, inPlace)
			for i := range inPlace {
				if !f.Equal(&inPlace[i], &dst[i]) {
					t.Fatalf("p=%s n=%d: in-place BatchInv[%d] diverged", hex, n, i)
				}
			}
		}
		// All-zero batch: every output zero, no panic.
		zeros := make([]Element, 5)
		out := make([]Element, 5)
		f.BatchInv(out, zeros)
		for i := range out {
			if !f.IsZero(&out[i]) {
				t.Fatalf("p=%s: BatchInv(all-zero)[%d] != 0", hex, i)
			}
		}
	}
}

func BenchmarkSqr(b *testing.B) {
	p, _ := new(big.Int).SetString(testPrimes[0], 16)
	f, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	var x Element
	f.FromBig(&x, big.NewInt(0xdeadbeef))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Sqr(&x, &x)
	}
}

// BenchmarkSqrViaMul is the baseline the dedicated squaring is judged
// against: the same op through the generic CIOS multiplier.
func BenchmarkSqrViaMul(b *testing.B) {
	p, _ := new(big.Int).SetString(testPrimes[0], 16)
	f, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	var x Element
	f.FromBig(&x, big.NewInt(0xdeadbeef))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Mul(&x, &x, &x)
	}
}

// BenchmarkBatchInv measures Montgomery's trick at the batch sizes the
// EC layer actually uses (8 = wNAF odd multiples, 15 = comb rows,
// 64 = the acceptance-criteria size) against BenchmarkInvSequential's
// per-element Fermat baseline.
func BenchmarkBatchInv(b *testing.B) {
	p, _ := new(big.Int).SetString(testPrimes[0], 16)
	f, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{8, 15, 64} {
		xs := make([]Element, n)
		r := rand.New(rand.NewSource(13))
		for i := range xs {
			f.FromBig(&xs[i], new(big.Int).Rand(r, f.Modulus()))
		}
		dst := make([]Element, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.BatchInv(dst, xs)
			}
		})
	}
}

func BenchmarkInvSequential(b *testing.B) {
	p, _ := new(big.Int).SetString(testPrimes[0], 16)
	f, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{8, 15, 64} {
		xs := make([]Element, n)
		r := rand.New(rand.NewSource(13))
		for i := range xs {
			f.FromBig(&xs[i], new(big.Int).Rand(r, f.Modulus()))
		}
		dst := make([]Element, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range xs {
					f.Inv(&dst[j], &xs[j])
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 8:
		return "n=8"
	case 15:
		return "n=15"
	case 64:
		return "n=64"
	}
	return "n=?"
}
