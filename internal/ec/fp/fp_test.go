package fp

import (
	"math/big"
	"math/rand"
	"testing"
)

// The three bundled curve primes plus a small prime to exercise zero
// top limbs aggressively.
var testPrimes = []string{
	"ffffffff00000001000000000000000000000000ffffffffffffffffffffffff", // P-256
	"ffffffffffffffffffffffffffffffff000000000000000000000001",         // P-224
	"fffffffffffffffffffffffffffffffeffffffffffffffff",                 // P-192
	"fffffffb", // 2^32 − 5, exercises three zero limbs
}

func mustPrime(t *testing.T, hex string) *big.Int {
	t.Helper()
	p, ok := new(big.Int).SetString(hex, 16)
	if !ok {
		t.Fatalf("bad prime constant %s", hex)
	}
	return p
}

// edgeValues returns the boundary cases every op must survive:
// 0, 1, 2, p−2, p−1, plus non-canonical inputs p, p+1, −1, −p−5 and a
// value far above p (all must reduce identically to the big.Int oracle).
func edgeValues(p *big.Int) []*big.Int {
	one := big.NewInt(1)
	vals := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(p, big.NewInt(2)),
		new(big.Int).Sub(p, one),
		new(big.Int).Set(p),
		new(big.Int).Add(p, one),
		big.NewInt(-1),
		new(big.Int).Neg(new(big.Int).Add(p, big.NewInt(5))),
		new(big.Int).Mul(p, big.NewInt(97)),
	}
	return vals
}

func randValues(p *big.Int, r *rand.Rand, n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int).Rand(r, p)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	for _, hex := range testPrimes {
		p := mustPrime(t, hex)
		f, err := New(p)
		if err != nil {
			t.Fatalf("New(%s): %v", hex, err)
		}
		r := rand.New(rand.NewSource(1))
		for _, v := range append(edgeValues(p), randValues(p, r, 50)...) {
			var e Element
			f.FromBig(&e, v)
			want := new(big.Int).Mod(v, p)
			if got := f.ToBig(&e); got.Cmp(want) != 0 {
				t.Fatalf("p=%s: roundtrip(%v) = %v, want %v", hex, v, got, want)
			}
		}
	}
}

func TestNewRejectsBadModulus(t *testing.T) {
	for _, v := range []*big.Int{
		big.NewInt(0),
		big.NewInt(-7),
		big.NewInt(10),                       // even
		new(big.Int).Lsh(big.NewInt(1), 300), // too wide (and even)
		new(big.Int).Add(new(big.Int).Lsh(big.NewInt(1), 257), big.NewInt(1)), // odd but too wide
	} {
		if _, err := New(v); err == nil {
			t.Errorf("New(%v) accepted an invalid modulus", v)
		}
	}
}

// TestDifferentialOps drives every field op against the math/big
// oracle over edge values and a randomized sweep.
func TestDifferentialOps(t *testing.T) {
	for _, hex := range testPrimes {
		p := mustPrime(t, hex)
		f, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(2))
		vals := append(edgeValues(p), randValues(p, r, 40)...)

		for _, a := range vals {
			var ea Element
			f.FromBig(&ea, a)
			am := new(big.Int).Mod(a, p)

			// Neg
			var got Element
			f.Neg(&got, &ea)
			want := new(big.Int).Neg(am)
			want.Mod(want, p)
			if g := f.ToBig(&got); g.Cmp(want) != 0 {
				t.Fatalf("p=%s: Neg(%v) = %v, want %v", hex, am, g, want)
			}
			// Sqr
			f.Sqr(&got, &ea)
			want.Mul(am, am).Mod(want, p)
			if g := f.ToBig(&got); g.Cmp(want) != 0 {
				t.Fatalf("p=%s: Sqr(%v) = %v, want %v", hex, am, g, want)
			}
			// Inv (skip zero: no inverse; fp returns 0 by convention)
			f.Inv(&got, &ea)
			if am.Sign() == 0 {
				if !f.IsZero(&got) {
					t.Fatalf("p=%s: Inv(0) != 0", hex)
				}
			} else {
				want.ModInverse(am, p)
				if g := f.ToBig(&got); g.Cmp(want) != 0 {
					t.Fatalf("p=%s: Inv(%v) = %v, want %v", hex, am, g, want)
				}
			}

			for _, b := range vals {
				var eb Element
				f.FromBig(&eb, b)
				bm := new(big.Int).Mod(b, p)

				f.Add(&got, &ea, &eb)
				want.Add(am, bm).Mod(want, p)
				if g := f.ToBig(&got); g.Cmp(want) != 0 {
					t.Fatalf("p=%s: Add(%v, %v) = %v, want %v", hex, am, bm, g, want)
				}
				f.Sub(&got, &ea, &eb)
				want.Sub(am, bm).Mod(want, p)
				if g := f.ToBig(&got); g.Cmp(want) != 0 {
					t.Fatalf("p=%s: Sub(%v, %v) = %v, want %v", hex, am, bm, g, want)
				}
				f.Mul(&got, &ea, &eb)
				want.Mul(am, bm).Mod(want, p)
				if g := f.ToBig(&got); g.Cmp(want) != 0 {
					t.Fatalf("p=%s: Mul(%v, %v) = %v, want %v", hex, am, bm, g, want)
				}
			}
		}
	}
}

// TestAliasing verifies that in-place calls (z aliasing x and/or y)
// produce the same results as the non-aliased form.
func TestAliasing(t *testing.T) {
	p := mustPrime(t, testPrimes[0])
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := new(big.Int).Rand(r, p)
		b := new(big.Int).Rand(r, p)
		var ea, eb, ref Element
		f.FromBig(&ea, a)
		f.FromBig(&eb, b)

		// z aliases x
		f.Mul(&ref, &ea, &eb)
		x := ea
		f.Mul(&x, &x, &eb)
		if !f.Equal(&x, &ref) {
			t.Fatalf("Mul alias z=x mismatch")
		}
		// z aliases y
		y := eb
		f.Mul(&y, &ea, &y)
		if !f.Equal(&y, &ref) {
			t.Fatalf("Mul alias z=y mismatch")
		}
		// all three alias (squaring)
		f.Sqr(&ref, &ea)
		s := ea
		f.Mul(&s, &s, &s)
		if !f.Equal(&s, &ref) {
			t.Fatalf("Mul alias z=x=y mismatch")
		}
		// Add/Sub aliasing
		f.Add(&ref, &ea, &eb)
		x = ea
		f.Add(&x, &x, &eb)
		if !f.Equal(&x, &ref) {
			t.Fatalf("Add alias mismatch")
		}
		f.Sub(&ref, &ea, &eb)
		x = ea
		f.Sub(&x, &x, &eb)
		if !f.Equal(&x, &ref) {
			t.Fatalf("Sub alias mismatch")
		}
	}
}

func TestEqualIsZero(t *testing.T) {
	p := mustPrime(t, testPrimes[0])
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var z, o Element
	f.SetZero(&z)
	if !f.IsZero(&z) {
		t.Fatal("SetZero not zero")
	}
	f.SetOne(&o)
	if f.IsZero(&o) || f.Equal(&z, &o) {
		t.Fatal("one compares equal to zero")
	}
	if got := f.ToBig(&o); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("One = %v, want 1", got)
	}
	// p reduces to zero even from a non-canonical encoding.
	var e Element
	f.FromBig(&e, f.Modulus())
	if !f.IsZero(&e) {
		t.Fatal("FromBig(p) not zero")
	}
}

func BenchmarkMul(b *testing.B) {
	p, _ := new(big.Int).SetString(testPrimes[0], 16)
	f, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	var x, y Element
	f.FromBig(&x, big.NewInt(0xdeadbeef))
	f.FromBig(&y, new(big.Int).Sub(p, big.NewInt(12345)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Mul(&x, &x, &y)
	}
}

func BenchmarkInv(b *testing.B) {
	p, _ := new(big.Int).SetString(testPrimes[0], 16)
	f, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	var x Element
	f.FromBig(&x, big.NewInt(0xdeadbeef))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Inv(&x, &x)
	}
}
