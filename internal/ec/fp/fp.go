// Package fp implements fixed-size prime-field arithmetic for the
// elliptic-curve hot path: 4×64-bit limb elements held in Montgomery
// form, with CIOS (coarsely integrated operand scanning) multiplication
// and fully in-place, allocation-free operations.
//
// One Field instance is built per curve prime at package-ec init time.
// All bundled primes (P-256, P-224, P-192) are odd and fit in four
// 64-bit limbs, so a single generic implementation with R = 2^256
// serves every curve; narrower primes simply carry zero top limbs.
//
// Like the rest of internal/ec this code is variable time: it is a
// research/simulation substrate, not a production implementation. The
// Montgomery representation is used purely for speed (word-level
// reduction instead of math/big division), not for side-channel
// hygiene.
package fp

import (
	"errors"
	"math/big"
	"math/bits"
)

// Limbs is the fixed limb count of an Element. R = 2^(64·Limbs).
const Limbs = 4

// Element is a field element in Montgomery form: the element a is
// stored as a·R mod p, little-endian limbs. The zero value is the
// field's zero (0·R = 0).
type Element [Limbs]uint64

// Field holds the per-prime Montgomery constants. It is immutable
// after New and safe for concurrent use.
type Field struct {
	p    [Limbs]uint64 // the modulus, little-endian limbs
	n0   uint64        // −p⁻¹ mod 2^64 (Montgomery reduction factor)
	rr   Element       // R² mod p, the to-Montgomery conversion factor
	one  Element       // R mod p, i.e. 1 in Montgomery form
	pm2  [Limbs]uint64 // p − 2, the Fermat inversion exponent
	pBig *big.Int      // the modulus as big.Int (boundary conversions)
}

// New builds the Montgomery context for an odd prime p < 2^256.
func New(p *big.Int) (*Field, error) {
	if p.Sign() <= 0 || p.Bit(0) == 0 || p.BitLen() > 64*Limbs {
		return nil, errors.New("fp: modulus must be an odd prime of at most 256 bits")
	}
	f := &Field{pBig: new(big.Int).Set(p)}
	fillLimbs(&f.p, p)

	// n0 = −p⁻¹ mod 2^64 by Newton iteration: each step doubles the
	// number of correct low bits, so five steps reach 64 from 5.
	inv := f.p[0] // correct to 3 bits for odd p
	for i := 0; i < 5; i++ {
		inv *= 2 - f.p[0]*inv
	}
	f.n0 = -inv

	r := new(big.Int).Lsh(big.NewInt(1), 64*Limbs)
	rModP := new(big.Int).Mod(r, p)
	fillLimbs((*[Limbs]uint64)(&f.one), rModP)
	rr := new(big.Int).Mul(rModP, rModP)
	rr.Mod(rr, p)
	fillLimbs((*[Limbs]uint64)(&f.rr), rr)

	pm2 := new(big.Int).Sub(p, big.NewInt(2))
	fillLimbs(&f.pm2, pm2)
	return f, nil
}

// fillLimbs writes v (< 2^256) into little-endian limbs.
func fillLimbs(dst *[Limbs]uint64, v *big.Int) {
	var buf [8 * Limbs]byte
	v.FillBytes(buf[:])
	for i := 0; i < Limbs; i++ {
		off := 8 * (Limbs - 1 - i)
		dst[i] = uint64(buf[off])<<56 | uint64(buf[off+1])<<48 |
			uint64(buf[off+2])<<40 | uint64(buf[off+3])<<32 |
			uint64(buf[off+4])<<24 | uint64(buf[off+5])<<16 |
			uint64(buf[off+6])<<8 | uint64(buf[off+7])
	}
}

// Modulus returns the prime as a fresh big.Int.
func (f *Field) Modulus() *big.Int { return new(big.Int).Set(f.pBig) }

// One returns 1 in Montgomery form.
func (f *Field) One() Element { return f.one }

// SetZero sets z to 0.
func (f *Field) SetZero(z *Element) { *z = Element{} }

// SetOne sets z to 1 (Montgomery form).
func (f *Field) SetOne(z *Element) { *z = f.one }

// IsZero reports whether x is 0. Zero's Montgomery form is zero and
// elements are kept fully reduced, so a limb test suffices.
func (f *Field) IsZero(x *Element) bool {
	return x[0]|x[1]|x[2]|x[3] == 0
}

// Equal reports whether x and y are the same field element. Reduced
// Montgomery representations are unique, so limb equality is exact.
func (f *Field) Equal(x, y *Element) bool {
	return x[0] == y[0] && x[1] == y[1] && x[2] == y[2] && x[3] == y[3]
}

// FromBig converts a big.Int (any sign, any magnitude) into Montgomery
// form, reducing modulo p. Allocates only via big.Int scratch; intended
// for the affine boundary, not the inner loop.
func (f *Field) FromBig(z *Element, v *big.Int) {
	var red *big.Int
	if v.Sign() < 0 || v.Cmp(f.pBig) >= 0 {
		red = new(big.Int).Mod(v, f.pBig)
	} else {
		red = v
	}
	var t Element
	fillLimbs((*[Limbs]uint64)(&t), red)
	f.Mul(z, &t, &f.rr) // t·R² · R⁻¹ = t·R
}

// ToBig converts x out of Montgomery form into a fresh big.Int.
func (f *Field) ToBig(x *Element) *big.Int {
	var t Element
	one := Element{1}
	f.Mul(&t, x, &one) // x·R · 1 · R⁻¹ = x
	var buf [8 * Limbs]byte
	for i := 0; i < Limbs; i++ {
		off := 8 * (Limbs - 1 - i)
		buf[off] = byte(t[i] >> 56)
		buf[off+1] = byte(t[i] >> 48)
		buf[off+2] = byte(t[i] >> 40)
		buf[off+3] = byte(t[i] >> 32)
		buf[off+4] = byte(t[i] >> 24)
		buf[off+5] = byte(t[i] >> 16)
		buf[off+6] = byte(t[i] >> 8)
		buf[off+7] = byte(t[i])
	}
	return new(big.Int).SetBytes(buf[:])
}

// Add sets z = x + y mod p. Aliasing among z, x, y is allowed.
func (f *Field) Add(z, x, y *Element) {
	var t Element
	var c uint64
	t[0], c = bits.Add64(x[0], y[0], 0)
	t[1], c = bits.Add64(x[1], y[1], c)
	t[2], c = bits.Add64(x[2], y[2], c)
	t[3], c = bits.Add64(x[3], y[3], c)
	// x + y < 2p may exceed 2^256 (carry set) or merely exceed p.
	var r Element
	var b uint64
	r[0], b = bits.Sub64(t[0], f.p[0], 0)
	r[1], b = bits.Sub64(t[1], f.p[1], b)
	r[2], b = bits.Sub64(t[2], f.p[2], b)
	r[3], b = bits.Sub64(t[3], f.p[3], b)
	if c != 0 || b == 0 {
		*z = r
	} else {
		*z = t
	}
}

// Dbl sets z = 2x mod p.
func (f *Field) Dbl(z, x *Element) { f.Add(z, x, x) }

// Sub sets z = x − y mod p. Aliasing is allowed.
func (f *Field) Sub(z, x, y *Element) {
	var t Element
	var b uint64
	t[0], b = bits.Sub64(x[0], y[0], 0)
	t[1], b = bits.Sub64(x[1], y[1], b)
	t[2], b = bits.Sub64(x[2], y[2], b)
	t[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		var c uint64
		t[0], c = bits.Add64(t[0], f.p[0], 0)
		t[1], c = bits.Add64(t[1], f.p[1], c)
		t[2], c = bits.Add64(t[2], f.p[2], c)
		t[3], _ = bits.Add64(t[3], f.p[3], c)
	}
	*z = t
}

// Neg sets z = −x mod p.
func (f *Field) Neg(z, x *Element) {
	if f.IsZero(x) {
		*z = Element{}
		return
	}
	var b uint64
	z[0], b = bits.Sub64(f.p[0], x[0], 0)
	z[1], b = bits.Sub64(f.p[1], x[1], b)
	z[2], b = bits.Sub64(f.p[2], x[2], b)
	z[3], _ = bits.Sub64(f.p[3], x[3], b)
}

// madd1 returns the 128-bit a·b + c as (hi, lo).
func madd1(a, b, c uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	var carry uint64
	lo, carry = bits.Add64(lo, c, 0)
	hi += carry // hi ≤ 2^64−2, no overflow
	return hi, lo
}

// madd2 returns the 128-bit a·b + c + d as (hi, lo).
func madd2(a, b, c, d uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	var carry uint64
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi, lo
}

// Mul sets z = x·y·R⁻¹ mod p — Montgomery multiplication via the
// textbook CIOS loop (Koç, Acar, Kaliski 1996). With both inputs in
// Montgomery form the result is the Montgomery form of the product.
// Aliasing among z, x, y is allowed. No heap allocation.
func (f *Field) Mul(z, x, y *Element) {
	// t[0..3] running accumulator, t4/t5 the two overflow words of the
	// (Limbs+2)-word CIOS state. The modulus' top limb may exceed 2^63
	// (it does for P-256), so the no-carry shortcut is unavailable and
	// both overflow words are tracked.
	var t [Limbs]uint64
	var t4, t5 uint64
	for i := 0; i < Limbs; i++ {
		yi := y[i]
		var c, carry uint64
		c, t[0] = madd1(x[0], yi, t[0])
		c, t[1] = madd2(x[1], yi, t[1], c)
		c, t[2] = madd2(x[2], yi, t[2], c)
		c, t[3] = madd2(x[3], yi, t[3], c)
		t4, carry = bits.Add64(t4, c, 0)
		t5 = carry // previous shift left t5 = 0, so ∈ {0, 1}

		m := t[0] * f.n0
		c, _ = madd1(m, f.p[0], t[0]) // low word cancels to 0 by choice of m
		c, t[0] = madd2(m, f.p[1], t[1], c)
		c, t[1] = madd2(m, f.p[2], t[2], c)
		c, t[2] = madd2(m, f.p[3], t[3], c)
		t[3], carry = bits.Add64(t4, c, 0)
		t4 = t5 + carry
		t5 = 0
	}
	// Result is t (with possible overflow bit t4) < 2p; one conditional
	// subtraction brings it below p.
	var r Element
	var b uint64
	r[0], b = bits.Sub64(t[0], f.p[0], 0)
	r[1], b = bits.Sub64(t[1], f.p[1], b)
	r[2], b = bits.Sub64(t[2], f.p[2], b)
	r[3], b = bits.Sub64(t[3], f.p[3], b)
	if t4 != 0 || b == 0 {
		*z = r
	} else {
		z[0], z[1], z[2], z[3] = t[0], t[1], t[2], t[3]
	}
}

// Sqr sets z = x²·R⁻¹ mod p — the dedicated Montgomery squaring.
// Unlike Mul, the 2·Limbs-word full square is formed directly: the six
// off-diagonal products x_i·x_j (i < j) are computed once and doubled
// by a single carry-chain shift, then the four diagonal squares x_i²
// are added in, saving ten of Mul's sixteen word multiplications.
// The Montgomery reduction (four SOS steps over the 8-word square) is
// fused onto the same accumulator. Aliasing z with x is allowed. No
// heap allocation. Squarings dominate the doubling chains of every
// scalar multiplication and every Fermat inversion, so this is the
// single hottest word loop in the package.
func (f *Field) Sqr(z, x *Element) {
	// --- full square t[0..7] = x² ---
	// Off-diagonal half first: t = Σ_{i<j} x_i·x_j·2^(64(i+j)).
	p01h, p01l := bits.Mul64(x[0], x[1])
	p02h, p02l := bits.Mul64(x[0], x[2])
	p03h, p03l := bits.Mul64(x[0], x[3])
	p12h, p12l := bits.Mul64(x[1], x[2])
	p13h, p13l := bits.Mul64(x[1], x[3])
	p23h, p23l := bits.Mul64(x[2], x[3])

	var t [2 * Limbs]uint64
	var c uint64
	t[1] = p01l
	t[2], c = bits.Add64(p01h, p02l, 0)
	t[3], c = bits.Add64(p02h, p03l, c)
	t[4], _ = bits.Add64(p03h, 0, c) // p03h ≤ 2^64−2, carry absorbs

	t[3], c = bits.Add64(t[3], p12l, 0)
	t[4], c = bits.Add64(t[4], p12h, c)
	t[5] = c

	t[4], c = bits.Add64(t[4], p13l, 0)
	t[5], c = bits.Add64(t[5], p13h, c)
	t[6] = c

	t[5], c = bits.Add64(t[5], p23l, 0)
	t[6], c = bits.Add64(t[6], p23h, c)
	t[7] = c

	// Double the off-diagonal half (2^512 cannot overflow: the full
	// square x² < 2^512 bounds it).
	t[7] = t[7]<<1 | t[6]>>63
	t[6] = t[6]<<1 | t[5]>>63
	t[5] = t[5]<<1 | t[4]>>63
	t[4] = t[4]<<1 | t[3]>>63
	t[3] = t[3]<<1 | t[2]>>63
	t[2] = t[2]<<1 | t[1]>>63
	t[1] = t[1] << 1

	// Add the diagonal x_i² at word pairs (2i, 2i+1).
	d0h, d0l := bits.Mul64(x[0], x[0])
	d1h, d1l := bits.Mul64(x[1], x[1])
	d2h, d2l := bits.Mul64(x[2], x[2])
	d3h, d3l := bits.Mul64(x[3], x[3])
	t[0] = d0l
	t[1], c = bits.Add64(t[1], d0h, 0)
	t[2], c = bits.Add64(t[2], d1l, c)
	t[3], c = bits.Add64(t[3], d1h, c)
	t[4], c = bits.Add64(t[4], d2l, c)
	t[5], c = bits.Add64(t[5], d2h, c)
	t[6], c = bits.Add64(t[6], d3l, c)
	t[7], _ = bits.Add64(t[7], d3h, c) // exact: total is x² < 2^512

	// --- Montgomery reduction (SOS): four rows of m_i·p folded in.
	// The running value stays < p·(p + 2^256) < 2^513, so a single
	// overflow bit beyond t[7] suffices.
	var hi uint64
	m := t[0] * f.n0
	c, _ = madd1(m, f.p[0], t[0])
	c, t[1] = madd2(m, f.p[1], t[1], c)
	c, t[2] = madd2(m, f.p[2], t[2], c)
	c, t[3] = madd2(m, f.p[3], t[3], c)
	t[4], c = bits.Add64(t[4], c, 0)
	t[5], c = bits.Add64(t[5], 0, c)
	t[6], c = bits.Add64(t[6], 0, c)
	t[7], c = bits.Add64(t[7], 0, c)
	hi = c

	m = t[1] * f.n0
	c, _ = madd1(m, f.p[0], t[1])
	c, t[2] = madd2(m, f.p[1], t[2], c)
	c, t[3] = madd2(m, f.p[2], t[3], c)
	c, t[4] = madd2(m, f.p[3], t[4], c)
	t[5], c = bits.Add64(t[5], c, 0)
	t[6], c = bits.Add64(t[6], 0, c)
	t[7], c = bits.Add64(t[7], 0, c)
	hi += c

	m = t[2] * f.n0
	c, _ = madd1(m, f.p[0], t[2])
	c, t[3] = madd2(m, f.p[1], t[3], c)
	c, t[4] = madd2(m, f.p[2], t[4], c)
	c, t[5] = madd2(m, f.p[3], t[5], c)
	t[6], c = bits.Add64(t[6], c, 0)
	t[7], c = bits.Add64(t[7], 0, c)
	hi += c

	m = t[3] * f.n0
	c, _ = madd1(m, f.p[0], t[3])
	c, t[4] = madd2(m, f.p[1], t[4], c)
	c, t[5] = madd2(m, f.p[2], t[5], c)
	c, t[6] = madd2(m, f.p[3], t[6], c)
	t[7], c = bits.Add64(t[7], c, 0)
	hi += c

	// Result is t[4..7] (+ overflow bit) < 2p; one conditional
	// subtraction, as in Mul.
	var r Element
	var b uint64
	r[0], b = bits.Sub64(t[4], f.p[0], 0)
	r[1], b = bits.Sub64(t[5], f.p[1], b)
	r[2], b = bits.Sub64(t[6], f.p[2], b)
	r[3], b = bits.Sub64(t[7], f.p[3], b)
	if hi != 0 || b == 0 {
		*z = r
	} else {
		z[0], z[1], z[2], z[3] = t[4], t[5], t[6], t[7]
	}
}

// BatchInv sets dst[i] = xs[i]⁻¹ mod p for every i, amortizing one
// Fermat inversion across the whole batch via Montgomery's trick:
// invert the running product of all inputs, then peel per-element
// inverses off with two multiplications each (3(n−1) multiplications
// plus one Inv, versus n full exponentiations). Zero elements are
// skipped in place — dst[i] = 0, matching Inv's 0 ↦ 0 convention and
// the way batched point normalization skips the point at infinity.
// dst and xs must have equal length and may alias (including fully:
// BatchInv(xs, xs) inverts in place). The only heap allocation is the
// prefix-product scratch, one Element per input.
func (f *Field) BatchInv(dst, xs []Element) {
	if len(dst) != len(xs) {
		panic("fp: BatchInv length mismatch")
	}
	n := len(xs)
	if n == 0 {
		return
	}
	// prefix[i] = product of the nonzero xs[0..i-1].
	prefix := make([]Element, n+1)
	prefix[0] = f.one
	for i := range xs {
		if f.IsZero(&xs[i]) {
			prefix[i+1] = prefix[i]
			continue
		}
		f.Mul(&prefix[i+1], &prefix[i], &xs[i])
	}
	var inv Element
	f.Inv(&inv, &prefix[n]) // all-zero batch: Inv(1) = 1, loop writes only zeros
	for i := n - 1; i >= 0; i-- {
		if f.IsZero(&xs[i]) {
			f.SetZero(&dst[i])
			continue
		}
		x := xs[i] // value copy: dst may alias xs
		f.Mul(&dst[i], &prefix[i], &inv)
		f.Mul(&inv, &inv, &x)
	}
}

// Inv sets z = x⁻¹ mod p via Fermat's little theorem: x^(p−2). The
// exponentiation is 4-bit fixed-window (≈ 255 squarings + 64
// multiplications), variable time like everything else here. Inv of 0
// yields 0; callers that care check IsZero first.
func (f *Field) Inv(z, x *Element) {
	// Precompute x^1..x^15.
	var tab [15]Element
	tab[0] = *x
	for i := 1; i < 15; i++ {
		f.Mul(&tab[i], &tab[i-1], x)
	}
	r := f.one
	started := false
	for i := Limbs - 1; i >= 0; i-- {
		w := f.pm2[i]
		for nib := 15; nib >= 0; nib-- {
			if started {
				f.Sqr(&r, &r)
				f.Sqr(&r, &r)
				f.Sqr(&r, &r)
				f.Sqr(&r, &r)
			}
			d := (w >> (4 * uint(nib))) & 0xf
			if d != 0 {
				if started {
					f.Mul(&r, &r, &tab[d-1])
				} else {
					r = tab[d-1]
					started = true
				}
			}
		}
	}
	*z = r
}
