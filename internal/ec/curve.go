// Package ec implements prime-field elliptic curve arithmetic for short
// Weierstrass curves y² = x³ + ax + b over GF(p).
//
// The package provides the group operations, scalar multiplication and
// SEC 1 point encodings needed by the ECQV implicit-certificate scheme
// and the ECDSA/STS protocol stack built on top of it. Three NIST prime
// curves are bundled: secp256r1 (P-256), secp224r1 (P-224) and
// secp192r1 (P-192), matching the curves used by the paper's micro-ecc
// based evaluation.
//
// The implementation is a big.Int based research/simulation substrate:
// it is algorithmically faithful but NOT constant time and must not be
// used to protect real traffic.
package ec

import (
	"fmt"
	"math/big"
	"sync"

	"repro/internal/ec/fp"
)

// Curve describes a short Weierstrass curve y² = x³ + ax + b over the
// prime field GF(P) with a base point G of prime order N.
type Curve struct {
	Name    string   // canonical SEC 2 name, e.g. "secp256r1"
	P       *big.Int // field prime
	A       *big.Int // curve coefficient a (−3 mod p for NIST curves)
	B       *big.Int // curve coefficient b
	Gx, Gy  *big.Int // base point
	N       *big.Int // order of the base point
	H       int      // cofactor
	BitSize int      // size of the field in bits

	// byteLen is the length of a field element in bytes.
	byteLen int

	// baseTable caches odd multiples of G (affine, via batch
	// inversion) for wNAF base-point multiplication on the math/big
	// oracle path; built lazily.
	baseOnce  sync.Once
	baseTable []Point

	// aIsMinus3 records whether a ≡ −3 (mod p), enabling the faster
	// doubling formula used by the NIST curves.
	aIsMinus3 bool

	// fpF is the fixed-limb Montgomery field context of the default
	// backend (nil when the prime does not fit, which never happens
	// for the bundled curves), with the curve coefficient a in
	// Montgomery form alongside.
	fpF *fp.Field
	fpA fp.Element

	// comb is the lazily built fixed-base comb table for ScalarBaseMult
	// (one row of 15 affine points per 4-bit scalar window).
	combOnce sync.Once
	comb     []combRow
}

// useFP reports whether the fixed-limb backend serves this curve in
// this build.
func (c *Curve) useFP() bool { return !useBigBackend && c.fpF != nil }

// UsesFPBackend reports whether this build selected the fixed-limb
// Montgomery backend (false under -tags ec_purebig). Allocation-budget
// gates in dependent packages only apply to the fp backend; the
// math/big oracle allocates freely by design.
func UsesFPBackend() bool { return !useBigBackend }

// ByteLen returns the length in bytes of a serialized field element
// (and therefore of a coordinate or scalar) on this curve.
func (c *Curve) ByteLen() int { return c.byteLen }

// String implements fmt.Stringer.
func (c *Curve) String() string { return c.Name }

func mustInt(hexStr string) *big.Int {
	v, ok := new(big.Int).SetString(hexStr, 16)
	if !ok {
		panic("ec: bad curve constant " + hexStr)
	}
	return v
}

func newCurve(name string, p, a, b, gx, gy, n string, h, bits int) *Curve {
	c := &Curve{
		Name:    name,
		P:       mustInt(p),
		A:       mustInt(a),
		B:       mustInt(b),
		Gx:      mustInt(gx),
		Gy:      mustInt(gy),
		N:       mustInt(n),
		H:       h,
		BitSize: bits,
	}
	c.byteLen = (bits + 7) / 8
	aPlus3 := new(big.Int).Add(c.A, big.NewInt(3))
	c.aIsMinus3 = aPlus3.Cmp(c.P) == 0
	if f, err := fp.New(c.P); err == nil {
		c.fpF = f
		f.FromBig(&c.fpA, c.A)
	}
	return c
}

var (
	p256 = newCurve(
		"secp256r1",
		"ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
		"ffffffff00000001000000000000000000000000fffffffffffffffffffffffc",
		"5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b",
		"6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
		"4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5",
		"ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551",
		1, 256,
	)
	p224 = newCurve(
		"secp224r1",
		"ffffffffffffffffffffffffffffffff000000000000000000000001",
		"fffffffffffffffffffffffffffffffefffffffffffffffffffffffe",
		"b4050a850c04b3abf54132565044b0b7d7bfd8ba270b39432355ffb4",
		"b70e0cbd6bb4bf7f321390b94a03c1d356c21122343280d6115c1d21",
		"bd376388b5f723fb4c22dfe6cd4375a05a07476444d5819985007e34",
		"ffffffffffffffffffffffffffff16a2e0b8f03e13dd29455c5c2a3d",
		1, 224,
	)
	p192 = newCurve(
		"secp192r1",
		"fffffffffffffffffffffffffffffffeffffffffffffffff",
		"fffffffffffffffffffffffffffffffefffffffffffffffc",
		"64210519e59c80e70fa7e9ab72243049feb8deecc146b9b1",
		"188da80eb03090f67cbf20eb43a18800f4ff0afd82ff1012",
		"07192b95ffc8da78631011ed6b24cdd573f977a11e794811",
		"ffffffffffffffffffffffff99def836146bc9b1b4d22831",
		1, 192,
	)
)

// P256 returns the secp256r1 (NIST P-256) curve used throughout the
// paper's evaluation.
func P256() *Curve { return p256 }

// P224 returns the secp224r1 (NIST P-224) curve.
func P224() *Curve { return p224 }

// P192 returns the secp192r1 (NIST P-192) curve.
func P192() *Curve { return p192 }

// CurveByName resolves a SEC 2 curve name to its parameters.
func CurveByName(name string) (*Curve, error) {
	switch name {
	case "secp256r1", "P-256", "p256":
		return p256, nil
	case "secp224r1", "P-224", "p224":
		return p224, nil
	case "secp192r1", "P-192", "p192":
		return p192, nil
	}
	return nil, fmt.Errorf("ec: unknown curve %q", name)
}

// Curves returns all bundled curves, largest first.
func Curves() []*Curve { return []*Curve{p256, p224, p192} }

// Generator returns the curve base point G as an affine point.
func (c *Curve) Generator() Point {
	return Point{X: new(big.Int).Set(c.Gx), Y: new(big.Int).Set(c.Gy)}
}

// IsOnCurve reports whether the affine point (x, y) satisfies the curve
// equation. The point at infinity is not considered on the curve by
// this predicate.
func (c *Curve) IsOnCurve(p Point) bool {
	if p.IsInfinity() {
		return false
	}
	if p.X.Sign() < 0 || p.X.Cmp(c.P) >= 0 || p.Y.Sign() < 0 || p.Y.Cmp(c.P) >= 0 {
		return false
	}
	// y² = x³ + ax + b (mod p)
	y2 := new(big.Int).Mul(p.Y, p.Y)
	y2.Mod(y2, c.P)

	rhs := new(big.Int).Mul(p.X, p.X)
	rhs.Mod(rhs, c.P)
	rhs.Mul(rhs, p.X)
	rhs.Mod(rhs, c.P)

	ax := new(big.Int).Mul(c.A, p.X)
	rhs.Add(rhs, ax)
	rhs.Add(rhs, c.B)
	rhs.Mod(rhs, c.P)

	return y2.Cmp(rhs) == 0
}

// checkScalarRange reports whether k is a canonical scalar in [1, n−1].
func (c *Curve) checkScalarRange(k *big.Int) bool {
	return k.Sign() > 0 && k.Cmp(c.N) < 0
}
