package ec

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// RandomScalar draws a uniform scalar from [1, n−1] using rejection
// sampling. A nil reader selects crypto/rand.Reader; tests inject
// deterministic readers.
func (c *Curve) RandomScalar(rng io.Reader) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	buf := make([]byte, c.byteLen)
	// Rejection sampling keeps the distribution exactly uniform; the
	// expected iteration count is < 2 for all bundled curves.
	for i := 0; i < 256; i++ {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, fmt.Errorf("ec: scalar randomness: %w", err)
		}
		// Mask excess top bits for non-byte-aligned orders.
		excess := 8*c.byteLen - c.N.BitLen()
		if excess > 0 {
			buf[0] &= 0xff >> excess
		}
		k := new(big.Int).SetBytes(buf)
		if c.checkScalarRange(k) {
			return k, nil
		}
	}
	return nil, errors.New("ec: random scalar rejection sampling did not terminate")
}

// GenerateKeyPair draws a private scalar d and returns (d, d·G).
func (c *Curve) GenerateKeyPair(rng io.Reader) (*big.Int, Point, error) {
	d, err := c.RandomScalar(rng)
	if err != nil {
		return nil, Point{}, err
	}
	return d, c.ScalarBaseMult(d), nil
}

// HashToInt converts a hash digest to an integer reduced into [0, n),
// per SEC 1 §4.1.3 / FIPS 186: take the leftmost bits of the digest up
// to the bit length of n, then reduce mod n. Used by both ECDSA and the
// ECQV certificate hash.
func (c *Curve) HashToInt(digest []byte) *big.Int {
	orderBits := c.N.BitLen()
	orderBytes := (orderBits + 7) / 8
	if len(digest) > orderBytes {
		digest = digest[:orderBytes]
	}
	v := new(big.Int).SetBytes(digest)
	if excess := len(digest)*8 - orderBits; excess > 0 {
		v.Rsh(v, uint(excess))
	}
	return v.Mod(v, c.N)
}

// ScalarToBytes serializes k as a fixed-width big-endian integer of the
// curve's byte length.
func (c *Curve) ScalarToBytes(k *big.Int) []byte {
	out := make([]byte, c.byteLen)
	new(big.Int).Mod(k, c.N).FillBytes(out)
	return out
}

// ScalarFromBytes parses a fixed-width scalar, rejecting values outside
// [1, n−1].
func (c *Curve) ScalarFromBytes(data []byte) (*big.Int, error) {
	if len(data) != c.byteLen {
		return nil, fmt.Errorf("ec: scalar length %d, want %d", len(data), c.byteLen)
	}
	k := new(big.Int).SetBytes(data)
	if !c.checkScalarRange(k) {
		return nil, errors.New("ec: scalar out of range [1, n-1]")
	}
	return k, nil
}
