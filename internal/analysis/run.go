package analysis

import (
	"fmt"
	"sort"
)

// Run executes every analyzer over every package, applies the
// //detlint:allow suppressions, and returns the surviving findings
// sorted by position. Three kinds of findings come back:
//
//   - analyzer diagnostics that no annotation covers;
//   - malformed annotations (unknown check, missing reason);
//   - unused annotations — an allowance that suppressed nothing is
//     dead weight that would hide a future regression, so it is a
//     finding too. This is what makes the acceptance property hold
//     in both directions: deleting a load-bearing annotation fails
//     the build (the diagnostic resurfaces), and deleting the code
//     under an annotation fails the build (the annotation goes
//     unused).
//
// An analyzer returning an error aborts the run: that is an internal
// failure, not a finding.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		allows, bad := parseAllows(pkg, known)
		findings = append(findings, bad...)

		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				Path:      pkg.Path,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
			}
		}

	diagnostics:
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			// Same-line annotations claim their diagnostics before any
			// annotation from the line above reaches down.
			for _, sameLine := range [2]bool{true, false} {
				for _, a := range allows {
					if a.suppresses(d.Check, pos, sameLine) {
						continue diagnostics
					}
				}
			}
			findings = append(findings, Finding{Position: pos, Check: d.Check, Message: d.Message})
		}

		for _, a := range allows {
			if !a.used {
				findings = append(findings, Finding{
					Position: a.position,
					Check:    hygieneCheck,
					Message:  fmt.Sprintf("unused annotation: no %s diagnostic on this line or the next — delete it or move it to the code it excuses", a.check),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Check < b.Check
	})
	return findings, nil
}
