package detcheck_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detcheck"
)

// Each fixture proves, per the acceptance contract, at least one true
// positive (a // want expectation) and at least one annotated
// suppression (a //detlint:allow line with no want) for its analyzer.

func TestWallclock(t *testing.T) {
	analysistest.Run(t, detcheck.Wallclock, "testdata/src/wallclock", "repro/internal/scenario")
}

func TestDetrand(t *testing.T) {
	analysistest.Run(t, detcheck.Detrand, "testdata/src/detrand", "repro/internal/fleet")
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, detcheck.Maporder, "testdata/src/maporder", "repro/internal/scenario")
}

func TestSpawn(t *testing.T) {
	analysistest.Run(t, detcheck.Spawn, "testdata/src/spawn", "repro/internal/canbus")
}

// TestSpawnConcScope loads a pool-like fixture as internal/conc
// itself: the one package allowed to launch goroutines must produce
// no findings.
func TestSpawnConcScope(t *testing.T) {
	analysistest.Run(t, detcheck.Spawn, "testdata/src/spawn_conc", "repro/internal/conc")
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, detcheck.Hotpath, "testdata/src/hotpath", "repro/internal/ec")
}

// TestWallclockScope re-loads the wallclock fixture under an import
// path outside the deterministic set: the analyzer must stay silent
// there, which also flips its two suppression annotations into
// "unused annotation" hygiene findings — proving scope and the
// two-sided annotation contract in one pass.
func TestWallclockScope(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/src/wallclock", "repro/internal/kdf")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Analyzer{detcheck.Wallclock}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("want exactly the 2 unused-annotation findings out of scope, got %d: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Check != "detlint" || !strings.Contains(f.Message, "unused annotation") {
			t.Errorf("unexpected finding out of scope: %s", f)
		}
	}
}

// TestSuiteOnRealPackage drives the go-list loader end to end over a
// real module package and requires the whole suite to be clean — the
// same invariant `make lint` enforces tree-wide.
func TestSuiteOnRealPackage(t *testing.T) {
	pkgs, err := analysis.Load([]string{"repro/internal/detrand", "repro/internal/conc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("want 2 packages, got %d", len(pkgs))
	}
	findings, err := analysis.Run(detcheck.Analyzers(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}
