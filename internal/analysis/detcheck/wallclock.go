package detcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// wallclockBanned lists the package time functions that read or wait
// on the host's wall clock. Pure arithmetic on time.Duration and
// time.Time values is fine — only acquiring wall-clock time (or
// scheduling against it) breaks schedule invariance.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock flags wall-clock acquisition in the deterministic
// packages: every simulated instant must come from the canbus
// simulated clock, so that a run's observable behaviour — traces,
// timeouts, accounting — is a pure function of inputs and seeds.
// The byte-compare CI gates prove this holds for the scenarios they
// run; this check proves no other code path can break it. Intentional
// out-of-band wall-clock measurement (the host-side Timing block in
// internal/scenario/stream.go, which never touches Result bytes)
// carries //detlint:allow wallclock annotations.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/Sleep/After/AfterFunc/Since/Until/Tick/NewTimer/NewTicker " +
		"in the deterministic simulation packages; simulated time must come from the " +
		"canbus clock so behaviour is a pure function of inputs and seeds",
	Run: runWallclock,
}

func runWallclock(pass *analysis.Pass) error {
	if !deterministicPkgs[pass.Path] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || pkgPathOf(obj) != "time" || !wallclockBanned[obj.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock: deterministic packages must take time from the canbus simulated clock",
				obj.Name())
			return true
		})
	}
	return nil
}
