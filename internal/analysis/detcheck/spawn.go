package detcheck

import (
	"go/ast"

	"repro/internal/analysis"
)

// Spawn flags naked `go` statements everywhere outside
// repro/internal/conc. All fan-out in this repo rides conc's bounded
// worker pools: that bound is a premise of the reorder-window memory
// contract (streaming sweeps hold O(workers + slack) state) and of
// the worker-invariance arguments (results land index-aligned no
// matter the schedule). A goroutine launched anywhere else is
// unbounded and unaccounted — if a launch point is genuinely sound
// (for example a singleton background pump with its own shutdown
// proof), it carries a //detlint:allow spawn annotation making that
// argument.
var Spawn = &analysis.Analyzer{
	Name: "spawn",
	Doc: "flags go statements outside repro/internal/conc; all concurrency must ride " +
		"the bounded worker pool that the reorder-window and invariance arguments assume",
	Run: runSpawn,
}

// concPkg is the one package allowed to launch goroutines: the
// bounded pool itself.
const concPkg = "repro/internal/conc"

func runSpawn(pass *analysis.Pass) error {
	if pass.Path == concPkg {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			pass.Reportf(g.Pos(),
				"naked go statement: fan-out must ride %s's bounded workers so concurrency stays bounded and accountable",
				concPkg)
			return true
		})
	}
	return nil
}
