package detcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Maporder flags `range` over a map in any function from which an
// output sink is reachable: a trace or emitter write, an
// encoding/json or encoding/csv call, or construction/mutation of an
// accounting struct. Go randomizes map iteration order per run, so a
// map range on such a path is a latent schedule-invariance hole —
// the byte-compare gates only catch it if a scenario happens to make
// two orders observable, while this check refuses the pattern
// outright. Iterating a sorted copy of the keys is always available
// and always deterministic; sites that prove order cannot leak (for
// example rows sorted before emission) carry //detlint:allow
// maporder annotations stating that argument.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags map iteration in functions that reach a trace/JSON/CSV sink or an " +
		"accounting struct; map order is randomized per run, so sort the keys instead",
	Run: runMaporder,
}

// sinkReceiverWords mark same-package receiver types whose methods
// count as output sinks (the scenario tracer, the streaming sinks).
var sinkReceiverWords = []string{"trace", "sink", "writer", "emitter"}

func runMaporder(pass *analysis.Pass) error {
	funcs := packageFuncs(pass)

	// Pass 1: which functions directly touch a sink, and which one.
	sinks := map[types.Object]bool{}
	sinkDesc := map[types.Object]string{}
	for obj, fi := range funcs {
		if desc := directSink(pass, fi.decl); desc != "" {
			sinks[obj] = true
			sinkDesc[obj] = desc
		}
	}

	// Pass 2: inverse reachability over same-package static calls —
	// every function from which some sink is reachable.
	reach := reachable(funcs, sinks)

	// Pass 3: flag map ranges in reaching functions.
	for obj, fi := range funcs {
		if !reach[obj] {
			continue
		}
		desc := nearestSinkDesc(funcs, sinkDesc, obj)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rng.Pos(),
				"map iteration in %s, which reaches %s: map order is randomized per run — iterate a sorted copy of the keys",
				fi.decl.Name.Name, desc)
			return true
		})
	}
	return nil
}

// directSink inspects one function body for an output-sink operation
// and describes the first one found, or returns "".
func directSink(pass *analysis.Pass, fd *ast.FuncDecl) string {
	var desc string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if d := sinkCall(pass, n); d != "" {
				desc = d
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.Types[n].Type; t != nil {
				if name := namedTypeName(t); accountingType(name) {
					desc = "accounting struct " + name
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if name := accountingFieldTarget(pass, lhs); name != "" {
					desc = "accounting struct " + name
				}
			}
		case *ast.IncDecStmt:
			if name := accountingFieldTarget(pass, n.X); name != "" {
				desc = "accounting struct " + name
			}
		}
		return true
	})
	return desc
}

// sinkCall describes a call that emits bytes — encoding/json,
// encoding/csv, fmt.Fprint*, or a method on a same-package
// trace/sink/writer/emitter type — or returns "".
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) string {
	obj := calleeOf(pass, call)
	if obj == nil {
		return ""
	}
	switch pkgPathOf(obj) {
	case "encoding/json":
		return "an encoding/json writer"
	case "encoding/csv":
		return "an encoding/csv writer"
	case "fmt":
		if strings.HasPrefix(obj.Name(), "Fprint") {
			return "a fmt.Fprint* writer"
		}
		return ""
	}
	// A method on a same-package type whose name marks it as an
	// output object (tracer, sink, writer, emitter).
	fn, ok := obj.(*types.Func)
	if !ok || pkgPathOf(fn) != pass.Path {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := strings.ToLower(namedTypeName(sig.Recv().Type()))
	for _, w := range sinkReceiverWords {
		if strings.Contains(recv, w) {
			return "the " + namedTypeName(sig.Recv().Type()) + " output type"
		}
	}
	return ""
}

// accountingFieldTarget reports the accounting type name when expr is
// a field selection on one of the repo's accounting structures.
func accountingFieldTarget(pass *analysis.Pass, expr ast.Expr) string {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return ""
	}
	if name := namedTypeName(t); accountingType(name) {
		return name
	}
	return ""
}

// nearestSinkDesc picks a sink description for diagnostics: the
// function's own sink when it has one, otherwise the first callee
// (in source order) through which a sink is reachable, BFS outward.
func nearestSinkDesc(funcs map[types.Object]*funcInfo, sinkDesc map[types.Object]string, from types.Object) string {
	seen := map[types.Object]bool{from: true}
	queue := []types.Object{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if d, ok := sinkDesc[cur]; ok {
			return d
		}
		fi, ok := funcs[cur]
		if !ok {
			continue
		}
		for _, callee := range fi.callees {
			if _, local := funcs[callee]; local && !seen[callee] {
				seen[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return "an output sink"
}
