// Package detcheck holds the five repo-specific contract checks that
// cmd/detlint runs over the module. Each analyzer turns one of the
// repo's dynamically-enforced determinism or hot-path contracts into
// a static check that covers every code path at compile time:
//
//	wallclock — no wall-clock time in the deterministic packages
//	detrand   — no ambient randomness in the deterministic packages
//	maporder  — no map iteration feeding traces, emitters or accounting
//	spawn     — no goroutine launches outside the bounded conc pool
//	hotpath   — no math/big, fmt or interface boxing on the EC hot path
//
// The dynamic gates (byte-compare CI runs, allocation budgets) stay:
// they prove the contracts hold end to end, while these checks prove
// no code path exists that could violate them — including paths no
// scenario exercises yet. Escapes use //detlint:allow annotations
// (see internal/analysis), so every exception is a documented,
// build-enforced contract.
//
// All five analyzers inspect only non-test files: tests are allowed
// wall clocks, ambient randomness and naked goroutines because their
// output feeds assertions, not the byte-compared artifacts the
// determinism contract protects.
package detcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzers returns the full detlint suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Wallclock,
		Detrand,
		Maporder,
		Spawn,
		Hotpath,
	}
}

// deterministicPkgs is the schedule-invariance kernel: the packages
// whose observable behaviour must be a pure function of inputs and
// seeds. wallclock and detrand scope themselves to these import
// paths.
var deterministicPkgs = map[string]bool{
	"repro/internal/canbus":    true,
	"repro/internal/cantp":     true,
	"repro/internal/transport": true,
	"repro/internal/scenario":  true,
	"repro/internal/fleet":     true,
	"repro/internal/security":  true,
}

// funcInfo is one function or method declaration plus the static
// call edges leaving it.
type funcInfo struct {
	decl *ast.FuncDecl
	obj  types.Object
	// callees lists the objects of every statically-resolved call in
	// the body, in source order, same-package and foreign alike.
	callees []types.Object
}

// packageFuncs collects every function and method declaration in the
// pass's package with its outgoing static call edges. Calls through
// function values or interfaces do not resolve to a declaration and
// contribute no edge — the checks built on this graph are therefore
// deliberately under-approximate and lean on the dynamic gates for
// the rest.
func packageFuncs(pass *analysis.Pass) map[types.Object]*funcInfo {
	funcs := map[types.Object]*funcInfo{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fd, obj: obj}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeOf(pass, call); callee != nil {
					fi.callees = append(fi.callees, callee)
				}
				return true
			})
			funcs[obj] = fi
		}
	}
	return funcs
}

// calleeOf resolves a call expression to the object it invokes, or
// nil for calls through unnamed function values, builtins and type
// conversions.
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// reachable returns the set of functions from which any function in
// seeds can be reached over same-package static call edges, seeds
// included (i.e. the inverse-reachability closure of seeds).
func reachable(funcs map[types.Object]*funcInfo, seeds map[types.Object]bool) map[types.Object]bool {
	// Reverse edges within the package.
	callers := map[types.Object][]types.Object{}
	for obj, fi := range funcs {
		for _, callee := range fi.callees {
			if _, ok := funcs[callee]; ok {
				callers[callee] = append(callers[callee], obj)
			}
		}
	}
	reach := map[types.Object]bool{}
	var queue []types.Object
	for obj := range seeds {
		reach[obj] = true
		queue = append(queue, obj)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, caller := range callers[cur] {
			if !reach[caller] {
				reach[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return reach
}

// forward returns the set of functions reachable from seeds over
// same-package static call edges, seeds included.
func forward(funcs map[types.Object]*funcInfo, seeds map[types.Object]bool) map[types.Object]bool {
	reach := map[types.Object]bool{}
	var queue []types.Object
	for obj := range seeds {
		reach[obj] = true
		queue = append(queue, obj)
	}
	for len(queue) > 0 {
		fi, ok := funcs[queue[0]]
		queue = queue[1:]
		if !ok {
			continue
		}
		for _, callee := range fi.callees {
			if _, local := funcs[callee]; local && !reach[callee] {
				reach[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return reach
}

// pkgPathOf returns the import path of the package an object belongs
// to, or "" for universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// namedTypeName unwraps pointers and aliases and returns the name of
// the underlying named type, or "" when the type is unnamed.
func namedTypeName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u.Obj().Name()
		default:
			return ""
		}
	}
}

// accountingType reports whether a named type name denotes one of the
// repo's accounting structures — the measurement records whose field
// values end up in byte-compared output.
func accountingType(name string) bool {
	return strings.HasSuffix(name, "Account") ||
		strings.HasSuffix(name, "Accounting") ||
		strings.HasSuffix(name, "Stats") ||
		strings.HasSuffix(name, "Cost")
}
