package detcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"repro/internal/analysis"
)

// Hotpath is the static counterpart of the EC allocation budgets
// (the 24-alloc ScalarMult and 48-alloc-per-item VerifyBatch CI
// gates). In internal/ec and internal/ec/fp it enforces two rules:
//
//  1. math/big stays inside the approved boundary-conversion files —
//     the public big.Int API, the affine boundary, and the math/big
//     differential-oracle machinery. Any big.Int reference in the
//     limb-pure files (one diagnostic per function, at its
//     declaration) is either a regression toward per-digit heap
//     allocation or a boundary conversion that belongs in an approved
//     file; residual boundary sites in hot files carry
//     //detlint:allow hotpath annotations stating their O(1) cost.
//
//  2. Functions on the hot call graph — everything that can run under
//     ScalarMult, ScalarBaseMult, CombinedMult(Deferred),
//     BatchNormalize, VerifyBatch or the fp field ops — must not call
//     fmt or box concrete values into interfaces: both allocate, and
//     the budgets exist precisely to keep the per-op allocation count
//     fixed and small.
//
// Files selected only by the ec_purebig build tag (the differential
// oracle backend) never reach this check: the loader follows the
// default build configuration, same as the shipped binaries.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flags math/big outside the approved boundary files and fmt/interface-boxing " +
		"on the ScalarMult/VerifyBatch call graph in internal/ec and internal/ec/fp; " +
		"the static counterpart of the allocation-budget CI gates",
	Run: runHotpath,
}

// hotpathPkgs scopes the check to the EC hot path.
var hotpathPkgs = map[string]bool{
	"repro/internal/ec":    true,
	"repro/internal/ec/fp": true,
}

// approvedBigFiles are the boundary-conversion files where math/big
// is the point: the public big.Int-facing API (curve.go, point.go,
// scalar.go, field.go), the math/big oracle machinery that the
// differential tests diff against (jacobian.go, scalarmult.go,
// backend_select*.go), and fp.go's Field constructor, which digests
// the modulus into Montgomery constants once at startup.
var approvedBigFiles = map[string]bool{
	"curve.go":                  true,
	"point.go":                  true,
	"scalar.go":                 true,
	"field.go":                  true,
	"scalarmult.go":             true,
	"jacobian.go":               true,
	"backend_select.go":         true,
	"backend_select_purebig.go": true,
	"backend_fp.go":             true,
	"fp.go":                     true,
}

// hotpathRoots name the entry points of the hot call graph, across
// both packages: the scalar-multiplication and batch-verification
// API in ec, and the field operations in fp.
var hotpathRoots = map[string]bool{
	"ScalarMult":           true,
	"ScalarBaseMult":       true,
	"CombinedMult":         true,
	"CombinedMultDeferred": true,
	"BatchNormalize":       true,
	"VerifyBatch":          true,
	"Mul":                  true,
	"Sqr":                  true,
	"Add":                  true,
	"Sub":                  true,
	"Neg":                  true,
	"Inv":                  true,
	"BatchInv":             true,
}

func runHotpath(pass *analysis.Pass) error {
	if !hotpathPkgs[pass.Path] {
		return nil
	}
	reportBigOutsideBoundary(pass)
	reportHotGraphAllocs(pass)
	return nil
}

// reportBigOutsideBoundary flags math/big references in files that
// are not approved boundary-conversion files, one diagnostic per
// enclosing declaration so a single annotation documents a whole
// boundary function.
func reportBigOutsideBoundary(pass *analysis.Pass) {
	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if approvedBigFiles[base] {
			continue
		}
		for _, decl := range file.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
				continue
			}
			pos, line := firstBigUse(pass, decl)
			if !pos.IsValid() {
				continue
			}
			target := "declaration"
			reportAt := decl.Pos()
			if fd, ok := decl.(*ast.FuncDecl); ok {
				target = fd.Name.Name
			} else {
				// Non-function declarations get the diagnostic at the
				// offending line itself so the annotation sits next to it.
				reportAt = pos
			}
			pass.Reportf(reportAt,
				"%s uses math/big in hot-path file %s (first use at line %d): keep limb-pure, or move the conversion to an approved boundary file",
				target, base, line)
		}
	}
}

// firstBigUse returns the position and line of the first math/big
// reference under n, or an invalid position.
func firstBigUse(pass *analysis.Pass, n ast.Node) (token.Pos, int) {
	found := token.NoPos
	ast.Inspect(n, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && pkgPathOf(obj) == "math/big" {
			found = id.Pos()
		}
		return true
	})
	if !found.IsValid() {
		return token.NoPos, 0
	}
	return found, pass.Fset.Position(found).Line
}

// reportHotGraphAllocs flags fmt calls and interface boxing inside
// every function reachable from the hot-path roots.
func reportHotGraphAllocs(pass *analysis.Pass) {
	funcs := packageFuncs(pass)
	seeds := map[types.Object]bool{}
	for obj, fi := range funcs {
		if hotpathRoots[fi.decl.Name.Name] {
			seeds[obj] = true
		}
	}
	hot := forward(funcs, seeds)
	for obj, fi := range funcs {
		if !hot[obj] {
			continue
		}
		name := fi.decl.Name.Name
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeOf(pass, call); callee != nil && pkgPathOf(callee) == "fmt" {
				pass.Reportf(call.Pos(),
					"fmt.%s on the hot path (in %s): fmt boxes every operand and allocates — hot-path errors must be sentinel values",
					callee.Name(), name)
				return true
			}
			reportBoxingArgs(pass, call, name)
			return true
		})
	}
}

// reportBoxingArgs flags call arguments that implicitly convert a
// concrete value to an interface parameter — each such conversion is
// a potential heap allocation on the hot path.
func reportBoxingArgs(pass *analysis.Pass, call *ast.CallExpr, inFunc string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
			// panic and friends: the only builtin that boxes is panic,
			// and a panicking hot path is a dead hot path — its one
			// allocation is not a budget concern.
			return
		}
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): boxing when T is an interface and
		// x is concrete.
		if len(call.Args) == 1 && isInterface(tv.Type) && isConcrete(pass, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"conversion to interface %s on the hot path (in %s): boxing may allocate — keep hot-path values concrete",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), inFunc)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing here
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if isInterface(param) && isConcrete(pass, arg) {
			pass.Reportf(arg.Pos(),
				"interface boxing on the hot path (in %s): concrete %s passed as %s may allocate",
				inFunc,
				types.TypeString(pass.TypesInfo.Types[arg].Type, types.RelativeTo(pass.Pkg)),
				types.TypeString(param, types.RelativeTo(pass.Pkg)))
		}
	}
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isConcrete reports whether the expression has a concrete
// (non-interface, non-nil) type — the case where passing it as an
// interface boxes it.
func isConcrete(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !isInterface(tv.Type)
}
