package detcheck

import (
	"strconv"

	"repro/internal/analysis"
)

// detrandBanned lists the ambient-randomness packages whose import
// alone is a contract violation in the deterministic packages:
// math/rand's global state is seeded per process, crypto/rand reads
// the host entropy pool — either one makes a run irreproducible.
var detrandBanned = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// Detrand flags imports of math/rand and crypto/rand in the
// deterministic packages. All randomness there must flow from
// repro/internal/detrand's seeded generators or from an io.Reader
// injected by the caller — that is what lets the same seed replay
// the same faults, the same schedules and the same bytes. The check
// is import-granular rather than call-granular on purpose: an
// imported ambient-randomness package is one refactor away from
// being called, so the contract bans the dependency, not just the
// call.
var Detrand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "flags math/rand and crypto/rand imports in the deterministic simulation " +
		"packages; randomness must come from repro/internal/detrand or an injected io.Reader",
	Run: runDetrand,
}

func runDetrand(pass *analysis.Pass) error {
	if !deterministicPkgs[pass.Path] {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !detrandBanned[path] {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s is ambient randomness: route it through repro/internal/detrand or an injected io.Reader so the same seed replays the same run",
				path)
		}
	}
	return nil
}
