// Package fixture exercises the detrand analyzer: ambient-randomness
// imports are flagged at the import site, injected io.Readers are
// fine, and an annotated import is suppressed.
package fixture

import (
	crand "crypto/rand" // want "detrand: import of crypto/rand is ambient randomness"
	"io"
	mrand "math/rand" // want "detrand: import of math/rand is ambient randomness"
	//detlint:allow detrand fixture exercises the suppression path; real code must justify the oracle
	randv2 "math/rand/v2"
)

// Seeded draws from an injected reader — the approved pattern.
func Seeded(r io.Reader, buf []byte) (int, error) { return r.Read(buf) }

func useAmbient(buf []byte) int {
	_, _ = crand.Read(buf)
	return mrand.Int() + int(randv2.Uint64())
}
