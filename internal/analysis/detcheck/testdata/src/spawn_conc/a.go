// Package fixture proves the spawn analyzer's scope: loaded as
// repro/internal/conc itself, the bounded pool's own go statements
// produce no findings.
package fixture

import "sync"

// ForEach is a stand-in for the real pool: the one place goroutines
// may be born.
func ForEach(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}
