// Package fixture exercises the hotpath analyzer in a non-approved
// file (hot.go): math/big is flagged per declaration, and fmt calls
// and interface boxing are flagged in every function reachable from
// a hot-path root.
package fixture

import (
	"fmt"
	"math/big"
)

func reduce(k *big.Int) uint64 { // want "hotpath: reduce uses math/big in hot-path file hot.go"
	return k.Uint64()
}

//detlint:allow hotpath boundary conversion kept next to its caller; one O(1) alloc, measured by the budget test
func allowedReduce(k *big.Int) uint64 {
	return k.Uint64()
}

// ScalarMult is a hot-path root: everything it reaches is budgeted.
func ScalarMult(k uint64) uint64 {
	fmt.Println(k) // want "hotpath: fmt.Println on the hot path"
	return double(k)
}

func double(k uint64) uint64 {
	v := any(k) // want "hotpath: conversion to interface any on the hot path"
	_ = v
	sink(k) // want "hotpath: interface boxing on the hot path"
	return k * 2
}

func sink(v any) { _ = v }

// cold is unreachable from every root: fmt and boxing are fine off
// the hot path.
func cold() { fmt.Println("cold") }
