package fixture

import "math/big"

// Reduce uses math/big freely: curve.go is an approved
// boundary-conversion file, so nothing here is flagged.
func Reduce(k *big.Int) *big.Int { return new(big.Int).Set(k) }
