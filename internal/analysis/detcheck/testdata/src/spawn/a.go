// Package fixture exercises the spawn analyzer: goroutine launches
// outside the bounded pool are flagged, and a documented singleton
// launch point is suppressed.
package fixture

import "sync"

func bad() {
	go func() {}() // want "spawn: naked go statement"
}

func badNamed(wg *sync.WaitGroup) {
	wg.Add(1)
	go pump(wg) // want "spawn: naked go statement"
	wg.Wait()
}

func allowedSingleton(wg *sync.WaitGroup) {
	wg.Add(1)
	//detlint:allow spawn singleton background pump, joined on wg before return — bounded by construction
	go pump(wg)
	wg.Wait()
}

func pump(wg *sync.WaitGroup) { wg.Done() }
