// Package fixture exercises the wallclock analyzer: wall-clock
// acquisition is flagged, stored times and duration arithmetic are
// not, and annotated host-side timing is suppressed.
package fixture

import "time"

// Clock is a stand-in for the simulated clock: holding and returning
// time values is fine, acquiring them from the host is not.
type Clock struct{ now time.Time }

// At returns the simulated instant — no finding.
func (c *Clock) At() time.Time { return c.now }

func bad() time.Time {
	return time.Now() // want "wallclock: time.Now reads the wall clock"
}

func badSleep() {
	time.Sleep(time.Millisecond) // want "wallclock: time.Sleep reads the wall clock"
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want "wallclock: time.NewTimer reads the wall clock"
}

func allowedHostTiming() time.Duration {
	t0 := time.Now()      //detlint:allow wallclock host-side progress timing, never reaches emitted bytes
	return time.Since(t0) //detlint:allow wallclock host-side progress timing, never reaches emitted bytes
}

func arithmetic(c *Clock, d time.Duration) time.Time { return c.now.Add(d) }
