// Package fixture exercises the maporder analyzer: map iteration is
// flagged only in functions from which an output sink — an emitter
// call, an accounting struct, a helper that writes — is reachable,
// and the sorted-copy pattern is the documented escape.
package fixture

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Stats is an accounting struct by the repo's naming convention.
type Stats struct{ Frames int }

func emitDirect(w io.Writer, m map[string]int) error {
	for k, v := range m { // want "maporder: map iteration in emitDirect"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
	return json.NewEncoder(w).Encode(len(m))
}

func tally(st *Stats, m map[string]int) {
	for range m { // want "maporder: map iteration in tally, which reaches accounting struct Stats"
		st.Frames++
	}
}

func viaHelper(w io.Writer, m map[string]int) {
	for k := range m { // want "maporder: map iteration in viaHelper"
		helper(w, k)
	}
}

func helper(w io.Writer, s string) { fmt.Fprintln(w, s) }

func sortedCopy(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	//detlint:allow maporder keys are collected then sorted; iteration order cannot reach the writer
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// pure reaches no sink: summing over a map in any order is
// deterministic, so this stays silent.
func pure(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
