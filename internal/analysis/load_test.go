package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadRealPackages drives the go-list loader over two real module
// packages and sanity-checks the parsed and type-checked results.
func TestLoadRealPackages(t *testing.T) {
	pkgs, err := Load([]string{"repro/internal/detrand", "repro/internal/conc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("want 2 packages, got %d", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	dr, ok := byPath["repro/internal/detrand"]
	if !ok {
		t.Fatal("repro/internal/detrand not loaded")
	}
	if len(dr.Files) == 0 || dr.Pkg == nil || dr.TypesInfo == nil {
		t.Fatalf("detrand loaded incompletely: %+v", dr)
	}
	if dr.Pkg.Name() != "detrand" {
		t.Errorf("package name = %q, want detrand", dr.Pkg.Name())
	}
	if dr.Pkg.Scope().Lookup("Mix64") == nil {
		t.Error("type-checked detrand is missing Mix64")
	}
}

// TestLoadBadPattern pins the error path: an unknown pattern is an
// error, not an empty result.
func TestLoadBadPattern(t *testing.T) {
	if _, err := Load([]string{"repro/internal/no-such-package"}); err == nil {
		t.Fatal("want error for unknown package pattern")
	}
}

// TestLoadDirEmpty pins LoadDir's refusal of a directory with no Go
// files.
func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir(), "example.invalid/empty"); err == nil {
		t.Fatal("want error for directory without Go files")
	}
}

// TestLoadDirTypeError pins the contract that a package failing to
// type-check is an error, not a diagnostic: detlint runs after go
// build, so a broken package is an environment problem.
func TestLoadDirTypeError(t *testing.T) {
	dir := t.TempDir()
	src := "package fixture\n\nfunc f() int { return \"not an int\" }\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDir(dir, "example.invalid/broken")
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("want type-checking error, got %v", err)
	}
}

// TestFindingString pins the editor-clickable finding format.
func TestFindingString(t *testing.T) {
	pkg := loadSrc(t, "package fixture\n\nfunc f() {}\n\nfunc g() { f() }\n")
	findings, err := Run([]*Analyzer{stubAnalyzer}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %d", len(findings))
	}
	s := findings[0].String()
	if !strings.HasSuffix(s, "a.go:5:12: stub: call") {
		t.Errorf("finding format %q does not end in file:line:col: check: message", s)
	}
}
