package analysis

import (
	"go/token"
	"strings"
)

// allowPrefix is the machine-directive prefix of a suppression
// comment. Like //go:generate, there is no space after the slashes.
const allowPrefix = "detlint:allow"

// hygieneCheck is the pseudo-check name used for findings about the
// annotations themselves (malformed or unused). It is not a real
// analyzer, so hygiene findings can never be suppressed — an escape
// hatch for the escape hatches would let the contract rot.
const hygieneCheck = "detlint"

// allowance is one parsed //detlint:allow annotation. It suppresses
// diagnostics of Check in the same file on its own line and on the
// line directly below — tight enough that an annotation can never
// silently cover code added later further down the file.
type allowance struct {
	check    string
	reason   string
	position token.Position
	used     bool
}

// parseAllows scans every comment in the package for detlint:allow
// annotations. known is the set of valid check names; annotations
// with an unknown check name or a missing reason are returned as
// hygiene findings — a malformed escape must fail the build rather
// than silently suppress nothing.
func parseAllows(pkg *Package, known map[string]bool) ([]*allowance, []Finding) {
	var allows []*allowance
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{
						Position: pos,
						Check:    hygieneCheck,
						Message:  "malformed annotation: missing check name and reason (want //detlint:allow <check> <reason>)",
					})
				case !known[fields[0]]:
					bad = append(bad, Finding{
						Position: pos,
						Check:    hygieneCheck,
						Message:  "malformed annotation: unknown check " + strconv(fields[0]) + " (want //detlint:allow <check> <reason>)",
					})
				case len(fields) == 1:
					bad = append(bad, Finding{
						Position: pos,
						Check:    hygieneCheck,
						Message:  "malformed annotation: missing reason — every exception to a contract must say why it is sound",
					})
				default:
					allows = append(allows, &allowance{
						check:    fields[0],
						reason:   strings.Join(fields[1:], " "),
						position: pos,
					})
				}
			}
		}
	}
	return allows, bad
}

// suppresses reports whether a covers a diagnostic of check at pos in
// the given matching pass — sameLine first, then the line below —
// and marks the allowance used when it does. The two passes exist so
// that on adjacent annotated lines each trailing annotation claims
// its own line's diagnostic instead of the earlier annotation
// reaching down and orphaning the later one.
func (a *allowance) suppresses(check string, pos token.Position, sameLine bool) bool {
	if a.check != check || a.position.Filename != pos.Filename {
		return false
	}
	want := a.position.Line
	if !sameLine {
		want++
	}
	if pos.Line != want {
		return false
	}
	a.used = true
	return true
}

// strconv quotes a string for a diagnostic message without pulling in
// fmt's %q machinery at every call site.
func strconv(s string) string { return "\"" + s + "\"" }
