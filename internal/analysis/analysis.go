// Package analysis is the repo's in-tree static-analysis framework:
// a deliberately small subset of the golang.org/x/tools go/analysis
// API built on nothing but the standard library's go/ast, go/parser,
// go/types and go/importer, so `make lint` keeps working on a bare
// toolchain with no network (the same zero-install contract as
// cmd/doccheck and cmd/linkcheck).
//
// The framework exists to push the repo's determinism and hot-path
// contracts — today enforced only dynamically, by byte-compare CI
// gates and allocation-budget tests — into the compiler front-end,
// where they cover every code path at once instead of only the paths
// a scenario happens to exercise. The five contract checks themselves
// live in internal/analysis/detcheck; the cmd/detlint multichecker
// drives them over the module.
//
// An Analyzer receives one type-checked package at a time as a Pass
// and reports Diagnostics. Findings can be suppressed, one line at a
// time, with an annotation comment:
//
//	//detlint:allow <check> <reason>
//
// which silences diagnostics of <check> on the annotation's own line
// and on the line directly below it. The reason is mandatory — every
// exception to a contract is itself a documented contract — and both
// malformed annotations (unknown check name, missing reason) and
// annotations that suppress nothing are diagnostics in their own
// right, so the set of escapes in the tree can never rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named static check. Run inspects a single
// type-checked package through its Pass and reports findings via
// pass.Report; it returns an error only for internal failures
// (findings are diagnostics, not errors).
type Analyzer struct {
	// Name is the check's identifier — the word that appears in
	// diagnostics and in //detlint:allow annotations.
	Name string
	// Doc is a one-paragraph description of the contract the check
	// enforces, shown by `detlint -help`.
	Doc string
	// Run executes the check on one package.
	Run func(pass *Pass) error
}

// Pass carries everything an Analyzer may inspect about one package:
// the syntax trees, the type information, and the package metadata.
// A Pass is valid only for the duration of one Run call.
type Pass struct {
	// Analyzer is the check this pass is running.
	Analyzer *Analyzer
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Files holds the parsed non-test source files of the package.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// TypesInfo records the type-checker's findings (uses, defs,
	// expression types and selections) for the package's files.
	TypesInfo *types.Info
	// Path is the package's import path as reported by the loader.
	// Analyzers scope themselves by this path, not by directory.
	Path string

	report func(Diagnostic)
}

// Report records one finding. The position must come from an
// expression inside this pass's files.
func (p *Pass) Report(d Diagnostic) {
	if d.Check == "" {
		d.Check = p.Analyzer.Name
	}
	p.report(d)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the check that produced it,
// and a human-readable message stating which contract is violated.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Check names the analyzer (or the framework pseudo-check
	// "detlint" for annotation-hygiene findings).
	Check string
	// Message states the violated contract and, where useful, the fix.
	Message string
}

// Finding is a resolved diagnostic: a Diagnostic plus its printable
// position, produced by Run after suppression filtering.
type Finding struct {
	// Position is the resolved file:line:column of the finding.
	Position token.Position
	// Check names the analyzer that produced the finding.
	Check string
	// Message states the violated contract.
	Message string
}

// String formats the finding in the conventional
// file:line:col: check: message shape understood by editors.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Position.Filename, f.Position.Line, f.Position.Column, f.Check, f.Message)
}
