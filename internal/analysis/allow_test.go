package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSrc type-checks one synthetic file as a fixture package.
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "example.invalid/fixture")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestParseAllows table-tests the annotation grammar: a malformed
// //detlint:allow comment — unknown check name, missing reason,
// missing everything — must itself become a diagnostic, never a
// silent no-op.
func TestParseAllows(t *testing.T) {
	known := map[string]bool{"wallclock": true, "spawn": true}
	cases := []struct {
		name       string
		comment    string
		wantAllows int
		wantBad    string // substring of the hygiene finding, "" for none
	}{
		{"valid", "//detlint:allow wallclock host-side timing only", 1, ""},
		{"valid multiword reason", "//detlint:allow spawn singleton pump, joined before return", 1, ""},
		{"unknown check", "//detlint:allow wallclok typo in check name", 0, `unknown check "wallclok"`},
		{"missing reason", "//detlint:allow wallclock", 0, "missing reason"},
		{"missing everything", "//detlint:allow", 0, "missing check name and reason"},
		{"missing everything with spaces", "//detlint:allow   ", 0, "missing check name and reason"},
		{"reason is whitespace", "//detlint:allow spawn \t ", 0, "missing reason"},
		{"not an annotation", "// detlint:allow wallclock spaced prefix is a plain comment", 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadSrc(t, "package fixture\n\n"+tc.comment+"\nfunc f() {}\n")
			allows, bad := parseAllows(pkg, known)
			if len(allows) != tc.wantAllows {
				t.Errorf("got %d allowances, want %d", len(allows), tc.wantAllows)
			}
			if tc.wantBad == "" {
				if len(bad) != 0 {
					t.Errorf("unexpected hygiene findings: %v", bad)
				}
				return
			}
			if len(bad) != 1 {
				t.Fatalf("got %d hygiene findings, want 1: %v", len(bad), bad)
			}
			if bad[0].Check != "detlint" || !strings.Contains(bad[0].Message, tc.wantBad) {
				t.Errorf("finding %q does not contain %q", bad[0].Message, tc.wantBad)
			}
		})
	}
}

// stubAnalyzer flags every call expression — a minimal diagnostic
// source for exercising the suppression window.
var stubAnalyzer = &Analyzer{
	Name: "stub",
	Doc:  "flags every call expression (test scaffolding)",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(c.Pos(), "call")
				}
				return true
			})
		}
		return nil
	},
}

// TestSuppressionWindow pins the annotation's reach: its own line and
// the line directly below, nothing further.
func TestSuppressionWindow(t *testing.T) {
	src := `package fixture

func f() {}

func g() {
	f() //detlint:allow stub same-line suppression
	//detlint:allow stub next-line suppression
	f()
	f()
}
`
	pkg := loadSrc(t, src)
	findings, err := Run([]*Analyzer{stubAnalyzer}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 surviving finding, got %d: %v", len(findings), findings)
	}
	if findings[0].Position.Line != 9 || findings[0].Check != "stub" {
		t.Errorf("surviving finding at wrong place: %s", findings[0])
	}
}

// TestUnusedAnnotation pins the converse contract: an allowance that
// suppresses nothing is itself a finding, so stale escapes cannot
// linger after the code they excused is gone.
func TestUnusedAnnotation(t *testing.T) {
	src := `package fixture

//detlint:allow stub nothing on this line or the next produces a diagnostic
var x = 1
`
	pkg := loadSrc(t, src)
	findings, err := Run([]*Analyzer{stubAnalyzer}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Check != "detlint" || !strings.Contains(f.Message, "unused annotation") || !strings.Contains(f.Message, "stub") {
		t.Errorf("want unused-annotation hygiene finding naming the check, got: %s", f)
	}
}

// TestFindingOrder pins the stable sort: findings come back ordered
// by file, line and column regardless of analyzer report order.
func TestFindingOrder(t *testing.T) {
	src := `package fixture

func f() {}

func g() { f(); f() }

func h() { f() }
`
	pkg := loadSrc(t, src)
	findings, err := Run([]*Analyzer{stubAnalyzer}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("want 3 findings, got %d", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		prev, cur := findings[i-1].Position, findings[i].Position
		if cur.Line < prev.Line || (cur.Line == prev.Line && cur.Column < prev.Column) {
			t.Errorf("findings out of order: %s before %s", findings[i-1], findings[i])
		}
	}
}
