package analysistest

import (
	"go/ast"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analysis"
)

// stub flags every go statement — a one-rule analyzer for exercising
// the fixture runner itself.
var stub = &analysis.Analyzer{
	Name: "stub",
	Doc:  "flags go statements (runner self-test scaffolding)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "go statement")
				}
				return true
			})
		}
		return nil
	},
}

// TestRunMatchesWants drives the runner end to end over a synthetic
// fixture exercising all three behaviours at once: a want-matched
// finding, a suppressed line with no want, and a clean line.
func TestRunMatchesWants(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

import "sync"

func bad(wg *sync.WaitGroup) {
	go wg.Done() // want "stub: go statement"
}

func allowed(wg *sync.WaitGroup) {
	//detlint:allow stub runner self-test suppression
	go wg.Done()
}

func clean() {}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	Run(t, stub, dir, "example.invalid/fixture")
}

// TestParseWants table-tests the want-comment grammar.
func TestParseWants(t *testing.T) {
	cases := []struct {
		in      string
		want    []string
		wantErr bool
	}{
		{`"one"`, []string{"one"}, false},
		{`"one" "two"`, []string{"one", "two"}, false},
		{`  "spaced"  `, []string{"spaced"}, false},
		{``, nil, true},
		{`unquoted`, nil, true},
		{`"unterminated`, nil, true},
	}
	for _, tc := range cases {
		got, err := parseWants(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseWants(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseWants(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseWants(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
