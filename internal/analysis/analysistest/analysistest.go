// Package analysistest runs an analyzer over a fixture package and
// compares its findings against expectations written in the fixture
// source — the same workflow as golang.org/x/tools' analysistest,
// rebuilt on the in-repo framework so fixtures run on a bare
// toolchain.
//
// Expectations are trailing comments on the offending line:
//
//	for k := range m { // want "map iteration order"
//
// Each quoted string is a substring that must appear in one
// "check: message" finding reported on that line. Lines with no want
// comment must produce no finding. Because expectations run after
// suppression filtering, a fixture line carrying a valid
// //detlint:allow annotation and no want comment proves the
// suppression path, and a line with a want comment proves the
// true-positive path — every analyzer's fixture is required to
// contain at least one of each.
package analysistest

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package rooted at dir as if it had import
// path asPath (analyzers scope themselves by import path), applies
// the analyzer plus the framework's suppression and annotation-
// hygiene passes, and fails t on any mismatch between findings and
// // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				subs, err := parseWants(rest)
				if err != nil {
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				wants[k] = append(wants[k], subs...)
			}
		}
	}

	matched := map[key][]bool{}
	for k, subs := range wants {
		matched[k] = make([]bool, len(subs))
	}
	for _, f := range findings {
		k := key{f.Position.Filename, f.Position.Line}
		text := f.Check + ": " + f.Message
		found := false
		for i, sub := range wants[k] {
			if !matched[k][i] && strings.Contains(text, sub) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for k, subs := range wants {
		for i, sub := range subs {
			if !matched[k][i] {
				t.Errorf("%s:%d: no finding matching %q", k.file, k.line, sub)
			}
		}
	}
}

// parseWants extracts the quoted substrings from the tail of a
// // want comment.
func parseWants(s string) ([]string, error) {
	var subs []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		if s[0] != '"' {
			return nil, fmt.Errorf("malformed want comment near %q: expected quoted string", s)
		}
		end := strings.IndexByte(s[1:], '"')
		if end < 0 {
			return nil, fmt.Errorf("malformed want comment: unterminated string")
		}
		subs = append(subs, s[1:1+end])
		s = s[end+2:]
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("malformed want comment: no quoted strings")
	}
	return subs, nil
}
