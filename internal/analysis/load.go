package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package, ready to be
// handed to analyzers as a Pass.
type Package struct {
	// Path is the import path (or the caller-chosen pseudo-path for
	// fixture packages loaded from a bare directory).
	Path string
	// Fset positions all of this package's files.
	Fset *token.FileSet
	// Files holds the parsed non-test sources.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type-checker facts for Files.
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// Load enumerates packages with the go command (`go list -json
// patterns...`), then parses and type-checks each one's non-test
// files. Dependencies — both in-module and standard library — are
// type-checked from source by go/importer's "source" importer, which
// needs no compiled export data, no module proxy and no network; one
// importer instance is shared across the whole load so each
// dependency is checked at most once per process.
//
// Type-check errors are returned as errors, not diagnostics: detlint
// runs after `go build` in the lint pipeline, so a package that fails
// to check is an environment problem, not a finding.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkgs := make([]*Package, 0, len(listed))
	for _, lp := range listed {
		var paths []string
		for _, f := range lp.GoFiles {
			paths = append(paths, filepath.Join(lp.Dir, f))
		}
		p, err := check(fset, imp, lp.ImportPath, paths)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every non-test .go file directly in
// dir as one package, pretending it has import path asPath. Fixture
// runners use this: analyzers scope themselves by import path, so a
// testdata package can impersonate, say, repro/internal/scenario to
// come under a path-scoped check.
func LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(paths)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return check(fset, imp, asPath, paths)
}

// check parses the given files and type-checks them as one package
// under importPath.
func check(fset *token.FileSet, imp types.Importer, importPath string, paths []string) (*Package, error) {
	var files []*ast.File
	for _, path := range paths {
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		Path:      importPath,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}, nil
}
