// Package report renders experiment output: aligned text tables and
// ASCII bar charts, shared by the cmd tools that regenerate the
// paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = displayWidth(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && displayWidth(c) > widths[i] {
				widths[i] = displayWidth(c)
			}
		}
	}

	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - displayWidth(c)
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// displayWidth approximates terminal width, counting runes (the
// verdict symbols ✓/∆ are single cells).
func displayWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// Bar renders one labelled horizontal bar scaled to maxValue over
// width characters.
func Bar(w io.Writer, label string, value, maxValue float64, width int, unit string) {
	if maxValue <= 0 {
		maxValue = 1
	}
	n := int(value / maxValue * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	fmt.Fprintf(w, "  %-24s %s%s %10.2f %s\n",
		label, strings.Repeat("█", n), strings.Repeat(" ", width-n), value, unit)
}

// Section prints an underlined heading.
func Section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", displayWidth(title)))
}
