package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long-name", "22")

	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()

	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	// Columns aligned: "value" header starts at the same offset in all
	// body lines.
	headerIdx := strings.Index(lines[1], "value")
	if headerIdx < 0 {
		t.Fatal("header missing")
	}
	if idx := strings.Index(lines[3], "1"); idx != headerIdx {
		t.Errorf("column misaligned: %d vs %d", idx, headerIdx)
	}
	if idx := strings.Index(lines[4], "22"); idx != headerIdx {
		t.Errorf("column misaligned: %d vs %d", idx, headerIdx)
	}
}

func TestTableUnicodeWidth(t *testing.T) {
	// Verdict symbols must count as one cell, not their UTF-8 byte
	// length.
	if displayWidth("✓") != 1 || displayWidth("∆") != 1 {
		t.Error("unicode width wrong")
	}
	if displayWidth("abc") != 3 {
		t.Error("ascii width wrong")
	}
}

func TestBarClamps(t *testing.T) {
	var buf bytes.Buffer
	Bar(&buf, "x", 50, 100, 10, "ms")
	if !strings.Contains(buf.String(), "█████     ") {
		t.Errorf("bar output %q", buf.String())
	}
	// Over-max clamps to full width.
	buf.Reset()
	Bar(&buf, "x", 200, 100, 10, "ms")
	if !strings.Contains(buf.String(), strings.Repeat("█", 10)) {
		t.Error("over-max bar not clamped")
	}
	// Zero max does not divide by zero.
	buf.Reset()
	Bar(&buf, "x", 1, 0, 10, "ms")
	if buf.Len() == 0 {
		t.Error("zero-max bar produced nothing")
	}
	// Negative value clamps to empty.
	buf.Reset()
	Bar(&buf, "x", -5, 100, 10, "ms")
	if strings.Contains(buf.String(), "█") {
		t.Error("negative bar rendered blocks")
	}
}

func TestSection(t *testing.T) {
	var buf bytes.Buffer
	Section(&buf, "Header")
	out := buf.String()
	if !strings.Contains(out, "Header\n======") {
		t.Errorf("section output %q", out)
	}
}
