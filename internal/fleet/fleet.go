// Package fleet manages secure sessions from one device to a fleet of
// peers: session establishment via the STS engine, per-peer record
// channels, and automatic re-keying when the session policy expires —
// the operational loop behind the paper's motivation that keys must
// rotate with communication sessions rather than certificate sessions.
//
// The Manager is built for fleet-scale concurrency. The peer table is
// lock-striped into fixed shards keyed by a hash of the peer identity,
// and each peer additionally carries its own session lock, so
// handshakes, Seal and Open on different peers never contend; only
// operations on the same peer serialize. EstablishAll drives many STS
// handshakes through a bounded worker pool, which is how a gateway
// brings a whole fleet online (or re-keys it) in parallel.
//
// The Manager drives both handshake state machines in-process, which
// matches the library's simulation scope; a deployment would transport
// the same engine messages over its network stack (see
// internal/integration for the CAN-FD version of that loop).
package fleet

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/ecqv"
	"repro/internal/session"
)

// numShards stripes the peer table. A power of two keeps the shard
// selection a mask; 16 shards is ample for the goroutine counts a
// single gateway device realistically runs.
const numShards = 16

// shardIndex maps a peer identity onto its stripe (FNV-1a).
func shardIndex(id ecqv.ID) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range id {
		h ^= uint32(b)
		h *= prime32
	}
	return int(h & (numShards - 1))
}

// shard is one stripe of the peer table. Its lock guards only the map;
// session state is guarded per peer.
type shard struct {
	mu    sync.RWMutex
	peers map[ecqv.ID]*peerState
}

// Manager maintains sessions from a local device to many peers.
type Manager struct {
	self    *core.Party
	opt     core.STSOptimization
	policy  session.Policy
	retry   RetryPolicy
	carrier CarrierFactory
	hsRand  HandshakeRand

	shards [numShards]shard

	handshakes atomic.Uint64
	rekeys     atomic.Uint64
	records    atomic.Uint64
	hsRetries  atomic.Uint64
	hsFailures atomic.Uint64
	hsWorst    atomic.Uint64
}

// RetryPolicy caps handshake attempts over an unreliable carrier.
// Ephemeral secrets never survive a failed attempt: every retry is a
// complete fresh STS run with new engines, so a half-delivered
// transcript can never be resumed into a key.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per handshake (≤ 0 or
	// 1 means a single attempt — the lossless default).
	MaxAttempts int
}

// Stats counts manager activity.
type Stats struct {
	Handshakes int // total STS handshakes run (incl. rekeys)
	Rekeys     int // handshakes triggered by policy expiry
	Records    int // records sealed

	// Retry-policy counters (zero under the lossless default carrier).
	HandshakeRetries int // fresh attempts after a failed one
	FailedAttempts   int // attempts that died on the wire or aborted

	// WorstAttempts is the largest number of attempts any single
	// handshake needed to succeed (1 on a clean fabric; 0 before the
	// first handshake). Attack scenarios read it as "how hard did the
	// adversary make the unluckiest peer work", which aggregate retry
	// totals wash out.
	WorstAttempts int

	// KeyCache reports the local device's per-peer key cache: after
	// the first handshake with a peer, its certificate extraction and
	// verification table are served from cache on every rekey, so a
	// steady-state fleet shows hits growing with rekeys.
	KeyCache core.CacheStats

	// SharedTables reports the process-global precomputed-table cache
	// that all parties' key caches consult before building. In an
	// EstablishAll wave every responder verifies the same initiator
	// key, so one build serves the whole wave; the counters are global
	// to the process, not to this manager.
	SharedTables core.SharedTableStats
}

type peerState struct {
	// mu serializes session operations on this one peer: channel use,
	// explicit reconnects and the transparent rekey handshake.
	// Different peers hold different locks, so fleet-wide traffic and
	// handshakes proceed in parallel.
	mu    sync.Mutex
	party *core.Party
	// send/recv are this side's channels; recv is the remote side's
	// view (returned to the caller holding the peer).
	send, recv *session.Channel

	// established flips once the first handshake completes, letting
	// Peers enumerate live sessions without taking session locks.
	established atomic.Bool
}

// NewManager creates a session manager for the local device.
func NewManager(self *core.Party, opt core.STSOptimization, policy session.Policy) (*Manager, error) {
	if self == nil || self.Cert == nil {
		return nil, errors.New("fleet: local device not provisioned")
	}
	m := &Manager{self: self, opt: opt, policy: policy}
	for i := range m.shards {
		m.shards[i].peers = map[ecqv.ID]*peerState{}
	}
	return m, nil
}

// SetRetryPolicy configures the per-handshake attempt budget. Call
// before traffic starts; it applies to every subsequent handshake,
// including transparent rekeys.
func (m *Manager) SetRetryPolicy(p RetryPolicy) { m.retry = p }

// SetCarrier routes handshakes through a custom carrier — typically a
// NetCarrier per peer over the simulated CAN fabric. A nil factory
// (or a nil carrier returned for a peer) falls back to the in-process
// lossless exchange.
func (m *Manager) SetCarrier(f CarrierFactory) { m.carrier = f }

// HandshakeRand derives the initiator-side ephemeral randomness for
// one handshake attempt. Returning nil keeps the local party's
// default stream for that attempt.
type HandshakeRand func(peer ecqv.ID, attempt int) io.Reader

// SetHandshakeRand makes every handshake attempt draw its
// initiator-side ephemerals from a per-(peer, attempt) stream instead
// of the local party's shared one. This is the determinism half of
// reproducible concurrent chaos runs: with content-keyed bus faults
// and per-attempt randomness, EstablishAll with any parallelism
// produces the same fault and recovery trace under one seed, because
// no conversation's bytes depend on how the scheduler interleaved the
// others. The factory must be deterministic in its arguments; the
// local key cache is shared across attempts, so cache behaviour is
// unchanged.
func (m *Manager) SetHandshakeRand(f HandshakeRand) { m.hsRand = f }

// peerEntry returns the peer's state, creating it when create is set.
func (m *Manager) peerEntry(id ecqv.ID, create bool) *peerState {
	sh := &m.shards[shardIndex(id)]
	if !create {
		sh.mu.RLock()
		ps := sh.peers[id]
		sh.mu.RUnlock()
		return ps
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ps, ok := sh.peers[id]
	if !ok {
		ps = &peerState{}
		sh.peers[id] = ps
	}
	return ps
}

// Connect establishes (or replaces) the session to a peer by running a
// full STS handshake through the message-driven engine. A failed
// Connect leaves the manager untouched: no peer entry is created and
// an existing session keeps its previous party and keys. Concurrent
// Connects to different peers run in parallel; to the same peer each
// runs its own handshake and the last to finish wins.
func (m *Manager) Connect(peer *core.Party) error {
	if peer == nil || peer.Cert == nil {
		return errors.New("fleet: peer not provisioned")
	}
	keyBlock, err := m.handshake(peer)
	if err != nil {
		return err
	}
	send, recv, err := session.NewPair(keyBlock, m.policy)
	if err != nil {
		return err
	}
	ps := m.peerEntry(peer.ID, true)
	ps.mu.Lock()
	ps.party, ps.send, ps.recv = peer, send, recv
	ps.established.Store(true)
	ps.mu.Unlock()
	m.handshakes.Add(1)
	return nil
}

// establishLocked re-keys a live session whose per-peer lock is held —
// the transparent rekey path under Seal.
func (m *Manager) establishLocked(ps *peerState) error {
	keyBlock, err := m.handshake(ps.party)
	if err != nil {
		return err
	}
	send, recv, err := session.NewPair(keyBlock, m.policy)
	if err != nil {
		return err
	}
	ps.send, ps.recv = send, recv
	m.handshakes.Add(1)
	return nil
}

// EstablishAll connects every listed peer through a pool of at most
// parallelism workers (GOMAXPROCS when ≤ 0). The returned slice
// aligns with peers — errs[i] is nil when peers[i] established — so
// callers can retry exactly the failures; errors.Join(errs...) gives
// the aggregate. Peers already connected are re-keyed, matching
// Connect semantics.
func (m *Manager) EstablishAll(peers []*core.Party, parallelism int) []error {
	errs := make([]error, len(peers))
	conc.ForEach(len(peers), parallelism, func(i int) {
		if err := m.Connect(peers[i]); err != nil {
			errs[i] = fmt.Errorf("fleet: peer %d: %w", i, err)
		}
	})
	return errs
}

// ErrUnknownPeer is returned for peers without a session.
var ErrUnknownPeer = errors.New("fleet: no session with peer")

// Seal protects a payload for a peer, transparently re-keying (a fresh
// STS handshake) when the session policy has expired. Only the target
// peer's session lock is held, so traffic to other peers is unaffected
// even while the rekey handshake runs.
func (m *Manager) Seal(peerID ecqv.ID, payload []byte) ([]byte, error) {
	ps := m.peerEntry(peerID, false)
	if ps == nil {
		return nil, ErrUnknownPeer
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.send == nil {
		return nil, ErrUnknownPeer
	}
	rec, err := ps.send.Seal(payload)
	if errors.Is(err, session.ErrRekeyRequired) {
		if err := m.establishLocked(ps); err != nil {
			return nil, fmt.Errorf("fleet: rekey: %w", err)
		}
		m.rekeys.Add(1)
		rec, err = ps.send.Seal(payload)
	}
	if err != nil {
		return nil, err
	}
	m.records.Add(1)
	return rec, nil
}

// Open verifies and decrypts a record on the peer's receive channel —
// the remote side's view in this in-process simulation. It holds the
// same per-peer lock as Seal, so a transparent rekey never swaps the
// channel mid-open.
func (m *Manager) Open(peerID ecqv.ID, record []byte) ([]byte, error) {
	ps := m.peerEntry(peerID, false)
	if ps == nil {
		return nil, ErrUnknownPeer
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.recv == nil {
		return nil, ErrUnknownPeer
	}
	return ps.recv.Open(record)
}

// PeerChannel returns the remote side's receive channel for a peer —
// in this in-process simulation, the handle "the other device" would
// hold. Records sealed by Seal open on it. The channel itself is not
// safe for use concurrent with a rekey of the same peer; prefer Open
// under concurrency.
func (m *Manager) PeerChannel(peerID ecqv.ID) (*session.Channel, error) {
	ps := m.peerEntry(peerID, false)
	if ps == nil {
		return nil, ErrUnknownPeer
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.recv == nil {
		return nil, ErrUnknownPeer
	}
	return ps.recv, nil
}

// Disconnect drops the session to a peer. Operations racing with the
// disconnect complete either on the old session or not at all.
func (m *Manager) Disconnect(peerID ecqv.ID) {
	sh := &m.shards[shardIndex(peerID)]
	sh.mu.Lock()
	delete(sh.peers, peerID)
	sh.mu.Unlock()
}

// Peers returns the identities with live sessions.
func (m *Manager) Peers() []ecqv.ID {
	var out []ecqv.ID
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id, ps := range sh.peers {
			if ps.established.Load() {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Handshakes:       int(m.handshakes.Load()),
		Rekeys:           int(m.rekeys.Load()),
		Records:          int(m.records.Load()),
		HandshakeRetries: int(m.hsRetries.Load()),
		FailedAttempts:   int(m.hsFailures.Load()),
		WorstAttempts:    int(m.hsWorst.Load()),
		KeyCache:         m.self.KeyCache().Stats(),
		SharedTables:     core.SharedTables().Stats(),
	}
}

// handshake establishes a key block with the peer under the retry
// policy: each attempt is a complete fresh STS run through the peer's
// carrier, and a failed attempt (lost beyond the transport's recovery
// budget, or desynchronized into an engine state error) burns one
// attempt from the budget. It touches only the Manager's atomic
// counters, so under the default in-process carrier any number of
// handshakes to distinct peers run in parallel; NetCarriers sharing a
// transport.World serialize whole attempts on its conversation lock.
// With content-keyed bus impairment and SetHandshakeRand installed,
// concurrent chaos runs reproduce bit-for-bit at any parallelism.
func (m *Manager) handshake(peer *core.Party) ([]byte, error) {
	if peer == nil || peer.Cert == nil {
		return nil, errors.New("fleet: peer not provisioned")
	}
	carrier, err := m.carrierFor(peer)
	if err != nil {
		return nil, err
	}
	attempts := m.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			m.hsRetries.Add(1)
		}
		key, err := m.attempt(peer, carrier, attempt)
		if err == nil {
			m.noteWorst(uint64(attempt + 1))
			return key, nil
		}
		m.hsFailures.Add(1)
		lastErr = err
	}
	m.noteWorst(uint64(attempts))
	return nil, fmt.Errorf("fleet: handshake failed after %d attempts: %w", attempts, lastErr)
}

// noteWorst raises the worst-attempts watermark to n (CAS max, safe
// under parallel EstablishAll waves).
func (m *Manager) noteWorst(n uint64) {
	for {
		cur := m.hsWorst.Load()
		if n <= cur || m.hsWorst.CompareAndSwap(cur, n) {
			return
		}
	}
}

// carrierFor resolves the peer's carrier, defaulting to the lossless
// in-process exchange.
func (m *Manager) carrierFor(peer *core.Party) (Carrier, error) {
	if m.carrier == nil {
		return directCarrier{}, nil
	}
	c, err := m.carrier(peer)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return directCarrier{}, nil
	}
	return c, nil
}

// attempt runs one complete STS exchange through the carrier and
// returns the agreed key block.
func (m *Manager) attempt(peer *core.Party, carrier Carrier, attempt int) ([]byte, error) {
	self := m.self
	if m.hsRand != nil {
		if rng := m.hsRand(peer.ID, attempt); rng != nil {
			self = m.self.CloneWithRand(rng)
		}
	}
	init, err := core.NewInitiator(self, m.opt)
	if err != nil {
		return nil, err
	}
	resp, err := core.NewResponder(peer, m.opt)
	if err != nil {
		return nil, err
	}
	if err := carrier.Exchange(init, resp); err != nil {
		return nil, err
	}
	keyA, err := init.SessionKey()
	if err != nil {
		return nil, err
	}
	keyB, err := resp.SessionKey()
	if err != nil {
		return nil, err
	}
	for i := range keyA {
		if keyA[i] != keyB[i] {
			return nil, errors.New("fleet: handshake key mismatch")
		}
	}
	return keyA, nil
}
