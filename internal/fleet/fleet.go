// Package fleet manages secure sessions from one device to a fleet of
// peers: session establishment via the STS engine, per-peer record
// channels, and automatic re-keying when the session policy expires —
// the operational loop behind the paper's motivation that keys must
// rotate with communication sessions rather than certificate sessions.
//
// The Manager drives both handshake state machines in-process, which
// matches the library's simulation scope; a deployment would transport
// the same engine messages over its network stack (see
// internal/integration for the CAN-FD version of that loop).
package fleet

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ecqv"
	"repro/internal/session"
)

// Manager maintains sessions from a local device to many peers.
type Manager struct {
	self   *core.Party
	opt    core.STSOptimization
	policy session.Policy

	mu    sync.Mutex
	peers map[ecqv.ID]*peerState
	stats Stats
}

// Stats counts manager activity.
type Stats struct {
	Handshakes int // total STS handshakes run (incl. rekeys)
	Rekeys     int // handshakes triggered by policy expiry
	Records    int // records sealed
}

type peerState struct {
	party *core.Party
	// send/recv are this side's channels; peerSend/peerRecv the
	// remote side's (returned to the caller holding the peer).
	send, recv *session.Channel
}

// NewManager creates a session manager for the local device.
func NewManager(self *core.Party, opt core.STSOptimization, policy session.Policy) (*Manager, error) {
	if self == nil || self.Cert == nil {
		return nil, errors.New("fleet: local device not provisioned")
	}
	return &Manager{self: self, opt: opt, policy: policy, peers: map[ecqv.ID]*peerState{}}, nil
}

// Connect establishes (or replaces) the session to a peer by running a
// full STS handshake through the message-driven engine.
func (m *Manager) Connect(peer *core.Party) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.connectLocked(peer)
}

func (m *Manager) connectLocked(peer *core.Party) error {
	if peer == nil || peer.Cert == nil {
		return errors.New("fleet: peer not provisioned")
	}
	keyBlock, err := m.handshake(peer)
	if err != nil {
		return err
	}
	send, recv, err := session.NewPair(keyBlock, m.policy)
	if err != nil {
		return err
	}
	m.peers[peer.ID] = &peerState{party: peer, send: send, recv: recv}
	m.stats.Handshakes++
	return nil
}

// handshake drives initiator (self) and responder (peer) to
// completion and returns the shared key block.
func (m *Manager) handshake(peer *core.Party) ([]byte, error) {
	init, err := core.NewInitiator(m.self, m.opt)
	if err != nil {
		return nil, err
	}
	resp, err := core.NewResponder(peer, m.opt)
	if err != nil {
		return nil, err
	}
	msg, err := init.Start()
	if err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		reply, _, err := resp.Handle(msg)
		if err != nil {
			return nil, fmt.Errorf("fleet: responder: %w", err)
		}
		if reply == nil {
			break
		}
		next, done, err := init.Handle(reply)
		if err != nil {
			return nil, fmt.Errorf("fleet: initiator: %w", err)
		}
		if done {
			break
		}
		msg = next
	}
	keyA, err := init.SessionKey()
	if err != nil {
		return nil, err
	}
	keyB, err := resp.SessionKey()
	if err != nil {
		return nil, err
	}
	for i := range keyA {
		if keyA[i] != keyB[i] {
			return nil, errors.New("fleet: handshake key mismatch")
		}
	}
	return keyA, nil
}

// ErrUnknownPeer is returned for peers without a session.
var ErrUnknownPeer = errors.New("fleet: no session with peer")

// Seal protects a payload for a peer, transparently re-keying (a fresh
// STS handshake) when the session policy has expired.
func (m *Manager) Seal(peerID ecqv.ID, payload []byte) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.peers[peerID]
	if !ok {
		return nil, ErrUnknownPeer
	}
	rec, err := ps.send.Seal(payload)
	if errors.Is(err, session.ErrRekeyRequired) {
		if err := m.connectLocked(ps.party); err != nil {
			return nil, fmt.Errorf("fleet: rekey: %w", err)
		}
		m.stats.Rekeys++
		rec, err = m.peers[peerID].send.Seal(payload)
	}
	if err != nil {
		return nil, err
	}
	m.stats.Records++
	return rec, nil
}

// PeerChannel returns the remote side's receive channel for a peer —
// in this in-process simulation, the handle "the other device" would
// hold. Records sealed by Seal open on it.
func (m *Manager) PeerChannel(peerID ecqv.ID) (*session.Channel, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.peers[peerID]
	if !ok {
		return nil, ErrUnknownPeer
	}
	return ps.recv, nil
}

// Disconnect drops the session to a peer.
func (m *Manager) Disconnect(peerID ecqv.ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.peers, peerID)
}

// Peers returns the identities with live sessions.
func (m *Manager) Peers() []ecqv.ID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ecqv.ID, 0, len(m.peers))
	for id := range m.peers {
		out = append(out, id)
	}
	return out
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
