package fleet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/ecqv"
	"repro/internal/session"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func provision(t *testing.T, seed int64, names ...string) []*core.Party {
	t.Helper()
	net, err := core.NewNetwork(ec.P256(), newDetRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*core.Party, len(names))
	for i, n := range names {
		out[i], err = net.Provision(n)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestManagerMultiPeer(t *testing.T) {
	parties := provision(t, 1, "gateway", "node-a", "node-b", "node-c")
	m, err := NewManager(parties[0], core.OptNone, session.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parties[1:] {
		if err := m.Connect(p); err != nil {
			t.Fatalf("connect %s: %v", p.ID, err)
		}
	}
	if len(m.Peers()) != 3 {
		t.Fatalf("%d peers", len(m.Peers()))
	}

	// Records route to the correct peer and only that peer.
	for _, p := range parties[1:] {
		payload := []byte("to " + p.ID.String())
		rec, err := m.Seal(p.ID, payload)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := m.PeerChannel(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ch.Open(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload corrupted")
		}
	}
	// Cross-peer confusion must fail.
	rec, _ := m.Seal(parties[1].ID, []byte("x"))
	chOther, _ := m.PeerChannel(parties[2].ID)
	if _, err := chOther.Open(rec); err == nil {
		t.Error("record for node-a opened on node-b's channel")
	}

	if m.Stats().Handshakes != 3 {
		t.Errorf("handshakes = %d", m.Stats().Handshakes)
	}
}

func TestManagerAutoRekey(t *testing.T) {
	parties := provision(t, 2, "gw", "sensor")
	m, err := NewManager(parties[0], core.OptNone, session.Policy{MaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Connect(parties[1]); err != nil {
		t.Fatal(err)
	}
	id := parties[1].ID

	// Records 0 and 1 fit the policy; record 2 forces a transparent
	// rekey (fresh handshake) and still succeeds.
	for i := 0; i < 5; i++ {
		rec, err := m.Seal(id, []byte{byte(i)})
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		ch, err := m.PeerChannel(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ch.Open(rec)
		if err != nil {
			t.Fatalf("record %d open: %v", i, err)
		}
		if !bytes.Equal(got, []byte{byte(i)}) {
			t.Fatalf("record %d corrupted", i)
		}
	}
	st := m.Stats()
	if st.Rekeys < 1 {
		t.Errorf("no rekeys recorded: %+v", st)
	}
	if st.Handshakes != 1+st.Rekeys {
		t.Errorf("handshakes %d, rekeys %d", st.Handshakes, st.Rekeys)
	}
	if st.Records != 5 {
		t.Errorf("records = %d", st.Records)
	}
	// Every rekey re-validates the same static peer: after the first
	// handshake, its extraction and verification table come from the
	// local device's key cache.
	if st.KeyCache.Hits == 0 {
		t.Errorf("rekeys never hit the per-peer key cache: %+v", st.KeyCache)
	}
}

func TestManagerErrors(t *testing.T) {
	parties := provision(t, 3, "gw", "peer")
	if _, err := NewManager(nil, core.OptNone, session.DefaultPolicy); err == nil {
		t.Error("nil self accepted")
	}
	if _, err := NewManager(&core.Party{}, core.OptNone, session.DefaultPolicy); err == nil {
		t.Error("unprovisioned self accepted")
	}
	m, _ := NewManager(parties[0], core.OptNone, session.DefaultPolicy)
	if err := m.Connect(nil); err == nil {
		t.Error("nil peer accepted")
	}
	if _, err := m.Seal(ecqv.NewID("ghost"), []byte("x")); err == nil {
		t.Error("unknown peer accepted")
	}
	if _, err := m.PeerChannel(ecqv.NewID("ghost")); err == nil {
		t.Error("unknown peer channel returned")
	}

	// Disconnect removes the session.
	if err := m.Connect(parties[1]); err != nil {
		t.Fatal(err)
	}
	m.Disconnect(parties[1].ID)
	if _, err := m.Seal(parties[1].ID, []byte("x")); err == nil {
		t.Error("disconnected peer still usable")
	}
}

func TestManagerFailedConnectLeavesNoState(t *testing.T) {
	parties := provision(t, 5, "gw", "peer")
	m, _ := NewManager(parties[0], core.OptNone, session.DefaultPolicy)

	// A peer enrolled under a different CA fails the handshake; the
	// failure must not create a peer entry.
	foreign := provision(t, 6, "gw2", "intruder")[1]
	if err := m.Connect(foreign); err == nil {
		t.Fatal("foreign-CA peer connected")
	}
	if n := len(m.Peers()); n != 0 {
		t.Fatalf("%d peers after failed connect", n)
	}
	if _, err := m.Seal(foreign.ID, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("failed connect left a usable entry: %v", err)
	}

	// A failed re-Connect must leave the existing session fully
	// intact: same keys, same party.
	if err := m.Connect(parties[1]); err != nil {
		t.Fatal(err)
	}
	rec, err := m.Seal(parties[1].ID, []byte("before"))
	if err != nil {
		t.Fatal(err)
	}
	// Impostor with the real peer's identity but a foreign CA's
	// credentials: fails inside the handshake, after validation.
	imp := foreign.Clone()
	imp.ID = parties[1].ID
	if err := m.Connect(imp); err == nil {
		t.Fatal("foreign-CA reconnect accepted")
	}
	got, err := m.Open(parties[1].ID, rec)
	if err != nil || !bytes.Equal(got, []byte("before")) {
		t.Fatalf("failed reconnect disturbed the session: %q, %v", got, err)
	}
}

func TestManagerReconnectFreshKeys(t *testing.T) {
	parties := provision(t, 4, "gw", "peer")
	m, _ := NewManager(parties[0], core.OptII, session.DefaultPolicy)
	if err := m.Connect(parties[1]); err != nil {
		t.Fatal(err)
	}
	rec1, _ := m.Seal(parties[1].ID, []byte("before"))

	// Explicit reconnect = new certificate-independent session.
	if err := m.Connect(parties[1]); err != nil {
		t.Fatal(err)
	}
	ch, _ := m.PeerChannel(parties[1].ID)
	if _, err := ch.Open(rec1); err == nil {
		t.Error("pre-reconnect record opened with post-reconnect key")
	}
}
