package fleet

import (
	"testing"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/session"
)

// TestWorstAttemptsWatermark: Stats.WorstAttempts tracks the attempts
// the unluckiest handshake needed — 1 on a clean fabric, the full
// budget after exhaustion, and it never decreases when later
// handshakes go smoothly.
func TestWorstAttemptsWatermark(t *testing.T) {
	// Clean fabric: every handshake lands on the first attempt.
	runChaos(t, 7, 3, 0, 0, 3, 1, canbus.EgressPolicy{})

	net, err := core.NewNetwork(ec.P256(), newDetRand(21))
	if err != nil {
		t.Fatal(err)
	}
	self, _ := net.Provision("gw")
	reachable, _ := net.Provision("ecu-ok")
	unreachable, _ := net.Provision("ecu-dead")

	// One peer behind a clean fabric, one behind a black hole.
	clean := buildChaos(t, 21, []*core.Party{reachable}, 0, 0, canbus.EgressPolicy{})
	hole := buildChaos(t, 22, []*core.Party{unreachable}, 1.0, 0, canbus.EgressPolicy{})

	m, err := NewManager(self, core.OptNone, session.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	m.SetCarrier(func(p *core.Party) (Carrier, error) {
		if p.ID == reachable.ID {
			return clean.carriers[p.ID], nil
		}
		return hole.carriers[p.ID], nil
	})

	if err := m.Connect(reachable); err != nil {
		t.Fatal(err)
	}
	if w := m.Stats().WorstAttempts; w != 1 {
		t.Errorf("clean handshake watermark = %d, want 1", w)
	}

	if err := m.Connect(unreachable); err == nil {
		t.Fatal("handshake succeeded across 100% loss")
	}
	if w := m.Stats().WorstAttempts; w != 3 {
		t.Errorf("exhausted handshake watermark = %d, want the full budget 3", w)
	}

	// A later clean handshake must not lower the watermark.
	m.Disconnect(reachable.ID)
	if err := m.Connect(reachable); err != nil {
		t.Fatal(err)
	}
	if w := m.Stats().WorstAttempts; w != 3 {
		t.Errorf("watermark regressed to %d after a clean handshake", w)
	}
}
