package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/ecqv"
	"repro/internal/session"
)

// TestEstablishAll exercises the worker pool on its own: every peer
// establishes, per-peer failures are reported without aborting the
// batch, and the established fleet carries traffic.
func TestEstablishAll(t *testing.T) {
	parties := provisionBatch(t, 61, 9)
	m, err := NewManager(parties[0], core.OptNone, session.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	peers := parties[1:]
	if err := errors.Join(m.EstablishAll(peers, 4)...); err != nil {
		t.Fatalf("failures: %v", err)
	}
	if got := len(m.Peers()); got != len(peers) {
		t.Fatalf("%d peers live, want %d", got, len(peers))
	}
	if st := m.Stats(); st.Handshakes != len(peers) {
		t.Errorf("handshakes = %d", st.Handshakes)
	}
	for _, p := range peers {
		payload := []byte("fleet:" + p.ID.String())
		rec, err := m.Seal(p.ID, payload)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Open(p.ID, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload corrupted")
		}
	}

	// A broken peer reports at its index; the rest still establish.
	m2, _ := NewManager(parties[0], core.OptNone, session.DefaultPolicy)
	mixed := append([]*core.Party{{ID: ecqv.NewID("hollow")}}, peers...)
	errs := m2.EstablishAll(mixed, 0)
	if len(errs) != len(mixed) {
		t.Fatalf("%d error slots for %d peers", len(errs), len(mixed))
	}
	if errs[0] == nil {
		t.Error("unprovisioned peer not reported")
	}
	for i, err := range errs[1:] {
		if err != nil {
			t.Errorf("healthy peer %d failed: %v", i+1, err)
		}
	}
	if got := len(m2.Peers()); got != len(peers) {
		t.Errorf("%d peers live after partial failure, want %d", got, len(peers))
	}
}

// provisionBatch provisions a gateway plus peers through the batched
// path, so the stress tests also cover concurrent enrollment.
func provisionBatch(t *testing.T, seed int64, n int) []*core.Party {
	t.Helper()
	net, err := core.NewNetwork(ec.P256(), newDetRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	names[0] = "gateway"
	for i := 1; i < n; i++ {
		names[i] = fmt.Sprintf("peer-%02d", i)
	}
	parties, err := net.ProvisionBatch(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	return parties
}

// TestManagerConcurrentStress hammers one sharded Manager from many
// goroutines at once — concurrent EstablishAll over the whole fleet,
// per-peer traffic under a policy tight enough to force transparent
// rekeys mid-stream, connect/disconnect churn, and constant
// Peers/Stats/PeerChannel readers. The assertion is the race detector
// plus: traffic on a peer that nobody else re-keys must round-trip
// perfectly, and traffic racing a re-establishment may fail only with
// the session-layer errors that key replacement legitimately causes.
func TestManagerConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		quietPeers = 4 // traffic only; never externally re-keyed
		noisyPeers = 4 // traffic racing EstablishAll re-keys
		records    = 8
	)
	parties := provisionBatch(t, 62, 1+quietPeers+noisyPeers+1)
	gw := parties[0]
	quiet := parties[1 : 1+quietPeers]
	noisy := parties[1+quietPeers : 1+quietPeers+noisyPeers]
	churn := parties[len(parties)-1]

	// MaxRecords=3 forces a transparent rekey every third record.
	m, err := NewManager(gw, core.OptNone, session.Policy{MaxRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := errors.Join(m.EstablishAll(parties[1:], 0)...); err != nil {
		t.Fatalf("initial establishment: %v", err)
	}

	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Re-establish the noisy half of the fleet, twice, concurrently
	// with their traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 2; round++ {
			if err := errors.Join(m.EstablishAll(noisy, 2)...); err != nil {
				fail("EstablishAll round %d: %v", round, err)
			}
		}
	}()

	// Quiet peers: nobody else touches their sessions, so every
	// record must round-trip even across transparent rekeys.
	for _, p := range quiet {
		wg.Add(1)
		go func(p *core.Party) {
			defer wg.Done()
			for i := 0; i < records; i++ {
				payload := []byte(fmt.Sprintf("%s #%d", p.ID, i))
				rec, err := m.Seal(p.ID, payload)
				if err != nil {
					fail("%s seal %d: %v", p.ID, i, err)
					return
				}
				got, err := m.Open(p.ID, rec)
				if err != nil {
					fail("%s open %d: %v", p.ID, i, err)
					return
				}
				if !bytes.Equal(got, payload) {
					fail("%s record %d corrupted", p.ID, i)
				}
			}
		}(p)
	}

	// Noisy peers: a concurrent EstablishAll may swap the session
	// between Seal and Open, so an auth failure on the stale record is
	// legitimate — anything else is a bug.
	for _, p := range noisy {
		wg.Add(1)
		go func(p *core.Party) {
			defer wg.Done()
			for i := 0; i < records; i++ {
				rec, err := m.Seal(p.ID, []byte{byte(i)})
				if err != nil {
					fail("%s seal %d: %v", p.ID, i, err)
					return
				}
				if _, err := m.Open(p.ID, rec); err != nil &&
					!errors.Is(err, session.ErrAuth) && !errors.Is(err, session.ErrReplay) {
					fail("%s open %d: %v", p.ID, i, err)
					return
				}
			}
		}(p)
	}

	// Churn: connect/disconnect one peer in a loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := m.Connect(churn); err != nil {
				fail("churn connect %d: %v", i, err)
				return
			}
			m.Disconnect(churn.ID)
		}
	}()

	// Readers: snapshot the fleet constantly while all of the above
	// runs.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if n := len(m.Peers()); n < quietPeers+noisyPeers {
					fail("peer listing dropped to %d", n)
					return
				}
				_ = m.Stats()
				if _, err := m.PeerChannel(quiet[0].ID); err != nil {
					fail("PeerChannel: %v", err)
					return
				}
			}
		}()
	}

	wg.Wait()

	st := m.Stats()
	if st.Rekeys == 0 {
		t.Error("policy never tripped a transparent rekey")
	}
	wantRecords := (quietPeers + noisyPeers) * records
	if st.Records != wantRecords {
		t.Errorf("records = %d, want %d", st.Records, wantRecords)
	}
	// initial fleet + 2 EstablishAll rounds + churn + rekeys
	wantHandshakes := (quietPeers + noisyPeers + 1) + 2*noisyPeers + 4 + st.Rekeys
	if st.Handshakes != wantHandshakes {
		t.Errorf("handshakes = %d, want %d", st.Handshakes, wantHandshakes)
	}
}

// TestSharedTableStressConsistency runs concurrent EstablishAll waves
// plus rekey-forcing traffic and then reconciles the fleet-global
// SharedTableCache counters against the per-party key caches. The
// global cache is process-wide, so everything is asserted on deltas
// from a baseline snapshot. Invariants checked:
//
//   - every shared hit recorded globally is attributed to exactly one
//     party's SharedHits counter (Σ ΔSharedHits == ΔHits);
//   - sharing actually happened: in a wave all responders verify the
//     same gateway key, so one build serves the rest;
//   - Manager.Stats reports the same global counters;
//   - the whole dance is race-clean (this test runs under `make race`).
func TestSharedTableStressConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const peers = 8
	parties := provisionBatch(t, 63, 1+peers)
	gw := parties[0]

	base := core.SharedTables().Stats()
	baseShared := make([]int, len(parties))
	for i, p := range parties {
		baseShared[i] = p.KeyCache().Stats().SharedHits
	}

	m, err := NewManager(gw, core.OptNone, session.Policy{MaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := errors.Join(m.EstablishAll(parties[1:], 4)...); err != nil {
		t.Fatalf("initial establishment: %v", err)
	}

	var wg sync.WaitGroup
	// Re-establishment churn: two concurrent wave rounds over halves of
	// the fleet.
	for _, half := range [][]*core.Party{parties[1 : 1+peers/2], parties[1+peers/2:]} {
		wg.Add(1)
		go func(half []*core.Party) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				if err := errors.Join(m.EstablishAll(half, 2)...); err != nil {
					t.Errorf("re-establish round %d: %v", round, err)
					return
				}
			}
		}(half)
	}
	// Rekey churn: MaxRecords=2 trips a transparent rekey (a full STS
	// run, with its verifications) every other record.
	for _, p := range parties[1:] {
		wg.Add(1)
		go func(p *core.Party) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				rec, err := m.Seal(p.ID, []byte{byte(i)})
				if err != nil {
					t.Errorf("%s seal %d: %v", p.ID, i, err)
					return
				}
				if _, err := m.Open(p.ID, rec); err != nil &&
					!errors.Is(err, session.ErrAuth) && !errors.Is(err, session.ErrReplay) {
					t.Errorf("%s open %d: %v", p.ID, i, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	global := core.SharedTables().Stats()
	dHits := global.Hits - base.Hits
	dMisses := global.Misses - base.Misses
	sumSharedHits := 0
	for i, p := range parties {
		st := p.KeyCache().Stats()
		sumSharedHits += st.SharedHits - baseShared[i]
		if st.SharedHits > st.Misses {
			t.Errorf("party %d: SharedHits %d exceeds Misses %d", i, st.SharedHits, st.Misses)
		}
	}
	if sumSharedHits != dHits {
		t.Errorf("shared hits don't reconcile: parties saw %d, global counted %d", sumSharedHits, dHits)
	}
	if dHits == 0 {
		t.Error("no fleet-wide table sharing in an EstablishAll wave")
	}
	if dMisses == 0 {
		t.Error("no shared-level misses: someone must have built the tables")
	}
	if got := m.Stats().SharedTables; got != core.SharedTables().Stats() {
		t.Errorf("Manager.Stats().SharedTables = %+v diverges from global %+v",
			got, core.SharedTables().Stats())
	}
	if st := gw.KeyCache().Stats(); st.WaveItems < st.WaveBatches || st.WaveItems == 0 {
		t.Errorf("gateway wave accounting inconsistent: %+v", st)
	}
}
