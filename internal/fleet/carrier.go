package fleet

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/transport"
)

// Carrier runs the wire exchange of one handshake attempt between the
// local initiator engine and the peer's responder engine. The default
// carrier is the in-process lockstep loop the Manager has always used;
// a NetCarrier instead pushes every handshake byte through the
// impaired multi-segment CAN simulation, where an attempt can fail and
// the Manager's retry policy takes over.
type Carrier interface {
	Exchange(init *core.Initiator, resp *core.Responder) error
}

// CarrierFactory selects the carrier for a peer — typically a
// NetCarrier over that peer's endpoint pair.
type CarrierFactory func(peer *core.Party) (Carrier, error)

// maxHandshakeHops bounds the message exchange of one attempt; STS
// needs four messages, so eight hops is generous for every
// optimisation variant.
const maxHandshakeHops = 8

// directCarrier is the lossless in-process exchange.
type directCarrier struct{}

func (directCarrier) Exchange(init *core.Initiator, resp *core.Responder) error {
	msg, err := init.Start()
	if err != nil {
		return err
	}
	for i := 0; i < maxHandshakeHops; i++ {
		reply, _, err := resp.Handle(msg)
		if err != nil {
			return fmt.Errorf("fleet: responder: %w", err)
		}
		if reply == nil {
			return nil
		}
		next, done, err := init.Handle(reply)
		if err != nil {
			return fmt.Errorf("fleet: initiator: %w", err)
		}
		if done {
			return nil
		}
		msg = next
	}
	return errors.New("fleet: handshake did not converge")
}

// HandshakeCommCode tags handshake traffic on the session transport.
const HandshakeCommCode = 0x10

// NetCarrier drives a handshake attempt over a transport.Link: every
// engine message crosses the (possibly impaired, gateway-bridged) CAN
// fabric with ISO-TP timers and retransmission under it and
// whole-message resends on top. An exchange error means this attempt
// died on the wire (or desynchronized the strict engine states); the
// Manager then decides whether a fresh attempt is allowed.
type NetCarrier struct {
	Link      *transport.Link
	Local     *transport.Endpoint // initiator side
	Remote    *transport.Endpoint // responder side
	SessionID uint16
}

// Exchange runs one full handshake attempt between the engines over
// the fabric, serialized under the world's conversation lock so
// parallel EstablishAll calls share the single-goroutine pump safely.
func (c *NetCarrier) Exchange(init *core.Initiator, resp *core.Responder) error {
	// The world's endpoints are unsynchronized by design (one driving
	// goroutine = reproducibility); holding the conversation lock for
	// the whole attempt makes a parallel EstablishAll over one fabric
	// serialize safely instead of racing.
	c.Link.World.Acquire()
	defer c.Link.World.Release()

	// A fresh attempt starts from silence: move any in-flight frames
	// of the previous attempt to their queues, then discard them along
	// with partial reassembly state.
	c.Link.World.Run()
	c.Local.Flush()
	c.Remote.Flush()

	msg, err := init.Start()
	if err != nil {
		return err
	}
	for i := 0; i < maxHandshakeHops; i++ {
		got, err := c.Link.Deliver(c.Local, c.Remote, c.wrap(msg))
		if err != nil {
			return fmt.Errorf("fleet: deliver to responder: %w", err)
		}
		reply, _, err := resp.Handle(got.Payload)
		if err != nil {
			return fmt.Errorf("fleet: responder: %w", err)
		}
		if reply == nil {
			return nil
		}
		gotReply, err := c.Link.Deliver(c.Remote, c.Local, c.wrap(reply))
		if err != nil {
			return fmt.Errorf("fleet: deliver to initiator: %w", err)
		}
		next, done, err := init.Handle(gotReply.Payload)
		if err != nil {
			return fmt.Errorf("fleet: initiator: %w", err)
		}
		if done {
			return nil
		}
		msg = next
	}
	return errors.New("fleet: handshake did not converge")
}

func (c *NetCarrier) wrap(payload []byte) transport.Message {
	m := transport.Message{CommCode: HandshakeCommCode, SessionID: c.SessionID, Payload: payload}
	if len(payload) > 0 {
		m.OpCode = payload[0]
	}
	return m
}
