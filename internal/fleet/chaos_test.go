package fleet

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/ec"
	"repro/internal/ecqv"
	"repro/internal/session"
	"repro/internal/transport"
)

// chaosCounts aggregates every counter that must reproduce exactly
// across two runs with the same seed.
type chaosCounts struct {
	Errors         int
	BusDropped     int
	BusCorrupted   int
	BusDuplicated  int
	Retransmits    int
	MessageResends int
	IntegrityDrops int
	ProtocolDrops  int
	Retries        int
	FailedAttempts int
	Forwarded      int
	ForwardFailed  int
	EgressQueued   int
	EgressDropped  int
	SimTime        time.Duration
}

// chaosTopology is the acceptance topology: the manager's segment A,
// a backbone segment B and the peers' segment C, bridged by two
// gateways with per-direction ID filters, every segment impaired.
type chaosTopology struct {
	world    *transport.World
	buses    []*canbus.Bus
	gateways []*canbus.Gateway
	locals   []*transport.Endpoint
	remotes  []*transport.Endpoint
	carriers map[ecqv.ID]*NetCarrier
}

func buildChaos(t *testing.T, seed uint64, peers []*core.Party, drop, corrupt float64, egress canbus.EgressPolicy) *chaosTopology {
	t.Helper()
	w := transport.NewWorld(nil)
	topo := &chaosTopology{world: w, carriers: map[ecqv.ID]*NetCarrier{}}

	for i := 0; i < 3; i++ {
		bus := canbus.NewBus(canbus.PrototypeRates)
		bus.SetClock(w.Clock)
		bus.Impair(canbus.Impairment{Seed: seed, BusID: uint64(i), Drop: drop, Corrupt: corrupt})
		topo.buses = append(topo.buses, bus)
	}
	busA, busB, busC := topo.buses[0], topo.buses[1], topo.buses[2]

	fwd := canbus.IDRange(0x100, 0x1FF) // initiator→responder IDs
	rev := canbus.IDRange(0x200, 0x2FF) // responder→initiator IDs
	lat := 50 * time.Microsecond
	gw1 := canbus.NewGateway("gw1", w.Clock)
	gw2 := canbus.NewGateway("gw2", w.Clock)
	for _, r := range []struct {
		gw       *canbus.Gateway
		from, to *canbus.Bus
		filter   func(canbus.Frame) bool
	}{
		{gw1, busA, busB, fwd}, {gw1, busB, busA, rev},
		{gw2, busB, busC, fwd}, {gw2, busC, busB, rev},
	} {
		if err := r.gw.Route(r.from, r.to, r.filter, lat); err != nil {
			t.Fatal(err)
		}
	}
	// An egress policy congests every gateway port — the central-
	// gateway bottleneck the fair-queuing scheduler must keep
	// schedule-invariant.
	if egress.Rate > 0 {
		for _, e := range []struct {
			gw  *canbus.Gateway
			bus *canbus.Bus
		}{
			{gw1, busA}, {gw1, busB}, {gw2, busB}, {gw2, busC},
		} {
			if err := e.gw.SetEgress(e.bus, egress); err != nil {
				t.Fatal(err)
			}
		}
	}
	w.AddGateway(gw1)
	w.AddGateway(gw2)
	topo.gateways = []*canbus.Gateway{gw1, gw2}

	link := &transport.Link{World: w, MaxResend: 6}
	cfg := transport.DefaultConfig()
	for i, p := range peers {
		// Acceptance filters pair each endpoint with its peer's CAN ID
		// — on the shared segments the other seven conversations are
		// invisible, as real controller mailbox filters make them.
		lcfg, rcfg := cfg, cfg
		lcfg.AcceptID = 0x200 + uint32(i)
		rcfg.AcceptID = 0x100 + uint32(i)
		local := transport.NewReliableEndpoint(w, busA.Attach(fmt.Sprintf("mgr→%s", p.ID)), 0x100+uint32(i), lcfg)
		remote := transport.NewReliableEndpoint(w, busC.Attach(p.ID.String()), 0x200+uint32(i), rcfg)
		topo.locals = append(topo.locals, local)
		topo.remotes = append(topo.remotes, remote)
		topo.carriers[p.ID] = &NetCarrier{Link: link, Local: local, Remote: remote, SessionID: uint16(i + 1)}
	}
	return topo
}

func (topo *chaosTopology) counts(errs []error, m *Manager) chaosCounts {
	var c chaosCounts
	for _, err := range errs {
		if err != nil {
			c.Errors++
		}
	}
	for _, bus := range topo.buses {
		s := bus.Stats()
		c.BusDropped += s.Dropped
		c.BusCorrupted += s.Corrupted
		c.BusDuplicated += s.Duplicated
	}
	for _, eps := range [][]*transport.Endpoint{topo.locals, topo.remotes} {
		for _, e := range eps {
			s := e.Stats()
			c.Retransmits += s.Retransmits
			c.MessageResends += s.MessageResends
			c.IntegrityDrops += s.IntegrityDrops
			c.ProtocolDrops += s.ProtocolDrops
		}
	}
	for _, gw := range topo.gateways {
		s := gw.Stats()
		c.Forwarded += s.Forwarded
		c.ForwardFailed += s.ForwardFailed
		c.EgressQueued += s.EgressQueued
		c.EgressDropped += s.EgressDropped
	}
	st := m.Stats()
	c.Retries = st.HandshakeRetries
	c.FailedAttempts = st.FailedAttempts
	c.SimTime = topo.world.Clock.Now()
	return c
}

// conversationSeed hashes (seed, peer identity, salt) into the seed
// of a private detrand stream — the per-conversation randomness that
// makes concurrent chaos runs reproducible. Not cryptographic.
func conversationSeed(seed uint64, id ecqv.ID, salt uint64) uint64 {
	return detrand.DeriveSeed(seed, id[:], salt)
}

// runChaos provisions a manager and peerCount peers, brings the fleet
// up over the impaired 3-segment topology and returns the aggregated
// counters. Determinism at any parallelism rests on three legs: bus
// faults are content-keyed (canbus), every conversation draws its
// ephemerals from a private stream — each peer's responder from a
// per-peer reader, the manager's initiator from a per-(peer, attempt)
// reader via SetHandshakeRand — and congested gateway ports schedule
// releases per conversation flow (fair queuing), so nothing any
// conversation sends or waits for depends on how the scheduler
// interleaved the others.
func runChaos(t *testing.T, seed uint64, peerCount int, drop, corrupt float64, attempts, parallelism int, egress canbus.EgressPolicy) chaosCounts {
	t.Helper()
	net, err := core.NewNetwork(ec.P256(), newDetRand(int64(seed)))
	if err != nil {
		t.Fatal(err)
	}
	self, err := net.Provision("chaos-gateway")
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]*core.Party, peerCount)
	for i := range peers {
		if peers[i], err = net.Provision(fmt.Sprintf("ecu-%02d", i)); err != nil {
			t.Fatal(err)
		}
		peers[i].Rand = detrand.NewReader(conversationSeed(seed, peers[i].ID, 0xB0B))
	}

	topo := buildChaos(t, seed, peers, drop, corrupt, egress)
	m, err := NewManager(self, core.OptNone, session.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m.SetRetryPolicy(RetryPolicy{MaxAttempts: attempts})
	m.SetHandshakeRand(func(peer ecqv.ID, attempt int) io.Reader {
		return detrand.NewReader(conversationSeed(seed, peer, 0xA11CE+uint64(attempt)))
	})
	m.SetCarrier(func(peer *core.Party) (Carrier, error) {
		c, ok := topo.carriers[peer.ID]
		if !ok {
			t.Fatalf("no carrier for %s", peer.ID)
		}
		return c, nil
	})

	errs := m.EstablishAll(peers, parallelism)
	counts := topo.counts(errs, m)

	// Every converged session must actually carry traffic.
	for _, p := range peers {
		payload := []byte("chaos " + p.ID.String())
		rec, err := m.Seal(p.ID, payload)
		if err != nil {
			t.Fatalf("seal to %s: %v", p.ID, err)
		}
		got, err := m.Open(p.ID, rec)
		if err != nil {
			t.Fatalf("open from %s: %v", p.ID, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("record to %s corrupted", p.ID)
		}
	}
	return counts
}

// TestChaosThreeSegmentFleet is the acceptance scenario: 8 peers
// behind two gateways, 5% frame loss and 1% corruption on every
// segment, full CONCURRENT fleet bring-up (EstablishAll parallelism
// 8) with zero failures, and the complete fault/recovery trace
// reproducible bit-for-bit across three consecutive runs under the
// same seed. Before impairment was content-keyed this required the
// parallelism=1 workaround; concurrent workers racing for the world
// lock now permute only the attempt order, which the trace is
// invariant to.
func TestChaosThreeSegmentFleet(t *testing.T) {
	const seed = 42
	first := runChaos(t, seed, 8, 0.05, 0.01, 10, 8, canbus.EgressPolicy{})
	if first.Errors != 0 {
		t.Fatalf("%d of 8 handshakes failed under 5%%/1%% impairment", first.Errors)
	}
	if first.BusDropped == 0 || first.BusCorrupted == 0 {
		t.Errorf("impairment did not fire: %+v", first)
	}
	if first.Retransmits+first.MessageResends+first.Retries == 0 {
		t.Errorf("fleet converged without any recovery activity — impairment too weak to prove anything: %+v", first)
	}
	if first.Forwarded == 0 {
		t.Error("gateways forwarded nothing — the topology is not multi-segment")
	}

	// Three consecutive concurrent runs, bit-for-bit identical.
	for run := 2; run <= 3; run++ {
		again := runChaos(t, seed, 8, 0.05, 0.01, 10, 8, canbus.EgressPolicy{})
		if first != again {
			t.Fatalf("same seed diverged on concurrent run %d:\nrun1 %+v\nrun%d %+v", run, first, run, again)
		}
	}

	other := runChaos(t, seed+1, 8, 0.05, 0.01, 10, 8, canbus.EgressPolicy{})
	if other.Errors != 0 {
		t.Fatalf("seed %d: %d handshakes failed", seed+1, other.Errors)
	}
	if other == first {
		t.Error("different seeds produced identical traces")
	}
}

// TestChaosScheduleInvariance is the content-keying property at fleet
// scale: the trace is a function of the seed alone, not of the worker
// count. A serial bring-up and two concurrent ones must agree on
// every counter, including simulated time.
func TestChaosScheduleInvariance(t *testing.T) {
	const seed = 77
	serial := runChaos(t, seed, 6, 0.02, 0.005, 10, 1, canbus.EgressPolicy{})
	if serial.Errors != 0 {
		t.Fatalf("serial bring-up failed: %+v", serial)
	}
	for _, parallelism := range []int{3, 8} {
		conc := runChaos(t, seed, 6, 0.02, 0.005, 10, parallelism, canbus.EgressPolicy{})
		if conc != serial {
			t.Fatalf("parallelism %d changed the trace:\nserial   %+v\nparallel %+v", parallelism, serial, conc)
		}
	}
}

// TestChaosCongestedGatewayScheduleInvariance is the assertion PR 4
// could not make: on a topology whose gateways are egress-congested
// (rate-limited ports with bounded queues), a serial bring-up and
// concurrent ones must still agree on every counter bit-for-bit —
// simulated end time included. The shared egress FIFO coupled
// conversations through one next-transmit time and through arrival
// order, so this equality only holds now that each conversation flow
// is scheduled by its own virtual clock (start-time fair queuing).
func TestChaosCongestedGatewayScheduleInvariance(t *testing.T) {
	const seed = 1234
	// 1200 frames/s ⇒ an ~833 µs release gap, about twice a full
	// CAN-FD frame's wire time: real backlogs build on every port
	// without starving the ISO-TP timers.
	egress := canbus.EgressPolicy{Rate: 1200, Queue: 256}
	open := runChaos(t, seed, 6, 0.02, 0.005, 10, 1, canbus.EgressPolicy{})
	serial := runChaos(t, seed, 6, 0.02, 0.005, 10, 1, egress)
	if serial.Errors != 0 {
		t.Fatalf("serial congested bring-up failed: %+v", serial)
	}
	// The rate limit must demonstrably engage before the invariance
	// comparison means anything. EgressQueued alone cannot show that —
	// store-latency scheduling moves it on every topology — but the
	// ~17× serialization gap has to cost simulated time against the
	// identical scenario on uncongested gateways.
	if serial.SimTime <= open.SimTime {
		t.Fatalf("egress rate limit never engaged — congested bring-up (%v) not slower than uncongested (%v)", serial.SimTime, open.SimTime)
	}
	if serial.BusDropped == 0 || serial.Retransmits+serial.MessageResends+serial.Retries == 0 {
		t.Fatalf("impairment forced no recovery under congestion: %+v", serial)
	}
	for _, parallelism := range []int{3, 8} {
		conc := runChaos(t, seed, 6, 0.02, 0.005, 10, parallelism, egress)
		if conc != serial {
			t.Fatalf("parallelism %d changed the congested trace:\nserial   %+v\nparallel %+v", parallelism, serial, conc)
		}
	}
}

// TestChaosLossless proves the network carrier costs nothing on a
// clean fabric: no retries, no retransmissions, no failed attempts.
func TestChaosLossless(t *testing.T) {
	c := runChaos(t, 7, 4, 0, 0, 3, 1, canbus.EgressPolicy{})
	if c.Errors != 0 {
		t.Fatalf("lossless bring-up failed: %+v", c)
	}
	if c.Retransmits != 0 || c.MessageResends != 0 || c.Retries != 0 || c.FailedAttempts != 0 {
		t.Errorf("lossless path paid recovery costs: %+v", c)
	}
}

// TestChaosRetryExhaustion: a fabric that destroys everything burns
// the whole attempt budget and surfaces the failure per peer.
func TestChaosRetryExhaustion(t *testing.T) {
	net, err := core.NewNetwork(ec.P256(), newDetRand(99))
	if err != nil {
		t.Fatal(err)
	}
	self, _ := net.Provision("gw")
	peer, _ := net.Provision("unreachable")

	topo := buildChaos(t, 99, []*core.Party{peer}, 1.0, 0, canbus.EgressPolicy{})
	m, _ := NewManager(self, core.OptNone, session.DefaultPolicy)
	m.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	m.SetCarrier(func(p *core.Party) (Carrier, error) { return topo.carriers[p.ID], nil })

	if err := m.Connect(peer); err == nil {
		t.Fatal("handshake succeeded across a fabric with 100% loss")
	}
	st := m.Stats()
	if st.FailedAttempts != 3 || st.HandshakeRetries != 2 {
		t.Errorf("attempt accounting wrong: %+v", st)
	}
	if len(m.Peers()) != 0 {
		t.Error("failed connect left a peer entry")
	}
}
