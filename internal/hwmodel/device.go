// Package hwmodel replays instrumented protocol traces on models of
// the paper's four evaluation devices, reproducing the execution-time
// experiments (Table I, Figures 3 and 4) without AVR or Cortex-M
// silicon.
//
// # Substitution rationale (see DESIGN.md)
//
// The paper measures wall-clock protocol times on an ATmega2560, an
// S32K144, an STM32F767 and a Raspberry Pi 4. Across these devices the
// dominant cost is scalar multiplication on secp256r1; all protocol-
// level differences the paper discusses (STS vs S-ECDSA vs symmetric
// baselines, optimization pipelining) are differences in *which and
// how many* primitives run and *how they are scheduled*, not in
// device-specific microarchitecture. The model therefore:
//
//  1. prices every primitive in units of one P-256 point
//     multiplication (the cost model, cost.go);
//  2. calibrates each device's point-multiplication time so that the
//     modelled S-ECDSA protocol matches the paper's measured S-ECDSA
//     row of Table I exactly (one free parameter per device);
//  3. replays any protocol trace — including the STS pipelining
//     schedules of equations (5)–(8) — against those device costs.
//
// Everything except the four calibrated constants is then a
// *prediction*, and EXPERIMENTS.md compares those predictions against
// the paper's measured rows.
package hwmodel

import "fmt"

// Class buckets devices the way §V-A does.
type Class string

const (
	// ClassLowEnd — 8-bit microcontrollers.
	ClassLowEnd Class = "low-end"
	// ClassMidTier — 32-bit Cortex-M automotive/industrial parts.
	ClassMidTier Class = "mid-tier"
	// ClassHighEnd — application-class 64-bit cores.
	ClassHighEnd Class = "high-end"
)

// Device is one modelled evaluation platform.
type Device struct {
	Name  string
	CPU   string
	Class Class
	// MHz is the nominal core clock, for reporting only.
	MHz float64
	// PointMulMS is the calibrated cost of one secp256r1 point
	// multiplication in milliseconds — the single free parameter per
	// device (see the package comment).
	PointMulMS float64
}

func (d Device) String() string { return d.Name }

// The paper's measured S-ECDSA row of Table I (milliseconds), used for
// calibration.
var paperSECDSA = map[string]float64{
	"ATmega2560":   36859.26,
	"S32K144":      2894.1,
	"STM32F767":    2521.77,
	"RaspberryPi4": 18.76,
}

// PaperTable1 holds every measured cell of the paper's Table I
// (milliseconds) for the experiment comparisons in EXPERIMENTS.md.
var PaperTable1 = map[string]map[string]float64{
	"S-ECDSA":        {"ATmega2560": 36859.26, "S32K144": 2894.1, "STM32F767": 2521.77, "RaspberryPi4": 18.76},
	"S-ECDSA (ext.)": {"ATmega2560": 36882.64, "S32K144": 2976.2, "STM32F767": 2602.69, "RaspberryPi4": 18.68},
	"STS":            {"ATmega2560": 46262.03, "S32K144": 3622.71, "STM32F767": 3162.07, "RaspberryPi4": 23.26},
	"STS (opt. I)":   {"ATmega2560": 41680.23, "S32K144": 3246.55, "STM32F767": 2818.02, "RaspberryPi4": 20.87},
	"STS (opt. II)":  {"ATmega2560": 32410.81, "S32K144": 2556.84, "STM32F767": 2219.25, "RaspberryPi4": 16.31},
	"SCIANC":         {"ATmega2560": 8990.49, "S32K144": 721.67, "STM32F767": 628.1, "RaspberryPi4": 4.58},
	"PORAMB":         {"ATmega2560": 17932.17, "S32K144": 1471.66, "STM32F767": 1263.0, "RaspberryPi4": 8.98},
}

// deviceSpecs lists the four platforms of §V-A before calibration.
var deviceSpecs = []Device{
	{Name: "ATmega2560", CPU: "AVR 8-bit", Class: ClassLowEnd, MHz: 16},
	{Name: "S32K144", CPU: "ARM Cortex-M4F", Class: ClassMidTier, MHz: 80},
	{Name: "STM32F767", CPU: "ARM Cortex-M7", Class: ClassMidTier, MHz: 216},
	{Name: "RaspberryPi4", CPU: "ARM Cortex-A72", Class: ClassHighEnd, MHz: 1500},
}

// DeviceByName finds a calibrated device in a model's device list.
func DeviceByName(devices []Device, name string) (Device, error) {
	for _, d := range devices {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("hwmodel: unknown device %q", name)
}
