package hwmodel

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ec"
)

// This file implements the paper's declared future work (§VI): "we
// plan to investigate the influence of security modules and hardware
// accelerators when considering the implicit certificate protocols on
// embedded devices, especially those related to session
// establishment." The extension models two deployment styles:
//
//   - a bus-attached secure element (SE050 class): EC operations run
//     at the module's fixed speed, independent of the host CPU, plus
//     a per-operation command latency;
//   - an on-die accelerator / crypto instruction extension: EC
//     operations speed up by a constant factor relative to the host.

// Accelerator describes an EC offload engine.
type Accelerator struct {
	Name string
	// PointMulMS is the module's own time for one P-256 point
	// multiplication (bus-attached style). Zero selects the
	// speedup-factor style instead.
	PointMulMS float64
	// CommandLatencyMS is added per offloaded EC operation
	// (bus/driver round trip). Only used with PointMulMS.
	CommandLatencyMS float64
	// Speedup divides the host's EC cost (on-die style). Only used
	// when PointMulMS is zero.
	Speedup float64
}

// Accelerators returns the modelled offload engines.
func Accelerators() []Accelerator {
	return []Accelerator{
		// Discrete secure element over I²C: fast silicon, per-command
		// overhead (order of SE050/ATECC numbers).
		{Name: "secure-element", PointMulMS: 15, CommandLatencyMS: 2},
		// On-die public-key accelerator (PKA) block.
		{Name: "on-die-pka", Speedup: 12},
	}
}

// Accelerate returns a device variant whose EC point-multiplication
// cost reflects the accelerator. Symmetric work stays on the host.
func Accelerate(dev Device, acc Accelerator) (Device, error) {
	out := dev
	out.Name = dev.Name + "+" + acc.Name
	switch {
	case acc.PointMulMS > 0:
		out.PointMulMS = acc.PointMulMS + acc.CommandLatencyMS
	case acc.Speedup > 0:
		out.PointMulMS = dev.PointMulMS / acc.Speedup
	default:
		return Device{}, fmt.Errorf("hwmodel: accelerator %q has neither speed nor speedup", acc.Name)
	}
	if out.PointMulMS >= dev.PointMulMS {
		// An accelerator slower than the host is not an accelerator;
		// report it rather than silently regressing (relevant for the
		// RPi4, whose software point mult beats a bus-attached SE).
		return out, fmt.Errorf("hwmodel: %s does not accelerate %s (%.2f ≥ %.2f ms)",
			acc.Name, dev.Name, out.PointMulMS, dev.PointMulMS)
	}
	return out, nil
}

// FutureWorkTable computes the §VI extension experiment: STS and
// S-ECDSA times on each device, bare and with each accelerator.
// Combinations where the accelerator does not help are reported with
// the bare time.
func (m *Model) FutureWorkTable() (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	protos := []core.Protocol{core.NewSECDSA(false), core.NewSTS(core.OptNone), core.NewSTS(core.OptII)}
	for _, dev := range m.devices {
		variants := []Device{dev}
		for _, acc := range Accelerators() {
			accDev, err := Accelerate(dev, acc)
			if err != nil {
				continue // accelerator does not help this device
			}
			variants = append(variants, accDev)
		}
		for _, v := range variants {
			row := map[string]float64{}
			for _, p := range protos {
				ms, err := m.ProtocolMS(p, v, v)
				if err != nil {
					return nil, err
				}
				row[p.Name()] = ms
			}
			out[v.Name] = row
		}
	}
	return out, nil
}

// CurveCostFactor scales the calibrated P-256 point-multiplication
// cost to another curve. big-integer point multiplication is
// Θ(bits³): bits iterations of Θ(bits²) field arithmetic.
func CurveCostFactor(curve *ec.Curve) float64 {
	r := float64(curve.BitSize) / 256.0
	return math.Pow(r, 3)
}

// CurveSweep prices one protocol across the bundled curves on a
// device — the security-level/performance trade study. Wire bytes come
// from the curve-dependent certificate and point sizes.
type CurveSweepRow struct {
	Curve     string
	TimeMS    float64
	WireBytes int
}

// CurveSweep evaluates the trade study for a protocol trace priced on
// dev. The trace is curve-independent in operation counts; only the
// per-operation cost and the wire sizes scale.
func (m *Model) CurveSweep(p core.Protocol, dev Device) ([]CurveSweepRow, error) {
	t, err := m.ReferenceTrace(p.Name())
	if err != nil {
		return nil, err
	}
	rows := make([]CurveSweepRow, 0, 3)
	for _, curve := range ec.Curves() {
		scaled := dev
		scaled.PointMulMS = dev.PointMulMS * CurveCostFactor(curve)
		ms := m.SequentialMS(t, scaled, scaled)
		if sts, ok := p.(*core.STS); ok && sts.Optimization() != core.OptNone {
			ms = m.OptimizedMS(t, scaled, scaled, OverlapSet(sts.Optimization()))
		}
		rows = append(rows, CurveSweepRow{
			Curve:     curve.Name,
			TimeMS:    ms,
			WireBytes: wireBytesOnCurve(p, curve),
		})
	}
	return rows, nil
}

// wireBytesOnCurve recomputes a protocol's Table II total for a curve:
// certificates are 68 + (ByteLen+1) bytes, raw points and signatures
// 2·ByteLen.
func wireBytesOnCurve(p core.Protocol, curve *ec.Curve) int {
	certSize := 68 + curve.CompressedPointSize()
	ecSize := 2 * curve.ByteLen()
	total := 0
	for _, step := range p.Spec() {
		for _, f := range step.Fields {
			switch f.Name {
			case "Cert":
				total += certSize
			case "XG", "Sign", "Resp":
				total += ecSize
			default:
				total += f.Size
			}
		}
	}
	return total
}
