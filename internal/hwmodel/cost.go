package hwmodel

import (
	"repro/internal/core"
)

// CostModel prices trace primitives in units of one P-256 point
// multiplication. Two kinds of entries exist: per-operation weights
// (an ECDSA verify is ~1.3 point multiplications thanks to the
// Strauss–Shamir trick) and per-byte weights for the symmetric
// primitives, whose cost is linear in the data size and three orders
// of magnitude below EC work on every platform in Table I.
type CostModel struct {
	// PerOp maps op-metered primitives to point-mult units per
	// occurrence.
	PerOp map[core.Primitive]float64
	// PerByte maps byte-metered primitives to point-mult units per
	// byte.
	PerByte map[core.Primitive]float64
}

// DefaultCostModel returns the weights used throughout the
// reproduction. The EC weights follow operation counts of the
// underlying algorithms; the symmetric weights approximate embedded
// software implementations (SHA-256 ≈ tens of cycles/byte vs ≈ 10⁷
// cycles per point multiplication).
func DefaultCostModel() *CostModel {
	return &CostModel{
		PerOp: map[core.Primitive]float64{
			core.PrimECBaseMult:     1.0, // micro-ecc has no fixed-base speedup
			core.PrimECPointMult:    1.0,
			core.PrimECCombinedMult: 1.3, // shared doubling chain
			core.PrimECPointAdd:     0.005,
			core.PrimECPointDecode:  0.15, // one modular square root
			core.PrimModInverse:     0.02,
			core.PrimRandScalar:     0.02,
			core.PrimKDF:            0.002, // a handful of HMAC blocks
		},
		PerByte: map[core.Primitive]float64{
			core.PrimHashBytes: 1.2e-5,
			core.PrimMACBytes:  2.4e-5, // HMAC ≈ 2 hash passes + padding
			core.PrimAESBytes:  6e-6,
			core.PrimRandBytes: 2e-6,
		},
	}
}

// EventUnits prices one trace event.
func (m *CostModel) EventUnits(e core.Event) float64 {
	if w, ok := m.PerOp[e.Prim]; ok {
		return w * float64(e.N)
	}
	if w, ok := m.PerByte[e.Prim]; ok {
		return w * float64(e.N)
	}
	return 0
}

// PhaseUnits prices an aggregated phase count map.
func (m *CostModel) PhaseUnits(counts map[core.Primitive]int) float64 {
	total := 0.0
	for prim, n := range counts {
		total += m.EventUnits(core.Event{Prim: prim, N: n})
	}
	return total
}

// TraceUnits prices a full trace per party and phase.
func (m *CostModel) TraceUnits(t *core.Trace) map[core.PartyRole]map[core.Phase]float64 {
	agg := t.Aggregate()
	out := map[core.PartyRole]map[core.Phase]float64{}
	for role, byPhase := range agg {
		out[role] = map[core.Phase]float64{}
		for phase, counts := range byPhase {
			out[role][phase] = m.PhaseUnits(counts)
		}
	}
	return out
}
