package hwmodel

import (
	"testing"

	"repro/internal/core"
)

// TestCostModelSensitivity is the robustness ablation: the qualitative
// Table I conclusions (protocol ordering, STS ≈ +20 %, Opt II beats
// S-ECDSA) must not depend on the fine-tuning of the secondary cost
// weights. Perturb each secondary weight by ±50 % and re-check.
func TestCostModelSensitivity(t *testing.T) {
	perturb := []struct {
		name string
		prim core.Primitive
	}{
		{"combined-mult", core.PrimECCombinedMult},
		{"point-decode", core.PrimECPointDecode},
		{"mod-inverse", core.PrimModInverse},
		{"rand-scalar", core.PrimRandScalar},
	}
	for _, p := range perturb {
		for _, factor := range []float64{0.5, 1.5} {
			m, err := New()
			if err != nil {
				t.Fatal(err)
			}
			m.Cost.PerOp[p.prim] *= factor
			// Re-calibrate against the perturbed weights: the paper's
			// S-ECDSA row is the anchor regardless of model details.
			secdsaTrace, err := m.ReferenceTrace("S-ECDSA")
			if err != nil {
				t.Fatal(err)
			}
			units := m.traceTotalUnits(secdsaTrace)
			for i := range m.devices {
				m.devices[i].PointMulMS = paperSECDSA[m.devices[i].Name] / units
			}

			table, err := m.Table1()
			if err != nil {
				t.Fatal(err)
			}
			for _, dev := range m.Devices() {
				get := func(proto string) float64 { return table[proto][dev.Name] }
				label := p.name + "×" + map[float64]string{0.5: "0.5", 1.5: "1.5"}[factor] + "/" + dev.Name

				// Core orderings.
				if !(get("SCIANC") < get("PORAMB") && get("PORAMB") < get("S-ECDSA")) {
					t.Errorf("%s: symmetric-baseline ordering broke", label)
				}
				if !(get("STS (opt. II)") < get("S-ECDSA")) {
					t.Errorf("%s: Opt II no longer beats S-ECDSA", label)
				}
				if !(get("S-ECDSA") < get("STS")) {
					t.Errorf("%s: STS no longer above S-ECDSA", label)
				}
				// Headline ratio stays in a sane band.
				ratio := get("STS") / get("S-ECDSA")
				if ratio < 1.10 || ratio > 1.45 {
					t.Errorf("%s: STS/S-ECDSA ratio %.3f left [1.10, 1.45]", label, ratio)
				}
			}
		}
	}
}
