package hwmodel

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ec"
)

func TestAccelerate(t *testing.T) {
	m := newModel(t)
	s32k, err := m.Device("S32K144")
	if err != nil {
		t.Fatal(err)
	}

	for _, acc := range Accelerators() {
		accDev, err := Accelerate(s32k, acc)
		if err != nil {
			t.Fatalf("%s: %v", acc.Name, err)
		}
		if accDev.PointMulMS >= s32k.PointMulMS {
			t.Errorf("%s: no speedup (%.2f vs %.2f)", acc.Name, accDev.PointMulMS, s32k.PointMulMS)
		}
		if !strings.Contains(accDev.Name, acc.Name) {
			t.Errorf("%s: variant name %q", acc.Name, accDev.Name)
		}
	}

	// A bus-attached secure element must NOT "accelerate" the RPi4
	// (software on a 1.5 GHz A72 beats the module + bus latency).
	rpi, _ := m.Device("RaspberryPi4")
	se := Accelerators()[0]
	if _, err := Accelerate(rpi, se); err == nil {
		t.Error("secure element reported as accelerating the RPi4")
	}

	// Degenerate accelerator.
	if _, err := Accelerate(s32k, Accelerator{Name: "noop"}); err == nil {
		t.Error("empty accelerator accepted")
	}
}

func TestFutureWorkTable(t *testing.T) {
	m := newModel(t)
	table, err := m.FutureWorkTable()
	if err != nil {
		t.Fatal(err)
	}
	// Bare devices present.
	for _, dev := range m.Devices() {
		if _, ok := table[dev.Name]; !ok {
			t.Errorf("missing bare row for %s", dev.Name)
		}
	}
	// Accelerated S32K144 must beat the bare S32K144 for STS...
	bare := table["S32K144"]["STS"]
	accel := table["S32K144+secure-element"]["STS"]
	if !(accel < bare/3) {
		t.Errorf("secure element STS %.1f ms not ≪ bare %.1f ms", accel, bare)
	}
	// ... and collapse the STS-vs-S-ECDSA gap to insignificance in
	// absolute terms (the future-work hypothesis: with offload, the
	// DKD's extra cost stops mattering).
	gapBare := table["S32K144"]["STS"] - table["S32K144"]["S-ECDSA"]
	gapAccel := accel - table["S32K144+secure-element"]["S-ECDSA"]
	if !(gapAccel < gapBare/3) {
		t.Errorf("accelerated STS gap %.1f ms not ≪ bare gap %.1f ms", gapAccel, gapBare)
	}
	// Ordering STS opt II < STS survives acceleration.
	if !(table["S32K144+on-die-pka"]["STS (opt. II)"] < table["S32K144+on-die-pka"]["STS"]) {
		t.Error("optimization ordering lost under acceleration")
	}
}

func TestCurveCostFactor(t *testing.T) {
	if got := CurveCostFactor(ec.P256()); got != 1.0 {
		t.Errorf("P-256 factor %.3f, want 1", got)
	}
	f224 := CurveCostFactor(ec.P224())
	f192 := CurveCostFactor(ec.P192())
	if !(f192 < f224 && f224 < 1) {
		t.Errorf("curve factors not ordered: %f, %f", f192, f224)
	}
	// (192/256)³ = 0.421875
	if f192 < 0.42 || f192 > 0.43 {
		t.Errorf("P-192 factor %.4f", f192)
	}
}

func TestCurveSweep(t *testing.T) {
	m := newModel(t)
	dev, _ := m.Device("STM32F767")
	rows, err := m.CurveSweep(core.NewSTS(core.OptNone), dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Largest curve first (ec.Curves order), decreasing cost and bytes.
	for i := 0; i+1 < len(rows); i++ {
		if !(rows[i].TimeMS > rows[i+1].TimeMS) {
			t.Errorf("time not decreasing: %v", rows)
		}
		if !(rows[i].WireBytes > rows[i+1].WireBytes) {
			t.Errorf("bytes not decreasing: %v", rows)
		}
	}
	// P-256 row must equal the Table I STS cell.
	table, _ := m.Table1()
	if diff := rows[0].TimeMS - table["STS"]["STM32F767"]; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("P-256 sweep %.3f != Table I %.3f", rows[0].TimeMS, table["STS"]["STM32F767"])
	}
	// P-256 wire bytes must equal Table II (491).
	if rows[0].WireBytes != 491 {
		t.Errorf("P-256 sweep bytes %d, want 491", rows[0].WireBytes)
	}

	// Optimized variant sweeps apply the overlap schedule.
	optRows, err := m.CurveSweep(core.NewSTS(core.OptII), dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if !(optRows[i].TimeMS < rows[i].TimeMS) {
			t.Errorf("%s: opt II not faster", rows[i].Curve)
		}
	}
}
