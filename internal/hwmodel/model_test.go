package hwmodel

import (
	"math"
	"testing"

	"repro/internal/core"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPaperTableNamesMatchProtocols(t *testing.T) {
	// Guard: the calibration and comparison tables are keyed by
	// Protocol.Name(); a rename must not silently orphan a row.
	names := map[string]bool{}
	for _, p := range core.Protocols() {
		names[p.Name()] = true
	}
	for proto := range PaperTable1 {
		if !names[proto] {
			t.Errorf("PaperTable1 row %q has no protocol", proto)
		}
	}
	for name := range names {
		if _, ok := PaperTable1[name]; !ok {
			t.Errorf("protocol %q has no PaperTable1 row", name)
		}
	}
	for dev := range paperSECDSA {
		found := false
		for _, spec := range deviceSpecs {
			if spec.Name == dev {
				found = true
			}
		}
		if !found {
			t.Errorf("calibration device %q not in deviceSpecs", dev)
		}
	}
}

func TestCalibrationMatchesSECDSA(t *testing.T) {
	// By construction the modelled S-ECDSA must equal the paper's
	// measured S-ECDSA on every device.
	m := newModel(t)
	table, err := m.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for dev, want := range paperSECDSA {
		got := table["S-ECDSA"][dev]
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("%s: modelled S-ECDSA %.2f ms, calibration target %.2f ms", dev, got, want)
		}
	}
}

func TestTable1Ordering(t *testing.T) {
	// The qualitative Table I ordering must hold on every device:
	// SCIANC < PORAMB < STS opt II < S-ECDSA ≤ S-ECDSA ext,
	// and S-ECDSA ≤ STS opt I < STS.
	m := newModel(t)
	table, err := m.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range m.Devices() {
		get := func(p string) float64 { return table[p][dev.Name] }
		chain := []string{"SCIANC", "PORAMB", "STS (opt. II)", "S-ECDSA"}
		for i := 0; i+1 < len(chain); i++ {
			if !(get(chain[i]) < get(chain[i+1])) {
				t.Errorf("%s: %s (%.1f) not < %s (%.1f)",
					dev.Name, chain[i], get(chain[i]), chain[i+1], get(chain[i+1]))
			}
		}
		if !(get("S-ECDSA") <= get("S-ECDSA (ext.)")) {
			t.Errorf("%s: ext variant faster than base", dev.Name)
		}
		if !(get("S-ECDSA") <= get("STS (opt. I)")) {
			t.Errorf("%s: STS opt I (%.1f) below S-ECDSA (%.1f)",
				dev.Name, get("STS (opt. I)"), get("S-ECDSA"))
		}
		if !(get("STS (opt. I)") < get("STS")) {
			t.Errorf("%s: opt I not faster than plain STS", dev.Name)
		}
	}
}

func TestSTSOverheadAbout20Percent(t *testing.T) {
	// The headline claim: STS costs ≈ 20–25 % more than S-ECDSA
	// ("a slight computational increase of 20%", measured 21.67 % in
	// the prototype, 25.4 % in Table I on the STM32F767).
	m := newModel(t)
	table, err := m.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range m.Devices() {
		ratio := table["STS"][dev.Name] / table["S-ECDSA"][dev.Name]
		if ratio < 1.15 || ratio > 1.35 {
			t.Errorf("%s: STS/S-ECDSA ratio %.3f outside [1.15, 1.35]", dev.Name, ratio)
		}
	}
}

func TestDeviceSpeedOrdering(t *testing.T) {
	// Hardware class ordering: RPi4 ≪ STM32F767 < S32K144 ≪ ATmega2560.
	m := newModel(t)
	table, err := m.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for proto, row := range table {
		if !(row["RaspberryPi4"] < row["STM32F767"] &&
			row["STM32F767"] < row["S32K144"] &&
			row["S32K144"] < row["ATmega2560"]) {
			t.Errorf("%s: device ordering violated: %+v", proto, row)
		}
	}
}

func TestTable1AgainstPaperShape(t *testing.T) {
	// Every modelled cell must be within 2× of the paper's measured
	// value (most are far closer; the bound catches gross model
	// breakage while tolerating the known Opt.-I ideal-vs-measured
	// gap).
	m := newModel(t)
	table, err := m.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for proto, wantRow := range PaperTable1 {
		for dev, want := range wantRow {
			got := table[proto][dev]
			ratio := got / want
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s/%s: modelled %.1f ms vs paper %.1f ms (ratio %.2f)",
					proto, dev, got, want, ratio)
			}
		}
	}
}

func TestOptimizationFormulas(t *testing.T) {
	// Equations (5), (7), (8) with identical devices: the sequential
	// time is the sum of all phases of both parties; each overlapped
	// phase then costs max(T_A, T_B) instead of T_A + T_B, i.e. the
	// saving is min(T_A, T_B) summed over the overlap set.
	m := newModel(t)
	dev, err := m.Device("STM32F767")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := m.ReferenceTrace("STS")
	if err != nil {
		t.Fatal(err)
	}
	base := m.PhaseMS(trace, dev)
	raw := m.RawPhaseMS(trace, dev)

	seq := m.SequentialMS(trace, dev, dev)
	sum := 0.0
	for _, role := range []core.PartyRole{core.RoleA, core.RoleB} {
		for _, ph := range core.Phases() {
			sum += base[role][ph]
		}
	}
	if math.Abs(seq-sum) > 1e-9 {
		t.Errorf("equation (5) violated: %.3f vs %.3f", seq, sum)
	}

	minOver := func(ph core.Phase) float64 {
		return math.Min(raw[core.RoleA][ph], raw[core.RoleB][ph])
	}

	opt1 := m.OptimizedMS(trace, dev, dev, OverlapSet(core.OptI))
	saving1 := minOver(core.PhaseOp2PubKey)
	if math.Abs((seq-opt1)-saving1) > 1e-9 {
		t.Errorf("equation (7) saving %.3f, want %.3f", seq-opt1, saving1)
	}

	opt2 := m.OptimizedMS(trace, dev, dev, OverlapSet(core.OptII))
	saving2 := saving1 + minOver(core.PhaseOp2Premaster) + minOver(core.PhaseOp3)
	if math.Abs((seq-opt2)-saving2) > 1e-9 {
		t.Errorf("equation (8) saving %.3f, want %.3f", seq-opt2, saving2)
	}

	if !(opt2 < opt1 && opt1 < seq) {
		t.Errorf("optimization ordering violated: %.1f, %.1f, %.1f", seq, opt1, opt2)
	}
}

func TestEquationSixMixedDevices(t *testing.T) {
	// Equation (6): with unequal devices, the overlapped phase adds
	// |TOpAx − TOpBx| on top of the faster device's time — i.e. it
	// costs max(TA, TB).
	m := newModel(t)
	fast, _ := m.Device("RaspberryPi4")
	slow, _ := m.Device("ATmega2560")
	trace, _ := m.ReferenceTrace("STS")
	rawFast := m.RawPhaseMS(trace, fast)
	rawSlow := m.RawPhaseMS(trace, slow)

	seq := m.SequentialMS(trace, fast, slow)
	opt := m.OptimizedMS(trace, fast, slow, OverlapSet(core.OptI))

	ta := rawFast[core.RoleA][core.PhaseOp2PubKey]
	tb := rawSlow[core.RoleB][core.PhaseOp2PubKey]
	saving := math.Min(ta, tb)
	if math.Abs((seq-opt)-saving) > 1e-9 {
		t.Errorf("mixed-device saving %.3f, want min(%.3f, %.3f)", seq-opt, ta, tb)
	}
}

func TestOptIMatchesPaperSaving(t *testing.T) {
	// The paper's measured Table I implies an Opt. I saving of
	// 3162.07 − 2818.02 = 344 ms on the STM32F767 — one public-key
	// reconstruction (≈ 1.17 point multiplications). The modelled
	// saving must land within ±25 % of that.
	m := newModel(t)
	dev, _ := m.Device("STM32F767")
	table, err := m.Table1()
	if err != nil {
		t.Fatal(err)
	}
	_ = dev
	gotSaving := table["STS"]["STM32F767"] - table["STS (opt. I)"]["STM32F767"]
	paperSaving := PaperTable1["STS"]["STM32F767"] - PaperTable1["STS (opt. I)"]["STM32F767"]
	if gotSaving < paperSaving*0.75 || gotSaving > paperSaving*1.25 {
		t.Errorf("Opt. I saving %.1f ms, paper %.1f ms", gotSaving, paperSaving)
	}

	gotSaving2 := table["STS"]["STM32F767"] - table["STS (opt. II)"]["STM32F767"]
	paperSaving2 := PaperTable1["STS"]["STM32F767"] - PaperTable1["STS (opt. II)"]["STM32F767"]
	if gotSaving2 < paperSaving2*0.75 || gotSaving2 > paperSaving2*1.25 {
		t.Errorf("Opt. II saving %.1f ms, paper %.1f ms", gotSaving2, paperSaving2)
	}
}

func TestFig3PhaseShape(t *testing.T) {
	// Fig. 3 / Fig. 7 shape: Op2 (public key + premaster, two point
	// multiplications) is the heaviest phase; Op1 (one base
	// multiplication) is the lightest of the EC phases.
	m := newModel(t)
	dev, _ := m.Device("STM32F767")
	trace, _ := m.ReferenceTrace("STS")
	phases := m.PhaseMS(trace, dev)

	for _, role := range []core.PartyRole{core.RoleA, core.RoleB} {
		op := phases[role]
		if !(op[core.PhaseOp2] > op[core.PhaseOp1]) {
			t.Errorf("%s: Op2 (%.1f) not heavier than Op1 (%.1f)", role, op[core.PhaseOp2], op[core.PhaseOp1])
		}
		if !(op[core.PhaseOp2] > op[core.PhaseOp3]) {
			t.Errorf("%s: Op2 (%.1f) not heavier than Op3 (%.1f)", role, op[core.PhaseOp2], op[core.PhaseOp3])
		}
		if !(op[core.PhaseOp4] > op[core.PhaseOp1]) {
			t.Errorf("%s: Op4 (%.1f) not heavier than Op1 (%.1f)", role, op[core.PhaseOp4], op[core.PhaseOp1])
		}
		// All phases strictly positive.
		for _, ph := range core.Phases() {
			if op[ph] <= 0 {
				t.Errorf("%s %s: non-positive phase time", role, ph)
			}
		}
	}
}

func TestS32KOp1MatchesFig7(t *testing.T) {
	// Fig. 7(A): XG generation on the S32K144 ≈ 323 ms. The calibrated
	// model should land in the same range (±40 %) — Op1 is dominated by
	// exactly one base multiplication.
	m := newModel(t)
	dev, _ := m.Device("S32K144")
	trace, _ := m.ReferenceTrace("STS")
	op1 := m.PhaseMS(trace, dev)[core.RoleA][core.PhaseOp1]
	if op1 < 323*0.6 || op1 > 323*1.4 {
		t.Errorf("S32K144 Op1 = %.1f ms, Fig. 7 shows ≈ 323 ms", op1)
	}
}

func TestDeviceLookup(t *testing.T) {
	m := newModel(t)
	if _, err := m.Device("STM32F767"); err != nil {
		t.Error(err)
	}
	if _, err := m.Device("ESP32"); err == nil {
		t.Error("unknown device accepted")
	}
	if len(m.Devices()) != 4 {
		t.Errorf("%d devices, want 4", len(m.Devices()))
	}
	for _, d := range m.Devices() {
		if d.PointMulMS <= 0 {
			t.Errorf("%s: non-positive calibrated cost", d.Name)
		}
	}
	// Classes per §V-A.
	classes := map[string]Class{
		"ATmega2560": ClassLowEnd, "S32K144": ClassMidTier,
		"STM32F767": ClassMidTier, "RaspberryPi4": ClassHighEnd,
	}
	for _, d := range m.Devices() {
		if d.Class != classes[d.Name] {
			t.Errorf("%s: class %s", d.Name, d.Class)
		}
	}
}

func TestReferenceTraceMissing(t *testing.T) {
	m := newModel(t)
	if _, err := m.ReferenceTrace("NOPE"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestCostModelUnknownPrimitive(t *testing.T) {
	cm := DefaultCostModel()
	if u := cm.EventUnits(core.Event{Prim: core.Primitive(999), N: 5}); u != 0 {
		t.Errorf("unknown primitive priced at %f", u)
	}
}
