package hwmodel

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ec"
)

// Model is a calibrated device/cost model ready to replay protocol
// traces.
type Model struct {
	Cost    *CostModel
	devices []Device

	// referenceTraces caches one trace per protocol, generated with a
	// deterministic RNG. Protocol traces are data-independent (all
	// message sizes are fixed), so one trace per protocol suffices.
	referenceTraces map[string]*core.Trace
}

// deterministicReader adapts math/rand for reproducible reference
// traces.
type deterministicReader struct{ r *rand.Rand }

func (d *deterministicReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// New builds the calibrated model: it provisions a reference device
// pair, runs every protocol once to obtain reference traces, and sets
// each device's point-multiplication cost so the modelled S-ECDSA time
// equals the paper's measured S-ECDSA row.
func New() (*Model, error) {
	m := &Model{Cost: DefaultCostModel(), referenceTraces: map[string]*core.Trace{}}

	rng := &deterministicReader{r: rand.New(rand.NewSource(42))}
	net, err := core.NewNetwork(ec.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("hwmodel: calibration network: %w", err)
	}
	a, b, err := net.Pair("ref-alice", "ref-bob")
	if err != nil {
		return nil, fmt.Errorf("hwmodel: calibration parties: %w", err)
	}
	for _, p := range core.Protocols() {
		res, err := p.Run(a, b)
		if err != nil {
			return nil, fmt.Errorf("hwmodel: reference run %s: %w", p.Name(), err)
		}
		m.referenceTraces[p.Name()] = res.Trace
	}

	// Calibrate: paper S-ECDSA ms = unitsOf(S-ECDSA) × PointMulMS.
	secdsaUnits := m.traceTotalUnits(m.referenceTraces["S-ECDSA"])
	if secdsaUnits <= 0 {
		return nil, fmt.Errorf("hwmodel: degenerate calibration units %f", secdsaUnits)
	}
	m.devices = make([]Device, len(deviceSpecs))
	copy(m.devices, deviceSpecs)
	for i := range m.devices {
		paperMS, ok := paperSECDSA[m.devices[i].Name]
		if !ok {
			return nil, fmt.Errorf("hwmodel: no calibration value for %s", m.devices[i].Name)
		}
		m.devices[i].PointMulMS = paperMS / secdsaUnits
	}
	return m, nil
}

// Devices returns the calibrated device list in Table I column order.
func (m *Model) Devices() []Device { return m.devices }

// Device resolves a device by name.
func (m *Model) Device(name string) (Device, error) {
	return DeviceByName(m.devices, name)
}

// ReferenceTrace returns the cached trace for a protocol name.
func (m *Model) ReferenceTrace(protocol string) (*core.Trace, error) {
	t, ok := m.referenceTraces[protocol]
	if !ok {
		return nil, fmt.Errorf("hwmodel: no reference trace for %q", protocol)
	}
	return t, nil
}

// traceTotalUnits sums the whole trace in point-mult units (both
// parties, all phases) — the τ_T of equation (5) in units.
func (m *Model) traceTotalUnits(t *core.Trace) float64 {
	total := 0.0
	for _, e := range t.Events {
		total += m.Cost.EventUnits(e)
	}
	return total
}

// PhaseMS returns the per-party, per-base-phase times of a trace on a
// device, in milliseconds — the quantities plotted in Fig. 3. Sub-
// phases (Op2a/Op2b) are folded into Op2.
func (m *Model) PhaseMS(t *core.Trace, dev Device) map[core.PartyRole]map[core.Phase]float64 {
	units := m.Cost.TraceUnits(t)
	out := map[core.PartyRole]map[core.Phase]float64{}
	for role, byPhase := range units {
		out[role] = map[core.Phase]float64{}
		for phase, u := range byPhase {
			out[role][phase.Base()] += u * dev.PointMulMS
		}
	}
	return out
}

// RawPhaseMS is PhaseMS without sub-phase folding, for the
// optimization scheduler.
func (m *Model) RawPhaseMS(t *core.Trace, dev Device) map[core.PartyRole]map[core.Phase]float64 {
	units := m.Cost.TraceUnits(t)
	out := map[core.PartyRole]map[core.Phase]float64{}
	for role, byPhase := range units {
		out[role] = map[core.Phase]float64{}
		for phase, u := range byPhase {
			out[role][phase] += u * dev.PointMulMS
		}
	}
	return out
}

// SequentialMS evaluates equation (5): the conventional protocol time
// is the sum of both devices' operation times (the exchange is a
// strict ping-pong, nothing overlaps).
func (m *Model) SequentialMS(t *core.Trace, devA, devB Device) float64 {
	pa := m.RawPhaseMS(t, devA)[core.RoleA]
	pb := m.RawPhaseMS(t, devB)[core.RoleB]
	total := 0.0
	for _, v := range pa {
		total += v
	}
	for _, v := range pb {
		total += v
	}
	return total
}

// OptimizedMS evaluates the pipelined schedules of §IV-C. The
// overlapped set holds the (raw) phases executed concurrently by the
// two parties; for each overlapped phase only the slower side
// contributes beyond the faster one — equation (6)'s
// |T_OpAx − T_OpBx| term: the faster device's share is absorbed
// entirely, i.e. the phase costs max(T_A, T_B).
func (m *Model) OptimizedMS(t *core.Trace, devA, devB Device, overlapped map[core.Phase]bool) float64 {
	pa := m.RawPhaseMS(t, devA)[core.RoleA]
	pb := m.RawPhaseMS(t, devB)[core.RoleB]
	total := 0.0
	for _, phase := range core.RawPhases() {
		ta := pa[phase]
		tb := pb[phase]
		if overlapped[phase] {
			if ta > tb {
				total += ta
			} else {
				total += tb
			}
		} else {
			total += ta + tb
		}
	}
	return total
}

// OverlapSet returns the raw phases that run concurrently under an
// STS optimization level:
//
//   - Opt. I front-loads the initiator certificate, so the
//     certificate-dependent public-key reconstruction (Op2b) of the
//     two parties overlaps (equation (7); the premaster share Op2a
//     was never blocked on message order).
//   - Opt. II additionally overlaps the premaster derivation and the
//     authentication-response generation (Op2a and Op3, equation (8)).
func OverlapSet(opt core.STSOptimization) map[core.Phase]bool {
	switch opt {
	case core.OptI:
		return map[core.Phase]bool{core.PhaseOp2PubKey: true}
	case core.OptII:
		return map[core.Phase]bool{
			core.PhaseOp2PubKey:    true,
			core.PhaseOp2Premaster: true,
			core.PhaseOp3:          true,
		}
	default:
		return nil
	}
}

// ProtocolMS prices one protocol on a device pair, applying the
// correct schedule for the STS optimization variants.
func (m *Model) ProtocolMS(p core.Protocol, devA, devB Device) (float64, error) {
	t, err := m.ReferenceTrace(p.Name())
	if err != nil {
		return 0, err
	}
	if sts, ok := p.(*core.STS); ok && sts.Optimization() != core.OptNone {
		return m.OptimizedMS(t, devA, devB, OverlapSet(sts.Optimization())), nil
	}
	return m.SequentialMS(t, devA, devB), nil
}

// Table1 computes the full modelled Table I: protocol × device, both
// endpoints on the same device type (as in the paper's setup).
func (m *Model) Table1() (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	for _, p := range core.Protocols() {
		row := map[string]float64{}
		for _, dev := range m.devices {
			ms, err := m.ProtocolMS(p, dev, dev)
			if err != nil {
				return nil, err
			}
			row[dev.Name] = ms
		}
		out[p.Name()] = row
	}
	return out, nil
}
