package group

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/ecqv"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// buildGroup provisions a leader plus n members and admits them all,
// returning the leader and the live Member handles.
func buildGroup(t *testing.T, seed int64, n int) (*Leader, map[ecqv.ID]*Member) {
	t.Helper()
	net, err := core.NewNetwork(ec.P256(), newDetRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	leaderParty, err := net.Provision("gateway")
	if err != nil {
		t.Fatal(err)
	}
	leader, err := NewLeader(leaderParty, core.OptII)
	if err != nil {
		t.Fatal(err)
	}

	members := map[ecqv.ID]*Member{}
	for i := 0; i < n; i++ {
		p, err := net.Provision(string(rune('a'+i)) + "-ecu")
		if err != nil {
			t.Fatal(err)
		}
		dist, err := leader.Add(p)
		if err != nil {
			t.Fatal(err)
		}
		pw, err := leader.PairwiseKey(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Join(p, leaderParty.ID, pw)
		if err != nil {
			t.Fatal(err)
		}
		members[p.ID] = m
		// Deliver this epoch's key messages to every member.
		for id, msg := range dist {
			if mm, ok := members[id]; ok {
				if err := mm.Install(msg); err != nil {
					t.Fatalf("install for %s: %v", id, err)
				}
			}
		}
	}
	return leader, members
}

func TestGroupBroadcast(t *testing.T) {
	leader, members := buildGroup(t, 1, 3)
	lk, err := leader.Keys()
	if err != nil {
		t.Fatal(err)
	}

	// Leader broadcasts; every member opens.
	payload := []byte("vehicle speed 87 km/h")
	dg, err := lk.Seal(ecqv.NewID("gateway"), 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range members {
		mk, err := m.Keys()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		sender, got, err := mk.Open(dg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if sender != ecqv.NewID("gateway") || !bytes.Equal(got, payload) {
			t.Fatalf("%s: datagram corrupted", id)
		}
	}

	// Member-to-group traffic opens at the leader too.
	for id, m := range members {
		mk, _ := m.Keys()
		dg, err := mk.Seal(id, 7, []byte("status ok"))
		if err != nil {
			t.Fatal(err)
		}
		sender, got, err := lk.Open(dg)
		if err != nil {
			t.Fatal(err)
		}
		if sender != id || !bytes.Equal(got, []byte("status ok")) {
			t.Fatal("member datagram corrupted")
		}
	}
}

func TestEpochBumpsOnMembershipChange(t *testing.T) {
	leader, members := buildGroup(t, 2, 2)
	if leader.Epoch() != 2 { // one bump per Add
		t.Errorf("epoch %d after two adds", leader.Epoch())
	}
	if leader.Size() != 2 {
		t.Errorf("size %d", leader.Size())
	}
	var anyID ecqv.ID
	for id := range members {
		anyID = id
		break
	}
	dist, err := leader.Remove(anyID)
	if err != nil {
		t.Fatal(err)
	}
	if leader.Epoch() != 3 {
		t.Errorf("epoch %d after remove", leader.Epoch())
	}
	if _, stillThere := dist[anyID]; stillThere {
		t.Error("removed member received the new key")
	}
	if leader.Size() != 1 {
		t.Errorf("size %d after remove", leader.Size())
	}
}

func TestRemovedMemberLockedOut(t *testing.T) {
	leader, members := buildGroup(t, 3, 2)
	var removedID ecqv.ID
	for id := range members {
		removedID = id
		break
	}
	removed := members[removedID]
	oldKeys, _ := removed.Keys()

	dist, err := leader.Remove(removedID)
	if err != nil {
		t.Fatal(err)
	}
	// Remaining members install the new epoch.
	for id, msg := range dist {
		if err := members[id].Install(msg); err != nil {
			t.Fatal(err)
		}
	}
	lk, _ := leader.Keys()
	dg, _ := lk.Seal(ecqv.NewID("gateway"), 1, []byte("post-eviction secret"))

	// The removed member's stale keys must not open new traffic.
	if _, _, err := oldKeys.Open(dg); !errors.Is(err, ErrGroupAuth) {
		t.Errorf("evicted member read new-epoch traffic: %v", err)
	}
	// Remaining members can.
	for id, m := range members {
		if id == removedID {
			continue
		}
		mk, _ := m.Keys()
		if _, _, err := mk.Open(dg); err != nil {
			t.Fatalf("remaining member %s cannot read: %v", id, err)
		}
	}
}

func TestNewMemberCannotReadOldTraffic(t *testing.T) {
	leader, members := buildGroup(t, 4, 1)
	lk, _ := leader.Keys()
	oldDg, _ := lk.Seal(ecqv.NewID("gateway"), 1, []byte("pre-join message"))

	// Admit a second member.
	net, _ := core.NewNetwork(ec.P256(), newDetRand(99))
	p, _ := net.Provision("late-joiner")
	// Note: different CA — must fail the pairwise handshake!
	if _, err := leader.Add(p); err == nil {
		t.Fatal("cross-CA member admitted")
	}

	// Same-CA late joiner.
	// (Re-provision from the leader's network by reusing buildGroup's
	// seed is awkward; instead, verify old-epoch lockout with the
	// existing member's NEW keys after a rekey.)
	var id ecqv.ID
	for i := range members {
		id = i
		break
	}
	distOnRemove, err := leader.Remove(id)
	if err != nil {
		t.Fatal(err)
	}
	_ = distOnRemove
	newKeys, _ := leader.Keys()
	if _, _, err := newKeys.Open(oldDg); !errors.Is(err, ErrGroupAuth) {
		t.Errorf("new-epoch keys opened old-epoch datagram: %v", err)
	}
}

func TestKeyMessageSecurity(t *testing.T) {
	leader, members := buildGroup(t, 5, 2)
	// Grab one member and build a tampered key message.
	var id ecqv.ID
	for i := range members {
		id = i
		break
	}
	net, _ := core.NewNetwork(ec.P256(), newDetRand(50))
	extra, _ := net.Provision("victim") // unused party, placeholder
	_ = extra

	// Force a rekey to get fresh messages.
	dist, err := leader.Remove(id)
	if err != nil {
		t.Fatal(err)
	}
	for mid, msg := range dist {
		m := members[mid]
		tampered := append([]byte(nil), msg...)
		tampered[len(tampered)-1] ^= 0x01
		if err := m.Install(tampered); err == nil {
			t.Fatal("tampered key message installed")
		}
		// Clean message still works after the failed attempt.
		if err := m.Install(msg); err != nil {
			t.Fatal(err)
		}
		// Replayed (stale-epoch) key message rejected.
		if err := m.Install(msg); err == nil {
			t.Fatal("replayed key message installed")
		}
	}
}

func TestLeaderValidation(t *testing.T) {
	if _, err := NewLeader(nil, core.OptNone); err == nil {
		t.Error("nil leader accepted")
	}
	net, _ := core.NewNetwork(ec.P256(), newDetRand(60))
	lp, _ := net.Provision("gw")
	leader, _ := NewLeader(lp, core.OptNone)
	if _, err := leader.Keys(); err == nil {
		t.Error("keys before any epoch")
	}
	if _, err := leader.Add(nil); err == nil {
		t.Error("nil member accepted")
	}
	if _, err := leader.Remove(ecqv.NewID("ghost")); err == nil {
		t.Error("ghost removal accepted")
	}
	mp, _ := net.Provision("m1")
	if _, err := leader.Add(mp); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Add(mp); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := leader.PairwiseKey(ecqv.NewID("ghost")); err == nil {
		t.Error("ghost pairwise key returned")
	}
	if _, err := Join(mp, lp.ID, []byte{1, 2}); err == nil {
		t.Error("short pairwise block accepted")
	}
}

func TestDatagramTampering(t *testing.T) {
	leader, _ := buildGroup(t, 7, 1)
	lk, _ := leader.Keys()
	dg, _ := lk.Seal(ecqv.NewID("gateway"), 3, []byte("payload"))
	for _, idx := range []int{0, 5, 21, groupHeader, len(dg) - 1} {
		mod := append([]byte(nil), dg...)
		mod[idx] ^= 0x01
		if _, _, err := lk.Open(mod); err == nil {
			t.Errorf("tampered datagram byte %d accepted", idx)
		}
	}
	if _, _, err := lk.Open(dg[:10]); err == nil {
		t.Error("truncated datagram accepted")
	}
}
