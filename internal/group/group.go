// Package group implements authenticated group keys for in-vehicle
// networks on top of the STS-ECQV pairwise substrate — the extension
// direction of Püllen et al. [8] that the paper's related work
// surveys.
//
// Model: a leader (the gateway ECU) establishes a pairwise dynamic
// session with every member via the STS engine, then distributes an
// epoch group key to each member sealed under the pairwise session
// keys. Every membership change bumps the epoch and redistributes a
// fresh key, so departed members cannot read later traffic and new
// members cannot read earlier traffic (group-level forward/backward
// secrecy, inherited from the pairwise DKD).
package group

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/aead"
	"repro/internal/core"
	"repro/internal/ecqv"
	"repro/internal/kdf"
)

// GroupKeySize is the distributed group secret size; encryption and
// MAC keys are derived from it per epoch.
const GroupKeySize = 32

// Keys is one epoch's group keying material.
type Keys struct {
	Epoch  uint32
	encKey []byte
	macKey []byte
}

// deriveKeys expands a group secret into the epoch keys.
func deriveKeys(secret []byte, epoch uint32) (*Keys, error) {
	var info [8]byte
	binary.BigEndian.PutUint32(info[:4], epoch)
	okm, err := kdf.HKDF(secret, info[:4], []byte("group-epoch-keys"), kdf.SessionKeySize+kdf.MACKeySize)
	if err != nil {
		return nil, err
	}
	return &Keys{
		Epoch:  epoch,
		encKey: okm[:kdf.SessionKeySize],
		macKey: okm[kdf.SessionKeySize:],
	}, nil
}

// memberState is the leader's view of one member.
type memberState struct {
	party    *core.Party
	pairwise []byte // STS session key block with this member
}

// Leader manages a keyed group.
type Leader struct {
	self    *core.Party
	opt     core.STSOptimization
	rand    io.Reader
	members map[ecqv.ID]*memberState
	epoch   uint32
	keys    *Keys
	scheme  aead.Scheme
}

// NewLeader creates a group with no members.
func NewLeader(self *core.Party, opt core.STSOptimization) (*Leader, error) {
	if self == nil || self.Cert == nil {
		return nil, errors.New("group: leader not provisioned")
	}
	rng := self.Rand
	if rng == nil {
		rng = rand.Reader
	}
	return &Leader{
		self: self, opt: opt, rand: rng,
		members: map[ecqv.ID]*memberState{},
		scheme:  aead.Default,
	}, nil
}

// Epoch returns the current key epoch (0 = no key yet).
func (l *Leader) Epoch() uint32 { return l.epoch }

// Keys returns the leader's current group keys.
func (l *Leader) Keys() (*Keys, error) {
	if l.keys == nil {
		return nil, errors.New("group: no epoch established")
	}
	return l.keys, nil
}

// Size returns the member count (leader excluded).
func (l *Leader) Size() int { return len(l.members) }

// Add runs a pairwise STS handshake with the member, bumps the epoch
// and returns the key-distribution messages for every member (the new
// one included). Each message is addressed and must be delivered to
// its member's Member.Install.
func (l *Leader) Add(member *core.Party) (map[ecqv.ID][]byte, error) {
	if member == nil || member.Cert == nil {
		return nil, errors.New("group: member not provisioned")
	}
	if _, dup := l.members[member.ID]; dup {
		return nil, fmt.Errorf("group: member %s already present", member.ID)
	}
	pairwise, err := pairwiseHandshake(l.self, member, l.opt)
	if err != nil {
		return nil, fmt.Errorf("group: pairwise handshake with %s: %w", member.ID, err)
	}
	l.members[member.ID] = &memberState{party: member, pairwise: pairwise}
	return l.rekey()
}

// Remove drops a member, bumps the epoch and returns distribution
// messages for the remaining members. The removed member never sees
// the new key.
func (l *Leader) Remove(id ecqv.ID) (map[ecqv.ID][]byte, error) {
	if _, ok := l.members[id]; !ok {
		return nil, fmt.Errorf("group: no member %s", id)
	}
	delete(l.members, id)
	return l.rekey()
}

// rekey draws a fresh group secret and seals it for every member.
func (l *Leader) rekey() (map[ecqv.ID][]byte, error) {
	secret := make([]byte, GroupKeySize)
	if _, err := io.ReadFull(l.rand, secret); err != nil {
		return nil, fmt.Errorf("group: secret: %w", err)
	}
	l.epoch++
	keys, err := deriveKeys(secret, l.epoch)
	if err != nil {
		return nil, err
	}
	l.keys = keys

	out := map[ecqv.ID][]byte{}
	for id, ms := range l.members {
		msg, err := l.sealKeyMessage(ms, secret)
		if err != nil {
			return nil, err
		}
		out[id] = msg
	}
	return out, nil
}

// sealKeyMessage builds epoch(4) ‖ sealed(pairwise, secret, aad=epoch‖ids).
func (l *Leader) sealKeyMessage(ms *memberState, secret []byte) ([]byte, error) {
	enc := ms.pairwise[:kdf.SessionKeySize]
	mac := ms.pairwise[kdf.SessionKeySize:]
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], l.epoch)
	aad := append(hdr[:], l.self.ID[:]...)
	aad = append(aad, ms.party.ID[:]...)
	sealed, err := l.scheme.Seal(enc, mac, secret, aad)
	if err != nil {
		return nil, err
	}
	return append(hdr[:], sealed...), nil
}

// Member is the non-leader side.
type Member struct {
	self     *core.Party
	leaderID ecqv.ID
	pairwise []byte
	keys     *Keys
	scheme   aead.Scheme
}

// Join runs the member side of admission: the pairwise handshake was
// already driven by Leader.Add (in-process engine pair), so Join
// captures the resulting key block. Deployments would drive the same
// engines over their link.
func Join(self *core.Party, leaderID ecqv.ID, pairwise []byte) (*Member, error) {
	if len(pairwise) != kdf.SessionKeySize+kdf.MACKeySize {
		return nil, errors.New("group: bad pairwise key block")
	}
	return &Member{
		self: self, leaderID: leaderID,
		pairwise: append([]byte(nil), pairwise...),
		scheme:   aead.Default,
	}, nil
}

// Install consumes a key-distribution message.
func (m *Member) Install(data []byte) error {
	if len(data) < 4 {
		return errors.New("group: short key message")
	}
	epoch := binary.BigEndian.Uint32(data[:4])
	enc := m.pairwise[:kdf.SessionKeySize]
	mac := m.pairwise[kdf.SessionKeySize:]
	aad := append(append([]byte(nil), data[:4]...), m.leaderID[:]...)
	aad = append(aad, m.self.ID[:]...)
	secret, err := m.scheme.Open(enc, mac, data[4:], aad)
	if err != nil {
		return fmt.Errorf("group: key message: %w", err)
	}
	if m.keys != nil && epoch <= m.keys.Epoch {
		return fmt.Errorf("group: stale epoch %d (have %d)", epoch, m.keys.Epoch)
	}
	keys, err := deriveKeys(secret, epoch)
	if err != nil {
		return err
	}
	m.keys = keys
	return nil
}

// Keys returns the member's current group keys.
func (m *Member) Keys() (*Keys, error) {
	if m.keys == nil {
		return nil, errors.New("group: no epoch installed")
	}
	return m.keys, nil
}

// Group datagram format: epoch(4) ‖ sender(16) ‖ seq(8) ‖ ct ‖ tag(16).

const groupHeader = 4 + ecqv.IDSize + 8

// Seal protects a group datagram under the epoch keys.
func (k *Keys) Seal(sender ecqv.ID, seq uint64, payload []byte) ([]byte, error) {
	hdr := make([]byte, groupHeader)
	binary.BigEndian.PutUint32(hdr[:4], k.Epoch)
	copy(hdr[4:20], sender[:])
	binary.BigEndian.PutUint64(hdr[20:], seq)

	// Per-datagram keystream from (epoch key, sender, seq).
	stream, err := datagramStream(k.encKey, hdr, len(payload))
	if err != nil {
		return nil, err
	}
	out := make([]byte, groupHeader+len(payload)+16)
	copy(out, hdr)
	for i, b := range payload {
		out[groupHeader+i] = b ^ stream[i]
	}
	tag := k.tag(out[:groupHeader+len(payload)])
	copy(out[groupHeader+len(payload):], tag)
	return out, nil
}

// ErrGroupAuth is returned for datagrams that fail authentication or
// target another epoch.
var ErrGroupAuth = errors.New("group: datagram rejected")

// Open verifies and decrypts a group datagram, returning the sender
// and payload.
func (k *Keys) Open(data []byte) (ecqv.ID, []byte, error) {
	if len(data) < groupHeader+16 {
		return ecqv.ID{}, nil, fmt.Errorf("%w: short", ErrGroupAuth)
	}
	epoch := binary.BigEndian.Uint32(data[:4])
	if epoch != k.Epoch {
		return ecqv.ID{}, nil, fmt.Errorf("%w: epoch %d, have %d", ErrGroupAuth, epoch, k.Epoch)
	}
	body := data[:len(data)-16]
	if !hmac.Equal(k.tag(body), data[len(data)-16:]) {
		return ecqv.ID{}, nil, ErrGroupAuth
	}
	var sender ecqv.ID
	copy(sender[:], data[4:20])
	ct := data[groupHeader : len(data)-16]
	stream, err := datagramStream(k.encKey, data[:groupHeader], len(ct))
	if err != nil {
		return ecqv.ID{}, nil, err
	}
	pt := make([]byte, len(ct))
	for i, b := range ct {
		pt[i] = b ^ stream[i]
	}
	return sender, pt, nil
}

// datagramStream derives the per-datagram keystream; empty payloads
// need none.
func datagramStream(encKey, hdr []byte, n int) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	return kdf.HKDF(encKey, hdr, []byte("group-datagram"), n)
}

func (k *Keys) tag(body []byte) []byte {
	m := hmac.New(sha256.New, k.macKey)
	m.Write([]byte("group-record"))
	m.Write(body)
	return m.Sum(nil)[:16]
}

// pairwiseHandshake drives the STS engine pair to completion.
func pairwiseHandshake(leader, member *core.Party, opt core.STSOptimization) ([]byte, error) {
	init, err := core.NewInitiator(leader, opt)
	if err != nil {
		return nil, err
	}
	resp, err := core.NewResponder(member, opt)
	if err != nil {
		return nil, err
	}
	msg, err := init.Start()
	if err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		reply, _, err := resp.Handle(msg)
		if err != nil {
			return nil, err
		}
		if reply == nil {
			break
		}
		next, done, err := init.Handle(reply)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		msg = next
	}
	return init.SessionKey()
}

// PairwiseKey exposes the leader's pairwise key block for a member so
// the in-process simulation can construct the matching Member (see
// Join). Deployments derive it on the member's own engine instead.
func (l *Leader) PairwiseKey(id ecqv.ID) ([]byte, error) {
	ms, ok := l.members[id]
	if !ok {
		return nil, fmt.Errorf("group: no member %s", id)
	}
	return append([]byte(nil), ms.pairwise...), nil
}
