package scenario

// The adversarial workload layer: pluggable attackers driven by the
// simulated clock, attached to a measurement point's private fabric
// through monitor taps (canbus.Bus.Tap) and gateway link control
// (canbus.Gateway.SetLinkUp). Every adversary is deterministic by
// construction — decisions are functions of observed frame content,
// the simulated clock and a per-adversary detrand stream, never of
// host scheduling — which is what keeps attack scenarios inside the
// serial==N-way byte-identical CI gate. The replay attacker
// additionally reuses internal/security's shared verdict helpers so
// the live end-to-end rejection evidence and the offline Table III
// analysis can never drift apart.

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/canbus"
	"repro/internal/cantp"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/fleet"
	"repro/internal/security"
	"repro/internal/transport"
)

// AdversaryKind names one concrete attacker.
type AdversaryKind string

const (
	// AdversaryReplay records handshake frames off a bus segment and
	// re-injects them verbatim against a fresh responder engine after
	// the workload, through the real transport/cantp stack. Every
	// replayed session must be rejected (accepted_replays is gated to
	// zero by ValidateJSON and the BENCH check).
	AdversaryReplay AdversaryKind = "replay"
	// AdversaryInject forges FlowControl (Wait/Overflow) and
	// out-of-sequence ConsecutiveFrame traffic mid-transfer, forcing
	// the ISO-TP recovery machinery to earn its keep.
	AdversaryInject AdversaryKind = "inject"
	// AdversaryBabble is the babbling-idiot node: it saturates one
	// segment at a configured frame rate so the fair-queuing gateway
	// must isolate the victim handshake flows.
	AdversaryBabble AdversaryKind = "babble"
	// AdversaryPartition severs one gateway link mid-workload and
	// heals it after a configured window, exercising fleet retry.
	AdversaryPartition AdversaryKind = "partition"
)

// AdversaryConfig declares one attacker inside a Scenario. The zero
// Intensity picks a kind-specific default; AxisAttack sweeps override
// Intensity for every configured adversary.
type AdversaryConfig struct {
	Kind AdversaryKind `json:"kind"`

	// Segment is the bus index the adversary operates on; negative
	// selects the kind's natural default (the last segment, except
	// babble which defaults to segment 0 so its frames must cross the
	// rate-limited gateways toward the victims). For partition it
	// selects the segment whose upstream gateway link is severed and
	// must be ≥ 1 (segment 0 has no upstream link).
	Segment int `json:"segment"`

	// Intensity is kind-specific: babble = frames per simulated
	// second; inject = forge probability per observed FirstFrame in
	// [0,1]; partition = heal window in simulated seconds; replay =
	// session cap (0 replays every recorded conversation).
	Intensity float64 `json:"intensity"`

	// Start delays the attack's onset past the workload start
	// (partition: sever delay, default 200µs; babble: first-emission
	// delay). Simulated time.
	Start time.Duration `json:"start_ns,omitempty"`
}

// AttackAccount is one adversary's accounting in a measurement point
// (schema v4). AcceptedReplays is serialized unconditionally: a zero
// there is the point's security verdict, not an absence of data.
type AttackAccount struct {
	Kind      AdversaryKind `json:"kind"`
	Segment   int           `json:"segment"`
	Intensity float64       `json:"intensity"`

	// InjectedFrames counts every frame the adversary put on a bus.
	InjectedFrames int `json:"injected_frames"`

	// Inject accounting.
	ForgedFlowControls int `json:"forged_flow_controls,omitempty"`
	ForgedConsecutives int `json:"forged_consecutives,omitempty"`

	// Replay accounting. Rejected sessions are split by layer:
	// rejected_auth is the cryptographic freshness verdict the paper
	// claims, rejected_protocol is the stack dying before a
	// cryptographic check (still rejected, weaker evidence).
	RecordedSessions int `json:"recorded_sessions,omitempty"`
	ReplayedSessions int `json:"replayed_sessions,omitempty"`
	RejectedAuth     int `json:"rejected_auth,omitempty"`
	RejectedProtocol int `json:"rejected_protocol,omitempty"`
	AcceptedReplays  int `json:"accepted_replays"`

	// Partition accounting.
	Partitions     int `json:"partitions,omitempty"`
	Heals          int `json:"heals,omitempty"`
	PartitionDrops int `json:"partition_drops,omitempty"`
}

// Surface is the slice of a measurement point's private fabric an
// adversary may touch: the world pump and clock, the segment buses
// (for taps and injection), the chain gateways (for link severing)
// and the victim parties/endpoints (the replay attacker drives a
// fresh responder engine through the real victim endpoint). Every
// field belongs to one point's isolated fabric, so adversaries on
// different sweep points never share state.
type Surface struct {
	World    *transport.World
	Clock    *canbus.Clock
	Buses    []*canbus.Bus
	Gateways []*canbus.Gateway
	Peers    []*core.Party
	Remotes  []*transport.Endpoint
	Seed     uint64
}

// Adversary is one live attacker on a point's fabric. Lifecycle:
// Attach wires taps and resolves targets, Arm starts the attack at a
// simulated instant, the world pumps it like any other agent
// (transport.Agent: Pump between gateways and endpoints, NextDeadline
// feeding the step scheduler), Disarm stops it at workload end, and
// Account reports its totals. Implementations must be deterministic:
// same fabric, same seed, same byte-identical account — that is the
// contract the adversarial CI gate enforces.
type Adversary interface {
	transport.Agent
	Kind() AdversaryKind
	Attach(sur *Surface) error
	Arm(now time.Duration)
	Disarm()
	Account() AttackAccount
}

// executor is the optional post-workload phase: the replay attacker
// re-injects its recordings only after the benign workload finished,
// so recording and attacking never interleave.
type executor interface {
	Execute(tr *tracer) error
}

// newAdversary builds one configured attacker. idx salts the
// adversary's private detrand stream so two attackers of the same
// kind never share randomness.
func newAdversary(cfg AdversaryConfig, seed uint64, idx int) (Adversary, error) {
	aseed := detrand.DeriveSeed(seed, []byte("adversary"), uint64(idx))
	switch cfg.Kind {
	case AdversaryReplay:
		return &replayAdversary{cfg: cfg}, nil
	case AdversaryInject:
		return &injectAdversary{cfg: cfg, seed: aseed}, nil
	case AdversaryBabble:
		return &babbleAdversary{cfg: cfg, seed: aseed}, nil
	case AdversaryPartition:
		return &partitionAdversary{cfg: cfg}, nil
	}
	return nil, fmt.Errorf("scenario: unknown adversary kind %q", cfg.Kind)
}

// resolveSegment maps a config's Segment to a concrete bus index.
func resolveSegment(cfg AdversaryConfig, segments int) int {
	if cfg.Segment >= 0 {
		return cfg.Segment
	}
	if cfg.Kind == AdversaryBabble {
		return 0
	}
	return segments - 1
}

// babbleID is the CAN identifier of babbling-idiot traffic: the top
// of the initiator forwarding block, which no conversation can use
// (Peers ≤ 0xFF keeps conversation IDs below it) but every chain
// gateway forwards toward the victim segment — so the babble loads
// exactly the rate-limited egress ports the victims depend on.
const babbleID = initiatorIDBase + 0xFF

// maxReplayHops bounds the replayed-session message loop, mirroring
// fleet's handshake hop bound.
const maxReplayHops = 8

// ---------------------------------------------------------------- replay

type replayAdversary struct {
	cfg AdversaryConfig
	acc AttackAccount
	sur *Surface
	tap *canbus.Node

	armed      bool
	recordings [][]canbus.Frame
}

func (a *replayAdversary) Kind() AdversaryKind { return AdversaryReplay }

func (a *replayAdversary) Attach(sur *Surface) error {
	seg := resolveSegment(a.cfg, len(sur.Buses))
	a.sur = sur
	a.tap = sur.Buses[seg].Tap("replay-adversary")
	a.recordings = make([][]canbus.Frame, len(sur.Peers))
	a.acc = AttackAccount{Kind: a.cfg.Kind, Segment: seg, Intensity: a.cfg.Intensity}
	return nil
}

func (a *replayAdversary) Arm(now time.Duration) { a.armed = true }
func (a *replayAdversary) Disarm()               { a.drain(); a.armed = false }

// Pump drains the tap, filing initiator-block frames per
// conversation. Recording is observation, not progress, so it always
// reports zero work.
func (a *replayAdversary) Pump() int { a.drain(); return 0 }

func (a *replayAdversary) NextDeadline() time.Duration { return 0 }

func (a *replayAdversary) drain() {
	for {
		f, ok := a.tap.Receive()
		if !ok {
			return
		}
		if !a.armed {
			continue
		}
		conv := int(f.ID) - initiatorIDBase
		if conv < 0 || conv >= len(a.recordings) {
			continue
		}
		a.recordings[conv] = append(a.recordings[conv], f)
	}
}

func (a *replayAdversary) Account() AttackAccount { return a.acc }

// Execute replays each recorded conversation verbatim against a
// fresh responder engine, through the real stack: the recorded frames
// are injected on the tap's segment, cross any gateways, reassemble
// in the victim's real endpoint, and the fresh responder's replies
// travel back the same way. Outcomes are classified with the shared
// security helpers; an accepted replay is a security failure the
// schema gate refuses to publish.
func (a *replayAdversary) Execute(tr *tracer) error {
	a.sur.World.Run()
	a.drain()
	limit := len(a.recordings)
	if cap := int(a.cfg.Intensity); cap > 0 && cap < limit {
		limit = cap
	}
	replayed := 0
	for conv, frames := range a.recordings {
		if len(frames) == 0 {
			continue
		}
		a.acc.RecordedSessions++
		if replayed >= limit {
			continue
		}
		replayed++
		a.acc.ReplayedSessions++
		outcome := a.replayOne(conv, frames)
		switch outcome {
		case security.ReplayAccepted:
			a.acc.AcceptedReplays++
		case security.ReplayRejectedAuth:
			a.acc.RejectedAuth++
		default:
			a.acc.RejectedProtocol++
		}
		tr.printf("replay conv=%d frames=%d outcome=%s\n", conv, len(frames), outcome)
	}
	return nil
}

// replayOne injects one conversation's recording and drives a fresh
// responder over the victim endpoint until the replay is accepted,
// rejected, or starves.
func (a *replayAdversary) replayOne(conv int, frames []canbus.Frame) security.ReplayOutcome {
	victim := a.sur.Remotes[conv]
	a.sur.World.Run()
	victim.Flush()
	resp, err := core.NewResponder(a.sur.Peers[conv], core.OptNone)
	if err != nil {
		return security.ClassifyReplay(false, err)
	}
	for _, f := range frames {
		if _, err := a.tap.Send(canbus.Frame{
			ID:       f.ID,
			Extended: f.Extended,
			BRS:      f.BRS,
			Data:     append([]byte(nil), f.Data...),
		}); err != nil {
			return security.ClassifyReplay(false, err)
		}
		a.acc.InjectedFrames++
	}
	a.sur.World.Run()

	completed := false
	var lastErr error
	for hop := 0; hop < maxReplayHops; hop++ {
		msg, ok := victim.TryPoll()
		if !ok {
			break
		}
		reply, done, err := resp.Handle(msg.Payload)
		if err != nil {
			lastErr = err
			break
		}
		if done {
			completed = true
			break
		}
		if reply == nil {
			break
		}
		m := transport.Message{
			CommCode:  fleet.HandshakeCommCode,
			SessionID: uint16(conv + 1),
			OpCode:    reply[0],
			Payload:   reply,
		}
		if _, err := victim.Send(m); err != nil {
			lastErr = err
			break
		}
		a.sur.World.Run()
	}
	return security.ClassifyReplay(completed, lastErr)
}

// ---------------------------------------------------------------- inject

type injectAdversary struct {
	cfg  AdversaryConfig
	acc  AttackAccount
	sur  *Surface
	tap  *canbus.Node
	seed uint64

	armed  bool
	draws  uint64
	forges uint64
}

func (a *injectAdversary) Kind() AdversaryKind { return AdversaryInject }

func (a *injectAdversary) Attach(sur *Surface) error {
	seg := resolveSegment(a.cfg, len(sur.Buses))
	a.sur = sur
	a.tap = sur.Buses[seg].Tap("inject-adversary")
	a.acc = AttackAccount{Kind: a.cfg.Kind, Segment: seg, Intensity: a.cfg.Intensity}
	return nil
}

func (a *injectAdversary) Arm(now time.Duration) { a.armed = true }
func (a *injectAdversary) Disarm()               { a.armed = false }

func (a *injectAdversary) NextDeadline() time.Duration { return 0 }

// Pump watches for FirstFrames of initiator-block transfers; each is
// a forge opportunity taken with probability Intensity, decided by a
// counted draw from the adversary's private detrand stream (same
// fabric, same seed, same forgery sequence). Forgeries rotate through
// the three ISO-TP lies: a FlowControl Wait (stalls the sender's wait
// budget), an out-of-sequence ConsecutiveFrame (poisons the victim's
// reassembly), and a FlowControl Overflow (aborts the transfer
// outright, forcing a fleet-level retry).
func (a *injectAdversary) Pump() int {
	injected := 0
	for {
		f, ok := a.tap.Receive()
		if !ok {
			return injected
		}
		if !a.armed || len(f.Data) == 0 || f.Data[0]>>4 != 0x1 {
			continue
		}
		conv := int(f.ID) - initiatorIDBase
		if conv < 0 || conv >= len(a.sur.Peers) {
			continue
		}
		if a.roll() >= a.cfg.Intensity {
			continue
		}
		injected += a.forge(conv)
	}
}

// roll returns the next uniform draw in [0,1).
func (a *injectAdversary) roll() float64 {
	a.draws++
	v := detrand.Mix64(a.seed ^ a.draws)
	return float64(v>>11) / (1 << 53)
}

func (a *injectAdversary) forge(conv int) int {
	kind := a.forges % 3
	a.forges++
	var frame canbus.Frame
	switch kind {
	case 0:
		// Forged Wait toward the initiator: it is honoured (up to the
		// sender's wait budget) because a FlowControl carries no
		// authentication — exactly the gap the attack documents.
		frame = canbus.Frame{
			ID:   uint32(responderIDBase + conv),
			Data: cantp.FlowControlFrame(cantp.FlowWait, 0, 0),
		}
		a.acc.ForgedFlowControls++
	case 1:
		// Out-of-sequence ConsecutiveFrame toward the responder: SN 15
		// can never be the expected next frame this early, so the
		// victim's reassembly aborts and the whole message must be
		// resent.
		frame = canbus.Frame{
			ID:   uint32(initiatorIDBase + conv),
			Data: []byte{0x2F, 0xDE, 0xAD, 0xBE, 0xEF},
		}
		a.acc.ForgedConsecutives++
	default:
		frame = canbus.Frame{
			ID:   uint32(responderIDBase + conv),
			Data: cantp.FlowControlFrame(cantp.FlowOverflow, 0, 0),
		}
		a.acc.ForgedFlowControls++
	}
	if _, err := a.tap.Send(frame); err != nil {
		return 0
	}
	a.acc.InjectedFrames++
	return 1
}

func (a *injectAdversary) Account() AttackAccount { return a.acc }

// ---------------------------------------------------------------- babble

type babbleAdversary struct {
	cfg  AdversaryConfig
	acc  AttackAccount
	sur  *Surface
	tap  *canbus.Node
	seed uint64

	armed    bool
	gap      time.Duration
	nextEmit time.Duration
	payload  []byte
}

func (a *babbleAdversary) Kind() AdversaryKind { return AdversaryBabble }

func (a *babbleAdversary) Attach(sur *Surface) error {
	seg := resolveSegment(a.cfg, len(sur.Buses))
	a.sur = sur
	a.tap = sur.Buses[seg].Tap("babble-adversary")
	a.acc = AttackAccount{Kind: a.cfg.Kind, Segment: seg, Intensity: a.cfg.Intensity}
	if a.cfg.Intensity > 0 {
		a.gap = time.Duration(float64(time.Second) / a.cfg.Intensity)
		if a.gap <= 0 {
			a.gap = time.Nanosecond
		}
	}
	a.payload = make([]byte, 8)
	binary.BigEndian.PutUint64(a.payload, detrand.Mix64(a.seed))
	return nil
}

func (a *babbleAdversary) Arm(now time.Duration) {
	a.armed = true
	a.nextEmit = now + a.cfg.Start + a.gap
}

func (a *babbleAdversary) Disarm() { a.armed = false }

// Pump emits at most one babble frame per call, self-clocked: the
// next emission is scheduled one gap after the frame actually left,
// so a super-saturating rate degrades to back-to-back frames at wire
// speed (a real babbling node cannot exceed the bus either) instead
// of diverging the pump loop. The tap's receive side is drained and
// discarded — a babbler does not listen.
func (a *babbleAdversary) Pump() int {
	for {
		if _, ok := a.tap.Receive(); !ok {
			break
		}
	}
	if !a.armed || a.gap == 0 || a.sur.Clock.Now() < a.nextEmit {
		return 0
	}
	if _, err := a.tap.Send(canbus.Frame{ID: babbleID, Data: a.payload}); err != nil {
		return 0
	}
	a.acc.InjectedFrames++
	a.nextEmit = a.sur.Clock.Now() + a.gap
	return 1
}

func (a *babbleAdversary) NextDeadline() time.Duration {
	if !a.armed || a.gap == 0 {
		return 0
	}
	return a.nextEmit
}

func (a *babbleAdversary) Account() AttackAccount { return a.acc }

// ------------------------------------------------------------- partition

const (
	defaultPartitionStart  = 200 * time.Microsecond
	defaultPartitionWindow = 500 * time.Microsecond
)

type partitionAdversary struct {
	cfg AdversaryConfig
	acc AttackAccount
	sur *Surface
	gw  *canbus.Gateway
	bus *canbus.Bus

	state            int // 0 idle, 1 armed, 2 severed, 3 healed
	severAt, healAt  time.Duration
	dropsBefore      int
	accountedSevered bool
}

func (a *partitionAdversary) Kind() AdversaryKind { return AdversaryPartition }

func (a *partitionAdversary) Attach(sur *Surface) error {
	seg := resolveSegment(a.cfg, len(sur.Buses))
	if seg < 1 || seg >= len(sur.Buses) {
		return fmt.Errorf("scenario: partition segment %d has no upstream gateway link", seg)
	}
	a.sur = sur
	a.gw = sur.Gateways[seg-1]
	a.bus = sur.Buses[seg]
	a.dropsBefore = a.gw.Stats().PartitionDrop
	a.acc = AttackAccount{Kind: a.cfg.Kind, Segment: seg, Intensity: a.cfg.Intensity}
	return nil
}

func (a *partitionAdversary) Arm(now time.Duration) {
	start := a.cfg.Start
	if start <= 0 {
		start = defaultPartitionStart
	}
	window := time.Duration(a.cfg.Intensity * float64(time.Second))
	if window <= 0 {
		window = defaultPartitionWindow
	}
	a.severAt = now + start
	a.healAt = a.severAt + window
	a.state = 1
}

func (a *partitionAdversary) Disarm() {
	if a.state == 2 {
		a.heal()
	}
	a.state = 0
}

func (a *partitionAdversary) Pump() int {
	now := a.sur.Clock.Now()
	switch a.state {
	case 1:
		if now < a.severAt {
			return 0
		}
		if err := a.gw.SetLinkUp(a.bus, false); err != nil {
			a.state = 3
			return 0
		}
		a.acc.Partitions++
		a.state = 2
		return 1
	case 2:
		if now < a.healAt {
			return 0
		}
		a.heal()
		return 1
	}
	return 0
}

func (a *partitionAdversary) heal() {
	if err := a.gw.SetLinkUp(a.bus, true); err == nil {
		a.acc.Heals++
	}
	a.state = 3
}

func (a *partitionAdversary) NextDeadline() time.Duration {
	switch a.state {
	case 1:
		return a.severAt
	case 2:
		return a.healAt
	}
	return 0
}

func (a *partitionAdversary) Account() AttackAccount {
	a.acc.PartitionDrops = a.gw.Stats().PartitionDrop - a.dropsBefore
	return a.acc
}
