package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/canbus"
)

// compareGolden diffs got against the committed golden file,
// regenerating it under -update.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the golden file.\n"+
			"An intentional change to impairment keying, fabric construction or trace format\n"+
			"must regenerate it: go test ./internal/scenario -run %s -update\n"+
			"got %d bytes, want %d bytes; first divergence at byte %d",
			path, t.Name(), len(got), len(want), firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// goldenScenario is the canonical 3-segment degraded-bus scenario
// whose complete fault/recovery trace is committed as testdata. Any
// change to the content-keyed impairment hash, the occurrence
// counters, the fabric wiring, the ISO-TP recovery machinery or the
// trace format shows up as a byte diff here — loudly, with the
// -update escape hatch for intentional changes.
func goldenScenario() Scenario {
	return Scenario{
		Name:           "golden-3seg",
		Seed:           42,
		Peers:          4,
		Segments:       3,
		GatewayLatency: 50 * time.Microsecond,
		// 800 frames/s ⇒ a 1.25 ms release gap, above a frame's wire
		// time, so the egress gate genuinely engages in the trace.
		Egress:   canbus.EgressPolicy{Rate: 800},
		Profile:  Profile{Drop: 0.05, Corrupt: 0.01},
		Workload: WorkloadLatency,
		Attempts: 10,
	}
}

func TestGoldenTrace(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunTraced(goldenScenario(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Errors != 0 {
		t.Fatalf("golden scenario failed handshakes: %+v", pt)
	}
	if pt.BusDropped == 0 || pt.BusCorrupted == 0 || pt.Retransmits+pt.MessageResends+pt.Retries == 0 {
		t.Fatalf("golden scenario exercised no fault recovery: %+v", pt)
	}
	compareGolden(t, "testdata/golden_trace.txt", buf.Bytes())
}
