package scenario

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conc"
)

// ReorderSlack is the extra reorder-window headroom past the worker
// count: a worker that finishes point i may start point i+window-ish
// while an earlier point is still simulating, so a little slack keeps
// fast workers busy without letting completed points pile up. Peak
// residency of a streaming run is bounded by workers + ReorderSlack
// points (plus their trace buffers), independent of sweep length —
// that bound is asserted after every run and recorded in
// Timing.MaxReorderDepth.
const ReorderSlack = 8

// heapSampleEvery is how many flushed points pass between heap
// high-water samples (plus one final sample at the end of the run).
const heapSampleEvery = 32

// RunStreamWith executes the scenario with points fanned out across
// o.Workers isolated fabrics, streaming each completed point to every
// sink in index order as soon as its contiguous prefix is done, then
// releasing it — peak memory is O(workers + ReorderSlack), not
// O(points), which is what makes 10k-point sweeps practical. Sink
// calls are serialized and in order, and the emitted bytes are
// byte-identical to materializing the Result first (the sinks share
// the writers' code), at any worker count.
//
// Admission is gated on the reorder window: a worker may not start
// point i until point i-(workers+ReorderSlack) has been flushed, which
// bounds how far completed points can run ahead of a slow early point.
// No deadlock is possible: internal/conc dispatches indices in order,
// so the worker holding the next unflushed index is never gated.
//
// Trace generation is skipped entirely unless some sink implements
// TraceConsumer and wants it (a TraceSink). Any sink or trace-write
// error aborts the run. On success every sink has seen Begin, every
// Point, and End.
func RunStreamWith(s Scenario, sinks []PointSink, o Options) (*Timing, error) {
	if len(sinks) == 0 {
		return nil, fmt.Errorf("scenario: RunStreamWith needs at least one sink")
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	axis := s.SweepAxis
	if axis == "" {
		axis = AxisDrop
	}
	values := s.points()
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(values) {
		workers = len(values)
	}
	timing := &Timing{Workers: workers, Points: make([]time.Duration, len(values))}

	h := Header{
		SchemaVersion: SchemaVersion,
		Name:          s.Name,
		Workload:      s.Workload,
		Seed:          s.Seed,
		Peers:         s.Peers,
		Segments:      s.Segments,
		Axis:          axis,
		NumPoints:     len(values),
	}
	for _, sink := range sinks {
		if err := sink.Begin(h); err != nil {
			return nil, err
		}
	}

	trace := wantsTrace(sinks)
	window := workers + ReorderSlack
	em := newEmitter(sinks, window)

	var inFlight, maxInFlight int64
	start := time.Now() //detlint:allow wallclock out-of-band host timing; Timing never reaches Result bytes
	conc.ForEach(len(values), workers, func(i int) {
		if !em.admit(i) {
			return // the run already failed; drain without simulating
		}
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			m := atomic.LoadInt64(&maxInFlight)
			if cur <= m || atomic.CompareAndSwapInt64(&maxInFlight, m, cur) {
				break
			}
		}
		defer atomic.AddInt64(&inFlight, -1)

		// The trace buffer is private to this point and released as
		// soon as the emitter flushes it — unlike the old materialized
		// path, which held every point's buffer until the sweep ended.
		var tr *tracer
		var buf *bytes.Buffer
		if trace {
			buf = new(bytes.Buffer)
			tr = &tracer{w: buf}
		}
		t0 := time.Now() //detlint:allow wallclock out-of-band host timing; Timing never reaches Result bytes
		pt, err := runPointFn(s, values[i], axis, tr)
		timing.Points[i] = time.Since(t0) //detlint:allow wallclock out-of-band host timing; Timing never reaches Result bytes
		if err != nil {
			// A pathological point must not abort the sweep: record
			// the failure in place, keep the index alignment, and let
			// the remaining points measure.
			pt = Point{Axis: axis, Value: values[i], Error: err.Error()}
			tr.printf("point-error %s=%.4f: %v\n", axis, values[i], err)
		}
		var tb []byte
		var terr error
		if tr != nil {
			tb, terr = buf.Bytes(), tr.err
		}
		em.deliver(i, pt, tb, terr)
	})
	timing.WallClock = time.Since(start) //detlint:allow wallclock out-of-band host timing; Timing never reaches Result bytes
	timing.MaxInFlight = int(maxInFlight)
	timing.MaxReorderDepth = em.maxDepth
	timing.HeapHighWater = em.finalHeapSample()

	if em.err != nil {
		return nil, em.err
	}
	if em.maxDepth > window {
		// By construction this cannot happen (admission is gated on the
		// window); if it ever does, the memory-bound contract is broken
		// and the run must fail loudly rather than report a bogus bound.
		return nil, fmt.Errorf("scenario: reorder window exceeded its bound: depth %d > %d (workers %d + slack %d)",
			em.maxDepth, window, workers, ReorderSlack)
	}
	sum := Summary{Points: len(values), Failed: em.failed, MaxReorderDepth: em.maxDepth}
	for _, sink := range sinks {
		if err := sink.End(sum); err != nil {
			return nil, err
		}
	}
	return timing, nil
}

// pointRec is one completed point waiting in the reorder window.
type pointRec struct {
	pt    Point
	trace []byte
}

// emitter is the ordered flush stage of a streaming run: workers
// deliver completed points in whatever order they finish, the emitter
// holds them in a window keyed by index and flushes the longest
// contiguous prefix to the sinks, releasing the memory. Admission
// gating (admit) keeps the window bounded; a sink or tracer error
// aborts the run and unblocks every gated worker.
type emitter struct {
	mu   sync.Mutex
	cond *sync.Cond

	sinks  []PointSink
	window int

	next     int              // lowest index not yet flushed
	pending  map[int]pointRec // completed, waiting for the prefix
	maxDepth int              // peak len(pending): the memory evidence
	failed   int              // points flushed with a recorded Error
	flushes  int
	heapHigh uint64

	err     error
	aborted bool
}

func newEmitter(sinks []PointSink, window int) *emitter {
	em := &emitter{sinks: sinks, window: window, pending: make(map[int]pointRec, window)}
	em.cond = sync.NewCond(&em.mu)
	return em
}

// admit blocks until point i fits in the reorder window (i.e. point
// i-window has been flushed), returning false if the run has already
// failed. conc.ForEach hands out indices in order, so the worker
// holding index em.next is never blocked here — that is the
// no-deadlock invariant.
func (em *emitter) admit(i int) bool {
	em.mu.Lock()
	defer em.mu.Unlock()
	for !em.aborted && i >= em.next+em.window {
		em.cond.Wait()
	}
	return !em.aborted
}

// deliver hands a completed point (and its trace bytes) to the
// emitter. trErr is the point's tracer error, if any — a trace that
// failed to record disqualifies the whole stream, exactly like a sink
// write failure.
func (em *emitter) deliver(i int, pt Point, trace []byte, trErr error) {
	em.mu.Lock()
	defer em.mu.Unlock()
	if em.aborted {
		return
	}
	if trErr != nil {
		em.failLocked(fmt.Errorf("scenario: point %d trace: %w", i, trErr))
		return
	}
	em.pending[i] = pointRec{pt: pt, trace: trace}
	if d := len(em.pending); d > em.maxDepth {
		em.maxDepth = d
	}
	for {
		rec, ok := em.pending[em.next]
		if !ok {
			break
		}
		for _, sink := range em.sinks {
			var tb []byte
			if tc, isTC := sink.(TraceConsumer); isTC && tc.WantsTrace() {
				tb = rec.trace
			}
			if err := sink.Point(em.next, rec.pt, tb); err != nil {
				em.failLocked(err)
				return
			}
		}
		if rec.pt.Error != "" {
			em.failed++
		}
		delete(em.pending, em.next)
		em.next++
		em.flushes++
		if em.flushes%heapSampleEvery == 0 {
			em.sampleHeapLocked()
		}
	}
	em.cond.Broadcast()
}

// failLocked records the first error, marks the run aborted and wakes
// every gated worker so the pool drains. Callers hold em.mu.
func (em *emitter) failLocked(err error) {
	if em.err == nil {
		em.err = err
	}
	em.aborted = true
	em.cond.Broadcast()
}

// sampleHeapLocked updates the heap high-water mark. Callers hold
// em.mu; ReadMemStats is a stop-the-world pause, which is why samples
// are spaced heapSampleEvery flushes apart rather than per point.
func (em *emitter) sampleHeapLocked() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > em.heapHigh {
		em.heapHigh = ms.HeapAlloc
	}
}

// finalHeapSample takes one last sample after the pool has drained and
// returns the high-water mark.
func (em *emitter) finalHeapSample() uint64 {
	em.mu.Lock()
	defer em.mu.Unlock()
	em.sampleHeapLocked()
	return em.heapHigh
}
