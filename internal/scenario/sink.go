package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Header is the scenario-level preamble a streaming run hands to every
// sink before the first point: exactly Result minus its points, with
// matching JSON tags so an incremental JSON sink can splice its bytes
// into the same document WriteJSON would produce.
type Header struct {
	SchemaVersion int      `json:"schema_version"`
	Name          string   `json:"name"`
	Workload      Workload `json:"workload"`
	Seed          uint64   `json:"seed"`
	Peers         int      `json:"peers"`
	Segments      int      `json:"segments"`
	Axis          Axis     `json:"axis"`

	// NumPoints is how many points the sweep will emit — capacity
	// advice for collecting sinks, not part of the document.
	NumPoints int `json:"-"`
}

// Summary closes a streaming run: the totals a sink may want for a
// footer or a sanity check once the last point has been flushed.
type Summary struct {
	// Points is the number of points emitted (always Header.NumPoints
	// on a successful run).
	Points int
	// Failed is how many of them recorded a point-level Error.
	Failed int
	// MaxReorderDepth is the peak number of completed points the
	// ordered emitter held while waiting for an earlier point — the
	// run's peak memory residency in points, bounded by
	// workers + ReorderSlack.
	MaxReorderDepth int
}

// PointSink consumes a streaming run's results incrementally: Begin
// once, then Point for every sweep point in index order (i strictly
// increasing, no gaps), then End once — End is only called when every
// point was delivered without a sink error. Calls are serialized by
// the emitter, so implementations need no locking. Any returned error
// aborts the whole run.
//
// trace carries the point's private trace bytes when the run is
// tracing and the sink asked for them via TraceConsumer; otherwise it
// is nil.
type PointSink interface {
	Begin(h Header) error
	Point(i int, pt Point, trace []byte) error
	End(sum Summary) error
}

// TraceConsumer marks a PointSink that wants per-point trace bytes.
// Sinks that do not implement it (or return false) receive nil traces,
// and a streaming run with no trace-consuming sink skips trace
// generation entirely — the buffers are the expensive part.
type TraceConsumer interface {
	WantsTrace() bool
}

// JSONSink streams a Result as indented JSON, byte-identical to
// WriteJSON over the materialized Result, while holding only the
// current point in memory.
type JSONSink struct {
	w     io.Writer
	wrote int
}

// NewJSONSink returns a sink that writes the result document to w.
func NewJSONSink(w io.Writer) *JSONSink { return &JSONSink{w: w} }

// Begin writes the document preamble: every scenario-level field, then
// an open points array.
func (s *JSONSink) Begin(h Header) error {
	head, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	// MarshalIndent ends the object with "\n}"; reopen it and splice in
	// the points array exactly where WriteJSON's encoder puts it.
	head = head[:len(head)-len("\n}")]
	head = append(head, `,
  "points": [`...)
	_, err = s.w.Write(head)
	return err
}

// Point appends one point to the open array.
func (s *JSONSink) Point(i int, pt Point, _ []byte) error {
	sep := ",\n    "
	if s.wrote == 0 {
		sep = "\n    "
	}
	body, err := json.MarshalIndent(pt, "    ", "  ")
	if err != nil {
		return err
	}
	s.wrote++
	if _, err := io.WriteString(s.w, sep); err != nil {
		return err
	}
	_, err = s.w.Write(body)
	return err
}

// End closes the points array and the document. The trailing newline
// matches json.Encoder's.
func (s *JSONSink) End(Summary) error {
	closing := "\n  ]\n}\n"
	if s.wrote == 0 {
		closing = "]\n}\n"
	}
	_, err := io.WriteString(s.w, closing)
	return err
}

// CSVSink streams the flattened curve, byte-identical to WriteCSV over
// the materialized Result, flushing after every point so a consumer
// tailing the file sees each row as it lands.
type CSVSink struct {
	cw       *csv.Writer
	name     string
	workload Workload
}

// NewCSVSink returns a sink that writes the curve CSV to w.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{cw: csv.NewWriter(w)} }

// Begin writes the header row.
func (s *CSVSink) Begin(h Header) error {
	s.name, s.workload = h.Name, h.Workload
	if err := s.cw.Write(csvHeader); err != nil {
		return err
	}
	s.cw.Flush()
	return s.cw.Error()
}

// Point writes one curve row.
func (s *CSVSink) Point(i int, pt Point, _ []byte) error {
	if err := s.cw.Write(csvRow(s.name, s.workload, pt)); err != nil {
		return err
	}
	s.cw.Flush()
	return s.cw.Error()
}

// End flushes any buffered output.
func (s *CSVSink) End(Summary) error {
	s.cw.Flush()
	return s.cw.Error()
}

// TraceSink streams the fault/recovery trace, byte-identical to
// RunTracedWith's output: the scenario header line at Begin, then each
// point's privately buffered trace in point order.
type TraceSink struct {
	w io.Writer
}

// NewTraceSink returns a sink that writes the trace to w.
func NewTraceSink(w io.Writer) *TraceSink { return &TraceSink{w: w} }

// WantsTrace marks this sink as a trace consumer, which is what makes
// the streaming run generate traces at all.
func (s *TraceSink) WantsTrace() bool { return true }

// Begin writes the trace header line.
func (s *TraceSink) Begin(h Header) error {
	_, err := fmt.Fprintf(s.w, "# scenario %s workload=%s seed=%d peers=%d segments=%d axis=%s\n",
		h.Name, h.Workload, h.Seed, h.Peers, h.Segments, h.Axis)
	return err
}

// Point writes the point's trace bytes.
func (s *TraceSink) Point(i int, pt Point, trace []byte) error {
	_, err := s.w.Write(trace)
	return err
}

// End is a no-op; the trace has no footer.
func (s *TraceSink) End(Summary) error { return nil }

// collectSink materializes the streamed points back into a Result —
// how Run/RunWith are built on the streaming engine.
type collectSink struct {
	res *Result
}

func (s *collectSink) Begin(h Header) error {
	s.res = &Result{
		SchemaVersion: h.SchemaVersion,
		Name:          h.Name,
		Workload:      h.Workload,
		Seed:          h.Seed,
		Peers:         h.Peers,
		Segments:      h.Segments,
		Axis:          h.Axis,
		Points:        make([]Point, 0, h.NumPoints),
	}
	return nil
}

func (s *collectSink) Point(i int, pt Point, _ []byte) error {
	s.res.Points = append(s.res.Points, pt)
	return nil
}

func (s *collectSink) End(Summary) error { return nil }

// wantsTrace reports whether any sink consumes traces.
func wantsTrace(sinks []PointSink) bool {
	for _, s := range sinks {
		if tc, ok := s.(TraceConsumer); ok && tc.WantsTrace() {
			return true
		}
	}
	return false
}

// compile-time interface checks for the shipped sinks.
var (
	_ PointSink     = (*JSONSink)(nil)
	_ PointSink     = (*CSVSink)(nil)
	_ PointSink     = (*TraceSink)(nil)
	_ TraceConsumer = (*TraceSink)(nil)
	_ PointSink     = (*collectSink)(nil)
)
