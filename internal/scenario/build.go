package scenario

import (
	"fmt"
	"time"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/ecqv"
	"repro/internal/fleet"
	"repro/internal/transport"
)

// CAN identifier blocks: initiator (manager→peer) traffic flows in
// 0x100+i toward the peers' segment, responder traffic in 0x200+i
// back. The chain gateways route the blocks directionally, so frames
// only travel toward their destination segment.
const (
	initiatorIDBase = 0x100
	responderIDBase = 0x200
)

// fabric is one constructed measurement network: the world pump, the
// segment chain, the per-peer endpoint pairs and their carriers, and
// the shared per-step accounting.
type fabric struct {
	world    *transport.World
	buses    []*canbus.Bus
	gateways []*canbus.Gateway
	locals   []*transport.Endpoint
	remotes  []*transport.Endpoint
	carriers map[ecqv.ID]*fleet.NetCarrier
	acc      *transport.Accounting
}

// buildFabric wires the scenario's topology for one measurement
// point: Segments buses in a chain bridged by Segments-1 gateways,
// every bus impaired with prof (content-keyed, salted by segment
// index), the manager's endpoints on segment 0 and the peers' on the
// last. A non-nil faultTrace hook is installed on every bus.
func buildFabric(s Scenario, prof Profile, peers []*core.Party, faultTrace func(canbus.FaultEvent)) (*fabric, error) {
	w := transport.NewWorld(nil)
	fab := &fabric{
		world:    w,
		carriers: make(map[ecqv.ID]*fleet.NetCarrier),
		acc:      transport.NewAccounting(),
	}

	for i := 0; i < s.Segments; i++ {
		bus := canbus.NewBus(canbus.PrototypeRates)
		bus.SetClock(w.Clock)
		bus.Impair(canbus.Impairment{
			Seed:      s.Seed,
			BusID:     uint64(i),
			Drop:      prof.Drop,
			Corrupt:   prof.Corrupt,
			Duplicate: prof.Duplicate,
			DelayRate: prof.DelayRate,
			Delay:     prof.Delay,
		})
		if faultTrace != nil {
			bus.SetFaultTrace(faultTrace)
		}
		fab.buses = append(fab.buses, bus)
	}

	fwd := canbus.IDRange(initiatorIDBase, initiatorIDBase+0xFF)
	rev := canbus.IDRange(responderIDBase, responderIDBase+0xFF)
	for i := 0; i+1 < s.Segments; i++ {
		gw := canbus.NewGateway(fmt.Sprintf("gw%d", i+1), w.Clock)
		lo, hi := fab.buses[i], fab.buses[i+1]
		if err := gw.Route(lo, hi, fwd, s.GatewayLatency); err != nil {
			return nil, err
		}
		if err := gw.Route(hi, lo, rev, s.GatewayLatency); err != nil {
			return nil, err
		}
		// A queue bound without a rate limit is inert (an
		// unlimited-rate port never backs up), so only a rate-limited
		// policy congests the ports.
		if s.Egress.Rate > 0 {
			if err := gw.SetEgress(lo, s.Egress); err != nil {
				return nil, err
			}
			if err := gw.SetEgress(hi, s.Egress); err != nil {
				return nil, err
			}
		}
		w.AddGateway(gw)
		fab.gateways = append(fab.gateways, gw)
	}

	mgrBus := fab.buses[0]
	peerBus := fab.buses[len(fab.buses)-1]
	link := &transport.Link{World: w, MaxResend: 6}
	base := transport.DefaultConfig()
	base.Accounting = fab.acc
	for i, p := range peers {
		lcfg, rcfg := base, base
		lcfg.AcceptID = responderIDBase + uint32(i)
		rcfg.AcceptID = initiatorIDBase + uint32(i)
		local := transport.NewReliableEndpoint(w, mgrBus.Attach(fmt.Sprintf("mgr→%s", p.ID)), initiatorIDBase+uint32(i), lcfg)
		remote := transport.NewReliableEndpoint(w, peerBus.Attach(p.ID.String()), responderIDBase+uint32(i), rcfg)
		fab.locals = append(fab.locals, local)
		fab.remotes = append(fab.remotes, remote)
		fab.carriers[p.ID] = &fleet.NetCarrier{Link: link, Local: local, Remote: remote, SessionID: uint16(i + 1)}
	}
	return fab, nil
}

// counters aggregates the fabric's fault and recovery counters into a
// measurement point.
func (fab *fabric) counters(pt *Point) {
	for _, bus := range fab.buses {
		st := bus.Stats()
		pt.BusDropped += st.Dropped
		pt.BusCorrupted += st.Corrupted
		pt.BusDuplicated += st.Duplicated
		pt.BusDelayed += st.Delayed
		pt.RxOverflow += st.RxOverflow
	}
	for _, gw := range fab.gateways {
		st := gw.Stats()
		pt.GatewayForwarded += st.Forwarded
		pt.GatewayEgressDropped += st.EgressDropped
		pt.GatewayPartitionDrops += st.PartitionDrop
	}
	for _, eps := range [][]*transport.Endpoint{fab.locals, fab.remotes} {
		for _, e := range eps {
			st := e.Stats()
			pt.Retransmits += st.Retransmits
			pt.MessageResends += st.MessageResends
			pt.IntegrityDrops += st.IntegrityDrops
			pt.ProtocolDrops += st.ProtocolDrops
		}
	}
	pt.SimTimeUS = us(fab.world.Clock.Now())
	pt.Steps = stepAccounts(fab.acc.Snapshot())
}

// now returns the fabric's simulated time.
func (fab *fabric) now() time.Duration { return fab.world.Clock.Now() }
