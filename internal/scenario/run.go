package scenario

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/ec"
	"repro/internal/ecqv"
	"repro/internal/fleet"
	"repro/internal/session"
)

// Options tune how a scenario executes without changing what it
// measures: every knob here is an execution detail, so the Result (and
// any trace) is byte-identical for every Options value. (Trace bytes
// additionally require the scenario itself to be trace-deterministic —
// see RunTracedWith.)
type Options struct {
	// Workers bounds how many sweep points simulate concurrently.
	// Each point owns a fully isolated fabric — its own simulated
	// clock, buses, gateways, endpoints, provisioning network and
	// randomness streams — so points are embarrassingly parallel and
	// fan out over internal/conc. ≤ 0 means one worker per core
	// (GOMAXPROCS).
	Workers int
}

// Timing reports the real (wall-clock) cost of a run — the one output
// that legitimately varies with Options and host, which is why it
// travels beside the Result instead of inside it.
type Timing struct {
	// Workers is the resolved worker count the run used.
	Workers int
	// WallClock is the elapsed real time of the whole sweep.
	WallClock time.Duration
	// Points holds each sweep point's elapsed real time,
	// index-aligned with Result.Points.
	Points []time.Duration
	// MaxInFlight is the peak number of points simulating
	// concurrently — the direct evidence of multi-core execution.
	MaxInFlight int
	// MaxReorderDepth is the peak number of completed points the
	// ordered emitter held while waiting for an earlier point to
	// finish — the direct evidence that memory stayed O(workers +
	// ReorderSlack) rather than O(points). Always ≤ Workers +
	// ReorderSlack; RunStreamWith fails the run otherwise.
	MaxReorderDepth int
	// HeapHighWater is the highest sampled heap allocation
	// (runtime.MemStats.HeapAlloc) observed during the run, sampled
	// every few flushed points. Host- and GC-dependent — evidence, not
	// a measurement.
	HeapHighWater uint64
}

// Run executes the scenario serially — every sweep point on a fresh,
// freshly seeded fabric — and returns its measurements.
func Run(s Scenario) (*Result, error) {
	res, _, err := RunWith(s, Options{Workers: 1})
	return res, err
}

// RunWith executes the scenario with the given execution options,
// returning the measurements and the run's wall-clock timing. The
// Result is byte-identical for every worker count.
func RunWith(s Scenario, o Options) (*Result, *Timing, error) {
	return run(s, nil, o)
}

// RunTraced runs the scenario serially while writing the full fault
// and recovery trace to w in a stable line format: one line per
// injected bus fault, per completed or failed handshake, per
// protocol-step cost row and per point summary. With a fixed seed the
// byte stream is exactly reproducible.
func RunTraced(s Scenario, w io.Writer) (*Result, error) {
	res, _, err := RunTracedWith(s, w, Options{Workers: 1})
	return res, err
}

// RunTracedWith is RunTraced with execution options. Workers add no
// nondeterminism to the trace: each point's trace accumulates in a
// private buffer while the points run concurrently, and the buffers
// are written to w in point order once the sweep completes, so the
// byte stream equals the serial run's. One caveat the workers do not
// create and cannot fix: with EstablishAll Parallelism > 1 inside a
// point, absolute fault timestamps and trace line order depend on how
// the runtime interleaved the conversations — even two serial runs
// can differ. The Result is schedule-invariant regardless (that is
// the fair-queuing/content-keying contract); byte-stable traces
// additionally need Parallelism ≤ 1.
func RunTracedWith(s Scenario, w io.Writer, o Options) (*Result, *Timing, error) {
	if w == nil {
		return nil, nil, fmt.Errorf("scenario: RunTracedWith needs a trace writer")
	}
	return run(s, w, o)
}

// tracer accumulates the text trace; a nil tracer writes nothing.
type tracer struct {
	w   io.Writer
	err error
}

func (t *tracer) printf(format string, args ...any) {
	if t == nil || t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

// runPointFn is the per-point executor; tests swap it to exercise the
// point-failure path, which no valid scenario reaches on its own.
var runPointFn = runPoint

// establishAllFn is the fleet bring-up call; tests swap it to observe
// the parallelism actually requested (the Result is schedule-invariant
// by contract, so honoring Scenario.Parallelism is unobservable in the
// measurements — exactly the property that let the old hardcoded
// EstablishAll(peers, 1) hide for three releases).
var establishAllFn = func(m *fleet.Manager, peers []*core.Party, parallelism int) []error {
	return m.EstablishAll(peers, parallelism)
}

// run is the materialized path: the streaming engine with a collecting
// sink (and a TraceSink when a trace writer was given). Keeping it on
// the same engine means the byte-identity contract between streamed
// and materialized output is enforced by construction, not by tests
// alone.
func run(s Scenario, traceW io.Writer, o Options) (*Result, *Timing, error) {
	col := &collectSink{}
	sinks := []PointSink{col}
	if traceW != nil {
		sinks = append(sinks, NewTraceSink(traceW))
	}
	timing, err := RunStreamWith(s, sinks, o)
	if err != nil {
		return nil, nil, err
	}
	return col.res, timing, nil
}

// runPoint provisions a fleet, builds the fabric at one sweep value
// and drives the workload. Everything it touches — provisioning
// network, randomness streams, buses, gateways, clock, endpoints,
// manager — is constructed here from the scenario value and the sweep
// value alone, never shared: that isolation is what lets sweep points
// run concurrently and still measure bit-identical results.
func runPoint(s Scenario, v float64, axis Axis, tr *tracer) (Point, error) {
	prof := s.profileAt(v)
	tr.printf("point %s=%.4f\n", axis, v)

	net, err := core.NewNetwork(ec.P256(), detrand.NewReader(detrand.DeriveSeed(s.Seed, []byte("provision"), math.Float64bits(v))))
	if err != nil {
		return Point{}, err
	}
	self, err := net.Provision("scenario-manager")
	if err != nil {
		return Point{}, err
	}
	peers := make([]*core.Party, s.Peers)
	for i := range peers {
		if peers[i], err = net.Provision(fmt.Sprintf("ecu-%02d", i)); err != nil {
			return Point{}, err
		}
		// Private responder-side randomness per peer: leg two of
		// reproducible concurrency (leg one is content-keyed faults).
		peers[i].Rand = detrand.NewReader(detrand.DeriveSeed(s.Seed, peers[i].ID[:], 0xB0B))
	}

	var faultTrace func(canbus.FaultEvent)
	if tr != nil {
		faultTrace = func(ev canbus.FaultEvent) {
			tr.printf("fault t=%dns bus=%d id=0x%03x occ=%d kind=%s\n",
				ev.Time.Nanoseconds(), ev.BusID, ev.FrameID, ev.Occurrence, ev.Kind)
		}
	}
	fab, err := buildFabric(s, prof, peers, faultTrace)
	if err != nil {
		return Point{}, err
	}

	m, err := fleet.NewManager(self, core.OptNone, session.DefaultPolicy)
	if err != nil {
		return Point{}, err
	}
	m.SetRetryPolicy(fleet.RetryPolicy{MaxAttempts: s.Attempts})
	// Private initiator-side randomness per handshake: the ordinal
	// counts every attempt to a peer across the whole point (bring-up,
	// retries, churn reconnects), so no two handshakes share a stream.
	var hsMu sync.Mutex
	ordinals := make(map[ecqv.ID]uint64)
	m.SetHandshakeRand(func(peer ecqv.ID, attempt int) io.Reader {
		hsMu.Lock()
		n := ordinals[peer]
		ordinals[peer] = n + 1
		hsMu.Unlock()
		return detrand.NewReader(detrand.DeriveSeed(s.Seed, peer[:], 0xA11CE, n))
	})
	m.SetCarrier(func(peer *core.Party) (fleet.Carrier, error) {
		c, ok := fab.carriers[peer.ID]
		if !ok {
			return nil, fmt.Errorf("scenario: no carrier for %s", peer.ID)
		}
		return c, nil
	})

	pt := Point{Axis: axis, Value: v}
	switch s.Workload {
	case WorkloadLatency:
		start := fab.now()
		samples := serialHandshakes(m, peers, fab, &pt, tr)
		pt.WorkloadTimeUS = us(fab.now() - start)
		pt.Latency = latencyStats(samples)

	case WorkloadAttack:
		advs, err := buildAdversaries(s, v, fab, peers)
		if err != nil {
			return Point{}, err
		}
		start := fab.now()
		for _, adv := range advs {
			adv.Arm(start)
		}
		samples := serialHandshakes(m, peers, fab, &pt, tr)
		fab.world.Run()
		for _, adv := range advs {
			adv.Disarm()
		}
		if err := executeAdversaries(advs, tr); err != nil {
			return Point{}, err
		}
		pt.WorkloadTimeUS = us(fab.now() - start)
		pt.Latency = latencyStats(samples)
		pt.Attacks = attackAccounts(advs, tr)

	case WorkloadDayInLife:
		advs, err := buildAdversaries(s, v, fab, peers)
		if err != nil {
			return Point{}, err
		}
		start := fab.now()
		phase := func(name string, t0 time.Duration) {
			dt := fab.now() - t0
			pt.Phases = append(pt.Phases, PhaseTime{Phase: name, TimeUS: us(dt)})
			tr.printf("phase %s t=%dns\n", name, dt.Nanoseconds())
		}

		t0 := fab.now()
		for _, err := range establishAllFn(m, peers, s.Parallelism) {
			if err != nil {
				pt.Errors++
			}
		}
		phase("bringup", t0)

		// Steady traffic: one full rekey round (Connect always runs a
		// fresh handshake, modelling policy-driven rekeys in service).
		t0 = fab.now()
		for _, p := range peers {
			if err := m.Connect(p); err != nil {
				pt.Errors++
			}
		}
		phase("steady", t0)

		// One churn round: the even-indexed half leaves and rejoins.
		t0 = fab.now()
		var half []*core.Party
		for i := 0; i < len(peers); i += 2 {
			half = append(half, peers[i])
		}
		for _, p := range half {
			m.Disconnect(p.ID)
		}
		for _, err := range establishAllFn(m, half, s.Parallelism) {
			if err != nil {
				pt.Errors++
			}
		}
		phase("churn", t0)

		// The attack burst: adversaries armed for one rekey round.
		t0 = fab.now()
		for _, adv := range advs {
			adv.Arm(t0)
		}
		samples := serialHandshakes(m, peers, fab, &pt, tr)
		fab.world.Run()
		for _, adv := range advs {
			adv.Disarm()
		}
		if err := executeAdversaries(advs, tr); err != nil {
			return Point{}, err
		}
		phase("attack", t0)

		pt.WorkloadTimeUS = us(fab.now() - start)
		pt.Latency = latencyStats(samples)
		pt.Attacks = attackAccounts(advs, tr)

	case WorkloadBringup:
		start := fab.now()
		for _, err := range establishAllFn(m, peers, s.Parallelism) {
			if err != nil {
				pt.Errors++
			}
		}
		pt.WorkloadTimeUS = us(fab.now() - start)

	case WorkloadChurn:
		start := fab.now()
		for _, err := range establishAllFn(m, peers, s.Parallelism) {
			if err != nil {
				pt.Errors++
			}
		}
		// Every round, the even-indexed half leaves and rejoins.
		var half []*core.Party
		for i := 0; i < len(peers); i += 2 {
			half = append(half, peers[i])
		}
		var roundTimes []time.Duration
		for r := 0; r < s.ChurnRounds; r++ {
			for _, p := range half {
				m.Disconnect(p.ID)
			}
			t0 := fab.now()
			for _, err := range establishAllFn(m, half, s.Parallelism) {
				if err != nil {
					pt.Errors++
				}
			}
			dt := fab.now() - t0
			roundTimes = append(roundTimes, dt)
			tr.printf("churn round=%d peers=%d t=%dns\n", r, len(half), dt.Nanoseconds())
		}
		pt.WorkloadTimeUS = us(fab.now() - start)
		cs := &ChurnStats{Rounds: s.ChurnRounds, PeersPerRound: len(half)}
		var sum, max time.Duration
		for _, d := range roundTimes {
			sum += d
			if d > max {
				max = d
			}
		}
		if len(roundTimes) > 0 {
			cs.MeanRoundTimeUS = us(sum) / float64(len(roundTimes))
			cs.MaxRoundTimeUS = us(max)
		}
		pt.Churn = cs
	}

	st := m.Stats()
	pt.Handshakes = st.Handshakes
	pt.Retries = st.HandshakeRetries
	pt.FailedAttempts = st.FailedAttempts
	pt.WorstAttempts = st.WorstAttempts
	fab.counters(&pt)

	for _, sa := range pt.Steps {
		tr.printf("step %s messages=%d frames=%d retransmits=%d waits=%d resends=%d aborted=%d payload=%d wire=%.3fus queue=%.3fus\n",
			sa.Step, sa.Messages, sa.Frames, sa.Retransmits, sa.WaitsHonoured, sa.Resends, sa.Aborted, sa.PayloadBytes, sa.WireTimeUS, sa.QueueTimeUS)
	}
	tr.printf("summary errors=%d handshakes=%d retries=%d failed=%d retransmits=%d resends=%d integrity_drops=%d protocol_drops=%d dropped=%d corrupted=%d duplicated=%d rx_overflow=%d forwarded=%d egress_dropped=%d sim=%dns\n",
		pt.Errors, pt.Handshakes, pt.Retries, pt.FailedAttempts, pt.Retransmits, pt.MessageResends,
		pt.IntegrityDrops, pt.ProtocolDrops, pt.BusDropped, pt.BusCorrupted, pt.BusDuplicated,
		pt.RxOverflow, pt.GatewayForwarded, pt.GatewayEgressDropped, fab.now().Nanoseconds())
	return pt, nil
}

// serialHandshakes runs one fresh handshake per peer, in peer order,
// recording each success's simulated latency. Shared by the latency
// workload and the attack workloads (where the samples become the
// victim-latency percentiles).
func serialHandshakes(m *fleet.Manager, peers []*core.Party, fab *fabric, pt *Point, tr *tracer) []time.Duration {
	var samples []time.Duration
	for _, p := range peers {
		t0 := fab.now()
		if err := m.Connect(p); err != nil {
			pt.Errors++
			tr.printf("handshake peer=%s FAILED\n", p.ID)
			continue
		}
		dt := fab.now() - t0
		samples = append(samples, dt)
		tr.printf("handshake peer=%s t=%dns\n", p.ID, dt.Nanoseconds())
	}
	return samples
}

// buildAdversaries constructs and attaches the point's adversaries on
// its private fabric, registering each with the world pump. Config
// order is build, pump and accounting order — all deterministic.
func buildAdversaries(s Scenario, v float64, fab *fabric, peers []*core.Party) ([]Adversary, error) {
	cfgs := s.adversariesAt(v)
	sur := &Surface{
		World:    fab.world,
		Clock:    fab.world.Clock,
		Buses:    fab.buses,
		Gateways: fab.gateways,
		Peers:    peers,
		Remotes:  fab.remotes,
		Seed:     s.Seed,
	}
	advs := make([]Adversary, 0, len(cfgs))
	for i, cfg := range cfgs {
		adv, err := newAdversary(cfg, s.Seed, i)
		if err != nil {
			return nil, err
		}
		if err := adv.Attach(sur); err != nil {
			return nil, err
		}
		fab.world.AddAgent(adv)
		advs = append(advs, adv)
	}
	return advs, nil
}

// executeAdversaries runs the deferred attack phases (the replay
// attacker's re-injection) after the workload, in config order.
func executeAdversaries(advs []Adversary, tr *tracer) error {
	for _, adv := range advs {
		if ex, ok := adv.(executor); ok {
			if err := ex.Execute(tr); err != nil {
				return err
			}
		}
	}
	return nil
}

// attackAccounts collects the per-adversary accounting and writes the
// attack trace lines.
func attackAccounts(advs []Adversary, tr *tracer) []AttackAccount {
	out := make([]AttackAccount, 0, len(advs))
	for _, adv := range advs {
		acc := adv.Account()
		out = append(out, acc)
		tr.printf("attack kind=%s segment=%d intensity=%g injected=%d forged_fc=%d forged_cf=%d recorded=%d replayed=%d rejected_auth=%d rejected_protocol=%d accepted=%d partitions=%d heals=%d partition_drops=%d\n",
			acc.Kind, acc.Segment, acc.Intensity, acc.InjectedFrames,
			acc.ForgedFlowControls, acc.ForgedConsecutives,
			acc.RecordedSessions, acc.ReplayedSessions, acc.RejectedAuth, acc.RejectedProtocol, acc.AcceptedReplays,
			acc.Partitions, acc.Heals, acc.PartitionDrops)
	}
	return out
}
