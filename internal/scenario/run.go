package scenario

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/ec"
	"repro/internal/ecqv"
	"repro/internal/fleet"
	"repro/internal/session"
)

// Run executes the scenario — every sweep point on a fresh, freshly
// seeded fabric — and returns its measurements.
func Run(s Scenario) (*Result, error) { return run(s, nil) }

// RunTraced runs the scenario while streaming the full fault and
// recovery trace to w in a stable line format: one line per injected
// bus fault, per completed or failed handshake, per protocol-step
// cost row and per point summary. With a fixed seed the byte stream
// is exactly reproducible (at parallelism 1 — concurrent runs keep
// the same aggregate trace lines but may interleave fault lines of
// different conversations differently), which is what the
// golden-trace regression test diffs.
func RunTraced(s Scenario, w io.Writer) (*Result, error) {
	return run(s, &tracer{w: w})
}

// tracer accumulates the text trace; a nil tracer writes nothing.
type tracer struct {
	w   io.Writer
	err error
}

func (t *tracer) printf(format string, args ...any) {
	if t == nil || t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

func run(s Scenario, tr *tracer) (*Result, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	axis := s.SweepAxis
	if axis == "" {
		axis = AxisDrop
	}
	res := &Result{
		SchemaVersion: SchemaVersion,
		Name:          s.Name,
		Workload:      s.Workload,
		Seed:          s.Seed,
		Peers:         s.Peers,
		Segments:      s.Segments,
		Axis:          axis,
	}
	tr.printf("# scenario %s workload=%s seed=%d peers=%d segments=%d axis=%s\n",
		s.Name, s.Workload, s.Seed, s.Peers, s.Segments, axis)
	for _, v := range s.points() {
		pt, err := s.runPoint(v, axis, tr)
		if err != nil {
			return nil, fmt.Errorf("scenario %s at %s=%v: %w", s.Name, axis, v, err)
		}
		res.Points = append(res.Points, pt)
	}
	if tr != nil && tr.err != nil {
		return nil, tr.err
	}
	return res, nil
}

// runPoint provisions a fleet, builds the fabric at one sweep value
// and drives the workload.
func (s Scenario) runPoint(v float64, axis Axis, tr *tracer) (Point, error) {
	prof := s.profileAt(v)
	tr.printf("point %s=%.4f\n", axis, v)

	net, err := core.NewNetwork(ec.P256(), detrand.NewReader(detrand.DeriveSeed(s.Seed, []byte("provision"), math.Float64bits(v))))
	if err != nil {
		return Point{}, err
	}
	self, err := net.Provision("scenario-manager")
	if err != nil {
		return Point{}, err
	}
	peers := make([]*core.Party, s.Peers)
	for i := range peers {
		if peers[i], err = net.Provision(fmt.Sprintf("ecu-%02d", i)); err != nil {
			return Point{}, err
		}
		// Private responder-side randomness per peer: leg two of
		// reproducible concurrency (leg one is content-keyed faults).
		peers[i].Rand = detrand.NewReader(detrand.DeriveSeed(s.Seed, peers[i].ID[:], 0xB0B))
	}

	var faultTrace func(canbus.FaultEvent)
	if tr != nil {
		faultTrace = func(ev canbus.FaultEvent) {
			tr.printf("fault t=%dns bus=%d id=0x%03x occ=%d kind=%s\n",
				ev.Time.Nanoseconds(), ev.BusID, ev.FrameID, ev.Occurrence, ev.Kind)
		}
	}
	fab, err := buildFabric(s, prof, peers, faultTrace)
	if err != nil {
		return Point{}, err
	}

	m, err := fleet.NewManager(self, core.OptNone, session.DefaultPolicy)
	if err != nil {
		return Point{}, err
	}
	m.SetRetryPolicy(fleet.RetryPolicy{MaxAttempts: s.Attempts})
	// Private initiator-side randomness per handshake: the ordinal
	// counts every attempt to a peer across the whole point (bring-up,
	// retries, churn reconnects), so no two handshakes share a stream.
	var hsMu sync.Mutex
	ordinals := make(map[ecqv.ID]uint64)
	m.SetHandshakeRand(func(peer ecqv.ID, attempt int) io.Reader {
		hsMu.Lock()
		n := ordinals[peer]
		ordinals[peer] = n + 1
		hsMu.Unlock()
		return detrand.NewReader(detrand.DeriveSeed(s.Seed, peer[:], 0xA11CE, n))
	})
	m.SetCarrier(func(peer *core.Party) (fleet.Carrier, error) {
		c, ok := fab.carriers[peer.ID]
		if !ok {
			return nil, fmt.Errorf("scenario: no carrier for %s", peer.ID)
		}
		return c, nil
	})

	pt := Point{Axis: axis, Value: v}
	switch s.Workload {
	case WorkloadLatency:
		var samples []time.Duration
		start := fab.now()
		for _, p := range peers {
			t0 := fab.now()
			if err := m.Connect(p); err != nil {
				pt.Errors++
				tr.printf("handshake peer=%s FAILED\n", p.ID)
				continue
			}
			dt := fab.now() - t0
			samples = append(samples, dt)
			tr.printf("handshake peer=%s t=%dns\n", p.ID, dt.Nanoseconds())
		}
		pt.WorkloadTimeUS = us(fab.now() - start)
		pt.Latency = latencyStats(samples)

	case WorkloadBringup:
		start := fab.now()
		for _, err := range m.EstablishAll(peers, s.Parallelism) {
			if err != nil {
				pt.Errors++
			}
		}
		pt.WorkloadTimeUS = us(fab.now() - start)

	case WorkloadChurn:
		start := fab.now()
		for _, err := range m.EstablishAll(peers, s.Parallelism) {
			if err != nil {
				pt.Errors++
			}
		}
		// Every round, the even-indexed half leaves and rejoins.
		var half []*core.Party
		for i := 0; i < len(peers); i += 2 {
			half = append(half, peers[i])
		}
		var roundTimes []time.Duration
		for r := 0; r < s.ChurnRounds; r++ {
			for _, p := range half {
				m.Disconnect(p.ID)
			}
			t0 := fab.now()
			for _, err := range m.EstablishAll(half, s.Parallelism) {
				if err != nil {
					pt.Errors++
				}
			}
			dt := fab.now() - t0
			roundTimes = append(roundTimes, dt)
			tr.printf("churn round=%d peers=%d t=%dns\n", r, len(half), dt.Nanoseconds())
		}
		pt.WorkloadTimeUS = us(fab.now() - start)
		cs := &ChurnStats{Rounds: s.ChurnRounds, PeersPerRound: len(half)}
		var sum, max time.Duration
		for _, d := range roundTimes {
			sum += d
			if d > max {
				max = d
			}
		}
		if len(roundTimes) > 0 {
			cs.MeanRoundTimeUS = us(sum) / float64(len(roundTimes))
			cs.MaxRoundTimeUS = us(max)
		}
		pt.Churn = cs
	}

	st := m.Stats()
	pt.Handshakes = st.Handshakes
	pt.Retries = st.HandshakeRetries
	pt.FailedAttempts = st.FailedAttempts
	fab.counters(&pt)

	for _, sa := range pt.Steps {
		tr.printf("step %s messages=%d frames=%d retransmits=%d waits=%d resends=%d aborted=%d payload=%d wire=%.3fus queue=%.3fus\n",
			sa.Step, sa.Messages, sa.Frames, sa.Retransmits, sa.WaitsHonoured, sa.Resends, sa.Aborted, sa.PayloadBytes, sa.WireTimeUS, sa.QueueTimeUS)
	}
	tr.printf("summary errors=%d handshakes=%d retries=%d failed=%d retransmits=%d resends=%d integrity_drops=%d protocol_drops=%d dropped=%d corrupted=%d duplicated=%d rx_overflow=%d forwarded=%d egress_dropped=%d sim=%dns\n",
		pt.Errors, pt.Handshakes, pt.Retries, pt.FailedAttempts, pt.Retransmits, pt.MessageResends,
		pt.IntegrityDrops, pt.ProtocolDrops, pt.BusDropped, pt.BusCorrupted, pt.BusDuplicated,
		pt.RxOverflow, pt.GatewayForwarded, pt.GatewayEgressDropped, fab.now().Nanoseconds())
	return pt, nil
}
