package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// SchemaVersion stamps every Result; the CI schema-drift check and
// external consumers key on it. Bump it on any breaking change to the
// Result/Point/StepAccount shapes.
//
// v2: StepAccount gained queue_time_us (per-step queueing delay under
// congested gateways).
//
// v3: Point gained error — a point that fails to provision or build
// its fabric is recorded in place (index-aligned, no measurements)
// instead of aborting the whole sweep.
//
// v4: the adversarial workload layer. LatencyStats gained p95_us;
// Point gained worst_attempts, gateway_partition_drops, attacks (per-
// adversary accounting, attack workloads only) and phases (the
// day-in-the-life composite's per-phase times). ValidateJSON gates
// accepted_replays to zero on every attack point.
const SchemaVersion = 4

// Result is one scenario's complete measurement output.
type Result struct {
	SchemaVersion int      `json:"schema_version"`
	Name          string   `json:"name"`
	Workload      Workload `json:"workload"`
	Seed          uint64   `json:"seed"`
	Peers         int      `json:"peers"`
	Segments      int      `json:"segments"`
	Axis          Axis     `json:"axis"`
	Points        []Point  `json:"points"`
}

// LatencyStats summarizes per-handshake simulated latency in
// microseconds (the latency workload; nil for the others).
type LatencyStats struct {
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	MinUS  float64 `json:"min_us"`
	MaxUS  float64 `json:"max_us"`
}

// ChurnStats summarizes the churn workload's rounds (nil otherwise).
type ChurnStats struct {
	Rounds          int     `json:"rounds"`
	PeersPerRound   int     `json:"peers_per_round"`
	MeanRoundTimeUS float64 `json:"mean_round_time_us"`
	MaxRoundTimeUS  float64 `json:"max_round_time_us"`
}

// StepAccount is the per-Table-II-step cost row: which protocol step
// paid how much wire time and recovery under the measured impairment.
type StepAccount struct {
	Step          string  `json:"step"` // "A1".."B2", or "op_XX" off-protocol
	Messages      int     `json:"messages"`
	Frames        int     `json:"frames"`
	Retransmits   int     `json:"retransmits"`
	WaitsHonoured int     `json:"waits_honoured"`
	Resends       int     `json:"resends"`
	Aborted       int     `json:"aborted"`
	PayloadBytes  int     `json:"payload_bytes"`
	WireTimeUS    float64 `json:"wire_time_us"`
	// QueueTimeUS is the simulated time this step's completed
	// deliveries spent in the fabric after their last frame left the
	// sender — store-and-forward and egress-gating delay, the per-step
	// price of a congested gateway.
	QueueTimeUS float64 `json:"queue_time_us"`
}

// Point is the measurement at one sweep value.
type Point struct {
	Axis  Axis    `json:"axis"`
	Value float64 `json:"value"`

	// Error records a point-level failure (provisioning or fabric
	// construction died before the workload ran). The point carries no
	// measurements, its slot in the sweep stays index-aligned, and the
	// remaining points still measure — a thousand-point search
	// survives one pathological corner.
	Error string `json:"error,omitempty"`

	Errors     int `json:"errors"`
	Handshakes int `json:"handshakes"`

	Latency *LatencyStats `json:"latency,omitempty"`
	Churn   *ChurnStats   `json:"churn,omitempty"`

	// Attacks is the per-adversary accounting (attack workloads only,
	// config order — deterministic, so byte-comparable across runs).
	Attacks []AttackAccount `json:"attacks,omitempty"`
	// Phases times the day-in-the-life composite's phases in order
	// (bringup, steady, churn, attack).
	Phases []PhaseTime `json:"phases,omitempty"`

	// WorkloadTimeUS is the simulated time the workload consumed at
	// this point (total bring-up time for bringup/churn, summed
	// handshake time for latency).
	WorkloadTimeUS float64 `json:"workload_time_us"`

	// Recovery accounting (fleet + transport aggregates).
	// WorstAttempts is the attempt count of the unluckiest successful
	// (or exhausted) handshake — the adversary's per-victim impact
	// that aggregate retry totals wash out.
	Retries        int `json:"retries"`
	FailedAttempts int `json:"failed_attempts"`
	WorstAttempts  int `json:"worst_attempts"`
	Retransmits    int `json:"retransmits"`
	MessageResends int `json:"message_resends"`
	IntegrityDrops int `json:"integrity_drops"`
	ProtocolDrops  int `json:"protocol_drops"`

	// Fabric counters.
	BusDropped           int `json:"bus_dropped"`
	BusCorrupted         int `json:"bus_corrupted"`
	BusDuplicated        int `json:"bus_duplicated"`
	BusDelayed           int `json:"bus_delayed"`
	RxOverflow           int `json:"rx_overflow"`
	GatewayForwarded     int `json:"gateway_forwarded"`
	GatewayEgressDropped int `json:"gateway_egress_dropped"`
	// GatewayPartitionDrops counts frames lost at severed gateway
	// ports (zero outside partition attacks).
	GatewayPartitionDrops int `json:"gateway_partition_drops"`

	SimTimeUS float64 `json:"sim_time_us"`

	Steps []StepAccount `json:"steps"`
}

// us converts a simulated duration to microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// stepAccounts converts an accounting snapshot into sorted rows with
// Table II labels.
func stepAccounts(snap map[byte]transport.StepCost) []StepAccount {
	out := make([]StepAccount, 0, len(snap))
	//detlint:allow maporder rows are sorted by Step label below before anything emits them
	for op, c := range snap {
		label, ok := core.StepLabel(op)
		if !ok {
			label = fmt.Sprintf("op_%02x", op)
		}
		out = append(out, StepAccount{
			Step:          label,
			Messages:      c.Messages,
			Frames:        c.Frames,
			Retransmits:   c.Retransmits,
			WaitsHonoured: c.WaitsHonoured,
			Resends:       c.Resends,
			Aborted:       c.Aborted,
			PayloadBytes:  c.PayloadBytes,
			WireTimeUS:    us(c.WireTime),
			QueueTimeUS:   us(c.QueueTime),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// latencyStats summarizes a sample of simulated durations.
func latencyStats(samples []time.Duration) *LatencyStats {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	// Nearest-rank p95: the smallest rank r with r ≥ 0.95·n, as a
	// 0-based index ceil(95n/100)−1. The old (95n)/100 floored the rank
	// instead of ceiling it and so over-shot by one whenever 95n
	// divided evenly — for n=20 it indexed the maximum (19) where
	// nearest-rank says 18.
	p95 := (len(sorted)*95+99)/100 - 1
	if p95 < 0 {
		p95 = 0
	}
	return &LatencyStats{
		MeanUS: us(sum) / float64(len(sorted)),
		P50US:  us(sorted[len(sorted)/2]),
		P95US:  us(sorted[p95]),
		MinUS:  us(sorted[0]),
		MaxUS:  us(sorted[len(sorted)-1]),
	}
}

// PhaseTime is one timed phase of a composite workload.
type PhaseTime struct {
	Phase  string  `json:"phase"`
	TimeUS float64 `json:"time_us"`
}
