package scenario

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON emits the result as indented JSON.
func WriteJSON(w io.Writer, r *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// csvHeader is the flattened curve schema — one row per sweep point;
// the per-step breakdown stays in the JSON form.
var csvHeader = []string{
	"name", "workload", "axis", "value", "error", "errors", "handshakes",
	"latency_mean_us", "latency_p50_us", "latency_p95_us", "latency_min_us", "latency_max_us",
	"workload_time_us", "retries", "failed_attempts", "worst_attempts", "retransmits",
	"message_resends", "integrity_drops", "protocol_drops",
	"bus_dropped", "bus_corrupted", "bus_duplicated", "bus_delayed", "rx_overflow",
	"gateway_forwarded", "gateway_egress_dropped", "gateway_partition_drops", "sim_time_us",
	"injected_frames", "rejected_replays", "accepted_replays",
}

// csvRow flattens one point into its curve row — shared by the
// materialized WriteCSV and the streaming CSVSink, which is what keeps
// their output byte-identical by construction.
func csvRow(name string, workload Workload, p Point) []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	n := strconv.Itoa
	lat := LatencyStats{}
	if p.Latency != nil {
		lat = *p.Latency
	}
	var injected, rejected, accepted int
	for _, a := range p.Attacks {
		injected += a.InjectedFrames
		rejected += a.RejectedAuth + a.RejectedProtocol
		accepted += a.AcceptedReplays
	}
	return []string{
		name, string(workload), string(p.Axis), strconv.FormatFloat(p.Value, 'f', 4, 64),
		p.Error, n(p.Errors), n(p.Handshakes),
		f(lat.MeanUS), f(lat.P50US), f(lat.P95US), f(lat.MinUS), f(lat.MaxUS),
		f(p.WorkloadTimeUS), n(p.Retries), n(p.FailedAttempts), n(p.WorstAttempts), n(p.Retransmits),
		n(p.MessageResends), n(p.IntegrityDrops), n(p.ProtocolDrops),
		n(p.BusDropped), n(p.BusCorrupted), n(p.BusDuplicated), n(p.BusDelayed), n(p.RxOverflow),
		n(p.GatewayForwarded), n(p.GatewayEgressDropped), n(p.GatewayPartitionDrops), f(p.SimTimeUS),
		n(injected), n(rejected), n(accepted),
	}
}

// WriteCSV emits the result's points as a flat CSV curve (RFC 4180
// quoting via encoding/csv, so commas in scenario names stay intact).
func WriteCSV(w io.Writer, r *Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := cw.Write(csvRow(r.Name, r.Workload, p)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ValidateJSON is the schema-drift gate used by the CI smoke job: it
// re-decodes an emitted result with unknown fields forbidden (so an
// extra field in the file fails loudly, for every schema version —
// the version check runs on a lenient first pass so an old document
// reports its version mismatch instead of whichever unknown key the
// strict decoder trips on first), rejects trailing content after the
// result document, and checks the structural invariants a consumer of
// the curve relies on (so a missing or renamed field fails too). On
// attack-workload results it additionally refuses any point with
// accepted replays: a curve claiming a successful replay is a
// security regression, not a measurement. It returns the decoded
// result on success. Pure function of its input — safe as a CI gate.
func ValidateJSON(data []byte) (*Result, error) {
	// Version first, leniently: version mismatches must report as
	// version mismatches regardless of which fields came or went.
	var version struct {
		SchemaVersion *int `json:"schema_version"`
	}
	// A Decoder stops after the first value, so trailing garbage is
	// diagnosed by the dedicated check below, not mislabelled as drift.
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&version); err != nil {
		return nil, fmt.Errorf("scenario: schema drift: %w", err)
	}
	if version.SchemaVersion == nil {
		return nil, fmt.Errorf("scenario: result has no schema_version")
	}
	if *version.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("scenario: schema version %d, tool expects %d", *version.SchemaVersion, SchemaVersion)
	}

	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Result
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("scenario: schema drift: %w", err)
	}
	// A JSON decoder stops at the end of the first value; anything
	// after it would be silently ignored — reject it instead, the file
	// is supposed to be exactly one result document.
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing content after the result document")
	}
	if r.Name == "" {
		return nil, fmt.Errorf("scenario: result has no name")
	}
	switch r.Workload {
	case WorkloadLatency, WorkloadBringup, WorkloadChurn, WorkloadAttack, WorkloadDayInLife:
	default:
		return nil, fmt.Errorf("scenario: unknown workload %q", r.Workload)
	}
	attack := r.Workload == WorkloadAttack || r.Workload == WorkloadDayInLife
	if len(r.Points) == 0 {
		return nil, fmt.Errorf("scenario: result has no points")
	}
	for i, p := range r.Points {
		if p.Axis == "" {
			return nil, fmt.Errorf("scenario: point %d has no axis", i)
		}
		if p.Error != "" {
			// A recorded point failure carries no measurements by
			// definition; the structural invariants below don't apply.
			continue
		}
		if p.Handshakes == 0 && p.Errors == 0 {
			return nil, fmt.Errorf("scenario: point %d measured nothing", i)
		}
		if (r.Workload == WorkloadLatency || attack) && p.Errors < r.Peers && p.Latency == nil {
			return nil, fmt.Errorf("scenario: latency point %d has no latency stats", i)
		}
		if attack {
			// Only the attack workload promises adversaries;
			// day-in-the-life runs adversary-free too (the benign duty
			// cycle), so its points may legitimately carry no accounting.
			if r.Workload == WorkloadAttack && len(p.Attacks) == 0 {
				return nil, fmt.Errorf("scenario: attack point %d has no attack accounting", i)
			}
			for _, a := range p.Attacks {
				switch a.Kind {
				case AdversaryReplay, AdversaryInject, AdversaryBabble, AdversaryPartition:
				default:
					return nil, fmt.Errorf("scenario: point %d reports unknown adversary kind %q", i, a.Kind)
				}
				if a.AcceptedReplays != 0 {
					return nil, fmt.Errorf("scenario: point %d accepted %d replayed sessions — security regression", i, a.AcceptedReplays)
				}
			}
		}
		if r.Workload == WorkloadDayInLife && len(p.Phases) == 0 {
			return nil, fmt.Errorf("scenario: day-in-the-life point %d has no phase times", i)
		}
		if p.Handshakes > 0 && len(p.Steps) == 0 {
			return nil, fmt.Errorf("scenario: point %d has no per-step accounting", i)
		}
		for _, sc := range p.Steps {
			if sc.Step == "" {
				return nil, fmt.Errorf("scenario: point %d has an unlabelled step row", i)
			}
		}
	}
	return &r, nil
}
