package scenario

import (
	"math/rand"
	"testing"
	"time"
)

// TestLatencyStatsP95NearestRank pins the nearest-rank definition for
// every sample size up to 100: p95 is the smallest rank r (1-based)
// with r·100 ≥ 95·n. The old (95n)/100 floored the rank and so
// over-shot by one whenever 95n divided evenly — for n=20 it reported
// the maximum (rank 20) where nearest-rank says rank 19.
func TestLatencyStatsP95NearestRank(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 100; n++ {
		// Distinct sorted values i+1 µs, shuffled: the stat must find
		// the rank regardless of input order.
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(i+1) * time.Microsecond
		}
		rng.Shuffle(n, func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })

		rank := 1
		for rank*100 < 95*n {
			rank++
		}
		want := float64(rank) // value at 1-based rank r is r µs

		st := latencyStats(samples)
		if st == nil {
			t.Fatalf("n=%d: nil stats", n)
		}
		if st.P95US != want {
			t.Errorf("n=%d: p95 = %v µs, want rank %d = %v µs", n, st.P95US, rank, want)
		}
	}
	// The motivating case, explicitly: n=20 must report the 19th value.
	samples := make([]time.Duration, 20)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Microsecond
	}
	if st := latencyStats(samples); st.P95US != 19 {
		t.Errorf("n=20: p95 = %v µs, want 19 (the old off-by-one returned 20, the max)", st.P95US)
	}
}
