package scenario

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/fleet"
)

// parallelSweep is the reference multi-point sweep for the worker
// fan-out tests: 8 points, impaired multi-segment fabric, so each
// point does real recovery work on its own isolated world.
func parallelSweep() Scenario {
	s := smallScenario(WorkloadLatency)
	s.Name = "parallel-sweep"
	s.Profile.Corrupt = 0.01
	s.SweepAxis = AxisDrop
	s.SweepPoints = []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08}
	return s
}

// TestParallelSweepMatchesSerial is the tentpole invariant: fanning
// sweep points across workers changes wall-clock only — the Result,
// its JSON encoding and the full trace are byte-identical to the
// serial run at every worker count.
func TestParallelSweepMatchesSerial(t *testing.T) {
	s := parallelSweep()
	want, _, err := RunWith(s, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wantTrace bytes.Buffer
	if _, err := RunTraced(s, &wantTrace); err != nil {
		t.Fatal(err)
	}
	var wantJSON bytes.Buffer
	if err := WriteJSON(&wantJSON, want); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 8, 0} { // 0 = one per core
		got, timing, err := RunWith(s, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d changed the result:\nserial   %+v\nparallel %+v", workers, want, got)
		}
		var gotJSON bytes.Buffer
		if err := WriteJSON(&gotJSON, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON.Bytes(), wantJSON.Bytes()) {
			t.Fatalf("workers=%d changed the JSON bytes", workers)
		}
		if len(timing.Points) != len(want.Points) || timing.WallClock <= 0 {
			t.Fatalf("workers=%d timing implausible: %+v", workers, timing)
		}
		for i, d := range timing.Points {
			if d <= 0 {
				t.Fatalf("workers=%d point %d has no wall-clock time", workers, i)
			}
		}

		var gotTrace bytes.Buffer
		if _, _, err := RunTracedWith(s, &gotTrace, Options{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotTrace.Bytes(), wantTrace.Bytes()) {
			t.Fatalf("workers=%d changed the trace (%d vs %d bytes)", workers, gotTrace.Len(), wantTrace.Len())
		}
	}
}

// TestParallelSweepRace is the race-detector target CI runs
// explicitly: concurrent isolated worlds, tracing enabled, nested
// EstablishAll concurrency inside each point — everything the
// parallel fabric shares (nothing) under -race scrutiny.
//
// The Result must match the serial run exactly (the fleet-level
// schedule-invariance promise: counters, per-step accounting and
// simulated end time are a function of the seed alone). The trace
// BYTES are deliberately not compared here: with EstablishAll
// parallelism > 1 inside a point, absolute fault timestamps and line
// order depend on goroutine interleaving even between two serial
// runs — a pre-existing engine property the chaos suite pins the same
// way (counters only). Byte-identical traces across worker counts are
// asserted by TestParallelSweepMatchesSerial on a parallelism-1
// scenario, the configuration whose trace is deterministic at all.
func TestParallelSweepRace(t *testing.T) {
	s := smallScenario(WorkloadBringup)
	s.Name = "race-sweep"
	s.Parallelism = 3
	s.Egress = canbus.EgressPolicy{Rate: 600, Queue: 128}
	s.SweepAxis = AxisDrop
	s.SweepPoints = []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08}

	var serial bytes.Buffer
	want, _, err := RunTracedWith(s, &serial, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var parallel bytes.Buffer
	got, timing, err := RunTracedWith(s, &parallel, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent traced run diverged from serial:\nserial   %+v\nparallel %+v", want, got)
	}
	if parallel.Len() == 0 || serial.Len() == 0 {
		t.Fatal("traced runs produced no trace")
	}
	if timing.Workers != 8 || timing.MaxInFlight < 1 || timing.MaxInFlight > 8 {
		t.Fatalf("timing implausible: %+v", timing)
	}
}

// TestRunRecordsPointError: one pathological sweep point must not
// abort the rest — its failure is recorded in place, index-aligned,
// and the emitted JSON still passes the schema gate.
func TestRunRecordsPointError(t *testing.T) {
	orig := runPointFn
	defer func() { runPointFn = orig }()
	runPointFn = func(s Scenario, v float64, axis Axis, tr *tracer) (Point, error) {
		if v == 0.05 {
			return Point{}, fmt.Errorf("injected fabric failure at %v", v)
		}
		return runPoint(s, v, axis, tr)
	}

	s := smallScenario(WorkloadLatency)
	s.SweepAxis = AxisDrop
	s.SweepPoints = []float64{0, 0.05, 0.10}
	var trace bytes.Buffer
	res, _, err := RunTracedWith(s, &trace, Options{Workers: 2})
	if err != nil {
		t.Fatalf("a failed point aborted the sweep: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("sweep lost points: %d of 3", len(res.Points))
	}
	bad := res.Points[1]
	if bad.Error == "" || !strings.Contains(bad.Error, "injected fabric failure") {
		t.Fatalf("failed point not recorded: %+v", bad)
	}
	if bad.Value != 0.05 || bad.Handshakes != 0 {
		t.Fatalf("failed point misrecorded: %+v", bad)
	}
	for _, i := range []int{0, 2} {
		if res.Points[i].Error != "" || res.Points[i].Handshakes != s.Peers {
			t.Fatalf("surviving point %d damaged: %+v", i, res.Points[i])
		}
	}
	if !strings.Contains(trace.String(), "point-error drop=0.0500: injected fabric failure") {
		t.Errorf("trace missing the point-error line:\n%s", trace.String())
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateJSON(buf.Bytes()); err != nil {
		t.Fatalf("result with a failed point fails the schema gate: %v", err)
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "injected fabric failure") {
		t.Error("CSV row lost the point error")
	}
}

// TestSharedEgressScenario: the shared-capacity variant threads
// through the scenario engine — aggregate-capped gateways are slower
// than per-flow-capped ones at the same nominal rate, and the run
// stays deterministic.
func TestSharedEgressScenario(t *testing.T) {
	perFlow := smallScenario(WorkloadLatency)
	perFlow.Profile = Profile{}
	perFlow.Egress = canbus.EgressPolicy{Rate: 400}
	shared := perFlow
	shared.Egress.Shared = true

	rPer, err := Run(perFlow)
	if err != nil {
		t.Fatal(err)
	}
	rShared, err := Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	if rShared.Points[0].Errors != 0 {
		t.Fatalf("shared-capacity egress failed handshakes: %+v", rShared.Points[0])
	}
	if rShared.Points[0].SimTimeUS <= rPer.Points[0].SimTimeUS {
		t.Errorf("shared capacity (%.0fus) not slower than per-flow (%.0fus) at the same rate",
			rShared.Points[0].SimTimeUS, rPer.Points[0].SimTimeUS)
	}
	again, err := Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, rShared) {
		t.Fatal("shared-capacity scenario not deterministic")
	}
}

// TestDuplicateSweepPoints: a sweep spec listing the same value twice
// measures it twice — two index-aligned, bit-identical points, never
// a silent dedup.
func TestDuplicateSweepPoints(t *testing.T) {
	s := smallScenario(WorkloadLatency)
	s.SweepAxis = AxisDrop
	s.SweepPoints = []float64{0.05, 0.05}
	res, _, err := RunWith(s, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("duplicate points collapsed: %d of 2", len(res.Points))
	}
	if !reflect.DeepEqual(res.Points[0], res.Points[1]) {
		t.Fatalf("identical sweep values measured differently:\n%+v\n%+v", res.Points[0], res.Points[1])
	}
}

// TestDayInLifeHonorsParallelism is the regression gate for the
// hardcoded EstablishAll(…, 1) bug: the day-in-the-life bringup and
// churn phases must request Scenario.Parallelism. The Result is
// schedule-invariant by contract, so the only observable evidence is
// the parallelism actually passed to the fleet — captured through the
// establishAllFn seam — plus a DeepEqual against the serial run to
// prove the measurements did not move.
func TestDayInLifeHonorsParallelism(t *testing.T) {
	dayInLife := func(parallelism int) Scenario {
		s := smallScenario(WorkloadDayInLife)
		s.Name = "day-in-life-par"
		s.Parallelism = parallelism
		return s
	}

	// Adversary-free day-in-the-life at Parallelism > 1 must validate:
	// the adversary × Parallelism>1 rejection only bites when
	// adversaries are configured.
	if err := dayInLife(3).Validate(); err != nil {
		t.Fatalf("adversary-free day-in-the-life at parallelism 3 rejected: %v", err)
	}
	armed := dayInLife(3)
	armed.Adversaries = []AdversaryConfig{{Kind: AdversaryReplay, Segment: -1}}
	if err := armed.Validate(); err == nil {
		t.Fatal("adversaries at parallelism 3 validated — the rejection must stay")
	}

	var calls []int
	orig := establishAllFn
	establishAllFn = func(m *fleet.Manager, peers []*core.Party, parallelism int) []error {
		calls = append(calls, parallelism)
		return m.EstablishAll(peers, parallelism)
	}
	defer func() { establishAllFn = orig }()

	res3, err := Run(dayInLife(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 { // bringup phase + churn phase
		t.Fatalf("day-in-the-life made %d EstablishAll calls, want 2: %v", len(calls), calls)
	}
	for i, p := range calls {
		if p != 3 {
			t.Fatalf("EstablishAll call %d requested parallelism %d, want 3 (the knob was ignored)", i, p)
		}
	}

	calls = nil
	res1, err := Run(dayInLife(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res3, res1) {
		t.Fatal("day-in-the-life measurements moved with parallelism — schedule invariance broken")
	}
	if len(res1.Points) != 1 || len(res1.Points[0].Phases) != 4 {
		t.Fatalf("composite phases damaged: %+v", res1.Points)
	}
	if len(res1.Points[0].Attacks) != 0 {
		t.Fatalf("adversary-free run reported attack accounting: %+v", res1.Points[0].Attacks)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, res1); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateJSON(buf.Bytes()); err != nil {
		t.Fatalf("adversary-free day-in-the-life fails the schema gate: %v", err)
	}
}

// TestZeroPointSweepRejected: the declared-but-empty sweep must be
// refused by every entry point instead of emitting an empty curve
// from a zero-worker run.
func TestZeroPointSweepRejected(t *testing.T) {
	s := smallScenario(WorkloadLatency)
	s.SweepAxis = AxisDrop
	s.SweepPoints = []float64{}
	if _, _, err := RunWith(s, Options{Workers: 4}); err == nil {
		t.Fatal("RunWith accepted a zero-point sweep")
	}
	if _, err := RunStreamWith(s, []PointSink{&collectSink{}}, Options{Workers: 4}); err == nil {
		t.Fatal("RunStreamWith accepted a zero-point sweep")
	}
}
