package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/canbus"
)

// -update regenerates the committed golden files (trace and schema).
var update = flag.Bool("update", false, "rewrite golden testdata files")

// smallScenario is a fast 3-segment scenario used across the tests.
func smallScenario(workload Workload) Scenario {
	return Scenario{
		Name:           "test-" + string(workload),
		Seed:           42,
		Peers:          3,
		Segments:       3,
		GatewayLatency: 50 * time.Microsecond,
		Profile:        Profile{Drop: 0.03, Corrupt: 0.01},
		Workload:       workload,
		Attempts:       10,
	}
}

func TestLatencyVsLossCurve(t *testing.T) {
	s := smallScenario(WorkloadLatency)
	s.SweepAxis = AxisDrop
	s.SweepPoints = []float64{0, 0.05, 0.10}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("measured %d points, want 3", len(res.Points))
	}
	lossless := res.Points[0]
	if lossless.Errors != 0 || lossless.Retransmits != 0 || lossless.MessageResends != 0 || lossless.Retries != 0 {
		t.Fatalf("lossless point paid recovery costs: %+v", lossless)
	}
	if lossless.Latency == nil || lossless.Latency.MeanUS <= 0 {
		t.Fatalf("lossless point has no latency: %+v", lossless.Latency)
	}
	for _, p := range res.Points[1:] {
		if p.Errors != 0 {
			t.Fatalf("%v loss failed %d handshakes", p.Value, p.Errors)
		}
		if p.BusDropped == 0 {
			t.Errorf("%v loss dropped no frames", p.Value)
		}
		if p.Retransmits+p.MessageResends+p.Retries == 0 {
			t.Errorf("%v loss forced no recovery", p.Value)
		}
		if p.Latency.MeanUS <= lossless.Latency.MeanUS {
			t.Errorf("mean latency %v at %v loss not above lossless %v",
				p.Latency.MeanUS, p.Value, lossless.Latency.MeanUS)
		}
	}
}

func TestPerStepAccountingCoversTableII(t *testing.T) {
	s := smallScenario(WorkloadLatency)
	s.Profile = Profile{Drop: 0.05}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	got := map[string]StepAccount{}
	for _, sa := range pt.Steps {
		got[sa.Step] = sa
	}
	for _, step := range []string{"A1", "B1", "A2", "B2"} {
		sa, ok := got[step]
		if !ok {
			t.Fatalf("Table II step %s missing from accounting: %+v", step, pt.Steps)
		}
		// Every converged handshake completes each step at least once.
		if sa.Messages < s.Peers {
			t.Errorf("step %s completed %d messages, want ≥ %d", step, sa.Messages, s.Peers)
		}
		if sa.Frames == 0 || sa.WireTimeUS == 0 {
			t.Errorf("step %s has no wire accounting: %+v", step, sa)
		}
	}
	// Per-step retransmit rows must sum to the endpoint aggregate.
	sum := 0
	for _, sa := range pt.Steps {
		sum += sa.Retransmits
	}
	if sum != pt.Retransmits {
		t.Errorf("per-step retransmits %d != aggregate %d", sum, pt.Retransmits)
	}
}

func TestRunDeterministic(t *testing.T) {
	s := smallScenario(WorkloadLatency)
	s.SweepAxis = AxisDrop
	s.SweepPoints = []float64{0.04, 0.08}
	r1, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same scenario diverged:\n%+v\n%+v", r1, r2)
	}
	var t1, t2 bytes.Buffer
	if _, err := RunTraced(s, &t1); err != nil {
		t.Fatal(err)
	}
	if _, err := RunTraced(s, &t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("same scenario produced different traces")
	}
}

func TestBringupWorkload(t *testing.T) {
	s := smallScenario(WorkloadBringup)
	s.Parallelism = 3
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Errors != 0 || pt.Handshakes != s.Peers {
		t.Fatalf("bring-up wrong: %+v", pt)
	}
	if pt.WorkloadTimeUS <= 0 {
		t.Error("no bring-up time measured")
	}
	if pt.GatewayForwarded == 0 {
		t.Error("multi-segment topology forwarded nothing")
	}
}

func TestChurnWorkload(t *testing.T) {
	s := smallScenario(WorkloadChurn)
	s.ChurnRounds = 2
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Churn == nil || pt.Churn.Rounds != 2 {
		t.Fatalf("churn stats missing: %+v", pt.Churn)
	}
	// 3 peers → 2 even-indexed churners per round.
	wantHS := s.Peers + 2*pt.Churn.PeersPerRound
	if pt.Errors != 0 || pt.Handshakes != wantHS {
		t.Fatalf("churn ran %d handshakes with %d errors, want %d/0", pt.Handshakes, pt.Errors, wantHS)
	}
	if pt.Churn.MeanRoundTimeUS <= 0 || pt.Churn.MaxRoundTimeUS < pt.Churn.MeanRoundTimeUS {
		t.Errorf("round time stats implausible: %+v", pt.Churn)
	}
}

func TestEgressCongestionSlowsBringup(t *testing.T) {
	fast := smallScenario(WorkloadLatency)
	fast.Profile = Profile{}
	slow := fast
	// 200 frames/s: a 5 ms serialization gap per forwarded frame,
	// roughly 10× a frame's wire time — congestion that must dominate.
	slow.Egress = canbus.EgressPolicy{Rate: 200}
	rFast, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Points[0].Errors != 0 {
		t.Fatalf("congestion failed handshakes: %+v", rSlow.Points[0])
	}
	if rSlow.Points[0].Latency.MeanUS <= rFast.Points[0].Latency.MeanUS {
		t.Errorf("congested gateway (%.1fus) not slower than uncongested (%.1fus)",
			rSlow.Points[0].Latency.MeanUS, rFast.Points[0].Latency.MeanUS)
	}
}

// TestCongestedBringupScheduleInvariant is the engine-level version of
// the fleet chaos assertion: a bring-up sweep through egress-congested
// gateways measures the identical Result — every counter, latency and
// simulated time — at any EstablishAll parallelism. This was the
// documented hole PR 4 left open ("keep parallelism 1 there").
func TestCongestedBringupScheduleInvariant(t *testing.T) {
	base := smallScenario(WorkloadBringup)
	base.Name = "congested-invariance"
	// 600 frames/s ⇒ ~1.7 ms release gap per conversation flow:
	// solidly congested next to the ~0.4 ms frame wire time.
	base.Egress = canbus.EgressPolicy{Rate: 600, Queue: 128}
	base.SweepAxis = AxisDrop
	base.SweepPoints = []float64{0, 0.03}

	serial := base
	serial.Parallelism = 1
	want, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range want.Points {
		if pt.Errors != 0 {
			t.Fatalf("congested serial sweep failed handshakes: %+v", pt)
		}
	}
	for _, parallelism := range []int{3, 8} {
		conc := base
		conc.Parallelism = parallelism
		got, err := Run(conc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d changed the congested sweep:\nserial   %+v\nparallel %+v", parallelism, want, got)
		}
	}
}

// TestQueueTimeAccountedUnderCongestion: the per-step rows of a
// congested run must carry queueing delay, and an uncongested run must
// not.
func TestQueueTimeAccountedUnderCongestion(t *testing.T) {
	open := smallScenario(WorkloadLatency)
	open.Profile = Profile{}
	congested := open
	congested.Egress = canbus.EgressPolicy{Rate: 200}

	rOpen, err := Run(open)
	if err != nil {
		t.Fatal(err)
	}
	rCong, err := Run(congested)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(r *Result) float64 {
		var q float64
		for _, sa := range r.Points[0].Steps {
			q += sa.QueueTimeUS
		}
		return q
	}
	if q := sum(rCong); q <= 0 {
		t.Errorf("congested run accounted no per-step queueing delay: %+v", rCong.Points[0].Steps)
	}
	if q := sum(rOpen); q >= sum(rCong) {
		t.Errorf("uncongested queue time %.1fus not below congested %.1fus", q, sum(rCong))
	}
}

func TestValidateJSONRoundTrip(t *testing.T) {
	s := smallScenario(WorkloadLatency)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateJSON(buf.Bytes()); err != nil {
		t.Fatalf("emitted JSON failed its own schema check: %v", err)
	}

	// An unknown field — schema drift in the writer — must fail.
	drifted := bytes.Replace(buf.Bytes(), []byte(`"schema_version"`), []byte(`"stray_field": 1, "schema_version"`), 1)
	if _, err := ValidateJSON(drifted); err == nil {
		t.Error("unknown field passed the schema check")
	}
	// A renamed required field must fail.
	renamed := bytes.Replace(buf.Bytes(), []byte(`"points"`), []byte(`"samples"`), 1)
	if _, err := ValidateJSON(renamed); err == nil {
		t.Error("renamed points field passed the schema check")
	}
	// A wrong schema version must fail.
	var generic map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatal(err)
	}
	generic["schema_version"] = SchemaVersion + 1
	bumped, _ := json.Marshal(generic)
	if _, err := ValidateJSON(bumped); err == nil {
		t.Error("future schema version passed the check")
	}
}

func TestWriteCSV(t *testing.T) {
	s := smallScenario(WorkloadLatency)
	s.SweepAxis = AxisDrop
	s.SweepPoints = []float64{0, 0.05}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 points", len(lines))
	}
	if got := strings.Count(lines[0], ","); got != len(csvHeader)-1 {
		t.Errorf("header has %d commas, want %d", got, len(csvHeader)-1)
	}
	for i, line := range lines[1:] {
		if strings.Count(line, ",") != len(csvHeader)-1 {
			t.Errorf("row %d column count mismatch: %s", i, line)
		}
	}
}

func TestSweepOtherAxes(t *testing.T) {
	s := smallScenario(WorkloadLatency)
	s.Profile = Profile{}
	s.SweepAxis = AxisCorrupt
	s.SweepPoints = []float64{0, 0.05}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Axis != AxisCorrupt || res.Points[1].BusCorrupted == 0 {
		t.Fatalf("corrupt sweep did not corrupt: %+v", res.Points[1])
	}
	if res.Points[0].BusCorrupted != 0 {
		t.Errorf("corrupt sweep at 0 corrupted frames: %+v", res.Points[0])
	}

	s.SweepAxis = AxisDuplicate
	res, err = Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[1].BusDuplicated == 0 {
		t.Fatalf("duplicate sweep did not duplicate: %+v", res.Points[1])
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{},                       // no name / peers
		{Name: "x"},              // no peers
		{Name: "x", Peers: 1000}, // ID block overflow
		{Name: "x", Peers: 2, Workload: "warp"},
		{Name: "x", Peers: 2, Profile: Profile{Drop: 1.5}},
		{Name: "x", Peers: 2, SweepAxis: "phase"},
		{Name: "x", Peers: 2, SweepPoints: []float64{0.5}}, // points without axis
		{Name: "x", Peers: 2, SweepAxis: AxisDrop, SweepPoints: []float64{2}},
		// A declared-but-empty sweep used to clamp workers to 0 and
		// emit an empty curve with Timing.Workers=0 and no diagnostic;
		// now it is a validation error.
		{Name: "x", Peers: 2, SweepAxis: AxisDrop, SweepPoints: []float64{}},
		// The one egress × concurrency corner that is still not
		// schedule-invariant: a trailing duplicate can be gated when
		// the workload ends, so which run counts it is scheduling.
		{Name: "x", Peers: 2, Egress: canbus.EgressPolicy{Rate: 100}, Parallelism: 4, Profile: Profile{Duplicate: 0.05}},
		{Name: "x", Peers: 2, Egress: canbus.EgressPolicy{Rate: 100}, Parallelism: 4, SweepAxis: AxisDuplicate, SweepPoints: []float64{0.05}},
		// Shared-capacity egress couples flows through the aggregate
		// rate, so concurrent conversation admission is schedule-
		// dependent by design — rejected at parallelism > 1.
		{Name: "x", Peers: 2, Egress: canbus.EgressPolicy{Rate: 100, Shared: true}, Parallelism: 4},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("scenario %d validated: %+v", i, s)
		}
	}
	good := smallScenario(WorkloadLatency)
	if err := good.Validate(); err != nil {
		t.Errorf("good scenario rejected: %v", err)
	}
	// The fair-queuing scheduler made congested concurrent sweeps
	// schedule-invariant, so (absent duplication) they validate now.
	congested := smallScenario(WorkloadBringup)
	congested.Egress = canbus.EgressPolicy{Rate: 400, Queue: 64}
	congested.Parallelism = 8
	if err := congested.Validate(); err != nil {
		t.Errorf("congested concurrent scenario rejected: %v", err)
	}
	// Shared capacity is fine serially (and at any sweep-point worker
	// count — points never share a port).
	sharedSerial := smallScenario(WorkloadBringup)
	sharedSerial.Egress = canbus.EgressPolicy{Rate: 400, Queue: 64, Shared: true}
	if err := sharedSerial.Validate(); err != nil {
		t.Errorf("serial shared-capacity scenario rejected: %v", err)
	}
}

// jsonKeyPaths walks a JSON document and returns every object key as
// a dotted path (arrays collapse to []), the schema fingerprint the
// golden schema file pins.
func jsonKeyPaths(v any, prefix string, into map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			into[p] = true
			jsonKeyPaths(sub, p, into)
		}
	case []any:
		for _, sub := range x {
			jsonKeyPaths(sub, prefix+"[]", into)
		}
	}
}

func TestResultSchemaGolden(t *testing.T) {
	s := smallScenario(WorkloadChurn) // churn populates every optional block except latency
	s.Egress = canbus.EgressPolicy{Rate: 5000, Queue: 64}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := Run(smallScenario(WorkloadLatency))
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	for _, r := range []*Result{res, lat} {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var generic any
		if err := json.Unmarshal(raw, &generic); err != nil {
			t.Fatal(err)
		}
		jsonKeyPaths(generic, "", paths)
	}
	var sorted []string
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	got := strings.Join(sorted, "\n") + "\n"
	compareGolden(t, "testdata/schema.golden", []byte(got))
}
