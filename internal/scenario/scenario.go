// Package scenario is the declarative measurement engine on top of
// the impairment-aware CAN fabric: a Scenario names a topology, an
// impairment profile, a workload and a sweep axis, and Run drives the
// session-establishment fleet over the simulated multi-segment
// network, emitting structured measurements — handshake-latency-vs-
// loss-rate curves, per-Table-II-step retransmission and overhead
// accounting, fleet bring-up under churn — as JSON or CSV.
//
// This turns the chaos fabric of internal/canbus, internal/cantp and
// internal/transport from a test fixture into an instrument: the
// paper's cost claims (Table II) are stated for a lossless bus, and
// the scenario engine measures how they degrade when the bus does.
// Every run is seeded and every fault decision content-keyed, so a
// published curve is exactly reproducible from its scenario
// definition.
package scenario

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/canbus"
)

// Workload selects what the fleet does during a measurement point.
type Workload string

const (
	// WorkloadLatency runs one handshake per peer, serially, and
	// records each handshake's simulated-time cost (retries included)
	// — the latency-vs-loss curve workload.
	WorkloadLatency Workload = "latency"
	// WorkloadBringup establishes the whole fleet through
	// EstablishAll and records the total bring-up time.
	WorkloadBringup Workload = "bringup"
	// WorkloadChurn brings the fleet up, then repeatedly drops and
	// re-establishes half of it, modelling vehicles leaving and
	// rejoining a group.
	WorkloadChurn Workload = "churn"
	// WorkloadAttack runs the latency workload's serial handshake
	// loop with the scenario's adversaries armed, then executes any
	// deferred attack phases (the replay attacker re-injects its
	// recordings). Victim-handshake latency percentiles plus
	// per-attack accounting are the measurements. Requires at least
	// one adversary and Parallelism 1 (attack timing is keyed to the
	// shared simulated clock, so conversation interleaving inside a
	// point would change what the adversary observes).
	WorkloadAttack Workload = "attack"
	// WorkloadDayInLife is the composite duty cycle: fleet bring-up,
	// one steady-traffic rekey round, one churn round, then a single
	// attack burst (handshake round with adversaries armed) — each
	// phase timed separately. Adversaries are optional: without any,
	// the attack phase degrades to a second rekey round and the result
	// carries no attack accounting — the benign duty cycle. With
	// adversaries, the same parallelism rules as WorkloadAttack apply
	// (Parallelism 1); adversary-free configs may set Parallelism > 1
	// and the bring-up/churn phases honor it.
	WorkloadDayInLife Workload = "day-in-the-life"
)

// Axis names the impairment rate a sweep varies.
type Axis string

const (
	// AxisDrop sweeps the per-frame drop probability.
	AxisDrop Axis = "drop"
	// AxisCorrupt sweeps the per-frame corruption probability.
	AxisCorrupt Axis = "corrupt"
	// AxisDuplicate sweeps the per-frame duplication probability.
	AxisDuplicate Axis = "duplicate"
	// AxisAttack sweeps adversary intensity instead of an impairment
	// rate: every configured adversary's Intensity is overridden by
	// the sweep value (babble rate in frames/s, inject probability,
	// partition window in seconds, replay session cap). Values are
	// not confined to [0,1] unless an inject adversary is configured.
	AxisAttack Axis = "attack"
)

// Profile is the per-segment impairment profile applied to every bus
// of the topology (content-keyed per bus through BusID, so segments
// fault independently).
type Profile struct {
	Drop      float64       `json:"drop"`
	Corrupt   float64       `json:"corrupt"`
	Duplicate float64       `json:"duplicate"`
	DelayRate float64       `json:"delay_rate"`
	Delay     time.Duration `json:"delay_ns"`
}

// Scenario is one declarative measurement definition.
type Scenario struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`

	// Topology: the manager sits on segment 0, the peers on the last
	// segment, with a chain of gateways in between (Segments = 1 puts
	// everyone on one bus). GatewayLatency is the per-hop
	// store-and-forward cost; a non-zero Egress policy congests every
	// gateway port.
	Peers          int                 `json:"peers"`
	Segments       int                 `json:"segments"`
	GatewayLatency time.Duration       `json:"gateway_latency_ns"`
	Egress         canbus.EgressPolicy `json:"egress"`

	Profile  Profile  `json:"profile"`
	Workload Workload `json:"workload"`

	// Sweep varies one impairment axis across Points; an empty sweep
	// measures the base profile once.
	SweepAxis   Axis      `json:"sweep_axis,omitempty"`
	SweepPoints []float64 `json:"sweep_points,omitempty"`

	// Attempts is the per-handshake retry budget (default 10).
	Attempts int `json:"attempts"`
	// Parallelism is the EstablishAll worker count for the bringup
	// and churn workloads (default 1; the latency workload is serial
	// by definition). Any value reproduces the same trace: fault
	// decisions are content-keyed, every conversation draws private
	// randomness, and congested gateway ports schedule releases per
	// conversation flow (fair queuing), so the counters are
	// schedule-invariant even when Egress rate-limits the gateways.
	// The one remaining exception is duplicate impairment combined
	// with a rate-limited Egress policy: a trailing duplicate frame
	// may still be gated when the workload ends, and which run counts
	// it depends on scheduling — Validate rejects that combination at
	// Parallelism > 1.
	Parallelism int `json:"parallelism"`
	// ChurnRounds is the number of drop/re-establish rounds of the
	// churn workload (default 3).
	ChurnRounds int `json:"churn_rounds,omitempty"`

	// Adversaries arms the attack workloads (and only those: Validate
	// rejects adversaries on benign workloads, and rejects the attack
	// workload without adversaries; day-in-the-life runs with or
	// without them). Each runs on the point's private fabric with its
	// own detrand stream, so the whole attack is schedule-invariant
	// across sweep workers.
	Adversaries []AdversaryConfig `json:"adversaries,omitempty"`
}

// withDefaults fills unset knobs.
func (s Scenario) withDefaults() Scenario {
	if s.Segments <= 0 {
		s.Segments = 3
	}
	if s.Attempts <= 0 {
		s.Attempts = 10
	}
	if s.Parallelism <= 0 {
		s.Parallelism = 1
	}
	if s.ChurnRounds <= 0 {
		s.ChurnRounds = 3
	}
	if s.Workload == "" {
		s.Workload = WorkloadLatency
	}
	if s.GatewayLatency < 0 {
		s.GatewayLatency = 0
	}
	return s
}

// Validate rejects unrunnable scenarios.
func (s Scenario) Validate() error {
	s = s.withDefaults()
	if s.Name == "" {
		return errors.New("scenario: empty name")
	}
	if s.Peers < 1 {
		return fmt.Errorf("scenario: %d peers", s.Peers)
	}
	if s.Peers > 0xFF {
		return fmt.Errorf("scenario: %d peers exceed the CAN ID block", s.Peers)
	}
	switch s.Workload {
	case WorkloadLatency, WorkloadBringup, WorkloadChurn, WorkloadAttack, WorkloadDayInLife:
	default:
		return fmt.Errorf("scenario: unknown workload %q", s.Workload)
	}
	switch s.SweepAxis {
	case "", AxisDrop, AxisCorrupt, AxisDuplicate, AxisAttack:
	default:
		return fmt.Errorf("scenario: unknown sweep axis %q", s.SweepAxis)
	}
	if len(s.SweepPoints) > 0 && s.SweepAxis == "" {
		return errors.New("scenario: sweep points without an axis")
	}
	if s.SweepPoints != nil && len(s.SweepPoints) == 0 {
		return errors.New("scenario: sweep declared with zero points (a zero-point run would emit an empty curve and report 0 workers)")
	}
	for _, rate := range [...]float64{s.Profile.Drop, s.Profile.Corrupt, s.Profile.Duplicate, s.Profile.DelayRate} {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("scenario: impairment rate %v out of [0,1]", rate)
		}
	}
	for _, p := range s.SweepPoints {
		if s.SweepAxis == AxisAttack {
			// Attack intensities are kind-scaled (frames/s, seconds,
			// session counts), not rates; only the inject probability
			// is a rate, checked below.
			if p < 0 {
				return fmt.Errorf("scenario: negative attack sweep point %v", p)
			}
			continue
		}
		if p < 0 || p > 1 {
			return fmt.Errorf("scenario: sweep point %v out of [0,1]", p)
		}
	}
	if err := s.validateAdversaries(); err != nil {
		return err
	}
	if s.Egress.Rate < 0 || s.Egress.Queue < 0 {
		return errors.New("scenario: negative egress policy")
	}
	if s.Egress.Shared && s.Egress.Rate > 0 && s.Parallelism > 1 {
		// Shared capacity couples conversations through one aggregate
		// rate by design: the release schedule depends on which flows
		// are backlogged when, i.e. on the order whole conversations
		// are admitted — exactly what EstablishAll parallelism
		// permutes. Per-flow egress (Shared=false) stays
		// schedule-invariant; sweep-point workers (Options.Workers)
		// are always fine either way, because points never share a
		// port.
		return errors.New("scenario: shared-capacity egress requires parallelism 1 (flows couple through the aggregate rate, so the schedule depends on conversation admission order)")
	}
	if s.Egress.Rate > 0 && s.Parallelism > 1 && (s.Profile.Duplicate > 0 || s.SweepAxis == AxisDuplicate) {
		// Rate-gated ports with the fair-queuing scheduler are
		// schedule-invariant per conversation flow, but a duplicated
		// frame's second copy can still be gated when the workload
		// ends — and whether its release (and the counters it moves)
		// lands before the measurement is read then depends on which
		// conversation finished last. Everything else about egress ×
		// concurrency is reproducible; this corner is not, so reject
		// it rather than publish a flaky curve.
		return errors.New("scenario: duplicate impairment with a rate-limited egress policy requires parallelism 1 (a trailing duplicate may still be gated when the workload ends)")
	}
	return nil
}

// attackWorkload reports whether the workload arms adversaries.
func (s Scenario) attackWorkload() bool {
	return s.Workload == WorkloadAttack || s.Workload == WorkloadDayInLife
}

// validateAdversaries enforces the adversarial-workload contract: the
// attack workload needs at least one adversary (day-in-the-life is a
// duty cycle first, so it runs adversary-free too), adversaries never
// ride benign workloads, armed points run at Parallelism 1 (adversary
// decisions are keyed to the shared simulated clock, so conversation
// interleaving inside a point would change what the attacker observes
// — sweep-point workers stay free, each point's fabric is private),
// and every config resolves to a real target on the topology.
func (s Scenario) validateAdversaries() error {
	if s.Workload == WorkloadAttack && len(s.Adversaries) == 0 {
		return fmt.Errorf("scenario: workload %q needs at least one adversary", s.Workload)
	}
	if !s.attackWorkload() && len(s.Adversaries) > 0 {
		return fmt.Errorf("scenario: adversaries configured on benign workload %q", s.Workload)
	}
	if s.SweepAxis == AxisAttack && len(s.Adversaries) == 0 {
		return errors.New("scenario: attack sweep axis without adversaries")
	}
	if len(s.Adversaries) > 0 && s.Parallelism > 1 {
		return errors.New("scenario: adversaries require parallelism 1 (attack timing is keyed to the shared simulated clock, so conversation interleaving inside a point changes what the adversary observes)")
	}
	for i, cfg := range s.Adversaries {
		switch cfg.Kind {
		case AdversaryReplay, AdversaryInject, AdversaryBabble, AdversaryPartition:
		default:
			return fmt.Errorf("scenario: adversary %d: unknown kind %q", i, cfg.Kind)
		}
		if cfg.Segment >= s.Segments {
			return fmt.Errorf("scenario: adversary %d: segment %d outside the %d-segment topology", i, cfg.Segment, s.Segments)
		}
		if cfg.Intensity < 0 {
			return fmt.Errorf("scenario: adversary %d: negative intensity", i)
		}
		if cfg.Start < 0 {
			return fmt.Errorf("scenario: adversary %d: negative start", i)
		}
		if cfg.Kind == AdversaryInject {
			if cfg.Intensity > 1 {
				return fmt.Errorf("scenario: adversary %d: inject probability %v out of [0,1]", i, cfg.Intensity)
			}
			if s.SweepAxis == AxisAttack {
				for _, p := range s.SweepPoints {
					if p > 1 {
						return fmt.Errorf("scenario: attack sweep point %v exceeds the inject probability range [0,1]", p)
					}
				}
			}
		}
		if cfg.Kind == AdversaryPartition {
			if s.Segments < 2 {
				return fmt.Errorf("scenario: adversary %d: partition needs at least 2 segments", i)
			}
			if seg := resolveSegment(cfg, s.Segments); seg < 1 {
				return fmt.Errorf("scenario: adversary %d: partition segment %d has no upstream gateway link", i, seg)
			}
		}
	}
	return nil
}

// points returns the sweep values to measure, or the base profile's
// own axis value when no sweep was declared. A declared-but-empty
// sweep (non-nil, zero points) never reaches here: Validate rejects it
// — it used to fall through to a zero-point run that clamped the
// worker count to 0 and emitted an empty curve with no diagnostic.
func (s Scenario) points() []float64 {
	if s.SweepPoints != nil {
		return s.SweepPoints
	}
	return []float64{s.axisValue(s.Profile)}
}

// axisValue reads the swept rate out of a profile.
func (s Scenario) axisValue(p Profile) float64 {
	switch s.SweepAxis {
	case AxisCorrupt:
		return p.Corrupt
	case AxisDuplicate:
		return p.Duplicate
	case AxisAttack:
		if len(s.Adversaries) > 0 {
			return s.Adversaries[0].Intensity
		}
		return 0
	default:
		return p.Drop
	}
}

// profileAt returns the profile with the swept axis set to v.
func (s Scenario) profileAt(v float64) Profile {
	p := s.Profile
	switch s.SweepAxis {
	case AxisCorrupt:
		p.Corrupt = v
	case AxisDuplicate:
		p.Duplicate = v
	case AxisDrop, "":
		if len(s.SweepPoints) > 0 {
			p.Drop = v
		}
	}
	return p
}

// adversariesAt returns the adversary configs for one sweep point: a
// copy of the declared configs, with every Intensity overridden by
// the sweep value when the attack axis is being swept.
func (s Scenario) adversariesAt(v float64) []AdversaryConfig {
	if len(s.Adversaries) == 0 {
		return nil
	}
	out := append([]AdversaryConfig(nil), s.Adversaries...)
	if s.SweepAxis == AxisAttack {
		for i := range out {
			out[i].Intensity = v
		}
	}
	return out
}
