// Package scenario is the declarative measurement engine on top of
// the impairment-aware CAN fabric: a Scenario names a topology, an
// impairment profile, a workload and a sweep axis, and Run drives the
// session-establishment fleet over the simulated multi-segment
// network, emitting structured measurements — handshake-latency-vs-
// loss-rate curves, per-Table-II-step retransmission and overhead
// accounting, fleet bring-up under churn — as JSON or CSV.
//
// This turns the chaos fabric of internal/canbus, internal/cantp and
// internal/transport from a test fixture into an instrument: the
// paper's cost claims (Table II) are stated for a lossless bus, and
// the scenario engine measures how they degrade when the bus does.
// Every run is seeded and every fault decision content-keyed, so a
// published curve is exactly reproducible from its scenario
// definition.
package scenario

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/canbus"
)

// Workload selects what the fleet does during a measurement point.
type Workload string

const (
	// WorkloadLatency runs one handshake per peer, serially, and
	// records each handshake's simulated-time cost (retries included)
	// — the latency-vs-loss curve workload.
	WorkloadLatency Workload = "latency"
	// WorkloadBringup establishes the whole fleet through
	// EstablishAll and records the total bring-up time.
	WorkloadBringup Workload = "bringup"
	// WorkloadChurn brings the fleet up, then repeatedly drops and
	// re-establishes half of it, modelling vehicles leaving and
	// rejoining a group.
	WorkloadChurn Workload = "churn"
)

// Axis names the impairment rate a sweep varies.
type Axis string

const (
	AxisDrop      Axis = "drop"
	AxisCorrupt   Axis = "corrupt"
	AxisDuplicate Axis = "duplicate"
)

// Profile is the per-segment impairment profile applied to every bus
// of the topology (content-keyed per bus through BusID, so segments
// fault independently).
type Profile struct {
	Drop      float64       `json:"drop"`
	Corrupt   float64       `json:"corrupt"`
	Duplicate float64       `json:"duplicate"`
	DelayRate float64       `json:"delay_rate"`
	Delay     time.Duration `json:"delay_ns"`
}

// Scenario is one declarative measurement definition.
type Scenario struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`

	// Topology: the manager sits on segment 0, the peers on the last
	// segment, with a chain of gateways in between (Segments = 1 puts
	// everyone on one bus). GatewayLatency is the per-hop
	// store-and-forward cost; a non-zero Egress policy congests every
	// gateway port.
	Peers          int                 `json:"peers"`
	Segments       int                 `json:"segments"`
	GatewayLatency time.Duration       `json:"gateway_latency_ns"`
	Egress         canbus.EgressPolicy `json:"egress"`

	Profile  Profile  `json:"profile"`
	Workload Workload `json:"workload"`

	// Sweep varies one impairment axis across Points; an empty sweep
	// measures the base profile once.
	SweepAxis   Axis      `json:"sweep_axis,omitempty"`
	SweepPoints []float64 `json:"sweep_points,omitempty"`

	// Attempts is the per-handshake retry budget (default 10).
	Attempts int `json:"attempts"`
	// Parallelism is the EstablishAll worker count for the bringup
	// and churn workloads (default 1; the latency workload is serial
	// by definition). Any value reproduces the same trace: fault
	// decisions are content-keyed, every conversation draws private
	// randomness, and congested gateway ports schedule releases per
	// conversation flow (fair queuing), so the counters are
	// schedule-invariant even when Egress rate-limits the gateways.
	// The one remaining exception is duplicate impairment combined
	// with a rate-limited Egress policy: a trailing duplicate frame
	// may still be gated when the workload ends, and which run counts
	// it depends on scheduling — Validate rejects that combination at
	// Parallelism > 1.
	Parallelism int `json:"parallelism"`
	// ChurnRounds is the number of drop/re-establish rounds of the
	// churn workload (default 3).
	ChurnRounds int `json:"churn_rounds,omitempty"`
}

// withDefaults fills unset knobs.
func (s Scenario) withDefaults() Scenario {
	if s.Segments <= 0 {
		s.Segments = 3
	}
	if s.Attempts <= 0 {
		s.Attempts = 10
	}
	if s.Parallelism <= 0 {
		s.Parallelism = 1
	}
	if s.ChurnRounds <= 0 {
		s.ChurnRounds = 3
	}
	if s.Workload == "" {
		s.Workload = WorkloadLatency
	}
	if s.GatewayLatency < 0 {
		s.GatewayLatency = 0
	}
	return s
}

// Validate rejects unrunnable scenarios.
func (s Scenario) Validate() error {
	s = s.withDefaults()
	if s.Name == "" {
		return errors.New("scenario: empty name")
	}
	if s.Peers < 1 {
		return fmt.Errorf("scenario: %d peers", s.Peers)
	}
	if s.Peers > 0xFF {
		return fmt.Errorf("scenario: %d peers exceed the CAN ID block", s.Peers)
	}
	switch s.Workload {
	case WorkloadLatency, WorkloadBringup, WorkloadChurn:
	default:
		return fmt.Errorf("scenario: unknown workload %q", s.Workload)
	}
	switch s.SweepAxis {
	case "", AxisDrop, AxisCorrupt, AxisDuplicate:
	default:
		return fmt.Errorf("scenario: unknown sweep axis %q", s.SweepAxis)
	}
	if len(s.SweepPoints) > 0 && s.SweepAxis == "" {
		return errors.New("scenario: sweep points without an axis")
	}
	for _, rate := range [...]float64{s.Profile.Drop, s.Profile.Corrupt, s.Profile.Duplicate, s.Profile.DelayRate} {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("scenario: impairment rate %v out of [0,1]", rate)
		}
	}
	for _, p := range s.SweepPoints {
		if p < 0 || p > 1 {
			return fmt.Errorf("scenario: sweep point %v out of [0,1]", p)
		}
	}
	if s.Egress.Rate < 0 || s.Egress.Queue < 0 {
		return errors.New("scenario: negative egress policy")
	}
	if s.Egress.Shared && s.Egress.Rate > 0 && s.Parallelism > 1 {
		// Shared capacity couples conversations through one aggregate
		// rate by design: the release schedule depends on which flows
		// are backlogged when, i.e. on the order whole conversations
		// are admitted — exactly what EstablishAll parallelism
		// permutes. Per-flow egress (Shared=false) stays
		// schedule-invariant; sweep-point workers (Options.Workers)
		// are always fine either way, because points never share a
		// port.
		return errors.New("scenario: shared-capacity egress requires parallelism 1 (flows couple through the aggregate rate, so the schedule depends on conversation admission order)")
	}
	if s.Egress.Rate > 0 && s.Parallelism > 1 && (s.Profile.Duplicate > 0 || s.SweepAxis == AxisDuplicate) {
		// Rate-gated ports with the fair-queuing scheduler are
		// schedule-invariant per conversation flow, but a duplicated
		// frame's second copy can still be gated when the workload
		// ends — and whether its release (and the counters it moves)
		// lands before the measurement is read then depends on which
		// conversation finished last. Everything else about egress ×
		// concurrency is reproducible; this corner is not, so reject
		// it rather than publish a flaky curve.
		return errors.New("scenario: duplicate impairment with a rate-limited egress policy requires parallelism 1 (a trailing duplicate may still be gated when the workload ends)")
	}
	return nil
}

// points returns the sweep values to measure, or the base profile's
// own axis value for an empty sweep.
func (s Scenario) points() []float64 {
	if len(s.SweepPoints) > 0 {
		return s.SweepPoints
	}
	return []float64{s.axisValue(s.Profile)}
}

// axisValue reads the swept rate out of a profile.
func (s Scenario) axisValue(p Profile) float64 {
	switch s.SweepAxis {
	case AxisCorrupt:
		return p.Corrupt
	case AxisDuplicate:
		return p.Duplicate
	default:
		return p.Drop
	}
}

// profileAt returns the profile with the swept axis set to v.
func (s Scenario) profileAt(v float64) Profile {
	p := s.Profile
	switch s.SweepAxis {
	case AxisCorrupt:
		p.Corrupt = v
	case AxisDuplicate:
		p.Duplicate = v
	case AxisDrop, "":
		if len(s.SweepPoints) > 0 {
			p.Drop = v
		}
	}
	return p
}
