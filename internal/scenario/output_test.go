package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// validResultJSON builds a minimal valid current-version result
// document for mutation-based ValidateJSON tests.
func validResultJSON(t *testing.T) []byte {
	t.Helper()
	res, err := Run(smallScenario(WorkloadLatency))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestValidateJSONRejectsTrailingContent: a decoder stops at the end
// of the first JSON value, so garbage (or a second document) after the
// result used to pass silently. It must be rejected.
func TestValidateJSONRejectsTrailingContent(t *testing.T) {
	doc := validResultJSON(t)
	for _, trailing := range []string{"{}", "null", `"x"`, "[1,2]"} {
		bad := append(append([]byte{}, doc...), []byte(trailing)...)
		_, err := ValidateJSON(bad)
		if err == nil {
			t.Errorf("trailing %q passed validation", trailing)
			continue
		}
		if !strings.Contains(err.Error(), "trailing content") {
			t.Errorf("trailing %q rejected for the wrong reason: %v", trailing, err)
		}
	}
	// Trailing whitespace is not content; it must still pass.
	if _, err := ValidateJSON(append(append([]byte{}, doc...), []byte("\n  \n")...)); err != nil {
		t.Errorf("trailing whitespace rejected: %v", err)
	}
}

// TestValidateJSONUnknownKeySymmetry pins the fix for the asymmetry
// where an old-version document with an unknown top-level key was
// reported as schema drift (whichever unknown key the strict decoder
// tripped on first) instead of as the version mismatch it is. The
// contract: version errors always win; unknown keys on a
// current-version document are schema drift.
func TestValidateJSONUnknownKeySymmetry(t *testing.T) {
	doc := validResultJSON(t)
	var generic map[string]any
	if err := json.Unmarshal(doc, &generic); err != nil {
		t.Fatal(err)
	}

	// Unknown key, current version: schema drift naming the key.
	generic["relic_field"] = true
	drifted, _ := json.Marshal(generic)
	if _, err := ValidateJSON(drifted); err == nil {
		t.Error("unknown key on current-version doc passed")
	} else if !strings.Contains(err.Error(), "schema drift") || !strings.Contains(err.Error(), "relic_field") {
		t.Errorf("drift error unhelpful: %v", err)
	}

	// Same unknown key, old version: the version mismatch must be the
	// reported error, for every old version — not just the ones whose
	// field sets happen to decode cleanly.
	for _, v := range []int{1, 2, 3} {
		generic["schema_version"] = v
		old, _ := json.Marshal(generic)
		_, err := ValidateJSON(old)
		if err == nil {
			t.Fatalf("v%d doc passed a v%d validator", v, SchemaVersion)
		}
		want := fmt.Sprintf("schema version %d, tool expects %d", v, SchemaVersion)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("v%d doc with unknown key reported %q, want version mismatch %q", v, err, want)
		}
	}
}

// TestValidateJSONMissingVersion: a document with no schema_version at
// all says so, rather than reporting a zero-vs-current mismatch.
func TestValidateJSONMissingVersion(t *testing.T) {
	doc := validResultJSON(t)
	var generic map[string]any
	if err := json.Unmarshal(doc, &generic); err != nil {
		t.Fatal(err)
	}
	delete(generic, "schema_version")
	stripped, _ := json.Marshal(generic)
	_, err := ValidateJSON(stripped)
	if err == nil {
		t.Fatal("versionless doc passed")
	}
	if !strings.Contains(err.Error(), "no schema_version") {
		t.Errorf("versionless doc reported %q", err)
	}
}

// TestValidateJSONRefusesAcceptedReplays: the schema gate doubles as
// the security gate — a curve that records a successful replay must
// never validate, so it can never land in BENCH_scenarios.json.
func TestValidateJSONRefusesAcceptedReplays(t *testing.T) {
	res, err := Run(attackScenario(AdversaryReplay, 0))
	if err != nil {
		t.Fatal(err)
	}
	res.Points[0].Attacks[0].AcceptedReplays = 1
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	_, err = ValidateJSON(buf.Bytes())
	if err == nil {
		t.Fatal("result with an accepted replay validated")
	}
	if !strings.Contains(err.Error(), "security regression") {
		t.Errorf("accepted-replay rejection unhelpful: %v", err)
	}
}

// TestValidateJSONAttackInvariants: attack points must carry
// accounting with known adversary kinds.
func TestValidateJSONAttackInvariants(t *testing.T) {
	res, err := Run(attackScenario(AdversaryBabble, 2000))
	if err != nil {
		t.Fatal(err)
	}

	marshal := func() []byte {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if _, err := ValidateJSON(marshal()); err != nil {
		t.Fatalf("valid attack result rejected: %v", err)
	}

	kind := res.Points[0].Attacks[0].Kind
	res.Points[0].Attacks[0].Kind = "ghost"
	if _, err := ValidateJSON(marshal()); err == nil || !strings.Contains(err.Error(), "unknown adversary kind") {
		t.Errorf("unknown adversary kind: %v", err)
	}
	res.Points[0].Attacks[0].Kind = kind

	res.Points[0].Attacks = nil
	if _, err := ValidateJSON(marshal()); err == nil || !strings.Contains(err.Error(), "no attack accounting") {
		t.Errorf("attack point without accounting: %v", err)
	}
}

// TestWriteCSVAttackColumns: the flat curve carries the aggregated
// attack columns, and a benign row zeroes them rather than omitting.
func TestWriteCSVAttackColumns(t *testing.T) {
	res, err := Run(attackScenario(AdversaryReplay, 0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d CSV lines", len(lines))
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header %d columns, row %d", len(header), len(row))
	}
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no %s column", name)
		return ""
	}
	if col("injected_frames") == "0" {
		t.Error("injected_frames column empty for a replay run")
	}
	if col("rejected_replays") != "3" {
		t.Errorf("rejected_replays = %s, want 3", col("rejected_replays"))
	}
	if col("accepted_replays") != "0" {
		t.Errorf("accepted_replays = %s, want 0", col("accepted_replays"))
	}
	if col("latency_p95_us") == "0.000" {
		t.Error("latency_p95_us column empty")
	}
}
