package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/canbus"
)

// attackScenario builds a small attack-workload scenario around one
// adversary kind with a kind-appropriate default intensity.
func attackScenario(kind AdversaryKind, intensity float64) Scenario {
	s := Scenario{
		Name:           "attack-" + string(kind),
		Seed:           77,
		Peers:          3,
		Segments:       3,
		GatewayLatency: 50 * time.Microsecond,
		Workload:       WorkloadAttack,
		Adversaries:    []AdversaryConfig{{Kind: kind, Segment: -1, Intensity: intensity}},
	}
	if kind == AdversaryBabble {
		// The babbling-idiot story needs a rate-limited egress for the
		// fair-queuing gateway to arbitrate.
		s.Egress = canbus.EgressPolicy{Rate: 800, Queue: 64}
	}
	return s
}

// TestAdversaryWorkerInvariance is the tentpole's determinism gate in
// unit-test form: for every adversary kind (and the composite
// workload), the serial run and the 8-way sweep-worker run must be
// byte-identical in JSON, CSV and trace — the same contract the CI
// adversarial-smoke leg enforces through cmd/scenario.
func TestAdversaryWorkerInvariance(t *testing.T) {
	cases := []Scenario{
		attackScenario(AdversaryReplay, 0),
		attackScenario(AdversaryInject, 0.6),
		attackScenario(AdversaryBabble, 4000),
		attackScenario(AdversaryPartition, 0.001),
	}
	day := attackScenario(AdversaryInject, 0.5)
	day.Name = "day-in-the-life"
	day.Workload = WorkloadDayInLife
	day.Adversaries = append(day.Adversaries, AdversaryConfig{Kind: AdversaryReplay, Segment: -1})
	cases = append(cases, day)

	for _, s := range cases {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			// Give every scenario a sweep so the workers have points to
			// race over.
			s.SweepAxis = AxisDrop
			s.SweepPoints = []float64{0, 0.02}

			var serialTrace bytes.Buffer
			serial, _, err := RunTracedWith(s, &serialTrace, Options{Workers: 1})
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			var parTrace bytes.Buffer
			par, _, err := RunTracedWith(s, &parTrace, Options{Workers: 8})
			if err != nil {
				t.Fatalf("8-way: %v", err)
			}

			sj, _ := json.Marshal(serial)
			pj, _ := json.Marshal(par)
			if !bytes.Equal(sj, pj) {
				t.Errorf("JSON diverged between serial and 8-way runs")
			}
			var sc, pc bytes.Buffer
			if err := WriteCSV(&sc, serial); err != nil {
				t.Fatal(err)
			}
			if err := WriteCSV(&pc, par); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sc.Bytes(), pc.Bytes()) {
				t.Errorf("CSV diverged between serial and 8-way runs")
			}
			if !bytes.Equal(serialTrace.Bytes(), parTrace.Bytes()) {
				t.Errorf("trace diverged between serial and 8-way runs")
			}
			if _, err := ValidateJSON(sj); err != nil {
				t.Errorf("emitted attack result fails its own schema gate: %v", err)
			}
		})
	}
}

// TestReplayAttackRejectedEndToEnd drives the live replay attacker
// through the real transport/cantp stack and asserts the paper's
// claim: every recorded handshake, re-injected verbatim against a
// fresh responder, is rejected — and rejected cryptographically
// (ErrHandshakeAuth), not by state-machine accident.
func TestReplayAttackRejectedEndToEnd(t *testing.T) {
	res, err := Run(attackScenario(AdversaryReplay, 0))
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Errors != 0 {
		t.Fatalf("benign handshakes failed under a passive recorder: %d errors", pt.Errors)
	}
	if len(pt.Attacks) != 1 {
		t.Fatalf("got %d attack accounts, want 1", len(pt.Attacks))
	}
	acc := pt.Attacks[0]
	if acc.RecordedSessions != 3 {
		t.Errorf("recorded %d sessions, want 3", acc.RecordedSessions)
	}
	if acc.ReplayedSessions != 3 {
		t.Errorf("replayed %d sessions, want 3", acc.ReplayedSessions)
	}
	if acc.RejectedAuth != acc.ReplayedSessions {
		t.Errorf("rejected_auth %d != replayed %d — some replays died before the cryptographic check (rejected_protocol=%d)",
			acc.RejectedAuth, acc.ReplayedSessions, acc.RejectedProtocol)
	}
	if acc.AcceptedReplays != 0 {
		t.Fatalf("SECURITY: %d replayed sessions were accepted", acc.AcceptedReplays)
	}
	if acc.InjectedFrames == 0 {
		t.Error("replay attack injected no frames — it never exercised the stack")
	}
}

// TestReplaySessionCap bounds the storm with Intensity.
func TestReplaySessionCap(t *testing.T) {
	res, err := Run(attackScenario(AdversaryReplay, 2))
	if err != nil {
		t.Fatal(err)
	}
	acc := res.Points[0].Attacks[0]
	if acc.ReplayedSessions != 2 {
		t.Errorf("replayed %d sessions under cap 2", acc.ReplayedSessions)
	}
	if acc.RecordedSessions != 3 {
		t.Errorf("recorded %d sessions, want 3 (the cap bounds replays, not recording)", acc.RecordedSessions)
	}
}

// TestBabbleDegradesVictimLatency measures the babbling-idiot curve's
// shape: victim handshakes still complete (the fair-queuing gateway
// guarantees each flow its share), but their latency grows with the
// babble rate.
func TestBabbleDegradesVictimLatency(t *testing.T) {
	lat := func(rate float64) float64 {
		res, err := Run(attackScenario(AdversaryBabble, rate))
		if err != nil {
			t.Fatal(err)
		}
		pt := res.Points[0]
		if pt.Errors != 0 {
			t.Fatalf("rate %v: %d victim handshakes failed — fair queuing did not isolate them", rate, pt.Errors)
		}
		if pt.Latency == nil {
			t.Fatalf("rate %v: no victim latency stats", rate)
		}
		return pt.Latency.P95US
	}
	quiet := lat(0)
	loud := lat(8000)
	if loud <= quiet {
		t.Errorf("victim p95 latency did not grow under babble: quiet=%vus loud=%vus", quiet, loud)
	}
}

// TestPartitionHealExercisesRecovery severs the victim segment's
// uplink mid-handshake and checks the stack recovered after the heal:
// frames died at the severed port, retransmissions fired, and every
// handshake eventually completed.
func TestPartitionHealExercisesRecovery(t *testing.T) {
	res, err := Run(attackScenario(AdversaryPartition, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	acc := pt.Attacks[0]
	if acc.Partitions != 1 || acc.Heals != 1 {
		t.Errorf("partitions=%d heals=%d, want 1/1", acc.Partitions, acc.Heals)
	}
	if acc.PartitionDrops == 0 {
		t.Error("no frames died at the severed port — the partition landed outside any transfer")
	}
	if pt.GatewayPartitionDrops != acc.PartitionDrops {
		t.Errorf("fabric partition drops %d != adversary's %d", pt.GatewayPartitionDrops, acc.PartitionDrops)
	}
	if pt.Errors != 0 {
		t.Errorf("%d handshakes never recovered from the partition", pt.Errors)
	}
	if pt.Retransmits == 0 && pt.MessageResends == 0 && pt.Retries == 0 {
		t.Error("partition forced no recovery work at all")
	}
}

// TestInjectForcesRecovery forges on most observed FirstFrames and
// checks the ISO-TP machinery absorbed the lies: waits honoured,
// transfers aborted and retried, and the fleet still converged.
func TestInjectForcesRecovery(t *testing.T) {
	res, err := Run(attackScenario(AdversaryInject, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	acc := pt.Attacks[0]
	if acc.ForgedFlowControls == 0 {
		t.Error("no FlowControls forged at probability 0.8")
	}
	if acc.ForgedConsecutives == 0 {
		t.Error("no ConsecutiveFrames forged at probability 0.8")
	}
	if pt.Errors != 0 {
		t.Errorf("%d handshakes never recovered from the forgeries", pt.Errors)
	}
	if pt.Retries == 0 && pt.MessageResends == 0 {
		t.Error("forgeries forced no recovery work — the attack was a no-op")
	}
}

// TestInjectAtCertaintyExhaustsRetries: at probability 1 every retry
// gets forged too, so the handshakes must fail honestly — exhausted
// retry budgets in the accounting, never a hang or a phantom success.
func TestInjectAtCertaintyExhaustsRetries(t *testing.T) {
	s := attackScenario(AdversaryInject, 1)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Errors != s.Peers {
		t.Errorf("%d of %d handshakes failed under certain forgery, want all", pt.Errors, s.Peers)
	}
	if pt.FailedAttempts == 0 || pt.WorstAttempts == 0 {
		t.Errorf("exhaustion not visible in accounting: failed=%d worst=%d", pt.FailedAttempts, pt.WorstAttempts)
	}
}

// TestDayInTheLifeComposite checks the composite workload's phase
// structure and that its attack burst carries full accounting.
func TestDayInTheLifeComposite(t *testing.T) {
	s := attackScenario(AdversaryInject, 0.5)
	s.Name = "composite"
	s.Workload = WorkloadDayInLife
	s.Adversaries = append(s.Adversaries, AdversaryConfig{Kind: AdversaryReplay, Segment: -1})
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	want := []string{"bringup", "steady", "churn", "attack"}
	if len(pt.Phases) != len(want) {
		t.Fatalf("got %d phases, want %d", len(pt.Phases), len(want))
	}
	for i, ph := range pt.Phases {
		if ph.Phase != want[i] {
			t.Errorf("phase %d = %q, want %q", i, ph.Phase, want[i])
		}
		if ph.TimeUS <= 0 {
			t.Errorf("phase %q took no simulated time", ph.Phase)
		}
	}
	if len(pt.Attacks) != 2 {
		t.Fatalf("got %d attack accounts, want 2", len(pt.Attacks))
	}
	for _, acc := range pt.Attacks {
		if acc.AcceptedReplays != 0 {
			t.Fatalf("SECURITY: composite accepted %d replays", acc.AcceptedReplays)
		}
	}
	if pt.Latency == nil {
		t.Error("composite has no victim latency stats from its attack burst")
	}
	// The replay recorder only runs armed (the attack burst), so it
	// must not have recorded the bringup/steady/churn handshakes.
	for _, acc := range pt.Attacks {
		if acc.Kind == AdversaryReplay && acc.RecordedSessions > s.Peers {
			t.Errorf("replay recorded %d sessions — it was listening outside the attack burst", acc.RecordedSessions)
		}
	}
}

// TestAttackSweepOverridesIntensity sweeps the attack axis and checks
// each point ran its adversary at the sweep value.
func TestAttackSweepOverridesIntensity(t *testing.T) {
	s := attackScenario(AdversaryBabble, 0)
	s.SweepAxis = AxisAttack
	s.SweepPoints = []float64{0, 2000, 8000}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points", len(res.Points))
	}
	var prev int
	for i, pt := range res.Points {
		acc := pt.Attacks[0]
		if acc.Intensity != s.SweepPoints[i] {
			t.Errorf("point %d ran at intensity %v, want %v", i, acc.Intensity, s.SweepPoints[i])
		}
		if acc.InjectedFrames < prev {
			t.Errorf("point %d injected %d frames, fewer than the quieter point's %d", i, acc.InjectedFrames, prev)
		}
		prev = acc.InjectedFrames
	}
}

// TestAdversaryValidation covers the adversarial-workload contract.
func TestAdversaryValidation(t *testing.T) {
	base := attackScenario(AdversaryReplay, 0)
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"attack workload without adversaries", func(s *Scenario) { s.Adversaries = nil }, "needs at least one adversary"},
		{"adversaries on benign workload", func(s *Scenario) { s.Workload = WorkloadLatency }, "benign workload"},
		{"attack axis without adversaries", func(s *Scenario) {
			s.Workload = WorkloadLatency
			s.Adversaries = nil
			s.SweepAxis = AxisAttack
			s.SweepPoints = []float64{0, 1}
		}, "attack sweep axis without adversaries"},
		{"parallelism under attack", func(s *Scenario) { s.Parallelism = 4 }, "parallelism 1"},
		{"unknown kind", func(s *Scenario) { s.Adversaries[0].Kind = "ghost" }, "unknown kind"},
		{"segment out of range", func(s *Scenario) { s.Adversaries[0].Segment = 7 }, "outside"},
		{"negative intensity", func(s *Scenario) { s.Adversaries[0].Intensity = -1 }, "negative intensity"},
		{"negative start", func(s *Scenario) { s.Adversaries[0].Start = -time.Second }, "negative start"},
		{"inject probability out of range", func(s *Scenario) {
			s.Adversaries[0] = AdversaryConfig{Kind: AdversaryInject, Segment: -1, Intensity: 1.5}
		}, "out of [0,1]"},
		{"inject attack sweep out of range", func(s *Scenario) {
			s.Adversaries[0] = AdversaryConfig{Kind: AdversaryInject, Segment: -1, Intensity: 0.5}
			s.SweepAxis = AxisAttack
			s.SweepPoints = []float64{0.5, 2}
		}, "inject probability range"},
		{"negative attack sweep point", func(s *Scenario) {
			s.SweepAxis = AxisAttack
			s.SweepPoints = []float64{-1}
		}, "negative attack sweep point"},
		{"partition on one segment", func(s *Scenario) {
			s.Segments = 1
			s.Adversaries[0] = AdversaryConfig{Kind: AdversaryPartition, Segment: -1}
		}, "at least 2 segments"},
		{"partition on segment zero", func(s *Scenario) {
			s.Adversaries[0] = AdversaryConfig{Kind: AdversaryPartition, Segment: 0}
		}, "no upstream gateway link"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.Adversaries = append([]AdversaryConfig(nil), base.Adversaries...)
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid adversarial scenario")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// And the happy paths stay happy.
	if err := base.Validate(); err != nil {
		t.Errorf("valid attack scenario rejected: %v", err)
	}
	sweep := attackScenario(AdversaryBabble, 0)
	sweep.SweepAxis = AxisAttack
	sweep.SweepPoints = []float64{0, 4000} // > 1 is legal without inject
	if err := sweep.Validate(); err != nil {
		t.Errorf("valid attack sweep rejected: %v", err)
	}
}

// TestTapIsMeasurementInvisible re-runs the golden benign scenario
// with a passive recorder... it can't: adversaries are rejected on
// benign workloads. Instead it checks the next best thing — the
// attack workload at intensity 0 with only a passive replay recorder
// measures the same victim latency as the plain latency workload on
// the identical fabric, proving the tap (and the agent pump hooks)
// perturb nothing.
func TestTapIsMeasurementInvisible(t *testing.T) {
	attack := attackScenario(AdversaryReplay, 0)
	benign := attack
	benign.Workload = WorkloadLatency
	benign.Adversaries = nil

	ra, err := Run(attack)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(benign)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := ra.Points[0].Latency, rb.Points[0].Latency
	if la == nil || lb == nil {
		t.Fatal("missing latency stats")
	}
	if *la != *lb {
		t.Errorf("passive tap perturbed the measurement: with tap %+v, without %+v", *la, *lb)
	}
}
