package scenario

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// runAllSinks streams s at the given worker count into fresh JSON,
// CSV, trace and collecting sinks, returning the three byte streams,
// the collected Result and the run's Timing.
func runAllSinks(t *testing.T, s Scenario, workers int) (jsonB, csvB, traceB []byte, res *Result, timing *Timing) {
	t.Helper()
	var jb, cb, tb bytes.Buffer
	col := &collectSink{}
	timing, err := RunStreamWith(s, []PointSink{NewJSONSink(&jb), NewCSVSink(&cb), NewTraceSink(&tb), col}, Options{Workers: workers})
	if err != nil {
		t.Fatalf("RunStreamWith(workers=%d): %v", workers, err)
	}
	return jb.Bytes(), cb.Bytes(), tb.Bytes(), col.res, timing
}

// materialize runs s on the materialized path (serial) and renders the
// same three byte streams through the original writers.
func materialize(t *testing.T, s Scenario) (jsonB, csvB, traceB []byte, res *Result) {
	t.Helper()
	var tb bytes.Buffer
	res, _, err := RunTracedWith(s, &tb, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var jb, cb bytes.Buffer
	if err := WriteJSON(&jb, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&cb, res); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes(), tb.Bytes(), res
}

// TestStreamedMatchesMaterializedProperty is the tentpole contract as
// a property test: for randomized scenarios and worker counts 1, 2
// and 8, the streamed JSON, CSV and trace byte streams must equal the
// materialized writers' output exactly, the collected Result must
// DeepEqual the materialized one, and the reorder window must stay
// within its bound.
func TestStreamedMatchesMaterializedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	workloads := []Workload{WorkloadLatency, WorkloadBringup, WorkloadChurn}
	for i := 0; i < 5; i++ {
		s := Scenario{
			Name:           fmt.Sprintf("stream-prop-%d", i),
			Seed:           rng.Uint64(),
			Peers:          1 + rng.Intn(4),
			Segments:       1 + rng.Intn(3),
			GatewayLatency: 50 * time.Microsecond,
			Profile:        Profile{Drop: 0.05 * rng.Float64(), Corrupt: 0.02 * rng.Float64()},
			Workload:       workloads[rng.Intn(len(workloads))],
			Attempts:       10,
			ChurnRounds:    1 + rng.Intn(2),
		}
		if n := rng.Intn(5); n > 0 {
			s.SweepAxis = AxisDrop
			for j := 0; j < n; j++ {
				s.SweepPoints = append(s.SweepPoints, 0.06*rng.Float64())
			}
		}
		t.Run(s.Name, func(t *testing.T) {
			wantJSON, wantCSV, wantTrace, wantRes := materialize(t, s)
			for _, workers := range []int{1, 2, 8} {
				gotJSON, gotCSV, gotTrace, gotRes, timing := runAllSinks(t, s, workers)
				if !bytes.Equal(gotJSON, wantJSON) {
					t.Fatalf("workers=%d: streamed JSON diverged from materialized (%d vs %d bytes)\nstreamed:\n%s\nmaterialized:\n%s",
						workers, len(gotJSON), len(wantJSON), gotJSON, wantJSON)
				}
				if !bytes.Equal(gotCSV, wantCSV) {
					t.Fatalf("workers=%d: streamed CSV diverged from materialized\nstreamed:\n%s\nmaterialized:\n%s",
						workers, gotCSV, wantCSV)
				}
				if !bytes.Equal(gotTrace, wantTrace) {
					t.Fatalf("workers=%d: streamed trace diverged from materialized (%d vs %d bytes)",
						workers, len(gotTrace), len(wantTrace))
				}
				if !reflect.DeepEqual(gotRes, wantRes) {
					t.Fatalf("workers=%d: collected Result diverged:\n%+v\nvs\n%+v", workers, gotRes, wantRes)
				}
				if timing.MaxReorderDepth > timing.Workers+ReorderSlack {
					t.Fatalf("workers=%d: reorder depth %d exceeds bound %d",
						workers, timing.MaxReorderDepth, timing.Workers+ReorderSlack)
				}
				if _, err := ValidateJSON(gotJSON); err != nil {
					t.Fatalf("workers=%d: streamed JSON fails the schema gate: %v", workers, err)
				}
			}
		})
	}
}

// TestStreamErroredPointMidStream: a point that fails mid-sweep must
// land index-aligned in the streamed JSON and CSV exactly as it does
// in the materialized Result — the schema-v3 in-place failure contract
// survives streaming.
func TestStreamErroredPointMidStream(t *testing.T) {
	orig := runPointFn
	defer func() { runPointFn = orig }()
	runPointFn = func(s Scenario, v float64, axis Axis, tr *tracer) (Point, error) {
		if v == 0.05 {
			return Point{}, fmt.Errorf("injected fabric failure at %v", v)
		}
		return runPoint(s, v, axis, tr)
	}

	s := smallScenario(WorkloadLatency)
	s.SweepAxis = AxisDrop
	s.SweepPoints = []float64{0, 0.05, 0.10}

	wantJSON, wantCSV, wantTrace, _ := materialize(t, s)
	gotJSON, gotCSV, gotTrace, res, _ := runAllSinks(t, s, 2)
	if !bytes.Equal(gotJSON, wantJSON) || !bytes.Equal(gotCSV, wantCSV) || !bytes.Equal(gotTrace, wantTrace) {
		t.Fatal("streamed output with an errored point diverged from materialized")
	}
	if len(res.Points) != 3 || res.Points[1].Error == "" || res.Points[1].Value != 0.05 {
		t.Fatalf("errored point not index-aligned: %+v", res.Points)
	}
	if !strings.Contains(string(gotTrace), "point-error drop=0.0500: injected fabric failure") {
		t.Errorf("streamed trace missing the point-error line:\n%s", gotTrace)
	}
	// The CSV row for the failed point carries the error in the error
	// column, on its own line, in sweep order.
	lines := strings.Split(strings.TrimRight(string(gotCSV), "\n"), "\n")
	if len(lines) != 4 { // header + 3 points
		t.Fatalf("streamed CSV has %d lines, want 4:\n%s", len(lines), gotCSV)
	}
	if !strings.Contains(lines[2], "injected fabric failure") {
		t.Errorf("failed point's CSV row (line 3) missing the error: %q", lines[2])
	}
	if _, err := ValidateJSON(gotJSON); err != nil {
		t.Fatalf("streamed JSON with an errored point fails the schema gate: %v", err)
	}
}

// failAfter fails every write past a byte budget — the failing-writer
// fixture for the error-propagation contract.
type failAfter struct {
	n    int
	seen int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.seen += len(p)
	if f.seen > f.n {
		return 0, fmt.Errorf("injected write failure after %d bytes", f.n)
	}
	return len(p), nil
}

// TestStreamSinkErrorPropagates: a sink write failure — at Begin or
// mid-stream — must abort the run with the writer's error instead of
// being swallowed, and must not deadlock the admission-gated workers.
func TestStreamSinkErrorPropagates(t *testing.T) {
	s := parallelSweep()

	t.Run("begin", func(t *testing.T) {
		_, err := RunStreamWith(s, []PointSink{NewJSONSink(&failAfter{n: 10})}, Options{Workers: 4})
		if err == nil || !strings.Contains(err.Error(), "injected write failure") {
			t.Fatalf("Begin failure not propagated: %v", err)
		}
	})

	t.Run("mid-stream-json", func(t *testing.T) {
		_, err := RunStreamWith(s, []PointSink{NewJSONSink(&failAfter{n: 4000})}, Options{Workers: 4})
		if err == nil || !strings.Contains(err.Error(), "injected write failure") {
			t.Fatalf("mid-stream JSON failure not propagated: %v", err)
		}
	})

	t.Run("mid-stream-trace", func(t *testing.T) {
		// The old materialized path discarded per-point tracer errors
		// after the buffer flush; the streaming path must surface a
		// trace write failure like any sink error.
		_, err := RunStreamWith(s, []PointSink{NewTraceSink(&failAfter{n: 600}), &collectSink{}}, Options{Workers: 4})
		if err == nil || !strings.Contains(err.Error(), "injected write failure") {
			t.Fatalf("trace write failure not propagated: %v", err)
		}
	})

	t.Run("no-sinks", func(t *testing.T) {
		if _, err := RunStreamWith(s, nil, Options{Workers: 1}); err == nil {
			t.Fatal("a sink-less run must be rejected")
		}
	})
}

// TestStreamReorderWindowBound: with point 0 made pathologically slow,
// every other worker finishes first — the admission gate must cap how
// many completed points accumulate at workers + ReorderSlack, and the
// output must still be byte-identical to the serial materialized run.
func TestStreamReorderWindowBound(t *testing.T) {
	s := smallScenario(WorkloadLatency)
	s.Name = "reorder-bound"
	s.SweepAxis = AxisDrop
	s.SweepPoints = make([]float64, 64)
	for i := range s.SweepPoints {
		s.SweepPoints[i] = 0.001 * float64(i)
	}

	slow := make(chan struct{})
	orig := runPointFn
	defer func() { runPointFn = orig }()
	runPointFn = func(sc Scenario, v float64, axis Axis, tr *tracer) (Point, error) {
		if v == 0 {
			<-slow // park point 0 until everything admissible has finished
		}
		return runPoint(sc, v, axis, tr)
	}
	const workers = 8
	go func() {
		// Release point 0 once the window must be saturated: with it
		// parked, the other workers can complete at most
		// workers+ReorderSlack-1 admitted points and then block.
		time.Sleep(300 * time.Millisecond)
		close(slow)
	}()

	var jb bytes.Buffer
	col := &collectSink{}
	timing, err := RunStreamWith(s, []PointSink{NewJSONSink(&jb), col}, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if timing.MaxReorderDepth > workers+ReorderSlack {
		t.Fatalf("reorder depth %d exceeds bound %d", timing.MaxReorderDepth, workers+ReorderSlack)
	}
	if timing.HeapHighWater == 0 {
		t.Error("no heap high-water sample recorded on a 64-point run")
	}

	runPointFn = orig
	wantJSON, _, _, wantRes := materialize(t, s)
	if !bytes.Equal(jb.Bytes(), wantJSON) {
		t.Fatal("slow-point streamed JSON diverged from materialized")
	}
	if !reflect.DeepEqual(col.res, wantRes) {
		t.Fatal("slow-point collected Result diverged from materialized")
	}
}
