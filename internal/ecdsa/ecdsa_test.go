package ecdsa

import (
	stdecdsa "crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ec"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func TestSignVerifyRoundTrip(t *testing.T) {
	rng := newDetRand(1)
	for _, c := range ec.Curves() {
		t.Run(c.Name, func(t *testing.T) {
			key, err := GenerateKey(c, rng)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("sts ecqv dynamic session establishment")
			sig, err := key.Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			if !key.Public().Verify(msg, sig) {
				t.Fatal("signature did not verify")
			}
			if key.Public().Verify(append(msg, 'x'), sig) {
				t.Fatal("signature verified for modified message")
			}
		})
	}
}

func TestDeterministicSignatures(t *testing.T) {
	rng := newDetRand(2)
	c := ec.P256()
	key, err := GenerateKey(c, rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("same message")
	s1, err := key.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := key.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.R.Cmp(s2.R) != 0 || s1.S.Cmp(s2.S) != 0 {
		t.Error("RFC 6979 signing must be deterministic")
	}
	s3, err := key.Sign([]byte("different message"))
	if err != nil {
		t.Fatal(err)
	}
	if s1.R.Cmp(s3.R) == 0 {
		t.Error("different messages produced the same nonce")
	}
}

// TestRFC6979Vector checks the published P-256/SHA-256 test vector
// (RFC 6979 §A.2.5, message "sample"). The implementation normalises
// to low-S, so s may equal n − s_vector.
func TestRFC6979Vector(t *testing.T) {
	c := ec.P256()
	d, _ := new(big.Int).SetString("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721", 16)
	key, err := NewPrivateKey(c, d)
	if err != nil {
		t.Fatal(err)
	}
	// Public key check from the RFC.
	wantUx, _ := new(big.Int).SetString("60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6", 16)
	wantUy, _ := new(big.Int).SetString("7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299", 16)
	if key.Q.X.Cmp(wantUx) != 0 || key.Q.Y.Cmp(wantUy) != 0 {
		t.Fatal("public key mismatch with RFC 6979 vector")
	}

	sig, err := key.Sign([]byte("sample"))
	if err != nil {
		t.Fatal(err)
	}
	wantR, _ := new(big.Int).SetString("efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716", 16)
	wantS, _ := new(big.Int).SetString("f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8", 16)
	if sig.R.Cmp(wantR) != 0 {
		t.Errorf("r = %x, want %x", sig.R, wantR)
	}
	sNeg := new(big.Int).Sub(c.N, wantS)
	if sig.S.Cmp(wantS) != 0 && sig.S.Cmp(sNeg) != 0 {
		t.Errorf("s = %x, want %x or its negation", sig.S, wantS)
	}
}

// TestRFC6979VectorP224 checks the P-224/SHA-256 vector (RFC 6979
// §A.2.4, message "sample").
func TestRFC6979VectorP224(t *testing.T) {
	c := ec.P224()
	d, _ := new(big.Int).SetString("f220266e1105bfe3083e03ec7a3a654651f45e37167e88600bf257c1", 16)
	key, err := NewPrivateKey(c, d)
	if err != nil {
		t.Fatal(err)
	}
	wantUx, _ := new(big.Int).SetString("00cf08da5ad719e42707fa431292dea11244d64fc51610d94b130d6c", 16)
	wantUy, _ := new(big.Int).SetString("eeab6f3debe455e3dbf85416f7030cbd94f34f2d6f232c69f3c1385a", 16)
	if key.Q.X.Cmp(wantUx) != 0 || key.Q.Y.Cmp(wantUy) != 0 {
		t.Fatal("P-224 public key mismatch with RFC 6979 vector")
	}
	sig, err := key.Sign([]byte("sample"))
	if err != nil {
		t.Fatal(err)
	}
	wantR, _ := new(big.Int).SetString("61aa3da010e8e8406c656bc477a7a7189895e7e840cdfe8ff42307ba", 16)
	wantS, _ := new(big.Int).SetString("bc814050dab5d23770879494f9e0a680dc1af7161991bde692b10101", 16)
	if sig.R.Cmp(wantR) != 0 {
		t.Errorf("r = %x, want %x", sig.R, wantR)
	}
	sNeg := new(big.Int).Sub(c.N, wantS)
	if sig.S.Cmp(wantS) != 0 && sig.S.Cmp(sNeg) != 0 {
		t.Errorf("s = %x, want %x or its negation", sig.S, wantS)
	}
}

// TestCrossVerifyWithStdlib signs with this package and verifies with
// crypto/ecdsa, and vice versa.
func TestCrossVerifyWithStdlib(t *testing.T) {
	rng := newDetRand(3)
	c := ec.P256()
	key, err := GenerateKey(c, rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("cross verification message")
	digest := sha256.Sum256(msg)

	sig, err := key.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	stdPub := &stdecdsa.PublicKey{Curve: elliptic.P256(), X: key.Q.X, Y: key.Q.Y}
	if !stdecdsa.Verify(stdPub, digest[:], sig.R, sig.S) {
		t.Error("stdlib rejected our signature")
	}

	stdPriv := &stdecdsa.PrivateKey{PublicKey: *stdPub, D: key.D}
	r, s, err := stdecdsa.Sign(newDetRand(4), stdPriv, digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if !key.Public().VerifyDigest(digest[:], Signature{R: r, S: s}) {
		t.Error("we rejected a stdlib signature")
	}
}

func TestVerifyRejectsInvalid(t *testing.T) {
	rng := newDetRand(5)
	c := ec.P256()
	key, _ := GenerateKey(c, rng)
	msg := []byte("message")
	sig, _ := key.Sign(msg)
	pub := key.Public()

	bad := []Signature{
		{R: nil, S: nil},
		{R: new(big.Int), S: sig.S},                           // r = 0
		{R: sig.R, S: new(big.Int)},                           // s = 0
		{R: new(big.Int).Set(c.N), S: sig.S},                  // r = n
		{R: sig.R, S: new(big.Int).Set(c.N)},                  // s = n
		{R: new(big.Int).Neg(sig.R), S: sig.S},                // r < 0
		{R: new(big.Int).Add(sig.R, big.NewInt(1)), S: sig.S}, // wrong r
		{R: sig.R, S: new(big.Int).Add(sig.S, big.NewInt(1))}, // wrong s
	}
	for i, b := range bad {
		if pub.Verify(msg, b) {
			t.Errorf("case %d: invalid signature accepted", i)
		}
	}

	// Wrong key.
	other, _ := GenerateKey(c, rng)
	if other.Public().Verify(msg, sig) {
		t.Error("signature verified under the wrong key")
	}
	// Infinity public key.
	infPub := &PublicKey{Curve: c, Q: ec.Infinity()}
	if infPub.Verify(msg, sig) {
		t.Error("signature verified under infinity key")
	}
}

func TestLowSNormalisation(t *testing.T) {
	rng := newDetRand(6)
	c := ec.P256()
	halfN := new(big.Int).Rsh(c.N, 1)
	key, _ := GenerateKey(c, rng)
	for i := 0; i < 16; i++ {
		msg := []byte{byte(i)}
		sig, err := key.Sign(msg)
		if err != nil {
			t.Fatal(err)
		}
		if sig.S.Cmp(halfN) > 0 {
			t.Fatal("high-S signature emitted")
		}
	}
}

func TestRawEncoding(t *testing.T) {
	rng := newDetRand(7)
	for _, c := range ec.Curves() {
		key, _ := GenerateKey(c, rng)
		sig, _ := key.Sign([]byte("encode me"))

		raw := sig.EncodeRaw(c)
		if len(raw) != RawSize(c) {
			t.Fatalf("%s: raw size %d, want %d", c.Name, len(raw), RawSize(c))
		}
		dec, err := DecodeRaw(c, raw)
		if err != nil {
			t.Fatal(err)
		}
		if dec.R.Cmp(sig.R) != 0 || dec.S.Cmp(sig.S) != 0 {
			t.Fatal("raw round trip failed")
		}
	}
	// P-256 raw signatures are exactly the 64 bytes of Table II.
	if RawSize(ec.P256()) != 64 {
		t.Errorf("P-256 raw signature size = %d, want 64", RawSize(ec.P256()))
	}

	c := ec.P256()
	if _, err := DecodeRaw(c, make([]byte, 10)); err == nil {
		t.Error("short raw signature accepted")
	}
	if _, err := DecodeRaw(c, make([]byte, RawSize(c))); err == nil {
		t.Error("all-zero raw signature accepted")
	}
}

func TestNewPrivateKeyValidation(t *testing.T) {
	c := ec.P256()
	if _, err := NewPrivateKey(c, nil); err == nil {
		t.Error("nil scalar accepted")
	}
	if _, err := NewPrivateKey(c, new(big.Int)); err == nil {
		t.Error("zero scalar accepted")
	}
	if _, err := NewPrivateKey(c, c.N); err == nil {
		t.Error("scalar = n accepted")
	}
	k, err := NewPrivateKey(c, big.NewInt(12345))
	if err != nil {
		t.Fatal(err)
	}
	if !k.Q.Equal(c.ScalarBaseMult(big.NewInt(12345))) {
		t.Error("derived public key wrong")
	}
}

// TestQuickSignVerify property-tests the full sign/verify loop across
// random messages.
func TestQuickSignVerify(t *testing.T) {
	rng := newDetRand(8)
	c := ec.P256()
	key, _ := GenerateKey(c, rng)
	f := func(msg []byte) bool {
		sig, err := key.Sign(msg)
		if err != nil {
			return false
		}
		return key.Public().Verify(msg, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}
