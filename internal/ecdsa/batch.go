package ecdsa

import (
	"math/big"

	"repro/internal/ec"
)

// Batch verification. An EstablishAll wave verifies one ECQV
// certificate chain and one STS signature per peer — dozens of
// independent ECDSA checks against mostly-cached keys. Verified one at
// a time, each check pays a scalar inversion (s⁻¹ mod n) and a field
// inversion (the affine conversion after CombinedMult). VerifyBatch
// amortizes both: Montgomery's trick shares one modular inversion
// across every signature on the same curve, and the deferred
// CombinedMults converge in a single ec.BatchNormalize with one field
// inversion per curve. Per-item results are exactly those of
// VerifyDigest — batching changes cost, never answers — so a batch of
// one is just a Verify with different plumbing.

// BatchItem is one signature check: sig over a precomputed digest
// under key.
type BatchItem struct {
	Key    *PublicKey
	Digest []byte
	Sig    Signature
}

// VerifyBatch checks every item and returns one verdict per item, in
// order. Items that fail fast validation (nil or malformed key, r or s
// out of range) get false without joining the batch; the rest share
// scalar and field inversions as described in the package section
// above. Keys with precomputed tables use them, exactly as VerifyDigest
// does.
func VerifyBatch(items []BatchItem) []bool {
	ok := make([]bool, len(items))
	// live[k] indexes the items that survived validation, grouped by
	// curve so each group shares one scalar inversion and one field
	// inversion.
	live := make([]int, 0, len(items))
	for i := range items {
		it := &items[i]
		if it.Key == nil || it.Key.Curve == nil || it.Sig.R == nil || it.Sig.S == nil {
			continue
		}
		c := it.Key.Curve
		if it.Sig.R.Sign() <= 0 || it.Sig.R.Cmp(c.N) >= 0 ||
			it.Sig.S.Sign() <= 0 || it.Sig.S.Cmp(c.N) >= 0 {
			continue
		}
		if it.Key.Q.IsInfinity() || !c.IsOnCurve(it.Key.Q) {
			continue
		}
		live = append(live, i)
	}
	if len(live) == 0 {
		return ok
	}

	deferred := make([]ec.DeferredPoint, len(live))
	grouped := make([]bool, len(live))
	group := make([]int, 0, len(live))
	sInv := make([]*big.Int, 0, len(live))
	for k := range live {
		if grouped[k] {
			continue
		}
		c := items[live[k]].Key.Curve
		group = group[:0]
		for j := k; j < len(live); j++ {
			if !grouped[j] && items[live[j]].Key.Curve == c {
				group = append(group, j)
				grouped[j] = true
			}
		}
		// One inversion for the whole group: w_j = s_j⁻¹ mod n by
		// Montgomery's trick. Every s is in [1, n) with n prime, so the
		// product is invertible.
		sInv = sInv[:0]
		for _, j := range group {
			sInv = append(sInv, items[live[j]].Sig.S)
		}
		ws := batchModInverse(sInv, c.N)
		for gi, j := range group {
			it := &items[live[j]]
			e := c.HashToInt(it.Digest)
			w := ws[gi]
			u1 := new(big.Int).Mul(e, w)
			u1.Mod(u1, c.N)
			u2 := new(big.Int).Mul(it.Sig.R, w)
			u2.Mod(u2, c.N)
			if it.Key.table != nil {
				deferred[j] = it.Key.table.CombinedMultDeferred(u1, u2)
			} else {
				deferred[j] = c.CombinedMultDeferred(it.Key.Q, u1, u2)
			}
		}
	}

	// One field inversion per curve for all the R' points at once.
	pts := ec.BatchNormalize(deferred)
	v := new(big.Int)
	for k, i := range live {
		if pts[k].IsInfinity() {
			continue
		}
		c := items[i].Key.Curve
		v.Mod(pts[k].X, c.N)
		ok[i] = v.Cmp(items[i].Sig.R) == 0
	}
	return ok
}

// batchModInverse returns xs[i]⁻¹ mod n for every xs[i] via
// Montgomery's trick: one ModInverse for the whole slice plus three
// multiplications per element. Every input must be in [1, n) with n
// prime. The inputs are not modified.
func batchModInverse(xs []*big.Int, n *big.Int) []*big.Int {
	out := make([]*big.Int, len(xs))
	prefix := make([]*big.Int, len(xs)+1)
	prefix[0] = big.NewInt(1)
	for i, x := range xs {
		prefix[i+1] = new(big.Int).Mul(prefix[i], x)
		prefix[i+1].Mod(prefix[i+1], n)
	}
	inv := new(big.Int).ModInverse(prefix[len(xs)], n)
	for i := len(xs) - 1; i >= 0; i-- {
		out[i] = new(big.Int).Mul(prefix[i], inv)
		out[i].Mod(out[i], n)
		inv.Mul(inv, xs[i])
		inv.Mod(inv, n)
	}
	return out
}
