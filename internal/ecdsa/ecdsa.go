// Package ecdsa implements the Elliptic Curve Digital Signature
// Algorithm over the internal/ec substrate, including RFC 6979
// deterministic nonce generation and low-S normalisation.
//
// It exists (rather than using crypto/ecdsa) because the ECQV scheme
// needs signatures verified against *reconstructed* public keys held as
// raw curve points, and the protocol stack needs fixed-width raw r‖s
// encodings for the byte-exact wire-overhead reproduction of the
// paper's Table II.
package ecdsa

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/ec"
)

// PrivateKey is an ECDSA signing key.
type PrivateKey struct {
	Curve *ec.Curve
	D     *big.Int
	Q     ec.Point // public key D·G
}

// PublicKey is an ECDSA verification key. ECQV reconstructed keys are
// wrapped in this type for verification.
type PublicKey struct {
	Curve *ec.Curve
	Q     ec.Point

	// table is the optional precomputed odd-multiples table for Q,
	// installed by Precompute. It turns every verification's
	// CombinedMult into mixed additions against a shared cache —
	// worthwhile whenever the same key verifies more than once (fleet
	// rekeys, group key distribution).
	table *ec.MultTable
}

// Precompute builds and attaches the scalar-multiplication table for
// Q, returning the key for chaining. Call it once at construction
// time; a PublicKey must not be shared concurrently while Precompute
// runs.
func (p *PublicKey) Precompute() *PublicKey {
	if p.table == nil && !p.Q.IsInfinity() {
		p.table = p.Curve.NewMultTable(p.Q)
	}
	return p
}

// Signature is a raw ECDSA signature pair.
type Signature struct {
	R, S *big.Int
}

// GenerateKey draws a fresh key pair on curve c. A nil rng selects
// crypto/rand.
func GenerateKey(c *ec.Curve, rng io.Reader) (*PrivateKey, error) {
	d, q, err := c.GenerateKeyPair(rng)
	if err != nil {
		return nil, fmt.Errorf("ecdsa: generate key: %w", err)
	}
	return &PrivateKey{Curve: c, D: d, Q: q}, nil
}

// NewPrivateKey wraps an existing scalar (e.g. an ECQV-reconstructed
// private key) as a signing key, validating its range and deriving the
// public point.
func NewPrivateKey(c *ec.Curve, d *big.Int) (*PrivateKey, error) {
	if d == nil || d.Sign() <= 0 || d.Cmp(c.N) >= 0 {
		return nil, errors.New("ecdsa: private scalar out of range")
	}
	dd := new(big.Int).Set(d)
	return &PrivateKey{Curve: c, D: dd, Q: c.ScalarBaseMult(dd)}, nil
}

// Public returns the verification key for k.
func (k *PrivateKey) Public() *PublicKey {
	return &PublicKey{Curve: k.Curve, Q: k.Q.Clone()}
}

// errZeroParam guards the (cryptographically negligible) degenerate
// nonce cases so signing retries instead of emitting r = 0 or s = 0.
var errZeroParam = errors.New("ecdsa: zero parameter, retry with new nonce")

// Sign produces a deterministic (RFC 6979) ECDSA signature over the
// SHA-256 digest of msg. Determinism removes the catastrophic
// nonce-reuse failure mode on embedded devices without entropy
// sources — the exact deployment environment of the paper.
func (k *PrivateKey) Sign(msg []byte) (Signature, error) {
	digest := sha256.Sum256(msg)
	return k.SignDigest(digest[:])
}

// SignDigest signs a precomputed digest.
func (k *PrivateKey) SignDigest(digest []byte) (Signature, error) {
	c := k.Curve
	e := c.HashToInt(digest)

	gen := newRFC6979(c, k.D, digest)
	for i := 0; i < 128; i++ {
		nonce := gen.next()
		sig, err := k.signWithNonce(e, nonce)
		if err == nil {
			return sig, nil
		}
		if !errors.Is(err, errZeroParam) {
			return Signature{}, err
		}
	}
	return Signature{}, errors.New("ecdsa: nonce generation did not converge")
}

func (k *PrivateKey) signWithNonce(e, nonce *big.Int) (Signature, error) {
	c := k.Curve
	if nonce.Sign() == 0 || nonce.Cmp(c.N) >= 0 {
		return Signature{}, errZeroParam
	}
	// (x1, _) = nonce·G ; r = x1 mod n
	p := c.ScalarBaseMult(nonce)
	r := new(big.Int).Mod(p.X, c.N)
	if r.Sign() == 0 {
		return Signature{}, errZeroParam
	}
	// s = nonce⁻¹ (e + r·d) mod n
	kInv := new(big.Int).ModInverse(nonce, c.N)
	s := new(big.Int).Mul(r, k.D)
	s.Add(s, e)
	s.Mul(s, kInv)
	s.Mod(s, c.N)
	if s.Sign() == 0 {
		return Signature{}, errZeroParam
	}
	// Low-S normalisation: if s > n/2, use n − s. Removes signature
	// malleability, matching modern deployments.
	halfN := new(big.Int).Rsh(c.N, 1)
	if s.Cmp(halfN) > 0 {
		s.Sub(c.N, s)
	}
	return Signature{R: r, S: s}, nil
}

// Verify checks sig over the SHA-256 digest of msg.
func (p *PublicKey) Verify(msg []byte, sig Signature) bool {
	digest := sha256.Sum256(msg)
	return p.VerifyDigest(digest[:], sig)
}

// VerifyDigest checks sig over a precomputed digest.
func (p *PublicKey) VerifyDigest(digest []byte, sig Signature) bool {
	c := p.Curve
	if sig.R == nil || sig.S == nil {
		return false
	}
	if sig.R.Sign() <= 0 || sig.R.Cmp(c.N) >= 0 ||
		sig.S.Sign() <= 0 || sig.S.Cmp(c.N) >= 0 {
		return false
	}
	if p.Q.IsInfinity() || !c.IsOnCurve(p.Q) {
		return false
	}
	e := c.HashToInt(digest)
	w := new(big.Int).ModInverse(sig.S, c.N)
	if w == nil {
		return false
	}
	u1 := new(big.Int).Mul(e, w)
	u1.Mod(u1, c.N)
	u2 := new(big.Int).Mul(sig.R, w)
	u2.Mod(u2, c.N)

	// R' = u1·G + u2·Q, through the precomputed table when attached.
	var rp ec.Point
	if p.table != nil {
		rp = p.table.CombinedMult(u1, u2)
	} else {
		rp = c.CombinedMult(p.Q, u1, u2)
	}
	if rp.IsInfinity() {
		return false
	}
	v := new(big.Int).Mod(rp.X, c.N)
	return v.Cmp(sig.R) == 0
}

// Raw signature encoding: fixed-width big-endian r ‖ s, 2·ByteLen
// bytes (64 B on P-256). This is the "Sign(64)" / "Resp(64)" payload
// size accounted by Table II of the paper.

// RawSize returns the encoded signature size for curve c.
func RawSize(c *ec.Curve) int { return 2 * c.ByteLen() }

// EncodeRaw serializes sig as fixed-width r ‖ s.
func (s Signature) EncodeRaw(c *ec.Curve) []byte {
	out := make([]byte, 2*c.ByteLen())
	s.R.FillBytes(out[:c.ByteLen()])
	s.S.FillBytes(out[c.ByteLen():])
	return out
}

// DecodeRaw parses a fixed-width r ‖ s signature.
func DecodeRaw(c *ec.Curve, data []byte) (Signature, error) {
	if len(data) != 2*c.ByteLen() {
		return Signature{}, fmt.Errorf("ecdsa: raw signature length %d, want %d",
			len(data), 2*c.ByteLen())
	}
	r := new(big.Int).SetBytes(data[:c.ByteLen()])
	s := new(big.Int).SetBytes(data[c.ByteLen():])
	if r.Sign() <= 0 || r.Cmp(c.N) >= 0 || s.Sign() <= 0 || s.Cmp(c.N) >= 0 {
		return Signature{}, errors.New("ecdsa: raw signature component out of range")
	}
	return Signature{R: r, S: s}, nil
}

// rfc6979 produces the deterministic nonce stream of RFC 6979 §3.2
// with HMAC-SHA-256.
type rfc6979 struct {
	c    *ec.Curve
	v, k []byte
	h    func() []byte // steps the generator and returns candidate bytes
}

func newRFC6979(c *ec.Curve, priv *big.Int, digest []byte) *rfc6979 {
	hlen := sha256.Size
	v := make([]byte, hlen)
	k := make([]byte, hlen)
	for i := range v {
		v[i] = 0x01
	}

	x := c.ScalarToBytes(priv)
	h1 := c.ScalarToBytes(c.HashToInt(digest)) // bits2octets(H(m))

	mac := func(key []byte, parts ...[]byte) []byte {
		m := hmac.New(sha256.New, key)
		for _, p := range parts {
			m.Write(p)
		}
		return m.Sum(nil)
	}

	k = mac(k, v, []byte{0x00}, x, h1)
	v = mac(k, v)
	k = mac(k, v, []byte{0x01}, x, h1)
	v = mac(k, v)

	g := &rfc6979{c: c, v: v, k: k}
	g.h = func() []byte {
		out := make([]byte, 0, c.ByteLen())
		for len(out) < c.ByteLen() {
			g.v = mac(g.k, g.v)
			out = append(out, g.v...)
		}
		return out[:c.ByteLen()]
	}
	return g
}

// next returns the next candidate nonce in [0, 2^qlen); the caller
// rejects values outside [1, n−1].
func (g *rfc6979) next() *big.Int {
	defer func() {
		// Per RFC 6979: K = HMAC_K(V ‖ 0x00); V = HMAC_K(V) before the
		// next candidate.
		mac := hmac.New(sha256.New, g.k)
		mac.Write(g.v)
		mac.Write([]byte{0x00})
		g.k = mac.Sum(nil)
		mac2 := hmac.New(sha256.New, g.k)
		mac2.Write(g.v)
		g.v = mac2.Sum(nil)
	}()
	t := g.h()
	k := new(big.Int).SetBytes(t)
	if excess := len(t)*8 - g.c.N.BitLen(); excess > 0 {
		k.Rsh(k, uint(excess))
	}
	return k
}
