package ecdsa

import (
	"crypto/sha256"
	"fmt"
	"math/big"
	"testing"

	"repro/internal/ec"
)

// batchFixture signs n distinct digests under n distinct keys on
// curve c (every key precomputed when tables is true).
func batchFixture(t testing.TB, c *ec.Curve, n int, tables bool) []BatchItem {
	rng := newDetRand(int64(41 + n))
	items := make([]BatchItem, n)
	for i := range items {
		key, err := GenerateKey(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		digest := sha256.Sum256([]byte(fmt.Sprintf("wave item %d on %s", i, c.Name)))
		sig, err := key.SignDigest(digest[:])
		if err != nil {
			t.Fatal(err)
		}
		pub := key.Public()
		if tables {
			pub.Precompute()
		}
		items[i] = BatchItem{Key: pub, Digest: digest[:], Sig: sig}
	}
	return items
}

// TestVerifyBatchAllValid: every verdict true across batch sizes,
// curves and table presence.
func TestVerifyBatchAllValid(t *testing.T) {
	for _, c := range ec.Curves() {
		for _, tables := range []bool{false, true} {
			for _, n := range []int{1, 2, 3, 16} {
				items := batchFixture(t, c, n, tables)
				for i, ok := range VerifyBatch(items) {
					if !ok {
						t.Fatalf("%s tables=%v n=%d: item %d rejected", c.Name, tables, n, i)
					}
				}
			}
		}
	}
}

// TestVerifyBatchMatchesVerify is the acceptance gate: for every item
// — valid, corrupted, malformed, or degenerate — VerifyBatch's verdict
// must equal VerifyDigest's, in particular at batch size one.
func TestVerifyBatchMatchesVerify(t *testing.T) {
	c := ec.P256()
	items := batchFixture(t, c, 6, true)

	// Corrupt item 1's digest, item 2's r, item 3's s.
	items[1].Digest = append([]byte(nil), items[1].Digest...)
	items[1].Digest[0] ^= 0xff
	items[2].Sig.R = new(big.Int).Add(items[2].Sig.R, big.NewInt(1))
	items[3].Sig.S = new(big.Int).Sub(c.N, big.NewInt(1)) // in range, wrong

	// Item 4: swap in a key the signature was not made under.
	items[4].Key = items[5].Key

	// Append malformed items that must fail fast without contaminating
	// the batch.
	valid := batchFixture(t, c, 1, false)[0]
	items = append(items,
		BatchItem{Key: nil, Digest: valid.Digest, Sig: valid.Sig},
		BatchItem{Key: valid.Key, Digest: valid.Digest, Sig: Signature{}},
		BatchItem{Key: valid.Key, Digest: valid.Digest,
			Sig: Signature{R: big.NewInt(0), S: valid.Sig.S}},
		BatchItem{Key: valid.Key, Digest: valid.Digest,
			Sig: Signature{R: valid.Sig.R, S: new(big.Int).Set(c.N)}},
		BatchItem{Key: &PublicKey{Curve: c, Q: ec.Point{}}, Digest: valid.Digest, Sig: valid.Sig},
		BatchItem{Key: &PublicKey{Curve: c, Q: ec.Point{X: big.NewInt(1), Y: big.NewInt(1)}},
			Digest: valid.Digest, Sig: valid.Sig},
		valid,
	)

	got := VerifyBatch(items)
	for i, it := range items {
		var want bool
		if it.Key != nil {
			want = it.Key.VerifyDigest(it.Digest, it.Sig)
		}
		if got[i] != want {
			t.Fatalf("item %d: VerifyBatch = %v, VerifyDigest = %v", i, got[i], want)
		}
	}

	// Batch of one — for every single item.
	for i, it := range items {
		single := VerifyBatch(items[i : i+1])
		var want bool
		if it.Key != nil {
			want = it.Key.VerifyDigest(it.Digest, it.Sig)
		}
		if single[0] != want {
			t.Fatalf("item %d alone: VerifyBatch = %v, VerifyDigest = %v", i, single[0], want)
		}
	}
}

// TestVerifyBatchMixedCurves: one batch spanning all three curves
// still produces per-item VerifyDigest verdicts.
func TestVerifyBatchMixedCurves(t *testing.T) {
	var items []BatchItem
	for _, c := range ec.Curves() {
		items = append(items, batchFixture(t, c, 3, c == ec.P224())...)
	}
	// Corrupt one per curve.
	for _, i := range []int{0, 4, 8} {
		items[i].Digest = append([]byte(nil), items[i].Digest...)
		items[i].Digest[3] ^= 0x55
	}
	got := VerifyBatch(items)
	for i, it := range items {
		want := it.Key.VerifyDigest(it.Digest, it.Sig)
		if got[i] != want {
			t.Fatalf("mixed item %d: VerifyBatch = %v, VerifyDigest = %v", i, got[i], want)
		}
	}
}

func TestVerifyBatchEmpty(t *testing.T) {
	if got := VerifyBatch(nil); len(got) != 0 {
		t.Fatalf("VerifyBatch(nil) = %v", got)
	}
	if got := VerifyBatch([]BatchItem{}); len(got) != 0 {
		t.Fatalf("VerifyBatch(empty) = %v", got)
	}
}

func TestBatchModInverse(t *testing.T) {
	n := ec.P256().N
	xs := []*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(12345),
		new(big.Int).Sub(n, big.NewInt(1))}
	for i, w := range batchModInverse(xs, n) {
		want := new(big.Int).ModInverse(xs[i], n)
		if w.Cmp(want) != 0 {
			t.Fatalf("batchModInverse[%d] = %v, want %v", i, w, want)
		}
	}
	if got := batchModInverse(nil, n); len(got) != 0 {
		t.Fatalf("batchModInverse(nil) = %v", got)
	}
}

// verifyBatchAllocBudget is the per-item heap-allocation ceiling of a
// table-backed 16-item batch, enforced by CI next to the ScalarMult
// gate. The fixed-limb backend keeps the point arithmetic allocation-
// free; what remains is big.Int boundary work (scalars, digests,
// coordinate conversion), which must stay O(1) per item.
const verifyBatchAllocBudget = 48

func TestVerifyBatchAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget needs steady-state measurement")
	}
	if !ec.UsesFPBackend() {
		t.Skip("built with -tags ec_purebig: the math/big oracle allocates freely by design")
	}
	items := batchFixture(t, ec.P256(), 16, true)
	VerifyBatch(items) // warm comb/base tables outside the measurement
	avg := testing.AllocsPerRun(10, func() {
		res := VerifyBatch(items)
		if !res[0] {
			t.Fatal("batch rejected a valid item")
		}
	})
	perItem := avg / float64(len(items))
	t.Logf("VerifyBatch(16): %.1f allocs/run, %.2f allocs/item (budget %d)", avg, perItem, verifyBatchAllocBudget)
	if perItem > verifyBatchAllocBudget {
		t.Fatalf("VerifyBatch allocates %.2f/item, budget %d", perItem, verifyBatchAllocBudget)
	}
}

// BenchmarkVerifyBatch and BenchmarkVerifySequential record the
// batch-vs-N×Verify trajectory entry at wave sizes 1, 4 and 16.
func BenchmarkVerifyBatch(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		items := batchFixture(b, ec.P256(), n, true)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := VerifyBatch(items); !res[0] {
					b.Fatal("rejected")
				}
			}
		})
	}
}

func BenchmarkVerifySequential(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		items := batchFixture(b, ec.P256(), n, true)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range items {
					if !items[j].Key.VerifyDigest(items[j].Digest, items[j].Sig) {
						b.Fatal("rejected")
					}
				}
			}
		})
	}
}
