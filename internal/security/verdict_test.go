package security

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/ecdsa"
)

// TestCredentialBindsChallenge proves both directions of the shared
// verdict helper on real ECQV credentials: a sound recording verifies
// against its original challenge (the recording is not garbage) and
// fails against every fresh one (the replay is rejected for the right
// reason).
func TestCredentialBindsChallenge(t *testing.T) {
	curve := ec.P256()
	net, err := core.NewNetwork(curve, newDetRand(11))
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := net.Pair("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}

	// b signs the "session 1" challenge with its ECQV-reconstructed key
	// — exactly the credential a replay attacker records off the wire.
	priv, err := ecdsa.NewPrivateKey(curve, b.Priv)
	if err != nil {
		t.Fatal(err)
	}
	original := []byte("nonce-B1 || nonce-A1")
	sig, err := priv.Sign(original)
	if err != nil {
		t.Fatal(err)
	}
	raw := sig.EncodeRaw(curve)

	ok, err := CredentialBindsChallenge(curve, b.Cert, a.CAPub, raw, original)
	if err != nil {
		t.Fatalf("sound recording produced no verdict: %v", err)
	}
	if !ok {
		t.Error("recorded credential does not verify against its own challenge — the recording is garbage")
	}

	fresh := []byte("nonce-B1 || nonce-A2")
	ok, err = CredentialBindsChallenge(curve, b.Cert, a.CAPub, raw, fresh)
	if err != nil {
		t.Fatalf("fresh challenge produced no verdict: %v", err)
	}
	if ok {
		t.Error("SECURITY: stale credential verified against a fresh challenge")
	}

	// Wrong signer: a's CA view of b's cert with a signature from a's
	// own key must not verify either.
	otherPriv, err := ecdsa.NewPrivateKey(curve, a.Priv)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := otherPriv.Sign(original)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = CredentialBindsChallenge(curve, b.Cert, a.CAPub, forged.EncodeRaw(curve), original)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("SECURITY: signature under the wrong key verified")
	}

	// Unusable inputs are "no verdict", never "rejected": the error
	// must be non-nil so callers can't mistake garbage for safety.
	if _, err := CredentialBindsChallenge(curve, b.Cert, a.CAPub, []byte{1, 2, 3}, original); err == nil {
		t.Error("truncated signature produced a verdict")
	}
}

// TestClassifyReplay pins the outcome mapping the scenario engine's
// live replay adversary depends on.
func TestClassifyReplay(t *testing.T) {
	cases := []struct {
		completed bool
		err       error
		want      ReplayOutcome
	}{
		{true, nil, ReplayAccepted},
		// Completion wins regardless of a stray error: a finished
		// handshake IS an accepted replay.
		{true, core.ErrHandshakeAuth, ReplayAccepted},
		{false, core.ErrHandshakeAuth, ReplayRejectedAuth},
		{false, fmt.Errorf("wrapped: %w", core.ErrHandshakeAuth), ReplayRejectedAuth},
		{false, errors.New("transport abort"), ReplayRejectedProtocol},
		{false, nil, ReplayRejectedProtocol},
	}
	for _, tc := range cases {
		if got := ClassifyReplay(tc.completed, tc.err); got != tc.want {
			t.Errorf("ClassifyReplay(%v, %v) = %v, want %v", tc.completed, tc.err, got, tc.want)
		}
	}
}

// TestReplayOutcomeString pins the accounting labels that appear in
// traces and the schema-v4 JSON.
func TestReplayOutcomeString(t *testing.T) {
	want := map[ReplayOutcome]string{
		ReplayAccepted:         "accepted",
		ReplayRejectedAuth:     "rejected-auth",
		ReplayRejectedProtocol: "rejected-protocol",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
}
