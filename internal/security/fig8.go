package security

// Figure 8 of the paper maps the STS-ECQV design's countermeasures to
// the threat model. This file encodes that block diagram as data so
// the experiment harness can render it and the tests can check its
// consistency with the simulated Table III verdicts.

// Asset is a protected system asset (§IV-A).
type Asset string

const (
	// AssetSessionData — the exchanged session traffic.
	AssetSessionData Asset = "Session Data"
	// AssetCredentials — long-term security credentials.
	AssetCredentials Asset = "Security Credentials"
)

// Countermeasure is one of the design properties of Fig. 8.
type Countermeasure string

const (
	// CounterForwardSecrecy — C1: ephemeral per-session secrets.
	CounterForwardSecrecy Countermeasure = "C1: Forward Secrecy"
	// CounterECDSAAuth — C2: ECDSA mutual authentication under
	// ECQV-reconstructed keys.
	CounterECDSAAuth Countermeasure = "C2: ECDSA Authentication"
	// CounterSTSECQV — C3: the combined STS & ECQV protocol property
	// (fresh KD bound to authenticated identities).
	CounterSTSECQV Countermeasure = "C3: STS & ECQV Property"
)

// ThreatMapping is one threat node of the Fig. 8 diagram.
type ThreatMapping struct {
	ID      string
	Name    string
	Assets  []Asset
	Counter []Countermeasure
	// Residual marks the "[R] partial protection" annotation: the
	// countermeasures reduce but do not eliminate the threat.
	Residual bool
	// Criterion links the threat to its Table III row for consistency
	// checks ("" when the row has no direct counterpart).
	Criterion Criterion
}

// Fig8Mapping returns the STS-ECQV threat/countermeasure diagram.
func Fig8Mapping() []ThreatMapping {
	return []ThreatMapping{
		{
			ID:        "T1",
			Name:      "Past Data Exposure",
			Assets:    []Asset{AssetSessionData},
			Counter:   []Countermeasure{CounterForwardSecrecy},
			Criterion: CritDataExposure,
		},
		{
			ID:        "T2",
			Name:      "MitM Attacks",
			Assets:    []Asset{AssetSessionData, AssetCredentials},
			Counter:   []Countermeasure{CounterECDSAAuth},
			Criterion: CritAuthProcedure,
		},
		{
			ID:        "T3",
			Name:      "Node Capture",
			Assets:    []Asset{AssetSessionData, AssetCredentials},
			Counter:   []Countermeasure{CounterForwardSecrecy, CounterECDSAAuth},
			Residual:  true, // "[R] partial protection"
			Criterion: CritNodeCapture,
		},
		{
			ID:        "T4",
			Name:      "Key Data Reuse",
			Assets:    []Asset{AssetSessionData},
			Counter:   []Countermeasure{CounterForwardSecrecy, CounterSTSECQV},
			Criterion: CritKeyDataReuse,
		},
		{
			ID:        "T5",
			Name:      "Key Deriv. Exploitation",
			Assets:    []Asset{AssetSessionData, AssetCredentials},
			Counter:   []Countermeasure{CounterSTSECQV},
			Criterion: CritKeyDerivationExploit,
		},
	}
}

// ConsistentWith checks the Fig. 8 mapping against a simulated STS
// assessment: threats with countermeasures and no residual marker must
// be fully protected; residual threats must be partial.
func ConsistentWith(sts *Assessment) error {
	for _, t := range Fig8Mapping() {
		v, ok := sts.Verdicts[t.Criterion]
		if !ok {
			return errMissing(t)
		}
		if t.Residual && v != VerdictPartial {
			return errVerdict(t, v, VerdictPartial)
		}
		if !t.Residual && v != VerdictFull {
			return errVerdict(t, v, VerdictFull)
		}
	}
	return nil
}

type fig8Error struct{ msg string }

func (e fig8Error) Error() string { return e.msg }

func errMissing(t ThreatMapping) error {
	return fig8Error{"fig8: no verdict for " + t.ID + " (" + string(t.Criterion) + ")"}
}

func errVerdict(t ThreatMapping, got, want Verdict) error {
	return fig8Error{"fig8: " + t.ID + " verdict " + got.String() + ", want " + want.String()}
}
