package security

import (
	"strings"
	"testing"
)

// fullVerdicts builds an assessment matching every Fig. 8 expectation.
func fullVerdicts() *Assessment {
	return &Assessment{
		Protocol: "STS",
		Verdicts: map[Criterion]Verdict{
			CritDataExposure:         VerdictFull,
			CritNodeCapture:          VerdictPartial, // T3 is residual
			CritKeyDataReuse:         VerdictFull,
			CritKeyDerivationExploit: VerdictFull,
			CritAuthProcedure:        VerdictFull,
		},
	}
}

// TestFig8MappingStructure pins the diagram's invariants beyond the
// counts: unique IDs, every threat linked to a distinct Table III
// criterion, and the residual marker on exactly node capture.
func TestFig8MappingStructure(t *testing.T) {
	seenID := map[string]bool{}
	seenCrit := map[Criterion]bool{}
	for _, m := range Fig8Mapping() {
		if seenID[m.ID] {
			t.Errorf("duplicate threat ID %s", m.ID)
		}
		seenID[m.ID] = true
		if m.Criterion == "" {
			t.Errorf("%s has no Table III row", m.ID)
			continue
		}
		if seenCrit[m.Criterion] {
			t.Errorf("criterion %s mapped twice", m.Criterion)
		}
		seenCrit[m.Criterion] = true
		if m.Residual != (m.ID == "T3") {
			t.Errorf("%s residual = %v — only T3 (node capture) is partial in the paper", m.ID, m.Residual)
		}
	}
	// Every Table III criterion appears in the diagram.
	for _, c := range Criteria() {
		if !seenCrit[c] {
			t.Errorf("criterion %s missing from Fig. 8", c)
		}
	}
}

// TestFig8ConsistencyErrorPaths covers each way an assessment can
// contradict the diagram, and the error text naming the threat.
func TestFig8ConsistencyErrorPaths(t *testing.T) {
	if err := ConsistentWith(fullVerdicts()); err != nil {
		t.Fatalf("reference verdicts rejected: %v", err)
	}

	// A verdict missing entirely.
	missing := fullVerdicts()
	delete(missing.Verdicts, CritKeyDataReuse)
	if err := ConsistentWith(missing); err == nil {
		t.Error("missing verdict accepted")
	} else if !strings.Contains(err.Error(), "T4") || !strings.Contains(err.Error(), "no verdict") {
		t.Errorf("missing-verdict error unhelpful: %v", err)
	}

	// A non-residual threat downgraded to partial.
	weak := fullVerdicts()
	weak.Verdicts[CritDataExposure] = VerdictPartial
	if err := ConsistentWith(weak); err == nil {
		t.Error("downgraded T1 accepted")
	} else if !strings.Contains(err.Error(), "T1") {
		t.Errorf("downgrade error names the wrong threat: %v", err)
	}

	// The residual threat claiming weak (not partial) protection.
	worse := fullVerdicts()
	worse.Verdicts[CritNodeCapture] = VerdictWeak
	if err := ConsistentWith(worse); err == nil {
		t.Error("weak node-capture verdict accepted")
	} else if !strings.Contains(err.Error(), "T3") {
		t.Errorf("residual error names the wrong threat: %v", err)
	}
}
