package security

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// paperTable3 is the measured security matrix of the paper's
// Table III, column order S-ECDSA, STS, SCIANC, PORAMB.
var paperTable3 = map[Criterion]map[string]Verdict{
	CritDataExposure: {
		"S-ECDSA": VerdictWeak, "STS": VerdictFull, "SCIANC": VerdictWeak, "PORAMB": VerdictWeak,
	},
	CritNodeCapture: {
		"S-ECDSA": VerdictPartial, "STS": VerdictPartial, "SCIANC": VerdictWeak, "PORAMB": VerdictWeak,
	},
	CritKeyDataReuse: {
		"S-ECDSA": VerdictWeak, "STS": VerdictFull, "SCIANC": VerdictPartial, "PORAMB": VerdictWeak,
	},
	CritKeyDerivationExploit: {
		"S-ECDSA": VerdictPartial, "STS": VerdictFull, "SCIANC": VerdictPartial, "PORAMB": VerdictPartial,
	},
	CritAuthProcedure: {
		"S-ECDSA": VerdictFull, "STS": VerdictFull, "SCIANC": VerdictPartial, "PORAMB": VerdictPartial,
	},
}

func TestTable3MatchesPaper(t *testing.T) {
	// The verdicts produced by the attack simulations must reproduce
	// the paper's Table III cell-for-cell.
	an := NewAnalyzer(newDetRand(1))
	assessments, err := an.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(assessments) != 4 {
		t.Fatalf("%d assessments, want 4", len(assessments))
	}
	for _, as := range assessments {
		for crit, wantByProto := range paperTable3 {
			want, ok := wantByProto[as.Protocol]
			if !ok {
				t.Fatalf("no paper verdict for %s/%s", as.Protocol, crit)
			}
			got := as.Verdicts[crit]
			if got != want {
				t.Errorf("%s / %s: simulated %s, paper %s", as.Protocol, crit, got, want)
			}
		}
	}
}

func TestSTSPastExposureAttackFails(t *testing.T) {
	// The core PFS claim: long-term key compromise must NOT reveal
	// recorded STS session keys.
	an := NewAnalyzer(newDetRand(2))
	as, err := an.Analyze(core.NewSTS(core.OptNone))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range as.Findings {
		if f.Attack == "past data exposure (T1): compromise long-term keys, re-derive recorded session key" && f.Succeeded {
			t.Error("T1 attack succeeded against STS")
		}
	}
	if as.Verdicts[CritDataExposure] != VerdictFull {
		t.Error("STS data-exposure verdict not ✓")
	}
}

func TestStaticProtocolsPastExposureAttackSucceeds(t *testing.T) {
	// The attack must actually work (not merely be assumed) against
	// every static-KD protocol.
	an := NewAnalyzer(newDetRand(3))
	for _, p := range []core.Protocol{core.NewSECDSA(false), core.NewSCIANC(), core.NewPORAMB()} {
		as, err := an.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, f := range as.Findings {
			if f.Attack == "past data exposure (T1): compromise long-term keys, re-derive recorded session key" {
				found = f.Succeeded
			}
		}
		if !found {
			t.Errorf("%s: T1 re-derivation attack did not succeed (it must, for a static KD)", p.Name())
		}
	}
}

func TestSCIANCFutureAuthForgery(t *testing.T) {
	// The paper's SCIANC critique: one compromised session key forges
	// the next session's authentication.
	an := NewAnalyzer(newDetRand(4))
	as, err := an.Analyze(core.NewSCIANC())
	if err != nil {
		t.Fatal(err)
	}
	forged := false
	for _, f := range as.Findings {
		if f.Attack == "key derivation exploit (T5): forge next-session authentication from one compromised session key" {
			forged = f.Succeeded
		}
	}
	if !forged {
		t.Error("SCIANC future-auth forgery did not succeed")
	}

	// And the same attack must fail against STS.
	asSTS, err := an.Analyze(core.NewSTS(core.OptNone))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range asSTS.Findings {
		if f.Attack == "key derivation exploit (T5): forge next-session authentication from one compromised session key" && f.Succeeded {
			t.Error("future-auth forgery succeeded against STS")
		}
	}
}

func TestNodeCaptureKCI(t *testing.T) {
	// PORAMB and SCIANC: capturing one node lets the attacker
	// impersonate the peer (symmetric credentials). S-ECDSA and STS:
	// it does not.
	an := NewAnalyzer(newDetRand(5))
	expect := map[string]bool{
		"S-ECDSA": false, "STS": false, "SCIANC": true, "PORAMB": true,
	}
	for _, p := range []core.Protocol{
		core.NewSECDSA(false), core.NewSTS(core.OptNone), core.NewSCIANC(), core.NewPORAMB(),
	} {
		as, err := an.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		got := false
		for _, f := range as.Findings {
			if f.Attack == "node capture (T3): impersonate the peer using one captured endpoint's state" {
				got = f.Succeeded
			}
		}
		if got != expect[p.Name()] {
			t.Errorf("%s: KCI success = %v, want %v", p.Name(), got, expect[p.Name()])
		}
	}
}

func TestImpersonationRejectedEverywhere(t *testing.T) {
	// All four protocols must reject a rogue-CA impostor — they all
	// have *some* authentication; the verdict differences are about
	// its quality.
	an := NewAnalyzer(newDetRand(6))
	for _, p := range []core.Protocol{
		core.NewSECDSA(false), core.NewSTS(core.OptNone), core.NewSCIANC(), core.NewPORAMB(),
	} {
		as, err := an.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range as.Findings {
			if f.Attack == "MitM (T2): complete the handshake with credentials from a rogue CA" && f.Succeeded {
				t.Errorf("%s: rogue-CA impostor completed the handshake", p.Name())
			}
		}
	}
}

func TestReplayRejectedEverywhere(t *testing.T) {
	// Freshness: replayed session-1 credentials must be rejected in
	// session 2 by every protocol.
	an := NewAnalyzer(newDetRand(8))
	for _, p := range []core.Protocol{
		core.NewSECDSA(false), core.NewSTS(core.OptNone), core.NewSCIANC(), core.NewPORAMB(),
	} {
		as, err := an.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		seen := false
		for _, f := range as.Findings {
			if f.Attack == "replay (T2): inject session-1 authentication material into session 2" {
				seen = true
				if f.Succeeded {
					t.Errorf("%s: replay attack succeeded (%s)", p.Name(), f.Detail)
				}
			}
		}
		if !seen {
			t.Errorf("%s: replay attack not executed", p.Name())
		}
	}
}

func TestFig8Consistency(t *testing.T) {
	an := NewAnalyzer(newDetRand(7))
	sts, err := an.Analyze(core.NewSTS(core.OptNone))
	if err != nil {
		t.Fatal(err)
	}
	if err := ConsistentWith(sts); err != nil {
		t.Errorf("Fig. 8 mapping inconsistent with simulated STS verdicts: %v", err)
	}

	// The mapping itself: five threats, every one countered, exactly
	// one residual (node capture).
	mapping := Fig8Mapping()
	if len(mapping) != 5 {
		t.Fatalf("%d threats, want 5", len(mapping))
	}
	residuals := 0
	for _, m := range mapping {
		if len(m.Counter) == 0 {
			t.Errorf("%s: no countermeasure", m.ID)
		}
		if len(m.Assets) == 0 {
			t.Errorf("%s: no asset", m.ID)
		}
		if m.Residual {
			residuals++
		}
	}
	if residuals != 1 {
		t.Errorf("%d residual threats, want 1 (T3)", residuals)
	}
}

func TestFig8InconsistencyDetected(t *testing.T) {
	// A fabricated assessment that claims full node-capture protection
	// must be flagged.
	fake := &Assessment{
		Protocol: "STS",
		Verdicts: map[Criterion]Verdict{
			CritDataExposure:         VerdictFull,
			CritNodeCapture:          VerdictFull, // wrong: must be partial
			CritKeyDataReuse:         VerdictFull,
			CritKeyDerivationExploit: VerdictFull,
			CritAuthProcedure:        VerdictFull,
		},
	}
	if err := ConsistentWith(fake); err == nil {
		t.Error("inconsistent assessment accepted")
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictWeak.String() != "X" || VerdictPartial.String() != "∆" || VerdictFull.String() != "✓" {
		t.Error("verdict notation drifted from the paper")
	}
}

func TestCriteriaOrder(t *testing.T) {
	want := []Criterion{
		CritDataExposure, CritNodeCapture, CritKeyDataReuse,
		CritKeyDerivationExploit, CritAuthProcedure,
	}
	got := Criteria()
	if len(got) != len(want) {
		t.Fatal("criteria count")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("criteria[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestSignatureBasedDetection(t *testing.T) {
	if !signatureBased(core.NewSTS(core.OptNone)) || !signatureBased(core.NewSECDSA(false)) {
		t.Error("signature protocols not detected")
	}
	if signatureBased(core.NewSCIANC()) || signatureBased(core.NewPORAMB()) {
		t.Error("symmetric protocols misdetected as signature-based")
	}
}
