// Package security implements the paper's threat analysis (§IV-A,
// §V-D) as executable attacker simulations rather than a hand-written
// matrix: every verdict of Table III is derived from an attack that
// actually runs against real protocol transcripts and credentials.
//
// Threat model (§IV-A): (T1) past data exposure, (T2) MitM attacks,
// (T3) node capturing, (T4) key data reuse, (T5) key derivation
// exploitation. Assets: session data and security credentials.
//
// Attacker capabilities simulated here:
//
//   - passive network capture: every transcript byte;
//   - credential compromise: both parties' long-term private keys
//     (certificate reconstruction values, pairwise PSKs);
//   - node capture: the full state of one endpoint;
//   - session-key compromise: the key block of a single finished
//     session;
//   - active impersonation: protocol runs with forged or replayed
//     credentials.
package security

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"

	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/ecdsa"
	"repro/internal/ecqv"
	"repro/internal/kdf"
)

// Verdict is a Table III cell.
type Verdict int

const (
	// VerdictWeak — "X": weak or no countermeasure.
	VerdictWeak Verdict = iota
	// VerdictPartial — "∆": partial protection.
	VerdictPartial
	// VerdictFull — "✓": fully protected.
	VerdictFull
)

// String renders the Table III notation.
func (v Verdict) String() string {
	switch v {
	case VerdictFull:
		return "✓"
	case VerdictPartial:
		return "∆"
	default:
		return "X"
	}
}

// Criterion is a Table III row.
type Criterion string

const (
	// CritDataExposure — T1: can recorded traffic be decrypted after a
	// later credential compromise?
	CritDataExposure Criterion = "Data exposure"
	// CritNodeCapture — T3: does capturing one node let the attacker
	// impersonate its peer (KCI)?
	CritNodeCapture Criterion = "Node capturing"
	// CritKeyDataReuse — T4: is key material reused across
	// communication sessions?
	CritKeyDataReuse Criterion = "Key data reuse"
	// CritKeyDerivationExploit — T5: can derived key material be
	// leveraged against other sessions?
	CritKeyDerivationExploit Criterion = "Key der. exploit"
	// CritAuthProcedure — the mutual-authentication row (T2 defence).
	CritAuthProcedure Criterion = "Auth. procedure"
)

// Criteria returns the Table III rows in order.
func Criteria() []Criterion {
	return []Criterion{
		CritDataExposure,
		CritNodeCapture,
		CritKeyDataReuse,
		CritKeyDerivationExploit,
		CritAuthProcedure,
	}
}

// Finding documents one executed attack.
type Finding struct {
	Attack    string
	Succeeded bool
	Detail    string
}

// Assessment is one protocol's Table III column plus the attack
// evidence behind it.
type Assessment struct {
	Protocol string
	Verdicts map[Criterion]Verdict
	Findings []Finding
}

// Analyzer provisions fresh credentials and runs the attack suite.
type Analyzer struct {
	curve *ec.Curve
	rng   io.Reader
}

// NewAnalyzer builds an analyzer on P-256. A nil rng selects
// crypto/rand.
func NewAnalyzer(rng io.Reader) *Analyzer {
	return &Analyzer{curve: ec.P256(), rng: rng}
}

// Analyze runs every attack against one protocol and maps the outcomes
// to Table III verdicts:
//
//	Data exposure    : past-exposure attack succeeds            → X, else ✓
//	Node capturing   : peer impersonation from captured state   → X, else ∆
//	                   (∆, never ✓: "even with STS, the protection can
//	                   only be guaranteed for the previous messages,
//	                   not the future ones")
//	Key data reuse   : identical keys across sessions           → X;
//	                   static-recoverable but diversified       → ∆; else ✓
//	Key der. exploit : dynamic, no future-auth forgery, no past
//	                   exposure                                 → ✓, else ∆
//	Auth. procedure  : impersonation/replay rejected AND
//	                   signature-based                          → ✓;
//	                   rejected but symmetric-key based         → ∆
func (an *Analyzer) Analyze(p core.Protocol) (*Assessment, error) {
	net, err := core.NewNetwork(an.curve, an.rng)
	if err != nil {
		return nil, err
	}
	a, b, err := net.Pair("alice", "bob")
	if err != nil {
		return nil, err
	}

	// Two honest sessions under the same certificate epoch.
	s1, err := p.Run(a, b)
	if err != nil {
		return nil, fmt.Errorf("security: session 1: %w", err)
	}
	s2, err := p.Run(a, b)
	if err != nil {
		return nil, fmt.Errorf("security: session 2: %w", err)
	}

	as := &Assessment{Protocol: p.Name(), Verdicts: map[Criterion]Verdict{}}

	// --- Attack 1: past data exposure (T1).
	exposed, detail := an.attackPastExposure(p, a, b, s1)
	as.record("past data exposure (T1): compromise long-term keys, re-derive recorded session key", exposed, detail)

	// --- Attack 2: key data reuse (T4).
	keysEqual := bytes.Equal(s1.KeyA, s2.KeyA)
	as.record("key data reuse (T4): compare key blocks of two sessions under the same certificates",
		keysEqual, fmt.Sprintf("sessions derived %s key blocks", eqWord(keysEqual)))

	// --- Attack 3: node capture / KCI (T3).
	kci, detail3 := an.attackNodeCapture(p, a, b, s1)
	as.record("node capture (T3): impersonate the peer using one captured endpoint's state", kci, detail3)

	// --- Attack 4: future authentication forgery (T5 evidence).
	futureForge, detail4 := an.attackFutureAuthForgery(p, s1, s2, a, b)
	as.record("key derivation exploit (T5): forge next-session authentication from one compromised session key",
		futureForge, detail4)

	// --- Attack 5: active impersonation without valid credentials (T2).
	mitmRejected, detail5 := an.attackImpersonation(p)
	as.record("MitM (T2): complete the handshake with credentials from a rogue CA", !mitmRejected, detail5)

	// --- Attack 6: replay of recorded authentication material (T2).
	replayOK, detail6 := an.attackReplay(p, s1, s2, a, b)
	as.record("replay (T2): inject session-1 authentication material into session 2", replayOK, detail6)
	if replayOK {
		mitmRejected = false // a replayable handshake has no freshness
	}

	// Verdict mapping.
	if exposed {
		as.Verdicts[CritDataExposure] = VerdictWeak
	} else {
		as.Verdicts[CritDataExposure] = VerdictFull
	}

	if kci {
		as.Verdicts[CritNodeCapture] = VerdictWeak
	} else {
		as.Verdicts[CritNodeCapture] = VerdictPartial
	}

	switch {
	case keysEqual:
		as.Verdicts[CritKeyDataReuse] = VerdictWeak
	case exposed:
		// Fresh-looking keys, but re-derivable from static material:
		// diversification without independence.
		as.Verdicts[CritKeyDataReuse] = VerdictPartial
	default:
		as.Verdicts[CritKeyDataReuse] = VerdictFull
	}

	if p.Dynamic() && !futureForge && !exposed {
		as.Verdicts[CritKeyDerivationExploit] = VerdictFull
	} else {
		as.Verdicts[CritKeyDerivationExploit] = VerdictPartial
	}

	switch {
	case !mitmRejected:
		as.Verdicts[CritAuthProcedure] = VerdictWeak
	case signatureBased(p):
		as.Verdicts[CritAuthProcedure] = VerdictFull
	default:
		as.Verdicts[CritAuthProcedure] = VerdictPartial
	}

	return as, nil
}

func (as *Assessment) record(attack string, succeeded bool, detail string) {
	as.Findings = append(as.Findings, Finding{Attack: attack, Succeeded: succeeded, Detail: detail})
}

func eqWord(equal bool) string {
	if equal {
		return "identical"
	}
	return "distinct"
}

// signatureBased reports whether the protocol authenticates with ECDSA
// signatures (detected from the wire spec, not hard-coded names).
func signatureBased(p core.Protocol) bool {
	for _, step := range p.Spec() {
		for _, f := range step.Fields {
			if f.Name == "Sign" || f.Name == "Resp" {
				return true
			}
		}
	}
	return false
}

// Table3 analyzes the four protocol families of the paper's Table III
// in column order.
func (an *Analyzer) Table3() ([]*Assessment, error) {
	out := make([]*Assessment, 0, 4)
	for _, p := range []core.Protocol{
		core.NewSECDSA(false),
		core.NewSTS(core.OptNone),
		core.NewSCIANC(),
		core.NewPORAMB(),
	} {
		a, err := an.Analyze(p)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Attack implementations.
// ---------------------------------------------------------------------------

// attackPastExposure models T1: the attacker recorded the full session
// transcript, later compromises both parties' long-term credentials
// (private keys, pairwise PSK, CA public key — everything except the
// session's ephemeral secrets), and re-runs the protocol's key
// derivation. Success means the recorded traffic is decryptable.
func (an *Analyzer) attackPastExposure(p core.Protocol, a, b *core.Party, s *core.Result) (bool, string) {
	recovered := an.recoverSessionKey(p, a, b, s)
	if recovered == nil {
		return false, "attacker computation has no path to the ephemeral premaster"
	}
	if bytes.Equal(recovered, s.KeyA) {
		return true, "session key re-derived from transcript + long-term keys"
	}
	return false, "best-effort re-derivation produced a different key"
}

// recoverSessionKey replays each protocol's public key-derivation
// construction using only transcript data and long-term secrets
// (Kerckhoffs: the construction itself is known).
func (an *Analyzer) recoverSessionKey(p core.Protocol, a, b *core.Party, s *core.Result) []byte {
	curve := an.curve
	switch p.(type) {
	case *core.SECDSA:
		pm := staticPremaster(curve, a.Priv, b.Cert, a.CAPub)
		if pm == nil {
			return nil
		}
		enc, mac, err := kdf.SessionKeys(pm, sECDSASaltPublic(a.ID, b.ID))
		if err != nil {
			return nil
		}
		return append(enc, mac...)

	case *core.PORAMB:
		pm := staticPremaster(curve, a.Priv, b.Cert, a.CAPub)
		if pm == nil {
			return nil
		}
		salt := append([]byte("poramb-static|"), append(append([]byte{}, a.ID[:]...), b.ID[:]...)...)
		enc, mac, err := kdf.SessionKeys(pm, salt)
		if err != nil {
			return nil
		}
		return append(enc, mac...)

	case *core.SCIANC:
		pm := staticPremaster(curve, a.Priv, b.Cert, a.CAPub)
		if pm == nil {
			return nil
		}
		nonceA := findField(s, "A1", "Nonce")
		nonceB := findField(s, "B1", "Nonce")
		salt := append([]byte("scianc-enc|"), append(append([]byte{}, nonceA...), nonceB...)...)
		enc, _, err := kdf.SessionKeys(pm, salt)
		if err != nil {
			return nil
		}
		_, auth, err := kdf.SessionKeys(pm, []byte("scianc-static-auth"))
		if err != nil {
			return nil
		}
		return append(enc, auth...)

	case *core.STS:
		// Best effort with everything the attacker holds: long-term
		// keys and the transcript's ephemeral points. The actual
		// premaster is X_A·XG_B, and X_A/X_B were erased with the
		// session. The attacker's closest computable candidate mixes a
		// long-term key with an ephemeral point.
		xgB := findField(s, "B1", "XG")
		xgA := findField(s, "A1", "XG")
		pB, err := decodeRawPoint(curve, xgB)
		if err != nil {
			return nil
		}
		shared := curve.ScalarMult(pB, a.Priv) // wrong by construction
		pm := make([]byte, curve.ByteLen())
		if shared.IsInfinity() {
			return nil
		}
		shared.X.FillBytes(pm)
		salt := append(append([]byte{}, xgA...), xgB...)
		enc, mac, err := kdf.SessionKeys(pm, salt)
		if err != nil {
			return nil
		}
		return append(enc, mac...)
	}
	return nil
}

// attackNodeCapture models T3 as key-compromise impersonation: the
// attacker captures endpoint A in its entirety and tries to construct
// the authentication credential that A itself would accept *from B*.
func (an *Analyzer) attackNodeCapture(p core.Protocol, a, b *core.Party, s *core.Result) (bool, string) {
	switch p.(type) {
	case *core.PORAMB:
		// The pairwise key is symmetric: A's copy IS B's signing key.
		certB := findField(s, "B2", "Cert")
		nonceB := findField(s, "B2", "Nonce")
		helloA := findField(s, "A1", "Hello")
		forged := hmacSHA256(a.PairwiseKey, []byte("poramb|B"), certB, nonceB, helloA)
		genuine := findField(s, "B2", "MAC")
		if bytes.Equal(forged, genuine) {
			return true, "pairwise PSK from the captured node reproduces the peer's MAC"
		}
		return false, "pairwise forgery mismatch"

	case *core.SCIANC:
		// A's private key plus B's public certificate yield the static
		// premaster, hence the (session-independent) auth key.
		pm := staticPremaster(an.curve, a.Priv, b.Cert, a.CAPub)
		if pm == nil {
			return false, "premaster unavailable"
		}
		_, authKey, err := kdf.SessionKeys(pm, []byte("scianc-static-auth"))
		if err != nil {
			return false, "kdf failure"
		}
		nonceA := findField(s, "A1", "Nonce")
		nonceB := findField(s, "B1", "Nonce")
		forged := hmacSHA256(authKey, []byte("scianc-auth|B"), b.ID[:], a.ID[:], nonceB, nonceA)
		if bytes.Equal(forged, findField(s, "B2", "AuthMAC")) {
			return true, "captured state re-derives the peer's authentication MAC"
		}
		return false, "auth-key forgery mismatch"

	default:
		// Signature-based protocols: the captured node holds only its
		// own ECDSA key. Forging the peer's response requires the
		// peer's private key; signing with the captured key must fail
		// verification under the peer's reconstructed public key.
		qB, err := ecqv.ExtractPublicKey(b.Cert, a.CAPub)
		if err != nil {
			return false, "peer key extraction failed"
		}
		// Try the only signature the attacker can make: one under A's
		// key. (A fresh ephemeral challenge stands in for the
		// session-2 context.)
		challenge := []byte("fresh session challenge")
		forgeOK := signatureForgeryWorks(an.curve, a.Priv, qB, challenge)
		if forgeOK {
			return true, "captured key produced a signature valid under the peer's key (impossible)"
		}
		return false, "peer impersonation requires the peer's ECDSA private key"
	}
}

// attackFutureAuthForgery models the T5 escalation the paper pins on
// SCIANC: compromise ONE session's key block (no long-term keys) and
// try to authenticate in the NEXT session.
func (an *Analyzer) attackFutureAuthForgery(p core.Protocol, s1, s2 *core.Result, a, b *core.Party) (bool, string) {
	switch p.(type) {
	case *core.SCIANC:
		// The key block's MAC half is the session-independent auth key.
		if len(s1.KeyA) < kdf.SessionKeySize {
			return false, "no key material"
		}
		authKey := s1.KeyA[kdf.SessionKeySize:]
		nonceA2 := findField(s2, "A1", "Nonce")
		nonceB2 := findField(s2, "B1", "Nonce")
		forged := hmacSHA256(authKey, []byte("scianc-auth|A"), a.ID[:], b.ID[:], nonceA2, nonceB2)
		if bytes.Equal(forged, findField(s2, "A2", "AuthMAC")) {
			return true, "session-1 key block authenticates session 2 (auth tied to static KD)"
		}
		return false, "forged MAC rejected"
	default:
		// Key blocks of the other protocols contain no credential that
		// survives into the next session's authentication: S-ECDSA and
		// STS authenticate with ECDSA private keys, PORAMB with the
		// pairwise PSK — none of which appear in the session key block.
		return false, "session key block carries no next-session authentication credential"
	}
}

// attackImpersonation models T2: an attacker with well-formed but
// rogue credentials (own CA) attempts a full handshake. Rejection by
// the honest party demonstrates the mutual-authentication barrier.
func (an *Analyzer) attackImpersonation(p core.Protocol) (bool, string) {
	honest, err := core.NewNetwork(an.curve, an.rng)
	if err != nil {
		return false, "setup failure"
	}
	rogue, err := core.NewNetwork(an.curve, an.rng)
	if err != nil {
		return false, "setup failure"
	}
	a, _, err := honest.Pair("alice", "bob")
	if err != nil {
		return false, "setup failure"
	}
	_, mallory, err := rogue.Pair("alice", "bob") // same claimed identity!
	if err != nil {
		return false, "setup failure"
	}
	// Give the impostor the honest pairwise key to isolate the
	// certificate check for PORAMB? No: PORAMB's barrier IS the
	// pairwise key; leave it mismatched, as a real outsider would be.
	_, err = p.Run(a, mallory)
	if err != nil {
		return true, fmt.Sprintf("handshake rejected: %v", err)
	}
	return false, "impostor completed the handshake"
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

// staticPremaster computes x(d_A · Q_B) with Q_B reconstructed from
// the peer certificate — the SKD secret of §II-A.
func staticPremaster(curve *ec.Curve, privA *big.Int, certB *ecqv.Certificate, caPub ec.Point) []byte {
	qB, err := ecqv.ExtractPublicKey(certB, caPub)
	if err != nil {
		return nil
	}
	shared := curve.ScalarMult(qB, privA)
	if shared.IsInfinity() {
		return nil
	}
	out := make([]byte, curve.ByteLen())
	shared.X.FillBytes(out)
	return out
}

// sECDSASaltPublic mirrors the S-ECDSA static salt (public
// construction).
func sECDSASaltPublic(idA, idB ecqv.ID) []byte {
	out := []byte("s-ecdsa-static|")
	out = append(out, idA[:]...)
	out = append(out, idB[:]...)
	return out
}

// findField locates a named field in a labelled transcript step.
func findField(s *core.Result, label, field string) []byte {
	for _, m := range s.Transcript {
		if m.Label == label {
			return m.Get(field)
		}
	}
	return nil
}

func hmacSHA256(key []byte, parts ...[]byte) []byte {
	m := hmac.New(sha256.New, key)
	for _, p := range parts {
		m.Write(p)
	}
	return m.Sum(nil)
}

func decodeRawPoint(curve *ec.Curve, data []byte) (ec.Point, error) {
	if len(data) != 2*curve.ByteLen() {
		return ec.Point{}, fmt.Errorf("security: raw point length %d", len(data))
	}
	p := ec.Point{
		X: new(big.Int).SetBytes(data[:curve.ByteLen()]),
		Y: new(big.Int).SetBytes(data[curve.ByteLen():]),
	}
	if !curve.IsOnCurve(p) {
		return ec.Point{}, fmt.Errorf("security: point off curve")
	}
	return p, nil
}

// signatureForgeryWorks signs a challenge with the attacker's key and
// checks it against the victim's public key — the forgery attempt of
// the node-capture simulation. A signature under attackerPriv verifies
// only under attackerPriv·G; the real computation demonstrates it.
func signatureForgeryWorks(curve *ec.Curve, attackerPriv *big.Int, victimPub ec.Point, challenge []byte) bool {
	key, err := ecdsa.NewPrivateKey(curve, attackerPriv)
	if err != nil {
		return false
	}
	sig, err := key.Sign(challenge)
	if err != nil {
		return false
	}
	pub := &ecdsa.PublicKey{Curve: curve, Q: victimPub}
	return pub.Verify(challenge, sig)
}
