package security

// Shared replay-verdict helpers. The Analyzer's offline replay arms
// (replay.go) and the scenario engine's live replay adversary ask the
// same two questions — "does this recorded credential verify against a
// fresh challenge?" and "did the stack reject the replayed session,
// and on which layer?" — so both answers live here, exported, instead
// of being re-derived (and drifting) in two packages. Every function
// in this file is pure: no randomness, no clocks, no global state, so
// calling them from inside a deterministic scenario never perturbs a
// schedule-invariant run.

import (
	"errors"

	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/ecdsa"
	"repro/internal/ecqv"
)

// CredentialBindsChallenge checks a recorded raw ECDSA credential
// against a challenge under the signer's ECQV-extracted public key.
// It returns true exactly when a verifier presented with `challenge`
// would accept `rawSig` — i.e. when a replay of that credential
// SUCCEEDS. A replay-rejection proof therefore asserts it returns
// false for every fresh challenge, and true for the original one
// (proving the recording itself is sound, not garbage that would fail
// against anything).
//
// Errors report unusable inputs (unparseable signature, certificate
// that fails key extraction); they mean "no verdict", not "rejected".
func CredentialBindsChallenge(curve *ec.Curve, cert *ecqv.Certificate, caPub ec.Point, rawSig, challenge []byte) (bool, error) {
	sig, err := ecdsa.DecodeRaw(curve, rawSig)
	if err != nil {
		return false, errors.New("security: replayed credential unparseable")
	}
	q, err := ecqv.ExtractPublicKey(cert, caPub)
	if err != nil {
		return false, errors.New("security: peer key extraction failed")
	}
	pub := &ecdsa.PublicKey{Curve: curve, Q: q}
	return pub.Verify(challenge, sig), nil
}

// ReplayOutcome classifies what the end of a replayed session means.
type ReplayOutcome int

const (
	// ReplayAccepted — the replayed transcript completed a handshake.
	// A security failure: any attack scenario observing one must fail
	// its run (schema v4 refuses results with accepted_replays > 0).
	ReplayAccepted ReplayOutcome = iota
	// ReplayRejectedAuth — the engine rejected the stale credential
	// cryptographically (core.ErrHandshakeAuth): the freshness binding
	// did its job. This is the verdict the paper's Table III row
	// claims.
	ReplayRejectedAuth
	// ReplayRejectedProtocol — the replay died before reaching a
	// cryptographic check (state-machine desync, transport abort,
	// truncated transcript). The session is still rejected, but the
	// rejection proves robustness, not freshness binding, so attack
	// accounting reports it separately.
	ReplayRejectedProtocol
)

// String renders the outcome for traces and JSON accounting.
func (o ReplayOutcome) String() string {
	switch o {
	case ReplayAccepted:
		return "accepted"
	case ReplayRejectedAuth:
		return "rejected-auth"
	default:
		return "rejected-protocol"
	}
}

// ClassifyReplay maps a replayed session's terminal state to its
// outcome: completed means the victim's engine reported done (the
// replay was ACCEPTED, regardless of err), otherwise err picks the
// rejection layer. Deterministic — same inputs, same verdict — so
// scenario runs may call it on the hot path.
func ClassifyReplay(completed bool, err error) ReplayOutcome {
	if completed {
		return ReplayAccepted
	}
	if errors.Is(err, core.ErrHandshakeAuth) {
		return ReplayRejectedAuth
	}
	return ReplayRejectedProtocol
}
