package security

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"fmt"

	"repro/internal/core"
	"repro/internal/kdf"
)

// attackReplay models the classic freshness attack: the adversary
// recorded session 1 and replays the responder's authentication
// credential into session 2, hoping the initiator accepts stale
// material. For each protocol the simulation checks the replayed
// credential against exactly the value the session-2 verifier would
// require. All four protocols bind a fresh challenge (ephemeral point,
// nonce or hello) into the credential, so the replay must fail —
// this is the evidence behind the mutual-authentication row.
func (an *Analyzer) attackReplay(p core.Protocol, s1, s2 *core.Result, a, b *core.Party) (bool, string) {
	switch p.(type) {
	case *core.SECDSA:
		// Replayed Sign_B covers Nonce_B1 ‖ Nonce_A1; session 2's
		// verifier checks against Nonce_B1 ‖ Nonce_A2.
		challenge := append(append([]byte{}, findField(s1, "B1", "Nonce")...), findField(s2, "A1", "Nonce")...)
		ok, err := CredentialBindsChallenge(an.curve, b.Cert, a.CAPub, findField(s1, "B1", "Sign"), challenge)
		if err != nil {
			return false, err.Error()
		}
		if ok {
			return true, "stale signature accepted against a fresh nonce"
		}
		return false, "signature binds the initiator nonce; replay rejected"

	case *core.STS:
		// Replayed Resp_B is encrypted under session 1's key; the
		// session-2 initiator derives a fresh key from its new
		// ephemeral, so decryption garbles and verification fails.
		// Decrypt with the (attacker-known, for the simulation)
		// session-1 key and check against session 2's challenge.
		if len(s1.KeyA) != kdf.SessionKeySize+kdf.MACKeySize {
			return false, "no key material"
		}
		dsign, err := openRespLike(s1.KeyA[:kdf.SessionKeySize], s1.KeyA[kdf.SessionKeySize:], "B->A", findField(s1, "B1", "Resp"))
		if err != nil {
			return false, "resp decryption failed"
		}
		// Session 2 challenge: XG_B (replayed) ‖ XG_A2 (fresh).
		challenge := append(append([]byte{}, findField(s1, "B1", "XG")...), findField(s2, "A1", "XG")...)
		ok, err := CredentialBindsChallenge(an.curve, b.Cert, a.CAPub, dsign, challenge)
		if err != nil {
			return false, err.Error()
		}
		if ok {
			return true, "stale STS response accepted against a fresh ephemeral"
		}
		return false, "response binds both ephemerals (and the fresh session key); replay rejected"

	case *core.SCIANC:
		// Replayed AuthMAC_B covers the session-1 nonces; session 2's
		// expected MAC covers fresh ones. (The auth KEY is static —
		// the weakness lives elsewhere — but freshness holds.)
		replayed := findField(s1, "B2", "AuthMAC")
		expected := findField(s2, "B2", "AuthMAC")
		if bytes.Equal(replayed, expected) {
			return true, "stale MAC matches the fresh session's expectation"
		}
		return false, "MAC binds both session nonces; replay rejected"

	case *core.PORAMB:
		replayed := findField(s1, "B2", "MAC")
		expected := findField(s2, "B2", "MAC")
		if bytes.Equal(replayed, expected) {
			return true, "stale MAC matches the fresh session's expectation"
		}
		return false, "MAC binds the fresh hello; replay rejected"
	}
	return false, "no replay model for protocol"
}

// openRespLike mirrors the protocol engine's size-preserving response
// encryption (AES-CTR, IV = HMAC(macKey, "resp-iv|"+direction)[:16]) —
// public construction, replayed here per Kerckhoffs.
func openRespLike(encKey, macKey []byte, direction string, resp []byte) ([]byte, error) {
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	iv := hmacSHA256(macKey, []byte("resp-iv|"+direction))[:aes.BlockSize]
	out := make([]byte, len(resp))
	cipher.NewCTR(block, iv).XORKeyStream(out, resp)
	return out, nil
}
