// Package cantp implements the ISO 15765-2 transport protocol
// ("CAN-TP" / ISO-TP) over CAN-FD: segmentation of application
// messages into SingleFrame / FirstFrame / ConsecutiveFrame sequences
// with FlowControl handshakes, and the matching reassembly state
// machine.
//
// The paper's prototype (§V-C) layers exactly this stack under the
// session protocol: "The test suite uses the CAN-FD derivation with an
// implemented CAN-TP layer for message fragmentation [20]". Certificate
// and signature payloads (101–300 bytes) do not fit a single 64-byte
// CAN-FD frame, so every protocol message of Table II crosses this
// layer.
package cantp

import (
	"errors"
	"fmt"

	"repro/internal/canbus"
)

// PCI frame types (ISO 15765-2 §9.4).
const (
	pciSingle byte = 0x0
	pciFirst  byte = 0x1
	pciConsec byte = 0x2
	pciFlow   byte = 0x3
)

// FlowStatus values carried by FlowControl frames.
type FlowStatus byte

const (
	// FlowContinue clears the sender to transmit the next block.
	FlowContinue FlowStatus = 0
	// FlowWait asks the sender to pause.
	FlowWait FlowStatus = 1
	// FlowOverflow aborts the transfer.
	FlowOverflow FlowStatus = 2
)

// frameLen is the CAN-FD payload size used for all TP frames.
const frameLen = canbus.MaxDataLen

// MaxMessageLen is the largest message expressible by the 12-bit
// FirstFrame length field used here (the escape to 32-bit lengths is
// not needed by any protocol message of the paper).
const MaxMessageLen = 0xFFF

// maxSingle is the largest payload of an FD SingleFrame with the
// escape PCI (byte0 = 0x00, byte1 = length).
const maxSingle = frameLen - 2

// Errors surfaced by the reassembler.
var (
	ErrTooLong       = fmt.Errorf("cantp: message exceeds %d bytes", MaxMessageLen)
	ErrUnexpected    = errors.New("cantp: unexpected frame for reassembly state")
	ErrBadSequence   = errors.New("cantp: consecutive frame sequence error")
	ErrBadPCI        = errors.New("cantp: malformed protocol control information")
	ErrLengthInvalid = errors.New("cantp: length field invalid")
)

// Segment splits msg into ISO-TP frame payloads. The first returned
// payload is a SingleFrame when the whole message fits, otherwise a
// FirstFrame followed by ConsecutiveFrames. FlowControl frames are
// inserted by the receiving side (see Reassembler.FlowControlNeeded);
// Segment produces only the sender's data frames.
func Segment(msg []byte) ([][]byte, error) {
	if len(msg) > MaxMessageLen {
		return nil, ErrTooLong
	}
	if len(msg) <= maxSingle {
		// FD single frame, escape form: [0x00, len, data...].
		out := make([]byte, 2+len(msg))
		out[0] = pciSingle << 4
		out[1] = byte(len(msg))
		copy(out[2:], msg)
		return [][]byte{out}, nil
	}

	// FirstFrame: [0x1L, LL, data...], 12-bit length, 62 data bytes.
	frames := make([][]byte, 0, 1+(len(msg)-maxSingle)/(frameLen-1)+1)
	ff := make([]byte, frameLen)
	ff[0] = pciFirst<<4 | byte(len(msg)>>8)
	ff[1] = byte(len(msg))
	n := copy(ff[2:], msg)
	frames = append(frames, ff)
	rest := msg[n:]

	seq := byte(1)
	for len(rest) > 0 {
		take := frameLen - 1
		if take > len(rest) {
			take = len(rest)
		}
		cf := make([]byte, 1+take)
		cf[0] = pciConsec<<4 | seq
		copy(cf[1:], rest[:take])
		frames = append(frames, cf)
		rest = rest[take:]
		seq = (seq + 1) & 0x0F
	}
	return frames, nil
}

// FlowControlFrame builds a FlowControl payload with the given status,
// block size and minimum separation time (raw STmin byte).
func FlowControlFrame(status FlowStatus, blockSize, stMin byte) []byte {
	return []byte{pciFlow<<4 | byte(status), blockSize, stMin}
}

// ParseFlowControl decodes a FlowControl payload.
func ParseFlowControl(data []byte) (FlowStatus, byte, byte, error) {
	if len(data) < 3 || data[0]>>4 != pciFlow {
		return 0, 0, 0, ErrBadPCI
	}
	status := FlowStatus(data[0] & 0x0F)
	if status > FlowOverflow {
		return 0, 0, 0, fmt.Errorf("%w: flow status %d", ErrBadPCI, status)
	}
	return status, data[1], data[2], nil
}

// Reassembler rebuilds one message from a frame sequence. A zero value
// is ready for a new message.
type Reassembler struct {
	buf       []byte
	want      int
	nextSeq   byte
	active    bool
	needsFlow bool
}

// Reset discards any partial state.
func (r *Reassembler) Reset() { *r = Reassembler{} }

// Active reports whether a multi-frame transfer is in progress.
func (r *Reassembler) Active() bool { return r.active }

// FlowControlNeeded reports whether the caller should send a
// FlowControl(Continue) to the peer (set after a FirstFrame), and
// clears the flag.
func (r *Reassembler) FlowControlNeeded() bool {
	need := r.needsFlow
	r.needsFlow = false
	return need
}

// Push feeds one received frame payload. It returns the completed
// message when the final frame arrives, or nil while the transfer is
// still in progress.
func (r *Reassembler) Push(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrBadPCI
	}
	switch data[0] >> 4 {
	case pciSingle:
		if r.active {
			return nil, fmt.Errorf("%w: single frame during multi-frame transfer", ErrUnexpected)
		}
		// Escape form only (FD): byte0 low nibble must be 0.
		if data[0]&0x0F != 0 {
			// Classic form: low nibble is the length (≤ 7 bytes).
			n := int(data[0] & 0x0F)
			if n > 7 || len(data) < 1+n {
				return nil, ErrLengthInvalid
			}
			return append([]byte(nil), data[1:1+n]...), nil
		}
		if len(data) < 2 {
			return nil, ErrBadPCI
		}
		n := int(data[1])
		if n == 0 || n > maxSingle || len(data) < 2+n {
			return nil, ErrLengthInvalid
		}
		return append([]byte(nil), data[2:2+n]...), nil

	case pciFirst:
		if r.active {
			return nil, fmt.Errorf("%w: first frame during multi-frame transfer", ErrUnexpected)
		}
		if len(data) < 3 {
			return nil, ErrBadPCI
		}
		total := int(data[0]&0x0F)<<8 | int(data[1])
		if total <= maxSingle || total > MaxMessageLen {
			return nil, ErrLengthInvalid
		}
		r.buf = append([]byte(nil), data[2:]...)
		r.want = total
		r.nextSeq = 1
		r.active = true
		r.needsFlow = true
		if len(r.buf) > total {
			r.buf = r.buf[:total] // DLC padding past the message end
		}
		return nil, nil

	case pciConsec:
		if !r.active {
			return nil, fmt.Errorf("%w: consecutive frame without first frame", ErrUnexpected)
		}
		seq := data[0] & 0x0F
		if seq != r.nextSeq {
			r.Reset()
			return nil, fmt.Errorf("%w: got %d", ErrBadSequence, seq)
		}
		r.nextSeq = (r.nextSeq + 1) & 0x0F
		r.buf = append(r.buf, data[1:]...)
		if len(r.buf) >= r.want {
			msg := r.buf[:r.want]
			r.Reset()
			return msg, nil
		}
		return nil, nil

	case pciFlow:
		// Flow control is handled by the sender path; receiving one
		// here is a protocol confusion.
		return nil, fmt.Errorf("%w: flow control on data path", ErrUnexpected)
	}
	return nil, fmt.Errorf("%w: PCI type %#x", ErrBadPCI, data[0]>>4)
}

// FrameCount returns how many data frames Segment will produce for a
// message of length n, plus whether a FlowControl exchange occurs.
// Used by the overhead accounting of Table II and the Fig. 7 timeline.
func FrameCount(n int) (dataFrames int, flowControl bool, err error) {
	if n > MaxMessageLen {
		return 0, false, ErrTooLong
	}
	if n <= maxSingle {
		return 1, false, nil
	}
	rest := n - (frameLen - 2)
	cf := (rest + frameLen - 2) / (frameLen - 1)
	return 1 + cf, true, nil
}
