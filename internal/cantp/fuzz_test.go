package cantp

import (
	"testing"
	"time"
)

// fuzzCapacity is the receiver capacity the harness enforces: any
// FirstFrame announcing more must be refused with
// FlowControl(Overflow) and never buffered.
const fuzzCapacity = 256

// FuzzReceiverPush feeds arbitrary frame sequences — malformed PCIs,
// truncated FirstFrames, out-of-order and duplicated
// ConsecutiveFrames, FlowControls on the data path — into the
// timer-aware Receiver. The properties: never panic, never reassemble
// past the capacity refusal, and never grow the reassembly buffer
// beyond capacity plus one frame of DLC padding.
//
// The input encodes a frame sequence: each frame is a length byte
// (mod 65) followed by that many payload bytes; a high length bit
// also advances the simulated clock, exercising the N_Cr expiry and
// Wait-chain paths mid-sequence.
func FuzzReceiverPush(f *testing.F) {
	// A clean two-frame transfer.
	f.Add([]byte("\x0a\x10\x40AAAAAAAA\x0a\x21BBBBBBBBB"))
	// FirstFrame announcing more than capacity (overflow refusal).
	f.Add([]byte("\x0a\x1f\xffAAAAAAAA"))
	// Escape-form SingleFrame, classic SingleFrame, empty frame.
	f.Add([]byte("\x06\x00\x04ABCD\x03\x02XY\x00"))
	// Consecutive frame without a FirstFrame, then a bad sequence.
	f.Add([]byte("\x04\x21ABC\x0a\x10\x40AAAAAAAA\x04\x2fZZZ"))
	// FlowControl on the data path and reserved PCI types.
	f.Add([]byte("\x04\x30\x02\x01\x03\x40AB\x03\xf0AB"))
	// Duplicated ConsecutiveFrame and a restarting FirstFrame.
	f.Add([]byte("\x0a\x10\x40AAAAAAAA\x05\x21BBBB\x05\x21BBBB\x0a\x10\x40CCCCCCCC"))
	// Clock-advancing frames (high bit set on the length byte).
	f.Add([]byte("\x8a\x10\x40AAAAAAAA\xc5\x21BBBB"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rx := NewReceiver(ReceiverConfig{
			MaxMessage:   fuzzCapacity,
			BlockSize:    2,
			InitialWaits: 1,
			WaitInterval: 10 * time.Millisecond,
		})
		var now time.Duration
		for len(data) > 0 {
			spec := data[0]
			data = data[1:]
			n := int(spec % 65)
			if n > len(data) {
				n = len(data)
			}
			frame := data[:n]
			data = data[n:]
			if spec&0x80 != 0 {
				// Jump the clock, then service the due timers the way
				// the transport layer does.
				now += 600 * time.Millisecond
				for {
					fc, _ := rx.Expire(now)
					if fc == nil {
						break
					}
				}
			}
			msg, fc, err := rx.Push(frame, now)
			_ = fc
			_ = err // protocol errors are the point; they must just not panic
			if msg != nil && len(msg) > fuzzCapacity {
				t.Fatalf("reassembled %d bytes past the %d-byte capacity refusal", len(msg), fuzzCapacity)
			}
			if got := len(rx.r.buf); got > fuzzCapacity+frameLen {
				t.Fatalf("reassembly buffer grew to %d bytes (capacity %d + frame %d)", got, fuzzCapacity, frameLen)
			}
			now += 100 * time.Microsecond
		}
	})
}

// FuzzFlowControlParse: arbitrary bytes through the FlowControl
// parser and the sender's FC handler must never panic, and a parsed
// FC must re-encode to its own parse.
func FuzzFlowControlParse(f *testing.F) {
	f.Add([]byte{0x30, 0x00, 0x00})
	f.Add([]byte{0x31, 0x08, 0x7f})
	f.Add([]byte{0x32, 0x00, 0xf5})
	f.Add([]byte{0x3f, 0xff, 0xff})
	f.Add([]byte{0x30})
	f.Fuzz(func(t *testing.T, data []byte) {
		status, bs, stmin, err := ParseFlowControl(data)
		if err == nil {
			re := FlowControlFrame(status, bs, stmin)
			s2, b2, st2, err2 := ParseFlowControl(re)
			if err2 != nil || s2 != status || b2 != bs || st2 != stmin {
				t.Fatalf("FC re-encode diverged: %v %v %v %v", s2, b2, st2, err2)
			}
		}
		// The decoded STmin must always be a sane pacing gap.
		if d := DecodeSTmin(stmin); d < 0 || d > 127*time.Millisecond {
			t.Fatalf("STmin %#x decoded to %v", stmin, d)
		}
		// A live sender must survive the same bytes mid-transfer.
		s, errNew := NewSender(DefaultSenderConfig(), make([]byte, 300), 0)
		if errNew != nil {
			t.Fatal(errNew)
		}
		s.Next(0) // FirstFrame out, sender awaiting FC
		_ = s.OnFlowControl(data, 0)
	})
}
