package cantp

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// drive pushes every frame the sender will yield at time now into the
// receiver, answering FlowControls, until the message completes or an
// error surfaces. It models a perfect wire.
func drive(t *testing.T, s *Sender, rx *Receiver) []byte {
	t.Helper()
	now := time.Duration(0)
	for i := 0; i < 10000; i++ {
		if s.Done() && !rx.Active() {
			t.Fatal("sender done but no message completed")
		}
		f := s.Next(now)
		if f == nil {
			if at := s.ReadyAt(); at > now {
				now = at // honour STmin pacing
				continue
			}
			t.Fatalf("sender stalled at frame %d", i)
		}
		msg, fc, err := rx.Push(f, now)
		if err != nil {
			t.Fatal(err)
		}
		if fc != nil {
			if err := s.OnFlowControl(fc, now); err != nil {
				t.Fatal(err)
			}
		}
		if msg != nil {
			return msg
		}
	}
	t.Fatal("transfer did not converge")
	return nil
}

func TestSenderReceiverPerfectWire(t *testing.T) {
	for _, n := range []int{1, 62, 63, 200, 491, 1024} {
		msg := testMsg(n)
		s, err := NewSender(DefaultSenderConfig(), msg, 0)
		if err != nil {
			t.Fatal(err)
		}
		rx := NewReceiver(ReceiverConfig{})
		got := drive(t, s, rx)
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d corrupted", n)
		}
		if !s.Done() {
			t.Fatalf("size %d: sender not done", n)
		}
	}
}

func TestSenderBlockSizeAndSTmin(t *testing.T) {
	msg := testMsg(500) // FF + 7 CFs
	s, err := NewSender(DefaultSenderConfig(), msg, 0)
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver(ReceiverConfig{BlockSize: 2, STmin: 0xF1}) // 2 CFs per FC, 100µs gap
	got := drive(t, s, rx)
	if !bytes.Equal(got, msg) {
		t.Fatal("block-size transfer corrupted")
	}
	if rx.Stats().Completed != 1 {
		t.Errorf("receiver stats %+v", rx.Stats())
	}
}

func TestSenderRetransmitsOnLostFlowControl(t *testing.T) {
	msg := testMsg(200)
	cfg := DefaultSenderConfig()
	s, err := NewSender(cfg, msg, 0)
	if err != nil {
		t.Fatal(err)
	}
	ff := s.Next(0)
	if ff == nil || ff[0]>>4 != pciFirst {
		t.Fatal("first frame not emitted")
	}
	// The FC is lost. Nothing to send until the deadline.
	if s.Next(time.Millisecond) != nil {
		t.Error("sender transmitted without clearance")
	}
	dl := s.Deadline()
	if dl != cfg.Timeouts.NBs {
		t.Fatalf("deadline %v, want N_Bs %v", dl, cfg.Timeouts.NBs)
	}
	if err := s.OnTimeout(dl); err != nil {
		t.Fatal(err)
	}
	// The FirstFrame is retransmitted with a backed-off deadline.
	ff2 := s.Next(dl)
	if ff2 == nil || !bytes.Equal(ff, ff2) {
		t.Fatal("FirstFrame not retransmitted verbatim")
	}
	if s.Stats().Retransmits != 1 {
		t.Errorf("retransmits %d, want 1", s.Stats().Retransmits)
	}
	next := s.Deadline()
	if next-dl <= cfg.Timeouts.NBs {
		t.Errorf("no backoff: second wait %v not longer than first %v", next-dl, cfg.Timeouts.NBs)
	}
	// This time the FC arrives; the transfer completes.
	rx := NewReceiver(ReceiverConfig{})
	now := next - time.Millisecond
	if _, fc, err := rx.Push(ff2, now); err != nil || fc == nil {
		t.Fatalf("receiver did not clear retransmitted FF: %v", err)
	} else if err := s.OnFlowControl(fc, now); err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		f := s.Next(now)
		if f == nil {
			t.Fatal("sender stalled after clearance")
		}
		if msg2, _, err := rx.Push(f, now); err != nil {
			t.Fatal(err)
		} else if msg2 != nil && !bytes.Equal(msg2, msg) {
			t.Fatal("recovered transfer corrupted")
		}
	}
}

func TestSenderRetransmissionCapExhaustion(t *testing.T) {
	cfg := DefaultSenderConfig()
	cfg.MaxRetransmit = 2
	s, err := NewSender(cfg, testMsg(200), 0)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	if s.Next(now) == nil {
		t.Fatal("no FF")
	}
	for i := 0; i < 2; i++ {
		now = s.Deadline()
		if err := s.OnTimeout(now); err != nil {
			t.Fatalf("retry %d refused: %v", i, err)
		}
		if s.Next(now) == nil {
			t.Fatalf("retry %d: no FF", i)
		}
	}
	now = s.Deadline()
	if err := s.OnTimeout(now); !errors.Is(err, ErrSendTimeout) {
		t.Fatalf("got %v, want ErrSendTimeout after cap", err)
	}
	if s.Next(now) != nil {
		t.Error("aborted sender still transmitting")
	}
	if s.Stats().Retransmits != 2 {
		t.Errorf("retransmits %d, want 2", s.Stats().Retransmits)
	}
}

func TestFlowControlWaitHonouredThenCleared(t *testing.T) {
	msg := testMsg(200)
	s, err := NewSender(DefaultSenderConfig(), msg, 0)
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver(ReceiverConfig{InitialWaits: 2})
	now := time.Duration(0)
	ff := s.Next(now)
	_, fc, err := rx.Push(ff, now)
	if err != nil {
		t.Fatal(err)
	}
	status, _, _, _ := ParseFlowControl(fc)
	if status != FlowWait {
		t.Fatalf("first FC %v, want Wait", status)
	}
	if err := s.OnFlowControl(fc, now); err != nil {
		t.Fatal(err)
	}
	// The receiver owes more FCs on its own schedule.
	for i := 0; i < 2; i++ {
		due := rx.Deadline()
		fc, err := rx.Expire(due)
		if err != nil {
			t.Fatal(err)
		}
		if fc == nil {
			t.Fatalf("FC %d not emitted at its due time", i+2)
		}
		now = due
		if err := s.OnFlowControl(fc, now); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().WaitsHonoured != 2 {
		t.Errorf("sender honoured %d waits, want 2", s.Stats().WaitsHonoured)
	}
	// Cleared: the rest of the transfer flows.
	for !s.Done() {
		f := s.Next(now)
		if f == nil {
			t.Fatal("sender stalled after Continue")
		}
		got, _, err := rx.Push(f, now)
		if err != nil {
			t.Fatal(err)
		}
		if got != nil && !bytes.Equal(got, msg) {
			t.Fatal("waited transfer corrupted")
		}
	}
}

func TestFlowControlWaitBudgetExhaustion(t *testing.T) {
	cfg := DefaultSenderConfig()
	cfg.MaxWait = 1
	s, err := NewSender(cfg, testMsg(200), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Next(0)
	wait := FlowControlFrame(FlowWait, 0, 0)
	if err := s.OnFlowControl(wait, 0); err != nil {
		t.Fatalf("first wait refused: %v", err)
	}
	if err := s.OnFlowControl(wait, 0); !errors.Is(err, ErrWaitBudget) {
		t.Fatalf("got %v, want ErrWaitBudget", err)
	}
}

func TestFlowControlOverflowAborts(t *testing.T) {
	// Receiver capacity below the announced length → FC(Overflow) →
	// sender aborts without retransmission.
	msg := testMsg(500)
	s, err := NewSender(DefaultSenderConfig(), msg, 0)
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver(ReceiverConfig{MaxMessage: 300})
	ff := s.Next(0)
	_, fc, err := rx.Push(ff, 0)
	if err != nil {
		t.Fatal(err)
	}
	status, _, _, _ := ParseFlowControl(fc)
	if status != FlowOverflow {
		t.Fatalf("FC %v, want Overflow", status)
	}
	if rx.Active() {
		t.Error("receiver buffered an overflowing transfer")
	}
	if rx.Stats().Overflows != 1 {
		t.Errorf("overflow count %+v", rx.Stats())
	}
	if err := s.OnFlowControl(fc, 0); !errors.Is(err, ErrFlowOverflow) {
		t.Fatalf("got %v, want ErrFlowOverflow", err)
	}
	if s.Next(0) != nil {
		t.Error("sender kept transmitting after Overflow")
	}
}

func TestReceiverDuplicateConsecutiveFrameIgnored(t *testing.T) {
	msg := testMsg(300)
	frames, _ := Segment(msg)
	rx := NewReceiver(ReceiverConfig{})
	now := time.Duration(0)
	var got []byte
	for i, f := range frames {
		m, _, err := rx.Push(f, now)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m != nil {
			got = m
		}
		// Deliver every CF twice — the duplicate must be swallowed.
		if f[0]>>4 == pciConsec && m == nil {
			if _, _, err := rx.Push(f, now); err != nil {
				t.Fatalf("duplicate CF %d rejected with error: %v", i, err)
			}
		}
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("duplicated transfer corrupted")
	}
	if rx.Stats().Duplicates == 0 {
		t.Error("no duplicates counted")
	}
}

func TestReceiverCorruptedFirstFrameLength(t *testing.T) {
	// A corrupted FF length field either claims a single-frame-sized
	// message (invalid) or a huge one (overflow); both must leave the
	// receiver idle and ready for the retransmission.
	rx := NewReceiver(ReceiverConfig{MaxMessage: 1024})

	small := make([]byte, frameLen)
	small[0] = pciFirst << 4
	small[1] = 10 // claims 10 bytes: must be > 62
	if _, _, err := rx.Push(small, 0); !errors.Is(err, ErrLengthInvalid) {
		t.Fatalf("got %v, want ErrLengthInvalid", err)
	}
	if rx.Active() {
		t.Error("receiver active after invalid FF")
	}

	huge := make([]byte, frameLen)
	huge[0] = pciFirst<<4 | 0x0F
	huge[1] = 0xFF // claims 4095 bytes > MaxMessage
	_, fc, err := rx.Push(huge, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, _, _, _ := ParseFlowControl(fc); st != FlowOverflow {
		t.Fatalf("corrupted-huge FF answered with %v, want Overflow", st)
	}

	// The clean retransmission is then accepted normally.
	msg := testMsg(200)
	frames, _ := Segment(msg)
	if _, fc, err := rx.Push(frames[0], 0); err != nil || fc == nil {
		t.Fatalf("clean FF refused after corrupted ones: %v", err)
	}
}

func TestReceiverNCrTimeoutAbandons(t *testing.T) {
	msg := testMsg(300)
	frames, _ := Segment(msg)
	rx := NewReceiver(ReceiverConfig{})
	if _, _, err := rx.Push(frames[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rx.Push(frames[1], time.Millisecond); err != nil {
		t.Fatal(err)
	}
	dl := rx.Deadline()
	if dl <= time.Millisecond {
		t.Fatalf("implausible N_Cr deadline %v", dl)
	}
	if _, err := rx.Expire(dl - 1); err != nil {
		t.Fatal("expired early")
	}
	if _, err := rx.Expire(dl); !errors.Is(err, ErrReceiveTimeout) {
		t.Fatal("N_Cr lapse not reported")
	}
	if rx.Active() {
		t.Error("receiver still active after abandon")
	}
	if rx.Stats().Abandoned != 1 {
		t.Errorf("stats %+v", rx.Stats())
	}
	// A frame arriving after the lapse (without Expire being called)
	// also voids the stale transfer first.
	rx2 := NewReceiver(ReceiverConfig{})
	rx2.Push(frames[0], 0)
	rx2.Push(frames[1], time.Millisecond)
	if _, _, err := rx2.Push(frames[0], rx2.Deadline()+time.Second); err != nil {
		t.Fatalf("late FF not treated as fresh: %v", err)
	}
	if rx2.Stats().Abandoned != 1 || !rx2.Active() {
		t.Errorf("stale transfer not voided: %+v", rx2.Stats())
	}
}

func TestReceiverRestartOnDuplicateFirstFrame(t *testing.T) {
	msg := testMsg(300)
	frames, _ := Segment(msg)
	rx := NewReceiver(ReceiverConfig{})
	rx.Push(frames[0], 0)
	rx.Push(frames[1], 0)
	// Sender timed out on a lost FC and restarts from the FF.
	if _, fc, err := rx.Push(frames[0], time.Millisecond); err != nil || fc == nil {
		t.Fatalf("restart FF not cleared: %v", err)
	}
	if rx.Stats().Restarts != 1 {
		t.Errorf("restarts %+v", rx.Stats())
	}
	// The full retransmission now completes.
	var got []byte
	for _, f := range frames[1:] {
		m, _, err := rx.Push(f, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			got = m
		}
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("restarted transfer corrupted")
	}
}

// TestDecodeSTmin drives the sender's STmin decode over the full byte
// range, table-driven by the ISO 15765-2 value classes: 0x00–0x7F are
// milliseconds, 0xF1–0xF9 are 100–900 µs, and both reserved ranges
// (0x80–0xF0 and 0xFA–0xFF) must clamp to the 127 ms maximum — a
// reserved byte may only ever slow the sender down.
func TestDecodeSTmin(t *testing.T) {
	classes := []struct {
		name     string
		lo, hi   byte
		expected func(b byte) time.Duration
	}{
		{"milliseconds", 0x00, 0x7F, func(b byte) time.Duration { return time.Duration(b) * time.Millisecond }},
		{"reserved-low", 0x80, 0xF0, func(byte) time.Duration { return STminMax }},
		{"microseconds", 0xF1, 0xF9, func(b byte) time.Duration { return time.Duration(b-0xF0) * 100 * time.Microsecond }},
		{"reserved-high", 0xFA, 0xFF, func(byte) time.Duration { return STminMax }},
	}
	covered := 0
	for _, c := range classes {
		for v := int(c.lo); v <= int(c.hi); v++ {
			covered++
			b := byte(v)
			if got, want := DecodeSTmin(b), c.expected(b); got != want {
				t.Errorf("%s: DecodeSTmin(%#02x) = %v, want %v", c.name, b, got, want)
			}
			if got := DecodeSTmin(b); got > STminMax {
				t.Errorf("DecodeSTmin(%#02x) = %v exceeds the ISO maximum %v", b, got, STminMax)
			}
		}
	}
	if covered != 256 {
		t.Fatalf("value classes cover %d of 256 STmin bytes", covered)
	}
}

// TestSenderClampsReservedSTmin proves the clamp on the live decode
// path: a FlowControl carrying a reserved STmin byte paces the sender
// at the 127 ms maximum, not at a misread of the raw value.
func TestSenderClampsReservedSTmin(t *testing.T) {
	for _, stmin := range []byte{0x80, 0xC3, 0xF0, 0xFA, 0xFF} {
		msg := make([]byte, 200)
		s, err := NewSender(DefaultSenderConfig(), msg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if f := s.Next(0); f == nil || f[0]>>4 != pciFirst {
			t.Fatal("sender did not open with a FirstFrame")
		}
		if err := s.OnFlowControl(FlowControlFrame(FlowContinue, 0, stmin), 0); err != nil {
			t.Fatalf("STmin %#02x: %v", stmin, err)
		}
		if f := s.Next(0); f == nil {
			t.Fatalf("STmin %#02x: first CF not released by the FC", stmin)
		}
		if at := s.ReadyAt(); at != STminMax {
			t.Errorf("STmin %#02x: next CF ready at %v, want the %v clamp", stmin, at, STminMax)
		}
		if f := s.Next(STminMax - time.Millisecond); f != nil {
			t.Errorf("STmin %#02x: sender paced faster than the clamp", stmin)
		}
		if f := s.Next(STminMax); f == nil {
			t.Errorf("STmin %#02x: sender stuck past the clamp", stmin)
		}
	}
}
