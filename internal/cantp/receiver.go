package cantp

import (
	"errors"
	"time"
)

// ReceiverConfig parameterizes the receiving state machine.
type ReceiverConfig struct {
	Timeouts Timeouts
	// MaxMessage caps the message length this receiver will accept; a
	// FirstFrame announcing more is answered with FlowControl(Overflow)
	// and never buffered. 0 means the protocol maximum (MaxMessageLen).
	MaxMessage int
	// BlockSize is advertised in FlowControl(Continue): the sender may
	// transmit this many ConsecutiveFrames before the next FC. 0 means
	// the whole remainder without further flow control.
	BlockSize byte
	// STmin is the raw minimum-separation byte advertised in
	// FlowControl(Continue).
	STmin byte
	// InitialWaits makes the receiver answer each FirstFrame with this
	// many FlowControl(Wait) frames (spaced WaitInterval apart) before
	// the Continue — a deterministic stand-in for a busy ECU, used to
	// exercise the sender's Wait budget.
	InitialWaits int
	// WaitInterval is the simulated delay between the FCs of a Wait
	// chain. Defaults to 100 ms, comfortably inside the sender's 1 s
	// N_Bs so an honoured Wait never races the sender's timeout.
	WaitInterval time.Duration
}

// ReceiverStats counts reassembly outcomes.
type ReceiverStats struct {
	Completed  int // messages fully reassembled
	Abandoned  int // partial transfers dropped on N_Cr expiry
	Duplicates int // duplicated ConsecutiveFrames ignored
	Restarts   int // transfers restarted by a duplicate FirstFrame
	Overflows  int // FirstFrames refused with FlowControl(Overflow)
	Waits      int // FlowControl(Wait) frames emitted
}

// ErrReceiveTimeout is returned by Expire when N_Cr lapses mid
// transfer.
var ErrReceiveTimeout = errors.New("cantp: consecutive frame timeout, transfer abandoned")

// Receiver is the timer-aware reassembly side: a Reassembler plus
// N_Cr supervision, BlockSize/STmin flow control, duplicate
// ConsecutiveFrame rejection, restart-on-FirstFrame and capacity
// refusal. Like Sender it is a pure state machine on simulated time:
// the caller owns the wire and the clock.
type Receiver struct {
	cfg ReceiverConfig

	r         Reassembler
	deadline  time.Duration // N_Cr expiry; 0 when idle
	lastSeq   byte          // sequence number of the last accepted CF
	haveCF    bool          // lastSeq is valid
	cfInBlock int           // CFs accepted since the last FC
	waitsLeft int           // Wait frames still owed before the Continue
	fcPending bool          // a Wait chain is in progress
	fcDue     time.Duration // when the next FC of the chain is due
	stats     ReceiverStats
}

// NewReceiver returns a receiver with defaulted timeouts.
func NewReceiver(cfg ReceiverConfig) *Receiver {
	cfg.Timeouts = cfg.Timeouts.withDefaults()
	if cfg.MaxMessage <= 0 || cfg.MaxMessage > MaxMessageLen {
		cfg.MaxMessage = MaxMessageLen
	}
	if cfg.WaitInterval <= 0 {
		cfg.WaitInterval = 100 * time.Millisecond
	}
	return &Receiver{cfg: cfg}
}

// Active reports whether a multi-frame transfer is in progress.
func (rx *Receiver) Active() bool { return rx.r.Active() }

// Stats returns the reassembly counters.
func (rx *Receiver) Stats() ReceiverStats { return rx.stats }

// Deadline returns the earliest pending timer: the N_Cr expiry of the
// in-progress transfer or the due time of an owed FlowControl. 0 means
// no timer is armed.
func (rx *Receiver) Deadline() time.Duration {
	if !rx.r.Active() {
		return 0
	}
	if rx.fcPending && (rx.fcDue < rx.deadline || rx.deadline == 0) {
		return rx.fcDue
	}
	return rx.deadline
}

// Expire services the receiver's timers at simulated time now. When a
// Wait chain's next FlowControl is due it returns the FC payload to
// transmit; when N_Cr has lapsed it abandons the partial transfer and
// returns ErrReceiveTimeout.
func (rx *Receiver) Expire(now time.Duration) ([]byte, error) {
	if !rx.r.Active() {
		return nil, nil
	}
	if rx.fcPending && now >= rx.fcDue {
		return rx.nextChainFC(now), nil
	}
	if rx.deadline > 0 && now >= rx.deadline {
		rx.reset()
		rx.stats.Abandoned++
		return nil, ErrReceiveTimeout
	}
	return nil, nil
}

// nextChainFC emits the next FC of a Wait chain: another Wait while
// the budget lasts, then the Continue that releases the sender.
func (rx *Receiver) nextChainFC(now time.Duration) []byte {
	rx.deadline = now + rx.cfg.Timeouts.NCr
	if rx.waitsLeft > 0 {
		rx.waitsLeft--
		rx.stats.Waits++
		rx.fcDue = now + rx.cfg.WaitInterval
		return FlowControlFrame(FlowWait, 0, 0)
	}
	rx.fcPending = false
	return FlowControlFrame(FlowContinue, rx.cfg.BlockSize, rx.cfg.STmin)
}

func (rx *Receiver) reset() {
	rx.r.Reset()
	rx.deadline = 0
	rx.haveCF = false
	rx.cfInBlock = 0
	rx.waitsLeft = 0
	rx.fcPending = false
}

// Push feeds one received data-path frame at simulated time now. It
// returns the completed message (nil while in progress) and, when
// non-nil, a FlowControl payload the caller must transmit to the
// sender. Frame-level protocol errors are returned after the state has
// been made consistent; the caller counts and drops them.
func (rx *Receiver) Push(data []byte, now time.Duration) (msg []byte, fc []byte, err error) {
	// A deadline that lapsed before this frame arrived voids the
	// partial transfer first — the frame is then judged fresh.
	if rx.r.Active() && rx.deadline > 0 && now >= rx.deadline && !rx.fcPending {
		rx.reset()
		rx.stats.Abandoned++
	}
	if len(data) == 0 {
		return nil, nil, ErrBadPCI
	}

	switch data[0] >> 4 {
	case pciFirst:
		// Capacity refusal happens before any buffering.
		if len(data) >= 3 {
			total := int(data[0]&0x0F)<<8 | int(data[1])
			if total > rx.cfg.MaxMessage {
				rx.stats.Overflows++
				return nil, FlowControlFrame(FlowOverflow, 0, 0), nil
			}
		}
		// A FirstFrame during an active transfer is the sender
		// restarting after an N_Bs expiry: abandon and re-accept.
		if rx.r.Active() {
			rx.reset()
			rx.stats.Restarts++
		}

	case pciConsec:
		if rx.r.Active() && rx.haveCF && data[0]&0x0F == rx.lastSeq {
			// Retransmitted duplicate of the last accepted CF (an
			// impaired bus delivering twice): ignore it, restarting
			// N_Cr from this sighting.
			rx.stats.Duplicates++
			rx.deadline = now + rx.cfg.Timeouts.NCr
			return nil, nil, nil
		}
	}

	complete, err := rx.r.Push(data)
	if err != nil {
		// The embedded Reassembler already reset itself on sequence
		// errors; every other error leaves its state untouched.
		return nil, nil, err
	}

	if rx.r.FlowControlNeeded() {
		// FirstFrame accepted: arm N_Cr, then either open a Wait
		// chain or clear the sender immediately.
		rx.deadline = now + rx.cfg.Timeouts.NCr
		rx.haveCF = false
		rx.cfInBlock = 0
		rx.waitsLeft = rx.cfg.InitialWaits
		rx.fcPending = rx.waitsLeft > 0
		return nil, rx.nextChainFC(now), nil
	}

	if complete != nil {
		rx.stats.Completed++
		rx.deadline = 0
		rx.haveCF = false
		rx.cfInBlock = 0
		return complete, nil, nil
	}

	if rx.r.Active() && data[0]>>4 == pciConsec {
		rx.lastSeq = data[0] & 0x0F
		rx.haveCF = true
		rx.deadline = now + rx.cfg.Timeouts.NCr
		if rx.cfg.BlockSize > 0 {
			rx.cfInBlock++
			if rx.cfInBlock >= int(rx.cfg.BlockSize) {
				rx.cfInBlock = 0
				return nil, FlowControlFrame(FlowContinue, rx.cfg.BlockSize, rx.cfg.STmin), nil
			}
		}
	}
	return nil, nil, nil
}
