package cantp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testMsg(n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	return msg
}

// reassemble pushes a frame sequence through a fresh Reassembler.
func reassemble(t *testing.T, frames [][]byte) ([]byte, error) {
	t.Helper()
	var r Reassembler
	for i, f := range frames {
		msg, err := r.Push(f)
		if err != nil {
			return nil, err
		}
		if msg != nil {
			if i != len(frames)-1 {
				t.Fatalf("message completed at frame %d of %d", i+1, len(frames))
			}
			return msg, nil
		}
	}
	return nil, errors.New("transfer incomplete")
}

func TestSegmentReassembleRoundTrip(t *testing.T) {
	sizes := []int{1, 7, 8, 61, 62, 63, 64, 100, 127, 200, 491, 1024, 4095}
	for _, n := range sizes {
		msg := testMsg(n)
		frames, err := Segment(msg)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		got, err := reassemble(t, frames)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d: round trip mismatch", n)
		}

		// Frame count matches the static accounting.
		want, fc, err := FrameCount(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) != want {
			t.Errorf("size %d: %d frames, accounting says %d", n, len(frames), want)
		}
		if fc != (n > maxSingle) {
			t.Errorf("size %d: flow control flag %v", n, fc)
		}
	}
}

func TestSegmentBoundaries(t *testing.T) {
	// ≤ 62 bytes: exactly one single frame.
	frames, err := Segment(testMsg(maxSingle))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Errorf("%d-byte message used %d frames", maxSingle, len(frames))
	}
	// 63 bytes: FF + 1 CF.
	frames, err = Segment(testMsg(maxSingle + 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Errorf("%d-byte message used %d frames, want 2", maxSingle+1, len(frames))
	}
	// Over the 12-bit limit.
	if _, err := Segment(testMsg(MaxMessageLen + 1)); err == nil {
		t.Error("oversize message accepted")
	}
	// Empty message: legal SF with length 0? ISO-TP requires ≥ 1 byte;
	// Segment emits it but Push rejects length 0 — assert the pair.
	frames, err = Segment(nil)
	if err != nil {
		t.Fatal(err)
	}
	var r Reassembler
	if _, err := r.Push(frames[0]); err == nil {
		t.Error("zero-length single frame accepted by reassembler")
	}
}

func TestSequenceNumberWrap(t *testing.T) {
	// > 15 consecutive frames force the 4-bit sequence number to wrap.
	n := (frameLen - 2) + 20*(frameLen-1) // FF + 20 CFs
	msg := testMsg(n)
	frames, err := Segment(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 21 {
		t.Fatalf("expected 21 frames, got %d", len(frames))
	}
	// Sequence numbers 1..15, 0, 1, ...
	if frames[15][0]&0x0F != 15 {
		t.Error("frame 15 sequence wrong")
	}
	if frames[16][0]&0x0F != 0 {
		t.Error("sequence did not wrap to 0")
	}
	got, err := reassemble(t, frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrapped transfer corrupted")
	}
}

func TestReassemblerErrors(t *testing.T) {
	msg := testMsg(200)
	frames, _ := Segment(msg)

	t.Run("bad sequence", func(t *testing.T) {
		var r Reassembler
		if _, err := r.Push(frames[0]); err != nil {
			t.Fatal(err)
		}
		r.FlowControlNeeded()
		// Skip frames[1], push frames[2].
		if _, err := r.Push(frames[2]); !errors.Is(err, ErrBadSequence) {
			t.Errorf("got %v, want ErrBadSequence", err)
		}
		if r.Active() {
			t.Error("reassembler still active after sequence error")
		}
	})

	t.Run("CF without FF", func(t *testing.T) {
		var r Reassembler
		if _, err := r.Push(frames[1]); !errors.Is(err, ErrUnexpected) {
			t.Errorf("got %v, want ErrUnexpected", err)
		}
	})

	t.Run("second FF mid-transfer", func(t *testing.T) {
		var r Reassembler
		r.Push(frames[0])
		if _, err := r.Push(frames[0]); !errors.Is(err, ErrUnexpected) {
			t.Errorf("got %v, want ErrUnexpected", err)
		}
	})

	t.Run("SF mid-transfer", func(t *testing.T) {
		var r Reassembler
		r.Push(frames[0])
		sf, _ := Segment(testMsg(10))
		if _, err := r.Push(sf[0]); !errors.Is(err, ErrUnexpected) {
			t.Errorf("got %v, want ErrUnexpected", err)
		}
	})

	t.Run("empty frame", func(t *testing.T) {
		var r Reassembler
		if _, err := r.Push(nil); !errors.Is(err, ErrBadPCI) {
			t.Errorf("got %v, want ErrBadPCI", err)
		}
	})

	t.Run("FF too short", func(t *testing.T) {
		var r Reassembler
		if _, err := r.Push([]byte{pciFirst << 4}); !errors.Is(err, ErrBadPCI) {
			t.Errorf("got %v, want ErrBadPCI", err)
		}
	})

	t.Run("FF length fits single frame", func(t *testing.T) {
		var r Reassembler
		// A FirstFrame declaring 10 bytes is bogus (must be > 62).
		ff := make([]byte, frameLen)
		ff[0] = pciFirst << 4
		ff[1] = 10
		if _, err := r.Push(ff); !errors.Is(err, ErrLengthInvalid) {
			t.Errorf("got %v, want ErrLengthInvalid", err)
		}
	})

	t.Run("flow control on data path", func(t *testing.T) {
		var r Reassembler
		if _, err := r.Push(FlowControlFrame(FlowContinue, 0, 0)); !errors.Is(err, ErrUnexpected) {
			t.Errorf("got %v, want ErrUnexpected", err)
		}
	})
}

func TestClassicSingleFrame(t *testing.T) {
	// Classic (non-escape) SF: low nibble carries the length.
	var r Reassembler
	classic := []byte{0x03, 0xAA, 0xBB, 0xCC}
	msg, err := r.Push(classic)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, []byte{0xAA, 0xBB, 0xCC}) {
		t.Errorf("classic SF decoded to %x", msg)
	}
	// Declared length beyond the frame.
	if _, err := r.Push([]byte{0x05, 1, 2}); !errors.Is(err, ErrLengthInvalid) {
		t.Errorf("got %v, want ErrLengthInvalid", err)
	}
}

func TestFlowControlRoundTrip(t *testing.T) {
	f := FlowControlFrame(FlowContinue, 4, 0x14)
	status, bs, st, err := ParseFlowControl(f)
	if err != nil {
		t.Fatal(err)
	}
	if status != FlowContinue || bs != 4 || st != 0x14 {
		t.Errorf("parsed %v %d %d", status, bs, st)
	}
	for _, s := range []FlowStatus{FlowWait, FlowOverflow} {
		got, _, _, err := ParseFlowControl(FlowControlFrame(s, 0, 0))
		if err != nil || got != s {
			t.Errorf("status %d: %v %v", s, got, err)
		}
	}
	if _, _, _, err := ParseFlowControl([]byte{0x30}); !errors.Is(err, ErrBadPCI) {
		t.Error("short FC accepted")
	}
	if _, _, _, err := ParseFlowControl([]byte{0x3F, 0, 0}); err == nil {
		t.Error("invalid flow status accepted")
	}
	if _, _, _, err := ParseFlowControl([]byte{0x10, 0, 0}); !errors.Is(err, ErrBadPCI) {
		t.Error("non-FC frame accepted")
	}
}

func TestFlowControlNeededFlag(t *testing.T) {
	msg := testMsg(100)
	frames, _ := Segment(msg)
	var r Reassembler
	r.Push(frames[0])
	if !r.FlowControlNeeded() {
		t.Error("no flow control requested after FF")
	}
	if r.FlowControlNeeded() {
		t.Error("flag not cleared")
	}
	// SF transfers never need flow control.
	var r2 Reassembler
	sf, _ := Segment(testMsg(10))
	r2.Push(sf[0])
	if r2.FlowControlNeeded() {
		t.Error("flow control requested for single frame")
	}
}

func TestFrameCountTable2Messages(t *testing.T) {
	// The concrete message sizes of Table II must all be expressible.
	for _, n := range []int{48, 80, 101, 133, 165, 197, 213, 245} {
		frames, _, err := FrameCount(n)
		if err != nil || frames <= 0 {
			t.Errorf("size %d: %d frames, %v", n, frames, err)
		}
	}
}

// TestQuickRoundTrip property-tests segmentation across random sizes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint16) bool {
		n := int(seed)%MaxMessageLen + 1
		msg := testMsg(n)
		frames, err := Segment(msg)
		if err != nil {
			return false
		}
		var r Reassembler
		var got []byte
		for _, fr := range frames {
			m, err := r.Push(fr)
			if err != nil {
				return false
			}
			r.FlowControlNeeded()
			if m != nil {
				got = m
			}
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
