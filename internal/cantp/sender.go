package cantp

import (
	"errors"
	"fmt"
	"time"
)

// ISO 15765-2 error handling: the perfect lockstep bus of the original
// prototype never lost a frame, so Segment/Reassembler could assume
// every FlowControl arrives and every ConsecutiveFrame lands in order.
// Impaired, gateway-bridged segments break both assumptions. Sender
// (this file) and Receiver (receiver.go) are the timer-aware halves of
// the protocol: all deadlines run on the harness's simulated clock
// (expressed as time.Duration since epoch), never on the host clock,
// so timeout behaviour is exactly reproducible.

// Timeouts are the ISO 15765-2 §9.8 timing parameters, on the
// simulated clock.
type Timeouts struct {
	// NAs bounds the sender's frame-to-wire time. The simulated data
	// link transmits synchronously, so N_As can only be exceeded by
	// gateway store latency; it is validated but expiry cannot occur
	// mid-transfer.
	NAs time.Duration
	// NBs bounds the sender's wait for a FlowControl after a
	// FirstFrame (or between blocks).
	NBs time.Duration
	// NCr bounds the receiver's wait for the next ConsecutiveFrame.
	NCr time.Duration
}

// DefaultTimeouts returns the ISO default of 1 s for each parameter.
func DefaultTimeouts() Timeouts {
	return Timeouts{NAs: time.Second, NBs: time.Second, NCr: time.Second}
}

// withDefaults fills zero fields from DefaultTimeouts.
func (t Timeouts) withDefaults() Timeouts {
	d := DefaultTimeouts()
	if t.NAs <= 0 {
		t.NAs = d.NAs
	}
	if t.NBs <= 0 {
		t.NBs = d.NBs
	}
	if t.NCr <= 0 {
		t.NCr = d.NCr
	}
	return t
}

// SenderConfig parameterizes one transmitting state machine.
type SenderConfig struct {
	Timeouts Timeouts
	// MaxRetransmit caps FirstFrame retransmissions after an N_Bs
	// expiry. Strict ISO 15765-2 aborts on the first expiry
	// (MaxRetransmit = 0); the chaos experiments allow a bounded
	// retry budget with backoff instead.
	MaxRetransmit int
	// Backoff multiplies the N_Bs wait after every retransmission
	// (values < 1 are treated as 1 — constant timeout).
	Backoff float64
	// MaxWait caps consecutive FlowControl(Wait) frames tolerated
	// before aborting (ISO WFTmax). 0 means no Wait is tolerated.
	MaxWait int
}

// DefaultSenderConfig is the profile used by the reliable transport:
// three FF retransmissions with 1.5× backoff and a small Wait budget.
func DefaultSenderConfig() SenderConfig {
	return SenderConfig{
		Timeouts:      DefaultTimeouts(),
		MaxRetransmit: 3,
		Backoff:       1.5,
		MaxWait:       4,
	}
}

// Sender errors.
var (
	// ErrSendTimeout: N_Bs expired and the retransmission budget is
	// exhausted.
	ErrSendTimeout = errors.New("cantp: flow control timeout, retransmissions exhausted")
	// ErrFlowOverflow: the receiver answered FlowControl(Overflow);
	// the message cannot be delivered at any retry count.
	ErrFlowOverflow = errors.New("cantp: receiver signalled overflow")
	// ErrWaitBudget: the receiver kept answering FlowControl(Wait)
	// past the configured WFTmax.
	ErrWaitBudget = errors.New("cantp: flow control wait budget exhausted")
	// ErrSendAborted: the transfer already failed terminally.
	ErrSendAborted = errors.New("cantp: transfer aborted")
)

// SenderStats counts the recovery activity of one transfer.
type SenderStats struct {
	FramesSent    int // data frames handed to the wire (incl. retransmits)
	Retransmits   int // FirstFrame retransmissions after N_Bs expiry
	WaitsHonoured int // FlowControl(Wait) frames honoured
}

type senderState int

const (
	sendActive  senderState = iota // frames ready to transmit
	sendAwaitFC                    // waiting for a FlowControl
	sendPaced                      // STmin gate before the next CF
	sendDone                       // all frames delivered to the wire
	sendAborted                    // terminal failure
)

// Sender drives one ISO-TP transmission with N_Bs supervision, block
// and STmin pacing, FlowControl Wait/Overflow handling and bounded
// FirstFrame retransmission. It is a pure state machine: the caller
// owns the wire (Next returns payloads to transmit) and the clock
// (OnTimeout fires when the caller advances simulated time past
// Deadline).
type Sender struct {
	cfg    SenderConfig
	frames [][]byte
	multi  bool

	state     senderState
	next      int           // index of the next frame to transmit
	blockLeft int           // CFs before the next FC (-1 = rest of message)
	stmin     time.Duration // pacing gap granted by the last FC
	readyAt   time.Duration // earliest transmit time for the next CF
	deadline  time.Duration // N_Bs expiry when awaiting FC
	curNBs    time.Duration // current (backed-off) N_Bs
	waits     int           // consecutive Waits honoured
	stats     SenderStats
}

// NewSender segments msg and returns a sender ready to transmit at
// simulated time now.
func NewSender(cfg SenderConfig, msg []byte, now time.Duration) (*Sender, error) {
	cfg.Timeouts = cfg.Timeouts.withDefaults()
	if cfg.Backoff < 1 {
		cfg.Backoff = 1
	}
	frames, err := Segment(msg)
	if err != nil {
		return nil, err
	}
	s := &Sender{
		cfg:     cfg,
		frames:  frames,
		multi:   len(frames) > 1,
		curNBs:  cfg.Timeouts.NBs,
		readyAt: now,
	}
	return s, nil
}

// Done reports whether every frame has been handed to the wire.
func (s *Sender) Done() bool { return s.state == sendDone }

// Stats returns the transfer's recovery counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Deadline returns the simulated time at which OnTimeout must be
// invoked, or 0 when no timer is armed.
func (s *Sender) Deadline() time.Duration {
	if s.state == sendAwaitFC {
		return s.deadline
	}
	return 0
}

// ReadyAt returns the earliest simulated time Next will yield a frame
// while STmin pacing is in force (0 when not paced).
func (s *Sender) ReadyAt() time.Duration {
	if s.state == sendPaced {
		return s.readyAt
	}
	return 0
}

// Next returns the next frame payload to put on the wire at simulated
// time now, or nil when the sender is waiting (for a FlowControl, for
// the STmin gate, or because it is done/aborted).
func (s *Sender) Next(now time.Duration) []byte {
	if s.state == sendPaced && now >= s.readyAt {
		s.state = sendActive
	}
	if s.state != sendActive || s.next >= len(s.frames) {
		return nil
	}
	f := s.frames[s.next]
	s.next++
	s.stats.FramesSent++
	switch {
	case s.multi && s.next == 1:
		// FirstFrame sent: FC must arrive within N_Bs.
		s.state = sendAwaitFC
		s.deadline = now + s.curNBs
	case s.next == len(s.frames):
		s.state = sendDone
	default:
		if s.blockLeft > 0 {
			s.blockLeft--
			if s.blockLeft == 0 {
				// Block exhausted: next CF needs a fresh FC.
				s.state = sendAwaitFC
				s.deadline = now + s.curNBs
				return f
			}
		}
		if s.stmin > 0 {
			s.state = sendPaced
			s.readyAt = now + s.stmin
		}
	}
	return f
}

// OnFlowControl consumes a FlowControl payload received at simulated
// time now. Unexpected FlowControls (duplicates from an impaired bus)
// are ignored.
func (s *Sender) OnFlowControl(data []byte, now time.Duration) error {
	if s.state == sendAborted {
		return ErrSendAborted
	}
	status, bs, stmin, err := ParseFlowControl(data)
	if err != nil {
		return err
	}
	if s.state != sendAwaitFC {
		return nil // stale or duplicated FC: drop silently
	}
	switch status {
	case FlowContinue:
		s.waits = 0
		s.stmin = DecodeSTmin(stmin)
		if bs == 0 {
			s.blockLeft = -1 // rest of the message, no further FC
		} else {
			s.blockLeft = int(bs)
		}
		s.state = sendActive
		s.deadline = 0
		if s.stmin > 0 && s.next > 1 {
			s.state = sendPaced
			s.readyAt = now + s.stmin
		}
		return nil
	case FlowWait:
		s.waits++
		s.stats.WaitsHonoured++
		if s.waits > s.cfg.MaxWait {
			s.state = sendAborted
			return ErrWaitBudget
		}
		s.deadline = now + s.curNBs // re-arm N_Bs
		return nil
	case FlowOverflow:
		s.state = sendAborted
		return ErrFlowOverflow
	}
	return fmt.Errorf("%w: flow status %d", ErrBadPCI, status)
}

// OnTimeout handles an N_Bs expiry at simulated time now: it either
// schedules a FirstFrame retransmission (restarting the transfer with
// a backed-off timeout) or aborts when the budget is spent. The caller
// invokes it when simulated time reaches Deadline without a
// FlowControl having arrived.
func (s *Sender) OnTimeout(now time.Duration) error {
	if s.state != sendAwaitFC || now < s.deadline {
		return nil
	}
	if s.stats.Retransmits >= s.cfg.MaxRetransmit {
		s.state = sendAborted
		return ErrSendTimeout
	}
	s.stats.Retransmits++
	s.curNBs = time.Duration(float64(s.curNBs) * s.cfg.Backoff)
	// Restart from the FirstFrame: the receiver abandons its partial
	// transfer on the duplicate FF (see Receiver) or has already timed
	// out via N_Cr.
	s.next = 0
	s.blockLeft = 0
	s.waits = 0
	s.state = sendActive
	s.deadline = 0
	return nil
}

// STminMax is the longest minimum-separation time a valid STmin byte
// can encode (0x7F = 127 ms). ISO 15765-2 §9.6.5.4 directs a sender
// that receives a reserved STmin value to pace at this maximum: a
// malformed or corrupted FlowControl must make the sender conservative
// (slowest legal pacing), never free-running into a receiver that
// asked for separation it cannot name.
const STminMax = 127 * time.Millisecond

// DecodeSTmin maps a raw STmin byte to a duration per ISO 15765-2:
// 0x00–0x7F are 0–127 milliseconds and 0xF1–0xF9 are 100–900 µs.
// Every other value (the reserved ranges 0x80–0xF0 and 0xFA–0xFF) is
// clamped to STminMax on this decode path — the sender's FlowControl
// handling — so a reserved byte can only slow the sender down.
func DecodeSTmin(b byte) time.Duration {
	switch {
	case b <= 0x7F:
		return time.Duration(b) * time.Millisecond
	case b >= 0xF1 && b <= 0xF9:
		return time.Duration(b-0xF0) * 100 * time.Microsecond
	default:
		return STminMax
	}
}
