package ecqv

import (
	"fmt"
	"testing"

	"repro/internal/ec"
)

func TestIssueBatch(t *testing.T) {
	curve := ec.P256()
	rng := newDetRand(71)
	ca, err := NewCA(curve, NewID("batch-ca"), rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	reqs := make([]Request, n)
	secs := make([]*RequestSecret, n)
	for i := range reqs {
		reqs[i], secs[i], err = NewRequest(curve, NewID(fmt.Sprintf("dev-%02d", i)), rng)
		if err != nil {
			t.Fatal(err)
		}
	}

	resps, err := ca.IssueBatch(reqs, defaultParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != n {
		t.Fatalf("%d responses", len(resps))
	}
	serials := map[uint64]bool{}
	for i, resp := range resps {
		if resp == nil {
			t.Fatalf("response %d nil", i)
		}
		if resp.Cert.SubjectID != reqs[i].SubjectID {
			t.Errorf("response %d: subject %s, want %s", i, resp.Cert.SubjectID, reqs[i].SubjectID)
		}
		if serials[resp.Cert.Serial] {
			t.Errorf("serial %d reused", resp.Cert.Serial)
		}
		serials[resp.Cert.Serial] = true
		// Every subject must reconstruct a key consistent with what
		// relying parties extract — the full SEC 4 consistency check.
		if _, _, err := ReconstructPrivateKey(secs[i], resp, ca.PublicKey()); err != nil {
			t.Errorf("response %d: %v", i, err)
		}
	}
	if got := ca.NextSerial(); got != 1+n {
		t.Errorf("next serial %d, want %d", got, 1+n)
	}
}

func TestIssueBatchPartialFailure(t *testing.T) {
	curve := ec.P256()
	rng := newDetRand(72)
	ca, err := NewCA(curve, NewID("batch-ca"), rng)
	if err != nil {
		t.Fatal(err)
	}
	good, sec, err := NewRequest(curve, NewID("good"), rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := Request{SubjectID: NewID("bad")} // point at infinity
	resps, err := ca.IssueBatch([]Request{good, bad}, defaultParams(), 2)
	if err == nil {
		t.Fatal("invalid request did not surface an error")
	}
	if resps[1] != nil {
		t.Error("invalid request issued")
	}
	if resps[0] == nil {
		t.Fatal("valid request dropped")
	}
	if _, _, err := ReconstructPrivateKey(sec, resps[0], ca.PublicKey()); err != nil {
		t.Errorf("valid response: %v", err)
	}
}

func TestIssueBatchEmpty(t *testing.T) {
	ca, err := NewCA(ec.P256(), NewID("batch-ca"), newDetRand(73))
	if err != nil {
		t.Fatal(err)
	}
	resps, err := ca.IssueBatch(nil, defaultParams(), 4)
	if err != nil || len(resps) != 0 {
		t.Fatalf("empty batch: %v, %d responses", err, len(resps))
	}
}
