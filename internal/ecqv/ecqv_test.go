package ecqv

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ec"
	"repro/internal/ecdsa"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func defaultParams() IssueParams {
	return IssueParams{
		ValidFrom: time.Unix(1700000000, 0),
		ValidTo:   time.Unix(1700000000+86400, 0),
		KeyUsage:  UsageKeyAgreement | UsageSignature,
	}
}

// issueOne runs a complete issuance for tests and returns the device's
// reconstructed key material.
func issueOne(t *testing.T, curve *ec.Curve, rng *detRand, id string) (*CA, *Certificate, *big.Int, ec.Point) {
	t.Helper()
	ca, err := NewCA(curve, NewID("test-ca"), rng)
	if err != nil {
		t.Fatal(err)
	}
	req, sec, err := NewRequest(curve, NewID(id), rng)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ca.Issue(req, defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d, q, err := ReconstructPrivateKey(sec, resp, ca.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	return ca, resp.Cert, d, q
}

func TestIssuanceRoundTrip(t *testing.T) {
	rng := newDetRand(1)
	for _, curve := range ec.Curves() {
		t.Run(curve.Name, func(t *testing.T) {
			ca, cert, d, q := issueOne(t, curve, rng, "device-a")

			// The fundamental ECQV contract: the subject's private key
			// matches the public key any relying party extracts from
			// the certificate alone.
			extracted, err := ExtractPublicKey(cert, ca.PublicKey())
			if err != nil {
				t.Fatal(err)
			}
			if !extracted.Equal(q) {
				t.Fatal("extracted public key != reconstructed public key")
			}
			if !curve.ScalarBaseMult(d).Equal(extracted) {
				t.Fatal("d·G != extracted public key")
			}
		})
	}
}

func TestEquationOne(t *testing.T) {
	// Explicitly verify the paper's equation (1):
	// Q_X = Hash(Cert_X)·Decode(Cert_X) + Q_CA.
	rng := newDetRand(2)
	curve := ec.P256()
	ca, cert, _, q := issueOne(t, curve, rng, "device-eq1")

	e := cert.HashToScalar()
	manual := curve.Add(curve.ScalarMult(cert.PubRecon, e), ca.PublicKey())
	if !manual.Equal(q) {
		t.Fatal("equation (1) does not hold")
	}
}

func TestReconstructedKeySignsECDSA(t *testing.T) {
	// End-to-end: a device signs with its ECQV-reconstructed private
	// key and a verifier checks with the key extracted from the
	// certificate — the exact authentication flow of Algorithms 1–2.
	rng := newDetRand(3)
	curve := ec.P256()
	ca, cert, d, _ := issueOne(t, curve, rng, "device-sig")

	signKey, err := ecdsa.NewPrivateKey(curve, d)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("XG_A || XG_B")
	sig, err := signKey.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}

	q, err := ExtractPublicKey(cert, ca.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	pub := &ecdsa.PublicKey{Curve: curve, Q: q}
	if !pub.Verify(msg, sig) {
		t.Fatal("signature under reconstructed key did not verify")
	}
}

func TestCertificateBinding(t *testing.T) {
	// Two devices issued by the same CA must get distinct keys, and
	// neither's signature verifies under the other's certificate.
	rng := newDetRand(4)
	curve := ec.P256()
	ca, err := NewCA(curve, NewID("ca"), rng)
	if err != nil {
		t.Fatal(err)
	}

	issue := func(id string) (*Certificate, *big.Int) {
		req, sec, err := NewRequest(curve, NewID(id), rng)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ca.Issue(req, defaultParams())
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := ReconstructPrivateKey(sec, resp, ca.PublicKey())
		if err != nil {
			t.Fatal(err)
		}
		return resp.Cert, d
	}
	certA, dA := issue("alice")
	certB, dB := issue("bob")

	if dA.Cmp(dB) == 0 {
		t.Fatal("two devices reconstructed the same private key")
	}
	if certA.Serial == certB.Serial {
		t.Fatal("serial reuse")
	}

	keyA, _ := ecdsa.NewPrivateKey(curve, dA)
	sig, _ := keyA.Sign([]byte("m"))
	qB, _ := ExtractPublicKey(certB, ca.PublicKey())
	if (&ecdsa.PublicKey{Curve: curve, Q: qB}).Verify([]byte("m"), sig) {
		t.Fatal("alice's signature verified under bob's certificate")
	}
}

func TestTamperedCertificateBreaksKeys(t *testing.T) {
	// The implicit-certificate property: altering any certificate byte
	// silently changes the extracted public key so signatures stop
	// verifying. (No explicit signature check exists to reject it.)
	rng := newDetRand(5)
	curve := ec.P256()
	ca, cert, d, _ := issueOne(t, curve, rng, "device-tamper")

	signKey, _ := ecdsa.NewPrivateKey(curve, d)
	sig, _ := signKey.Sign([]byte("msg"))

	enc := cert.Encode()
	for _, idx := range []int{4, 12, 44, 60} { // serial, subject, validity, ext
		mod := append([]byte{}, enc...)
		mod[idx] ^= 0x01
		forged, err := Decode(mod)
		if err != nil {
			t.Fatalf("byte %d: decode: %v", idx, err)
		}
		q, err := ExtractPublicKey(forged, ca.PublicKey())
		if err != nil {
			t.Fatalf("byte %d: extract: %v", idx, err)
		}
		if (&ecdsa.PublicKey{Curve: curve, Q: q}).Verify([]byte("msg"), sig) {
			t.Errorf("byte %d: signature still verifies after tampering", idx)
		}
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	rng := newDetRand(6)
	for _, curve := range ec.Curves() {
		t.Run(curve.Name, func(t *testing.T) {
			_, cert, _, _ := issueOne(t, curve, rng, "device-enc")
			enc := cert.Encode()
			if len(enc) != EncodedSize(curve) {
				t.Fatalf("encoded size %d, want %d", len(enc), EncodedSize(curve))
			}
			dec, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Equal(cert) {
				t.Fatal("certificate round trip failed")
			}
			if !dec.PubRecon.Equal(cert.PubRecon) {
				t.Fatal("reconstruction point round trip failed")
			}
		})
	}
}

func TestMinimalEncodingIs101Bytes(t *testing.T) {
	// Table II charges Cert(101): the P-256 minimal encoding must be
	// exactly 101 bytes.
	if got := EncodedSize(ec.P256()); got != 101 {
		t.Fatalf("P-256 certificate size = %d, want 101", got)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	rng := newDetRand(7)
	_, cert, _, _ := issueOne(t, ec.P256(), rng, "device-bad")
	enc := cert.Encode()

	cases := map[string][]byte{
		"empty":     {},
		"short":     enc[:50],
		"long":      append(append([]byte{}, enc...), 0),
		"version":   func() []byte { b := append([]byte{}, enc...); b[0] = 9; return b }(),
		"curve":     func() []byte { b := append([]byte{}, enc...); b[1] = 9; return b }(),
		"reserved":  func() []byte { b := append([]byte{}, enc...); b[3] = 1; return b }(),
		"bad point": func() []byte { b := append([]byte{}, enc...); b[certHeaderSize] = 0x07; return b }(),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted malformed certificate", name)
		}
	}
}

func TestValidity(t *testing.T) {
	rng := newDetRand(8)
	_, cert, _, _ := issueOne(t, ec.P256(), rng, "device-valid")

	from := time.Unix(cert.ValidFrom, 0)
	to := time.Unix(cert.ValidTo, 0)
	if !cert.ValidAt(from) || !cert.ValidAt(to) {
		t.Error("boundary instants must be valid")
	}
	if cert.ValidAt(from.Add(-time.Second)) {
		t.Error("before window reported valid")
	}
	if cert.ValidAt(to.Add(time.Second)) {
		t.Error("after window reported valid")
	}

	if !cert.PermitsUsage(UsageSignature) || !cert.PermitsUsage(UsageKeyAgreement) {
		t.Error("issued usages not granted")
	}
	if cert.PermitsUsage(KeyUsage(0x80)) {
		t.Error("ungranted usage reported as permitted")
	}
}

func TestIssueRejectsBadRequests(t *testing.T) {
	rng := newDetRand(9)
	curve := ec.P256()
	ca, _ := NewCA(curve, NewID("ca"), rng)

	// Infinity request point.
	if _, err := ca.Issue(Request{SubjectID: NewID("x"), R: ec.Infinity()}, defaultParams()); err == nil {
		t.Error("infinity request point accepted")
	}
	// Off-curve request point.
	bad := ec.Point{X: big.NewInt(1), Y: big.NewInt(1)}
	if _, err := ca.Issue(Request{SubjectID: NewID("x"), R: bad}, defaultParams()); err == nil {
		t.Error("off-curve request point accepted")
	}
	// Empty validity window.
	req, _, _ := NewRequest(curve, NewID("x"), rng)
	p := defaultParams()
	p.ValidTo = p.ValidFrom
	if _, err := ca.Issue(req, p); err == nil {
		t.Error("empty validity window accepted")
	}
}

func TestReconstructRejectsCorruptedResponse(t *testing.T) {
	rng := newDetRand(10)
	curve := ec.P256()
	ca, _ := NewCA(curve, NewID("ca"), rng)
	req, sec, _ := NewRequest(curve, NewID("dev"), rng)
	resp, err := ca.Issue(req, defaultParams())
	if err != nil {
		t.Fatal(err)
	}

	// Corrupted r: consistency check Q = d·G must fail.
	badR := &Response{Cert: resp.Cert, R: new(big.Int).Add(resp.R, big.NewInt(1))}
	if _, _, err := ReconstructPrivateKey(sec, badR, ca.PublicKey()); err == nil {
		t.Error("corrupted r accepted")
	}
	// r out of range.
	outR := &Response{Cert: resp.Cert, R: new(big.Int).Set(curve.N)}
	if _, _, err := ReconstructPrivateKey(sec, outR, ca.PublicKey()); err == nil {
		t.Error("out-of-range r accepted")
	}
	// Wrong CA public key.
	otherCA, _ := NewCA(curve, NewID("other"), rng)
	if _, _, err := ReconstructPrivateKey(sec, resp, otherCA.PublicKey()); err == nil {
		t.Error("wrong CA key accepted")
	}
	// Nil inputs.
	if _, _, err := ReconstructPrivateKey(nil, resp, ca.PublicKey()); err == nil {
		t.Error("nil secret accepted")
	}
	if _, _, err := ReconstructPrivateKey(sec, nil, ca.PublicKey()); err == nil {
		t.Error("nil response accepted")
	}
	// Valid response still reconstructs (sanity after all the rejects).
	if _, _, err := ReconstructPrivateKey(sec, resp, ca.PublicKey()); err != nil {
		t.Errorf("valid response rejected: %v", err)
	}
}

func TestExtractRejectsBadInputs(t *testing.T) {
	rng := newDetRand(11)
	curve := ec.P256()
	ca, cert, _, _ := issueOne(t, curve, rng, "device-x")

	if _, err := ExtractPublicKey(nil, ca.PublicKey()); err == nil {
		t.Error("nil certificate accepted")
	}
	badCert := *cert
	badCert.PubRecon = ec.Infinity()
	if _, err := ExtractPublicKey(&badCert, ca.PublicKey()); err == nil {
		t.Error("infinity reconstruction point accepted")
	}
	if _, err := ExtractPublicKey(cert, ec.Infinity()); err == nil {
		t.Error("infinity CA key accepted")
	}
	offCurve := ec.Point{X: big.NewInt(2), Y: big.NewInt(3)}
	if _, err := ExtractPublicKey(cert, offCurve); err == nil {
		t.Error("off-curve CA key accepted")
	}
}

func TestIDString(t *testing.T) {
	if NewID("bms-controller").String() != "bms-controller" {
		t.Error("ID round trip failed")
	}
	long := NewID("this-name-is-longer-than-sixteen-bytes")
	if len(long.String()) != IDSize {
		t.Error("long ID not truncated")
	}
	var zero ID
	if zero.String() != "" {
		t.Error("zero ID must render empty")
	}
}

func TestSelfCertificate(t *testing.T) {
	rng := newDetRand(12)
	ca, _ := NewCA(ec.P256(), NewID("root"), rng)
	cert, err := ca.SelfCertificate(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cert.SubjectID != ca.ID || cert.IssuerID != ca.ID {
		t.Error("self certificate identity wrong")
	}
	if !cert.PubRecon.Equal(ca.PublicKey()) {
		t.Error("self certificate must carry the CA key directly")
	}
}

func TestNewCAFromKey(t *testing.T) {
	rng := newDetRand(13)
	curve := ec.P256()
	original, err := NewCA(curve, NewID("persisted-ca"), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Issue one certificate with the original CA.
	req, sec, _ := NewRequest(curve, NewID("dev"), rng)
	resp, err := original.Issue(req, defaultParams())
	if err != nil {
		t.Fatal(err)
	}

	// Restore from the persisted scalar; the restored CA must have the
	// same public key so previously issued certificates keep working.
	restored, err := NewCAFromKey(curve, original.ID, original.PrivateKey(), original.NextSerial(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.PublicKey().Equal(original.PublicKey()) {
		t.Fatal("restored CA public key differs")
	}
	if _, _, err := ReconstructPrivateKey(sec, resp, restored.PublicKey()); err != nil {
		t.Fatalf("pre-restore certificate unusable: %v", err)
	}
	// Serial continuity.
	req2, _, _ := NewRequest(curve, NewID("dev2"), rng)
	resp2, err := restored.Issue(req2, defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cert.Serial != resp.Cert.Serial+1 {
		t.Errorf("serial %d, want %d", resp2.Cert.Serial, resp.Cert.Serial+1)
	}

	// Invalid keys rejected.
	if _, err := NewCAFromKey(curve, NewID("x"), nil, 1, rng); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := NewCAFromKey(curve, NewID("x"), curve.N, 1, rng); err == nil {
		t.Error("out-of-range key accepted")
	}
	// Zero serial defaults to 1.
	fresh, err := NewCAFromKey(curve, NewID("x"), big.NewInt(7), 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.NextSerial() != 1 {
		t.Errorf("zero serial not defaulted: %d", fresh.NextSerial())
	}
}

// TestQuickIssuance property-tests the issuance pipeline across many
// deterministic randomness streams.
func TestQuickIssuance(t *testing.T) {
	curve := ec.P256()
	f := func(seed int64) bool {
		rng := newDetRand(seed)
		ca, err := NewCA(curve, NewID("ca"), rng)
		if err != nil {
			return false
		}
		req, sec, err := NewRequest(curve, NewID("dev"), rng)
		if err != nil {
			return false
		}
		resp, err := ca.Issue(req, defaultParams())
		if err != nil {
			return false
		}
		d, q, err := ReconstructPrivateKey(sec, resp, ca.PublicKey())
		if err != nil {
			return false
		}
		ext, err := ExtractPublicKey(resp.Cert, ca.PublicKey())
		return err == nil && ext.Equal(q) && curve.ScalarBaseMult(d).Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Error(err)
	}
}
