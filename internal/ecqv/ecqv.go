// Package ecqv implements the Elliptic Curve Qu–Vanstone implicit
// certificate scheme (SEC 4, Certicom 2013), the certificate substrate
// of the paper.
//
// An implicit certificate does not carry a signature or an explicit
// public key. It carries a *public-key reconstruction point* P_U from
// which any relying party derives the subject's public key as
//
//	Q_U = H(Cert_U) · P_U + Q_CA            (paper equation (1))
//
// and from which the subject derives the matching private key as
//
//	d_U = H(Cert_U) · k_U + r  (mod n)
//
// where k_U is the subject's request secret and r the CA's private
// reconstruction value. A certificate is therefore "verified" by using
// it: a forged certificate reconstructs a key nobody can sign with.
// Security of ECDSA under ECQV-reconstructed keys against passive
// adversaries is due to Brown et al. (ePrint 2009/620), which the paper
// relies on.
package ecqv

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"

	"repro/internal/conc"
	"repro/internal/ec"
)

// IDSize is the fixed identity size used throughout the protocol stack
// (the paper's Table II assumes 16-byte IDs).
const IDSize = 16

// ID is a fixed-size device or CA identity.
type ID [IDSize]byte

// NewID builds an ID from a string, truncating or zero-padding to
// IDSize bytes.
func NewID(s string) ID {
	var id ID
	copy(id[:], s)
	return id
}

func (id ID) String() string {
	end := len(id)
	for end > 0 && id[end-1] == 0 {
		end--
	}
	return string(id[:end])
}

// KeyUsage flags declared inside a certificate.
type KeyUsage byte

const (
	// UsageKeyAgreement permits static and ephemeral ECDH.
	UsageKeyAgreement KeyUsage = 1 << iota
	// UsageSignature permits ECDSA signing (required for STS and
	// S-ECDSA authentication responses).
	UsageSignature
)

// Request is the public half of a certificate request: the subject's
// ephemeral commitment R_U = k_U·G sent to the CA together with its
// identity.
type Request struct {
	SubjectID ID
	R         ec.Point
}

// RequestSecret is the private half, retained by the subject until the
// CA responds.
type RequestSecret struct {
	curve *ec.Curve
	k     *big.Int
}

// NewRequest draws the request secret k_U and returns the request pair.
// A nil rng selects crypto/rand.
func NewRequest(curve *ec.Curve, subjectID ID, rng io.Reader) (Request, *RequestSecret, error) {
	k, err := curve.RandomScalar(rng)
	if err != nil {
		return Request{}, nil, fmt.Errorf("ecqv: request: %w", err)
	}
	return Request{SubjectID: subjectID, R: curve.ScalarBaseMult(k)},
		&RequestSecret{curve: curve, k: k}, nil
}

// Response is the CA's answer: the certificate plus the private-key
// reconstruction value r (confidential to the subject).
type Response struct {
	Cert *Certificate
	R    *big.Int
}

// CA is an ECQV certificate authority. Issuance is safe for
// concurrent use: the randomness source and the serial counter are the
// only mutable state, and both are guarded internally, so any number
// of Issue calls (or one IssueBatch) may run in parallel.
type CA struct {
	Curve *ec.Curve
	ID    ID
	priv  *big.Int
	pub   ec.Point
	rand  io.Reader

	// mu guards the randomness source (deterministic test readers are
	// not concurrency-safe) and serial allocation.
	mu         sync.Mutex
	nextSerial uint64
}

// NewCA creates a CA with a fresh key pair. A nil rng selects
// crypto/rand.
func NewCA(curve *ec.Curve, id ID, rng io.Reader) (*CA, error) {
	d, q, err := curve.GenerateKeyPair(rng)
	if err != nil {
		return nil, fmt.Errorf("ecqv: CA key: %w", err)
	}
	return &CA{Curve: curve, ID: id, priv: d, pub: q, rand: rng, nextSerial: 1}, nil
}

// NewCAFromKey restores a CA from a persisted private scalar (e.g. a
// key file), validating its range.
func NewCAFromKey(curve *ec.Curve, id ID, priv *big.Int, nextSerial uint64, rng io.Reader) (*CA, error) {
	if priv == nil || priv.Sign() <= 0 || priv.Cmp(curve.N) >= 0 {
		return nil, errors.New("ecqv: CA private key out of range")
	}
	d := new(big.Int).Set(priv)
	if nextSerial == 0 {
		nextSerial = 1
	}
	return &CA{
		Curve: curve, ID: id, priv: d, pub: curve.ScalarBaseMult(d),
		rand: rng, nextSerial: nextSerial,
	}, nil
}

// PrivateKey exposes the CA scalar for persistence (key files). Handle
// with care.
func (ca *CA) PrivateKey() *big.Int { return new(big.Int).Set(ca.priv) }

// NextSerial returns the serial number the next issuance will use.
func (ca *CA) NextSerial() uint64 {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.nextSerial
}

// randomScalar draws an issuance nonce under the CA lock, so
// concurrent issuances never race on the randomness source.
func (ca *CA) randomScalar() (*big.Int, error) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.Curve.RandomScalar(ca.rand)
}

// takeSerial allocates the next certificate serial.
func (ca *CA) takeSerial() uint64 {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	s := ca.nextSerial
	ca.nextSerial++
	return s
}

// returnSerial hands an unused serial back after a failed issuance.
// Best effort: it only rolls back while no later serial has been
// allocated, so concurrent issuance can still leave gaps (which is
// harmless — serials need only be unique).
func (ca *CA) returnSerial(s uint64) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if ca.nextSerial == s+1 {
		ca.nextSerial = s
	}
}

// PublicKey returns the CA public key Q_CA that every relying party
// must hold to reconstruct subject keys.
func (ca *CA) PublicKey() ec.Point { return ca.pub.Clone() }

// IssueParams carries the certificate attributes chosen by the CA at
// issuance time.
type IssueParams struct {
	ValidFrom time.Time
	ValidTo   time.Time
	KeyUsage  KeyUsage
}

// Issue runs the CA side of ECQV certificate generation (SEC 4 §3.4):
//
//	k  ∈R [1, n−1]
//	P_U = R_U + k·G                    (reconstruction point)
//	Cert_U = Encode(P_U, ID_U, meta)
//	e  = H_n(Cert_U)
//	r  = e·k + d_CA  (mod n)
//
// It returns the certificate and r. Issue fails if the request point is
// invalid (off-curve or infinity), the SEC 4 guard against invalid-
// point attacks on the CA.
func (ca *CA) Issue(req Request, params IssueParams) (*Response, error) {
	if req.R.IsInfinity() || !ca.Curve.IsOnCurve(req.R) {
		return nil, errors.New("ecqv: request point invalid")
	}
	if !params.ValidTo.After(params.ValidFrom) {
		return nil, errors.New("ecqv: certificate validity window is empty")
	}

	serial := ca.takeSerial()
	for attempt := 0; attempt < 64; attempt++ {
		k, err := ca.randomScalar()
		if err != nil {
			ca.returnSerial(serial)
			return nil, fmt.Errorf("ecqv: issuance nonce: %w", err)
		}
		pu := ca.Curve.Add(req.R, ca.Curve.ScalarBaseMult(k))
		if pu.IsInfinity() {
			continue // R_U = −k·G; astronomically unlikely, retry
		}
		cert := &Certificate{
			Curve:     ca.Curve,
			Version:   CertVersion,
			Serial:    serial,
			SubjectID: req.SubjectID,
			IssuerID:  ca.ID,
			ValidFrom: params.ValidFrom.Unix(),
			ValidTo:   params.ValidTo.Unix(),
			KeyUsage:  params.KeyUsage,
			PubRecon:  pu,
		}
		e := cert.HashToScalar()
		if e.Sign() == 0 {
			continue // H_n(Cert) ≡ 0 would erase the subject's key share
		}
		r := new(big.Int).Mul(e, k)
		r.Add(r, ca.priv)
		r.Mod(r, ca.Curve.N)

		return &Response{Cert: cert, R: r}, nil
	}
	ca.returnSerial(serial)
	return nil, errors.New("ecqv: issuance did not converge")
}

// IssueBatch amortizes issuance over many requests: the per-curve
// base-point table is warmed once up front (so workers share the
// cached precomputation instead of serializing on its lazy build), and
// the heavy point arithmetic fans out over a pool of at most
// parallelism workers (GOMAXPROCS when ≤ 0). Responses align with
// reqs; per-request failures are joined into the returned error while
// the remaining requests still complete.
func (ca *CA) IssueBatch(reqs []Request, params IssueParams, parallelism int) ([]*Response, error) {
	ca.Curve.ScalarBaseMult(big.NewInt(1)) // warm the shared base table

	out := make([]*Response, len(reqs))
	errs := make([]error, len(reqs))
	conc.ForEach(len(reqs), parallelism, func(i int) {
		resp, err := ca.Issue(reqs[i], params)
		if err != nil {
			errs[i] = fmt.Errorf("ecqv: batch request %d (%s): %w", i, reqs[i].SubjectID, err)
			return
		}
		out[i] = resp
	})
	return out, errors.Join(errs...)
}

// HashToScalar computes e = H_n(Cert) over the certificate's canonical
// encoding: SHA-256 truncated into the scalar field, the same mapping
// used by ECDSA (SEC 4 §3.5).
func (cert *Certificate) HashToScalar() *big.Int {
	digest := sha256.Sum256(cert.Encode())
	return cert.Curve.HashToInt(digest[:])
}

// ReconstructPrivateKey runs the subject side of issuance:
// d_U = H(Cert)·k_U + r (mod n), then confirms Q_U = d_U·G matches the
// public key any relying party would extract — the SEC 4 §3.4
// consistency check that detects a corrupted or substituted response.
func ReconstructPrivateKey(sec *RequestSecret, resp *Response, caPub ec.Point) (*big.Int, ec.Point, error) {
	if sec == nil || resp == nil || resp.Cert == nil || resp.R == nil {
		return nil, ec.Point{}, errors.New("ecqv: nil reconstruction input")
	}
	curve := sec.curve
	if resp.R.Sign() < 0 || resp.R.Cmp(curve.N) >= 0 {
		return nil, ec.Point{}, errors.New("ecqv: reconstruction value out of range")
	}
	e := resp.Cert.HashToScalar()
	d := new(big.Int).Mul(e, sec.k)
	d.Add(d, resp.R)
	d.Mod(d, curve.N)
	if d.Sign() == 0 {
		return nil, ec.Point{}, errors.New("ecqv: degenerate private key")
	}

	q, err := ExtractPublicKey(resp.Cert, caPub)
	if err != nil {
		return nil, ec.Point{}, err
	}
	if !curve.ScalarBaseMult(d).Equal(q) {
		return nil, ec.Point{}, errors.New("ecqv: reconstructed key does not match certificate")
	}
	return d, q, nil
}

// ExtractPublicKey implements the relying-party computation — the
// paper's equation (1):
//
//	Q_X = Hash(Cert_X) · Decode(Cert_X) + Q_CA
//
// No signature check occurs here; authenticity is implicit and is only
// established once the subject proves possession of d_X (e.g. by the
// STS signature exchange).
func ExtractPublicKey(cert *Certificate, caPub ec.Point) (ec.Point, error) {
	if cert == nil {
		return ec.Point{}, errors.New("ecqv: nil certificate")
	}
	curve := cert.Curve
	if cert.PubRecon.IsInfinity() || !curve.IsOnCurve(cert.PubRecon) {
		return ec.Point{}, errors.New("ecqv: certificate reconstruction point invalid")
	}
	if caPub.IsInfinity() || !curve.IsOnCurve(caPub) {
		return ec.Point{}, errors.New("ecqv: CA public key invalid")
	}
	e := cert.HashToScalar()
	q := curve.Add(curve.ScalarMult(cert.PubRecon, e), caPub)
	if q.IsInfinity() {
		return ec.Point{}, errors.New("ecqv: extracted public key is the identity")
	}
	return q, nil
}

// SelfIssue provisions the CA itself with an ECQV certificate chain of
// depth one (the CA certifies a device in a single hop; hierarchical
// chains are out of the paper's scope). Exposed for completeness of
// the CA lifecycle in examples.
func (ca *CA) SelfCertificate(params IssueParams) (*Certificate, error) {
	cert := &Certificate{
		Curve:     ca.Curve,
		Version:   CertVersion,
		Serial:    0,
		SubjectID: ca.ID,
		IssuerID:  ca.ID,
		ValidFrom: params.ValidFrom.Unix(),
		ValidTo:   params.ValidTo.Unix(),
		KeyUsage:  params.KeyUsage,
		PubRecon:  ca.pub.Clone(), // degenerate: Q_CA published directly
	}
	return cert, nil
}
