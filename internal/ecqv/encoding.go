package ecqv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/ec"
)

// Certificate is a minimal ECQV implicit certificate. The encoding is
// the fixed-layout "minimal certificate encoding" of SEC 4 §C, sized so
// that a P-256 certificate is exactly 101 bytes — the value the paper's
// Table II charges per transmitted certificate.
//
// Layout (big-endian):
//
//	offset  size  field
//	0       1     version
//	1       1     curve code (1 = P-256, 2 = P-224, 3 = P-192)
//	2       1     key usage flags
//	3       1     reserved (zero)
//	4       8     serial number
//	12      16    subject ID
//	28      16    issuer ID
//	44      8     validFrom (unix seconds)
//	52      8     validTo (unix seconds)
//	60      8     extensions (profile-defined, zero here)
//	68      33    public-key reconstruction point (compressed)  [P-256]
//
// Total: 68 + (ByteLen+1) bytes = 101 on P-256.
type Certificate struct {
	Curve     *ec.Curve
	Version   byte
	KeyUsage  KeyUsage
	Serial    uint64
	SubjectID ID
	IssuerID  ID
	ValidFrom int64 // unix seconds
	ValidTo   int64 // unix seconds
	Ext       [8]byte
	PubRecon  ec.Point
}

// CertVersion is the current certificate format version.
const CertVersion = 1

// certHeaderSize is the fixed portion before the reconstruction point.
const certHeaderSize = 68

// EncodedSize returns the certificate wire size for a curve:
// 101 bytes on P-256.
func EncodedSize(curve *ec.Curve) int {
	return certHeaderSize + curve.CompressedPointSize()
}

func curveCode(c *ec.Curve) (byte, error) {
	switch c.Name {
	case "secp256r1":
		return 1, nil
	case "secp224r1":
		return 2, nil
	case "secp192r1":
		return 3, nil
	}
	return 0, fmt.Errorf("ecqv: no curve code for %s", c.Name)
}

func curveFromCode(code byte) (*ec.Curve, error) {
	switch code {
	case 1:
		return ec.P256(), nil
	case 2:
		return ec.P224(), nil
	case 3:
		return ec.P192(), nil
	}
	return nil, fmt.Errorf("ecqv: unknown curve code %d", code)
}

// Encode serializes the certificate into its canonical minimal form.
// The result of Encode is also the exact input of HashToScalar, so any
// bit flip changes the reconstructed keys.
func (cert *Certificate) Encode() []byte {
	code, err := curveCode(cert.Curve)
	if err != nil {
		panic(err) // programming error: certificate built on unknown curve
	}
	out := make([]byte, EncodedSize(cert.Curve))
	out[0] = cert.Version
	out[1] = code
	out[2] = byte(cert.KeyUsage)
	out[3] = 0
	binary.BigEndian.PutUint64(out[4:12], cert.Serial)
	copy(out[12:28], cert.SubjectID[:])
	copy(out[28:44], cert.IssuerID[:])
	binary.BigEndian.PutUint64(out[44:52], uint64(cert.ValidFrom))
	binary.BigEndian.PutUint64(out[52:60], uint64(cert.ValidTo))
	copy(out[60:68], cert.Ext[:])
	copy(out[certHeaderSize:], cert.Curve.EncodeCompressed(cert.PubRecon))
	return out
}

// ErrBadCertificate is wrapped by all decode failures.
var ErrBadCertificate = errors.New("ecqv: malformed certificate")

// Decode parses a canonical certificate encoding. The expected curve is
// taken from the embedded curve code; decode fails on unknown codes,
// length mismatch, version mismatch or an invalid reconstruction point.
func Decode(data []byte) (*Certificate, error) {
	if len(data) < certHeaderSize+1 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadCertificate, len(data))
	}
	if data[0] != CertVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadCertificate, data[0])
	}
	curve, err := curveFromCode(data[1])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	if len(data) != EncodedSize(curve) {
		return nil, fmt.Errorf("%w: length %d, want %d for %s",
			ErrBadCertificate, len(data), EncodedSize(curve), curve.Name)
	}
	if data[3] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved byte", ErrBadCertificate)
	}
	cert := &Certificate{
		Curve:    curve,
		Version:  data[0],
		KeyUsage: KeyUsage(data[2]),
		Serial:   binary.BigEndian.Uint64(data[4:12]),
	}
	copy(cert.SubjectID[:], data[12:28])
	copy(cert.IssuerID[:], data[28:44])
	cert.ValidFrom = int64(binary.BigEndian.Uint64(data[44:52]))
	cert.ValidTo = int64(binary.BigEndian.Uint64(data[52:60]))
	copy(cert.Ext[:], data[60:68])

	p, err := curve.DecodePoint(data[certHeaderSize:])
	if err != nil {
		return nil, fmt.Errorf("%w: reconstruction point: %v", ErrBadCertificate, err)
	}
	if p.IsInfinity() {
		return nil, fmt.Errorf("%w: infinity reconstruction point", ErrBadCertificate)
	}
	cert.PubRecon = p
	return cert, nil
}

// ValidAt reports whether the certificate's validity window covers t.
func (cert *Certificate) ValidAt(t time.Time) bool {
	u := t.Unix()
	return u >= cert.ValidFrom && u <= cert.ValidTo
}

// PermitsUsage reports whether all requested usage flags are granted.
func (cert *Certificate) PermitsUsage(u KeyUsage) bool {
	return cert.KeyUsage&u == u
}

// Equal reports byte-level certificate equality.
func (cert *Certificate) Equal(other *Certificate) bool {
	if cert == nil || other == nil {
		return cert == other
	}
	if cert.Curve != other.Curve {
		return false
	}
	a := cert.Encode()
	b := other.Encode()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (cert *Certificate) String() string {
	return fmt.Sprintf("ECQV{%s serial=%d subject=%s issuer=%s}",
		cert.Curve.Name, cert.Serial, cert.SubjectID, cert.IssuerID)
}
