package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/ec"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// newPair provisions two parties on a fresh network for tests.
func newPair(t *testing.T, seed int64) (*Party, *Party) {
	t.Helper()
	net, err := NewNetwork(ec.P256(), newDetRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := net.Pair("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestAllProtocolsAgreeOnKeys(t *testing.T) {
	for _, p := range Protocols() {
		t.Run(p.Name(), func(t *testing.T) {
			a, b := newPair(t, 1)
			res, err := p.Run(a, b)
			if err != nil {
				t.Fatal(err)
			}
			key, err := res.SessionKey()
			if err != nil {
				t.Fatal(err)
			}
			if len(key) != 48 { // 16 B AES + 32 B MAC key material
				t.Errorf("session key length %d", len(key))
			}
			if !bytes.Equal(res.KeyA, res.KeyB) {
				t.Error("parties derived different keys")
			}
		})
	}
}

func TestTranscriptMatchesSpec(t *testing.T) {
	// The dynamic transcript must match the static Table II spec
	// byte-for-byte in structure: same labels, same field sizes.
	for _, p := range Protocols() {
		t.Run(p.Name(), func(t *testing.T) {
			a, b := newPair(t, 2)
			res, err := p.Run(a, b)
			if err != nil {
				t.Fatal(err)
			}
			spec := p.Spec()
			if len(res.Transcript) != len(spec) {
				t.Fatalf("transcript has %d steps, spec %d", len(res.Transcript), len(spec))
			}
			for i, msg := range res.Transcript {
				if msg.Label != spec[i].Label {
					t.Errorf("step %d label %s, spec %s", i, msg.Label, spec[i].Label)
				}
				if msg.Len() != spec[i].Size() {
					t.Errorf("step %s size %d, spec %d", msg.Label, msg.Len(), spec[i].Size())
				}
				if len(msg.Field) != len(spec[i].Fields) {
					t.Errorf("step %s has %d fields, spec %d", msg.Label, len(msg.Field), len(spec[i].Fields))
					continue
				}
				for j, f := range msg.Field {
					if len(f.Bytes) != spec[i].Fields[j].Size {
						t.Errorf("step %s field %s size %d, spec %d",
							msg.Label, f.Name, len(f.Bytes), spec[i].Fields[j].Size)
					}
				}
			}
		})
	}
}

func TestTable2Totals(t *testing.T) {
	// Table II exact values: steps and total bytes per protocol.
	cases := []struct {
		proto Protocol
		steps int
		bytes int
	}{
		{NewSECDSA(false), 4, 427},
		{NewSECDSA(true), 5, 427 + 192},
		{NewSTS(OptNone), 4, 491},
		{NewSTS(OptI), 4, 491},
		{NewSTS(OptII), 4, 491},
		{NewSCIANC(), 4, 362},
		{NewPORAMB(), 6, 820},
	}
	for _, tc := range cases {
		t.Run(tc.proto.Name(), func(t *testing.T) {
			if got := len(tc.proto.Spec()); got != tc.steps {
				t.Errorf("spec steps = %d, want %d", got, tc.steps)
			}
			if got := SpecTotal(tc.proto.Spec()); got != tc.bytes {
				t.Errorf("spec total = %d B, want %d B", got, tc.bytes)
			}
			// And the dynamic run agrees.
			a, b := newPair(t, 3)
			res, err := tc.proto.Run(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps() != tc.steps {
				t.Errorf("run steps = %d, want %d", res.Steps(), tc.steps)
			}
			if res.TotalBytes() != tc.bytes {
				t.Errorf("run total = %d B, want %d B", res.TotalBytes(), tc.bytes)
			}
		})
	}
}

func TestSTSEphemeralKeys(t *testing.T) {
	// DKD property: two runs under the same certificates derive
	// different session keys.
	a, b := newPair(t, 4)
	p := NewSTS(OptNone)
	r1, err := p.Run(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(a, b)
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := r1.SessionKey()
	k2, _ := r2.SessionKey()
	if bytes.Equal(k1, k2) {
		t.Fatal("STS derived the same key across sessions (not ephemeral)")
	}
}

func TestStaticProtocolsKeyBehaviour(t *testing.T) {
	// SKD protocols with nonce-diversified KDF salts still change the
	// displayed key per session, but the underlying premaster is
	// constant — the security package proves the distinction. Here we
	// pin the classification flags.
	for _, p := range Protocols() {
		isSTS := p.Dynamic()
		switch p.(type) {
		case *STS:
			if !isSTS {
				t.Errorf("%s must be dynamic", p.Name())
			}
		default:
			if isSTS {
				t.Errorf("%s must be static", p.Name())
			}
		}
	}
}

func TestSTSOptimizationVariantsSameData(t *testing.T) {
	// §IV-C: "The sent data is identical to the original protocol,
	// but the message and content order vary slightly."
	totals := map[string]int{}
	for _, opt := range []STSOptimization{OptNone, OptI, OptII} {
		a, b := newPair(t, 5)
		res, err := NewSTS(opt).Run(a, b)
		if err != nil {
			t.Fatal(err)
		}
		totals[opt.String()] = res.TotalBytes()
	}
	if totals["none"] != totals["opt. I"] || totals["none"] != totals["opt. II"] {
		t.Errorf("optimization changed wire totals: %v", totals)
	}
}

func TestCrossProtocolKeysDiffer(t *testing.T) {
	// Different protocols on the same credentials must not derive the
	// same key (domain separation through different salts/flows).
	a, b := newPair(t, 6)
	keys := map[string][]byte{}
	for _, p := range []Protocol{NewSECDSA(false), NewSTS(OptNone), NewSCIANC(), NewPORAMB()} {
		res, err := p.Run(a, b)
		if err != nil {
			t.Fatal(err)
		}
		k, _ := res.SessionKey()
		for name, other := range keys {
			if bytes.Equal(k, other) {
				t.Errorf("%s and %s derived identical keys", p.Name(), name)
			}
		}
		keys[p.Name()] = k
	}
}

func TestRunRejectsUnprovisionedParties(t *testing.T) {
	a, b := newPair(t, 7)

	for _, p := range Protocols() {
		if _, err := p.Run(nil, b); err == nil {
			t.Errorf("%s: nil party accepted", p.Name())
		}
		stripped := a.Clone()
		stripped.Cert = nil
		if _, err := p.Run(stripped, b); err == nil {
			t.Errorf("%s: missing certificate accepted", p.Name())
		}
	}

	// Curve mismatch.
	net224, err := NewNetwork(ec.P224(), newDetRand(8))
	if err != nil {
		t.Fatal(err)
	}
	c, err := net224.Provision("carol")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSTS(OptNone).Run(a, c); err == nil {
		t.Error("cross-curve run accepted")
	}

	// PORAMB without pairwise keys.
	noPSK := a.Clone()
	noPSK.PairwiseKey = nil
	if _, err := NewPORAMB().Run(noPSK, b); err == nil {
		t.Error("PORAMB without pairwise key accepted")
	}
}

func TestCrossCANetworksRejectEachOther(t *testing.T) {
	// Parties certified by different CAs must fail mutual
	// authentication: the extracted public keys are wrong, so the
	// STS/S-ECDSA signatures do not verify.
	net1, _ := NewNetwork(ec.P256(), newDetRand(9))
	net2, _ := NewNetwork(ec.P256(), newDetRand(10))
	a, _ := net1.Provision("alice")
	mallory, _ := net2.Provision("bob") // claims to be bob, signed by a rogue CA

	if _, err := NewSTS(OptNone).Run(a, mallory); err == nil {
		t.Error("STS accepted a certificate from a foreign CA")
	}
	if _, err := NewSECDSA(false).Run(a, mallory); err == nil {
		t.Error("S-ECDSA accepted a certificate from a foreign CA")
	}
}

func TestImpersonationWithoutPrivateKeyFails(t *testing.T) {
	// A party presenting bob's certificate but holding a different
	// private key must fail STS authentication (the device-
	// authentication property the paper stresses against [16]).
	net, _ := NewNetwork(ec.P256(), newDetRand(11))
	a, b, err := net.Pair("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	evil, err := net.Provision("mallory")
	if err != nil {
		t.Fatal(err)
	}
	forged := b.Clone()
	forged.Priv = evil.Priv // certificate bob, key mallory
	if _, err := NewSTS(OptNone).Run(a, forged); err == nil {
		t.Error("STS accepted a certificate/key mismatch")
	}
	if _, err := NewSECDSA(false).Run(a, forged); err == nil {
		t.Error("S-ECDSA accepted a certificate/key mismatch")
	}
}

func TestTraceCoversAllPhases(t *testing.T) {
	// Every protocol must record work in every phase for both parties
	// (the timing model depends on it).
	for _, p := range Protocols() {
		t.Run(p.Name(), func(t *testing.T) {
			a, b := newPair(t, 12)
			res, err := p.Run(a, b)
			if err != nil {
				t.Fatal(err)
			}
			counts := res.Trace.Aggregate()
			for _, role := range []PartyRole{RoleA, RoleB} {
				for _, phase := range Phases() {
					if len(counts.PhaseCounts(role, phase)) == 0 {
						t.Errorf("party %s has no events in %s", role, phase)
					}
				}
			}
		})
	}
}

func TestSTSTraceOpCounts(t *testing.T) {
	// Pin the EC operation counts per party for STS — the quantities
	// the Table I model scales.
	a, b := newPair(t, 13)
	res, err := NewSTS(OptNone).Run(a, b)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Trace.Aggregate()
	for _, role := range []PartyRole{RoleA, RoleB} {
		op1 := counts.PhaseCounts(role, PhaseOp1)
		if op1[PrimECBaseMult] != 1 {
			t.Errorf("%s Op1 base mults = %d, want 1", role, op1[PrimECBaseMult])
		}
		op2 := counts.PhaseCounts(role, PhaseOp2)
		if op2[PrimECPointMult] != 2 { // pubkey reconstruction + premaster
			t.Errorf("%s Op2 point mults = %d, want 2", role, op2[PrimECPointMult])
		}
		op3 := counts.PhaseCounts(role, PhaseOp3)
		if op3[PrimECBaseMult] != 1 { // ECDSA sign
			t.Errorf("%s Op3 base mults = %d, want 1", role, op3[PrimECBaseMult])
		}
		op4 := counts.PhaseCounts(role, PhaseOp4)
		if op4[PrimECCombinedMult] != 1 { // ECDSA verify
			t.Errorf("%s Op4 combined mults = %d, want 1", role, op4[PrimECCombinedMult])
		}
	}
}

func TestSCIANCSingleMultPerSession(t *testing.T) {
	// SCIANC's cached-CA-term agreement must cost exactly one point
	// multiplication per device per session (the Table I speed
	// explanation).
	a, b := newPair(t, 14)
	res, err := NewSCIANC().Run(a, b)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Trace.Aggregate()
	for _, role := range []PartyRole{RoleA, RoleB} {
		total := 0
		for _, phase := range Phases() {
			pc := counts.PhaseCounts(role, phase)
			total += pc[PrimECPointMult] + pc[PrimECBaseMult] + pc[PrimECCombinedMult]
		}
		if total != 1 {
			t.Errorf("%s: %d EC multiplications, want 1", role, total)
		}
	}
}

func TestWireMessageHelpers(t *testing.T) {
	m := WireMessage{From: RoleA, Label: "A1", Field: []Field{
		{"ID", make([]byte, 16)},
		{"XG", make([]byte, 64)},
	}}
	if m.Len() != 80 {
		t.Errorf("Len = %d", m.Len())
	}
	if m.Get("XG") == nil || m.Get("missing") != nil {
		t.Error("Get misbehaves")
	}
	if RoleA.String() != "A" || RoleB.String() != "B" {
		t.Error("role names")
	}
}

func TestResultSessionKeyMismatch(t *testing.T) {
	r := &Result{KeyA: []byte{1}, KeyB: []byte{2}}
	if _, err := r.SessionKey(); err == nil {
		t.Error("mismatched keys accepted")
	}
	empty := &Result{}
	if _, err := empty.SessionKey(); err == nil {
		t.Error("empty keys accepted")
	}
}
