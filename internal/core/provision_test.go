package core

import (
	"fmt"
	"testing"

	"repro/internal/ec"
)

func TestProvisionBatch(t *testing.T) {
	net, err := NewNetwork(ec.P256(), newDetRand(51))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("ecu-%02d", i)
	}
	parties, err := net.ProvisionBatch(names, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parties) != len(names) {
		t.Fatalf("%d parties", len(parties))
	}
	serials := map[uint64]bool{}
	for i, p := range parties {
		if p == nil {
			t.Fatalf("party %d nil", i)
		}
		if p.ID.String() != names[i] {
			t.Errorf("party %d: ID %s, want %s", i, p.ID, names[i])
		}
		if serials[p.Cert.Serial] {
			t.Errorf("serial %d reused", p.Cert.Serial)
		}
		serials[p.Cert.Serial] = true
	}

	// Batch-provisioned parties run the paper's protocols normally.
	res, err := NewSTS(OptNone).Run(parties[0], parties[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.SessionKey(); err != nil {
		t.Fatal(err)
	}
}

func TestProvisionBatchEmpty(t *testing.T) {
	net, err := NewNetwork(ec.P256(), newDetRand(52))
	if err != nil {
		t.Fatal(err)
	}
	parties, err := net.ProvisionBatch(nil, 0)
	if err != nil || len(parties) != 0 {
		t.Fatalf("empty batch: %v, %d parties", err, len(parties))
	}
}
