package core

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"

	"repro/internal/ec"
	"repro/internal/ecdsa"
)

// TestSharedTableCacheDedup: two parties' key caches backed by one
// shared level build a given verifier table exactly once — the second
// party adopts the first's instance.
func TestSharedTableCacheDedup(t *testing.T) {
	stc := NewSharedTableCache()
	kc1 := NewKeyCacheWithShared(stc)
	kc2 := NewKeyCacheWithShared(stc)
	c := ec.P256()
	q := c.ScalarBaseMult(randInt(t))

	p1 := kc1.Verifier(c, q)
	p2 := kc2.Verifier(c, q)
	if p1 != p2 {
		t.Fatal("parties did not converge on one shared table instance")
	}
	if st := kc1.Stats(); st.Misses != 1 || st.SharedHits != 0 {
		t.Fatalf("builder stats = %+v, want 1 miss / 0 shared hits", st)
	}
	if st := kc2.Stats(); st.Misses != 1 || st.SharedHits != 1 {
		t.Fatalf("adopter stats = %+v, want 1 miss / 1 shared hit", st)
	}
	if st := stc.Stats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("shared stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	// Steady state: both serve locally, shared level untouched.
	kc1.Verifier(c, q)
	kc2.Verifier(c, q)
	if st := stc.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("local hits leaked into the shared level: %+v", st)
	}
}

// TestSharedTableCacheConcurrentPublish: racing builders of the same
// fingerprint converge on a single instance.
func TestSharedTableCacheConcurrentPublish(t *testing.T) {
	stc := NewSharedTableCache()
	c := ec.P256()
	q := c.ScalarBaseMult(randInt(t))
	fp := pointFingerprint(c, q)

	results := make([]*ecdsa.PublicKey, 16)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pub := (&ecdsa.PublicKey{Curve: c, Q: q.Clone()}).Precompute()
			results[i] = stc.Publish(fp, pub)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("racing publishers did not converge on one instance")
		}
	}
	if st := stc.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestSharedTableCacheBound: the copy-on-write map resets rather than
// growing without bound.
func TestSharedTableCacheBound(t *testing.T) {
	stc := NewSharedTableCache()
	c := ec.P256()
	pub := (&ecdsa.PublicKey{Curve: c, Q: c.Generator()}).Precompute()
	for i := 0; i < sharedTableMaxEntries+10; i++ {
		var fp [32]byte
		h := sha256.Sum256([]byte(fmt.Sprintf("synthetic-%d", i)))
		copy(fp[:], h[:])
		stc.Publish(fp, pub)
	}
	if st := stc.Stats(); st.Entries > sharedTableMaxEntries+1 {
		t.Fatalf("cache grew past its bound: %d entries", st.Entries)
	}
}

func waveFixture(t *testing.T, n int) (*KeyCache, []*ecdsa.PublicKey, [][]byte, []ecdsa.Signature) {
	t.Helper()
	kc := NewKeyCacheWithShared(NewSharedTableCache())
	c := ec.P256()
	rng := newDetRand(611)
	pubs := make([]*ecdsa.PublicKey, n)
	digests := make([][]byte, n)
	sigs := make([]ecdsa.Signature, n)
	for i := 0; i < n; i++ {
		key, err := ecdsa.GenerateKey(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		d := sha256.Sum256([]byte(fmt.Sprintf("wave msg %d", i)))
		sig, err := key.SignDigest(d[:])
		if err != nil {
			t.Fatal(err)
		}
		pubs[i] = kc.Verifier(c, key.Q)
		digests[i] = d[:]
		sigs[i] = sig
	}
	return kc, pubs, digests, sigs
}

// TestWaveVerifierSerial: a lone verification is a batch of one with
// the plain-Verify verdict, and the counters account it.
func TestWaveVerifierSerial(t *testing.T) {
	kc, pubs, digests, sigs := waveFixture(t, 2)
	if !kc.verifyWave(pubs[0], digests[0], sigs[0]) {
		t.Fatal("valid signature rejected")
	}
	if kc.verifyWave(pubs[0], digests[0], sigs[1]) {
		t.Fatal("mismatched signature accepted")
	}
	st := kc.Stats()
	if st.WaveBatches != 2 || st.WaveItems != 2 {
		t.Fatalf("wave stats = %+v, want 2 batches / 2 items", st)
	}
}

// TestWaveVerifierConcurrent: many goroutines verifying through one
// cache all get their individual verdicts (mixed valid and corrupted),
// and the counters reconcile: items == verifications, batches ≤ items.
func TestWaveVerifierConcurrent(t *testing.T) {
	const n = 8
	const rounds = 25
	kc, pubs, digests, sigs := waveFixture(t, n)

	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Even rounds: valid pair. Odd rounds: signature from the
				// next key — must fail.
				if r%2 == 0 {
					if !kc.verifyWave(pubs[g], digests[g], sigs[g]) {
						t.Errorf("goroutine %d round %d: valid rejected", g, r)
						return
					}
				} else {
					if kc.verifyWave(pubs[g], digests[g], sigs[(g+1)%n]) {
						t.Errorf("goroutine %d round %d: invalid accepted", g, r)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := kc.Stats()
	if st.WaveItems != n*rounds {
		t.Fatalf("WaveItems = %d, want %d", st.WaveItems, n*rounds)
	}
	if st.WaveBatches == 0 || st.WaveBatches > st.WaveItems {
		t.Fatalf("WaveBatches = %d out of range (items %d)", st.WaveBatches, st.WaveItems)
	}
}

// TestHandshakeWaveAccounting: a real STS handshake routes its
// signature verifications through the wave batcher.
func TestHandshakeWaveAccounting(t *testing.T) {
	_, a, b := newTestPair(t, 612)
	if _, err := NewSTS(OptII).Run(a, b); err != nil {
		t.Fatal(err)
	}
	if st := a.KeyCache().Stats(); st.WaveItems == 0 {
		t.Fatalf("initiator verifications bypassed the wave batcher: %+v", st)
	}
	if st := b.KeyCache().Stats(); st.WaveItems == 0 {
		t.Fatalf("responder verifications bypassed the wave batcher: %+v", st)
	}
}
