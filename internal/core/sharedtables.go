package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/ecdsa"
)

// SharedTableCache is the fleet-global precomputed-table store. The
// per-Party KeyCache deduplicates table builds across one party's
// handshakes; this cache deduplicates them across parties. The keys
// that matter are fleet-static — the CA key and the gateway/initiator
// key every responder of an EstablishAll wave verifies against — so
// without sharing, N parties build N identical odd-multiples tables.
// With it, one party builds and everyone else adopts.
//
// Reads are lock-free: the table map is immutable and swapped whole
// through an atomic pointer (copy-on-write), so the steady state —
// every lookup a hit — takes no lock at all. Writers copy under a
// mutex. The cache holds derived public data only and is safe for
// concurrent use from any number of parties.
type SharedTableCache struct {
	tables atomic.Pointer[map[[32]byte]*ecdsa.PublicKey]
	mu     sync.Mutex // serializes copy-on-write inserts

	hits   atomic.Uint64
	misses atomic.Uint64
}

// sharedTableMaxEntries bounds the map; beyond it the map is reset
// (same simplest-possible eviction as KeyCache). Tables worth sharing
// are the handful of fleet-static keys, so the bound exists only to
// cap pathological churn.
const sharedTableMaxEntries = 1024

// NewSharedTableCache returns an empty cache. Production code uses the
// process-global SharedTables; private instances serve tests.
func NewSharedTableCache() *SharedTableCache {
	s := &SharedTableCache{}
	m := make(map[[32]byte]*ecdsa.PublicKey)
	s.tables.Store(&m)
	return s
}

// sharedTables is the process-global instance every KeyCache consults.
var sharedTables = NewSharedTableCache()

// SharedTables returns the process-global shared table cache.
func SharedTables() *SharedTableCache { return sharedTables }

// Lookup returns the cached verifier for fingerprint fp, lock-free.
func (s *SharedTableCache) Lookup(fp [32]byte) (*ecdsa.PublicKey, bool) {
	pub, ok := (*s.tables.Load())[fp]
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return pub, ok
}

// Publish inserts a freshly built verifier and returns the canonical
// instance: if another party published the same fingerprint first, its
// table wins and the caller adopts it, so concurrent builders converge
// on one shared table exactly like KeyCache fillers do.
func (s *SharedTableCache) Publish(fp [32]byte, pub *ecdsa.PublicKey) *ecdsa.PublicKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.tables.Load()
	if prev, ok := old[fp]; ok {
		return prev
	}
	next := make(map[[32]byte]*ecdsa.PublicKey, len(old)+1)
	if len(old) < sharedTableMaxEntries {
		for k, v := range old {
			next[k] = v
		}
	}
	next[fp] = pub
	s.tables.Store(&next)
	return pub
}

// SharedTableStats is a point-in-time view of fleet-wide sharing.
type SharedTableStats struct {
	Hits    int // lookups served from the shared map
	Misses  int // lookups that fell through to a local build
	Entries int // tables currently shared
}

// Stats returns the hit/miss counters and current size.
func (s *SharedTableCache) Stats() SharedTableStats {
	return SharedTableStats{
		Hits:    int(s.hits.Load()),
		Misses:  int(s.misses.Load()),
		Entries: len(*s.tables.Load()),
	}
}
