package core

import (
	"math/big"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ec"
	"repro/internal/ecqv"
)

func newTestPair(t *testing.T, seed int64) (*Network, *Party, *Party) {
	t.Helper()
	net, err := NewNetwork(ec.P256(), newDetRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := net.Pair("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	return net, a, b
}

func TestKeyCacheExtract(t *testing.T) {
	_, a, b := newTestPair(t, 400)
	kc := NewKeyCache()

	want, err := ecqv.ExtractPublicKey(b.Cert, a.CAPub)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := kc.ExtractPublicKey(b.Cert, a.CAPub)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("cached extraction diverged on call %d", i)
		}
	}
	if st := kc.Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss / 2 hits", st)
	}

	// A different trust anchor must not alias the cached entry.
	otherCA := a.Curve.ScalarBaseMult(randInt(t))
	if _, err := kc.ExtractPublicKey(b.Cert, otherCA); err != nil {
		t.Fatal(err)
	}
	if st := kc.Stats(); st.Misses != 2 {
		t.Fatalf("different CA key served from cache: %+v", st)
	}
}

func randInt(t *testing.T) *big.Int {
	t.Helper()
	k, err := ec.P256().RandomScalar(newDetRand(77))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyCacheVerifierShared(t *testing.T) {
	_, a, b := newTestPair(t, 401)
	kc := NewKeyCache()
	q, err := ecqv.ExtractPublicKey(b.Cert, a.CAPub)
	if err != nil {
		t.Fatal(err)
	}
	p1 := kc.Verifier(a.Curve, q)
	p2 := kc.Verifier(a.Curve, q)
	if p1 != p2 {
		t.Fatal("verifier not shared across lookups")
	}
	if !p1.Q.Equal(q) {
		t.Fatal("verifier wraps the wrong point")
	}
}

func TestKeyCacheConcurrent(t *testing.T) {
	_, a, b := newTestPair(t, 402)
	kc := NewKeyCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := kc.ExtractPublicKey(b.Cert, a.CAPub); err != nil {
					t.Error(err)
					return
				}
				kc.Verifier(a.Curve, a.CAPub)
			}
		}()
	}
	wg.Wait()
	st := kc.Stats()
	if st.Hits+st.Misses != 400 {
		t.Fatalf("stats don't add up: %+v", st)
	}
}

// TestPartyCacheAcrossHandshakes proves that repeated protocol runs
// between the same parties hit the per-party cache — the fleet rekey
// steady state — and still agree on session keys.
func TestPartyCacheAcrossHandshakes(t *testing.T) {
	_, a, b := newTestPair(t, 403)
	p := NewSTS(OptII)
	for i := 0; i < 3; i++ {
		res, err := p.Run(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.SessionKey(); err != nil {
			t.Fatal(err)
		}
	}
	if st := a.KeyCache().Stats(); st.Hits == 0 {
		t.Fatalf("initiator cache never hit across repeated handshakes: %+v", st)
	}
	if st := b.KeyCache().Stats(); st.Hits == 0 {
		t.Fatalf("responder cache never hit across repeated handshakes: %+v", st)
	}
}

// TestCacheDoesNotPerturbTrace proves the hardware-model input is
// identical whether the host cache is cold or warm: the modelled
// device always executes the full computation.
func TestCacheDoesNotPerturbTrace(t *testing.T) {
	p := NewSTS(OptNone)
	_, a1, b1 := newTestPair(t, 404)
	cold, err := p.Run(a1, b1)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := p.Run(a1, b1) // same parties: cache warm
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Trace.Events, warm.Trace.Events) {
		t.Fatal("trace event streams differ between cold and warm cache runs")
	}
}
