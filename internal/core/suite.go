package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/ec"
	"repro/internal/ecdsa"
	"repro/internal/ecqv"
	"repro/internal/kdf"
)

// suite executes real cryptographic operations for one party while
// recording primitive events into the run trace. Every protocol
// implementation goes through the suite, so the trace is a faithful
// operation-level account of what the device computed — the input the
// hardware timing model replays.
type suite struct {
	curve *ec.Curve
	m     *meter
	rng   io.Reader
	// cache, when non-nil, memoizes peer key extraction and
	// verification tables across this party's handshakes. The trace is
	// unaffected: the meter records the primitives the modelled device
	// would execute, cache hit or not.
	cache *KeyCache
}

func newSuite(curve *ec.Curve, m *meter, rng io.Reader, cache *KeyCache) *suite {
	if rng == nil {
		rng = rand.Reader
	}
	return &suite{curve: curve, m: m, rng: rng, cache: cache}
}

// enter switches the suite's trace phase.
func (s *suite) enter(p Phase) { s.m.enter(p) }

// ephemeral draws X ∈R [1, n−1] and computes XG = X·G — the request
// operation of equation (2).
func (s *suite) ephemeral() (*big.Int, ec.Point, error) {
	s.m.record(PrimRandScalar, 1)
	x, err := s.curve.RandomScalar(s.rng)
	if err != nil {
		return nil, ec.Point{}, err
	}
	s.m.record(PrimECBaseMult, 1)
	return x, s.curve.ScalarBaseMult(x), nil
}

// nonce draws n random bytes.
func (s *suite) nonce(n int) ([]byte, error) {
	s.m.record(PrimRandBytes, n)
	out := make([]byte, n)
	if _, err := io.ReadFull(s.rng, out); err != nil {
		return nil, fmt.Errorf("core: nonce: %w", err)
	}
	return out, nil
}

// extractPublicKey performs the paper's equation (1):
// Q_X = Hash(Cert_X)·Decode(Cert_X) + Q_CA.
func (s *suite) extractPublicKey(cert *ecqv.Certificate, caPub ec.Point) (ec.Point, error) {
	s.m.record(PrimHashBytes, ecqv.EncodedSize(s.curve))
	s.m.record(PrimECPointDecode, 1) // Decode(Cert): decompress P_U
	s.m.record(PrimECPointMult, 1)
	s.m.record(PrimECPointAdd, 1)
	if s.cache != nil {
		return s.cache.ExtractPublicKey(cert, caPub)
	}
	return ecqv.ExtractPublicKey(cert, caPub)
}

// dh computes a Diffie–Hellman shared point k·Q and returns its
// x-coordinate as the premaster secret (equation (3)).
func (s *suite) dh(k *big.Int, q ec.Point) ([]byte, error) {
	s.m.record(PrimECPointMult, 1)
	p := s.curve.ScalarMult(q, k)
	if p.IsInfinity() {
		return nil, errors.New("core: degenerate DH shared point")
	}
	out := make([]byte, s.curve.ByteLen())
	p.X.FillBytes(out)
	return out, nil
}

// cachedCombinedDH computes the SCIANC-style single-multiplication
// premaster: (k·e)·P + [cached k·Q_CA], where the k·Q_CA term is
// precomputed once per certificate epoch and therefore not charged to
// the session. This is why SCIANC's measured per-session cost in
// Table I is roughly one point multiplication per device.
func (s *suite) cachedCombinedDH(k *big.Int, cert *ecqv.Certificate, cachedKQCA ec.Point) ([]byte, error) {
	s.m.record(PrimHashBytes, ecqv.EncodedSize(s.curve))
	s.m.record(PrimECPointDecode, 1)
	e := cert.HashToScalar()
	ke := new(big.Int).Mul(k, e)
	ke.Mod(ke, s.curve.N)
	s.m.record(PrimECPointMult, 1)
	s.m.record(PrimECPointAdd, 1)
	p := s.curve.Add(s.curve.ScalarMult(cert.PubRecon, ke), cachedKQCA)
	if p.IsInfinity() {
		return nil, errors.New("core: degenerate combined DH point")
	}
	out := make([]byte, s.curve.ByteLen())
	p.X.FillBytes(out)
	return out, nil
}

// deriveSessionKeys runs KS = KDF(KPM, salt) (equation (4)), returning
// the encryption and MAC halves.
func (s *suite) deriveSessionKeys(premaster, salt []byte) (encKey, macKey []byte, err error) {
	s.m.record(PrimKDF, 1)
	return kdf.SessionKeys(premaster, salt)
}

// sign produces the ECDSA authentication signature of Algorithm 1 line
// 2/4: dsign = sign(Prk, msg).
func (s *suite) sign(priv *big.Int, msg []byte) (ecdsa.Signature, error) {
	key, err := ecdsa.NewPrivateKey(s.curve, priv)
	if err != nil {
		return ecdsa.Signature{}, err
	}
	s.m.record(PrimHashBytes, len(msg))
	s.m.record(PrimMACBytes, 4*sha256.Size) // RFC 6979 nonce derivation
	s.m.record(PrimECBaseMult, 1)
	s.m.record(PrimModInverse, 1)
	return key.Sign(msg)
}

// verify checks an ECDSA signature under a reconstructed public key
// (Algorithm 2 line 3). With a cache attached the check rides the
// party's wave batcher: concurrent EstablishAll verifications share
// scalar and field inversions through ecdsa.VerifyBatch, with
// per-item results guaranteed identical to a lone Verify. The meter
// is unaffected either way — it records the primitives the modelled
// device executes, which never batches across peers.
func (s *suite) verify(q ec.Point, msg []byte, sig ecdsa.Signature) bool {
	s.m.record(PrimHashBytes, len(msg))
	s.m.record(PrimModInverse, 1)
	s.m.record(PrimECCombinedMult, 1)
	if s.cache != nil {
		pub := s.cache.Verifier(s.curve, q) // precomputed odd-multiples table
		digest := sha256.Sum256(msg)
		return s.cache.verifyWave(pub, digest[:], sig)
	}
	pub := &ecdsa.PublicKey{Curve: s.curve, Q: q}
	return pub.Verify(msg, sig)
}

// mac computes HMAC-SHA-256 over msg.
func (s *suite) mac(key []byte, parts ...[]byte) []byte {
	m := hmac.New(sha256.New, key)
	n := 0
	for _, p := range parts {
		m.Write(p)
		n += len(p)
	}
	s.m.record(PrimMACBytes, n)
	return m.Sum(nil)
}

// macVerify recomputes and compares a tag.
func (s *suite) macVerify(key, tag []byte, parts ...[]byte) bool {
	want := s.mac(key, parts...)
	return hmac.Equal(want, tag)
}

// hash computes SHA-256.
func (s *suite) hash(parts ...[]byte) []byte {
	h := sha256.New()
	n := 0
	for _, p := range parts {
		h.Write(p)
		n += len(p)
	}
	s.m.record(PrimHashBytes, n)
	return h.Sum(nil)
}

// sealResp implements the size-preserving Resp = encrypt(KS, dsign) of
// Algorithm 1 line 6. AES-128-CTR with a per-direction keystream nonce
// derived from the MAC key keeps |Resp| = |dsign| = 64 bytes — exactly
// the "Resp(64)" that Table II charges. Integrity of the payload is
// provided by the signature inside, not by a tag.
func (s *suite) sealResp(encKey, macKey []byte, direction string, dsign []byte) ([]byte, error) {
	s.m.record(PrimAESBytes, len(dsign))
	stream, err := respStream(encKey, macKey, direction, len(dsign))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(dsign))
	for i := range dsign {
		out[i] = dsign[i] ^ stream[i]
	}
	return out, nil
}

// openResp inverts sealResp (Algorithm 2 line 1).
func (s *suite) openResp(encKey, macKey []byte, direction string, resp []byte) ([]byte, error) {
	return s.sealResp(encKey, macKey, direction, resp) // CTR is an involution
}

// respStream derives the CTR keystream for one direction. The IV is
// bound to the session (via the MAC key, which is fresh per session
// for DKD protocols) and to the direction label, so the two Resp
// messages of a session never share keystream.
func respStream(encKey, macKey []byte, direction string, n int) ([]byte, error) {
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	ivm := hmac.New(sha256.New, macKey)
	ivm.Write([]byte("resp-iv|" + direction))
	iv := ivm.Sum(nil)[:aes.BlockSize]
	stream := make([]byte, n)
	cipher.NewCTR(block, iv).XORKeyStream(stream, stream)
	return stream, nil
}

// ctrEncrypt is the generic size-preserving transport encryption used
// by finish messages.
func (s *suite) ctrEncrypt(encKey, macKey []byte, label string, data []byte) ([]byte, error) {
	s.m.record(PrimAESBytes, len(data))
	stream, err := respStream(encKey, macKey, label, len(data))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	for i := range data {
		out[i] = data[i] ^ stream[i]
	}
	return out, nil
}
