package core

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/ec"
	"repro/internal/ecdsa"
	"repro/internal/ecqv"
)

// KeyCache memoizes the per-peer public-key work of repeated session
// establishments: the ECQV public-key extraction (one ScalarMult + Add
// per certificate) and the precomputed odd-multiples table that ECDSA
// verification multiplies against. A device that re-keys against the
// same static peer — the fleet steady state — pays the extraction and
// the table build once per peer instead of once per handshake.
//
// The cache holds derived public data only (no secrets) and is safe
// for concurrent use. Entries are keyed by the certificate's
// fingerprint together with the CA key, so a re-issued certificate or
// a different trust anchor never aliases a stale entry.
//
// Note the hardware timing model is unaffected: the suite records the
// same primitive counts whether or not the host-side cache hits,
// because the modelled embedded device of the paper performs the full
// computation.
type KeyCache struct {
	mu        sync.RWMutex
	extracted map[[32]byte]ec.Point
	verifiers map[[32]byte]*ecdsa.PublicKey

	// shared is the second cache level for verifier tables: a local
	// miss consults it before building, so fleet-static keys (CA,
	// gateway, wave initiator) are built once per process instead of
	// once per party. Never nil.
	shared *SharedTableCache

	// wave batches this party's concurrently in-flight verifications
	// into ecdsa.VerifyBatch rounds.
	wave waveVerifier

	hits       atomic.Uint64
	misses     atomic.Uint64
	sharedHits atomic.Uint64
}

// keyCacheMaxEntries bounds each map; beyond it the map is reset
// (simplest possible eviction). A gateway talking to a whole fleet
// stays far below the bound; only certificate-churn storms hit it.
const keyCacheMaxEntries = 4096

// NewKeyCache returns an empty cache backed by the process-global
// SharedTables.
func NewKeyCache() *KeyCache { return NewKeyCacheWithShared(sharedTables) }

// NewKeyCacheWithShared returns an empty cache backed by an explicit
// shared table level (tests isolate sharing behaviour this way). A nil
// stc gets a private, empty level.
func NewKeyCacheWithShared(stc *SharedTableCache) *KeyCache {
	if stc == nil {
		stc = NewSharedTableCache()
	}
	return &KeyCache{
		extracted: make(map[[32]byte]ec.Point),
		verifiers: make(map[[32]byte]*ecdsa.PublicKey),
		shared:    stc,
	}
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Hits   int // lookups served from the local cache
	Misses int // lookups that had to fill (from the shared level or a build)

	// SharedHits counts the subset of Misses that adopted a table from
	// the fleet-global SharedTableCache instead of building one.
	SharedHits int

	// WaveBatches/WaveItems account the group-commit verification:
	// WaveItems verifications served through WaveBatches VerifyBatch
	// rounds. WaveItems − WaveBatches is the number of shared-inversion
	// opportunities actually taken.
	WaveBatches int
	WaveItems   int
}

// Stats returns the hit/miss counters.
func (kc *KeyCache) Stats() CacheStats {
	return CacheStats{
		Hits:        int(kc.hits.Load()),
		Misses:      int(kc.misses.Load()),
		SharedHits:  int(kc.sharedHits.Load()),
		WaveBatches: int(kc.wave.batches.Load()),
		WaveItems:   int(kc.wave.items.Load()),
	}
}

// verifyWave routes one verification through the group-commit batcher.
func (kc *KeyCache) verifyWave(pub *ecdsa.PublicKey, digest []byte, sig ecdsa.Signature) bool {
	return kc.wave.verify(pub, digest, sig)
}

// certFingerprint binds a cache key to the exact certificate bytes and
// the CA public key used for extraction.
func certFingerprint(cert *ecqv.Certificate, caPub ec.Point) [32]byte {
	h := sha256.New()
	h.Write(cert.Encode())
	h.Write(cert.Curve.EncodeCompressed(caPub))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// pointFingerprint keys a verifier table by curve and point.
func pointFingerprint(c *ec.Curve, q ec.Point) [32]byte {
	h := sha256.New()
	h.Write([]byte(c.Name))
	h.Write(c.EncodeCompressed(q))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// ExtractPublicKey performs (or recalls) the paper's equation (1):
// Q_U = H(Cert_U)·P_U + Q_CA.
func (kc *KeyCache) ExtractPublicKey(cert *ecqv.Certificate, caPub ec.Point) (ec.Point, error) {
	fp := certFingerprint(cert, caPub)
	kc.mu.RLock()
	q, ok := kc.extracted[fp]
	kc.mu.RUnlock()
	if ok {
		kc.hits.Add(1)
		return q.Clone(), nil
	}
	kc.misses.Add(1)
	q, err := ecqv.ExtractPublicKey(cert, caPub)
	if err != nil {
		return ec.Point{}, err
	}
	kc.mu.Lock()
	if len(kc.extracted) >= keyCacheMaxEntries {
		kc.extracted = make(map[[32]byte]ec.Point)
	}
	kc.extracted[fp] = q.Clone()
	kc.mu.Unlock()
	return q, nil
}

// Verifier returns an ECDSA verification key for q with its
// odd-multiples table precomputed, building and caching it on first
// use. The returned key is shared and must be treated as immutable.
func (kc *KeyCache) Verifier(c *ec.Curve, q ec.Point) *ecdsa.PublicKey {
	fp := pointFingerprint(c, q)
	kc.mu.RLock()
	pub, ok := kc.verifiers[fp]
	kc.mu.RUnlock()
	if ok {
		kc.hits.Add(1)
		return pub
	}
	kc.misses.Add(1)
	// Second level: another party may have built this table already
	// (the CA and wave-initiator keys are identical fleet-wide).
	if shared, ok := kc.shared.Lookup(fp); ok {
		kc.sharedHits.Add(1)
		pub = shared
	} else {
		pub = (&ecdsa.PublicKey{Curve: c, Q: q.Clone()}).Precompute()
		// Publish for the rest of the fleet; adopt the winner if
		// another builder got there first.
		pub = kc.shared.Publish(fp, pub)
	}
	kc.mu.Lock()
	if len(kc.verifiers) >= keyCacheMaxEntries {
		kc.verifiers = make(map[[32]byte]*ecdsa.PublicKey)
	}
	// Keep the first stored instance so concurrent fillers converge on
	// one shared table.
	if prev, ok := kc.verifiers[fp]; ok {
		pub = prev
	} else {
		kc.verifiers[fp] = pub
	}
	kc.mu.Unlock()
	return pub
}
