package core

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/ec"
	"repro/internal/ecdsa"
	"repro/internal/ecqv"
)

// Message-driven STS engine. Unlike STS.Run (which executes both
// parties in-process for experiments), the Initiator and Responder
// here are incremental state machines that consume and produce wire
// bytes — the form a deployment embeds behind a real network stack.
// The live CAN-FD integration tests drive these over the full
// canbus/cantp/transport substrate.

// HandshakeError wraps protocol violations detected by the engine.
var (
	// ErrHandshakeState is returned when a message arrives in the
	// wrong state.
	ErrHandshakeState = errors.New("core: unexpected handshake state")
	// ErrHandshakeAuth is returned when peer authentication fails;
	// the handshake must be abandoned.
	ErrHandshakeAuth = errors.New("core: handshake authentication failed")
)

// engineCommon holds the state shared by both roles.
type engineCommon struct {
	party *Party
	opt   STSOptimization
	trace *Trace
	suite *suite

	x      *big.Int // own ephemeral scalar
	xg     ec.Point // own ephemeral point
	peerXG ec.Point
	peerID ecqv.ID
	encKey []byte
	macKey []byte
	done   bool
}

// SessionKey returns the derived key block (enc ‖ mac) once the
// handshake has completed.
func (e *engineCommon) SessionKey() ([]byte, error) {
	if !e.done {
		return nil, errors.New("core: handshake not complete")
	}
	return append(append([]byte(nil), e.encKey...), e.macKey...), nil
}

// Trace returns the primitive-level execution record (own side only).
func (e *engineCommon) Trace() *Trace { return e.trace }

func newEngineCommon(party *Party, role PartyRole, opt STSOptimization) (*engineCommon, error) {
	if party == nil || party.Cert == nil || party.Priv == nil {
		return nil, errors.New("core: engine party not provisioned")
	}
	trace := &Trace{}
	return &engineCommon{
		party: party,
		opt:   opt,
		trace: trace,
		suite: newSuite(party.Curve, trace.meterFor(role), party.Rand, party.KeyCache()),
	}, nil
}

// deriveKeys computes the session keys from the premaster and the two
// ephemeral points in initiator-first salt order.
func (e *engineCommon) deriveKeys(pm []byte, xgA, xgB ec.Point) error {
	curve := e.party.Curve
	salt := append(encodePointRaw(curve, xgA), encodePointRaw(curve, xgB)...)
	enc, mac, err := e.suite.deriveSessionKeys(pm, salt)
	if err != nil {
		return err
	}
	e.encKey, e.macKey = enc, mac
	return nil
}

// signResp builds Resp = encrypt(KS, sign(Prk, first ‖ second)).
func (e *engineCommon) signResp(direction string, first, second ec.Point) ([]byte, error) {
	curve := e.party.Curve
	auth := append(encodePointRaw(curve, first), encodePointRaw(curve, second)...)
	dsign, err := e.suite.sign(e.party.Priv, auth)
	if err != nil {
		return nil, err
	}
	return e.suite.sealResp(e.encKey, e.macKey, direction, dsign.EncodeRaw(curve))
}

// verifyResp checks a peer Resp under an extracted public key.
func (e *engineCommon) verifyResp(direction string, resp []byte, q ec.Point, first, second ec.Point) error {
	curve := e.party.Curve
	e.suite.m.record(PrimAESBytes, len(resp))
	raw, err := e.suite.openResp(e.encKey, e.macKey, direction, resp)
	if err != nil {
		return err
	}
	sig, err := ecdsa.DecodeRaw(curve, raw)
	if err != nil {
		return fmt.Errorf("%w: response garbled", ErrHandshakeAuth)
	}
	auth := append(encodePointRaw(curve, first), encodePointRaw(curve, second)...)
	if !e.suite.verify(q, auth, sig) {
		return ErrHandshakeAuth
	}
	return nil
}

// extractPeer validates a peer certificate and reconstructs its key.
func (e *engineCommon) extractPeer(certBytes []byte, claimedID ecqv.ID) (ec.Point, error) {
	cert, err := ecqv.Decode(certBytes)
	if err != nil {
		return ec.Point{}, fmt.Errorf("%w: %v", ErrHandshakeAuth, err)
	}
	if err := checkCertificate(cert, claimedID); err != nil {
		return ec.Point{}, fmt.Errorf("%w: %v", ErrHandshakeAuth, err)
	}
	q, err := e.suite.extractPublicKey(cert, e.party.CAPub)
	if err != nil {
		return ec.Point{}, fmt.Errorf("%w: %v", ErrHandshakeAuth, err)
	}
	return q, nil
}

// Initiator is the A side of a live STS handshake.
type Initiator struct {
	engineCommon
	state int // 0 = new, 1 = sent A1, 2 = sent A2 (awaiting ACK), 3 = done
}

// NewInitiator builds the A-side state machine.
func NewInitiator(party *Party, opt STSOptimization) (*Initiator, error) {
	c, err := newEngineCommon(party, RoleA, opt)
	if err != nil {
		return nil, err
	}
	return &Initiator{engineCommon: *c}, nil
}

// Start emits A1.
func (i *Initiator) Start() ([]byte, error) {
	if i.state != 0 {
		return nil, ErrHandshakeState
	}
	i.suite.enter(PhaseOp1)
	x, xg, err := i.suite.ephemeral()
	if err != nil {
		return nil, err
	}
	i.x, i.xg = x, xg

	msg := WireMessage{From: RoleA, Label: "A1"}
	if i.opt == OptNone {
		msg.Field = []Field{
			{"ID", i.party.ID[:]},
			{"XG", encodePointRaw(i.party.Curve, xg)},
		}
	} else {
		msg.Field = []Field{
			{"ID", i.party.ID[:]},
			{"Cert", i.party.Cert.Encode()},
			{"XG", encodePointRaw(i.party.Curve, xg)},
		}
	}
	i.state = 1
	return EncodeSTSMessage(msg)
}

// Handle consumes a peer message and returns the reply (nil when no
// reply is due). done reports handshake completion.
func (i *Initiator) Handle(data []byte) (reply []byte, done bool, err error) {
	curve := i.party.Curve
	msg, err := DecodeSTSMessage(curve, i.opt, data)
	if err != nil {
		return nil, false, err
	}
	switch {
	case i.state == 1 && msg.Label == "B1":
		peerXG, err := decodePointRaw(curve, msg.Get("XG"))
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrHandshakeAuth, err)
		}
		i.peerXG = peerXG
		copy(i.peerID[:], msg.Get("ID"))

		i.suite.enter(PhaseOp2PubKey)
		qB, err := i.extractPeer(msg.Get("Cert"), i.peerID)
		if err != nil {
			return nil, false, err
		}
		i.suite.enter(PhaseOp2Premaster)
		pm, err := i.suite.dh(i.x, peerXG)
		if err != nil {
			return nil, false, err
		}
		if err := i.deriveKeys(pm, i.xg, peerXG); err != nil {
			return nil, false, err
		}

		i.suite.enter(PhaseOp4)
		if err := i.verifyResp("B->A", msg.Get("Resp"), qB, peerXG, i.xg); err != nil {
			return nil, false, err
		}

		i.suite.enter(PhaseOp3)
		resp, err := i.signResp("A->B", i.xg, peerXG)
		if err != nil {
			return nil, false, err
		}
		out := WireMessage{From: RoleA, Label: "A2"}
		if i.opt == OptNone {
			out.Field = []Field{{"Cert", i.party.Cert.Encode()}, {"Resp", resp}}
		} else {
			out.Field = []Field{{"Resp", resp}}
		}
		i.state = 2
		enc, err := EncodeSTSMessage(out)
		return enc, false, err

	case i.state == 2 && msg.Label == "B2":
		i.state = 3
		i.done = true
		return nil, true, nil
	}
	return nil, false, fmt.Errorf("%w: %s in state %d", ErrHandshakeState, msg.Label, i.state)
}

// Responder is the B side of a live STS handshake.
type Responder struct {
	engineCommon
	state int // 0 = new, 1 = sent B1 (awaiting A2), 2 = done
	qA    ecPointHolder
}

// NewResponder builds the B-side state machine.
func NewResponder(party *Party, opt STSOptimization) (*Responder, error) {
	c, err := newEngineCommon(party, RoleB, opt)
	if err != nil {
		return nil, err
	}
	return &Responder{engineCommon: *c}, nil
}

// Handle consumes a peer message and returns the reply. done reports
// handshake completion (after emitting the ACK).
func (r *Responder) Handle(data []byte) (reply []byte, done bool, err error) {
	curve := r.party.Curve
	msg, err := DecodeSTSMessage(curve, r.opt, data)
	if err != nil {
		return nil, false, err
	}
	switch {
	case r.state == 0 && msg.Label == "A1":
		peerXG, err := decodePointRaw(curve, msg.Get("XG"))
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrHandshakeAuth, err)
		}
		r.peerXG = peerXG
		copy(r.peerID[:], msg.Get("ID"))

		r.suite.enter(PhaseOp1)
		x, xg, err := r.suite.ephemeral()
		if err != nil {
			return nil, false, err
		}
		r.x, r.xg = x, xg

		r.suite.enter(PhaseOp2Premaster)
		pm, err := r.suite.dh(x, peerXG)
		if err != nil {
			return nil, false, err
		}
		if err := r.deriveKeys(pm, peerXG, xg); err != nil {
			return nil, false, err
		}
		if r.opt != OptNone {
			r.suite.enter(PhaseOp2PubKey)
			q, err := r.extractPeer(msg.Get("Cert"), r.peerID)
			if err != nil {
				return nil, false, err
			}
			r.qA.set(q)
		}

		r.suite.enter(PhaseOp3)
		resp, err := r.signResp("B->A", xg, peerXG)
		if err != nil {
			return nil, false, err
		}
		out := WireMessage{From: RoleB, Label: "B1", Field: []Field{
			{"ID", r.party.ID[:]},
			{"Cert", r.party.Cert.Encode()},
			{"XG", encodePointRaw(curve, xg)},
			{"Resp", resp},
		}}
		r.state = 1
		enc, err := EncodeSTSMessage(out)
		return enc, false, err

	case r.state == 1 && msg.Label == "A2":
		if !r.qA.ok {
			r.suite.enter(PhaseOp2PubKey)
			q, err := r.extractPeer(msg.Get("Cert"), r.peerID)
			if err != nil {
				return nil, false, err
			}
			r.qA.set(q)
		}
		r.suite.enter(PhaseOp4)
		if err := r.verifyResp("A->B", msg.Get("Resp"), r.qA.point, r.peerXG, r.xg); err != nil {
			return nil, false, err
		}
		out := WireMessage{From: RoleB, Label: "B2", Field: []Field{{"ACK", []byte{0x06}}}}
		r.state = 2
		r.done = true
		enc, err := EncodeSTSMessage(out)
		return enc, true, err
	}
	return nil, false, fmt.Errorf("%w: %s in state %d", ErrHandshakeState, msg.Label, r.state)
}
