package core

import (
	"errors"
	"fmt"

	"repro/internal/ecdsa"
	"repro/internal/ecqv"
)

// SECDSA is the static ECDSA key derivation of Basic et al. [5] — the
// paper's primary comparison baseline. Authentication is mutual ECDSA
// over exchanged nonces (verified against ECQV-reconstructed keys),
// but the session secret is the *static* Diffie–Hellman product of the
// long-term certificate keys (§II-A):
//
//	Sk = Prk_A · Puk_B = Prk_B · Puk_A
//
// The nonces only diversify the KDF salt; because they travel in the
// clear, compromise of either long-term key re-derives every session
// key from a recorded transcript — the forward-secrecy gap the paper's
// STS design closes.
type SECDSA struct {
	// ext enables the extended variant: authenticated finished
	// messages appended to the handshake, after the finished-message
	// handling of Porambage et al. [3].
	ext bool
}

// NewSECDSA returns the S-ECDSA protocol; ext selects the extended
// finished-message variant ("S-ECDSA (ext.)" in Table I).
func NewSECDSA(ext bool) *SECDSA { return &SECDSA{ext: ext} }

// Name implements Protocol.
func (p *SECDSA) Name() string {
	if p.ext {
		return "S-ECDSA (ext.)"
	}
	return "S-ECDSA"
}

// Dynamic implements Protocol: S-ECDSA is a static KD.
func (p *SECDSA) Dynamic() bool { return false }

// finSize is the finished-message size of the extended variant
// (Table II: "Fin(96)"): fresh nonce (32) ‖ transcript MAC (32) ‖
// key-confirmation MAC (32).
const finSize = 96

// Spec implements Protocol with the Table II layout.
func (p *SECDSA) Spec() []StepSpec {
	spec := []StepSpec{
		{Label: "A1", Fields: []FieldSpec{{"ID", ecqv.IDSize}, {"Nonce", nonceSize}}},
		{Label: "B1", Fields: []FieldSpec{{"ID", ecqv.IDSize}, {"Cert", 101}, {"Sign", sigSize}, {"Nonce", nonceSize}}},
		{Label: "A2", Fields: []FieldSpec{{"Cert", 101}, {"Sign", sigSize}}},
	}
	if p.ext {
		spec = append(spec,
			StepSpec{Label: "B2", Fields: []FieldSpec{{"ACK", ackSize}, {"Fin", finSize}}},
			StepSpec{Label: "A3", Fields: []FieldSpec{{"Fin", finSize}}},
		)
	} else {
		spec = append(spec, StepSpec{Label: "B2", Fields: []FieldSpec{{"ACK", ackSize}}})
	}
	return spec
}

// Run implements Protocol. Message flow (Table II):
//
//	A → B : ID_A, Nonce_A
//	B → A : ID_B, Cert_B, Sign_B, Nonce_B
//	A → B : Cert_A, Sign_A
//	B → A : ACK            (+ Fin_B when extended)
//	A → B : Fin_A          (extended only)
func (p *SECDSA) Run(a, b *Party) (*Result, error) {
	if err := checkParties(a, b, true, false); err != nil {
		return nil, err
	}
	curve := a.Curve
	trace := &Trace{}
	sa := newSuite(curve, trace.meterFor(RoleA), a.Rand, a.KeyCache())
	sb := newSuite(curve, trace.meterFor(RoleB), b.Rand, b.KeyCache())
	res := &Result{Protocol: p.Name(), Trace: trace}

	// --- A, Op1: session nonce.
	sa.enter(PhaseOp1)
	nonceA, err := sa.nonce(nonceSize)
	if err != nil {
		return nil, err
	}
	a1 := WireMessage{From: RoleA, Label: "A1", Field: []Field{
		{"ID", a.ID[:]},
		{"Nonce", nonceA},
	}}
	res.Transcript = append(res.Transcript, a1)

	// --- B processes A1: nonce, then sign both nonces.
	sb.enter(PhaseOp1)
	nonceB, err := sb.nonce(nonceSize)
	if err != nil {
		return nil, err
	}
	sb.enter(PhaseOp3)
	authB := append(append([]byte(nil), nonceB...), nonceA...)
	signB, err := sb.sign(b.Priv, authB)
	if err != nil {
		return nil, fmt.Errorf("s-ecdsa: B sign: %w", err)
	}
	b1 := WireMessage{From: RoleB, Label: "B1", Field: []Field{
		{"ID", b.ID[:]},
		{"Cert", b.Cert.Encode()},
		{"Sign", signB.EncodeRaw(curve)},
		{"Nonce", nonceB},
	}}
	res.Transcript = append(res.Transcript, b1)

	// --- A processes B1: Op2 (extract Q_B + static DH + KDF), Op4
	// (verify Sign_B), Op3 (sign).
	certB, err := ecqv.Decode(b1.Get("Cert"))
	if err != nil {
		return nil, fmt.Errorf("s-ecdsa: A: peer certificate: %w", err)
	}
	if err := checkCertificate(certB, b.ID); err != nil {
		return nil, fmt.Errorf("s-ecdsa: A: %w", err)
	}
	sa.enter(PhaseOp2)
	qB, err := sa.extractPublicKey(certB, a.CAPub)
	if err != nil {
		return nil, fmt.Errorf("s-ecdsa: A: extract Q_B: %w", err)
	}
	// Static premaster: Sk = Prk_A · Q_B. The session key is derived
	// from certificate material only — the nonces authenticate the
	// exchange but do NOT diversify the key. This is precisely the
	// static-KD behaviour the paper critiques: "These keys would,
	// hence, only be changed by the change of the certificates" (§I).
	pmA, err := sa.dh(a.Priv, qB)
	if err != nil {
		return nil, fmt.Errorf("s-ecdsa: A premaster: %w", err)
	}
	salt := sECDSASalt(a.ID, b.ID)
	encA, macA, err := sa.deriveSessionKeys(pmA, salt)
	if err != nil {
		return nil, err
	}

	sa.enter(PhaseOp4)
	sigB, err := ecdsa.DecodeRaw(curve, b1.Get("Sign"))
	if err != nil {
		return nil, fmt.Errorf("s-ecdsa: A: responder signature: %w", err)
	}
	wantAuthB := append(append([]byte(nil), b1.Get("Nonce")...), nonceA...)
	if !sa.verify(qB, wantAuthB, sigB) {
		return nil, errors.New("s-ecdsa: A: responder authentication failed")
	}

	sa.enter(PhaseOp3)
	authA := append(append([]byte(nil), nonceA...), nonceB...)
	signA, err := sa.sign(a.Priv, authA)
	if err != nil {
		return nil, fmt.Errorf("s-ecdsa: A sign: %w", err)
	}
	a2 := WireMessage{From: RoleA, Label: "A2", Field: []Field{
		{"Cert", a.Cert.Encode()},
		{"Sign", signA.EncodeRaw(curve)},
	}}
	res.Transcript = append(res.Transcript, a2)

	// --- B processes A2: Op2 (extract Q_A + static DH + KDF), Op4.
	certA, err := ecqv.Decode(a2.Get("Cert"))
	if err != nil {
		return nil, fmt.Errorf("s-ecdsa: B: peer certificate: %w", err)
	}
	if err := checkCertificate(certA, a.ID); err != nil {
		return nil, fmt.Errorf("s-ecdsa: B: %w", err)
	}
	sb.enter(PhaseOp2)
	qA, err := sb.extractPublicKey(certA, b.CAPub)
	if err != nil {
		return nil, fmt.Errorf("s-ecdsa: B: extract Q_A: %w", err)
	}
	pmB, err := sb.dh(b.Priv, qA)
	if err != nil {
		return nil, fmt.Errorf("s-ecdsa: B premaster: %w", err)
	}
	encB, macB, err := sb.deriveSessionKeys(pmB, salt)
	if err != nil {
		return nil, err
	}

	sb.enter(PhaseOp4)
	sigA, err := ecdsa.DecodeRaw(curve, a2.Get("Sign"))
	if err != nil {
		return nil, fmt.Errorf("s-ecdsa: B: initiator signature: %w", err)
	}
	if !sb.verify(qA, authA, sigA) {
		return nil, errors.New("s-ecdsa: B: initiator authentication failed")
	}

	if p.ext {
		// Extended finished messages: each side proves key possession
		// and binds the transcript, modeled after the finished-message
		// handling of Porambage et al. [3].
		transcriptHash := sb.hash(a1.Encode(), b1.Encode(), a2.Encode())
		finB, err := buildFinished(sb, encB, macB, "B", transcriptHash)
		if err != nil {
			return nil, err
		}
		b2 := WireMessage{From: RoleB, Label: "B2", Field: []Field{
			{"ACK", []byte{0x06}},
			{"Fin", finB},
		}}
		res.Transcript = append(res.Transcript, b2)

		sa.enter(PhaseOp4)
		transcriptHashA := sa.hash(a1.Encode(), b1.Encode(), a2.Encode())
		if err := checkFinished(sa, encA, macA, "B", transcriptHashA, b2.Get("Fin")); err != nil {
			return nil, fmt.Errorf("s-ecdsa: A: %w", err)
		}
		finA, err := buildFinished(sa, encA, macA, "A", transcriptHashA)
		if err != nil {
			return nil, err
		}
		a3 := WireMessage{From: RoleA, Label: "A3", Field: []Field{{"Fin", finA}}}
		res.Transcript = append(res.Transcript, a3)

		sb.enter(PhaseOp4)
		if err := checkFinished(sb, encB, macB, "A", transcriptHash, a3.Get("Fin")); err != nil {
			return nil, fmt.Errorf("s-ecdsa: B: %w", err)
		}
	} else {
		b2 := WireMessage{From: RoleB, Label: "B2", Field: []Field{{"ACK", []byte{0x06}}}}
		res.Transcript = append(res.Transcript, b2)
	}

	res.KeyA = append(append([]byte(nil), encA...), macA...)
	res.KeyB = append(append([]byte(nil), encB...), macB...)
	return res, nil
}

// Encode flattens a wire message for transcript hashing.
func (m WireMessage) Encode() []byte {
	out := []byte(m.Label)
	for _, f := range m.Field {
		out = append(out, f.Bytes...)
	}
	return out
}

// sECDSASalt is the static (session-independent) KDF salt of S-ECDSA:
// a protocol label and the two party identities. Both orderings of a
// pair derive the same key, and repeated sessions under the same
// certificates repeat the key — the paper's Table III "key data reuse"
// weakness.
func sECDSASalt(idA, idB ecqv.ID) []byte {
	out := []byte("s-ecdsa-static|")
	out = append(out, idA[:]...)
	out = append(out, idB[:]...)
	return out
}

// buildFinished creates a 96-byte finished message:
// nonce(32) ‖ MAC(macKey, "fin"‖role‖transcript‖nonce)(32) ‖
// MAC(macKey, "confirm"‖role‖nonce)(32).
func buildFinished(s *suite, encKey, macKey []byte, role string, transcriptHash []byte) ([]byte, error) {
	n, err := s.nonce(nonceSize)
	if err != nil {
		return nil, err
	}
	m1 := s.mac(macKey, []byte("fin|"+role), transcriptHash, n)
	m2 := s.mac(macKey, []byte("confirm|"+role), n)
	out := make([]byte, 0, finSize)
	out = append(out, n...)
	out = append(out, m1...)
	out = append(out, m2...)
	_ = encKey
	return out, nil
}

// checkFinished verifies a peer's finished message.
func checkFinished(s *suite, encKey, macKey []byte, peerRole string, transcriptHash, fin []byte) error {
	if len(fin) != finSize {
		return fmt.Errorf("finished message length %d, want %d", len(fin), finSize)
	}
	n := fin[:32]
	if !s.macVerify(macKey, fin[32:64], []byte("fin|"+peerRole), transcriptHash, n) {
		return errors.New("finished transcript MAC invalid")
	}
	if !s.macVerify(macKey, fin[64:96], []byte("confirm|"+peerRole), n) {
		return errors.New("finished confirmation MAC invalid")
	}
	_ = encKey
	return nil
}
