// Package core implements the paper's contribution and its baselines:
// key-derivation (KD) and session-establishment protocols for ECQV
// implicit-certificate architectures.
//
// Four protocol families are provided, matching §V-A of the paper:
//
//   - STS — the paper's dynamic key derivation (DKD): Station-to-
//     Station ephemeral Diffie–Hellman with ECDSA authentication
//     under ECQV-reconstructed keys (Fig. 2, Algorithms 1–2), plus
//     the pipelining optimisation variants Opt. I and Opt. II (§IV-C).
//   - S-ECDSA — the static ECDSA KD of Basic et al. [5], plus the
//     "ext." finished-message variant.
//   - SCIANC — Sciancalepore et al. [4]: implicit certificates with
//     nonce-diversified static KD and MAC authentication.
//   - PORAMB — Porambage et al. [3]: certificate exchange with
//     pre-embedded pairwise MAC keys and static KD.
//
// Every run executes the real cryptography (over internal/ec etc.),
// records a primitive-level Trace for the hardware timing model, and
// returns the full wire transcript for byte-exact overhead accounting
// (Table II) and for the attacker simulations of the security analysis
// (Table III).
package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync/atomic"

	"repro/internal/ec"
	"repro/internal/ecqv"
)

// PartyRole distinguishes the two ends of a session run.
type PartyRole int

const (
	// RoleA is the initiator ("Alice", e.g. the EVCC requesting a
	// session).
	RoleA PartyRole = iota
	// RoleB is the responder ("Bob", e.g. the BMS).
	RoleB
)

func (r PartyRole) String() string {
	if r == RoleA {
		return "A"
	}
	return "B"
}

// Party holds one participant's long-term credentials: its ECQV
// certificate and reconstructed private key, the CA public key, and —
// for the symmetric baselines — pre-shared keys.
type Party struct {
	ID    ecqv.ID
	Curve *ec.Curve

	// Implicit-certificate credentials.
	Cert  *ecqv.Certificate
	Priv  *big.Int // ECQV-reconstructed private key
	CAPub ec.Point

	// PairwiseKey is the pre-embedded per-peer authentication key
	// required by PORAMB ("each node possesses from each other the
	// authentication key").
	PairwiseKey []byte

	// Rand supplies ephemeral randomness; nil selects crypto/rand.
	Rand io.Reader

	// cache memoizes peer public-key extraction and verification
	// tables across this party's handshakes; created lazily and
	// lock-free by KeyCache, so concurrent fleet handshakes share no
	// cross-party serialization point. Parties are passed by pointer;
	// use Clone to derive credential variants.
	cache atomic.Pointer[KeyCache]
}

// KeyCache returns the party's lazily created per-peer key cache.
// Safe for concurrent use; racing initializers converge on one cache.
func (p *Party) KeyCache() *KeyCache {
	if kc := p.cache.Load(); kc != nil {
		return kc
	}
	kc := NewKeyCache()
	if p.cache.CompareAndSwap(nil, kc) {
		return kc
	}
	return p.cache.Load()
}

// Clone returns a copy of the party's credentials with its own empty
// key cache — the way to derive credential variants (a stripped
// certificate, a mismatched key) for tests and attack simulations,
// since Party itself must not be copied by value.
func (p *Party) Clone() *Party {
	return &Party{
		ID:          p.ID,
		Curve:       p.Curve,
		Cert:        p.Cert,
		Priv:        p.Priv,
		CAPub:       p.CAPub,
		PairwiseKey: p.PairwiseKey,
		Rand:        p.Rand,
	}
}

// CloneWithRand returns a credential copy drawing ephemeral
// randomness from rng, sharing the receiver's key cache (a pure,
// concurrency-safe memo, so sharing changes no observable protocol
// behaviour). Deterministic concurrent experiments use it to give
// each handshake attempt a private randomness stream: parties
// provisioned from one Network otherwise share the network rng, whose
// draw order — and therefore every ephemeral — would depend on
// goroutine scheduling.
func (p *Party) CloneWithRand(rng io.Reader) *Party {
	q := p.Clone()
	q.Rand = rng
	q.cache.Store(p.KeyCache())
	return q
}

// Field is one named datum inside a wire message, sized exactly as the
// paper's Table II accounts it.
type Field struct {
	Name  string
	Bytes []byte
}

// WireMessage is one transmitted protocol message.
type WireMessage struct {
	From  PartyRole
	Label string // Table II step label: "A1", "B1", ...
	Field []Field
}

// Len returns the application-payload length of the message — the
// quantity Table II sums.
func (m WireMessage) Len() int {
	n := 0
	for _, f := range m.Field {
		n += len(f.Bytes)
	}
	return n
}

// Get returns a named field's bytes, or nil.
func (m WireMessage) Get(name string) []byte {
	for _, f := range m.Field {
		if f.Name == name {
			return f.Bytes
		}
	}
	return nil
}

// Result is the outcome of one protocol run.
type Result struct {
	Protocol string

	// Session keys derived by each side; a correct run has KeyA equal
	// to KeyB.
	KeyA, KeyB []byte

	// Transcript is every message in transmission order.
	Transcript []WireMessage

	// Trace is the primitive-level execution record for the hardware
	// timing model.
	Trace *Trace
}

// SessionKey returns the agreed key after checking both sides match.
func (r *Result) SessionKey() ([]byte, error) {
	if len(r.KeyA) == 0 || !bytes.Equal(r.KeyA, r.KeyB) {
		return nil, errors.New("core: session keys disagree")
	}
	return r.KeyA, nil
}

// TotalBytes sums the transcript payload sizes (the Table II total).
func (r *Result) TotalBytes() int {
	n := 0
	for _, m := range r.Transcript {
		n += m.Len()
	}
	return n
}

// Steps returns the number of transmitted messages.
func (r *Result) Steps() int { return len(r.Transcript) }

// Protocol is a two-party KD protocol.
type Protocol interface {
	// Name is the identifier used in tables and figures
	// ("STS", "S-ECDSA", ...).
	Name() string
	// Run executes a complete session establishment between a and b.
	Run(a, b *Party) (*Result, error)
	// Spec returns the static wire-format specification used for the
	// Table II overhead accounting.
	Spec() []StepSpec
	// Dynamic reports whether the protocol is a dynamic key derivation
	// (DKD) with per-session ephemeral secrets.
	Dynamic() bool
}

// StepSpec is the static description of one protocol message for
// overhead accounting.
type StepSpec struct {
	Label  string
	Fields []FieldSpec
}

// FieldSpec names a field and its size in bytes.
type FieldSpec struct {
	Name string
	Size int
}

// Size sums the field sizes of one step.
func (s StepSpec) Size() int {
	n := 0
	for _, f := range s.Fields {
		n += f.Size
	}
	return n
}

// SpecTotal sums a full protocol specification.
func SpecTotal(spec []StepSpec) int {
	n := 0
	for _, s := range spec {
		n += s.Size()
	}
	return n
}

// Protocols returns every protocol variant evaluated in the paper's
// Table I, in its row order.
func Protocols() []Protocol {
	return []Protocol{
		NewSECDSA(false),
		NewSECDSA(true),
		NewSTS(OptNone),
		NewSTS(OptI),
		NewSTS(OptII),
		NewSCIANC(),
		NewPORAMB(),
	}
}

// common wire sizes (P-256, §V-A bit sizes)
const (
	nonceSize = 32 // 256-bit nonces
	macSize   = 32 // HMAC-SHA-256 tags
	helloSize = 32 // PORAMB hello payload
	ackSize   = 1
	pointSize = 64 // raw X‖Y ephemeral point, "XG(64)" in Table II
	sigSize   = 64 // raw r‖s ECDSA signature
)

// encodePointRaw serializes a point as raw X‖Y (64 bytes on P-256),
// the "XG(64)" encoding of Table II.
func encodePointRaw(c *ec.Curve, p ec.Point) []byte {
	out := make([]byte, 2*c.ByteLen())
	p.X.FillBytes(out[:c.ByteLen()])
	p.Y.FillBytes(out[c.ByteLen():])
	return out
}

// decodePointRaw parses a raw X‖Y point and validates curve membership.
func decodePointRaw(c *ec.Curve, data []byte) (ec.Point, error) {
	if len(data) != 2*c.ByteLen() {
		return ec.Point{}, fmt.Errorf("core: raw point length %d, want %d", len(data), 2*c.ByteLen())
	}
	p := ec.Point{
		X: new(big.Int).SetBytes(data[:c.ByteLen()]),
		Y: new(big.Int).SetBytes(data[c.ByteLen():]),
	}
	if !c.IsOnCurve(p) {
		return ec.Point{}, errors.New("core: raw point not on curve")
	}
	return p, nil
}

// checkParties validates that both parties are fully provisioned on
// the same curve.
func checkParties(a, b *Party, needCerts, needPSK bool) error {
	if a == nil || b == nil {
		return errors.New("core: nil party")
	}
	if a.Curve == nil || a.Curve != b.Curve {
		return errors.New("core: parties must share a curve")
	}
	if needCerts {
		for _, p := range []*Party{a, b} {
			if p.Cert == nil || p.Priv == nil || p.CAPub.IsInfinity() {
				return fmt.Errorf("core: party %s lacks certificate credentials", p.ID)
			}
		}
	}
	if needPSK {
		if len(a.PairwiseKey) == 0 || !bytes.Equal(a.PairwiseKey, b.PairwiseKey) {
			return errors.New("core: parties lack a shared pairwise key")
		}
	}
	return nil
}
