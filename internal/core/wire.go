package core

import (
	"errors"
	"fmt"

	"repro/internal/ec"
	"repro/internal/ecqv"
)

// Wire codecs for the STS handshake: the byte-level message formats a
// deployment actually sends. Each message is a one-byte step code
// followed by the fixed-width fields of Table II (sizes derived from
// the curve, so P-224/P-192 deployments shrink accordingly).

// Step codes on the wire.
const (
	wireA1 byte = 0x01
	wireB1 byte = 0x02
	wireA2 byte = 0x03
	wireB2 byte = 0x04
)

var labelToCode = map[string]byte{"A1": wireA1, "B1": wireB1, "A2": wireA2, "B2": wireB2}
var codeToLabel = map[byte]string{wireA1: "A1", wireB1: "B1", wireA2: "A2", wireB2: "B2"}

// StepLabel maps a wire step code — the first byte of every handshake
// message, which the session transport carries as its OpCode — to the
// Table II step label ("A1", "B1", "A2", "B2"). ok is false for codes
// outside the STS protocol. The degraded-bus measurement workloads use
// it to attribute retransmission overhead to protocol steps.
func StepLabel(code byte) (label string, ok bool) {
	label, ok = codeToLabel[code]
	return label, ok
}

// stsLayout returns the field layout of an STS step for a curve and
// optimization level. It must agree with STS.Spec.
func stsLayout(curve *ec.Curve, opt STSOptimization, label string) ([]FieldSpec, error) {
	certSize := ecqv.EncodedSize(curve)
	ecSize := 2 * curve.ByteLen()
	switch label {
	case "A1":
		if opt == OptNone {
			return []FieldSpec{{"ID", ecqv.IDSize}, {"XG", ecSize}}, nil
		}
		return []FieldSpec{{"ID", ecqv.IDSize}, {"Cert", certSize}, {"XG", ecSize}}, nil
	case "B1":
		return []FieldSpec{{"ID", ecqv.IDSize}, {"Cert", certSize}, {"XG", ecSize}, {"Resp", ecSize}}, nil
	case "A2":
		if opt == OptNone {
			return []FieldSpec{{"Cert", certSize}, {"Resp", ecSize}}, nil
		}
		return []FieldSpec{{"Resp", ecSize}}, nil
	case "B2":
		return []FieldSpec{{"ACK", ackSize}}, nil
	}
	return nil, fmt.Errorf("core: unknown STS step %q", label)
}

// EncodeSTSMessage serializes a transcript message to wire bytes.
func EncodeSTSMessage(msg WireMessage) ([]byte, error) {
	code, ok := labelToCode[msg.Label]
	if !ok {
		return nil, fmt.Errorf("core: no wire code for step %q", msg.Label)
	}
	out := []byte{code}
	for _, f := range msg.Field {
		out = append(out, f.Bytes...)
	}
	return out, nil
}

// ErrWireFormat wraps all wire decoding failures.
var ErrWireFormat = errors.New("core: malformed handshake message")

// DecodeSTSMessage parses wire bytes into a transcript message, with
// strict length checking against the expected layout.
func DecodeSTSMessage(curve *ec.Curve, opt STSOptimization, data []byte) (WireMessage, error) {
	if len(data) == 0 {
		return WireMessage{}, fmt.Errorf("%w: empty", ErrWireFormat)
	}
	label, ok := codeToLabel[data[0]]
	if !ok {
		return WireMessage{}, fmt.Errorf("%w: unknown step code %#x", ErrWireFormat, data[0])
	}
	layout, err := stsLayout(curve, opt, label)
	if err != nil {
		return WireMessage{}, err
	}
	want := 1
	for _, f := range layout {
		want += f.Size
	}
	if len(data) != want {
		return WireMessage{}, fmt.Errorf("%w: step %s has %d bytes, want %d",
			ErrWireFormat, label, len(data), want)
	}
	msg := WireMessage{Label: label}
	if label[0] == 'A' {
		msg.From = RoleA
	} else {
		msg.From = RoleB
	}
	off := 1
	for _, f := range layout {
		msg.Field = append(msg.Field, Field{
			Name:  f.Name,
			Bytes: append([]byte(nil), data[off:off+f.Size]...),
		})
		off += f.Size
	}
	return msg, nil
}
