package core

import "fmt"

// Primitive identifies a class of cryptographic work whose device cost
// the hardware model knows. EC point multiplications dominate every
// protocol in the paper's evaluation; the byte-metered primitives make
// the symmetric baselines (SCIANC, PORAMB) comparable.
type Primitive int

const (
	// PrimECBaseMult is a scalar multiplication of the curve base
	// point (k·G): ephemeral point generation, ECDSA signing.
	PrimECBaseMult Primitive = iota
	// PrimECPointMult is a scalar multiplication of an arbitrary
	// point: ECDH premaster, ECQV public-key reconstruction.
	PrimECPointMult
	// PrimECCombinedMult is the Strauss–Shamir double multiplication
	// u1·G + u2·Q of ECDSA verification (~1.3 point multiplications).
	PrimECCombinedMult
	// PrimECPointAdd is a single group addition.
	PrimECPointAdd
	// PrimECPointDecode is a compressed-point decompression (one
	// modular square root).
	PrimECPointDecode
	// PrimModInverse is a scalar field inversion (ECDSA).
	PrimModInverse
	// PrimRandScalar is ephemeral/nonce scalar generation.
	PrimRandScalar
	// PrimHashBytes is SHA-256 over N bytes.
	PrimHashBytes
	// PrimMACBytes is HMAC-SHA-256 or AES-CMAC over N bytes.
	PrimMACBytes
	// PrimAESBytes is AES-128 encryption/decryption of N bytes.
	PrimAESBytes
	// PrimKDF is one key-derivation invocation (a handful of HMAC
	// blocks).
	PrimKDF
	// PrimRandBytes is symmetric nonce generation of N bytes.
	PrimRandBytes
)

var primitiveNames = map[Primitive]string{
	PrimECBaseMult:     "ec-base-mult",
	PrimECPointMult:    "ec-point-mult",
	PrimECCombinedMult: "ec-combined-mult",
	PrimECPointAdd:     "ec-point-add",
	PrimECPointDecode:  "ec-point-decode",
	PrimModInverse:     "mod-inverse",
	PrimRandScalar:     "rand-scalar",
	PrimHashBytes:      "hash-bytes",
	PrimMACBytes:       "mac-bytes",
	PrimAESBytes:       "aes-bytes",
	PrimKDF:            "kdf",
	PrimRandBytes:      "rand-bytes",
}

func (p Primitive) String() string {
	if s, ok := primitiveNames[p]; ok {
		return s
	}
	return fmt.Sprintf("primitive(%d)", int(p))
}

// Phase labels the paper's protocol operations. For STS these are
// exactly Op1–Op4 of §IV-C; the baselines reuse the same vocabulary for
// their analogous stages so the timing model can schedule any protocol.
type Phase string

const (
	// PhaseOp1 — request phase: random XG point derivation (or nonce
	// generation in the static protocols).
	PhaseOp1 Phase = "Op1"
	// PhaseOp2 — public-key and (pre)master session-key generation.
	PhaseOp2 Phase = "Op2"
	// PhaseOp2Premaster — the XG-dependent share of Op2: the premaster
	// multiplication and session KDF. Available as soon as the peer's
	// ephemeral point arrives, in both conventional and optimized STS.
	PhaseOp2Premaster Phase = "Op2a"
	// PhaseOp2PubKey — the certificate-dependent share of Op2: implicit
	// public-key reconstruction. This is the work the Opt. I message
	// reordering moves forward so the two parties execute it
	// concurrently (§IV-C).
	PhaseOp2PubKey Phase = "Op2b"
	// PhaseOp3 — authentication response derivation (sign + encrypt,
	// or MAC).
	PhaseOp3 Phase = "Op3"
	// PhaseOp4 — authentication verification (decrypt + verify, or
	// MAC check).
	PhaseOp4 Phase = "Op4"
)

// Base folds sub-phases into the paper's four-operation vocabulary:
// Op2a and Op2b report as Op2.
func (p Phase) Base() Phase {
	if p == PhaseOp2Premaster || p == PhaseOp2PubKey {
		return PhaseOp2
	}
	return p
}

// Phases lists the four operations of §IV-C in order (base phases).
func Phases() []Phase { return []Phase{PhaseOp1, PhaseOp2, PhaseOp3, PhaseOp4} }

// RawPhases lists every phase tag a trace may carry, including the
// Op2 sub-phases used by the optimization scheduler.
func RawPhases() []Phase {
	return []Phase{PhaseOp1, PhaseOp2, PhaseOp2Premaster, PhaseOp2PubKey, PhaseOp3, PhaseOp4}
}

// Event is one recorded primitive execution.
type Event struct {
	Party PartyRole
	Phase Phase
	Prim  Primitive
	// N counts bytes for the byte-metered primitives and repetitions
	// for the op-metered ones.
	N int
}

// Trace is the ordered execution record of one protocol run.
type Trace struct {
	Events []Event
}

// meter tags recorded events with a fixed party and mutable phase.
type meter struct {
	trace *Trace
	party PartyRole
	phase Phase
}

func (t *Trace) meterFor(party PartyRole) *meter {
	return &meter{trace: t, party: party, phase: PhaseOp1}
}

// enter switches the meter to a new phase.
func (m *meter) enter(p Phase) { m.phase = p }

// record appends an event.
func (m *meter) record(prim Primitive, n int) {
	if m == nil || m.trace == nil {
		return
	}
	m.trace.Events = append(m.trace.Events, Event{
		Party: m.party,
		Phase: m.phase,
		Prim:  prim,
		N:     n,
	})
}

// Counts aggregates a trace into per-(party, phase, primitive) totals.
type Counts map[PartyRole]map[Phase]map[Primitive]int

// Aggregate folds the event list into Counts.
func (t *Trace) Aggregate() Counts {
	out := Counts{}
	for _, e := range t.Events {
		byPhase, ok := out[e.Party]
		if !ok {
			byPhase = map[Phase]map[Primitive]int{}
			out[e.Party] = byPhase
		}
		byPrim, ok := byPhase[e.Phase]
		if !ok {
			byPrim = map[Primitive]int{}
			byPhase[e.Phase] = byPrim
		}
		byPrim[e.Prim] += e.N
	}
	return out
}

// PhaseCounts returns the primitive totals of one party's base phase,
// folding sub-phases (Op2a/Op2b → Op2) together.
func (c Counts) PhaseCounts(party PartyRole, phase Phase) map[Primitive]int {
	byPhase, ok := c[party]
	if !ok {
		return nil
	}
	out := map[Primitive]int{}
	for raw, counts := range byPhase {
		if raw.Base() != phase.Base() {
			continue
		}
		for prim, n := range counts {
			out[prim] += n
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// RawPhaseCounts returns the primitive totals of one exact phase tag,
// without sub-phase folding.
func (c Counts) RawPhaseCounts(party PartyRole, phase Phase) map[Primitive]int {
	if byPhase, ok := c[party]; ok {
		return byPhase[phase]
	}
	return nil
}
