package core

import (
	"errors"
	"fmt"

	"repro/internal/ec"
	"repro/internal/ecdsa"
	"repro/internal/ecqv"
)

// STSOptimization selects the pipelining variant of §IV-C.
type STSOptimization int

const (
	// OptNone is the conventional sequential STS execution
	// (equation (5)).
	OptNone STSOptimization = iota
	// OptI ships the certificate in the initial request so the two
	// parties' Op2 stages (public key + premaster) overlap
	// (equation (7)).
	OptI
	// OptII additionally overlaps the Op3 authentication-response
	// derivation (equation (8)). Failed authentications are then
	// detected only after the overlapped work has been spent — the
	// flexibility trade-off discussed in the paper.
	OptII
)

func (o STSOptimization) String() string {
	switch o {
	case OptI:
		return "opt. I"
	case OptII:
		return "opt. II"
	default:
		return "none"
	}
}

// STS is the paper's dynamic key-derivation protocol: Station-to-
// Station ephemeral ECDH, authenticated by ECDSA signatures that are
// verified against ECQV-reconstructed public keys and transported
// encrypted under the freshly derived session key (Fig. 2,
// Algorithms 1 and 2).
type STS struct {
	opt STSOptimization
}

// NewSTS returns the STS protocol with the given optimization level.
// All levels exchange identical data ("the sent data is identical to
// the original protocol, but the message and content order vary
// slightly"); the optimization changes which message carries the
// initiator certificate and how the hardware model schedules phases.
func NewSTS(opt STSOptimization) *STS { return &STS{opt: opt} }

// Name implements Protocol.
func (p *STS) Name() string {
	switch p.opt {
	case OptI:
		return "STS (opt. I)"
	case OptII:
		return "STS (opt. II)"
	default:
		return "STS"
	}
}

// Optimization returns the configured pipelining variant.
func (p *STS) Optimization() STSOptimization { return p.opt }

// Dynamic implements Protocol: STS is the only true DKD in the
// comparison.
func (p *STS) Dynamic() bool { return true }

// Spec implements Protocol with the Table II wire layout.
func (p *STS) Spec() []StepSpec {
	if p.opt == OptNone {
		return []StepSpec{
			{Label: "A1", Fields: []FieldSpec{{"ID", ecqv.IDSize}, {"XG", pointSize}}},
			{Label: "B1", Fields: []FieldSpec{{"ID", ecqv.IDSize}, {"Cert", 101}, {"XG", pointSize}, {"Resp", sigSize}}},
			{Label: "A2", Fields: []FieldSpec{{"Cert", 101}, {"Resp", sigSize}}},
			{Label: "B2", Fields: []FieldSpec{{"ACK", ackSize}}},
		}
	}
	// Optimized variants front-load the certificate; totals unchanged.
	return []StepSpec{
		{Label: "A1", Fields: []FieldSpec{{"ID", ecqv.IDSize}, {"Cert", 101}, {"XG", pointSize}}},
		{Label: "B1", Fields: []FieldSpec{{"ID", ecqv.IDSize}, {"Cert", 101}, {"XG", pointSize}, {"Resp", sigSize}}},
		{Label: "A2", Fields: []FieldSpec{{"Resp", sigSize}}},
		{Label: "B2", Fields: []FieldSpec{{"ACK", ackSize}}},
	}
}

// Run implements Protocol. Message flow (Fig. 2):
//
//	A → B : ID_A, XG_A                    (plus Cert_A when optimized)
//	B → A : ID_B, Cert_B, XG_B, Resp_B
//	A → B : Cert_A, Resp_A                (Resp_A only when optimized)
//	B → A : ACK
//
// with Resp_X = encrypt(KS, sign(Prk_X, XG_X ‖ XG_Y)) per Algorithm 1
// and verification per Algorithm 2.
func (p *STS) Run(a, b *Party) (*Result, error) {
	if err := checkParties(a, b, true, false); err != nil {
		return nil, err
	}
	curve := a.Curve
	trace := &Trace{}
	sa := newSuite(curve, trace.meterFor(RoleA), a.Rand, a.KeyCache())
	sb := newSuite(curve, trace.meterFor(RoleB), b.Rand, b.KeyCache())
	res := &Result{Protocol: p.Name(), Trace: trace}

	// --- A, Op1: ephemeral request point (equation (2)).
	sa.enter(PhaseOp1)
	xA, xgA, err := sa.ephemeral()
	if err != nil {
		return nil, fmt.Errorf("sts: A ephemeral: %w", err)
	}
	a1 := WireMessage{From: RoleA, Label: "A1"}
	if p.opt == OptNone {
		a1.Field = []Field{
			{"ID", a.ID[:]},
			{"XG", encodePointRaw(curve, xgA)},
		}
	} else {
		// Optimized request: certificate front-loaded (§IV-C).
		a1.Field = []Field{
			{"ID", a.ID[:]},
			{"Cert", a.Cert.Encode()},
			{"XG", encodePointRaw(curve, xgA)},
		}
	}
	res.Transcript = append(res.Transcript, a1)

	// --- B processes A1.
	rxXGA, err := decodePointRaw(curve, a1.Get("XG"))
	if err != nil {
		return nil, fmt.Errorf("sts: B: request point: %w", err)
	}
	sb.enter(PhaseOp1)
	xB, xgB, err := sb.ephemeral()
	if err != nil {
		return nil, fmt.Errorf("sts: B ephemeral: %w", err)
	}

	sb.enter(PhaseOp2Premaster)
	// Premaster KPM = X_B · XG_A (equation (3)); KS = KDF(KPM, salt)
	// (equation (4)) with the session's ephemeral points as salt.
	pmB, err := sb.dh(xB, rxXGA)
	if err != nil {
		return nil, fmt.Errorf("sts: B premaster: %w", err)
	}
	salt := append(encodePointRaw(curve, rxXGA), encodePointRaw(curve, xgB)...)
	encB, macB, err := sb.deriveSessionKeys(pmB, salt)
	if err != nil {
		return nil, err
	}
	// Under the optimized variants B already has Cert_A and completes
	// its full Op2 (public-key derivation) here, overlapping A's Op2.
	var qA ecPointHolder
	if p.opt != OptNone {
		certA, err := ecqv.Decode(a1.Get("Cert"))
		if err != nil {
			return nil, fmt.Errorf("sts: B: peer certificate: %w", err)
		}
		if err := checkCertificate(certA, a.ID); err != nil {
			return nil, fmt.Errorf("sts: B: %w", err)
		}
		sb.enter(PhaseOp2PubKey)
		q, err := sb.extractPublicKey(certA, b.CAPub)
		if err != nil {
			return nil, fmt.Errorf("sts: B: extract Q_A: %w", err)
		}
		qA.set(q)
	}

	// B, Op3: authentication response (Algorithm 1, responder branch:
	// dsign ← sign(Prk_B, XG_B ‖ XG_A)).
	sb.enter(PhaseOp3)
	authB := append(encodePointRaw(curve, xgB), encodePointRaw(curve, rxXGA)...)
	dsignB, err := sb.sign(b.Priv, authB)
	if err != nil {
		return nil, fmt.Errorf("sts: B sign: %w", err)
	}
	respB, err := sb.sealResp(encB, macB, "B->A", dsignB.EncodeRaw(curve))
	if err != nil {
		return nil, err
	}
	b1 := WireMessage{From: RoleB, Label: "B1", Field: []Field{
		{"ID", b.ID[:]},
		{"Cert", b.Cert.Encode()},
		{"XG", encodePointRaw(curve, xgB)},
		{"Resp", respB},
	}}
	res.Transcript = append(res.Transcript, b1)

	// --- A processes B1: Op2 (derive Q_B, premaster, KS) then Op4
	// (decrypt + verify Resp_B per Algorithm 2).
	rxXGB, err := decodePointRaw(curve, b1.Get("XG"))
	if err != nil {
		return nil, fmt.Errorf("sts: A: response point: %w", err)
	}
	certB, err := ecqv.Decode(b1.Get("Cert"))
	if err != nil {
		return nil, fmt.Errorf("sts: A: peer certificate: %w", err)
	}
	if err := checkCertificate(certB, b.ID); err != nil {
		return nil, fmt.Errorf("sts: A: %w", err)
	}
	sa.enter(PhaseOp2PubKey)
	qB, err := sa.extractPublicKey(certB, a.CAPub)
	if err != nil {
		return nil, fmt.Errorf("sts: A: extract Q_B: %w", err)
	}
	sa.enter(PhaseOp2Premaster)
	pmA, err := sa.dh(xA, rxXGB)
	if err != nil {
		return nil, fmt.Errorf("sts: A premaster: %w", err)
	}
	saltA := append(encodePointRaw(curve, xgA), encodePointRaw(curve, rxXGB)...)
	encA, macA, err := sa.deriveSessionKeys(pmA, saltA)
	if err != nil {
		return nil, err
	}

	sa.enter(PhaseOp4)
	sa.m.record(PrimAESBytes, len(b1.Get("Resp")))
	dsignBraw, err := sa.openResp(encA, macA, "B->A", b1.Get("Resp"))
	if err != nil {
		return nil, err
	}
	sigB, err := ecdsa.DecodeRaw(curve, dsignBraw)
	if err != nil {
		return nil, fmt.Errorf("sts: A: responder signature garbled (wrong session key?): %w", err)
	}
	wantAuthB := append(encodePointRaw(curve, rxXGB), encodePointRaw(curve, xgA)...)
	if !sa.verify(qB, wantAuthB, sigB) {
		return nil, errors.New("sts: A: responder authentication failed")
	}

	// A, Op3: initiator authentication response
	// (dsign ← sign(Prk_A, XG_A ‖ XG_B)).
	sa.enter(PhaseOp3)
	authA := append(encodePointRaw(curve, xgA), encodePointRaw(curve, rxXGB)...)
	dsignA, err := sa.sign(a.Priv, authA)
	if err != nil {
		return nil, fmt.Errorf("sts: A sign: %w", err)
	}
	respA, err := sa.sealResp(encA, macA, "A->B", dsignA.EncodeRaw(curve))
	if err != nil {
		return nil, err
	}
	a2 := WireMessage{From: RoleA, Label: "A2"}
	if p.opt == OptNone {
		a2.Field = []Field{{"Cert", a.Cert.Encode()}, {"Resp", respA}}
	} else {
		a2.Field = []Field{{"Resp", respA}}
	}
	res.Transcript = append(res.Transcript, a2)

	// --- B processes A2: complete Op2 if not yet done, then Op4.
	if p.opt == OptNone {
		certA, err := ecqv.Decode(a2.Get("Cert"))
		if err != nil {
			return nil, fmt.Errorf("sts: B: peer certificate: %w", err)
		}
		if err := checkCertificate(certA, a.ID); err != nil {
			return nil, fmt.Errorf("sts: B: %w", err)
		}
		sb.enter(PhaseOp2PubKey)
		q, err := sb.extractPublicKey(certA, b.CAPub)
		if err != nil {
			return nil, fmt.Errorf("sts: B: extract Q_A: %w", err)
		}
		qA.set(q)
	}
	sb.enter(PhaseOp4)
	sb.m.record(PrimAESBytes, len(a2.Get("Resp")))
	dsignAraw, err := sb.openResp(encB, macB, "A->B", a2.Get("Resp"))
	if err != nil {
		return nil, err
	}
	sigA, err := ecdsa.DecodeRaw(curve, dsignAraw)
	if err != nil {
		return nil, fmt.Errorf("sts: B: initiator signature garbled (wrong session key?): %w", err)
	}
	wantAuthA := append(encodePointRaw(curve, rxXGA), encodePointRaw(curve, xgB)...)
	if !sb.verify(qA.point, wantAuthA, sigA) {
		return nil, errors.New("sts: B: initiator authentication failed")
	}

	b2 := WireMessage{From: RoleB, Label: "B2", Field: []Field{{"ACK", []byte{0x06}}}}
	res.Transcript = append(res.Transcript, b2)

	res.KeyA = append(append([]byte(nil), encA...), macA...)
	res.KeyB = append(append([]byte(nil), encB...), macB...)
	return res, nil
}

// ecPointHolder defers the availability of a reconstructed key between
// protocol variants.
type ecPointHolder struct {
	point ec.Point
	ok    bool
}

func (h *ecPointHolder) set(p ec.Point) {
	h.point = p
	h.ok = true
}

// checkCertificate applies the relying-party certificate policy: the
// claimed wire identity must match the certificate subject and the
// certificate must permit signing.
func checkCertificate(cert *ecqv.Certificate, wantSubject ecqv.ID) error {
	if cert.SubjectID != wantSubject {
		return fmt.Errorf("certificate subject %s does not match peer identity %s",
			cert.SubjectID, wantSubject)
	}
	if !cert.PermitsUsage(ecqv.UsageSignature) {
		return errors.New("certificate does not permit signatures")
	}
	return nil
}
