package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/ecdsa"
)

// waveVerifier batches concurrently in-flight ECDSA verifications into
// ecdsa.VerifyBatch calls by group commit: the first request to arrive
// becomes the leader and drains the queue in rounds, so every
// verification that lands while a round is running joins the next one
// and shares its scalar and field inversions. During an EstablishAll
// wave all of a party's worker goroutines verify through the same
// KeyCache, which is exactly when the queue is non-trivial; a serial
// caller degrades to a batch of one, whose result VerifyBatch
// guarantees is identical to a plain Verify. There are no timers and
// no cross-goroutine waits other than followers waiting for the
// leader's round: batching never delays a verification that has no
// company.
type waveVerifier struct {
	mu      sync.Mutex
	leading bool
	queue   []*waveReq

	batches atomic.Uint64 // VerifyBatch rounds executed
	items   atomic.Uint64 // verifications served through those rounds
}

type waveReq struct {
	item ecdsa.BatchItem
	done chan bool // buffered: the leader never blocks delivering
}

// verify checks sig over digest under pub, batching with whatever else
// is in flight on this verifier.
func (w *waveVerifier) verify(pub *ecdsa.PublicKey, digest []byte, sig ecdsa.Signature) bool {
	req := &waveReq{
		item: ecdsa.BatchItem{Key: pub, Digest: digest, Sig: sig},
		done: make(chan bool, 1),
	}
	w.mu.Lock()
	w.queue = append(w.queue, req)
	if w.leading {
		// A leader is draining; it will pick this request up in its next
		// round (it re-checks the queue before stepping down).
		w.mu.Unlock()
		return <-req.done
	}
	w.leading = true
	w.mu.Unlock()

	for {
		w.mu.Lock()
		batch := w.queue
		w.queue = nil
		if len(batch) == 0 {
			w.leading = false
			w.mu.Unlock()
			break
		}
		w.mu.Unlock()

		items := make([]ecdsa.BatchItem, len(batch))
		for i, r := range batch {
			items[i] = r.item
		}
		res := ecdsa.VerifyBatch(items)
		w.batches.Add(1)
		w.items.Add(uint64(len(batch)))
		for i, r := range batch {
			r.done <- res[i]
		}
	}
	return <-req.done
}
