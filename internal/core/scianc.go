package core

import (
	"errors"
	"fmt"

	"repro/internal/ec"
	"repro/internal/ecqv"
)

// SCIANC is the protocol of Sciancalepore et al. [4]: implicit
// certificates with a nonce-diversified static key derivation and
// symmetric (MAC) mutual authentication — no per-session EC signatures.
//
// Each party derives the peer's implicit public key and computes a
// static ECDH premaster from its long-term private key; the session
// key mixes in both exchanged nonces, and authentication is an HMAC
// keyed with the derived session key itself. The paper's critique
// (§III, Table III): the nonces are public, so the KD is still static
// (no forward secrecy), and tying authentication to the session key
// means a session-key compromise also compromises future
// authentication.
//
// The d·Q_CA term of the combined reconstruction-and-agreement
// computation depends only on certificate-epoch material and is cached
// across sessions, leaving roughly one EC point multiplication per
// device per session — which is why SCIANC posts the fastest Table I
// times among the certificate-based protocols.
type SCIANC struct {
	// cache of d·Q_CA per party role, established on first run.
}

// NewSCIANC returns the SCIANC baseline protocol.
func NewSCIANC() *SCIANC { return &SCIANC{} }

// Name implements Protocol.
func (p *SCIANC) Name() string { return "SCIANC" }

// Dynamic implements Protocol: static KD.
func (p *SCIANC) Dynamic() bool { return false }

// Spec implements Protocol with the Table II layout.
func (p *SCIANC) Spec() []StepSpec {
	return []StepSpec{
		{Label: "A1", Fields: []FieldSpec{{"ID", ecqv.IDSize}, {"Nonce", nonceSize}, {"Cert", 101}}},
		{Label: "B1", Fields: []FieldSpec{{"ID", ecqv.IDSize}, {"Nonce", nonceSize}, {"Cert", 101}}},
		{Label: "A2", Fields: []FieldSpec{{"AuthMAC", macSize}}},
		{Label: "B2", Fields: []FieldSpec{{"AuthMAC", macSize}}},
	}
}

// Run implements Protocol. Message flow (Table II):
//
//	A → B : ID_A, Nonce_A, Cert_A
//	B → A : ID_B, Nonce_B, Cert_B
//	A → B : AuthMAC_A
//	B → A : AuthMAC_B
func (p *SCIANC) Run(a, b *Party) (*Result, error) {
	if err := checkParties(a, b, true, false); err != nil {
		return nil, err
	}
	curve := a.Curve
	trace := &Trace{}
	sa := newSuite(curve, trace.meterFor(RoleA), a.Rand, a.KeyCache())
	sb := newSuite(curve, trace.meterFor(RoleB), b.Rand, b.KeyCache())
	res := &Result{Protocol: p.Name(), Trace: trace}

	// Certificate-epoch caches: d·Q_CA is independent of the peer and
	// session; devices precompute it when certificates are installed.
	// It is deliberately NOT metered into the session trace.
	cacheA := curve.ScalarMult(a.CAPub, a.Priv)
	cacheB := curve.ScalarMult(b.CAPub, b.Priv)

	// --- A, Op1.
	sa.enter(PhaseOp1)
	nonceA, err := sa.nonce(nonceSize)
	if err != nil {
		return nil, err
	}
	a1 := WireMessage{From: RoleA, Label: "A1", Field: []Field{
		{"ID", a.ID[:]},
		{"Nonce", nonceA},
		{"Cert", a.Cert.Encode()},
	}}
	res.Transcript = append(res.Transcript, a1)

	// --- B, Op1 and response.
	sb.enter(PhaseOp1)
	nonceB, err := sb.nonce(nonceSize)
	if err != nil {
		return nil, err
	}
	b1 := WireMessage{From: RoleB, Label: "B1", Field: []Field{
		{"ID", b.ID[:]},
		{"Nonce", nonceB},
		{"Cert", b.Cert.Encode()},
	}}
	res.Transcript = append(res.Transcript, b1)

	salt := append(append([]byte(nil), nonceA...), nonceB...)

	// --- Both parties, Op2: combined public-key reconstruction and
	// static key agreement with the cached CA term:
	// Sk = (d·H(Cert_peer))·P_peer + [d·Q_CA].
	//
	// The encryption key mixes the session nonces (the scheme's key
	// "diversification"), but the authentication key derives from the
	// static premaster alone — SCIANC "ties its session key with the
	// KD authentication, meaning that if the session key gets
	// exploited so will the future authentication" (§V-D). The
	// security engine demonstrates exactly that forgery.
	deriveKeys := func(s *suite, self *Party, peerCertBytes []byte, peerID ecqv.ID, cached ec.Point) ([]byte, []byte, error) {
		cert, err := ecqv.Decode(peerCertBytes)
		if err != nil {
			return nil, nil, fmt.Errorf("scianc: peer certificate: %w", err)
		}
		if err := checkSCIANCCertificate(cert, peerID); err != nil {
			return nil, nil, err
		}
		s.enter(PhaseOp2)
		pm, err := s.cachedCombinedDH(self.Priv, cert, cached)
		if err != nil {
			return nil, nil, err
		}
		encKey, _, err := s.deriveSessionKeys(pm, concat([]byte("scianc-enc|"), salt))
		if err != nil {
			return nil, nil, err
		}
		_, authKey, err := s.deriveSessionKeys(pm, []byte("scianc-static-auth"))
		if err != nil {
			return nil, nil, err
		}
		return encKey, authKey, nil
	}

	encA, macKeyA, err := deriveKeys(sa, a, b1.Get("Cert"), b.ID, cacheA)
	if err != nil {
		return nil, fmt.Errorf("scianc: A: %w", err)
	}
	encB, macKeyB, err := deriveKeys(sb, b, a1.Get("Cert"), a.ID, cacheB)
	if err != nil {
		return nil, fmt.Errorf("scianc: B: %w", err)
	}

	// --- Op3/Op4: mutual MAC authentication keyed with the session
	// key itself (the coupling Table III marks as a partial weakness).
	sa.enter(PhaseOp3)
	authA := sa.mac(macKeyA, []byte("scianc-auth|A"), a.ID[:], b.ID[:], nonceA, nonceB)
	a2 := WireMessage{From: RoleA, Label: "A2", Field: []Field{{"AuthMAC", authA}}}
	res.Transcript = append(res.Transcript, a2)

	sb.enter(PhaseOp4)
	if !sb.macVerify(macKeyB, a2.Get("AuthMAC"), []byte("scianc-auth|A"), a.ID[:], b.ID[:], nonceA, nonceB) {
		return nil, errors.New("scianc: B: initiator authentication failed")
	}

	sb.enter(PhaseOp3)
	authB := sb.mac(macKeyB, []byte("scianc-auth|B"), b.ID[:], a.ID[:], nonceB, nonceA)
	b2 := WireMessage{From: RoleB, Label: "B2", Field: []Field{{"AuthMAC", authB}}}
	res.Transcript = append(res.Transcript, b2)

	sa.enter(PhaseOp4)
	if !sa.macVerify(macKeyA, b2.Get("AuthMAC"), []byte("scianc-auth|B"), b.ID[:], a.ID[:], nonceB, nonceA) {
		return nil, errors.New("scianc: A: responder authentication failed")
	}

	res.KeyA = append(append([]byte(nil), encA...), macKeyA...)
	res.KeyB = append(append([]byte(nil), encB...), macKeyB...)
	return res, nil
}

// checkSCIANCCertificate applies the (weaker) SCIANC relying-party
// policy: subject match only — the scheme validates "the ID and
// correctness of the certificate calculation, but this does not
// guarantee the authenticity of the device itself" (§III).
func checkSCIANCCertificate(cert *ecqv.Certificate, wantSubject ecqv.ID) error {
	if cert.SubjectID != wantSubject {
		return fmt.Errorf("scianc: certificate subject %s does not match %s",
			cert.SubjectID, wantSubject)
	}
	return nil
}
