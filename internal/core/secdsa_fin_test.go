package core

import (
	"testing"

	"repro/internal/ec"
)

// White-box tests for the S-ECDSA extended finished messages.

func TestFinishedRoundTrip(t *testing.T) {
	s, _ := newTestSuite(31)
	enc := make([]byte, 16)
	mac := make([]byte, 32)
	transcript := s.hash([]byte("transcript"))

	fin, err := buildFinished(s, enc, mac, "B", transcript)
	if err != nil {
		t.Fatal(err)
	}
	if len(fin) != finSize {
		t.Fatalf("finished size %d, want %d", len(fin), finSize)
	}
	if err := checkFinished(s, enc, mac, "B", transcript, fin); err != nil {
		t.Fatalf("valid finished rejected: %v", err)
	}
}

func TestFinishedRejections(t *testing.T) {
	s, _ := newTestSuite(32)
	enc := make([]byte, 16)
	mac := make([]byte, 32)
	transcript := s.hash([]byte("transcript"))
	fin, err := buildFinished(s, enc, mac, "B", transcript)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong length.
	if err := checkFinished(s, enc, mac, "B", transcript, fin[:50]); err == nil {
		t.Error("short finished accepted")
	}
	// Tampered nonce / MACs.
	for _, idx := range []int{0, 40, 80} {
		mod := append([]byte(nil), fin...)
		mod[idx] ^= 0x01
		if err := checkFinished(s, enc, mac, "B", transcript, mod); err == nil {
			t.Errorf("tampered finished byte %d accepted", idx)
		}
	}
	// Wrong role (reflection).
	if err := checkFinished(s, enc, mac, "A", transcript, fin); err == nil {
		t.Error("finished accepted under the wrong role")
	}
	// Wrong transcript.
	other := s.hash([]byte("other transcript"))
	if err := checkFinished(s, enc, mac, "B", other, fin); err == nil {
		t.Error("finished accepted for a different transcript")
	}
	// Wrong key (different session).
	mac2 := make([]byte, 32)
	mac2[0] = 1
	if err := checkFinished(s, enc, mac2, "B", transcript, fin); err == nil {
		t.Error("finished accepted under a different session key")
	}
}

func TestSECDSAExtRunsFinishedExchange(t *testing.T) {
	// The ext variant must verify the finished messages end-to-end —
	// corrupting the derived keys is impossible mid-run, so assert the
	// positive path plus the transcript shape here.
	a, b := newPair(t, 33)
	res, err := NewSECDSA(true).Run(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps() != 5 {
		t.Fatalf("ext variant has %d steps", res.Steps())
	}
	finB := res.Transcript[3].Get("Fin")
	finA := res.Transcript[4].Get("Fin")
	if len(finB) != finSize || len(finA) != finSize {
		t.Error("finished message sizes wrong")
	}
	// Finished messages must differ between roles (role separation).
	if string(finA) == string(finB) {
		t.Error("role finished messages identical")
	}
}

// TestDecodersNeverPanic hammers every decoder in the package with
// random bytes: errors are fine, panics are not.
func TestDecodersNeverPanic(t *testing.T) {
	rng := newDetRand(34)
	curve := ec.P256()
	buf := make([]byte, 512)
	for i := 0; i < 500; i++ {
		n := 1 + i%len(buf)
		rng.Read(buf[:n])
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decoder panic on %d bytes: %v", n, r)
				}
			}()
			_, _ = DecodeSTSMessage(curve, OptNone, buf[:n])
			_, _ = DecodeSTSMessage(curve, OptII, buf[:n])
			_, _ = decodePointRaw(curve, buf[:n])
		}()
	}
}
