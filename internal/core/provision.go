package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/conc"
	"repro/internal/ec"
	"repro/internal/ecqv"
)

// lockedReader serializes reads of an injected randomness source.
// Deterministic test readers are not safe for concurrent draws; wrapping
// them once at network construction makes every downstream consumer
// (provisioning, handshake ephemerals via Party.Rand) concurrency-safe.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

// lockReader wraps a non-nil reader; nil stays nil (crypto/rand is
// already safe for concurrent use).
func lockReader(r io.Reader) io.Reader {
	if r == nil {
		return nil
	}
	return &lockedReader{r: r}
}

// Network models the centralized implicit-certificate architecture of
// the paper's Figure 1: a central authority that authenticates devices
// and derives their certificates (stages 1 and 2), after which any two
// provisioned devices can establish sessions (stage 3) with the
// protocols in this package.
type Network struct {
	Curve *ec.Curve
	CA    *ecqv.CA
	rand  io.Reader

	// certValidity is the certificate-session length (e.g. one
	// vehicle power cycle).
	certValidity time.Duration
	notBefore    time.Time
}

// NewNetwork creates the central authority. A nil rng selects
// crypto/rand; an injected rng is wrapped so concurrent provisioning
// and handshakes never race on it.
func NewNetwork(curve *ec.Curve, rng io.Reader) (*Network, error) {
	rng = lockReader(rng)
	ca, err := ecqv.NewCA(curve, ecqv.NewID("central-authority"), rng)
	if err != nil {
		return nil, fmt.Errorf("core: network CA: %w", err)
	}
	return &Network{
		Curve:        curve,
		CA:           ca,
		rand:         rng,
		certValidity: 24 * time.Hour,
		notBefore:    time.Unix(1700000000, 0),
	}, nil
}

// Provision runs the full certificate-derivation stage for one device:
// request generation, CA issuance and private-key reconstruction,
// returning a session-ready Party.
func (n *Network) Provision(name string) (*Party, error) {
	id := ecqv.NewID(name)
	req, sec, err := ecqv.NewRequest(n.Curve, id, n.rand)
	if err != nil {
		return nil, fmt.Errorf("core: provision %s: %w", name, err)
	}
	resp, err := n.CA.Issue(req, ecqv.IssueParams{
		ValidFrom: n.notBefore,
		ValidTo:   n.notBefore.Add(n.certValidity),
		KeyUsage:  ecqv.UsageKeyAgreement | ecqv.UsageSignature,
	})
	if err != nil {
		return nil, fmt.Errorf("core: issue %s: %w", name, err)
	}
	priv, _, err := ecqv.ReconstructPrivateKey(sec, resp, n.CA.PublicKey())
	if err != nil {
		return nil, fmt.Errorf("core: reconstruct %s: %w", name, err)
	}
	return &Party{
		ID:    id,
		Curve: n.Curve,
		Cert:  resp.Cert,
		Priv:  priv,
		CAPub: n.CA.PublicKey(),
		Rand:  n.rand,
	}, nil
}

// ProvisionBatch runs the certificate-derivation stage for many
// devices at once, fanning each phase over a pool of at most
// parallelism workers (GOMAXPROCS when ≤ 0): request generation,
// batched CA issuance via ecqv.CA.IssueBatch (which warms the
// per-curve base-point table once for the whole batch) and
// private-key reconstruction. Parties align with names; per-device
// failures are joined into the returned error while the rest of the
// batch still completes.
func (n *Network) ProvisionBatch(names []string, parallelism int) ([]*Party, error) {
	reqs := make([]ecqv.Request, len(names))
	secs := make([]*ecqv.RequestSecret, len(names))
	errs := make([]error, len(names))
	conc.ForEach(len(names), parallelism, func(i int) {
		var err error
		reqs[i], secs[i], err = ecqv.NewRequest(n.Curve, ecqv.NewID(names[i]), n.rand)
		if err != nil {
			errs[i] = fmt.Errorf("core: provision %s: %w", names[i], err)
		}
	})

	// Only requests that generated cleanly go to the CA, so a
	// request-phase failure is reported exactly once.
	valid := make([]int, 0, len(names))
	for i := range names {
		if errs[i] == nil {
			valid = append(valid, i)
		}
	}
	validReqs := make([]ecqv.Request, len(valid))
	for j, i := range valid {
		validReqs[j] = reqs[i]
	}
	validResps, issueErr := n.CA.IssueBatch(validReqs, ecqv.IssueParams{
		ValidFrom: n.notBefore,
		ValidTo:   n.notBefore.Add(n.certValidity),
		KeyUsage:  ecqv.UsageKeyAgreement | ecqv.UsageSignature,
	}, parallelism)
	resps := make([]*ecqv.Response, len(names))
	for j, i := range valid {
		resps[i] = validResps[j]
	}

	out := make([]*Party, len(names))
	conc.ForEach(len(names), parallelism, func(i int) {
		if errs[i] != nil {
			return
		}
		if resps[i] == nil {
			return // issuance failure already reported by issueErr
		}
		priv, _, err := ecqv.ReconstructPrivateKey(secs[i], resps[i], n.CA.PublicKey())
		if err != nil {
			errs[i] = fmt.Errorf("core: reconstruct %s: %w", names[i], err)
			return
		}
		out[i] = &Party{
			ID:    resps[i].Cert.SubjectID,
			Curve: n.Curve,
			Cert:  resps[i].Cert,
			Priv:  priv,
			CAPub: n.CA.PublicKey(),
			Rand:  n.rand,
		}
	})
	return out, errors.Join(append(errs, issueErr)...)
}

// Pair provisions two devices and installs the pairwise pre-shared
// key that PORAMB requires.
func (n *Network) Pair(nameA, nameB string) (*Party, *Party, error) {
	a, err := n.Provision(nameA)
	if err != nil {
		return nil, nil, err
	}
	b, err := n.Provision(nameB)
	if err != nil {
		return nil, nil, err
	}
	rng := n.rand
	if rng == nil {
		rng = rand.Reader
	}
	psk := make([]byte, 32)
	if _, err := io.ReadFull(rng, psk); err != nil {
		return nil, nil, fmt.Errorf("core: pairwise key: %w", err)
	}
	a.PairwiseKey = append([]byte(nil), psk...)
	b.PairwiseKey = append([]byte(nil), psk...)
	return a, b, nil
}
