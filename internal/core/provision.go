package core

import (
	"crypto/rand"
	"fmt"
	"io"
	"time"

	"repro/internal/ec"
	"repro/internal/ecqv"
)

// Network models the centralized implicit-certificate architecture of
// the paper's Figure 1: a central authority that authenticates devices
// and derives their certificates (stages 1 and 2), after which any two
// provisioned devices can establish sessions (stage 3) with the
// protocols in this package.
type Network struct {
	Curve *ec.Curve
	CA    *ecqv.CA
	rand  io.Reader

	// certValidity is the certificate-session length (e.g. one
	// vehicle power cycle).
	certValidity time.Duration
	notBefore    time.Time
}

// NewNetwork creates the central authority. A nil rng selects
// crypto/rand.
func NewNetwork(curve *ec.Curve, rng io.Reader) (*Network, error) {
	ca, err := ecqv.NewCA(curve, ecqv.NewID("central-authority"), rng)
	if err != nil {
		return nil, fmt.Errorf("core: network CA: %w", err)
	}
	return &Network{
		Curve:        curve,
		CA:           ca,
		rand:         rng,
		certValidity: 24 * time.Hour,
		notBefore:    time.Unix(1700000000, 0),
	}, nil
}

// Provision runs the full certificate-derivation stage for one device:
// request generation, CA issuance and private-key reconstruction,
// returning a session-ready Party.
func (n *Network) Provision(name string) (*Party, error) {
	id := ecqv.NewID(name)
	req, sec, err := ecqv.NewRequest(n.Curve, id, n.rand)
	if err != nil {
		return nil, fmt.Errorf("core: provision %s: %w", name, err)
	}
	resp, err := n.CA.Issue(req, ecqv.IssueParams{
		ValidFrom: n.notBefore,
		ValidTo:   n.notBefore.Add(n.certValidity),
		KeyUsage:  ecqv.UsageKeyAgreement | ecqv.UsageSignature,
	})
	if err != nil {
		return nil, fmt.Errorf("core: issue %s: %w", name, err)
	}
	priv, _, err := ecqv.ReconstructPrivateKey(sec, resp, n.CA.PublicKey())
	if err != nil {
		return nil, fmt.Errorf("core: reconstruct %s: %w", name, err)
	}
	return &Party{
		ID:    id,
		Curve: n.Curve,
		Cert:  resp.Cert,
		Priv:  priv,
		CAPub: n.CA.PublicKey(),
		Rand:  n.rand,
	}, nil
}

// Pair provisions two devices and installs the pairwise pre-shared
// key that PORAMB requires.
func (n *Network) Pair(nameA, nameB string) (*Party, *Party, error) {
	a, err := n.Provision(nameA)
	if err != nil {
		return nil, nil, err
	}
	b, err := n.Provision(nameB)
	if err != nil {
		return nil, nil, err
	}
	rng := n.rand
	if rng == nil {
		rng = rand.Reader
	}
	psk := make([]byte, 32)
	if _, err := io.ReadFull(rng, psk); err != nil {
		return nil, nil, fmt.Errorf("core: pairwise key: %w", err)
	}
	a.PairwiseKey = append([]byte(nil), psk...)
	b.PairwiseKey = append([]byte(nil), psk...)
	return a, b, nil
}
