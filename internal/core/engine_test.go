package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ec"
)

// driveHandshake runs the two state machines to completion, returning
// both key blocks and the exchanged messages.
func driveHandshake(t *testing.T, init *Initiator, resp *Responder) ([]byte, []byte, [][]byte) {
	t.Helper()
	var wire [][]byte

	msg, err := init.Start()
	if err != nil {
		t.Fatal(err)
	}
	wire = append(wire, msg)

	for i := 0; i < 8; i++ {
		reply, _, err := resp.Handle(msg)
		if err != nil {
			t.Fatalf("responder: %v", err)
		}
		if reply == nil {
			break
		}
		wire = append(wire, reply)

		next, doneA, err := init.Handle(reply)
		if err != nil {
			t.Fatalf("initiator: %v", err)
		}
		if doneA && next == nil {
			break
		}
		wire = append(wire, next)
		msg = next
	}

	keyA, err := init.SessionKey()
	if err != nil {
		t.Fatalf("initiator key: %v", err)
	}
	keyB, err := resp.SessionKey()
	if err != nil {
		t.Fatalf("responder key: %v", err)
	}
	return keyA, keyB, wire
}

func TestEngineHandshake(t *testing.T) {
	for _, opt := range []STSOptimization{OptNone, OptI, OptII} {
		t.Run(opt.String(), func(t *testing.T) {
			a, b := newPair(t, 21)
			init, err := NewInitiator(a, opt)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := NewResponder(b, opt)
			if err != nil {
				t.Fatal(err)
			}
			keyA, keyB, wire := driveHandshake(t, init, resp)
			if !bytes.Equal(keyA, keyB) {
				t.Fatal("engine key mismatch")
			}
			if len(wire) != 4 {
				t.Fatalf("%d wire messages, want 4", len(wire))
			}
			// Total bytes = Table II total + 4 step-code bytes.
			total := 0
			for _, m := range wire {
				total += len(m) - 1
			}
			if total != 491 {
				t.Errorf("engine wire total %d B, want 491", total)
			}
			// Engine trace covers all four phases.
			for _, tr := range []*Trace{init.Trace(), resp.Trace()} {
				agg := tr.Aggregate()
				for _, role := range []PartyRole{RoleA, RoleB} {
					_ = role
				}
				found := 0
				for _, ph := range Phases() {
					for _, role := range []PartyRole{RoleA, RoleB} {
						if len(agg.PhaseCounts(role, ph)) > 0 {
							found++
						}
					}
				}
				if found < 4 {
					t.Errorf("engine trace covers %d phase slots", found)
				}
			}
		})
	}
}

func TestEngineMatchesRun(t *testing.T) {
	// The state-machine handshake and the monolithic Run must be the
	// same protocol: message count, sizes and key-block length.
	a, b := newPair(t, 22)
	res, err := NewSTS(OptNone).Run(a, b)
	if err != nil {
		t.Fatal(err)
	}
	init, _ := NewInitiator(a, OptNone)
	resp, _ := NewResponder(b, OptNone)
	keyA, _, wire := driveHandshake(t, init, resp)

	if len(wire) != len(res.Transcript) {
		t.Fatalf("engine %d messages, Run %d", len(wire), len(res.Transcript))
	}
	for i, m := range wire {
		if len(m)-1 != res.Transcript[i].Len() {
			t.Errorf("step %d: engine %d B, Run %d B", i, len(m)-1, res.Transcript[i].Len())
		}
	}
	if len(keyA) != len(res.KeyA) {
		t.Errorf("key block sizes differ: %d vs %d", len(keyA), len(res.KeyA))
	}
}

func TestEngineKeysFreshPerHandshake(t *testing.T) {
	a, b := newPair(t, 23)
	run := func() []byte {
		init, _ := NewInitiator(a, OptNone)
		resp, _ := NewResponder(b, OptNone)
		keyA, _, _ := driveHandshake(t, init, resp)
		return keyA
	}
	if bytes.Equal(run(), run()) {
		t.Fatal("engine reused session keys")
	}
}

func TestEngineRejectsWrongState(t *testing.T) {
	a, b := newPair(t, 24)
	init, _ := NewInitiator(a, OptNone)
	resp, _ := NewResponder(b, OptNone)

	// Start twice.
	if _, err := init.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := init.Start(); !errors.Is(err, ErrHandshakeState) {
		t.Errorf("second Start: %v", err)
	}
	// Responder fed an A2 before A1.
	a2 := []byte{wireA2}
	a2 = append(a2, make([]byte, 101+64)...)
	if _, _, err := resp.Handle(a2); !errors.Is(err, ErrHandshakeState) {
		t.Errorf("premature A2: %v", err)
	}
	// Key before completion.
	if _, err := init.SessionKey(); err == nil {
		t.Error("key available before completion")
	}
}

func TestEngineRejectsTamperedMessages(t *testing.T) {
	a, b := newPair(t, 25)
	init, _ := NewInitiator(a, OptNone)
	resp, _ := NewResponder(b, OptNone)

	a1, err := init.Start()
	if err != nil {
		t.Fatal(err)
	}
	b1, _, err := resp.Handle(a1)
	if err != nil {
		t.Fatal(err)
	}

	// Tamper with each region of B1: ID, Cert, XG, Resp.
	for _, idx := range []int{1, 20, 1 + 16 + 50, 1 + 16 + 101 + 10, len(b1) - 5} {
		mod := append([]byte(nil), b1...)
		mod[idx] ^= 0x01
		freshInit, _ := NewInitiator(a, OptNone)
		if _, err := freshInit.Start(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := freshInit.Handle(mod); err == nil {
			t.Errorf("tampered B1 at byte %d accepted", idx)
		}
	}
}

func TestEngineRejectsImpostor(t *testing.T) {
	// Responder certified by a different CA.
	net1, _ := NewNetwork(ec.P256(), newDetRand(26))
	net2, _ := NewNetwork(ec.P256(), newDetRand(27))
	a, _ := net1.Provision("alice")
	mallory, _ := net2.Provision("bob")

	init, _ := NewInitiator(a, OptNone)
	resp, _ := NewResponder(mallory, OptNone)
	a1, _ := init.Start()
	b1, _, err := resp.Handle(a1)
	if err != nil {
		t.Fatal(err) // responder cannot know yet
	}
	if _, _, err := init.Handle(b1); !errors.Is(err, ErrHandshakeAuth) {
		t.Errorf("impostor B1: %v", err)
	}
}

func TestEngineNotProvisioned(t *testing.T) {
	if _, err := NewInitiator(&Party{}, OptNone); err == nil {
		t.Error("unprovisioned initiator accepted")
	}
	if _, err := NewResponder(nil, OptNone); err == nil {
		t.Error("nil responder accepted")
	}
}

// TestQuickEngineNeverPanics fuzzes the state machines with random
// bytes: they must return errors, never panic or complete.
func TestQuickEngineNeverPanics(t *testing.T) {
	a, b := newPair(t, 28)
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		init, _ := NewInitiator(a, OptNone)
		init.Start()
		if _, done, err := init.Handle(data); done && err == nil {
			return false // random bytes must not complete a handshake
		}
		resp, _ := NewResponder(b, OptNone)
		if _, done, err := resp.Handle(data); done && err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWireCodecRoundTrip(t *testing.T) {
	a, b := newPair(t, 29)
	res, err := NewSTS(OptNone).Run(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range res.Transcript {
		enc, err := EncodeSTSMessage(msg)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeSTSMessage(a.Curve, OptNone, enc)
		if err != nil {
			t.Fatalf("%s: %v", msg.Label, err)
		}
		if dec.Label != msg.Label || dec.Len() != msg.Len() {
			t.Errorf("%s: round trip mismatch", msg.Label)
		}
		for j, f := range msg.Field {
			if !bytes.Equal(dec.Field[j].Bytes, f.Bytes) {
				t.Errorf("%s field %s: bytes differ", msg.Label, f.Name)
			}
		}
	}
	// Malformed inputs.
	if _, err := DecodeSTSMessage(a.Curve, OptNone, nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := DecodeSTSMessage(a.Curve, OptNone, []byte{0x77}); err == nil {
		t.Error("unknown step code accepted")
	}
	if _, err := DecodeSTSMessage(a.Curve, OptNone, []byte{wireA1, 1, 2}); err == nil {
		t.Error("truncated message accepted")
	}
	if _, err := EncodeSTSMessage(WireMessage{Label: "Z9"}); err == nil {
		t.Error("unknown label encoded")
	}
}
