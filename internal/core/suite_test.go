package core

import (
	"bytes"
	"testing"

	"repro/internal/ec"
)

// newTestSuite builds a suite with a fresh trace for white-box tests.
func newTestSuite(seed int64) (*suite, *Trace) {
	trace := &Trace{}
	return newSuite(ec.P256(), trace.meterFor(RoleA), newDetRand(seed), nil), trace
}

func TestSealRespInvolution(t *testing.T) {
	s, _ := newTestSuite(1)
	enc := make([]byte, 16)
	mac := make([]byte, 32)
	for i := range mac {
		mac[i] = byte(i)
	}
	dsign := make([]byte, 64)
	for i := range dsign {
		dsign[i] = byte(i * 3)
	}
	sealed, err := s.sealResp(enc, mac, "B->A", dsign)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != len(dsign) {
		t.Fatalf("Resp grew: %d -> %d (Table II charges 64 B)", len(dsign), len(sealed))
	}
	if bytes.Equal(sealed, dsign) {
		t.Fatal("sealResp is the identity")
	}
	opened, err := s.openResp(enc, mac, "B->A", sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, dsign) {
		t.Fatal("sealResp/openResp not inverse")
	}
}

func TestSealRespDirectionSeparation(t *testing.T) {
	// The two Resp messages of one session must use different
	// keystream (A→B vs B→A), or XORing them would leak the signature
	// XOR.
	s, _ := newTestSuite(2)
	enc := make([]byte, 16)
	mac := make([]byte, 32)
	zero := make([]byte, 64)
	ab, _ := s.sealResp(enc, mac, "A->B", zero)
	ba, _ := s.sealResp(enc, mac, "B->A", zero)
	if bytes.Equal(ab, ba) {
		t.Fatal("directions share keystream")
	}
}

func TestSealRespKeySeparation(t *testing.T) {
	// Different MAC keys (i.e. different sessions) must give different
	// keystream even with the same enc key.
	s, _ := newTestSuite(3)
	enc := make([]byte, 16)
	mac1 := make([]byte, 32)
	mac2 := make([]byte, 32)
	mac2[0] = 1
	zero := make([]byte, 64)
	c1, _ := s.sealResp(enc, mac1, "A->B", zero)
	c2, _ := s.sealResp(enc, mac2, "A->B", zero)
	if bytes.Equal(c1, c2) {
		t.Fatal("sessions share keystream")
	}
}

func TestCachedCombinedDHEqualsStaticDH(t *testing.T) {
	// SCIANC's single-multiplication agreement must equal the plain
	// static DH: (d_A·e_B)·P_B + d_A·Q_CA = d_A·Q_B.
	net, err := NewNetwork(ec.P256(), newDetRand(4))
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := net.Pair("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newTestSuite(5)
	curve := ec.P256()

	cached := curve.ScalarMult(a.CAPub, a.Priv)
	got, err := s.cachedCombinedDH(a.Priv, b.Cert, cached)
	if err != nil {
		t.Fatal(err)
	}

	// Plain path: extract Q_B then multiply.
	qB, err := s.extractPublicKey(b.Cert, a.CAPub)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.dh(a.Priv, qB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("combined DH disagrees with extract-then-multiply")
	}
}

func TestSuiteMeterCounts(t *testing.T) {
	// The trace must record exactly what ran.
	s, trace := newTestSuite(6)
	if _, _, err := s.ephemeral(); err != nil {
		t.Fatal(err)
	}
	s.mac(make([]byte, 32), []byte("abc"), []byte("de"))
	s.hash([]byte("12345678"))

	agg := trace.Aggregate()
	counts := agg.PhaseCounts(RoleA, PhaseOp1)
	if counts[PrimECBaseMult] != 1 {
		t.Errorf("base mults = %d", counts[PrimECBaseMult])
	}
	if counts[PrimRandScalar] != 1 {
		t.Errorf("rand scalars = %d", counts[PrimRandScalar])
	}
	if counts[PrimMACBytes] != 5 {
		t.Errorf("mac bytes = %d, want 5", counts[PrimMACBytes])
	}
	if counts[PrimHashBytes] != 8 {
		t.Errorf("hash bytes = %d, want 8", counts[PrimHashBytes])
	}
}

func TestPhaseBaseFolding(t *testing.T) {
	if PhaseOp2Premaster.Base() != PhaseOp2 || PhaseOp2PubKey.Base() != PhaseOp2 {
		t.Error("sub-phases do not fold to Op2")
	}
	for _, ph := range []Phase{PhaseOp1, PhaseOp2, PhaseOp3, PhaseOp4} {
		if ph.Base() != ph {
			t.Errorf("%s folds to %s", ph, ph.Base())
		}
	}
	if len(RawPhases()) != 6 {
		t.Errorf("raw phases = %d", len(RawPhases()))
	}
}

func TestPrimitiveStrings(t *testing.T) {
	for p := PrimECBaseMult; p <= PrimRandBytes; p++ {
		if s := p.String(); s == "" || s[0] == 'p' && len(s) > 9 && s[:9] == "primitive" {
			t.Errorf("primitive %d has no name", int(p))
		}
	}
	if Primitive(999).String() != "primitive(999)" {
		t.Error("unknown primitive string")
	}
}
