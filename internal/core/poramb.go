package core

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/ecqv"
)

// PORAMB is the two-phase authentication protocol of Porambage et
// al. [3] for wireless sensor networks: hello exchange, certificate +
// nonce exchange authenticated with *pre-embedded pairwise MAC keys*,
// static ECDH key derivation, and finished-message confirmation.
//
// Its Table III weaknesses, reproduced by the security engine: static
// KD (no forward secrecy), and the requirement "that each node
// possesses from each other the authentication key" — pairwise
// pre-shared keys that make fleet-wide updates troublesome and whose
// capture breaks authentication both ways.
type PORAMB struct{}

// NewPORAMB returns the PORAMB baseline protocol.
func NewPORAMB() *PORAMB { return &PORAMB{} }

// Name implements Protocol.
func (p *PORAMB) Name() string { return "PORAMB" }

// Dynamic implements Protocol: static KD.
func (p *PORAMB) Dynamic() bool { return false }

// porambFinishSize is the Table II "Finish(197)" size: transcript hash
// (32) ‖ key-confirmation MAC (32) ‖ encrypted certificate+nonce echo
// (101 + 32 = 133).
const porambFinishSize = 32 + macSize + 101 + nonceSize

// Spec implements Protocol with the Table II layout (6 steps, 820 B).
func (p *PORAMB) Spec() []StepSpec {
	return []StepSpec{
		{Label: "A1", Fields: []FieldSpec{{"Hello", helloSize}, {"ID", ecqv.IDSize}}},
		{Label: "B1", Fields: []FieldSpec{{"Hello", helloSize}, {"ID", ecqv.IDSize}}},
		{Label: "A2", Fields: []FieldSpec{{"Cert", 101}, {"Nonce", nonceSize}, {"MAC", macSize}}},
		{Label: "B2", Fields: []FieldSpec{{"Cert", 101}, {"Nonce", nonceSize}, {"MAC", macSize}}},
		{Label: "A3", Fields: []FieldSpec{{"Finish", porambFinishSize}}},
		{Label: "B3", Fields: []FieldSpec{{"Finish", porambFinishSize}}},
	}
}

// Run implements Protocol. Message flow (Table II):
//
//	A → B : Hello_A, ID_A
//	B → A : Hello_B, ID_B
//	A → B : Cert_A, Nonce_A, MAC_A        (MAC under the pairwise key)
//	B → A : Cert_B, Nonce_B, MAC_B
//	A → B : Finish_A
//	B → A : Finish_B
func (p *PORAMB) Run(a, b *Party) (*Result, error) {
	if err := checkParties(a, b, true, true); err != nil {
		return nil, err
	}
	curve := a.Curve
	trace := &Trace{}
	sa := newSuite(curve, trace.meterFor(RoleA), a.Rand, a.KeyCache())
	sb := newSuite(curve, trace.meterFor(RoleB), b.Rand, b.KeyCache())
	res := &Result{Protocol: p.Name(), Trace: trace}

	// --- Phase one: hello exchange (Op1).
	sa.enter(PhaseOp1)
	helloA, err := sa.nonce(helloSize)
	if err != nil {
		return nil, err
	}
	a1 := WireMessage{From: RoleA, Label: "A1", Field: []Field{
		{"Hello", helloA}, {"ID", a.ID[:]},
	}}
	res.Transcript = append(res.Transcript, a1)

	sb.enter(PhaseOp1)
	helloB, err := sb.nonce(helloSize)
	if err != nil {
		return nil, err
	}
	b1 := WireMessage{From: RoleB, Label: "B1", Field: []Field{
		{"Hello", helloB}, {"ID", b.ID[:]},
	}}
	res.Transcript = append(res.Transcript, b1)

	// --- Phase two: authenticated certificate exchange. The MAC is
	// keyed with the pre-embedded pairwise key and binds the peer's
	// hello (freshness).
	sa.enter(PhaseOp1)
	nonceA, err := sa.nonce(nonceSize)
	if err != nil {
		return nil, err
	}
	sa.enter(PhaseOp3)
	certABytes := a.Cert.Encode()
	macA := sa.mac(a.PairwiseKey, []byte("poramb|A"), certABytes, nonceA, helloB)
	a2 := WireMessage{From: RoleA, Label: "A2", Field: []Field{
		{"Cert", certABytes}, {"Nonce", nonceA}, {"MAC", macA},
	}}
	res.Transcript = append(res.Transcript, a2)

	// B verifies A2 (Op4), then answers.
	sb.enter(PhaseOp4)
	if !sb.macVerify(b.PairwiseKey, a2.Get("MAC"), []byte("poramb|A"), a2.Get("Cert"), a2.Get("Nonce"), helloB) {
		return nil, errors.New("poramb: B: initiator MAC invalid")
	}
	certA, err := ecqv.Decode(a2.Get("Cert"))
	if err != nil {
		return nil, fmt.Errorf("poramb: B: peer certificate: %w", err)
	}
	if certA.SubjectID != a.ID {
		return nil, errors.New("poramb: B: certificate subject mismatch")
	}

	sb.enter(PhaseOp1)
	nonceB, err := sb.nonce(nonceSize)
	if err != nil {
		return nil, err
	}
	sb.enter(PhaseOp3)
	certBBytes := b.Cert.Encode()
	macB := sb.mac(b.PairwiseKey, []byte("poramb|B"), certBBytes, nonceB, helloA)
	b2 := WireMessage{From: RoleB, Label: "B2", Field: []Field{
		{"Cert", certBBytes}, {"Nonce", nonceB}, {"MAC", macB},
	}}
	res.Transcript = append(res.Transcript, b2)

	// A verifies B2 (Op4).
	sa.enter(PhaseOp4)
	if !sa.macVerify(a.PairwiseKey, b2.Get("MAC"), []byte("poramb|B"), b2.Get("Cert"), b2.Get("Nonce"), helloA) {
		return nil, errors.New("poramb: A: responder MAC invalid")
	}
	certB, err := ecqv.Decode(b2.Get("Cert"))
	if err != nil {
		return nil, fmt.Errorf("poramb: A: peer certificate: %w", err)
	}
	if certB.SubjectID != b.ID {
		return nil, errors.New("poramb: A: certificate subject mismatch")
	}

	// --- Op2: static pairwise key establishment from the implicit
	// certificates (full reconstruction — no caching, hence PORAMB's
	// ~2 point multiplications per device in Table I). The derived
	// pairwise key depends on certificate material only; nonces and
	// hellos provide freshness for the MACs, not key diversity — the
	// Table III "key data reuse" weakness.
	salt := concat([]byte("poramb-static|"), a.ID[:], b.ID[:])

	sa.enter(PhaseOp2)
	qB, err := sa.extractPublicKey(certB, a.CAPub)
	if err != nil {
		return nil, fmt.Errorf("poramb: A: extract Q_B: %w", err)
	}
	pmA, err := sa.dh(a.Priv, qB)
	if err != nil {
		return nil, err
	}
	encA, macKeyA, err := sa.deriveSessionKeys(pmA, salt)
	if err != nil {
		return nil, err
	}

	sb.enter(PhaseOp2)
	qA, err := sb.extractPublicKey(certA, b.CAPub)
	if err != nil {
		return nil, fmt.Errorf("poramb: B: extract Q_A: %w", err)
	}
	pmB, err := sb.dh(b.Priv, qA)
	if err != nil {
		return nil, err
	}
	encB, macKeyB, err := sb.deriveSessionKeys(pmB, salt)
	if err != nil {
		return nil, err
	}

	// --- Phase three: finished confirmation (Op3/Op4 each way).
	transcript := sa.hash(a1.Encode(), b1.Encode(), a2.Encode(), b2.Encode())

	sa.enter(PhaseOp3)
	finA, err := buildPorambFinish(sa, encA, macKeyA, "A", transcript, certABytes, nonceA)
	if err != nil {
		return nil, err
	}
	a3 := WireMessage{From: RoleA, Label: "A3", Field: []Field{{"Finish", finA}}}
	res.Transcript = append(res.Transcript, a3)

	sb.enter(PhaseOp4)
	transcriptB := sb.hash(a1.Encode(), b1.Encode(), a2.Encode(), b2.Encode())
	if err := checkPorambFinish(sb, encB, macKeyB, "A", transcriptB, certABytes, nonceA, a3.Get("Finish")); err != nil {
		return nil, fmt.Errorf("poramb: B: %w", err)
	}

	sb.enter(PhaseOp3)
	finB, err := buildPorambFinish(sb, encB, macKeyB, "B", transcriptB, certBBytes, nonceB)
	if err != nil {
		return nil, err
	}
	b3 := WireMessage{From: RoleB, Label: "B3", Field: []Field{{"Finish", finB}}}
	res.Transcript = append(res.Transcript, b3)

	sa.enter(PhaseOp4)
	if err := checkPorambFinish(sa, encA, macKeyA, "B", transcript, certBBytes, nonceB, b3.Get("Finish")); err != nil {
		return nil, fmt.Errorf("poramb: A: %w", err)
	}

	res.KeyA = append(append([]byte(nil), encA...), macKeyA...)
	res.KeyB = append(append([]byte(nil), encB...), macKeyB...)
	return res, nil
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// buildPorambFinish assembles the 197-byte finished message:
// transcript hash ‖ key-confirmation MAC ‖ CTR-encrypted cert+nonce
// echo.
func buildPorambFinish(s *suite, encKey, macKey []byte, role string, transcript, certBytes, nonce []byte) ([]byte, error) {
	conf := s.mac(macKey, []byte("poramb-finish|"+role), transcript)
	echo, err := s.ctrEncrypt(encKey, macKey, "finish|"+role, concat(certBytes, nonce))
	if err != nil {
		return nil, err
	}
	out := concat(transcript, conf, echo)
	if len(out) != porambFinishSize {
		return nil, fmt.Errorf("poramb: finish size %d, want %d", len(out), porambFinishSize)
	}
	return out, nil
}

// checkPorambFinish verifies a peer's finished message.
func checkPorambFinish(s *suite, encKey, macKey []byte, peerRole string, transcript, wantCert, wantNonce, fin []byte) error {
	if len(fin) != porambFinishSize {
		return fmt.Errorf("finish length %d, want %d", len(fin), porambFinishSize)
	}
	if !bytes.Equal(fin[:32], transcript) {
		return errors.New("finish transcript hash mismatch")
	}
	if !s.macVerify(macKey, fin[32:64], []byte("poramb-finish|"+peerRole), transcript) {
		return errors.New("finish confirmation MAC invalid")
	}
	echo, err := s.ctrEncrypt(encKey, macKey, "finish|"+peerRole, fin[64:])
	if err != nil {
		return err
	}
	if !bytes.Equal(echo, concat(wantCert, wantNonce)) {
		return errors.New("finish echo mismatch (wrong session key)")
	}
	return nil
}
